(* A fixed-size, deterministic DFS search whose BENCH json is the
   regression baseline: every quantity in it except wall-clock-derived
   throughput (states created/explored, best and initial cost) must
   reproduce exactly across runs and machines, so `--baseline
   --fail-over` diffs stay attributable to real performance changes
   rather than workload drift.

   The search runs to completion (generous budget) on a Barton-backed
   star workload large enough for the expand-latency histogram to have
   a few hundred samples at quick scale. *)

let run () =
  Harness.section "Baseline: deterministic search for regression tracking";
  let store = Lazy.force Harness.barton_store in
  let queries =
    Workload.Generator.generate_satisfiable store
      (Harness.spec Workload.Generator.Star 3 2 Workload.Generator.Low 7)
  in
  let stats = Harness.stats_for store in
  let opts = Harness.options ~budget:(10. *. Harness.long_budget) () in
  (* Warm-up pass: faults in the statistics caches and steadies the
     allocator so the measured run's throughput is reproducible, then
     the registry is wiped so BENCH numbers cover the second run only. *)
  ignore (Core.Search.run stats opts queries);
  Obs.reset (Obs.global ());
  let report = Core.Search.run stats opts queries in
  Harness.print_table
    ~header:[ "created"; "duplicates"; "discarded"; "explored"; "best cost"; "rcr"; "done" ]
    [
      [
        string_of_int report.Core.Search.created;
        string_of_int report.Core.Search.duplicates;
        string_of_int report.Core.Search.discarded;
        string_of_int report.Core.Search.explored;
        Harness.fmt_float report.Core.Search.best_cost;
        Harness.fmt_rcr (Core.Search.rcr report);
        (if report.Core.Search.completed then "yes" else "cut");
      ];
    ];
  if not report.Core.Search.completed then
    print_endline
      "  warning: baseline search did not complete; BENCH numbers will not \
       be comparable across machines"
