(* Multi-query optimization benchmark: a workload built to share plan
   prefixes — star families over one subject-property backbone, plus
   repeated evaluation of every query — run once with the optimizer on
   and once with it off.

   With MQO on, [Query.Mqo.prepare] pre-registers the workload so
   shared prefixes and repeated results are captured on first
   execution; re-evaluations then replay cached prefixes (or whole
   result sets) instead of re-joining.  The BENCH json records the
   deterministic eval section (queries, answers, bindings — identical
   in both modes by construction) plus an [mqo] section with the
   cache's hit/capture counters and the wall-clock speedup of the
   optimized pass over the disabled one. *)

let reps = match Harness.scale with Harness.Quick -> 20 | Harness.Full -> 100

(* Query families over the popular property band: each family shares a
   2-atom backbone (same first steps after compilation) and varies the
   tail atom and projection, so prefixes are shared across DISTINCT
   plans, not just across repeated evaluation of one plan. *)
let workload () =
  let v x = Query.Qterm.Var x in
  let props = Array.of_list (Workload.Barton.properties ()) in
  let p i = Query.Qterm.Cst props.(i) in
  let atom s pr o = Query.Atom.make s pr o in
  let cq name head body = Query.Cq.make ~name ~head ~body in
  let family base tag =
    let backbone =
      [ atom (v "X") (p base) (v "Y"); atom (v "Y") (p (base + 1)) (v "Z") ]
    in
    [
      cq (tag ^ "_pair") [ v "X"; v "Z" ] backbone;
      cq (tag ^ "_ext")
        [ v "X"; v "W" ]
        (backbone @ [ atom (v "Z") (p (base + 2)) (v "W") ]);
      cq (tag ^ "_alt")
        [ v "Z"; v "W" ]
        (backbone @ [ atom (v "Z") (p (base + 3)) (v "W") ]);
      cq (tag ^ "_head") [ v "Y" ] backbone;
    ]
  in
  family 46 "f46" @ family 50 "f50" @ family 54 "f54"

let evaluate_all store queries answers qhist =
  List.iter
    (fun q ->
      let t0 = Obs.now_ns () in
      let rows = Query.Evaluation.eval_cq_codes store q in
      Obs.observe qhist (Obs.now_ns () - t0);
      Obs.add answers (List.length rows))
    queries

let run () =
  Harness.section "MQO: shared-subplan caching across a workload";
  let store = Lazy.force Harness.barton_store in
  let queries = workload () in
  let reg = Obs.global () in
  let counter n = Option.value ~default:0 (Obs.find_counter reg n) in
  (* disabled pass first: its counters are wiped before the measured
     run, so the BENCH json reflects the optimized pass alone *)
  Query.Mqo.set_enabled false;
  Query.Plan.reset_cache ();
  Query.Mqo.reset ();
  let baseline_bindings, baseline_secs =
    Fun.protect
      ~finally:(fun () -> Query.Mqo.set_enabled true)
      (fun () ->
        Obs.reset reg;
        let answers = Obs.counter reg "eval.answers" in
        let qhist = Obs.histogram reg "eval.query.ns" in
        let (), secs =
          Harness.time_once (fun () ->
              for _ = 1 to reps do
                evaluate_all store queries answers qhist
              done)
        in
        (counter "eval.bindings", secs))
  in
  (* optimized pass: prepare the workload, then the same evaluation
     loop under the eval.run timer *)
  Obs.reset reg;
  Query.Plan.reset_cache ();
  Query.Mqo.reset ();
  let run_timer = Obs.timer reg "eval.run" in
  let qhist = Obs.histogram reg "eval.query.ns" in
  let answers = Obs.counter reg "eval.answers" in
  Obs.time run_timer (fun () ->
      Query.Mqo.prepare store queries;
      for _ = 1 to reps do
        evaluate_all store queries answers qhist
      done);
  let bindings = counter "eval.bindings" in
  let run_ns = Obs.timer_ns run_timer in
  let secs = float_of_int run_ns /. 1e9 in
  let speedup = if secs > 0. then baseline_secs /. secs else 0. in
  let entries, words = Query.Mqo.stats () in
  if bindings <> baseline_bindings then
    Printf.printf
      "  warning: binding counts differ (mqo %d vs disabled %d)\n" bindings
      baseline_bindings;
  let prefix_hits = counter "mqo.prefix.hits" in
  let result_hits = counter "mqo.result.hits" in
  Harness.add_bench_field "mqo"
    (Obs.Json.Obj
       [
         ("prefix_hits", Obs.Json.Int prefix_hits);
         ("prefix_evals", Obs.Json.Int (counter "mqo.prefix.evals"));
         ("result_hits", Obs.Json.Int result_hits);
         ("result_evals", Obs.Json.Int (counter "mqo.result.evals"));
         ("capture_rows", Obs.Json.Int (counter "mqo.capture.rows"));
         ("evictions", Obs.Json.Int (counter "mqo.cache.evictions"));
         ("cache_entries", Obs.Json.Int entries);
         ("cache_words", Obs.Json.Int words);
         ("speedup_vs_disabled", Obs.Json.Float speedup);
       ]);
  Harness.print_table
    ~header:
      [
        "queries"; "reps"; "bindings"; "prefix hits"; "result hits";
        "mqo secs"; "no-mqo secs"; "speedup";
      ]
    [
      [
        string_of_int (List.length queries);
        string_of_int reps;
        string_of_int bindings;
        string_of_int prefix_hits;
        string_of_int result_hits;
        Printf.sprintf "%.3f" secs;
        Printf.sprintf "%.3f" baseline_secs;
        Printf.sprintf "%.1fx" speedup;
      ];
    ]
