(* Ablations beyond the paper's figures, for the design choices called
   out in DESIGN.md:

   - cost-weight sensitivity: the maintenance weight cm and fan-out f
     steer the search toward smaller views;
   - stratification: EXNAIVE vs EXSTR vs DFS transition counts on a
     fully-explorable workload;
   - the saturation ≡ post-reformulation equivalence (§6.5);
   - cost breakdown of initial vs best state. *)

let small_workload store =
  Workload.Generator.generate_satisfiable store
    (Harness.spec Workload.Generator.Star 3 4 Workload.Generator.High 91)

let run_weights () =
  Harness.subsection "cost-weight sensitivity (best state under DFS-AVF-STV)";
  let store = Lazy.force Harness.barton_store in
  let queries = small_workload store in
  let rows =
    List.concat_map
      (fun cm ->
        List.map
          (fun f ->
            let weights = { Core.Cost.default_weights with cm; f } in
            let opts =
              { (Harness.options ~budget:Harness.search_budget ()) with
                Core.Search.weights = weights }
            in
            let report =
              Core.Search.run (Harness.stats_for store) opts queries
            in
            [
              Harness.fmt_float cm;
              Harness.fmt_float f;
              string_of_int (List.length report.Core.Search.best.Core.State.views);
              Printf.sprintf "%.1f" (Harness.avg_view_atoms report.Core.Search.best);
              Harness.fmt_rcr (Core.Search.rcr report);
            ])
          [ 1.2; 2.; 4. ])
      [ 0.; 0.5; 50. ]
  in
  Harness.print_table
    ~header:[ "cm"; "f"; "views"; "atoms/view"; "rcr" ]
    rows

let run_stratification () =
  Harness.subsection "stratified vs naive exhaustive search (Fig. 3 workload)";
  let query =
    Query.Cq.make ~name:"q"
      ~head:[ Query.Qterm.Var "Y"; Query.Qterm.Var "Z" ]
      ~body:
        [
          Query.Atom.make (Query.Qterm.Var "X") (Query.Qterm.Var "Y")
            (Query.Qterm.Cst (Rdf.Term.Uri "ex:c1"));
          Query.Atom.make (Query.Qterm.Var "X") (Query.Qterm.Var "Z")
            (Query.Qterm.Cst (Rdf.Term.Uri "ex:c2"));
        ]
  in
  let store =
    Rdf.Store.of_triples
      [
        Rdf.Triple.make (Rdf.Term.Uri "s1") (Rdf.Term.Uri "p1") (Rdf.Term.Uri "ex:c1");
        Rdf.Triple.make (Rdf.Term.Uri "s1") (Rdf.Term.Uri "p2") (Rdf.Term.Uri "ex:c2");
      ]
  in
  let rows =
    List.map
      (fun (label, strategy) ->
        let opts =
          {
            (Harness.options ~strategy ~avf:false ~stop_var:false ()) with
            Core.Search.stop_tt = false;
            time_budget = None;
          }
        in
        let report = Core.Search.run (Harness.stats_for store) opts [ query ] in
        [
          label;
          string_of_int report.Core.Search.created;
          string_of_int report.Core.Search.duplicates;
          string_of_int report.Core.Search.explored;
        ])
      [
        ("EXNAIVE", Core.Search.Exnaive);
        ("EXSTR", Core.Search.Exstr);
        ("DFS", Core.Search.Dfs);
      ]
  in
  Harness.print_table ~header:[ "strategy"; "created"; "duplicates"; "explored" ] rows

let run_equivalence () =
  Harness.subsection "saturation ≡ post-reformulation (§6.5)";
  let store = Lazy.force Harness.barton_store in
  let schema = Lazy.force Harness.barton_schema in
  let queries =
    Workload.Generator.generalize schema 0.5 3 (small_workload store)
  in
  let opts = Harness.options ~budget:Harness.search_budget () in
  let sat =
    Core.Selector.select ~store ~reasoning:(Core.Selector.Saturation schema)
      ~options:opts queries
  in
  let post =
    Core.Selector.select ~store
      ~reasoning:(Core.Selector.Post_reformulation schema) ~options:opts queries
  in
  let same =
    Core.State.equal_key
      (Core.State.key sat.Core.Selector.report.Core.Search.best)
      (Core.State.key post.Core.Selector.report.Core.Search.best)
  in
  Printf.printf "  same recommended view set: %b\n" same;
  Printf.printf "  best costs: saturation %s, post-reformulation %s\n"
    (Harness.fmt_float sat.Core.Selector.report.Core.Search.best_cost)
    (Harness.fmt_float post.Core.Selector.report.Core.Search.best_cost)

let run_breakdown () =
  Harness.subsection "cost breakdown: initial vs best state";
  let store = Lazy.force Harness.barton_store in
  let queries = small_workload store in
  let stats = Harness.stats_for store in
  let estimator = Core.Cost.create stats Core.Cost.default_weights in
  let opts = Harness.options ~budget:Harness.search_budget () in
  let report = Core.Search.run stats opts queries in
  let initial = Core.State.initial queries in
  let row label state =
    let b = Core.Cost.breakdown estimator state in
    [
      label;
      Harness.fmt_float b.Core.Cost.vso_part;
      Harness.fmt_float b.Core.Cost.rec_part;
      Harness.fmt_float b.Core.Cost.vmc_part;
      Harness.fmt_float b.Core.Cost.total;
    ]
  in
  Harness.print_table
    ~header:[ "state"; "VSO"; "REC"; "VMC"; "total" ]
    [ row "initial" initial; row "best" report.Core.Search.best ]

let run () =
  Harness.section "Ablations";
  Harness.experiment "ablation/weights" run_weights;
  Harness.experiment "ablation/stratification" run_stratification;
  Harness.experiment "ablation/equivalence" run_equivalence;
  Harness.experiment "ablation/breakdown" run_breakdown
