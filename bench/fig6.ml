(* Figure 6: relative cost reduction on large workloads.

   DFS-AVF-STV and GSTR-AVF-STV on workloads of growing size (paper: 5 to
   200 queries of 10 atoms; quick scale trims the largest sizes), for
   chain / random-sparse / random-dense / star / mixed shapes at high and
   low commonality, each cell averaged over 3 generated workloads, under
   the stoptime condition.

   Expected shape (paper): rcr is high overall (often ≈0.99), GSTR ≤ DFS,
   chains and sparse graphs are easier than stars and dense graphs, and
   high commonality beats low commonality.  §6.4 also reports the average
   atoms per recommended view: ≈3.2 for DFS vs ≈6.5 for GSTR. *)

let sizes =
  match Harness.scale with
  | Harness.Quick -> [ 5; 10; 20 ]
  | Harness.Full -> [ 5; 10; 20; 50; 100; 200 ]

let atoms_per_query = match Harness.scale with Harness.Quick -> 6 | Full -> 10

let shapes =
  [
    ("chain", Workload.Generator.Chain);
    ("random-sparse", Workload.Generator.Random_sparse);
    ("random-dense", Workload.Generator.Random_dense);
    ("star", Workload.Generator.Star);
    ("mixed", Workload.Generator.Mixed);
  ]

let commonalities =
  [ ("high", Workload.Generator.High); ("low", Workload.Generator.Low) ]

let avg l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let run_cell stats strategy shape commonality n =
  let repeats =
    match Harness.scale with Harness.Quick -> [ 1; 2 ] | Full -> [ 1; 2; 3 ]
  in
  let per_seed =
    List.map
      (fun seed ->
        let queries =
          Workload.Generator.generate
            (Harness.spec shape n atoms_per_query commonality (100 * seed))
        in
        (* the paper gives a constant generous stoptime (3h); scaled down,
           the budget grows with the workload so that larger workloads are
           not starved relative to small ones *)
        let opts =
          Harness.options ~strategy
            ~budget:(Harness.search_budget *. float_of_int n /. 5.)
            ()
        in
        let report = Core.Search.run stats opts queries in
        (Core.Search.rcr report, Harness.avg_view_atoms report.Core.Search.best))
      repeats
  in
  (avg (List.map fst per_seed), avg (List.map snd per_seed))

let run_strategy label strategy =
  Harness.experiment ("fig6/" ^ label) @@ fun () ->
  Harness.subsection
    (Printf.sprintf "%s (rcr averaged over 3 workloads, %d atoms/query)" label
       atoms_per_query);
  let store = Lazy.force Harness.barton_store in
  let stats = Harness.stats_for store in
  let atom_avgs = ref [] in
  List.iter
    (fun (com_label, commonality) ->
      Printf.printf "\n  commonality: %s\n" com_label;
      let rows =
        List.map
          (fun (shape_label, shape) ->
            shape_label
            :: List.map
                 (fun n ->
                   let rcr, atoms = run_cell stats strategy shape commonality n in
                   atom_avgs := atoms :: !atom_avgs;
                   Harness.fmt_rcr rcr)
                 sizes)
          shapes
      in
      Harness.print_table
        ~header:
          ("shape" :: List.map (fun n -> string_of_int n ^ " queries") sizes)
        rows)
    commonalities;
  Printf.printf "\n  average atoms per recommended view (%s): %.1f\n" label
    (avg !atom_avgs)

let run () =
  Harness.section "Figure 6: relative cost reduction for large workloads";
  run_strategy "DFS-AVF-STV" Core.Search.Dfs;
  run_strategy "GSTR-AVF-STV" Core.Search.Gstr
