(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation section (§6), plus ablations and the
   regression baseline.

     dune exec bench/main.exe            # everything, quick scale
     dune exec bench/main.exe fig4       # one experiment
     BENCH_SCALE=full dune exec bench/main.exe   # paper-scale sizes
     dune exec bench/main.exe -- --metrics out.json fig4   # + telemetry
     dune exec bench/main.exe -- baseline \
       --baseline BENCH_baseline.json --fail-over 20   # regression gate

   Experiments: baseline, eval, mqo, table2, table3, fig4, fig5, fig6, fig7,
   fig8, ablation, parallel, store.

   Each top-level experiment writes BENCH_<experiment>.json (states/sec,
   expand-latency percentiles, best cost, peak heap words) unless
   --no-bench-json; --bench-dir DIR redirects the files.  --baseline
   FILE compares the matching experiment's fresh numbers against FILE,
   warn-only by default; --fail-over PCT makes a throughput drop larger
   than PCT%% (or any search-outcome mismatch) fail the run.

   --metrics FILE instead installs one shared Obs registry before any
   experiment runs and serializes it to FILE at the end (schema in
   EXPERIMENTS.md); BENCH emission is disabled in that mode, since the
   per-experiment numbers would all alias one registry.

   --telemetry FILE additionally turns runtime-event collection on and
   keeps FILE (Prometheus text format, atomically rewritten every
   --telemetry-interval seconds) current while the experiments run —
   watch it with `rdfviews top FILE --watch 1`.  It composes with
   either mode above and populates the BENCH gc.max_pause_ns field. *)

let experiments =
  [
    ("baseline", Baseline.run);
    ("eval", Eval.run);
    ("mqo", Mqo.run);
    ("table2", fun () -> Tables.run_table2 ());
    ("table3", fun () -> Tables.run_table3 ());
    ("fig4", Fig4.run);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("fig8", Fig8.run);
    ("ablation", Ablation.run);
    ("parallel", Parallel.run);
    ("store", Store.run);
  ]

let usage () =
  print_endline
    "usage: main.exe [--metrics FILE] [--bench-dir DIR] [--no-bench-json]";
  print_endline
    "                [--baseline FILE] [--fail-over PCT] [--telemetry FILE]";
  print_endline
    "                [--telemetry-interval SECS] [experiment...]";
  print_endline "experiments:";
  List.iter (fun (name, _) -> print_endline ("  " ^ name)) experiments

let missing_value flag =
  Printf.eprintf "%s requires a value\n" flag;
  usage ();
  exit 1

(* Split the option flags out of the experiment names.  Both
   "--flag VALUE" and "--flag=VALUE" spellings are accepted. *)
let parse_args args =
  let metrics = ref None in
  let telemetry = ref None in
  let telemetry_interval = ref 1.0 in
  let split arg =
    match String.index_opt arg '=' with
    | Some i when String.length arg > 2 && arg.[0] = '-' ->
      Some (String.sub arg 0 i, String.sub arg (i + 1) (String.length arg - i - 1))
    | _ -> None
  in
  let apply flag value =
    match flag with
    | "--metrics" -> metrics := Some value
    | "--bench-dir" -> Harness.set_bench_dir value
    | "--baseline" -> Harness.load_baseline value
    | "--fail-over" -> (
      match float_of_string_opt value with
      | Some pct -> Harness.set_fail_over pct
      | None ->
        Printf.eprintf "--fail-over wants a percentage, got %s\n" value;
        exit 1)
    | "--telemetry" -> telemetry := Some value
    | "--telemetry-interval" -> (
      match float_of_string_opt value with
      | Some s -> telemetry_interval := s
      | None ->
        Printf.eprintf "--telemetry-interval wants seconds, got %s\n" value;
        exit 1)
    | _ -> assert false
  in
  let takes_value =
    [
      "--metrics"; "--bench-dir"; "--baseline"; "--fail-over"; "--telemetry";
      "--telemetry-interval";
    ]
  in
  let rec go names = function
    | [] -> (!metrics, !telemetry, !telemetry_interval, List.rev names)
    | "--no-bench-json" :: rest ->
      Harness.disable_bench_json ();
      go names rest
    | flag :: rest when List.mem flag takes_value -> (
      match rest with
      | value :: rest -> apply flag value; go names rest
      | [] -> missing_value flag)
    | arg :: rest -> (
      match split arg with
      | Some (flag, value) when List.mem flag takes_value ->
        apply flag value;
        go names rest
      | _ -> go (arg :: names) rest)
  in
  go [] args

let () =
  let metrics, telemetry, telemetry_interval, requested =
    parse_args (match Array.to_list Sys.argv with _ :: args -> args | [] -> [])
  in
  (match metrics with
  | Some path ->
    Harness.enable_metrics path;
    Harness.disable_bench_json ()
  | None -> ());
  (match telemetry with
  | Some path -> Harness.start_telemetry ~interval:telemetry_interval path
  | None -> ());
  Printf.printf
    "RDFViewS reproduction benchmarks (scale: %s; set BENCH_SCALE=full for paper-scale runs)\n"
    Harness.scale_name;
  let run_named (name, run) = Harness.toplevel name run in
  (match requested with
  | [] -> List.iter run_named experiments
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some run -> run_named (name, run)
        | None ->
          Printf.printf "unknown experiment: %s\n" name;
          usage ();
          exit 1)
      names);
  Harness.stop_telemetry ();
  Harness.write_metrics ();
  exit (Harness.finish_bench ())
