(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation section (§6), plus ablations.

     dune exec bench/main.exe            # everything, quick scale
     dune exec bench/main.exe fig4       # one experiment
     BENCH_SCALE=full dune exec bench/main.exe   # paper-scale sizes
     dune exec bench/main.exe -- --metrics out.json fig4   # + telemetry

   Experiments: table2, table3, fig4, fig5, fig6, fig7, fig8, ablation.

   --metrics FILE installs an Obs registry before any experiment runs
   and serializes it to FILE at the end: the same per-transition,
   per-stratum, cost and store counters the CLI emits, with one trace
   span per experiment (schema in EXPERIMENTS.md). *)

let experiments =
  [
    ("table2", fun () -> Tables.run_table2 ());
    ("table3", fun () -> Tables.run_table3 ());
    ("fig4", Fig4.run);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("fig8", Fig8.run);
    ("ablation", Ablation.run);
  ]

let usage () =
  print_endline "usage: main.exe [--metrics FILE] [experiment...]";
  print_endline "experiments:";
  List.iter (fun (name, _) -> print_endline ("  " ^ name)) experiments

(* Split "--metrics FILE" / "--metrics=FILE" out of the experiment
   names. *)
let parse_args args =
  let rec go metrics names = function
    | [] -> (metrics, List.rev names)
    | "--metrics" :: file :: rest -> go (Some file) names rest
    | [ "--metrics" ] ->
      prerr_endline "--metrics requires a file argument";
      usage ();
      exit 1
    | arg :: rest when String.length arg > 10 && String.sub arg 0 10 = "--metrics=" ->
      go (Some (String.sub arg 10 (String.length arg - 10))) names rest
    | arg :: rest -> go metrics (arg :: names) rest
  in
  go None [] args

let () =
  let metrics, requested =
    parse_args (match Array.to_list Sys.argv with _ :: args -> args | [] -> [])
  in
  Option.iter Harness.enable_metrics metrics;
  Printf.printf
    "RDFViewS reproduction benchmarks (scale: %s; set BENCH_SCALE=full for paper-scale runs)\n"
    (match Harness.scale with Harness.Quick -> "quick" | Harness.Full -> "full");
  let run_named (name, run) = Harness.experiment name run in
  (match requested with
  | [] -> List.iter run_named experiments
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some run -> run_named (name, run)
        | None ->
          Printf.printf "unknown experiment: %s\n" name;
          usage ();
          exit 1)
      names);
  Harness.write_metrics ()
