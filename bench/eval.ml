(* Query-evaluation micro-benchmark: compiled plans (Query.Plan) against
   the interpretive Reference evaluator on one fixed-seed Barton store
   and generated workload.

   The two engines must produce identical per-query answer counts (the
   run aborts otherwise); the BENCH json's eval section then records the
   deterministic work counts (queries, answers, bindings, probes) for
   the exact baseline compare, plus bindings/sec for both engines and
   the per-query latency percentiles for the threshold compare. *)

let reps = match Harness.scale with Harness.Quick -> 30 | Harness.Full -> 200

(* Constant-free chains and stars over the popular property band
   (prop46..prop60 carry half the links): thousands of bindings per
   query, so the per-binding join machinery — not per-query setup —
   dominates the measurement. *)
let heavy_queries =
  let v x = Query.Qterm.Var x in
  let props = Array.of_list (Workload.Barton.properties ()) in
  let p i = Query.Qterm.Cst props.(i) in
  let atom s pr o = Query.Atom.make s pr o in
  let cq name head body = Query.Cq.make ~name ~head ~body in
  [
    cq "chain2" [ v "X"; v "Z" ]
      [ atom (v "X") (p 46) (v "Y"); atom (v "Y") (p 47) (v "Z") ];
    cq "chain3"
      [ v "X"; v "W" ]
      [
        atom (v "X") (p 48) (v "Y");
        atom (v "Y") (p 49) (v "Z");
        atom (v "Z") (p 50) (v "W");
      ];
    cq "star3"
      [ v "A"; v "B"; v "C" ]
      [
        atom (v "X") (p 51) (v "A");
        atom (v "X") (p 52) (v "B");
        atom (v "X") (p 53) (v "C");
      ];
    cq "selfjoin" [ v "X"; v "Y"; v "Z" ]
      [ atom (v "X") (p 54) (v "Y"); atom (v "Z") (p 54) (v "Y") ];
    (* variable-property hops enumerate whole buckets: the all-triples
       scan joined on its object, the evaluator's worst fan-out case *)
    cq "hop2" [ v "X"; v "Z" ]
      [ atom (v "X") (v "P1") (v "Y"); atom (v "Y") (v "P2") (v "Z") ];
    cq "hop3" [ v "X"; v "W" ]
      [
        atom (v "X") (v "P1") (v "Y");
        atom (v "Y") (v "P2") (v "Z");
        atom (v "Z") (v "P3") (v "W");
      ];
    (* a genuine cross-product: every pair of same-class instances *)
    (let c19 = Query.Qterm.Cst (List.nth (Workload.Barton.classes ()) 19) in
     let ty = Query.Qterm.Cst Rdf.Vocabulary.rdf_type in
     cq "typed_pair" [ v "X"; v "Y" ]
       [ atom (v "X") ty c19; atom (v "Y") ty c19 ]);
  ]

(* A mixed-shape generated workload on top: stars stress the join
   ordering, chains the frame-extension fast path.  All satisfiable on
   the store, so every query does real binding work. *)
let workload store =
  heavy_queries
  @ List.concat_map
      (fun (shape, n, atoms, seed) ->
        Workload.Generator.generate_satisfiable store
          (Harness.spec shape n atoms Workload.Generator.High seed))
      [
        (Workload.Generator.Star, 4, 5, 13);
        (Workload.Generator.Chain, 4, 6, 17);
        (Workload.Generator.Mixed, 4, 4, 23);
      ]

let run () =
  Harness.section "Eval: compiled plans vs the reference evaluator";
  let store = Lazy.force Harness.barton_store in
  let queries = workload store in
  (* fresh plan and MQO caches: earlier experiments in the same process
     must not change when captures trigger, or the deterministic probe
     count drifts between standalone and full runs *)
  Query.Plan.reset_cache ();
  Query.Mqo.reset ();
  (* correctness gate (and warm-up): identical answer counts per query *)
  let counts evaluate =
    List.map (fun q -> List.length (evaluate store q)) queries
  in
  let compiled_counts = counts Query.Evaluation.eval_cq_codes in
  let reference_counts = counts Query.Evaluation.Reference.eval_cq_codes in
  if not (List.equal Int.equal compiled_counts reference_counts) then
    failwith "eval bench: compiled and reference answer counts differ";
  (* reference pass: wall-clock and binding count, then wiped from the
     registry so the BENCH numbers cover the compiled pass alone *)
  let reg = Obs.global () in
  let bindings_of () =
    Option.value ~default:0 (Obs.find_counter reg "eval.bindings")
  in
  Obs.reset reg;
  let (), ref_secs =
    Harness.time_once (fun () ->
        for _ = 1 to reps do
          List.iter
            (fun q -> ignore (Query.Evaluation.Reference.eval_cq_codes store q))
            queries
        done)
  in
  let ref_bindings = bindings_of () in
  let ref_rate =
    if ref_secs > 0. then float_of_int ref_bindings /. ref_secs else 0.
  in
  (* variant passes, run BEFORE the headline measurement so their
     counter traffic is wiped by the reset below and the headline's
     deterministic fields stay exactly comparable across baselines.
     Neither variant touches the multi-query optimizer's state: the
     tuple pass drives Plan directly and the batch pass runs with MQO
     disabled, so the headline still sees precisely one warm-up
     (the correctness gate) per query. *)
  let variant_pass f =
    Obs.reset reg;
    Query.Plan.reset_cache ();
    let b0 = bindings_of () in
    let (), secs =
      Harness.time_once (fun () ->
          for _ = 1 to reps do
            List.iter f queries
          done)
    in
    let b = bindings_of () - b0 in
    if secs > 0. then float_of_int b /. secs else 0.
  in
  let tuple_rate =
    variant_pass (fun q ->
        let plan = Query.Plan.cached store q in
        let rows =
          Query.Rowset.create (max 64 (Query.Plan.size_hint plan))
        in
        Query.Plan.exec_into_tuple plan store rows;
        ignore (Query.Rowset.elements rows))
  in
  let batch_rate =
    Query.Mqo.set_enabled false;
    Fun.protect
      ~finally:(fun () -> Query.Mqo.set_enabled true)
      (fun () ->
        variant_pass (fun q ->
            ignore (Query.Evaluation.eval_cq_codes store q)))
  in
  (* same pass with Rowset's packed-key dedup hashing disabled (per-row
     FNV loop instead of one multiply-mix): the batch/nopack delta is
     the packing win on the result-dedup path *)
  let nopack_rate =
    Query.Mqo.set_enabled false;
    Query.Rowset.set_key_packing false;
    Fun.protect
      ~finally:(fun () ->
        Query.Rowset.set_key_packing true;
        Query.Mqo.set_enabled true)
      (fun () ->
        variant_pass (fun q ->
            ignore (Query.Evaluation.eval_cq_codes store q)))
  in
  Obs.reset reg;
  Query.Plan.reset_cache ();
  (* compiled pass (the headline: batch pipeline + MQO): plan
     compilation happens inside the timed region, so the cache-miss
     cost of the first repetition is part of the price *)
  let run_timer = Obs.timer reg "eval.run" in
  let qhist = Obs.histogram reg "eval.query.ns" in
  let answers = Obs.counter reg "eval.answers" in
  Obs.time run_timer (fun () ->
      for _ = 1 to reps do
        List.iter
          (fun q ->
            let t0 = Obs.now_ns () in
            let rows = Query.Evaluation.eval_cq_codes store q in
            Obs.observe qhist (Obs.now_ns () - t0);
            Obs.add answers (List.length rows))
          queries
      done);
  let bindings = bindings_of () in
  let compiled_ns = Obs.timer_ns run_timer in
  let compiled_rate =
    if compiled_ns > 0 then
      float_of_int bindings /. (float_of_int compiled_ns /. 1e9)
    else 0.
  in
  let speedup = if ref_rate > 0. then compiled_rate /. ref_rate else 0. in
  Obs.set_gauge (Obs.gauge reg "eval.reference.bindings_per_sec") ref_rate;
  Obs.set_gauge (Obs.gauge reg "eval.reference.speedup") speedup;
  Harness.add_bench_field "eval_variants"
    (Obs.Json.Obj
       [
         ("tuple_bindings_per_sec", Obs.Json.Float tuple_rate);
         ("batch_bindings_per_sec", Obs.Json.Float batch_rate);
         ("batch_nopack_bindings_per_sec", Obs.Json.Float nopack_rate);
         ("batch_mqo_bindings_per_sec", Obs.Json.Float compiled_rate);
       ]);
  Harness.print_table
    ~header:
      [ "queries"; "reps"; "bindings"; "compiled b/s"; "reference b/s"; "speedup" ]
    [
      [
        string_of_int (List.length queries);
        string_of_int reps;
        string_of_int bindings;
        Harness.fmt_float compiled_rate;
        Harness.fmt_float ref_rate;
        Printf.sprintf "%.1fx" speedup;
      ];
    ];
  Harness.subsection "execution variants (bindings/sec)";
  Harness.print_table
    ~header:[ "tuple"; "batch (no mqo)"; "batch, fnv keys"; "batch + mqo" ]
    [
      [
        Harness.fmt_float tuple_rate;
        Harness.fmt_float batch_rate;
        Harness.fmt_float nopack_rate;
        Harness.fmt_float compiled_rate;
      ];
    ];
  (* the number of complete assignments is join-order independent, so
     the two engines must agree on it exactly *)
  if bindings <> ref_bindings then
    Printf.printf
      "  warning: binding counts differ (compiled %d vs reference %d)\n"
      bindings ref_bindings

