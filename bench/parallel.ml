(* Multicore scaling of the search: the baseline workload run
   sequentially and then across OCaml 5 domains in both parallel modes.

   Two kinds of numbers come out of this experiment and they are held to
   different standards.  The determinism flags
   (parallel.det_matches_sequential, parallel.free_best_cost_matches)
   must reproduce exactly across runs and machines — deterministic mode
   is contractually bit-identical to the sequential search and free mode
   must reach the same fixpoint on a completed run.  The throughput and
   speedup figures are wall-clock-derived and machine-dependent: on a
   single-CPU host the domains time-slice one core and the speedup
   hovers at or below 1.0; the committed baseline records whatever the
   reference host measured and the rate comparison only warns.

   Free-mode runs leave schedule-dependent totals in the Obs registry,
   so the registry is wiped and a canonical sequential run is replayed
   last: the generic BENCH fields (states_created, best_cost, ...) stay
   deterministic and the parallel numbers travel in their own
   "parallel" section via Harness.add_bench_field. *)

let fmt_speedup s = Printf.sprintf "%.2fx" s

let run () =
  Harness.section "Parallel: multicore scaling on the baseline workload";
  let store = Lazy.force Harness.barton_store in
  let queries =
    Workload.Generator.generate_satisfiable store
      (Harness.spec Workload.Generator.Star 3 2 Workload.Generator.Low 7)
  in
  let stats = Harness.stats_for store in
  let opts = Harness.options ~budget:(10. *. Harness.long_budget) () in
  (* Warm-up: faults in the statistics caches so neither the sequential
     reference nor the first parallel configuration pays them. *)
  ignore (Core.Search.run stats opts queries);
  let seq, seq_s = Harness.time_once (fun () -> Core.Search.run stats opts queries) in
  let seq_rate = float_of_int seq.Core.Search.created /. seq_s in
  let measure mode jobs =
    let report, secs =
      Harness.time_once (fun () ->
          Core.Parallel_search.run ~jobs ~mode stats opts queries)
    in
    let rate = float_of_int report.Core.Search.created /. secs in
    (report, secs, rate)
  in
  let row label jobs (report, secs, rate) =
    [
      label;
      string_of_int jobs;
      string_of_int report.Core.Search.created;
      string_of_int report.Core.Search.explored;
      Harness.fmt_float report.Core.Search.best_cost;
      Printf.sprintf "%.1f" (secs *. 1e3);
      Printf.sprintf "%.0f" rate;
      fmt_speedup (seq_s /. secs);
      (if report.Core.Search.completed then "yes" else "cut");
    ]
  in
  if not Multicore.available then begin
    print_endline
      "  OCaml 4.x build: domains unavailable, parallel search falls back \
       to the sequential path; recording the sequential run only.";
    Harness.print_table
      ~header:
        [ "mode"; "jobs"; "created"; "explored"; "best cost"; "ms"; "st/s"; "speedup"; "done" ]
      [ row "sequential" 1 (seq, seq_s, seq_rate) ];
    Obs.reset (Obs.global ());
    ignore (Core.Search.run stats opts queries);
    Harness.add_bench_field "parallel"
      (Obs.Json.Obj [ ("available", Obs.Json.Int 0) ])
  end
  else begin
    Printf.printf "  host: %d recommended domain(s)\n"
      (Multicore.recommended_domain_count ());
    let jobs_list = [ 2; 4 ] in
    let det =
      List.map (fun j -> (j, measure Core.Parallel_search.Deterministic j)) jobs_list
    in
    let free =
      List.map (fun j -> (j, measure Core.Parallel_search.Free j)) jobs_list
    in
    Harness.print_table
      ~header:
        [ "mode"; "jobs"; "created"; "explored"; "best cost"; "ms"; "st/s"; "speedup"; "done" ]
      (row "sequential" 1 (seq, seq_s, seq_rate)
      :: List.map (fun (j, m) -> row "deterministic" j m) det
      @ List.map (fun (j, m) -> row "free" j m) free);
    (* Deterministic mode must reproduce the sequential report exactly:
       every counter and the best cost. *)
    let det_matches =
      List.for_all
        (fun (_, ((r : Core.Search.report), _, _)) ->
          r.Core.Search.created = seq.Core.Search.created
          && r.Core.Search.duplicates = seq.Core.Search.duplicates
          && r.Core.Search.discarded = seq.Core.Search.discarded
          && r.Core.Search.explored = seq.Core.Search.explored
          && Float.abs (r.Core.Search.best_cost -. seq.Core.Search.best_cost)
             <= 1e-9)
        det
    in
    (* Free mode explores in schedule order, so counters may differ, but
       a completed run must land on the same best cost. *)
    let free_matches =
      List.for_all
        (fun (_, ((r : Core.Search.report), _, _)) ->
          r.Core.Search.completed
          && Float.abs (r.Core.Search.best_cost -. seq.Core.Search.best_cost)
             <= 1e-6 *. Float.max 1.0 (Float.abs seq.Core.Search.best_cost))
        free
    in
    Printf.printf "  deterministic mode reproduces the sequential report: %s\n"
      (if det_matches then "yes" else "NO — REGRESSION");
    Printf.printf "  free mode reaches the sequential best cost: %s\n"
      (if free_matches then "yes" else "NO — REGRESSION");
    let config label (report, secs, rate) =
      ( label,
        Obs.Json.Obj
          [
            ("states_created", Obs.Json.Int report.Core.Search.created);
            ("states_explored", Obs.Json.Int report.Core.Search.explored);
            ("best_cost", Obs.Json.Float report.Core.Search.best_cost);
            ("elapsed_s", Obs.Json.Float secs);
            ("states_per_sec", Obs.Json.Float rate);
            ("speedup", Obs.Json.Float (seq_s /. secs));
          ] )
    in
    let fields =
      [
        ("available", Obs.Json.Int 1);
        ( "recommended_domains",
          Obs.Json.Int (Multicore.recommended_domain_count ()) );
        ("det_matches_sequential", Obs.Json.Int (if det_matches then 1 else 0));
        ( "free_best_cost_matches",
          Obs.Json.Int (if free_matches then 1 else 0) );
        config "sequential" (seq, seq_s, seq_rate);
      ]
      @ List.map
          (fun (j, m) -> config (Printf.sprintf "det_%d" j) m)
          det
      @ List.map
          (fun (j, m) -> config (Printf.sprintf "free_%d" j) m)
          free
    in
    (* The free-mode runs above polluted the ambient registry with
       schedule-dependent totals; wipe it and replay the canonical
       sequential run so the generic BENCH fields stay deterministic. *)
    Obs.reset (Obs.global ());
    ignore (Core.Search.run stats opts queries);
    Harness.add_bench_field "parallel" (Obs.Json.Obj fields)
  end
