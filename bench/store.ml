(* Storage-backend benchmark: the hash (hexastore-style buckets) and
   compact (sorted delta-compressed segments) backends over the same
   synthetic Barton-shaped triple stream.

   Four measurements per backend at a common scale — ingest rate,
   resident bytes per triple, count-probe rate, and query-evaluation
   rate on the shared eval workload — plus a compact-only capacity leg
   at the large scale (10M triples under BENCH_SCALE=full), which the
   hash backend's per-triple footprint makes impractical to mirror.

   Probe results are accumulated into a checksum that must agree
   between the backends (the run aborts otherwise), so the timed loops
   double as a differential check at bench scale. *)

let common_triples =
  match Harness.scale with Harness.Quick -> 300_000 | Harness.Full -> 2_000_000

let capacity_triples =
  match Harness.scale with
  | Harness.Quick -> 1_000_000
  | Harness.Full -> 10_000_000

let probe_count =
  match Harness.scale with Harness.Quick -> 200_000 | Harness.Full -> 1_000_000

let eval_reps = match Harness.scale with Harness.Quick -> 10 | Harness.Full -> 40

(* ---------- synthetic Barton-shaped stream -------------------------------

   Dictionary codes are the data here (no Dictionary involved), so the
   timings measure the index structures alone.  Layout mirrors the
   Barton generator's shape: ~7 triples per subject, 62 properties
   with a popular band carrying a quarter of the links, objects mixing
   entities and a shared literal pool.  A fixed-seed LCG makes the
   stream deterministic. *)

let lcg state = ((state * 25214903917) + 11) land 0xFFFFFFFFFFFF

(* codes: properties 0..61, literal pool 62..99, entities 100.. *)
let triple_at n_subjects i state =
  let state = lcg state in
  let r = state lsr 16 in
  let s = 100 + (i / 7) in
  let p = if r land 3 = 0 then r lsr 2 mod 15 else 15 + (r lsr 2 mod 47) in
  let o =
    if r lsr 8 mod 3 = 0 then 62 + (r lsr 10 mod 38)
    else 100 + (r lsr 10 mod n_subjects)
  in
  (s, p, o, state)

let ingest kind n =
  let st = Rdf.Store.create ~backend:kind () in
  let n_subjects = (n / 7) + 1 in
  let (), secs =
    Harness.time_once (fun () ->
        let state = ref 12345 in
        for i = 0 to n - 1 do
          let s, p, o, state' = triple_at n_subjects i !state in
          state := state';
          ignore (Rdf.Store.add_encoded st (s, p, o) : bool)
        done;
        (* fold the tail memtable in: steady-state layout, as a bulk
           load would leave it *)
        Rdf.Store.compact st)
  in
  (st, float_of_int n /. secs)

(* Mixed 1-bound / 2-bound count probes over the stream's code ranges;
   the checksum pins the results (and catches backend divergence). *)
let probe_pass st n_subjects =
  let checksum = ref 0 in
  let (), secs =
    Harness.time_once (fun () ->
        let state = ref 54321 in
        for i = 0 to probe_count - 1 do
          let st' = lcg !state in
          state := st';
          let r = st' lsr 16 in
          let s = 100 + (r mod n_subjects) in
          let p = r lsr 4 mod 62 in
          let o = 100 + (r lsr 8 mod n_subjects) in
          let pat =
            match i mod 6 with
            | 0 -> { Rdf.Store.ps = Some s; pp = None; po = None }
            | 1 -> { Rdf.Store.ps = None; pp = Some p; po = None }
            | 2 -> { Rdf.Store.ps = None; pp = None; po = Some o }
            | 3 -> { Rdf.Store.ps = Some s; pp = Some p; po = None }
            | 4 -> { Rdf.Store.ps = None; pp = Some p; po = Some o }
            | _ -> { Rdf.Store.ps = Some s; pp = None; po = Some o }
          in
          checksum := !checksum + Rdf.Store.count_matching st pat
        done)
  in
  (!checksum, float_of_int probe_count /. secs)

(* Copy a store's contents onto the other backend (fold order follows
   the source, so both dictionaries coincide). *)
let copy_onto kind src =
  let dst = Rdf.Store.create ~backend:kind () in
  Rdf.Store.fold_all src
    (fun (s, p, o) () ->
      let re c = Rdf.Store.encode_term dst (Rdf.Store.decode_term src c) in
      ignore (Rdf.Store.add_encoded dst (re s, re p, re o) : bool))
    ();
  Rdf.Store.compact dst;
  dst

(* Bindings/sec of the shared eval workload (compiled plans, no MQO so
   every repetition does full work) against one store. *)
let eval_pass store queries =
  let reg = Obs.global () in
  Query.Plan.reset_cache ();
  Query.Mqo.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Query.Mqo.set_enabled true)
    (fun () ->
      let bindings_of () =
        Option.value ~default:0 (Obs.find_counter reg "eval.bindings")
      in
      let b0 = bindings_of () in
      let (), secs =
        Harness.time_once (fun () ->
            for _ = 1 to eval_reps do
              List.iter
                (fun q -> ignore (Query.Evaluation.eval_cq_codes store q))
                queries
            done)
      in
      let b = bindings_of () - b0 in
      (b, if secs > 0. then float_of_int b /. secs else 0.))

let counter name =
  Option.value ~default:0 (Obs.find_counter (Obs.global ()) name)

let run () =
  Harness.section "Store: hash vs compact backends";
  let n_subjects = (common_triples / 7) + 1 in

  Harness.subsection
    (Printf.sprintf "ingest + probes (%d-triple stream)" common_triples);
  let hash_st, hash_ingest = ingest Rdf.Backend.Hash common_triples in
  let compact_st, compact_ingest = ingest Rdf.Backend.Compact common_triples in
  if Rdf.Store.size hash_st <> Rdf.Store.size compact_st then
    failwith "store bench: backends disagree on the stream's triple count";
  let triples = Rdf.Store.size hash_st in
  let hash_checksum, hash_probes = probe_pass hash_st n_subjects in
  let compact_checksum, compact_probes = probe_pass compact_st n_subjects in
  if hash_checksum <> compact_checksum then
    failwith "store bench: probe checksums diverge between backends";
  let hash_bytes = Rdf.Store.resident_bytes hash_st in
  let compact_bytes = Rdf.Store.resident_bytes compact_st in
  let bpt bytes = float_of_int bytes /. float_of_int (max 1 triples) in
  let ratio =
    if compact_bytes > 0 then float_of_int hash_bytes /. float_of_int compact_bytes
    else 0.
  in
  Harness.print_table
    ~header:
      [ "backend"; "ingest t/s"; "probes/s"; "resident MB"; "bytes/triple" ]
    [
      [
        "hash";
        Harness.fmt_float hash_ingest;
        Harness.fmt_float hash_probes;
        Printf.sprintf "%.1f" (float_of_int hash_bytes /. 1e6);
        Printf.sprintf "%.1f" (bpt hash_bytes);
      ];
      [
        "compact";
        Harness.fmt_float compact_ingest;
        Harness.fmt_float compact_probes;
        Printf.sprintf "%.1f" (float_of_int compact_bytes /. 1e6);
        Printf.sprintf "%.1f" (bpt compact_bytes);
      ];
    ];
  Printf.printf "  compression vs hash: %.1fx fewer resident bytes/triple\n"
    ratio;
  Printf.printf
    "  compact counters: %d merges, %d flushes, %d block decodes, %d cache \
     hits, %d blocks skipped\n"
    (counter "store.merges")
    (counter "store.memtable_flushes")
    (counter "store.block_decodes")
    (counter "store.block_cache_hits")
    (counter "store.block_skips");

  (* eval parity: the eval experiment's workload over the Barton store,
     on both backends (same dictionary order, so identical plans) *)
  Harness.subsection "query evaluation (eval workload, bindings/sec)";
  let barton_hash = Lazy.force Harness.barton_store in
  let barton_compact = copy_onto Rdf.Backend.Compact barton_hash in
  let queries = Eval.workload barton_hash in
  let gate st =
    List.map
      (fun q -> List.length (Query.Evaluation.eval_cq_codes st q))
      queries
  in
  if not (List.equal Int.equal (gate barton_hash) (gate barton_compact)) then
    failwith "store bench: eval answer counts differ between backends";
  let _, hash_eval = eval_pass barton_hash queries in
  let _, compact_eval = eval_pass barton_compact queries in
  let eval_ratio = if hash_eval > 0. then compact_eval /. hash_eval else 0. in
  Harness.print_table
    ~header:[ "hash"; "compact"; "compact/hash" ]
    [
      [
        Harness.fmt_float hash_eval;
        Harness.fmt_float compact_eval;
        Printf.sprintf "%.3f" eval_ratio;
      ];
    ];

  (* capacity leg: compact only — the hash layout at this scale costs
     ~[ratio]x the memory for no extra information *)
  Harness.subsection
    (Printf.sprintf "capacity (compact backend, %d triples)" capacity_triples);
  let cap_st, cap_ingest = ingest Rdf.Backend.Compact capacity_triples in
  let cap_triples = Rdf.Store.size cap_st in
  let cap_bytes = Rdf.Store.resident_bytes cap_st in
  let cap_bpt = float_of_int cap_bytes /. float_of_int (max 1 cap_triples) in
  Harness.print_table
    ~header:[ "triples"; "ingest t/s"; "resident MB"; "bytes/triple" ]
    [
      [
        string_of_int cap_triples;
        Harness.fmt_float cap_ingest;
        Printf.sprintf "%.1f" (float_of_int cap_bytes /. 1e6);
        Printf.sprintf "%.1f" cap_bpt;
      ];
    ];
  Printf.printf "  vs hash at common scale: %.1fx fewer bytes/triple\n"
    (bpt hash_bytes /. cap_bpt);

  Harness.add_bench_field "store"
    (Obs.Json.Obj
       [
         ("triples", Obs.Json.Int triples);
         ("probe_checksum", Obs.Json.Int hash_checksum);
         ( "hash",
           Obs.Json.Obj
             [
               ("ingest_triples_per_sec", Obs.Json.Float hash_ingest);
               ("probes_per_sec", Obs.Json.Float hash_probes);
               ("resident_bytes", Obs.Json.Int hash_bytes);
               ("bytes_per_triple", Obs.Json.Float (bpt hash_bytes));
             ] );
         ( "compact",
           Obs.Json.Obj
             [
               ("ingest_triples_per_sec", Obs.Json.Float compact_ingest);
               ("probes_per_sec", Obs.Json.Float compact_probes);
               ("resident_bytes", Obs.Json.Int compact_bytes);
               ("bytes_per_triple", Obs.Json.Float (bpt compact_bytes));
             ] );
         ("bytes_per_triple_ratio", Obs.Json.Float ratio);
         ("hash_eval_bindings_per_sec", Obs.Json.Float hash_eval);
         ("compact_eval_bindings_per_sec", Obs.Json.Float compact_eval);
         ("eval_ratio_compact_vs_hash", Obs.Json.Float eval_ratio);
         ( "capacity",
           Obs.Json.Obj
             [
               ("triples", Obs.Json.Int cap_triples);
               ("ingest_triples_per_sec", Obs.Json.Float cap_ingest);
               ("resident_bytes", Obs.Json.Int cap_bytes);
               ("bytes_per_triple", Obs.Json.Float cap_bpt);
               ( "bytes_per_triple_ratio_vs_hash",
                 Obs.Json.Float (bpt hash_bytes /. cap_bpt) );
             ] );
       ])
