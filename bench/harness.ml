(* Shared infrastructure for the per-figure/table benchmark harnesses.

   Scale: the paper runs 30-minute to 3-hour searches on a 35M-triple
   PostgreSQL database.  The harness reproduces the *shape* of every
   result at laptop scale; BENCH_SCALE=full enlarges workload sizes and
   time budgets. *)

type scale = Quick | Full

let scale =
  match Sys.getenv_opt "BENCH_SCALE" with
  | Some ("full" | "FULL") -> Full
  | _ -> Quick

let scale_name = match scale with Quick -> "quick" | Full -> "full"

let search_budget = match scale with Quick -> 1.0 | Full -> 30.0
let long_budget = match scale with Quick -> 3.0 | Full -> 120.0
let barton_entities = match scale with Quick -> 400 | Full -> 5000

(* ---------- metrics ------------------------------------------------------ *)

(* With --metrics FILE, main.ml installs an Obs registry once before any
   experiment runs; every search/transition/cost/store event of every
   figure lands in it, grouped under per-experiment spans.  Without the
   flag the global sink stays the no-op one and the runs are unmetered. *)

let metrics_sink : (Obs.t * string) option ref = ref None

let enable_metrics path =
  let registry = Obs.create () in
  Obs.set_global registry;
  metrics_sink := Some (registry, path)

(* Wrap one experiment (or sub-experiment) in a named trace span; a
   no-op when metrics are disabled. *)
let experiment name f = Obs.span (Obs.global ()) name f

let write_metrics () =
  match !metrics_sink with
  | None -> ()
  | Some (registry, path) ->
    Obs.write_file registry path;
    Printf.printf "\nmetrics written to %s\n" path

(* --telemetry FILE: live Prometheus exposition over whichever registry
   is active — the shared --metrics one, or each experiment's fresh
   sink (the exporter re-reads the global per tick, so it follows
   [toplevel]'s registry swaps).  Also turns runtime-event collection
   on, which is what populates gc.max_pause_ns in the BENCH json; with
   the flag absent that field is null and the runs carry no
   event-collection overhead. *)
let telemetry : Obs.Export.exporter option ref = ref None

let start_telemetry ~interval path =
  ignore (Obs.Runtime.start () : bool);
  telemetry := Some (Obs.Export.start ~interval ~path (fun () -> Obs.global ()))

let stop_telemetry () =
  match !telemetry with
  | None -> ()
  | Some e ->
    telemetry := None;
    Obs.Export.stop e;
    Printf.printf "\ntelemetry written to %s\n" (Obs.Export.exporter_path e)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

(* ---------- table printing ---------------------------------------------- *)

let print_table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    let cells =
      List.mapi
        (fun i cell -> Printf.sprintf "%-*s" (List.nth widths i) cell)
        row
    in
    print_endline ("  " ^ String.concat "  " cells)
  in
  print_row header;
  print_endline
    ("  " ^ String.concat "--" (List.map (fun w -> String.make w '-') widths));
  List.iter print_row rows

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e6 then
    Printf.sprintf "%.0f" f
  else if Float.abs f >= 1000. then Printf.sprintf "%.3e" f
  else Printf.sprintf "%.3f" f

let fmt_rcr r = Printf.sprintf "%.3f" r

let fmt_ms ns = Printf.sprintf "%.3f" (ns /. 1e6)

(* ---------- machine-readable baselines (BENCH_<experiment>.json) --------- *)

(* Without --metrics, every top-level experiment runs against its own
   fresh registry and its headline numbers — states/sec, expand-latency
   percentiles, best cost, peak heap — are written to
   BENCH_<experiment>.json for CI to archive and diff.  With --metrics
   the single shared registry wins and no BENCH files are written (the
   two modes want incompatible registry lifetimes). *)

let bench_dir : string option ref = ref (Some ".")

let set_bench_dir dir = bench_dir := Some dir

let disable_bench_json () = bench_dir := None

let baseline : (string * Obs.Json.t) option ref = ref None

let fail_over : float option ref = ref None

(* Warn-only default: regressions are reported but do not fail the run
   unless --fail-over sets an explicit threshold. *)
let warn_threshold = 20.

let regressions = ref 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_baseline path =
  baseline := Some (path, Obs.Json.of_string (read_file path))

let set_fail_over pct = fail_over := Some pct

let bench_file_name name =
  "BENCH_" ^ String.map (fun c -> if c = '/' then '-' else c) name ^ ".json"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Experiment-specific extras appended to the BENCH json — e.g. the
   parallel experiment's scaling section.  Cleared by [toplevel] before
   each experiment so extras never leak across BENCH files. *)
let extra_bench_fields : (string * Obs.Json.t) list ref = ref []

let add_bench_field key json =
  extra_bench_fields := (key, json) :: !extra_bench_fields

(* Query-evaluation section, present only when the experiment drove the
   evaluator under the "eval.run" timer (the eval experiment).  The
   count fields (queries, answers, bindings, probes) are deterministic
   for a fixed workload and participate in the exact baseline compare;
   the rates are wall-clock-derived and only threshold-compared. *)
let eval_json registry =
  match Obs.find_timer registry "eval.run" with
  | None -> None
  | Some (_, run_ns) ->
    let counter n = Option.value ~default:0 (Obs.find_counter registry n) in
    let pctl q =
      match Obs.find_histogram registry "eval.query.ns" with
      | Some h -> Obs.Json.Float (Obs.percentile h q)
      | None -> Obs.Json.Null
    in
    let gauge n =
      match Obs.find_gauge registry n with
      | Some v -> Obs.Json.Float v
      | None -> Obs.Json.Null
    in
    let bindings = counter "eval.bindings" in
    let per_sec =
      if run_ns = 0 then 0.
      else float_of_int bindings /. (float_of_int run_ns /. 1e9)
    in
    Some
      (Obs.Json.Obj
         [
           ("queries", Obs.Json.Int (counter "eval.queries"));
           ("answers", Obs.Json.Int (counter "eval.answers"));
           ("bindings", Obs.Json.Int bindings);
           ("probes", Obs.Json.Int (counter "eval.frame.extensions"));
           ("plan_compiles", Obs.Json.Int (counter "eval.plan.cache_misses"));
           ("plan_cache_hits", Obs.Json.Int (counter "eval.plan.cache_hits"));
           ("run_ns", Obs.Json.Int run_ns);
           ("bindings_per_sec", Obs.Json.Float per_sec);
           ( "query_ns",
             Obs.Json.Obj
               [ ("p50", pctl 50.); ("p90", pctl 90.); ("p99", pctl 99.) ] );
           ("reference_bindings_per_sec", gauge "eval.reference.bindings_per_sec");
           ("speedup_vs_reference", gauge "eval.reference.speedup");
         ])

(* [gc0]/[gc1] are [Gc.quick_stat] readings bracketing the experiment,
   so the collection counts are this experiment's own, not the process's
   cumulative ones.  They are environment-dependent (like
   peak_heap_words and the rates) and stay out of the exact baseline
   compare.  max_pause_ns comes from the runtime-events consumer and is
   null unless --telemetry turned event collection on. *)
let gc_json registry gc0 gc1 =
  Obs.Json.Obj
    [
      ( "minor_collections",
        Obs.Json.Int (gc1.Gc.minor_collections - gc0.Gc.minor_collections) );
      ( "major_collections",
        Obs.Json.Int (gc1.Gc.major_collections - gc0.Gc.major_collections) );
      ("compactions", Obs.Json.Int (gc1.Gc.compactions - gc0.Gc.compactions));
      ( "max_pause_ns",
        match Obs.find_gauge registry "runtime.gc.max_pause_ns" with
        | Some v -> Obs.Json.Float v
        | None -> Obs.Json.Null );
    ]

let bench_json name registry ~gc0 ~gc1 =
  let counter n = Option.value ~default:0 (Obs.find_counter registry n) in
  let timer_total n =
    match Obs.find_timer registry n with Some (_, ns) -> ns | None -> 0
  in
  let pctl q =
    match Obs.find_histogram registry "search.expand.ns" with
    | Some h -> Obs.percentile h q
    | None -> Float.nan
  in
  let gauge n =
    match Obs.find_gauge registry n with
    | Some v -> Obs.Json.Float v
    | None -> Obs.Json.Null
  in
  let created = counter "search.created" in
  let run_ns = timer_total "search.run" in
  let states_per_sec =
    if run_ns = 0 then 0.
    else float_of_int created /. (float_of_int run_ns /. 1e9)
  in
  Obs.Json.Obj
    ([
      (* v3: added the gc section (collection counts, compactions, max
         pause when --telemetry collects runtime events).
         v4: added host_cores and ocaml_version — environment stamps
         the baseline compare consults: rate thresholds turn warn-only
         when the core counts differ (different hardware). *)
      ("schema_version", Obs.Json.Int 4);
      ("experiment", Obs.Json.String name);
      ("scale", Obs.Json.String scale_name);
      ("host_cores", Obs.Json.Int (Multicore.recommended_domain_count ()));
      ("ocaml_version", Obs.Json.String Sys.ocaml_version);
      ("states_created", Obs.Json.Int created);
      ("states_explored", Obs.Json.Int (counter "search.explored"));
      ("search_run_ns", Obs.Json.Int run_ns);
      ("states_per_sec", Obs.Json.Float states_per_sec);
      ( "expand_ns",
        Obs.Json.Obj
          [
            ("p50", Obs.Json.Float (pctl 50.));
            ("p90", Obs.Json.Float (pctl 90.));
            ("p99", Obs.Json.Float (pctl 99.));
          ] );
      ("best_cost", gauge "search.best_cost");
      ("initial_cost", gauge "search.initial_cost");
      (* process-wide interner population after the run: deterministic
         for a fixed workload, so it participates in the exact compare *)
      ("interned_views", gauge "intern.size");
      ("peak_heap_words", Obs.Json.Int (Gc.quick_stat ()).Gc.top_heap_words);
      ("gc", gc_json registry gc0 gc1);
    ]
    @ (match eval_json registry with
      | Some section -> [ ("eval", section) ]
      | None -> [])
    @ List.rev !extra_bench_fields)

(* Numeric lookup along a dotted path ("expand_ns.p50"). *)
let bench_number path json =
  let rec go j = function
    | [] -> (
      match j with
      | Obs.Json.Float f -> Some f
      | Obs.Json.Int i -> Some (float_of_int i)
      | _ -> None)
    | key :: rest -> (
      match Obs.Json.member key j with Some j' -> go j' rest | None -> None)
  in
  go json (String.split_on_char '.' path)

(* Compare one experiment's fresh BENCH json against the loaded
   baseline (matched by experiment name).  Search outcomes must be
   identical — the search is deterministic — while throughput may
   drift up to the threshold before counting as a regression. *)
let compare_to_baseline name current =
  match !baseline with
  | None -> ()
  | Some (path, base) ->
    let base_name =
      match Obs.Json.member "experiment" base with
      | Some (Obs.Json.String s) -> s
      | _ -> ""
    in
    if String.equal base_name name then begin
      let threshold = Option.value ~default:warn_threshold !fail_over in
      subsection
        (Printf.sprintf "baseline compare: %s (threshold %.0f%%%s)" path
           threshold
           (match !fail_over with None -> ", warn-only" | Some _ -> ""));
      List.iter
        (fun key ->
          match (bench_number key base, bench_number key current) with
          | Some b, Some c ->
            if Float.abs (c -. b) > 1e-9 *. Float.max 1. (Float.abs b) then begin
              incr regressions;
              Printf.printf "  REGRESSION %s: %s -> %s (expected identical)\n"
                key (fmt_float b) (fmt_float c)
            end
            else Printf.printf "  ok %s: %s\n" key (fmt_float c)
          | _ -> Printf.printf "  skip %s (absent)\n" key)
        [
          "states_created"; "states_explored"; "best_cost"; "interned_views";
          (* eval-experiment determinism: answer/binding/probe counts of
             the fixed workload (absent, hence skipped, elsewhere) *)
          "eval.queries"; "eval.answers"; "eval.bindings"; "eval.probes";
          (* parallel-experiment determinism flags: deterministic mode
             must reproduce the sequential report, free mode the best
             cost (absent, hence skipped, elsewhere) *)
          "parallel.det_matches_sequential"; "parallel.free_best_cost_matches";
        ];
      (* Rates compare hardware as much as code: when the baseline was
         recorded on a host with a different core count (v4 stamp;
         absent in pre-v4 baselines counts as different), rate
         regressions are reported as warnings and never fail the
         run. *)
      let same_host =
        match (bench_number "host_cores" base, bench_number "host_cores" current)
        with
        | Some b, Some c -> b = c
        | _ -> false
      in
      if not same_host then
        Printf.printf
          "  note: baseline from a different host (core count differs); \
           rate thresholds are warn-only\n";
      let rate key =
        match (bench_number key base, bench_number key current) with
        | Some b, Some c when b > 0. ->
          let drop = (b -. c) /. b *. 100. in
          if drop > threshold then
            if same_host then begin
              incr regressions;
              Printf.printf "  REGRESSION %s: %s -> %s (-%.1f%%)\n" key
                (fmt_float b) (fmt_float c) drop
            end
            else
              Printf.printf "  WARN %s: %s -> %s (-%.1f%%, different host)\n"
                key (fmt_float b) (fmt_float c) drop
          else
            Printf.printf "  ok %s: %s -> %s (%+.1f%%)\n" key (fmt_float b)
              (fmt_float c) (-.drop)
        | _ -> Printf.printf "  skip %s (absent)\n" key
      in
      rate "states_per_sec";
      rate "eval.bindings_per_sec";
      rate "parallel.det_4.states_per_sec";
      rate "parallel.free_4.states_per_sec";
      (* store-experiment rates (absent, hence skipped, elsewhere).
         The bytes ratio is deterministic in spirit but depends on
         stdlib Hashtbl growth, so it rides the rate compare: a drop
         means the compact layout lost compression ground to hash *)
      rate "store.bytes_per_triple_ratio";
      rate "store.compact.ingest_triples_per_sec";
      rate "store.compact.probes_per_sec";
      rate "store.compact_eval_bindings_per_sec"
    end

(* Exit status for main: 0 unless --fail-over turned regressions
   fatal.  Also prints the verdict line CI greps for. *)
let finish_bench () =
  match !baseline with
  | None -> 0
  | Some (path, _) ->
    Printf.printf "\n%d regression(s) against baseline %s\n" !regressions path;
    if !regressions > 0 && !fail_over <> None then 1 else 0

(* Run one *top-level* experiment (main.ml only; sub-experiments keep
   using [experiment]).  Without --metrics, the experiment gets a fresh
   registry so its BENCH json reflects this experiment alone; the
   registry is uninstalled afterwards even if the experiment raises. *)
let toplevel name f =
  match (!metrics_sink, !bench_dir) with
  | Some _, _ | None, None -> experiment name f
  | None, Some dir ->
    extra_bench_fields := [];
    let registry = Obs.create () in
    Obs.set_global registry;
    let gc0 = Gc.quick_stat () in
    Fun.protect
      ~finally:(fun () -> Obs.set_global Obs.disabled)
      (fun () ->
        let result = experiment name f in
        let gc1 = Gc.quick_stat () in
        (* drain any still-buffered runtime events (GC pauses from the
           run's tail) before reading the max-pause gauge *)
        if Obs.Runtime.active () then ignore (Obs.Runtime.poll registry : int);
        let json = bench_json name registry ~gc0 ~gc1 in
        mkdir_p dir;
        let file = Filename.concat dir (bench_file_name name) in
        let oc = open_out file in
        output_string oc (Obs.Json.to_string ~indent:true json);
        output_char oc '\n';
        close_out oc;
        Printf.printf "\n  benchmark json written to %s\n" file;
        compare_to_baseline name json;
        result)

(* ---------- common setups ------------------------------------------------ *)

let barton_store = lazy (Workload.Barton.store ~n_entities:barton_entities ~seed:11 ())
let barton_schema = lazy (Workload.Barton.schema ())

let spec shape n_queries atoms commonality seed =
  {
    Workload.Generator.shape;
    n_queries;
    atoms_per_query = atoms;
    commonality;
    seed;
  }

let options ?(strategy = Core.Search.Dfs) ?(avf = true) ?(stop_var = true)
    ?(budget = search_budget) ?max_states () =
  {
    Core.Search.strategy;
    avf;
    stop_tt = true;
    stop_var;
    time_budget = Some budget;
    max_states;
    weights = Core.Cost.default_weights;
    on_accept = None;
  }

let stats_for store = Stats.Statistics.create store

(* Average number of atoms in the best state's views (§6.4 reports 3.2
   for DFS vs 6.5 for GSTR). *)
let avg_view_atoms (state : Core.State.t) =
  match state.Core.State.views with
  | [] -> 0.
  | views ->
    float_of_int
      (List.fold_left (fun acc v -> acc + Core.View.atom_count v) 0 views)
    /. float_of_int (List.length views)

(* ---------- bechamel ------------------------------------------------------ *)

(* Runs a group of Bechamel tests and returns (name, ns/run) pairs,
   OLS-estimated on the monotonic clock. *)
let measure_tests ?(quota = 0.5) tests =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:false ~quota:(Time.second quota) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name v acc ->
      let estimate =
        match Analyze.OLS.estimates v with
        | Some (e :: _) -> e
        | Some [] | None -> Float.nan
      in
      (name, estimate) :: acc)
    results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)
