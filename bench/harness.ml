(* Shared infrastructure for the per-figure/table benchmark harnesses.

   Scale: the paper runs 30-minute to 3-hour searches on a 35M-triple
   PostgreSQL database.  The harness reproduces the *shape* of every
   result at laptop scale; BENCH_SCALE=full enlarges workload sizes and
   time budgets. *)

type scale = Quick | Full

let scale =
  match Sys.getenv_opt "BENCH_SCALE" with
  | Some ("full" | "FULL") -> Full
  | _ -> Quick

let search_budget = match scale with Quick -> 1.0 | Full -> 30.0
let long_budget = match scale with Quick -> 3.0 | Full -> 120.0
let barton_entities = match scale with Quick -> 400 | Full -> 5000

(* ---------- metrics ------------------------------------------------------ *)

(* With --metrics FILE, main.ml installs an Obs registry once before any
   experiment runs; every search/transition/cost/store event of every
   figure lands in it, grouped under per-experiment spans.  Without the
   flag the global sink stays the no-op one and the runs are unmetered. *)

let metrics_sink : (Obs.t * string) option ref = ref None

let enable_metrics path =
  let registry = Obs.create () in
  Obs.set_global registry;
  metrics_sink := Some (registry, path)

(* Wrap one experiment (or sub-experiment) in a named trace span; a
   no-op when metrics are disabled. *)
let experiment name f = Obs.span (Obs.global ()) name f

let write_metrics () =
  match !metrics_sink with
  | None -> ()
  | Some (registry, path) ->
    Obs.write_file registry path;
    Printf.printf "\nmetrics written to %s\n" path

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

(* ---------- table printing ---------------------------------------------- *)

let print_table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    let cells =
      List.mapi
        (fun i cell -> Printf.sprintf "%-*s" (List.nth widths i) cell)
        row
    in
    print_endline ("  " ^ String.concat "  " cells)
  in
  print_row header;
  print_endline
    ("  " ^ String.concat "--" (List.map (fun w -> String.make w '-') widths));
  List.iter print_row rows

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e6 then
    Printf.sprintf "%.0f" f
  else if Float.abs f >= 1000. then Printf.sprintf "%.3e" f
  else Printf.sprintf "%.3f" f

let fmt_rcr r = Printf.sprintf "%.3f" r

let fmt_ms ns = Printf.sprintf "%.3f" (ns /. 1e6)

(* ---------- common setups ------------------------------------------------ *)

let barton_store = lazy (Workload.Barton.store ~n_entities:barton_entities ~seed:11 ())
let barton_schema = lazy (Workload.Barton.schema ())

let spec shape n_queries atoms commonality seed =
  {
    Workload.Generator.shape;
    n_queries;
    atoms_per_query = atoms;
    commonality;
    seed;
  }

let options ?(strategy = Core.Search.Dfs) ?(avf = true) ?(stop_var = true)
    ?(budget = search_budget) ?max_states () =
  {
    Core.Search.strategy;
    avf;
    stop_tt = true;
    stop_var;
    time_budget = Some budget;
    max_states;
    weights = Core.Cost.default_weights;
    on_accept = None;
  }

let stats_for store = Stats.Statistics.create store

(* Average number of atoms in the best state's views (§6.4 reports 3.2
   for DFS vs 6.5 for GSTR). *)
let avg_view_atoms (state : Core.State.t) =
  match state.Core.State.views with
  | [] -> 0.
  | views ->
    float_of_int
      (List.fold_left (fun acc v -> acc + Core.View.atom_count v) 0 views)
    /. float_of_int (List.length views)

(* ---------- bechamel ------------------------------------------------------ *)

(* Runs a group of Bechamel tests and returns (name, ns/run) pairs,
   OLS-estimated on the monotonic clock. *)
let measure_tests ?(quota = 0.5) tests =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:false ~quota:(Time.second quota) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name v acc ->
      let estimate =
        match Analyze.OLS.estimates v with
        | Some (e :: _) -> e
        | Some [] | None -> Float.nan
      in
      (name, estimate) :: acc)
    results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)
