(* Figure 7: search for view sets using reformulation — best-cost-vs-time
   for pre-reformulation (search over the reformulated workload Qr) vs
   post-reformulation (search over Q with reformulation-aware
   statistics), on the workloads Q1 and Q2 of Table 3.

   Expected shape (paper): the pre-reformulation initial state costs
   more, its cost decreases more slowly, and its final best cost is
   higher than post-reformulation's (×2.7 on Q1, ×22 on Q2); the best
   cost is also reached sooner under post-reformulation. *)

let run_mode store schema queries reasoning =
  let opts = Harness.options ~budget:Harness.long_budget () in
  ignore schema;
  Core.Selector.select ~store:(Rdf.Store.copy store) ~reasoning ~options:opts
    queries

let print_trajectory label (report : Core.Search.report) =
  Printf.printf "\n  %s: initial cost %s, best cost %s after %.2fs%s\n" label
    (Harness.fmt_float report.initial_cost)
    (Harness.fmt_float report.best_cost)
    report.elapsed
    (if report.completed then " (space exhausted)" else "");
  Printf.printf "    time(s)  best-cost\n";
  List.iter
    (fun (t, cost) -> Printf.printf "    %8.3f %s\n" t (Harness.fmt_float cost))
    report.trajectory

let run_workload label queries =
  Harness.experiment ("fig7/" ^ label) @@ fun () ->
  Harness.subsection label;
  let store = Lazy.force Harness.barton_store in
  let schema = Lazy.force Harness.barton_schema in
  let post =
    run_mode store schema queries (Core.Selector.Post_reformulation schema)
  in
  let pre =
    run_mode store schema queries (Core.Selector.Pre_reformulation schema)
  in
  print_trajectory "post-reformulation" post.Core.Selector.report;
  print_trajectory "pre-reformulation" pre.Core.Selector.report;
  let ratio =
    pre.Core.Selector.report.Core.Search.best_cost
    /. Float.max post.Core.Selector.report.Core.Search.best_cost 1e-9
  in
  Printf.printf "\n  best-cost ratio pre/post: %.2f (paper: 2.7 on Q1, 22 on Q2)\n"
    ratio

let run () =
  Harness.section "Figure 7: search for view sets using reformulation";
  let _, _, q1, q2 = Tables.reformulation_workloads () in
  run_workload "Q1 (5 queries)" q1;
  run_workload "Q2 (10 queries)" q2
