(* Figure 4: relative cost reduction of the competitor strategies of [21]
   (Greedy, Heuristic, Pruning) against DFS-AVF-STV and GSTR-AVF-STV on
   small workloads: 5 queries of 5 and of 10 atoms, star and chain
   shapes, high and low commonality.

   Expected shape (paper): on 5-atom workloads all strategies achieve
   reductions with DFS/GSTR best; on 10-atom workloads the [21]
   strategies exhaust memory before producing any solution (rcr 0, OOM),
   while DFS and GSTR keep producing reductions. *)

let memory_cap = 150_000

let workload_cases atoms =
  [
    ("Star/High", Workload.Generator.Star, Workload.Generator.High);
    ("Star/Low", Workload.Generator.Star, Workload.Generator.Low);
    ("Chain/High", Workload.Generator.Chain, Workload.Generator.High);
    ("Chain/Low", Workload.Generator.Chain, Workload.Generator.Low);
  ]
  |> List.map (fun (label, shape, com) ->
         (label, Harness.spec shape 5 atoms com 21))

(* the paper gives every strategy the same 30-minute stoptime; at quick
   scale the competitors get a few times more than our strategies since
   their divide-and-conquer phase must fully develop each query before
   producing any state at all *)
let run_competitor estimator which queries =
  let opts =
    Harness.options ~budget:(4. *. Harness.long_budget) ~max_states:memory_cap ()
  in
  let report = Core.Competitors.run estimator opts which queries in
  (Core.Search.rcr report, report.Core.Search.out_of_memory)

let run_ours stats strategy queries =
  let opts =
    Harness.options ~strategy ~budget:Harness.long_budget
      ~max_states:memory_cap ()
  in
  let report = Core.Search.run stats opts queries in
  (Core.Search.rcr report, report.Core.Search.out_of_memory)

let cell (rcr, oom) =
  if oom && rcr = 0. then "OOM"
  else if rcr = 0. then "0 (cut)"
  else if oom then Harness.fmt_rcr rcr ^ "*"
  else Harness.fmt_rcr rcr

let run_for_atoms atoms =
  Harness.experiment (Printf.sprintf "fig4/atoms-%d" atoms) @@ fun () ->
  Harness.subsection
    (Printf.sprintf "5 queries, %d atoms/query (rcr; OOM = failed in memory cap)" atoms);
  let store = Lazy.force Harness.barton_store in
  let rows =
    List.map
      (fun (label, spec) ->
        let queries = Workload.Generator.generate spec in
        let stats = Harness.stats_for store in
        let estimator = Core.Cost.create stats Core.Cost.default_weights in
        let greedy = run_competitor estimator Core.Competitors.Greedy queries in
        let heuristic =
          run_competitor estimator Core.Competitors.Heuristic queries
        in
        let pruning = run_competitor estimator Core.Competitors.Pruning queries in
        let dfs = run_ours stats Core.Search.Dfs queries in
        let gstr = run_ours stats Core.Search.Gstr queries in
        [ label; cell greedy; cell heuristic; cell pruning; cell dfs; cell gstr ])
      (workload_cases atoms)
  in
  Harness.print_table
    ~header:[ "workload"; "Greedy"; "Heuristic"; "Pruning"; "DFS"; "GSTR" ]
    rows

let run () =
  Harness.section "Figure 4: strategy comparison on small workloads";
  run_for_atoms 5;
  run_for_atoms 10
