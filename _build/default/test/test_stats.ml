open Support

let sample_store =
  store_of
    [
      triple (uri "a") (uri "ex:p") (uri "x");
      triple (uri "a") (uri "ex:p") (uri "y");
      triple (uri "b") (uri "ex:p") (uri "x");
      triple (uri "b") (uri "ex:q") (uri "z");
      triple (uri "c") rdf_type (uri "ex:painting");
      triple (uri "d") rdf_type (uri "ex:picture");
    ]

let schema_sub =
  Rdf.Schema.of_statements
    [ Rdf.Schema.Subclass (uri "ex:painting", uri "ex:picture") ]

(* ---------- plain statistics -------------------------------------------- *)

let test_atom_counts_exact () =
  let stats = Stats.Statistics.create sample_store in
  let count a = int_of_float (Stats.Statistics.atom_count stats a) in
  check_int "p atoms" 3 (count (atom (v "S") (c "ex:p") (v "O")));
  check_int "2-constant" 2 (count (atom (c "a") (c "ex:p") (v "O")));
  check_int "all wildcard" 6 (count (atom (v "S") (v "P") (v "O")));
  check_int "absent constant" 0 (count (atom (v "S") (c "ex:zzz") (v "O")))

let test_atom_count_ignores_var_names () =
  let stats = Stats.Statistics.create sample_store in
  let a1 = atom (v "S") (c "ex:p") (v "O") in
  let a2 = atom (v "Foo") (c "ex:p") (v "Bar") in
  check_bool "same count" true
    (Stats.Statistics.atom_count stats a1 = Stats.Statistics.atom_count stats a2);
  check_int "single cache entry" 1 (Stats.Statistics.cache_size stats)

let test_column_distincts () =
  let stats = Stats.Statistics.create sample_store in
  check_bool "s distinct" true (Stats.Statistics.column_distinct stats `S = 4.);
  check_bool "p distinct" true (Stats.Statistics.column_distinct stats `P = 3.)

let test_property_distincts () =
  let stats = Stats.Statistics.create sample_store in
  (match Stats.Statistics.property_distinct stats (uri "ex:p") `S with
  | Some d -> check_bool "distinct s of p" true (d = 2.)
  | None -> Alcotest.fail "expected Some");
  (match Stats.Statistics.property_distinct stats (uri "ex:p") `O with
  | Some d -> check_bool "distinct o of p" true (d = 2.)
  | None -> Alcotest.fail "expected Some");
  check_bool "unknown property" true
    (Stats.Statistics.property_distinct stats (uri "ex:zzz") `S = None)

let test_prewarm () =
  let stats = Stats.Statistics.create sample_store in
  let q =
    cq [ v "X" ]
      [ atom (v "X") (c "ex:p") (v "Y"); atom (v "X") (c "ex:q") (c "z") ]
  in
  Stats.Statistics.prewarm stats [ q ];
  (* atom1: 2 relaxations; atom2: 4 relaxations; minus shared all-var *)
  check_bool "cache populated" true (Stats.Statistics.cache_size stats >= 5)

(* ---------- reformulated statistics -------------------------------------- *)

let test_reformulated_counts () =
  let stats =
    Stats.Statistics.create ~mode:(Stats.Statistics.Reformulated schema_sub)
      sample_store
  in
  (* picture instances: explicit d + implicit c *)
  check_bool "implicit typing counted" true
    (Stats.Statistics.atom_count stats (atom (v "S") (Query.Qterm.Cst rdf_type) (c "ex:picture"))
    = 2.);
  check_bool "painting unchanged" true
    (Stats.Statistics.atom_count stats (atom (v "S") (Query.Qterm.Cst rdf_type) (c "ex:painting"))
    = 1.)

let prop_reformulated_equals_saturated =
  QCheck.Test.make
    ~name:"post-reformulation statistics = saturated-database statistics"
    ~count:100
    QCheck.(pair arb_store arb_schema)
    (fun (store, schema) ->
      let reform =
        Stats.Statistics.create ~mode:(Stats.Statistics.Reformulated schema) store
      in
      let saturated =
        Stats.Statistics.create
          (Rdf.Entailment.saturated_copy store schema)
      in
      let shapes =
        [
          atom (v "S") (Query.Qterm.Cst rdf_type) (c "C0");
          atom (v "S") (c "P0") (v "O");
          atom (v "S") (c "P1") (c "e3");
          atom (v "S") (v "P") (v "O");
          atom (v "S") (Query.Qterm.Cst rdf_type) (v "O");
        ]
      in
      List.for_all
        (fun a ->
          Stats.Statistics.atom_count reform a
          = Stats.Statistics.atom_count saturated a)
        shapes
      && Stats.Statistics.total_triples reform
         = Stats.Statistics.total_triples saturated)

(* ---------- cardinality estimation ---------------------------------------- *)

let test_single_atom_exact () =
  let stats = Stats.Statistics.create sample_store in
  let q = cq [ v "X"; v "Y" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  check_bool "1-atom views are exact" true
    (Stats.Cardinality.estimate_cq stats q = 3.)

let test_zero_when_empty () =
  let stats = Stats.Statistics.create sample_store in
  let q =
    cq [ v "X" ]
      [ atom (v "X") (c "ex:nothing") (v "Y"); atom (v "Y") (c "ex:p") (v "Z") ]
  in
  check_bool "empty estimate" true (Stats.Cardinality.estimate_cq stats q = 0.)

let test_join_estimate_reasonable () =
  let stats = Stats.Statistics.create sample_store in
  let q =
    cq [ v "X" ]
      [ atom (v "X") (c "ex:p") (v "Y"); atom (v "X") (c "ex:q") (v "Z") ]
  in
  let est = Stats.Cardinality.estimate_cq stats q in
  (* true answer: a and b each joins; cross product would be 3 ≥ est > 0 *)
  check_bool "positive" true (est > 0.);
  check_bool "below cross product" true (est <= 3. +. 1e-9)

let prop_relaxation_monotone_counts =
  QCheck.Test.make ~name:"atom counts grow under constant relaxation"
    ~count:100
    QCheck.(pair arb_store arb_cq)
    (fun (store, q) ->
      let stats = Stats.Statistics.create store in
      List.for_all
        (fun a ->
          let n = Stats.Statistics.atom_count stats a in
          List.for_all
            (fun pos ->
              match Query.Atom.term_at a pos with
              | Query.Qterm.Cst _ ->
                let relaxed = Query.Atom.set_at a pos (v "_fresh") in
                Stats.Statistics.atom_count stats relaxed >= n
              | Query.Qterm.Var _ -> true)
            Query.Atom.positions)
        q.Query.Cq.body)

let prop_estimate_nonnegative =
  QCheck.Test.make ~name:"estimates are non-negative and finite" ~count:100
    QCheck.(pair arb_store arb_cq)
    (fun (store, q) ->
      let stats = Stats.Statistics.create store in
      let est = Stats.Cardinality.estimate_cq stats q in
      est >= 0. && Float.is_finite est)

let prop_var_distinct_bounded =
  QCheck.Test.make ~name:"var distincts bounded by view cardinality" ~count:100
    QCheck.(pair arb_store arb_cq)
    (fun (store, q) ->
      let stats = Stats.Statistics.create store in
      let card = Stats.Cardinality.estimate_cq stats q in
      List.for_all
        (fun x ->
          let d = Stats.Cardinality.var_distinct stats q x in
          d >= 1. && d <= Float.max card 1. +. 1e-9)
        (Query.Cq.body_vars q))

let test_estimate_ucq_is_sum_bound () =
  let stats = Stats.Statistics.create sample_store in
  let a = cq [ v "X" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  let b = cq [ v "X" ] [ atom (v "X") (c "ex:q") (v "Y") ] in
  let u = Query.Ucq.make ~name:"u" [ a; b ] in
  check_bool "sum of branches" true
    (Stats.Cardinality.estimate_ucq stats u
    = Stats.Cardinality.estimate_cq stats a +. Stats.Cardinality.estimate_cq stats b)

let () =
  Alcotest.run "stats"
    [
      ( "statistics",
        [
          Alcotest.test_case "exact atom counts" `Quick test_atom_counts_exact;
          Alcotest.test_case "variable names irrelevant" `Quick
            test_atom_count_ignores_var_names;
          Alcotest.test_case "column distincts" `Quick test_column_distincts;
          Alcotest.test_case "per-property distincts" `Quick
            test_property_distincts;
          Alcotest.test_case "prewarm gathers relaxations" `Quick test_prewarm;
        ] );
      ( "reformulated",
        [
          Alcotest.test_case "implicit triples counted" `Quick
            test_reformulated_counts;
          to_alcotest prop_reformulated_equals_saturated;
        ] );
      ( "cardinality",
        [
          Alcotest.test_case "single atom exact" `Quick test_single_atom_exact;
          Alcotest.test_case "zero when empty" `Quick test_zero_when_empty;
          Alcotest.test_case "join estimate bounded" `Quick
            test_join_estimate_reasonable;
          Alcotest.test_case "UCQ estimate" `Quick test_estimate_ucq_is_sum_bound;
          to_alcotest prop_relaxation_monotone_counts;
          to_alcotest prop_estimate_nonnegative;
          to_alcotest prop_var_distinct_bounded;
        ] );
    ]
