open Support

let qa = cq ~name:"qa" [ v "X" ] [ atom (v "X") (c "ex:p1") (c "ex:k1") ]

let qb =
  cq ~name:"qb" [ v "Y" ]
    [ atom (v "Y") (c "ex:p2") (v "Z"); atom (v "Z") (c "ex:p3") (c "ex:k2") ]

let qc =
  (* shares ex:p1 with qa *)
  cq ~name:"qc" [ v "A" ] [ atom (v "A") (c "ex:p1") (v "B") ]

let test_groups_disjoint () =
  let groups = Core.Partition.groups [ qa; qb ] in
  check_int "two groups" 2 (List.length groups)

let test_groups_transitive () =
  (* qa-qc share p1, so qb is alone *)
  let groups = Core.Partition.groups [ qa; qb; qc ] in
  check_int "two groups" 2 (List.length groups);
  let sizes = List.sort compare (List.map List.length groups) in
  check_bool "sizes 1 and 2" true (sizes = [ 1; 2 ])

let test_groups_preserve_queries () =
  let groups = Core.Partition.groups [ qa; qb; qc ] in
  let names =
    List.sort compare
      (List.concat_map (List.map (fun q -> q.Query.Cq.name)) groups)
  in
  check_bool "all queries present" true (names = [ "qa"; "qb"; "qc" ])

let sample_store =
  store_of
    [
      triple (uri "s1") (uri "ex:p1") (uri "ex:k1");
      triple (uri "s2") (uri "ex:p1") (uri "o1");
      triple (uri "s3") (uri "ex:p2") (uri "s4");
      triple (uri "s4") (uri "ex:p3") (uri "ex:k2");
    ]

let options = { Core.Search.default_options with time_budget = Some 0.5 }

let test_partitioned_select_answers () =
  let result =
    Core.Partition.select ~store:sample_store
      ~reasoning:Core.Selector.No_reasoning ~options [ qa; qb; qc ]
  in
  let env =
    Engine.Materialize.materialize_views sample_store
      result.Core.Selector.recommended
  in
  List.iter
    (fun q ->
      let direct = Query.Evaluation.eval_cq sample_store q in
      let via =
        Engine.Executor.execute_query sample_store env
          (List.assoc q.Query.Cq.name result.Core.Selector.rewritings)
      in
      check_bool (q.Query.Cq.name ^ " answered") true (same_answers direct via))
    [ qa; qb; qc ]

let test_partitioned_matches_monolithic_on_disjoint () =
  (* on constant-disjoint queries, partitioned search reaches the same
     total best cost as the monolithic search (no cross-group fusion
     exists to be lost) *)
  let workload = [ qa; qb ] in
  let full_options = { options with time_budget = None } in
  let mono =
    Core.Selector.select ~store:sample_store
      ~reasoning:Core.Selector.No_reasoning ~options:full_options workload
  in
  let part =
    Core.Partition.select ~store:sample_store
      ~reasoning:Core.Selector.No_reasoning ~options:full_options workload
  in
  check_bool "same best cost" true
    (Float.abs
       (mono.Core.Selector.report.Core.Search.best_cost
       -. part.Core.Selector.report.Core.Search.best_cost)
    < 1e-6)

let prop_partition_preserves_answers =
  QCheck.Test.make ~name:"partitioned selection answers every query" ~count:25
    QCheck.(triple arb_store arb_cq arb_cq)
    (fun (store, q1, q2) ->
      let workload = [ Query.Cq.rename q1 "q1"; Query.Cq.rename q2 "q2" ] in
      let result =
        Core.Partition.select ~store ~reasoning:Core.Selector.No_reasoning
          ~options:{ options with max_states = Some 300 }
          workload
      in
      let env =
        Engine.Materialize.materialize_views store result.Core.Selector.recommended
      in
      List.for_all
        (fun q ->
          same_answers
            (Query.Evaluation.eval_cq store q)
            (Engine.Executor.execute_query store env
               (List.assoc q.Query.Cq.name result.Core.Selector.rewritings)))
        workload)

let () =
  Alcotest.run "partition"
    [
      ( "groups",
        [
          Alcotest.test_case "disjoint split" `Quick test_groups_disjoint;
          Alcotest.test_case "transitive sharing" `Quick test_groups_transitive;
          Alcotest.test_case "queries preserved" `Quick
            test_groups_preserve_queries;
        ] );
      ( "select",
        [
          Alcotest.test_case "answers preserved" `Quick
            test_partitioned_select_answers;
          Alcotest.test_case "matches monolithic on disjoint workloads" `Quick
            test_partitioned_matches_monolithic_on_disjoint;
          to_alcotest prop_partition_preserves_answers;
        ] );
    ]
