open Support

(* ---------- terms ------------------------------------------------------- *)

let test_term_roundtrip () =
  let terms =
    [ uri "http://example.org/a"; uri "bare"; blank "b1"; lit "hello world" ]
  in
  List.iter
    (fun t ->
      check_bool (Rdf.Term.to_string t) true
        (Rdf.Term.equal t (Rdf.Term.of_string (Rdf.Term.to_string t))))
    terms

let test_term_order () =
  check_bool "uri < blank" true (Rdf.Term.compare (uri "z") (blank "a") < 0);
  check_bool "blank < literal" true (Rdf.Term.compare (blank "z") (lit "a") < 0);
  check_bool "same label different kind" false
    (Rdf.Term.equal (uri "x") (lit "x"))

let test_term_predicates () =
  check_bool "is_uri" true (Rdf.Term.is_uri (uri "a"));
  check_bool "is_blank" true (Rdf.Term.is_blank (blank "a"));
  check_bool "is_literal" true (Rdf.Term.is_literal (lit "a"));
  check_int "size" 5 (Rdf.Term.size (lit "hello"))

let prop_term_compare_total =
  QCheck.Test.make ~name:"term compare is antisymmetric and transitive-ish"
    ~count:200
    QCheck.(triple (make gen_uri) (make gen_object) (make gen_object))
    (fun (a, b, cc) ->
      let cmp = Rdf.Term.compare in
      let sgn x = Stdlib.compare x 0 in
      sgn (cmp a b) = -sgn (cmp b a)
      && ((not (cmp a b < 0 && cmp b cc < 0)) || cmp a cc < 0))

(* ---------- triples ----------------------------------------------------- *)

let test_triple_well_formed () =
  check_bool "uri subject ok" true
    (Rdf.Triple.well_formed { s = uri "a"; p = uri "p"; o = lit "x" });
  check_bool "blank subject ok" true
    (Rdf.Triple.well_formed { s = blank "b"; p = uri "p"; o = uri "x" });
  check_bool "literal subject bad" false
    (Rdf.Triple.well_formed { s = lit "a"; p = uri "p"; o = uri "x" });
  check_bool "blank property bad" false
    (Rdf.Triple.well_formed { s = uri "a"; p = blank "p"; o = uri "x" })

let test_triple_make_raises () =
  Alcotest.check_raises "ill-formed triple"
    (Invalid_argument
       "Triple.make: ill-formed triple \"a\" <ex:p> \"x\"")
    (fun () -> ignore (triple (lit "a") (uri "ex:p") (lit "x")))

(* ---------- dictionary -------------------------------------------------- *)

let test_dictionary_roundtrip () =
  let d = Rdf.Dictionary.create () in
  let terms = [ uri "a"; uri "b"; lit "a"; blank "a" ] in
  let codes = List.map (Rdf.Dictionary.encode d) terms in
  check_int "distinct codes" 4 (List.length (List.sort_uniq compare codes));
  List.iter2
    (fun t code ->
      check_bool "decode inverse" true
        (Rdf.Term.equal t (Rdf.Dictionary.decode d code)))
    terms codes;
  check_int "stable re-encode" (List.hd codes)
    (Rdf.Dictionary.encode d (uri "a"));
  check_int "size" 4 (Rdf.Dictionary.size d)

let test_dictionary_growth () =
  let d = Rdf.Dictionary.create () in
  for i = 0 to 4999 do
    ignore (Rdf.Dictionary.encode d (uri (Printf.sprintf "u%d" i)))
  done;
  check_int "5000 codes" 5000 (Rdf.Dictionary.size d);
  check_bool "decode big" true
    (Rdf.Term.equal (uri "u4321") (Rdf.Dictionary.decode d
       (Rdf.Dictionary.encode d (uri "u4321"))))

let test_dictionary_unknown_code () =
  let d = Rdf.Dictionary.create () in
  Alcotest.check_raises "unknown code" Not_found (fun () ->
      ignore (Rdf.Dictionary.decode d 42))

(* ---------- store ------------------------------------------------------- *)

let sample_triples =
  [
    triple (uri "a") (uri "p") (uri "b");
    triple (uri "a") (uri "p") (uri "c");
    triple (uri "a") (uri "q") (uri "b");
    triple (uri "d") (uri "p") (uri "b");
    triple (uri "d") (uri "q") (lit "x");
  ]

let test_store_add_mem () =
  let s = store_of sample_triples in
  check_int "size" 5 (Rdf.Store.size s);
  List.iter (fun tr -> check_bool "mem" true (Rdf.Store.mem s tr)) sample_triples;
  check_bool "dup insert" false (Rdf.Store.add s (List.hd sample_triples));
  check_int "size unchanged" 5 (Rdf.Store.size s)

let test_store_remove () =
  let s = store_of sample_triples in
  check_bool "remove present" true (Rdf.Store.remove s (List.hd sample_triples));
  check_bool "remove absent" false (Rdf.Store.remove s (List.hd sample_triples));
  check_int "size" 4 (Rdf.Store.size s);
  check_bool "gone" false (Rdf.Store.mem s (List.hd sample_triples))

let encode_pattern s (ps, pp, po) =
  let enc = Option.map (Rdf.Store.encode_term s) in
  { Rdf.Store.ps = enc ps; pp = enc pp; po = enc po }

let test_store_counts () =
  let s = store_of sample_triples in
  let count pat = Rdf.Store.count_matching s (encode_pattern s pat) in
  check_int "all" 5 (count (None, None, None));
  check_int "s=a" 3 (count (Some (uri "a"), None, None));
  check_int "p=p" 3 (count (None, Some (uri "p"), None));
  check_int "o=b" 3 (count (None, None, Some (uri "b")));
  check_int "s=a,p=p" 2 (count (Some (uri "a"), Some (uri "p"), None));
  check_int "p=q,o=x" 1 (count (None, Some (uri "q"), Some (lit "x")));
  check_int "full triple" 1
    (count (Some (uri "a"), Some (uri "p"), Some (uri "b")));
  check_int "absent" 0 (count (Some (uri "zz"), None, None))

let test_store_distinct () =
  let s = store_of sample_triples in
  check_int "distinct s" 2 (Rdf.Store.distinct_in_column s `S);
  check_int "distinct p" 2 (Rdf.Store.distinct_in_column s `P);
  check_int "distinct o" 3 (Rdf.Store.distinct_in_column s `O)

let test_store_copy_independent () =
  let s = store_of sample_triples in
  let s' = Rdf.Store.copy s in
  ignore (Rdf.Store.add s' (triple (uri "new") (uri "p") (uri "b")));
  check_int "copy grew" 6 (Rdf.Store.size s');
  check_int "original unchanged" 5 (Rdf.Store.size s)

let test_store_roundtrip () =
  let s = store_of sample_triples in
  let back = List.sort Rdf.Triple.compare (Rdf.Store.to_triples s) in
  let expected = List.sort Rdf.Triple.compare sample_triples in
  check_bool "to_triples roundtrip" true
    (List.for_all2 Rdf.Triple.equal back expected)

let prop_count_matches_bruteforce =
  QCheck.Test.make ~name:"count_matching equals brute force" ~count:150
    QCheck.(
      pair arb_store
        (triple (option (make gen_entity)) (option (make gen_prop))
           (option (make gen_object))))
    (fun (s, (ps, pp, po)) ->
      let pat = encode_pattern s (ps, pp, po) in
      let by_index = Rdf.Store.count_matching s pat in
      let matches (tr : Rdf.Triple.t) =
        let ok part = function
          | None -> true
          | Some t -> Rdf.Term.equal t part
        in
        ok tr.Rdf.Triple.s ps && ok tr.Rdf.Triple.p pp && ok tr.Rdf.Triple.o po
      in
      let brute = List.length (List.filter matches (Rdf.Store.to_triples s)) in
      by_index = brute)

let prop_remove_then_absent =
  QCheck.Test.make ~name:"insert/remove round trip" ~count:100 arb_store
    (fun s ->
      let triples = Rdf.Store.to_triples s in
      List.iter (fun tr -> ignore (Rdf.Store.remove s tr)) triples;
      Rdf.Store.size s = 0)

(* ---------- schema ------------------------------------------------------ *)

let painting = uri "ex:painting"
let masterpiece = uri "ex:masterpiece"
let work = uri "ex:work"
let has_painted = uri "ex:hasPainted"
let has_created = uri "ex:hasCreated"

let sample_schema =
  Rdf.Schema.of_statements
    [
      Rdf.Schema.Subclass (painting, masterpiece);
      Rdf.Schema.Subclass (masterpiece, work);
      Rdf.Schema.Subproperty (has_painted, has_created);
      Rdf.Schema.Range (has_painted, painting);
      Rdf.Schema.Domain (has_created, uri "ex:creator");
    ]

let test_schema_accessors () =
  check_int "size" 5 (Rdf.Schema.size sample_schema);
  check_int "classes" 4 (List.length (Rdf.Schema.classes sample_schema));
  check_int "properties" 2 (List.length (Rdf.Schema.properties sample_schema));
  check_bool "direct subclass" true
    (List.mem painting (Rdf.Schema.direct_subclasses sample_schema masterpiece));
  check_bool "domain lookup" true
    (List.mem (uri "ex:creator") (Rdf.Schema.domains_of sample_schema has_created));
  check_bool "props with range" true
    (List.mem has_painted (Rdf.Schema.properties_with_range sample_schema painting))

let test_schema_closure () =
  let supers = Rdf.Schema.superclasses_closure sample_schema painting in
  check_bool "masterpiece in closure" true (List.mem masterpiece supers);
  check_bool "work in closure (transitive)" true (List.mem work supers);
  check_bool "self not in closure" false (List.mem painting supers);
  let subs = Rdf.Schema.subclasses_closure sample_schema work in
  check_bool "painting below work" true (List.mem painting subs)

let test_schema_closure_cycle () =
  let cyclic =
    Rdf.Schema.of_statements
      [
        Rdf.Schema.Subclass (uri "A", uri "B");
        Rdf.Schema.Subclass (uri "B", uri "A");
      ]
  in
  let closure = Rdf.Schema.superclasses_closure cyclic (uri "A") in
  check_bool "terminates on cycles" true (List.mem (uri "B") closure)

let test_schema_triples_roundtrip () =
  let triples = Rdf.Schema.to_triples sample_schema in
  check_int "five triples" 5 (List.length triples);
  let back = Rdf.Schema.of_triples triples in
  check_int "roundtrip size" 5 (Rdf.Schema.size back);
  check_bool "same statements" true
    (List.sort compare (Rdf.Schema.statements back)
    = List.sort compare (Rdf.Schema.statements sample_schema))

let test_schema_dedup () =
  let s =
    Rdf.Schema.of_statements
      [ Rdf.Schema.Subclass (painting, work); Rdf.Schema.Subclass (painting, work) ]
  in
  check_int "duplicates ignored" 1 (Rdf.Schema.size s)

(* ---------- entailment -------------------------------------------------- *)

let test_saturation_example () =
  (* the §4.1 example: hasPainted ⊑ hasCreated, painting ⊑ masterpiece ⊑
     work, range(hasPainted) = painting *)
  let s =
    store_of [ triple (uri "u") has_painted (uri "starry") ]
  in
  let added = Rdf.Entailment.saturate s sample_schema in
  let expect tr = check_bool (Rdf.Triple.to_string tr) true (Rdf.Store.mem s tr) in
  expect (triple (uri "u") has_created (uri "starry"));
  expect (triple (uri "starry") rdf_type painting);
  expect (triple (uri "starry") rdf_type masterpiece);
  expect (triple (uri "starry") rdf_type work);
  (* domain of hasCreated types u *)
  expect (triple (uri "u") rdf_type (uri "ex:creator"));
  check_int "exactly five implicit triples" 5 added

let test_saturation_idempotent () =
  let s = store_of [ triple (uri "u") has_painted (uri "starry") ] in
  ignore (Rdf.Entailment.saturate s sample_schema);
  let again = Rdf.Entailment.saturate s sample_schema in
  check_int "second saturation adds nothing" 0 again

let test_saturated_copy_preserves_original () =
  let s = store_of [ triple (uri "u") has_painted (uri "starry") ] in
  let sat = Rdf.Entailment.saturated_copy s sample_schema in
  check_int "original size" 1 (Rdf.Store.size s);
  check_bool "copy bigger" true (Rdf.Store.size sat > 1)

let prop_saturation_superset_and_idempotent =
  QCheck.Test.make ~name:"saturation: superset, idempotent, bounded" ~count:100
    QCheck.(pair arb_store arb_schema)
    (fun (s, schema) ->
      let original = Rdf.Store.to_triples s in
      let sat = Rdf.Entailment.saturated_copy s schema in
      let superset = List.for_all (Rdf.Store.mem sat) original in
      let idempotent = Rdf.Entailment.saturate sat schema = 0 in
      (* |implicit| is O(|D|·|S|) up to a small constant for the class
         hierarchy depth; use a generous factor *)
      let bound =
        Rdf.Store.size sat
        <= List.length original
           * (1 + (4 * max 1 (Rdf.Entailment.entailed_bound
                                ~data_size:1 ~schema_size:(Rdf.Schema.size schema))))
        + 64
      in
      superset && idempotent && bound)

let prop_saturation_sound =
  (* every derived triple is justified by one rule application from the
     saturated store; probes work at the encoded level because the range
     rule may type literal objects *)
  QCheck.Test.make ~name:"saturation soundness" ~count:80
    QCheck.(pair arb_store arb_schema)
    (fun (s, schema) ->
      let sat = Rdf.Entailment.saturated_copy s schema in
      let mem_parts subj p o =
        match (subj, Rdf.Store.find_term sat p, o) with
        | Some a, Some b, Some cc -> Rdf.Store.mem_encoded sat (a, b, cc)
        | _ -> false
      in
      let count pat = Rdf.Store.count_matching sat pat in
      let in_original (subj, p, o) =
        let decode = Rdf.Store.decode_term sat in
        match
          ( Rdf.Store.find_term s (decode subj),
            Rdf.Store.find_term s (decode p),
            Rdf.Store.find_term s (decode o) )
        with
        | Some a, Some b, Some cc -> Rdf.Store.mem_encoded s (a, b, cc)
        | _ -> false
      in
      let type_code = Rdf.Store.find_term sat rdf_type in
      let justified ((subj, p, o) as tr) =
        let is_type = type_code = Some p in
        let decode = Rdf.Store.decode_term sat in
        in_original tr
        || (* rule 1: subclass *)
        (is_type
         && List.exists
              (fun c1 ->
                mem_parts (Some subj) rdf_type (Rdf.Store.find_term sat c1))
              (Rdf.Schema.direct_subclasses schema (decode o)))
        || (* rule 2: subproperty *)
        List.exists
          (fun p1 -> mem_parts (Some subj) p1 (Some o))
          (Rdf.Schema.direct_subproperties schema (decode p))
        || (* rules 3/4: domain or range typing *)
        (is_type
         && (List.exists
               (fun prop ->
                 count
                   { Rdf.Store.ps = Some subj;
                     pp = Rdf.Store.find_term sat prop;
                     po = None }
                 > 0)
               (Rdf.Schema.properties_with_domain schema (decode o))
            || List.exists
                 (fun prop ->
                   count
                     { Rdf.Store.ps = None;
                       pp = Rdf.Store.find_term sat prop;
                       po = Some subj }
                   > 0)
                 (Rdf.Schema.properties_with_range schema (decode o))))
      in
      Rdf.Store.fold_all sat (fun tr acc -> acc && justified tr) true)

let () =
  Alcotest.run "rdf"
    [
      ( "term",
        [
          Alcotest.test_case "roundtrip" `Quick test_term_roundtrip;
          Alcotest.test_case "ordering" `Quick test_term_order;
          Alcotest.test_case "predicates" `Quick test_term_predicates;
          to_alcotest prop_term_compare_total;
        ] );
      ( "triple",
        [
          Alcotest.test_case "well-formedness" `Quick test_triple_well_formed;
          Alcotest.test_case "make raises" `Quick test_triple_make_raises;
        ] );
      ( "dictionary",
        [
          Alcotest.test_case "roundtrip" `Quick test_dictionary_roundtrip;
          Alcotest.test_case "growth" `Quick test_dictionary_growth;
          Alcotest.test_case "unknown code" `Quick test_dictionary_unknown_code;
        ] );
      ( "store",
        [
          Alcotest.test_case "add and mem" `Quick test_store_add_mem;
          Alcotest.test_case "remove" `Quick test_store_remove;
          Alcotest.test_case "pattern counts" `Quick test_store_counts;
          Alcotest.test_case "distinct columns" `Quick test_store_distinct;
          Alcotest.test_case "copy independence" `Quick test_store_copy_independent;
          Alcotest.test_case "to_triples roundtrip" `Quick test_store_roundtrip;
          to_alcotest prop_count_matches_bruteforce;
          to_alcotest prop_remove_then_absent;
        ] );
      ( "schema",
        [
          Alcotest.test_case "accessors" `Quick test_schema_accessors;
          Alcotest.test_case "transitive closure" `Quick test_schema_closure;
          Alcotest.test_case "closure on cycles" `Quick test_schema_closure_cycle;
          Alcotest.test_case "triples roundtrip" `Quick test_schema_triples_roundtrip;
          Alcotest.test_case "statement dedup" `Quick test_schema_dedup;
        ] );
      ( "entailment",
        [
          Alcotest.test_case "paper example" `Quick test_saturation_example;
          Alcotest.test_case "idempotent" `Quick test_saturation_idempotent;
          Alcotest.test_case "copy preserves original" `Quick
            test_saturated_copy_preserves_original;
          to_alcotest prop_saturation_superset_and_idempotent;
          to_alcotest prop_saturation_sound;
        ] );
    ]
