(* Shared helpers and QCheck generators for the test suites. *)

let uri u = Rdf.Term.Uri u
let lit l = Rdf.Term.Literal l
let blank b = Rdf.Term.Blank b

let v x = Query.Qterm.Var x
let c u = Query.Qterm.Cst (Rdf.Term.Uri u)
let cl l = Query.Qterm.Cst (Rdf.Term.Literal l)

let atom s p o = Query.Atom.make s p o

let cq ?(name = "q") head body = Query.Cq.make ~name ~head ~body

let triple s p o = Rdf.Triple.make s p o

let store_of triples = Rdf.Store.of_triples triples

let rdf_type = Rdf.Vocabulary.rdf_type

(* ---------- reference (naive) CQ evaluation ----------------------------- *)

module SMap = Map.Make (String)

(* Cartesian-product evaluation: only for tiny stores and short queries. *)
let eval_reference store (q : Query.Cq.t) =
  let triples = Rdf.Store.to_triples store in
  let unify_term env qt (term : Rdf.Term.t) =
    match qt with
    | Query.Qterm.Cst cst ->
      if Rdf.Term.equal cst term then Some env else None
    | Query.Qterm.Var x -> (
      match SMap.find_opt x env with
      | Some bound -> if Rdf.Term.equal bound term then Some env else None
      | None -> Some (SMap.add x term env))
  in
  let unify_atom env (a : Query.Atom.t) (tr : Rdf.Triple.t) =
    Option.bind (unify_term env a.s tr.Rdf.Triple.s) (fun env ->
        Option.bind (unify_term env a.p tr.Rdf.Triple.p) (fun env ->
            unify_term env a.o tr.Rdf.Triple.o))
  in
  let rec go env = function
    | [] ->
      [
        Array.of_list
          (List.map
             (function
               | Query.Qterm.Cst cst -> cst
               | Query.Qterm.Var x -> SMap.find x env)
             q.Query.Cq.head);
      ]
    | a :: rest ->
      List.concat_map
        (fun tr ->
          match unify_atom env a tr with
          | Some env' -> go env' rest
          | None -> [])
        triples
  in
  List.sort_uniq compare (go SMap.empty q.Query.Cq.body)

let same_answers = Query.Evaluation.same_answers

(* ---------- QCheck generators ------------------------------------------- *)

open QCheck

let gen_uri =
  Gen.map (fun i -> uri (Printf.sprintf "u%d" i)) (Gen.int_range 0 7)

let gen_class = Gen.map (fun i -> uri (Printf.sprintf "C%d" i)) (Gen.int_range 0 4)
let gen_prop = Gen.map (fun i -> uri (Printf.sprintf "P%d" i)) (Gen.int_range 0 4)

let gen_entity =
  Gen.map (fun i -> uri (Printf.sprintf "e%d" i)) (Gen.int_range 0 9)

let gen_object =
  Gen.oneof
    [
      gen_entity;
      Gen.map (fun i -> lit (Printf.sprintf "l%d" i)) (Gen.int_range 0 3);
      gen_class;
    ]

(* Data triples use either a plain property or rdf:type with a class, so
   that schemas have something to entail. *)
let gen_data_triple =
  Gen.oneof
    [
      Gen.map3 (fun s p o -> Rdf.Triple.make s p o) gen_entity gen_prop gen_object;
      Gen.map2 (fun s cls -> Rdf.Triple.make s rdf_type cls) gen_entity gen_class;
    ]

let gen_store =
  Gen.map store_of (Gen.list_size (Gen.int_range 3 30) gen_data_triple)

let arb_store = make ~print:(fun s -> Printf.sprintf "<store:%d triples>" (Rdf.Store.size s)) gen_store

let gen_statement =
  Gen.oneof
    [
      Gen.map2 (fun a b -> Rdf.Schema.Subclass (a, b)) gen_class gen_class;
      Gen.map2 (fun a b -> Rdf.Schema.Subproperty (a, b)) gen_prop gen_prop;
      Gen.map2 (fun p cls -> Rdf.Schema.Domain (p, cls)) gen_prop gen_class;
      Gen.map2 (fun p cls -> Rdf.Schema.Range (p, cls)) gen_prop gen_class;
    ]

let gen_schema =
  Gen.map Rdf.Schema.of_statements (Gen.list_size (Gen.int_range 0 6) gen_statement)

let arb_schema =
  make
    ~print:(fun s -> Format.asprintf "%a" Rdf.Schema.pp s)
    gen_schema

(* Small connected conjunctive queries.  Atom i ≥ 1 reuses a variable
   from the previous atoms so the query never has a Cartesian product. *)
let gen_cq =
  let open Gen in
  let* n_atoms = int_range 1 3 in
  let var_name i = Printf.sprintf "V%d" i in
  let rec build i vars acc =
    if i >= n_atoms then return (List.rev acc)
    else
      let* anchor =
        if vars = [] then return (var_name 0)
        else oneofl vars
      in
      let fresh = var_name (2 * i + 1) in
      let* kind = int_range 0 3 in
      let* cls = gen_class in
      let* prop = gen_prop in
      let* obj_cst = gen_object in
      let a, new_vars =
        match kind with
        | 0 -> (atom (v anchor) (Query.Qterm.Cst rdf_type) (Query.Qterm.Cst cls), [])
        | 1 -> (atom (v anchor) (Query.Qterm.Cst prop) (v fresh), [ fresh ])
        | 2 -> (atom (v anchor) (Query.Qterm.Cst prop) (Query.Qterm.Cst obj_cst), [])
        | _ -> (atom (v fresh) (Query.Qterm.Cst prop) (v anchor), [ fresh ])
      in
      build (i + 1) (new_vars @ vars) (a :: acc)
  in
  let* body = build 0 [] [] in
  let vars =
    List.sort_uniq String.compare (List.concat_map Query.Atom.var_set body)
  in
  let* head_size = int_range 1 (min 2 (List.length vars)) in
  let head = List.filteri (fun i _ -> i < head_size) vars in
  return (cq (List.map v head) body)

let arb_cq = make ~print:Query.Cq.to_string gen_cq

(* Queries with variables in property or class position exercise
   reformulation rules 5 and 6. *)
let gen_cq_with_schema_vars =
  let open Gen in
  let* base = gen_cq in
  let* flip = bool in
  if not flip then return base
  else
    let body = base.Query.Cq.body in
    let* idx = int_range 0 (List.length body - 1) in
    let target = List.nth body idx in
    let* mode = bool in
    let replaced =
      if mode then Query.Atom.set_at target Query.Atom.P (v "PV")
      else if Query.Qterm.equal target.Query.Atom.p (Query.Qterm.Cst rdf_type)
      then Query.Atom.set_at target Query.Atom.O (v "CV")
      else target
    in
    let body' = List.mapi (fun i a -> if i = idx then replaced else a) body in
    return
      (Query.Cq.make ~name:base.Query.Cq.name ~head:base.Query.Cq.head ~body:body')

let arb_cq_schema_vars = make ~print:Query.Cq.to_string gen_cq_with_schema_vars

(* Random variable renaming of a query, for canonicalization tests. *)
let gen_renaming (q : Query.Cq.t) =
  let open Gen in
  let vars = Query.Cq.body_vars q in
  let* salt = int_range 0 1000 in
  let* shuffled = Gen.shuffle_l vars in
  let mapping = List.combine vars shuffled in
  return
    (Query.Cq.subst
       (fun x ->
         match List.assoc_opt x mapping with
         | Some y -> Some (Query.Qterm.Var (Printf.sprintf "R%d_%s" salt y))
         | None -> None)
       q)

let to_alcotest = QCheck_alcotest.to_alcotest

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
