open Support

let env_of bindings =
  let env = Hashtbl.create 8 in
  List.iter (fun (name, cols) -> Hashtbl.replace env name cols) bindings;
  env

let sample_env = env_of [ ("v1", [ "a"; "b" ]); ("v2", [ "b"; "c" ]) ]

let scan name = Core.Rewriting.Scan name

let test_merge_selects () =
  let expr =
    Core.Rewriting.Select
      ( [ Core.Rewriting.Eq_cst ("a", uri "k") ],
        Core.Rewriting.Select ([ Core.Rewriting.Eq_col ("a", "b") ], scan "v1") )
  in
  match Core.Simplify.simplify sample_env expr with
  | Core.Rewriting.Select (conds, Core.Rewriting.Scan "v1") ->
    check_int "merged conditions" 2 (List.length conds)
  | other -> Alcotest.failf "unexpected: %s" (Core.Rewriting.to_string other)

let test_identity_project_removed () =
  let expr = Core.Rewriting.Project ([ "a"; "b" ], scan "v1") in
  check_bool "identity project gone" true
    (Core.Simplify.simplify sample_env expr = scan "v1")

let test_nested_projects_collapse () =
  let expr =
    Core.Rewriting.Project
      ([ "a" ], Core.Rewriting.Project ([ "a"; "b" ], scan "v1"))
  in
  match Core.Simplify.simplify sample_env expr with
  | Core.Rewriting.Project ([ "a" ], Core.Rewriting.Scan "v1") -> ()
  | other -> Alcotest.failf "unexpected: %s" (Core.Rewriting.to_string other)

let test_select_pushes_through_project () =
  let expr =
    Core.Rewriting.Select
      ( [ Core.Rewriting.Eq_cst ("a", uri "k") ],
        Core.Rewriting.Project ([ "a" ], scan "v1") )
  in
  match Core.Simplify.simplify sample_env expr with
  | Core.Rewriting.Project ([ "a" ], Core.Rewriting.Select (_, Core.Rewriting.Scan "v1"))
    -> ()
  | other -> Alcotest.failf "unexpected: %s" (Core.Rewriting.to_string other)

let test_select_splits_across_join () =
  let expr =
    Core.Rewriting.Select
      ( [
          Core.Rewriting.Eq_cst ("a", uri "k");
          Core.Rewriting.Eq_cst ("c", uri "m");
        ],
        Core.Rewriting.Join ([], scan "v1", scan "v2") )
  in
  match Core.Simplify.simplify sample_env expr with
  | Core.Rewriting.Join
      ( [],
        Core.Rewriting.Select ([ Core.Rewriting.Eq_cst ("a", _) ], Core.Rewriting.Scan "v1"),
        Core.Rewriting.Select ([ Core.Rewriting.Eq_cst ("c", _) ], Core.Rewriting.Scan "v2") )
    -> ()
  | other -> Alcotest.failf "unexpected: %s" (Core.Rewriting.to_string other)

let test_join_condition_stays_above () =
  let expr =
    Core.Rewriting.Select
      ( [ Core.Rewriting.Eq_col ("a", "c") ],
        Core.Rewriting.Join ([], scan "v1", scan "v2") )
  in
  match Core.Simplify.simplify sample_env expr with
  | Core.Rewriting.Select ([ Core.Rewriting.Eq_col ("a", "c") ], Core.Rewriting.Join _)
    -> ()
  | other -> Alcotest.failf "unexpected: %s" (Core.Rewriting.to_string other)

let test_renames_compose () =
  let expr =
    Core.Rewriting.Rename
      ( [ ("x", "y") ],
        Core.Rewriting.Rename ([ ("a", "x"); ("b", "b2") ], scan "v1") )
  in
  match Core.Simplify.simplify sample_env expr with
  | Core.Rewriting.Rename (mapping, Core.Rewriting.Scan "v1") ->
    check_bool "composed" true
      (List.sort compare mapping = [ ("a", "y"); ("b", "b2") ])
  | other -> Alcotest.failf "unexpected: %s" (Core.Rewriting.to_string other)

let test_identity_rename_removed () =
  let expr = Core.Rewriting.Rename ([ ("a", "a"); ("b", "b") ], scan "v1") in
  check_bool "identity rename gone" true
    (Core.Simplify.simplify sample_env expr = scan "v1")

let test_select_through_rename () =
  let expr =
    Core.Rewriting.Select
      ( [ Core.Rewriting.Eq_cst ("x", uri "k") ],
        Core.Rewriting.Rename ([ ("a", "x") ], scan "v1") )
  in
  match Core.Simplify.simplify sample_env expr with
  | Core.Rewriting.Rename
      (_, Core.Rewriting.Select ([ Core.Rewriting.Eq_cst ("a", _) ], Core.Rewriting.Scan "v1"))
    -> ()
  | other -> Alcotest.failf "unexpected: %s" (Core.Rewriting.to_string other)

let test_union_flattens_and_dedups () =
  let expr =
    Core.Rewriting.Union
      [ scan "v1"; Core.Rewriting.Union [ scan "v1"; scan "v2" ] ]
  in
  match Core.Simplify.simplify sample_env expr with
  | Core.Rewriting.Union [ Core.Rewriting.Scan "v1"; Core.Rewriting.Scan "v2" ] -> ()
  | other -> Alcotest.failf "unexpected: %s" (Core.Rewriting.to_string other)

let test_columns_preserved () =
  let exprs =
    [
      Core.Rewriting.Project ([ "b"; "a" ], scan "v1");
      Core.Rewriting.Select
        ( [ Core.Rewriting.Eq_cst ("b", uri "k") ],
          Core.Rewriting.Join ([], scan "v1", scan "v2") );
      Core.Rewriting.Rename ([ ("a", "z") ], scan "v1");
    ]
  in
  List.iter
    (fun expr ->
      let before = Core.Rewriting.columns sample_env expr in
      let after =
        Core.Rewriting.columns sample_env (Core.Simplify.simplify sample_env expr)
      in
      check_bool "columns preserved" true (before = after))
    exprs

(* The big one: along random transition walks, the simplified rewriting
   executes to exactly the same answers as the raw one. *)
let prop_simplify_execution_equivalent =
  QCheck.Test.make
    ~name:"simplified rewritings execute identically" ~count:60
    QCheck.(
      triple arb_store (pair arb_cq arb_cq) (list_of_size (Gen.return 6) small_nat))
    (fun (store, (qa, qb), choices) ->
      let workload = [ Query.Cq.rename qa "qa"; Query.Cq.rename qb "qb" ] in
      let state = ref (Core.State.initial workload) in
      List.iteri
        (fun i choice ->
          let kind = List.nth Core.Transition.all_kinds (i mod 4) in
          match Core.Transition.successors !state kind with
          | [] -> ()
          | succs -> state := List.nth succs (choice mod List.length succs))
        choices;
      let env_cols = Core.State.env !state in
      let env = Engine.Materialize.materialize_state store !state in
      List.for_all
        (fun (_, rewriting) ->
          let raw = Engine.Executor.execute_query store env rewriting in
          let simplified = Core.Simplify.simplify env_cols rewriting in
          let opt = Engine.Executor.execute_query store env simplified in
          Core.Rewriting.well_formed env_cols simplified
          && same_answers raw opt)
        !state.Core.State.rewritings)

let prop_simplify_never_grows =
  QCheck.Test.make ~name:"simplification never adds operator nodes" ~count:60
    QCheck.(
      triple arb_store (pair arb_cq arb_cq) (list_of_size (Gen.return 5) small_nat))
    (fun (_, (qa, qb), choices) ->
      let workload = [ Query.Cq.rename qa "qa"; Query.Cq.rename qb "qb" ] in
      let state = ref (Core.State.initial workload) in
      List.iteri
        (fun i choice ->
          let kind = List.nth Core.Transition.all_kinds (i mod 4) in
          match Core.Transition.successors !state kind with
          | [] -> ()
          | succs -> state := List.nth succs (choice mod List.length succs))
        choices;
      let env_cols = Core.State.env !state in
      List.for_all
        (fun (_, rewriting) ->
          Core.Simplify.node_count (Core.Simplify.simplify env_cols rewriting)
          <= Core.Simplify.node_count rewriting)
        !state.Core.State.rewritings)

let () =
  Alcotest.run "simplify"
    [
      ( "rules",
        [
          Alcotest.test_case "merge selects" `Quick test_merge_selects;
          Alcotest.test_case "identity project" `Quick
            test_identity_project_removed;
          Alcotest.test_case "nested projects" `Quick
            test_nested_projects_collapse;
          Alcotest.test_case "select through project" `Quick
            test_select_pushes_through_project;
          Alcotest.test_case "select splits across join" `Quick
            test_select_splits_across_join;
          Alcotest.test_case "cross-side condition stays" `Quick
            test_join_condition_stays_above;
          Alcotest.test_case "renames compose" `Quick test_renames_compose;
          Alcotest.test_case "identity rename" `Quick test_identity_rename_removed;
          Alcotest.test_case "select through rename" `Quick
            test_select_through_rename;
          Alcotest.test_case "union flatten/dedup" `Quick
            test_union_flattens_and_dedups;
          Alcotest.test_case "columns preserved" `Quick test_columns_preserved;
        ] );
      ( "equivalence",
        [
          to_alcotest prop_simplify_execution_equivalent;
          to_alcotest prop_simplify_never_grows;
        ] );
    ]
