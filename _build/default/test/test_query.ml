open Support

(* ---------- atoms ------------------------------------------------------- *)

let test_atom_accessors () =
  let a = atom (v "X") (c "ex:p") (cl "42") in
  check_bool "term_at S" true (Query.Qterm.equal (Query.Atom.term_at a S) (v "X"));
  check_int "constant count" 2 (Query.Atom.constant_count a);
  check_bool "vars" true (Query.Atom.vars a = [ "X" ]);
  let a' = Query.Atom.set_at a O (v "Y") in
  check_bool "set_at" true (Query.Atom.vars a' = [ "X"; "Y" ])

let test_atom_subst () =
  let a = atom (v "X") (c "ex:p") (v "X") in
  let a' = Query.Atom.subst_var "X" (c "ex:k") a in
  check_int "all occurrences" 3 (Query.Atom.constant_count a');
  let renamed = Query.Atom.rename_var "X" "Z" a in
  check_bool "rename" true (Query.Atom.var_set renamed = [ "Z" ])

let test_atom_shares_var () =
  let a = atom (v "X") (c "ex:p") (v "Y") in
  let b = atom (v "Y") (c "ex:q") (v "Z") in
  let d = atom (v "W") (c "ex:q") (v "U") in
  check_bool "shares" true (Query.Atom.shares_var a b);
  check_bool "disjoint" false (Query.Atom.shares_var a d)

(* ---------- query construction ------------------------------------------ *)

let q1_paper =
  (* the paper's running example q1 *)
  cq ~name:"q1"
    [ v "X"; v "Z" ]
    [
      atom (v "X") (c "ex:hasPainted") (c "ex:starryNight");
      atom (v "X") (c "ex:isParentOf") (v "Y");
      atom (v "Y") (c "ex:hasPainted") (v "Z");
    ]

let test_cq_make_unsafe_head () =
  Alcotest.check_raises "unsafe head"
    (Invalid_argument "Cq.make: unsafe head variable Z") (fun () ->
      ignore (cq [ v "Z" ] [ atom (v "X") (c "ex:p") (v "Y") ]))

let test_cq_make_empty_body () =
  Alcotest.check_raises "empty body" (Invalid_argument "Cq.make: empty body")
    (fun () -> ignore (cq [ v "X" ] []))

let test_cq_accessors () =
  check_int "arity" 2 (Query.Cq.arity q1_paper);
  check_int "atoms" 3 (Query.Cq.atom_count q1_paper);
  check_int "constants" 4 (Query.Cq.constant_count q1_paper);
  check_bool "head vars" true (Query.Cq.head_vars q1_paper = [ "X"; "Z" ]);
  check_bool "existential" true (Query.Cq.existential_vars q1_paper = [ "Y" ]);
  check_bool "connected" true (Query.Cq.is_connected q1_paper)

let test_cq_freshen_preserves_structure () =
  let fresh = Query.Cq.freshen q1_paper in
  check_bool "isomorphic" true
    (Query.Cq.canonical_string fresh = Query.Cq.canonical_string q1_paper);
  check_bool "different vars" true
    (Query.Cq.body_vars fresh <> Query.Cq.body_vars q1_paper)

(* ---------- homomorphisms and containment ------------------------------- *)

let test_containment_basic () =
  let general = cq [ v "X" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  let specific = cq [ v "X" ] [ atom (v "X") (c "ex:p") (c "ex:k") ] in
  check_bool "specific ⊆ general" true (Query.Cq.contained_in specific general);
  check_bool "general ⊄ specific" false (Query.Cq.contained_in general specific)

let test_equivalence_with_redundant_atom () =
  let minimal = cq [ v "X" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  let redundant =
    cq [ v "X" ]
      [ atom (v "X") (c "ex:p") (v "Y"); atom (v "X") (c "ex:p") (v "Z") ]
  in
  check_bool "equivalent" true (Query.Cq.equivalent minimal redundant)

let test_not_equivalent_different_constants () =
  let a = cq [ v "X" ] [ atom (v "X") (c "ex:p") (c "ex:k1") ] in
  let b = cq [ v "X" ] [ atom (v "X") (c "ex:p") (c "ex:k2") ] in
  check_bool "different constants" false (Query.Cq.equivalent a b)

let test_head_respected () =
  let a = cq [ v "X" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  let b = cq [ v "Y" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  check_bool "heads differ" false (Query.Cq.equivalent a b)

let prop_equivalence_reflexive =
  QCheck.Test.make ~name:"equivalence is reflexive (under renaming)" ~count:100
    arb_cq (fun q ->
      let renamed =
        Query.Cq.subst (fun x -> Some (Query.Qterm.Var ("RR_" ^ x))) q
      in
      Query.Cq.equivalent q renamed)

(* ---------- minimization ------------------------------------------------ *)

let test_minimize_removes_redundancy () =
  let redundant =
    cq [ v "X" ]
      [ atom (v "X") (c "ex:p") (v "Y"); atom (v "X") (c "ex:p") (v "Z") ]
  in
  let core = Query.Cq.minimize redundant in
  check_int "one atom left" 1 (Query.Cq.atom_count core);
  check_bool "still equivalent" true (Query.Cq.equivalent core redundant)

let test_minimize_keeps_minimal () =
  let m = Query.Cq.minimize q1_paper in
  check_int "already minimal" 3 (Query.Cq.atom_count m);
  check_bool "is_minimal" true (Query.Cq.is_minimal q1_paper)

let prop_minimize_equivalent_and_idempotent =
  QCheck.Test.make ~name:"minimize: equivalent, idempotent" ~count:100 arb_cq
    (fun q ->
      let m = Query.Cq.minimize q in
      Query.Cq.equivalent q m
      && Query.Cq.atom_count (Query.Cq.minimize m) = Query.Cq.atom_count m)

(* ---------- connectivity ------------------------------------------------ *)

let test_components () =
  let q =
    Query.Cq.make ~name:"q" ~head:[ v "X"; v "A" ]
      ~body:
        [
          atom (v "X") (c "ex:p") (v "Y");
          atom (v "Y") (c "ex:q") (v "Z");
          atom (v "A") (c "ex:p") (v "B");
        ]
  in
  check_int "two components" 2 (List.length (Query.Cq.components q));
  check_bool "not connected" false (Query.Cq.is_connected q)

(* ---------- canonicalization -------------------------------------------- *)

let prop_canonical_invariant_under_renaming =
  QCheck.Test.make ~name:"canonical string invariant under renaming" ~count:200
    QCheck.(
      make
        Gen.(gen_cq >>= fun q -> gen_renaming q >>= fun r -> return (q, r)))
    (fun (q, renamed) ->
      Query.Cq.canonical_string q = Query.Cq.canonical_string renamed)

let prop_canonical_body_matches_isomorphism =
  QCheck.Test.make ~name:"canonical body string ⟺ body isomorphism" ~count:200
    QCheck.(pair arb_cq arb_cq)
    (fun (a, b) ->
      let canon_eq =
        Query.Cq.canonical_body_string a = Query.Cq.canonical_body_string b
      in
      let iso = Option.is_some (Query.Cq.body_isomorphism a b) in
      canon_eq = iso)

let test_canonical_distinguishes () =
  let a = cq [ v "X" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  let b = cq [ v "X" ] [ atom (v "X") (c "ex:q") (v "Y") ] in
  check_bool "different properties" true
    (Query.Cq.canonical_string a <> Query.Cq.canonical_string b);
  let h1 = cq [ v "X"; v "Y" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  let h2 = cq [ v "Y"; v "X" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  check_bool "head order" true
    (Query.Cq.canonical_string h1 <> Query.Cq.canonical_string h2)

let test_canonical_symmetric_case () =
  let make_chain a b cc d =
    cq [ v a ]
      [
        atom (v a) (c "ex:p") (v b);
        atom (v b) (c "ex:p") (v cc);
        atom (v cc) (c "ex:p") (v d);
      ]
  in
  let q1 = make_chain "A" "B" "C" "D" in
  let q2 = make_chain "D" "C" "B" "A" in
  check_bool "isomorphic chains" true
    (Query.Cq.canonical_string q1 = Query.Cq.canonical_string q2)

let test_body_isomorphism_mapping () =
  let a =
    cq [ v "X" ]
      [ atom (v "X") (c "ex:p") (v "Y"); atom (v "Y") (c "ex:q") (c "ex:k") ]
  in
  let b =
    cq [ v "B" ]
      [ atom (v "A") (c "ex:p") (v "B"); atom (v "B") (c "ex:q") (c "ex:k") ]
  in
  match Query.Cq.body_isomorphism a b with
  | None -> Alcotest.fail "expected isomorphism"
  | Some mapping ->
    check_string "A maps to X" "X" (List.assoc "A" mapping);
    check_string "B maps to Y" "Y" (List.assoc "B" mapping)

let test_body_isomorphism_requires_injectivity () =
  let a = cq [ v "X" ] [ atom (v "X") (c "ex:p") (v "X") ] in
  let b = cq [ v "X" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  check_bool "not isomorphic" true (Query.Cq.body_isomorphism a b = None)

(* ---------- UCQ --------------------------------------------------------- *)

let test_ucq_validation () =
  let a = cq [ v "X" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  let b = cq [ v "X"; v "Y" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  Alcotest.check_raises "mismatched arity"
    (Invalid_argument "Ucq.make: disjuncts with different arities") (fun () ->
      ignore (Query.Ucq.make ~name:"u" [ a; b ]))

let test_ucq_dedup () =
  let a = cq [ v "X" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  let a' = cq [ v "A" ] [ atom (v "A") (c "ex:p") (v "B") ] in
  let u = Query.Ucq.make ~name:"u" [ a; a' ] in
  check_int "duplicates removed" 1 (Query.Ucq.cardinal (Query.Ucq.dedup u))

let test_ucq_counts () =
  let a = cq [ v "X" ] [ atom (v "X") (c "ex:p") (c "ex:k") ] in
  let b =
    cq [ v "X" ]
      [ atom (v "X") (c "ex:q") (v "Y"); atom (v "Y") (c "ex:r") (c "ex:m") ]
  in
  let u = Query.Ucq.make ~name:"u" [ a; b ] in
  check_int "atoms" 3 (Query.Ucq.atom_count u);
  check_int "constants" 5 (Query.Ucq.constant_count u)

(* ---------- evaluation -------------------------------------------------- *)

let museum_store =
  store_of
    [
      triple (uri "ex:vanGogh") (uri "ex:hasPainted") (uri "ex:starryNight");
      triple (uri "ex:vanGogh") (uri "ex:isParentOf") (uri "ex:vincentJr");
      triple (uri "ex:vincentJr") (uri "ex:hasPainted") (uri "ex:sunflowers2");
      triple (uri "ex:monet") (uri "ex:hasPainted") (uri "ex:waterLilies");
      triple (uri "ex:monet") (uri "ex:isParentOf") (uri "ex:michel");
    ]

let test_eval_running_example () =
  let answers = Query.Evaluation.eval_cq museum_store q1_paper in
  check_int "one painter family" 1 (List.length answers);
  match answers with
  | [ tuple ] ->
    check_bool "vanGogh" true (Rdf.Term.equal tuple.(0) (uri "ex:vanGogh"));
    check_bool "sunflowers2" true
      (Rdf.Term.equal tuple.(1) (uri "ex:sunflowers2"))
  | _ -> Alcotest.fail "unexpected answers"

let test_eval_empty_on_missing_constant () =
  let q = cq [ v "X" ] [ atom (v "X") (c "ex:unknown") (v "Y") ] in
  check_int "no match" 0 (List.length (Query.Evaluation.eval_cq museum_store q))

let test_eval_constant_head () =
  let q =
    Query.Cq.make ~name:"q"
      ~head:[ v "X"; c "ex:tag" ]
      ~body:[ atom (v "X") (c "ex:isParentOf") (v "Y") ]
  in
  let answers = Query.Evaluation.eval_cq museum_store q in
  check_int "two parents" 2 (List.length answers);
  List.iter
    (fun t -> check_bool "tag col" true (Rdf.Term.equal t.(1) (uri "ex:tag")))
    answers

let test_eval_repeated_var_atom () =
  let s =
    store_of
      [
        triple (uri "a") (uri "p") (uri "a");
        triple (uri "a") (uri "p") (uri "b");
      ]
  in
  let q = cq [ v "X" ] [ atom (v "X") (c "p") (v "X") ] in
  check_int "self loop only" 1 (List.length (Query.Evaluation.eval_cq s q))

let prop_eval_matches_reference =
  QCheck.Test.make ~name:"index evaluation = naive evaluation" ~count:200
    QCheck.(pair arb_store arb_cq)
    (fun (s, q) ->
      same_answers (Query.Evaluation.eval_cq s q) (eval_reference s q))

let prop_eval_ucq_is_union =
  QCheck.Test.make ~name:"UCQ evaluation is the set union" ~count:100
    QCheck.(pair arb_store (pair arb_cq arb_cq))
    (fun (s, (a, b)) ->
      QCheck.assume (Query.Cq.arity a = Query.Cq.arity b);
      let u = Query.Ucq.make ~name:"u" [ a; b ] in
      let union =
        List.sort_uniq compare
          (List.map Array.to_list
             (Query.Evaluation.eval_cq s a @ Query.Evaluation.eval_cq s b))
      in
      let got =
        List.sort_uniq compare
          (List.map Array.to_list (Query.Evaluation.eval_ucq s u))
      in
      union = got)

let prop_eval_codes_consistent =
  QCheck.Test.make ~name:"code-level evaluation decodes to term-level"
    ~count:100
    QCheck.(pair arb_store arb_cq)
    (fun (s, q) ->
      let by_codes =
        List.map
          (Array.map (Rdf.Store.decode_term s))
          (Query.Evaluation.eval_cq_codes s q)
      in
      same_answers by_codes (Query.Evaluation.eval_cq s q))

let () =
  Alcotest.run "query"
    [
      ( "atom",
        [
          Alcotest.test_case "accessors" `Quick test_atom_accessors;
          Alcotest.test_case "substitution" `Quick test_atom_subst;
          Alcotest.test_case "shares_var" `Quick test_atom_shares_var;
        ] );
      ( "cq",
        [
          Alcotest.test_case "unsafe head rejected" `Quick
            test_cq_make_unsafe_head;
          Alcotest.test_case "empty body rejected" `Quick test_cq_make_empty_body;
          Alcotest.test_case "accessors" `Quick test_cq_accessors;
          Alcotest.test_case "freshen" `Quick test_cq_freshen_preserves_structure;
        ] );
      ( "containment",
        [
          Alcotest.test_case "basic containment" `Quick test_containment_basic;
          Alcotest.test_case "redundant atom equivalence" `Quick
            test_equivalence_with_redundant_atom;
          Alcotest.test_case "constants distinguish" `Quick
            test_not_equivalent_different_constants;
          Alcotest.test_case "head respected" `Quick test_head_respected;
          to_alcotest prop_equivalence_reflexive;
        ] );
      ( "minimization",
        [
          Alcotest.test_case "removes redundancy" `Quick
            test_minimize_removes_redundancy;
          Alcotest.test_case "keeps minimal" `Quick test_minimize_keeps_minimal;
          to_alcotest prop_minimize_equivalent_and_idempotent;
        ] );
      ("connectivity", [ Alcotest.test_case "components" `Quick test_components ]);
      ( "canonical",
        [
          to_alcotest prop_canonical_invariant_under_renaming;
          to_alcotest prop_canonical_body_matches_isomorphism;
          Alcotest.test_case "distinguishes" `Quick test_canonical_distinguishes;
          Alcotest.test_case "symmetric chains" `Quick
            test_canonical_symmetric_case;
          Alcotest.test_case "isomorphism mapping" `Quick
            test_body_isomorphism_mapping;
          Alcotest.test_case "injectivity required" `Quick
            test_body_isomorphism_requires_injectivity;
        ] );
      ( "ucq",
        [
          Alcotest.test_case "arity validation" `Quick test_ucq_validation;
          Alcotest.test_case "dedup" `Quick test_ucq_dedup;
          Alcotest.test_case "counts" `Quick test_ucq_counts;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "running example q1" `Quick
            test_eval_running_example;
          Alcotest.test_case "missing constant" `Quick
            test_eval_empty_on_missing_constant;
          Alcotest.test_case "constant head" `Quick test_eval_constant_head;
          Alcotest.test_case "repeated variable" `Quick
            test_eval_repeated_var_atom;
          to_alcotest prop_eval_matches_reference;
          to_alcotest prop_eval_ucq_is_union;
          to_alcotest prop_eval_codes_consistent;
        ] );
    ]
