test/test_workload.ml: Alcotest Gen List QCheck Query Rdf Support Workload
