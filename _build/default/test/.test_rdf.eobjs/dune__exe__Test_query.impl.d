test/test_query.ml: Alcotest Array Gen List Option QCheck Query Rdf Support
