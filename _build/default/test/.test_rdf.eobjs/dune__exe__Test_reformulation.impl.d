test/test_reformulation.ml: Alcotest Float List QCheck Query Rdf String Support
