test/test_stats.ml: Alcotest Float List QCheck Query Rdf Stats Support
