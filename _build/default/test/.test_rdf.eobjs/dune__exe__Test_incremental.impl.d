test/test_incremental.ml: Alcotest Gen List QCheck Rdf Support
