test/test_dynamic.ml: Alcotest Core Engine List QCheck Query Rdf Support
