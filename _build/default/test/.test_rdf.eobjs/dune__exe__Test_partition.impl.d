test/test_partition.ml: Alcotest Core Engine Float List QCheck Query Support
