test/test_transitions.mli:
