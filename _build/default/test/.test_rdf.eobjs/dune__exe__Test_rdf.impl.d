test/test_rdf.ml: Alcotest List Option Printf QCheck Rdf Stdlib Support
