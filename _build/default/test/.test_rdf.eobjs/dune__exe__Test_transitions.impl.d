test/test_transitions.ml: Alcotest Core Engine Gen List QCheck Query Stats Support
