test/test_parser.ml: Alcotest List QCheck Query Rdf Support Workload
