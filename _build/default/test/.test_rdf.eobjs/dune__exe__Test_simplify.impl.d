test/test_simplify.ml: Alcotest Core Engine Gen Hashtbl List QCheck Query Support
