test/test_engine.ml: Alcotest Array Core Engine Gen Hashtbl List QCheck Query Rdf Support
