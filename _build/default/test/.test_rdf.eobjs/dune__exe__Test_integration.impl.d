test/test_integration.ml: Alcotest Core Engine List QCheck Query Rdf Support Workload
