test/test_sql.ml: Alcotest Core Hashtbl List QCheck Query String Support
