test/test_cost.ml: Alcotest Core Float List QCheck Query Stats Support
