test/test_search.ml: Alcotest Core Engine Float List QCheck Query Stats Support Workload
