test/test_reformulation.mli:
