open Support

let spec shape n atoms commonality seed =
  {
    Workload.Generator.shape;
    n_queries = n;
    atoms_per_query = atoms;
    commonality;
    seed;
  }

let well_formed_workload queries n =
  check_int "query count" n (List.length queries);
  let names = List.map (fun q -> q.Query.Cq.name) queries in
  check_int "distinct names" n (List.length (List.sort_uniq compare names));
  List.iter
    (fun q ->
      check_bool ("connected: " ^ Query.Cq.to_string q) true
        (Query.Cq.is_connected q);
      check_bool ("has constant: " ^ Query.Cq.to_string q) true
        (Query.Cq.constant_count q > 0);
      check_bool ("nonempty head: " ^ Query.Cq.to_string q) true
        (Query.Cq.arity q > 0))
    queries

(* ---------- synthetic generation ----------------------------------------- *)

let test_star_shape () =
  let queries =
    Workload.Generator.generate
      (spec Workload.Generator.Star 5 5 Workload.Generator.Low 3)
  in
  well_formed_workload queries 5;
  (* all atoms share the subject variable *)
  List.iter
    (fun q ->
      let subjects =
        List.filter_map
          (fun (a : Query.Atom.t) -> Query.Qterm.var_name a.s)
          q.Query.Cq.body
        |> List.sort_uniq compare
      in
      check_int "one subject" 1 (List.length subjects))
    queries

let test_chain_shape () =
  let queries =
    Workload.Generator.generate
      (spec Workload.Generator.Chain 5 6 Workload.Generator.Low 3)
  in
  well_formed_workload queries 5;
  List.iter
    (fun q -> check_int "six atoms" 6 (Query.Cq.atom_count q))
    queries

let test_cycle_closes () =
  let queries =
    Workload.Generator.generate
      (spec Workload.Generator.Cycle 3 4 Workload.Generator.Low 9)
  in
  well_formed_workload queries 3;
  List.iter
    (fun q ->
      let first = List.hd q.Query.Cq.body in
      let last = List.nth q.Query.Cq.body (Query.Cq.atom_count q - 1) in
      check_bool "cycle closed" true
        (Query.Qterm.equal last.Query.Atom.o first.Query.Atom.s))
    queries

let test_random_shapes () =
  List.iter
    (fun shape ->
      let queries =
        Workload.Generator.generate (spec shape 6 5 Workload.Generator.Low 11)
      in
      well_formed_workload queries 6)
    [ Workload.Generator.Random_sparse; Workload.Generator.Random_dense;
      Workload.Generator.Mixed ]

let test_deterministic () =
  let s = spec Workload.Generator.Star 4 5 Workload.Generator.High 42 in
  let a = Workload.Generator.generate s in
  let b = Workload.Generator.generate s in
  check_bool "same output for same seed" true
    (List.for_all2 Query.Cq.equal_syntactic a b);
  let c = Workload.Generator.generate { s with seed = 43 } in
  check_bool "different seed differs" true
    (not (List.for_all2 Query.Cq.equal_syntactic a c))

let test_commonality_shares_constants () =
  let count_distinct_constants queries =
    List.length
      (List.sort_uniq Rdf.Term.compare
         (List.concat_map Query.Cq.constants queries))
  in
  let high =
    Workload.Generator.generate
      (spec Workload.Generator.Star 10 8 Workload.Generator.High 5)
  in
  let low =
    Workload.Generator.generate
      (spec Workload.Generator.Star 10 8 Workload.Generator.Low 5)
  in
  check_bool "high commonality uses fewer distinct constants" true
    (count_distinct_constants high < count_distinct_constants low)

(* ---------- satisfiable generation ---------------------------------------- *)

let barton_store = Workload.Barton.store ~n_entities:120 ~seed:3 ()

let test_satisfiable_star () =
  let queries =
    Workload.Generator.generate_satisfiable barton_store
      (spec Workload.Generator.Star 5 3 Workload.Generator.Low 17)
  in
  check_int "five queries" 5 (List.length queries);
  List.iter
    (fun q ->
      check_bool
        ("non-empty: " ^ Query.Cq.to_string q)
        true
        (Query.Evaluation.eval_cq barton_store q <> []))
    queries

let test_satisfiable_chain () =
  let queries =
    Workload.Generator.generate_satisfiable barton_store
      (spec Workload.Generator.Chain 5 3 Workload.Generator.Low 23)
  in
  List.iter
    (fun q ->
      check_bool
        ("non-empty: " ^ Query.Cq.to_string q)
        true
        (Query.Evaluation.eval_cq barton_store q <> []))
    queries

(* ---------- Barton-like dataset ------------------------------------------- *)

let test_barton_schema_counts () =
  let schema = Workload.Barton.schema () in
  check_int "106 statements (§6.5)" 106 (Rdf.Schema.size schema);
  check_int "39 classes" 39 (List.length (Workload.Barton.classes ()));
  check_int "61 properties" 61 (List.length (Workload.Barton.properties ()));
  (* statement breakdown *)
  let stmts = Rdf.Schema.statements schema in
  let count pred = List.length (List.filter pred stmts) in
  check_int "38 subclass" 38
    (count (function Rdf.Schema.Subclass _ -> true | _ -> false));
  check_int "15 subproperty" 15
    (count (function Rdf.Schema.Subproperty _ -> true | _ -> false));
  check_int "30 domain" 30
    (count (function Rdf.Schema.Domain _ -> true | _ -> false));
  check_int "23 range" 23
    (count (function Rdf.Schema.Range _ -> true | _ -> false))

let test_barton_schema_classes_in_range () =
  let schema = Workload.Barton.schema () in
  let classes = Workload.Barton.classes () in
  List.iter
    (fun stmt ->
      match stmt with
      | Rdf.Schema.Subclass (a, b) ->
        check_bool "classes known" true (List.mem a classes && List.mem b classes)
      | Rdf.Schema.Domain (_, cls) | Rdf.Schema.Range (_, cls) ->
        check_bool "class known" true (List.mem cls classes)
      | Rdf.Schema.Subproperty _ -> ())
    (Rdf.Schema.statements schema)

let test_barton_store_deterministic () =
  let a = Workload.Barton.store ~n_entities:50 ~seed:9 () in
  let b = Workload.Barton.store ~n_entities:50 ~seed:9 () in
  check_int "same size" (Rdf.Store.size a) (Rdf.Store.size b)

let test_barton_saturation_grows () =
  let store = Workload.Barton.store ~n_entities:100 ~seed:2 () in
  let before = Rdf.Store.size store in
  let added = Rdf.Entailment.saturate store (Workload.Barton.schema ()) in
  check_bool "implicit triples exist" true (added > 0);
  check_bool "at least 20% implicit" true
    (float_of_int added > 0.2 *. float_of_int before)

let test_barton_schema_triples_variant () =
  let plain = Workload.Barton.store ~n_entities:30 ~seed:4 () in
  let with_schema =
    Workload.Barton.store_with_schema_triples ~n_entities:30 ~seed:4 ()
  in
  check_int "106 extra triples" (Rdf.Store.size plain + 106)
    (Rdf.Store.size with_schema)

let prop_generated_queries_are_minimal =
  QCheck.Test.make ~name:"generated chain/star queries are minimal" ~count:30
    QCheck.(pair (make Gen.(int_range 0 1000)) (make Gen.(int_range 2 6)))
    (fun (seed, atoms) ->
      let queries =
        Workload.Generator.generate
          (spec Workload.Generator.Chain 3 atoms Workload.Generator.Low seed)
      in
      List.for_all Query.Cq.is_minimal queries)

let () =
  Alcotest.run "workload"
    [
      ( "generator",
        [
          Alcotest.test_case "star" `Quick test_star_shape;
          Alcotest.test_case "chain" `Quick test_chain_shape;
          Alcotest.test_case "cycle" `Quick test_cycle_closes;
          Alcotest.test_case "random and mixed" `Quick test_random_shapes;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "commonality" `Quick
            test_commonality_shares_constants;
          to_alcotest prop_generated_queries_are_minimal;
        ] );
      ( "satisfiable",
        [
          Alcotest.test_case "stars have answers" `Quick test_satisfiable_star;
          Alcotest.test_case "chains have answers" `Quick test_satisfiable_chain;
        ] );
      ( "barton",
        [
          Alcotest.test_case "schema counts" `Quick test_barton_schema_counts;
          Alcotest.test_case "schema well-formed" `Quick
            test_barton_schema_classes_in_range;
          Alcotest.test_case "deterministic store" `Quick
            test_barton_store_deterministic;
          Alcotest.test_case "saturation grows" `Quick
            test_barton_saturation_grows;
          Alcotest.test_case "schema-triples variant" `Quick
            test_barton_schema_triples_variant;
        ] );
    ]
