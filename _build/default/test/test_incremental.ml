open Support

let painting = uri "ex:painting"
let masterpiece = uri "ex:masterpiece"
let work = uri "ex:work"
let has_painted = uri "ex:hasPainted"
let has_created = uri "ex:hasCreated"

let schema =
  Rdf.Schema.of_statements
    [
      Rdf.Schema.Subclass (painting, masterpiece);
      Rdf.Schema.Subclass (masterpiece, work);
      Rdf.Schema.Subproperty (has_painted, has_created);
      Rdf.Schema.Range (has_painted, painting);
    ]

let base_triple = triple (uri "u") has_painted (uri "starry")

let setup () =
  Rdf.Incremental.create schema (store_of [ base_triple ])

let explicit_triples t =
  List.filter
    (fun tr -> Rdf.Incremental.is_explicit t tr)
    (Rdf.Store.to_triples (Rdf.Incremental.store t))

let consistent_with_scratch t =
  let from_scratch =
    Rdf.Entailment.saturated_copy
      (Rdf.Store.of_triples (explicit_triples t))
      (Rdf.Incremental.schema t)
  in
  let current =
    List.sort compare
      (List.map Rdf.Triple.to_string (Rdf.Store.to_triples (Rdf.Incremental.store t)))
  in
  let expected =
    List.sort compare
      (List.map Rdf.Triple.to_string (Rdf.Store.to_triples from_scratch))
  in
  current = expected

let test_create_saturates () =
  let t = setup () in
  check_int "one explicit" 1 (Rdf.Incremental.explicit_count t);
  (* hasCreated + type painting/masterpiece/work *)
  check_int "four implicit" 4 (Rdf.Incremental.implicit_count t);
  check_bool "consistent" true (consistent_with_scratch t)

let test_insert_propagates () =
  let t = setup () in
  let added =
    Rdf.Incremental.insert t (triple (uri "v") has_painted (uri "mona"))
  in
  (* the triple + hasCreated + 3 type triples for mona *)
  check_int "five additions" 5 added;
  check_bool "consistent" true (consistent_with_scratch t)

let test_insert_existing_implicit () =
  let t = setup () in
  (* (starry type painting) is implicit; making it explicit adds nothing *)
  let added = Rdf.Incremental.insert t (triple (uri "starry") rdf_type painting) in
  check_int "no new triples" 0 added;
  check_bool "now explicit" true
    (Rdf.Incremental.is_explicit t (triple (uri "starry") rdf_type painting));
  check_bool "consistent" true (consistent_with_scratch t)

let test_delete_retracts_unsupported () =
  let t = setup () in
  let removed = Rdf.Incremental.delete t base_triple in
  (* everything came from this triple *)
  check_int "all five go" 5 removed;
  check_int "store empty" 0 (Rdf.Store.size (Rdf.Incremental.store t));
  check_bool "consistent" true (consistent_with_scratch t)

let test_delete_keeps_supported () =
  let t = setup () in
  (* a second painter of the same work keeps starry's typings alive *)
  ignore (Rdf.Incremental.insert t (triple (uri "w") has_painted (uri "starry")));
  let removed = Rdf.Incremental.delete t base_triple in
  (* only (u hasPainted starry), (u hasCreated starry) disappear *)
  check_int "two removed" 2 removed;
  check_bool "typing survives" true
    (Rdf.Store.mem (Rdf.Incremental.store t) (triple (uri "starry") rdf_type painting));
  check_bool "consistent" true (consistent_with_scratch t)

let test_delete_explicit_also_derivable () =
  let t = setup () in
  (* assert the implicit hasCreated explicitly, then delete it: it must
     survive as implicit *)
  let created = triple (uri "u") has_created (uri "starry") in
  ignore (Rdf.Incremental.insert t created);
  let removed = Rdf.Incremental.delete t created in
  check_int "nothing leaves the store" 0 removed;
  check_bool "still present (implicit)" true
    (Rdf.Store.mem (Rdf.Incremental.store t) created);
  check_bool "no longer explicit" false (Rdf.Incremental.is_explicit t created);
  check_bool "consistent" true (consistent_with_scratch t)

let test_delete_nonexplicit_noop () =
  let t = setup () in
  let implied = triple (uri "starry") rdf_type work in
  check_int "no-op" 0 (Rdf.Incremental.delete t implied);
  check_bool "still there" true (Rdf.Store.mem (Rdf.Incremental.store t) implied)

let test_cyclic_schema () =
  let cyclic =
    Rdf.Schema.of_statements
      [
        Rdf.Schema.Subclass (uri "A", uri "B");
        Rdf.Schema.Subclass (uri "B", uri "A");
      ]
  in
  let t =
    Rdf.Incremental.create cyclic (store_of [ triple (uri "x") rdf_type (uri "A") ])
  in
  check_int "A and B" 2 (Rdf.Store.size (Rdf.Incremental.store t));
  let removed = Rdf.Incremental.delete t (triple (uri "x") rdf_type (uri "A")) in
  (* the self-supporting cycle must not keep itself alive *)
  check_int "both retract" 2 removed;
  check_int "empty" 0 (Rdf.Store.size (Rdf.Incremental.store t))

let prop_matches_scratch_saturation =
  QCheck.Test.make
    ~name:"incremental saturation = from-scratch saturation of the explicit set"
    ~count:100
    QCheck.(
      triple arb_store arb_schema
        (list_of_size (Gen.return 10) (pair bool (make gen_data_triple))))
    (fun (store, schema, updates) ->
      let t = Rdf.Incremental.create schema store in
      List.for_all
        (fun (is_insert, tr) ->
          if is_insert then ignore (Rdf.Incremental.insert t tr)
          else ignore (Rdf.Incremental.delete t tr);
          consistent_with_scratch t)
        updates)

let prop_counts_consistent =
  QCheck.Test.make ~name:"explicit + implicit = store size" ~count:50
    QCheck.(pair arb_store arb_schema)
    (fun (store, schema) ->
      let t = Rdf.Incremental.create schema store in
      Rdf.Incremental.explicit_count t + Rdf.Incremental.implicit_count t
      = Rdf.Store.size (Rdf.Incremental.store t))

let () =
  Alcotest.run "incremental"
    [
      ( "basics",
        [
          Alcotest.test_case "create saturates" `Quick test_create_saturates;
          Alcotest.test_case "insert propagates" `Quick test_insert_propagates;
          Alcotest.test_case "insert existing implicit" `Quick
            test_insert_existing_implicit;
        ] );
      ( "delete",
        [
          Alcotest.test_case "retracts unsupported" `Quick
            test_delete_retracts_unsupported;
          Alcotest.test_case "keeps supported" `Quick test_delete_keeps_supported;
          Alcotest.test_case "explicit + derivable survives" `Quick
            test_delete_explicit_also_derivable;
          Alcotest.test_case "non-explicit no-op" `Quick
            test_delete_nonexplicit_noop;
          Alcotest.test_case "self-supporting cycles retract" `Quick
            test_cyclic_schema;
        ] );
      ( "properties",
        [
          to_alcotest prop_matches_scratch_saturation;
          to_alcotest prop_counts_consistent;
        ] );
    ]
