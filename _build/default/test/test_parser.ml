open Support

let q1_text =
  {|q1(X, Z) :- t(X, <ex:hasPainted>, <ex:starryNight>),
               t(X, <ex:isParentOf>, Y),
               t(Y, <ex:hasPainted>, Z).|}

let test_parse_query () =
  let q = Query.Parser.parse_query q1_text in
  check_string "name" "q1" q.Query.Cq.name;
  check_int "arity" 2 (Query.Cq.arity q);
  check_int "atoms" 3 (Query.Cq.atom_count q);
  check_bool "head" true (Query.Cq.head_vars q = [ "X"; "Z" ])

let test_parse_type_keyword () =
  let q = Query.Parser.parse_query "q(X) :- t(X, type, <ex:painting>)." in
  match q.Query.Cq.body with
  | [ a ] ->
    check_bool "type keyword" true
      (Query.Qterm.equal a.Query.Atom.p (Query.Qterm.Cst rdf_type))
  | _ -> Alcotest.fail "expected one atom"

let test_parse_literals_and_question_vars () =
  let q = Query.Parser.parse_query {|q(?x) :- t(?x, <ex:label>, "hello world").|} in
  match q.Query.Cq.body with
  | [ a ] ->
    check_bool "literal object" true
      (Query.Qterm.equal a.Query.Atom.o (cl "hello world"));
    check_bool "lowercase ?var" true (Query.Cq.head_vars q = [ "x" ])
  | _ -> Alcotest.fail "expected one atom"

let test_parse_workload () =
  let queries =
    Query.Parser.parse_workload
      {|# a comment
        q1(X) :- t(X, <p>, <k>).
        q2(Y) :- t(Y, <q>, Z), t(Z, <p>, <k>).|}
  in
  check_int "two queries" 2 (List.length queries)

let test_query_roundtrip () =
  let q = Query.Parser.parse_query q1_text in
  let q' = Query.Parser.parse_query (Query.Parser.query_to_text q) in
  check_bool "roundtrip" true (Query.Cq.equal_syntactic q q')

let prop_query_roundtrip =
  QCheck.Test.make ~name:"parser round-trips generated queries" ~count:200
    arb_cq (fun q ->
      let q' = Query.Parser.parse_query (Query.Parser.query_to_text q) in
      Query.Cq.equal_syntactic q q')

let test_parse_errors () =
  let cases =
    [
      "q(X) :- t(X, <p>, Y)";          (* missing final dot *)
      "q(X) :- s(X, <p>, Y).";         (* wrong relation symbol *)
      "q(X) :- t(X, <p>).";            (* arity 2 atom *)
      "q(Z) :- t(X, <p>, Y).";         (* unsafe head *)
      "q(X) :- t(X, <unterminated, Y).";
    ]
  in
  List.iter
    (fun text ->
      match Query.Parser.parse_query text with
      | exception Query.Parser.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error on %s" text)
    cases

let test_parse_schema () =
  let schema =
    Query.Parser.parse_schema
      {|<ex:painting> subClassOf <ex:picture> .
        <ex:isExpIn> subPropertyOf <ex:isLocatIn> .
        <ex:hasPainted> domain <ex:painter> .
        <ex:hasPainted> range <ex:painting> .|}
  in
  check_int "four statements" 4 (Rdf.Schema.size schema);
  check_bool "subclass parsed" true
    (List.mem (uri "ex:painting")
       (Rdf.Schema.direct_subclasses schema (uri "ex:picture")))

let test_schema_roundtrip () =
  let schema =
    Query.Parser.parse_schema
      {|<a> subClassOf <b> . <p> domain <a> . <p> range <b> .|}
  in
  let again = Query.Parser.parse_schema (Query.Parser.schema_to_text schema) in
  check_bool "roundtrip" true
    (List.sort compare (Rdf.Schema.statements schema)
    = List.sort compare (Rdf.Schema.statements again))

let test_parse_triples () =
  let triples =
    Query.Parser.parse_triples
      {|<ex:vanGogh> <ex:hasPainted> <ex:starryNight> .
        <ex:mona> type <ex:painting> .
        <ex:mona> <ex:label> "Mona Lisa" .|}
  in
  check_int "three triples" 3 (List.length triples);
  check_bool "type expanded" true
    (List.exists
       (fun (tr : Rdf.Triple.t) -> Rdf.Term.equal tr.p rdf_type)
       triples)

let test_triples_roundtrip () =
  let text = {|<s> <p> <o> . <s> type <c> . <s> <q> "lit" .|} in
  let triples = Query.Parser.parse_triples text in
  let again = Query.Parser.parse_triples (Query.Parser.triples_to_text triples) in
  check_bool "roundtrip" true
    (List.sort Rdf.Triple.compare triples = List.sort Rdf.Triple.compare again)

let test_triples_reject_variables () =
  match Query.Parser.parse_triples "<s> <p> X ." with
  | exception Query.Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

let test_barton_export_reimport () =
  let store = Workload.Barton.store ~n_entities:40 ~seed:3 () in
  let text = Query.Parser.triples_to_text (Rdf.Store.to_triples store) in
  let again = Rdf.Store.of_triples (Query.Parser.parse_triples text) in
  check_int "same size" (Rdf.Store.size store) (Rdf.Store.size again)

let () =
  Alcotest.run "parser"
    [
      ( "queries",
        [
          Alcotest.test_case "running example" `Quick test_parse_query;
          Alcotest.test_case "type keyword" `Quick test_parse_type_keyword;
          Alcotest.test_case "literals and ?vars" `Quick
            test_parse_literals_and_question_vars;
          Alcotest.test_case "workloads" `Quick test_parse_workload;
          Alcotest.test_case "roundtrip" `Quick test_query_roundtrip;
          to_alcotest prop_query_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "schema",
        [
          Alcotest.test_case "parse" `Quick test_parse_schema;
          Alcotest.test_case "roundtrip" `Quick test_schema_roundtrip;
        ] );
      ( "triples",
        [
          Alcotest.test_case "parse" `Quick test_parse_triples;
          Alcotest.test_case "roundtrip" `Quick test_triples_roundtrip;
          Alcotest.test_case "variables rejected" `Quick
            test_triples_reject_variables;
          Alcotest.test_case "barton export/import" `Quick
            test_barton_export_reimport;
        ] );
    ]
