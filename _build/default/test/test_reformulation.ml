open Support

(* The §4.3 example schema:
   painting ⊑ picture, isExpIn ⊑p isLocatIn *)
let painting = uri "ex:painting"
let picture = uri "ex:picture"
let is_locat_in = uri "ex:isLocatIn"
let is_exp_in = uri "ex:isExpIn"

let s43 =
  Rdf.Schema.of_statements
    [
      Rdf.Schema.Subclass (painting, picture);
      Rdf.Schema.Subproperty (is_exp_in, is_locat_in);
    ]

let canon_set ucq =
  List.sort_uniq String.compare
    (List.map Query.Cq.canonical_string (Query.Ucq.disjuncts ucq))

let mem_disjunct ucq q =
  List.mem (Query.Cq.canonical_string q) (canon_set ucq)

(* ---------- Table 2: term reformulation --------------------------------- *)

let test_table2_q1 () =
  (* q1(X1) :- t(X1, rdf:type, picture) reformulates into two terms *)
  let q1 =
    cq ~name:"q1" [ v "X1" ]
      [ atom (v "X1") (Query.Qterm.Cst rdf_type) (Query.Qterm.Cst picture) ]
  in
  let r = Query.Reformulation.reformulate q1 s43 in
  check_int "two union terms" 2 (Query.Ucq.cardinal r);
  check_bool "original present" true (mem_disjunct r q1);
  check_bool "painting term present" true
    (mem_disjunct r
       (cq [ v "X1" ]
          [ atom (v "X1") (Query.Qterm.Cst rdf_type) (Query.Qterm.Cst painting) ]))

let test_table2_q4 () =
  (* q4(X1, X2) :- t(X1, X2, picture): six union terms per Table 2 *)
  let q4 =
    cq ~name:"q4" [ v "X1"; v "X2" ]
      [ atom (v "X1") (v "X2") (Query.Qterm.Cst picture) ]
  in
  let r = Query.Reformulation.reformulate q4 s43 in
  check_int "six union terms" 6 (Query.Ucq.cardinal r);
  let expect head body = check_bool "term" true (mem_disjunct r (cq head body)) in
  (* (1) the original *)
  expect [ v "X1"; v "X2" ] [ atom (v "X1") (v "X2") (Query.Qterm.Cst picture) ];
  (* (2) X2 := isLocatIn *)
  expect
    [ v "X1"; Query.Qterm.Cst is_locat_in ]
    [ atom (v "X1") (Query.Qterm.Cst is_locat_in) (Query.Qterm.Cst picture) ];
  (* (3) X2 := isExpIn *)
  expect
    [ v "X1"; Query.Qterm.Cst is_exp_in ]
    [ atom (v "X1") (Query.Qterm.Cst is_exp_in) (Query.Qterm.Cst picture) ];
  (* (4) X2 := rdf:type *)
  expect
    [ v "X1"; Query.Qterm.Cst rdf_type ]
    [ atom (v "X1") (Query.Qterm.Cst rdf_type) (Query.Qterm.Cst picture) ];
  (* (5) rule 2 on term (2) *)
  expect
    [ v "X1"; Query.Qterm.Cst is_locat_in ]
    [ atom (v "X1") (Query.Qterm.Cst is_exp_in) (Query.Qterm.Cst picture) ];
  (* (6) rule 1 on term (4) *)
  expect
    [ v "X1"; Query.Qterm.Cst rdf_type ]
    [ atom (v "X1") (Query.Qterm.Cst rdf_type) (Query.Qterm.Cst painting) ]

(* ---------- §4.3 recommended views example ------------------------------ *)

let test_view_reformulation_example () =
  (* v1(X1,X2) :- t(X1, rdf:type, X2) gains the subclass variants *)
  let v1 =
    cq ~name:"v1" [ v "X1"; v "X2" ]
      [ atom (v "X1") (Query.Qterm.Cst rdf_type) (v "X2") ]
  in
  let r = Query.Reformulation.reformulate v1 s43 in
  (* original + (X2:=painting) + (X2:=picture) + (X2:=picture via painting) *)
  check_int "four union terms" 4 (Query.Ucq.cardinal r);
  check_bool "implicit picture typing" true
    (mem_disjunct r
       (Query.Cq.make ~name:"x"
          ~head:[ v "X1"; Query.Qterm.Cst picture ]
          ~body:
            [ atom (v "X1") (Query.Qterm.Cst rdf_type) (Query.Qterm.Cst painting) ]));
  let v2 =
    cq ~name:"v2" [ v "X1"; v "X2" ]
      [ atom (v "X1") (Query.Qterm.Cst is_locat_in) (v "X2") ]
  in
  let r2 = Query.Reformulation.reformulate v2 s43 in
  check_int "two union terms for v2" 2 (Query.Ucq.cardinal r2);
  check_bool "isExpIn variant" true
    (mem_disjunct r2
       (cq
          [ v "X1"; v "X2" ]
          [ atom (v "X1") (Query.Qterm.Cst is_exp_in) (v "X2") ]))

(* ---------- rules 3 and 4 ------------------------------------------------ *)

let dom_range_schema =
  Rdf.Schema.of_statements
    [
      Rdf.Schema.Domain (uri "ex:drivesLicense", uri "ex:person");
      Rdf.Schema.Range (uri "ex:hasPainted", uri "ex:painting");
    ]

let test_rule3_domain () =
  let q =
    cq [ v "X" ]
      [ atom (v "X") (Query.Qterm.Cst rdf_type) (Query.Qterm.Cst (uri "ex:person")) ]
  in
  let r = Query.Reformulation.reformulate q dom_range_schema in
  check_int "two terms" 2 (Query.Ucq.cardinal r);
  check_bool "domain unfolding" true
    (List.exists
       (fun (d : Query.Cq.t) ->
         match d.Query.Cq.body with
         | [ a ] ->
           Query.Qterm.equal a.Query.Atom.p
             (Query.Qterm.Cst (uri "ex:drivesLicense"))
         | _ -> false)
       (Query.Ucq.disjuncts r))

let test_rule4_range () =
  let q =
    cq [ v "X" ]
      [ atom (v "X") (Query.Qterm.Cst rdf_type) (Query.Qterm.Cst (uri "ex:painting")) ]
  in
  let r = Query.Reformulation.reformulate q dom_range_schema in
  check_int "two terms" 2 (Query.Ucq.cardinal r);
  check_bool "range unfolding puts X in object position" true
    (List.exists
       (fun (d : Query.Cq.t) ->
         match d.Query.Cq.body with
         | [ a ] ->
           Query.Qterm.equal a.Query.Atom.p (Query.Qterm.Cst (uri "ex:hasPainted"))
           && Query.Qterm.equal a.Query.Atom.o (v "X")
         | _ -> false)
       (Query.Ucq.disjuncts r))

let test_rule5_class_variable () =
  let q =
    cq [ v "X"; v "C" ] [ atom (v "X") (Query.Qterm.Cst rdf_type) (v "C") ]
  in
  let r = Query.Reformulation.reformulate q dom_range_schema in
  (* original, C:=person (+ domain unfolding), C:=painting (+ range) *)
  check_int "five terms" 5 (Query.Ucq.cardinal r)

let test_empty_schema_identity () =
  let q = cq [ v "X" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  let r = Query.Reformulation.reformulate q Rdf.Schema.empty in
  check_int "identity" 1 (Query.Ucq.cardinal r)

(* ---------- Theorem 4.1: termination bound ------------------------------ *)

(* The paper's (2|S|²)^m constant is too tight for very small schemas
   once rules 5 and 6 fire (binding a variable over the whole class /
   property vocabulary, which can exceed 2|S|² when |S| ≤ 2): e.g.
   q(X) :- t(X, P, Y) with the one-statement schema {domain(P0) = C2}
   yields 5 > (2·1²)^1 reformulations.  The polynomial-in-|S|,
   exponential-in-m growth shape is what the theorem establishes; the
   test uses the corrected constant (2(|S|+2)²)^m. *)
let prop_bound =
  QCheck.Test.make
    ~name:"Theorem 4.1 (adjusted constant): |ucq| ≤ (2(|S|+2)²)^m + 1"
    ~count:100
    QCheck.(pair arb_cq_schema_vars arb_schema)
    (fun (q, schema) ->
      let s = float_of_int (Rdf.Schema.size schema + 2) in
      let m = float_of_int (Query.Cq.atom_count q) in
      let r = Query.Reformulation.reformulate q schema in
      float_of_int (Query.Ucq.cardinal r) <= (Float.pow (2. *. s *. s) m) +. 1.)

let prop_contains_original =
  QCheck.Test.make ~name:"reformulation contains the original query" ~count:100
    QCheck.(pair arb_cq_schema_vars arb_schema)
    (fun (q, schema) ->
      mem_disjunct (Query.Reformulation.reformulate q schema) q)

let prop_atom_count_preserved =
  QCheck.Test.make ~name:"every disjunct has the same number of atoms"
    ~count:100
    QCheck.(pair arb_cq_schema_vars arb_schema)
    (fun (q, schema) ->
      List.for_all
        (fun d -> Query.Cq.atom_count d = Query.Cq.atom_count q)
        (Query.Ucq.disjuncts (Query.Reformulation.reformulate q schema)))

(* ---------- Theorem 4.2: correctness ------------------------------------ *)

let prop_theorem_4_2 =
  QCheck.Test.make
    ~name:
      "Theorem 4.2: evaluate(q, saturate(D,S)) = evaluate(reformulate(q,S), D)"
    ~count:300
    QCheck.(triple arb_store arb_schema arb_cq_schema_vars)
    (fun (store, schema, q) ->
      let saturated = Rdf.Entailment.saturated_copy store schema in
      let on_saturated = Query.Evaluation.eval_cq saturated q in
      let reformulated = Query.Reformulation.reformulate q schema in
      let on_original = Query.Evaluation.eval_ucq store reformulated in
      same_answers on_saturated on_original)

let prop_reformulate_atom_counts_saturated =
  QCheck.Test.make
    ~name:"per-atom reformulation count = saturated pattern count" ~count:150
    QCheck.(pair arb_store arb_schema)
    (fun (store, schema) ->
      let saturated = Rdf.Entailment.saturated_copy store schema in
      let shapes =
        [
          atom (v "S") (Query.Qterm.Cst rdf_type) (Query.Qterm.Cst (uri "C1"));
          atom (v "S") (Query.Qterm.Cst (uri "P1")) (v "O");
          atom (v "S") (v "P") (v "O");
          atom (v "S") (v "P") (Query.Qterm.Cst (uri "C0"));
          atom (v "S") (Query.Qterm.Cst rdf_type) (v "O");
        ]
      in
      List.for_all
        (fun a ->
          let by_reformulation =
            Query.Evaluation.count_ucq store
              (Query.Reformulation.reformulate_atom a schema)
          in
          let q =
            Query.Cq.make ~name:"a"
              ~head:(List.map v (Query.Atom.var_set a))
              ~body:[ a ]
          in
          let on_saturated = Query.Evaluation.count_cq saturated q in
          by_reformulation = on_saturated)
        shapes)

let () =
  Alcotest.run "reformulation"
    [
      ( "table2",
        [
          Alcotest.test_case "q1 reformulation" `Quick test_table2_q1;
          Alcotest.test_case "q4 reformulation (rules 5/6)" `Quick test_table2_q4;
          Alcotest.test_case "view reformulation example" `Quick
            test_view_reformulation_example;
        ] );
      ( "rules",
        [
          Alcotest.test_case "rule 3: domain" `Quick test_rule3_domain;
          Alcotest.test_case "rule 4: range" `Quick test_rule4_range;
          Alcotest.test_case "rule 5: class variable" `Quick
            test_rule5_class_variable;
          Alcotest.test_case "empty schema is identity" `Quick
            test_empty_schema_identity;
        ] );
      ( "theorems",
        [
          to_alcotest prop_bound;
          to_alcotest prop_contains_original;
          to_alcotest prop_atom_count_preserved;
          to_alcotest prop_theorem_4_2;
          to_alcotest prop_reformulate_atom_counts_saturated;
        ] );
    ]
