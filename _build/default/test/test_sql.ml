open Support

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > hn then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  scan 0

let q1 =
  cq ~name:"q1"
    [ v "X"; v "Z" ]
    [
      atom (v "X") (c "ex:hasPainted") (c "ex:starryNight");
      atom (v "X") (c "ex:isParentOf") (v "Y");
      atom (v "Y") (c "ex:hasPainted") (v "Z");
    ]

let test_cq_select_structure () =
  let sql = Core.Sql.cq_select q1 in
  check_bool "three triple scans" true (contains sql "triples t2");
  check_bool "constant predicate" true
    (contains sql "t0.o = '<ex:starryNight>'");
  check_bool "join predicate" true (contains sql "t1.s = t0.s");
  check_bool "chained join" true (contains sql "t2.s = t1.o");
  check_bool "projection aliases" true
    (contains sql "AS \"X\"" && contains sql "AS \"Z\"");
  check_bool "distinct" true (contains sql "SELECT DISTINCT")

let test_cq_select_constant_head () =
  let q =
    Query.Cq.make ~name:"q" ~head:[ v "X"; c "ex:tag" ]
      ~body:[ atom (v "X") (c "ex:p") (v "Y") ]
  in
  let sql = Core.Sql.cq_select q in
  check_bool "constant column" true (contains sql "'<ex:tag>' AS \"c1\"")

let test_literal_escaping () =
  let q =
    cq [ v "X" ] [ atom (v "X") (c "ex:p") (cl "O'Keeffe") ]
  in
  let sql = Core.Sql.cq_select q in
  check_bool "quotes doubled" true (contains sql "O''Keeffe")

let test_view_ddl_union () =
  let a = cq ~name:"u" [ v "X" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  let b = cq ~name:"u2" [ v "A" ] [ atom (v "A") (c "ex:q") (v "B") ] in
  let ddl = Core.Sql.view_ddl (Query.Ucq.make ~name:"v7" [ a; b ]) in
  check_bool "create materialized" true
    (contains ddl "CREATE MATERIALIZED VIEW \"v7\"");
  check_bool "declared columns" true (contains ddl "(\"X\")");
  check_bool "union of disjuncts" true (contains ddl "UNION");
  check_bool "terminated" true (contains ddl ";")

let test_view_ddl_plain () =
  let a = cq ~name:"u" [ v "X" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  let ddl =
    Core.Sql.view_ddl
      ~config:{ Core.Sql.default_config with materialized = false }
      (Query.Ucq.of_cq a)
  in
  check_bool "plain view" true (contains ddl "CREATE VIEW")

let env_of bindings =
  let env = Hashtbl.create 8 in
  List.iter (fun (n, cols) -> Hashtbl.replace env n cols) bindings;
  env

let test_rewriting_query_shapes () =
  let env = env_of [ ("v1", [ "a"; "b" ]); ("v2", [ "b"; "c" ]) ] in
  let expr =
    Core.Rewriting.Project
      ( [ "a"; "c" ],
        Core.Rewriting.Select
          ( [ Core.Rewriting.Eq_cst ("b", uri "k") ],
            Core.Rewriting.Join ([], Core.Rewriting.Scan "v1", Core.Rewriting.Scan "v2")
          ) )
  in
  let sql = Core.Sql.rewriting_query env "q1" expr in
  check_bool "names the query" true (contains sql "-- rewriting of q1");
  check_bool "join on shared column" true (contains sql "ON l");
  check_bool "selection constant" true (contains sql "= 'k'");
  check_bool "distinct projection" true (contains sql "SELECT DISTINCT");
  check_bool "scans both views" true
    (contains sql "FROM \"v1\"" && contains sql "FROM \"v2\"")

let test_rewriting_union () =
  let env = env_of [ ("v1", [ "a" ]); ("v2", [ "a" ]) ] in
  let expr = Core.Rewriting.Union [ Core.Rewriting.Scan "v1"; Core.Rewriting.Scan "v2" ] in
  let sql = Core.Sql.rewriting_query env "q" expr in
  check_bool "union" true (contains sql "UNION")

let test_deployment_script_end_to_end () =
  let store =
    store_of
      [
        triple (uri "s1") (uri "ex:p") (uri "ex:k");
        triple (uri "s1") (uri "ex:q") (uri "o1");
      ]
  in
  let workload =
    [
      cq ~name:"qa" [ v "X" ]
        [ atom (v "X") (c "ex:p") (c "ex:k"); atom (v "X") (c "ex:q") (v "Y") ];
    ]
  in
  let result =
    Core.Selector.select ~store ~reasoning:Core.Selector.No_reasoning
      ~options:{ Core.Search.default_options with time_budget = Some 0.5 }
      workload
  in
  let script = Core.Sql.deployment_script result in
  check_bool "has DDL" true (contains script "CREATE MATERIALIZED VIEW");
  check_bool "has the query" true (contains script "-- rewriting of qa");
  (* every recommended view name appears in the script *)
  List.iter
    (fun u ->
      check_bool
        ("view " ^ Query.Ucq.name u)
        true
        (contains script (Query.Ucq.name u)))
    result.Core.Selector.recommended

let prop_generated_queries_translate =
  QCheck.Test.make ~name:"every generated query has a SQL translation"
    ~count:100 arb_cq (fun q ->
      let sql = Core.Sql.cq_select q in
      String.length sql > 0
      && contains sql "FROM"
      && contains sql "SELECT DISTINCT")

let () =
  Alcotest.run "sql"
    [
      ( "views",
        [
          Alcotest.test_case "cq select structure" `Quick test_cq_select_structure;
          Alcotest.test_case "constant head column" `Quick
            test_cq_select_constant_head;
          Alcotest.test_case "literal escaping" `Quick test_literal_escaping;
          Alcotest.test_case "view DDL with union" `Quick test_view_ddl_union;
          Alcotest.test_case "plain view" `Quick test_view_ddl_plain;
        ] );
      ( "rewritings",
        [
          Alcotest.test_case "operator shapes" `Quick test_rewriting_query_shapes;
          Alcotest.test_case "union" `Quick test_rewriting_union;
          Alcotest.test_case "deployment script" `Quick
            test_deployment_script_end_to_end;
          to_alcotest prop_generated_queries_translate;
        ] );
    ]
