open Support

let museum_store =
  store_of
    [
      triple (uri "ex:vanGogh") (uri "ex:hasPainted") (uri "ex:starryNight");
      triple (uri "ex:vanGogh") (uri "ex:isParentOf") (uri "ex:vincentJr");
      triple (uri "ex:vincentJr") (uri "ex:hasPainted") (uri "ex:sunflowers2");
      triple (uri "ex:monet") (uri "ex:hasPainted") (uri "ex:waterLilies");
    ]

let estimator ?(weights = Core.Cost.default_weights) () =
  Core.Cost.create (Stats.Statistics.create museum_store) weights

let one_atom_query =
  cq ~name:"q" [ v "X"; v "Y" ] [ atom (v "X") (c "ex:hasPainted") (v "Y") ]

let test_default_weights () =
  let w = Core.Cost.default_weights in
  check_bool "cs=1" true (w.Core.Cost.cs = 1.);
  check_bool "cr=1" true (w.Core.Cost.cr = 1.);
  check_bool "cm=0.5" true (w.Core.Cost.cm = 0.5);
  check_bool "f=2" true (w.Core.Cost.f = 2.)

let test_view_cardinality_exact_for_one_atom () =
  let est = estimator () in
  let s0 = Core.State.initial [ one_atom_query ] in
  match s0.Core.State.views with
  | [ view ] ->
    check_bool "three painted triples" true
      (Core.Cost.view_cardinality est view = 3.)
  | _ -> Alcotest.fail "expected one view"

let test_view_size_scales_with_width () =
  let est = estimator () in
  let narrow = Core.State.initial [ cq ~name:"n" [ v "X" ] [ atom (v "X") (c "ex:hasPainted") (v "Y") ] ] in
  let wide = Core.State.initial [ one_atom_query ] in
  let size state =
    match state.Core.State.views with
    | [ view ] -> Core.Cost.view_size est view
    | _ -> Alcotest.fail "one view expected"
  in
  check_bool "wider view occupies more" true (size wide > size narrow)

let test_vmc_formula () =
  let est = estimator () in
  let q3 =
    cq ~name:"q3" [ v "X" ]
      [
        atom (v "X") (c "ex:hasPainted") (v "Y");
        atom (v "X") (c "ex:isParentOf") (v "Z");
        atom (v "Z") (c "ex:hasPainted") (v "W");
      ]
  in
  let s = Core.State.initial [ q3 ] in
  (* single view of 3 atoms: VMC = f^3 = 8 *)
  check_bool "f^len" true (Core.Cost.vmc est s = 8.)

let test_vmc_respects_f () =
  let est = estimator ~weights:{ Core.Cost.default_weights with f = 3. } () in
  let s = Core.State.initial [ one_atom_query ] in
  check_bool "f^1 = 3" true (Core.Cost.vmc est s = 3.)

let test_rec_io_counts_scans () =
  let est = estimator () in
  let s = Core.State.initial [ one_atom_query ] in
  let _, r = List.hd s.Core.State.rewritings in
  let io, cpu = Core.Cost.rewriting_cost est s r in
  check_bool "io = |v|" true (io = 3.);
  check_bool "scan has no cpu" true (cpu = 0.)

let test_selection_costs_input () =
  let est = estimator () in
  let s0 = Core.State.initial [ cq ~name:"q" [ v "X" ] [ atom (v "X") (c "ex:hasPainted") (c "ex:starryNight") ] ] in
  (* SC relaxes the constant; the rewriting gains a selection *)
  match Core.Transition.successors s0 SC with
  | [] -> Alcotest.fail "expected SC successors"
  | s :: _ ->
    let _, r = List.hd s.Core.State.rewritings in
    let _, cpu = Core.Cost.rewriting_cost est s r in
    check_bool "selection cpu > 0" true (cpu > 0.)

let test_union_cost_sums () =
  let a = cq ~name:"a" [ v "X" ] [ atom (v "X") (c "ex:hasPainted") (v "Y") ] in
  let b = cq ~name:"b" [ v "X" ] [ atom (v "X") (c "ex:isParentOf") (v "Y") ] in
  let est = estimator () in
  let s =
    Core.State.initial_union [ ("q", [ a; b ]) ]
  in
  let _, r = List.hd s.Core.State.rewritings in
  let io, cpu = Core.Cost.rewriting_cost est s r in
  (* 3 hasPainted + 1 isParentOf... io sums branch scans *)
  check_bool "io sums branches" true (io >= 4.);
  check_bool "union dedup cpu" true (cpu > 0.)

let test_breakdown_consistent () =
  let est = estimator () in
  let s = Core.State.initial [ one_atom_query ] in
  let b = Core.Cost.breakdown est s in
  let w = Core.Cost.default_weights in
  let recombined =
    (w.Core.Cost.cs *. b.Core.Cost.vso_part)
    +. (w.Core.Cost.cr *. b.Core.Cost.rec_part)
    +. (w.Core.Cost.cm *. b.Core.Cost.vmc_part)
  in
  check_bool "total = weighted sum" true
    (Float.abs (b.Core.Cost.total -. recombined) < 1e-9);
  check_bool "memoized state_cost agrees" true
    (Float.abs (Core.Cost.state_cost est s -. b.Core.Cost.total) < 1e-9)

let test_weights_change_total () =
  let s = Core.State.initial [ one_atom_query ] in
  let base = Core.Cost.state_cost (estimator ()) s in
  let heavy_storage =
    Core.Cost.state_cost
      (estimator ~weights:{ Core.Cost.default_weights with cs = 100. } ())
      s
  in
  check_bool "storage weight dominates" true (heavy_storage > base)

let prop_costs_nonnegative_finite =
  QCheck.Test.make ~name:"state costs are non-negative and finite" ~count:100
    QCheck.(pair arb_store (pair arb_cq arb_cq))
    (fun (store, (qa, qb)) ->
      let est =
        Core.Cost.create (Stats.Statistics.create store) Core.Cost.default_weights
      in
      let s =
        Core.State.initial [ Query.Cq.rename qa "qa"; Query.Cq.rename qb "qb" ]
      in
      let c = Core.Cost.state_cost est s in
      c >= 0. && Float.is_finite c)

let prop_cost_invariant_under_renaming =
  QCheck.Test.make
    ~name:"state cost is invariant under query variable renaming" ~count:100
    QCheck.(pair arb_store arb_cq)
    (fun (store, q) ->
      let est =
        Core.Cost.create (Stats.Statistics.create store) Core.Cost.default_weights
      in
      let c1 = Core.Cost.state_cost est (Core.State.initial [ Query.Cq.rename q "q" ]) in
      let renamed = Query.Cq.rename (Query.Cq.freshen q) "q" in
      let c2 = Core.Cost.state_cost est (Core.State.initial [ renamed ]) in
      Float.abs (c1 -. c2) < 1e-6 *. Float.max 1. c1)

let prop_fusion_closure_never_costlier =
  QCheck.Test.make ~name:"fusion closure never raises the cost" ~count:60
    QCheck.(pair arb_store arb_cq)
    (fun (store, q) ->
      let est =
        Core.Cost.create (Stats.Statistics.create store) Core.Cost.default_weights
      in
      let workload =
        [ Query.Cq.rename q "qa"; Query.Cq.rename (Query.Cq.freshen q) "qb" ]
      in
      let s = Core.State.initial workload in
      let collapsed = Core.Transition.fusion_closure s in
      Core.Cost.state_cost est collapsed
      <= Core.Cost.state_cost est s +. 1e-6)

let () =
  Alcotest.run "cost"
    [
      ( "components",
        [
          Alcotest.test_case "default weights" `Quick test_default_weights;
          Alcotest.test_case "1-atom cardinality exact" `Quick
            test_view_cardinality_exact_for_one_atom;
          Alcotest.test_case "size scales with width" `Quick
            test_view_size_scales_with_width;
          Alcotest.test_case "VMC = f^len" `Quick test_vmc_formula;
          Alcotest.test_case "VMC respects f" `Quick test_vmc_respects_f;
          Alcotest.test_case "REC io counts scans" `Quick test_rec_io_counts_scans;
          Alcotest.test_case "selection costs input" `Quick
            test_selection_costs_input;
          Alcotest.test_case "union cost sums" `Quick test_union_cost_sums;
          Alcotest.test_case "breakdown consistent" `Quick
            test_breakdown_consistent;
          Alcotest.test_case "weights change total" `Quick
            test_weights_change_total;
        ] );
      ( "properties",
        [
          to_alcotest prop_costs_nonnegative_finite;
          to_alcotest prop_cost_invariant_under_renaming;
          to_alcotest prop_fusion_closure_never_costlier;
        ] );
    ]
