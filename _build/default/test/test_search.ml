open Support

(* The Figure 3 workload: q(Y,Z) :- t(X,Y,c1), t(X,Z,c2). *)
let fig3_query =
  cq ~name:"q"
    [ v "Y"; v "Z" ]
    [ atom (v "X") (v "Y") (c "ex:c1"); atom (v "X") (v "Z") (c "ex:c2") ]

let fig3_store =
  store_of
    [
      triple (uri "s1") (uri "p1") (uri "ex:c1");
      triple (uri "s1") (uri "p2") (uri "ex:c2");
      triple (uri "s2") (uri "p1") (uri "ex:c1");
      triple (uri "s2") (uri "p1") (uri "ex:c2");
      triple (uri "s3") (uri "p3") (uri "other");
    ]

let stats_for store = Stats.Statistics.create store

let options_exhaustive strategy =
  {
    Core.Search.default_options with
    strategy;
    avf = false;
    stop_tt = false;
    stop_var = false;
  }

(* ---------- Figure 3: the full space has exactly 9 states ---------------- *)

let test_fig3_space_size () =
  let report =
    Core.Search.run (stats_for fig3_store)
      (options_exhaustive Core.Search.Exnaive)
      [ fig3_query ]
  in
  (* S0 is not "created" by a transition; S1..S8 are *)
  check_bool "completed" true report.Core.Search.completed;
  check_int "eight states reached from S0" 8
    (report.Core.Search.created - report.Core.Search.duplicates);
  check_int "all nine explored" 9 report.Core.Search.explored

let test_fig3_same_space_all_strategies () =
  let run strategy =
    Core.Search.run (stats_for fig3_store) (options_exhaustive strategy)
      [ fig3_query ]
  in
  let exnaive = run Core.Search.Exnaive in
  let exstr = run Core.Search.Exstr in
  let dfs = run Core.Search.Dfs in
  check_bool "exstr finds the same best cost" true
    (abs_float (exstr.Core.Search.best_cost -. exnaive.Core.Search.best_cost)
    < 1e-6);
  check_bool "dfs finds the same best cost" true
    (abs_float (dfs.Core.Search.best_cost -. exnaive.Core.Search.best_cost)
    < 1e-6);
  (* stratified strategies reach every state too (Theorem 5.2/5.3) *)
  check_int "exstr explores all states" exnaive.Core.Search.explored
    exstr.Core.Search.explored;
  check_int "dfs explores all states" exnaive.Core.Search.explored
    dfs.Core.Search.explored

let test_fig3_stratified_no_more_transitions () =
  (* Theorem 5.3 (ii): EXSTR applies at most as many transitions *)
  let exnaive =
    Core.Search.run (stats_for fig3_store)
      (options_exhaustive Core.Search.Exnaive)
      [ fig3_query ]
  in
  let exstr =
    Core.Search.run (stats_for fig3_store)
      (options_exhaustive Core.Search.Exstr)
      [ fig3_query ]
  in
  check_bool "created(EXSTR) ≤ created(EXNAIVE)" true
    (exstr.Core.Search.created <= exnaive.Core.Search.created)

let test_two_query_space_agreement () =
  (* a two-query workload with fusion opportunities: all exhaustive
     strategies must reach the same state set and best cost *)
  let qa =
    cq ~name:"qa" [ v "X" ]
      [ atom (v "X") (v "P") (c "ex:c1") ]
  in
  let qb =
    cq ~name:"qb" [ v "Y" ]
      [ atom (v "Y") (v "Q") (c "ex:c1") ]
  in
  let run strategy =
    Core.Search.run (stats_for fig3_store) (options_exhaustive strategy)
      [ qa; qb ]
  in
  let exnaive = run Core.Search.Exnaive in
  let exstr = run Core.Search.Exstr in
  let dfs = run Core.Search.Dfs in
  check_bool "all complete" true
    (exnaive.Core.Search.completed && exstr.Core.Search.completed
    && dfs.Core.Search.completed);
  check_int "exstr same states" exnaive.Core.Search.explored
    exstr.Core.Search.explored;
  check_int "dfs same states" exnaive.Core.Search.explored
    dfs.Core.Search.explored;
  check_bool "same best" true
    (Float.abs (exstr.Core.Search.best_cost -. exnaive.Core.Search.best_cost)
     < 1e-6
    && Float.abs (dfs.Core.Search.best_cost -. exnaive.Core.Search.best_cost)
       < 1e-6);
  (* the identical-shape views must have been fused somewhere: the best
     state has a single view *)
  check_int "fused best state" 1
    (List.length exnaive.Core.Search.best.Core.State.views)

(* ---------- stop conditions ---------------------------------------------- *)

let test_stop_conditions_shrink_space () =
  let free =
    Core.Search.run (stats_for fig3_store)
      (options_exhaustive Core.Search.Dfs)
      [ fig3_query ]
  in
  let stv =
    Core.Search.run (stats_for fig3_store)
      { (options_exhaustive Core.Search.Dfs) with stop_var = true }
      [ fig3_query ]
  in
  check_bool "STV discards states" true (stv.Core.Search.discarded > 0);
  check_bool "STV explores fewer states" true
    (stv.Core.Search.explored < free.Core.Search.explored);
  (* the all-variable states S4, S5/S6-like, S7, S8 disappear *)
  check_bool "still reduces cost or equals" true
    (stv.Core.Search.best_cost >= free.Core.Search.best_cost -. 1e-6)

let test_stop_tt () =
  let opts =
    { (options_exhaustive Core.Search.Dfs) with stop_tt = true }
  in
  let report = Core.Search.run (stats_for fig3_store) opts [ fig3_query ] in
  (* the triple-table state S8 must not be explored *)
  check_bool "some discard happened" true (report.Core.Search.discarded > 0)

let test_max_states_oom () =
  let opts =
    { (options_exhaustive Core.Search.Exnaive) with max_states = Some 3 }
  in
  let report = Core.Search.run (stats_for fig3_store) opts [ fig3_query ] in
  check_bool "out of memory" true report.Core.Search.out_of_memory;
  check_bool "not completed" true (not report.Core.Search.completed)

let test_time_budget () =
  let opts =
    { (options_exhaustive Core.Search.Exnaive) with time_budget = Some 0. }
  in
  let report = Core.Search.run (stats_for fig3_store) opts [ fig3_query ] in
  check_bool "stopped by time" true (not report.Core.Search.completed);
  (* a best state (at least S0) is always available *)
  check_bool "best available" true (report.Core.Search.best_cost > 0.)

(* ---------- AVF ----------------------------------------------------------- *)

let two_similar_queries =
  [
    cq ~name:"qa" [ v "X" ]
      [ atom (v "X") (c "ex:p") (c "ex:k"); atom (v "X") (c "ex:q") (v "Y") ];
    cq ~name:"qb" [ v "A" ]
      [ atom (v "A") (c "ex:p") (c "ex:k"); atom (v "A") (c "ex:q") (v "B") ];
  ]

let similar_store =
  store_of
    [
      triple (uri "s1") (uri "ex:p") (uri "ex:k");
      triple (uri "s1") (uri "ex:q") (uri "o1");
      triple (uri "s2") (uri "ex:p") (uri "ex:k");
      triple (uri "s2") (uri "ex:q") (uri "o2");
    ]

let test_avf_reduces_created () =
  let base = options_exhaustive Core.Search.Dfs in
  let without =
    Core.Search.run (stats_for similar_store) base two_similar_queries
  in
  let with_avf =
    Core.Search.run (stats_for similar_store) { base with avf = true }
      two_similar_queries
  in
  check_bool "AVF explores fewer states" true
    (with_avf.Core.Search.explored < without.Core.Search.explored);
  check_bool "AVF preserves the best cost" true
    (abs_float (with_avf.Core.Search.best_cost -. without.Core.Search.best_cost)
    < 1e-6)

let test_avf_initial_fusion () =
  (* identical queries fuse already in the initial state *)
  let qa = cq ~name:"qa" [ v "X" ] [ atom (v "X") (c "ex:p") (c "ex:k") ] in
  let qb = cq ~name:"qb" [ v "A" ] [ atom (v "A") (c "ex:p") (c "ex:k") ] in
  let report =
    Core.Search.run (stats_for similar_store)
      { (options_exhaustive Core.Search.Dfs) with avf = true }
      [ qa; qb ]
  in
  check_bool "initial cost already fused" true
    (report.Core.Search.initial_cost > 0.)

(* ---------- GSTR ---------------------------------------------------------- *)

let test_gstr_runs_and_improves () =
  let report =
    Core.Search.run (stats_for similar_store)
      {
        Core.Search.default_options with
        strategy = Core.Search.Gstr;
        stop_var = true;
      }
      two_similar_queries
  in
  check_bool "rcr in [0,1]" true
    (Core.Search.rcr report >= 0. && Core.Search.rcr report <= 1.)

let test_gstr_never_worse_than_initial () =
  let report =
    Core.Search.run (stats_for fig3_store)
      { Core.Search.default_options with strategy = Core.Search.Gstr }
      [ fig3_query ]
  in
  check_bool "best ≤ initial" true
    (report.Core.Search.best_cost <= report.Core.Search.initial_cost +. 1e-6)

(* ---------- trajectory and reporting -------------------------------------- *)

let test_trajectory_monotone () =
  let report =
    Core.Search.run (stats_for similar_store)
      (options_exhaustive Core.Search.Dfs)
      two_similar_queries
  in
  let costs = List.map snd report.Core.Search.trajectory in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b && decreasing rest
    | _ -> true
  in
  check_bool "trajectory decreases" true (decreasing costs);
  check_bool "starts at initial" true
    (abs_float (List.hd costs -. report.Core.Search.initial_cost) < 1e-6)

let test_strategy_names () =
  check_bool "roundtrip" true
    (List.for_all
       (fun s ->
         Core.Search.strategy_of_string (Core.Search.strategy_name s) = Some s)
       [ Core.Search.Exnaive; Exstr; Dfs; Gstr ])

(* ---------- best state is executable -------------------------------------- *)

let prop_best_state_answers_queries =
  QCheck.Test.make
    ~name:"the best state's rewritings answer the workload (DFS-AVF-STV)"
    ~count:40
    QCheck.(pair arb_store (pair arb_cq arb_cq))
    (fun (store, (qa, qb)) ->
      let workload =
        [ Query.Cq.rename qa "qa"; Query.Cq.rename qb "qb" ]
      in
      let report =
        Core.Search.run (stats_for store)
          {
            Core.Search.default_options with
            time_budget = Some 0.5;
            max_states = Some 2000;
          }
          workload
      in
      let state = report.Core.Search.best in
      let env = Engine.Materialize.materialize_state store state in
      List.for_all
        (fun q ->
          let direct = Query.Evaluation.eval_cq store q in
          let via =
            Engine.Executor.execute_query store env
              (List.assoc q.Query.Cq.name state.Core.State.rewritings)
          in
          same_answers direct via)
        workload)

(* ---------- competitors --------------------------------------------------- *)

let competitor_estimator store =
  Core.Cost.create (stats_for store) Core.Cost.default_weights

let test_competitors_on_small_workload () =
  let est = competitor_estimator similar_store in
  List.iter
    (fun which ->
      let report =
        Core.Competitors.run est
          { (options_exhaustive Core.Search.Exnaive) with
            max_states = Some 100000 }
          which two_similar_queries
      in
      check_bool
        (Core.Competitors.name which ^ " completes")
        true report.Core.Search.completed;
      check_bool
        (Core.Competitors.name which ^ " does not worsen")
        true
        (report.Core.Search.best_cost <= report.Core.Search.initial_cost +. 1e-6))
    [ Core.Competitors.Pruning; Core.Competitors.Greedy; Core.Competitors.Heuristic ]

let test_competitor_best_state_valid () =
  let est = competitor_estimator similar_store in
  let report =
    Core.Competitors.run est
      { (options_exhaustive Core.Search.Exnaive) with max_states = Some 100000 }
      Core.Competitors.Greedy two_similar_queries
  in
  let state = report.Core.Search.best in
  check_bool "invariants" true (Core.State.invariants_hold state);
  let env = Engine.Materialize.materialize_state similar_store state in
  List.iter
    (fun q ->
      let direct = Query.Evaluation.eval_cq similar_store q in
      let via =
        Engine.Executor.execute_query similar_store env
          (List.assoc q.Query.Cq.name state.Core.State.rewritings)
      in
      check_bool ("answers " ^ q.Query.Cq.name) true (same_answers direct via))
    two_similar_queries

let test_competitor_oom_on_tight_memory () =
  (* the §6.2 reproduction: with a tight memory cap, the [21] strategies
     fail before producing a full-coverage state *)
  let bigger_queries =
    Workload.Generator.generate
      {
        Workload.Generator.default_spec with
        shape = Workload.Generator.Star;
        n_queries = 3;
        atoms_per_query = 6;
        seed = 7;
      }
  in
  let store = Workload.Barton.store ~n_entities:50 ~seed:1 () in
  let est = competitor_estimator store in
  let report =
    Core.Competitors.run est
      { (options_exhaustive Core.Search.Exnaive) with max_states = Some 200 }
      Core.Competitors.Pruning bigger_queries
  in
  check_bool "out of memory" true report.Core.Search.out_of_memory;
  check_bool "rcr is zero" true (Core.Search.rcr report = 0.)

let () =
  Alcotest.run "search"
    [
      ( "figure3",
        [
          Alcotest.test_case "nine states" `Quick test_fig3_space_size;
          Alcotest.test_case "strategies agree" `Quick
            test_fig3_same_space_all_strategies;
          Alcotest.test_case "stratified ≤ naive transitions" `Quick
            test_fig3_stratified_no_more_transitions;
          Alcotest.test_case "two-query space agreement" `Quick
            test_two_query_space_agreement;
        ] );
      ( "stop-conditions",
        [
          Alcotest.test_case "STV shrinks the space" `Quick
            test_stop_conditions_shrink_space;
          Alcotest.test_case "stoptt discards" `Quick test_stop_tt;
          Alcotest.test_case "max_states → OOM" `Quick test_max_states_oom;
          Alcotest.test_case "time budget" `Quick test_time_budget;
        ] );
      ( "avf",
        [
          Alcotest.test_case "AVF reduces explored states" `Quick
            test_avf_reduces_created;
          Alcotest.test_case "initial fusion" `Quick test_avf_initial_fusion;
        ] );
      ( "gstr",
        [
          Alcotest.test_case "runs and reports rcr" `Quick
            test_gstr_runs_and_improves;
          Alcotest.test_case "never worse than initial" `Quick
            test_gstr_never_worse_than_initial;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "trajectory monotone" `Quick test_trajectory_monotone;
          Alcotest.test_case "strategy names" `Quick test_strategy_names;
          to_alcotest prop_best_state_answers_queries;
        ] );
      ( "competitors",
        [
          Alcotest.test_case "all run on small workloads" `Quick
            test_competitors_on_small_workload;
          Alcotest.test_case "best state valid" `Quick
            test_competitor_best_state_valid;
          Alcotest.test_case "OOM under tight memory" `Quick
            test_competitor_oom_on_tight_memory;
        ] );
    ]
