open Support

let store =
  store_of
    [
      triple (uri "s1") (uri "ex:p") (uri "ex:k");
      triple (uri "s1") (uri "ex:q") (uri "o1");
      triple (uri "s2") (uri "ex:p") (uri "ex:k");
      triple (uri "s2") (uri "ex:r") (uri "o2");
      triple (uri "s3") (uri "ex:r") (uri "o2");
    ]

let qa =
  cq ~name:"qa" [ v "X" ]
    [ atom (v "X") (c "ex:p") (c "ex:k"); atom (v "X") (c "ex:q") (v "Y") ]

let qb = cq ~name:"qb" [ v "A"; v "B" ] [ atom (v "A") (c "ex:r") (v "B") ]

let qc = cq ~name:"qc" [ v "Z" ] [ atom (v "Z") (c "ex:p") (c "ex:k") ]

let options = { Core.Search.default_options with time_budget = Some 0.5 }

let fresh_select workload =
  Core.Selector.select ~store ~reasoning:Core.Selector.No_reasoning ~options
    workload

let answers_ok result workload =
  let mstore = result.Core.Selector.store_for_materialization in
  let env =
    Engine.Materialize.materialize_views mstore result.Core.Selector.recommended
  in
  List.for_all
    (fun q ->
      same_answers
        (Query.Evaluation.eval_cq mstore q)
        (Engine.Executor.execute_query mstore env
           (List.assoc q.Query.Cq.name result.Core.Selector.rewritings)))
    workload

let test_add_query () =
  let previous = fresh_select [ qa; qb ] in
  let result =
    Core.Dynamic.extend ~store ~reasoning:Core.Selector.No_reasoning ~options
      ~previous ~removed:[] ~added:[ qc ]
  in
  check_int "three rewritings" 3 (List.length result.Core.Selector.rewritings);
  check_bool "all queries answered" true (answers_ok result [ qa; qb; qc ])

let test_remove_query () =
  let previous = fresh_select [ qa; qb ] in
  let result =
    Core.Dynamic.extend ~store ~reasoning:Core.Selector.No_reasoning ~options
      ~previous ~removed:[ "qb" ] ~added:[]
  in
  check_int "one rewriting left" 1 (List.length result.Core.Selector.rewritings);
  check_bool "qa still answered" true (answers_ok result [ qa ]);
  (* views only used by qb are gone *)
  check_bool "no stale views" true
    (Core.State.invariants_hold result.Core.Selector.report.Core.Search.best)

let test_swap_queries () =
  let previous = fresh_select [ qa; qb ] in
  let result =
    Core.Dynamic.extend ~store ~reasoning:Core.Selector.No_reasoning ~options
      ~previous ~removed:[ "qa" ] ~added:[ qc ]
  in
  check_bool "qb and qc answered" true (answers_ok result [ qb; qc ])

let test_unknown_removed_rejected () =
  let previous = fresh_select [ qa ] in
  Alcotest.check_raises "unknown name"
    (Invalid_argument "Dynamic.extend: unknown query nope") (fun () ->
      ignore
        (Core.Dynamic.extend ~store ~reasoning:Core.Selector.No_reasoning
           ~options ~previous ~removed:[ "nope" ] ~added:[]))

let test_duplicate_added_rejected () =
  let previous = fresh_select [ qa ] in
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Dynamic.extend: duplicate query name qa") (fun () ->
      ignore
        (Core.Dynamic.extend ~store ~reasoning:Core.Selector.No_reasoning
           ~options ~previous ~removed:[] ~added:[ qa ]))

let test_empty_workload_rejected () =
  let previous = fresh_select [ qa ] in
  Alcotest.check_raises "empty workload"
    (Invalid_argument "Dynamic.extend: empty resulting workload") (fun () ->
      ignore
        (Core.Dynamic.extend ~store ~reasoning:Core.Selector.No_reasoning
           ~options ~previous ~removed:[ "qa" ] ~added:[]))

let test_warm_start_not_worse_than_previous () =
  (* the surviving structure is kept: extending with a disjoint query
     cannot make the surviving queries' situation worse *)
  let previous = fresh_select [ qa ] in
  let extended =
    Core.Dynamic.extend ~store ~reasoning:Core.Selector.No_reasoning ~options
      ~previous ~removed:[] ~added:[ qb ]
  in
  let scratch = fresh_select [ qa; qb ] in
  check_bool "warm best ≤ scratch initial" true
    (extended.Core.Selector.report.Core.Search.best_cost
    <= scratch.Core.Selector.report.Core.Search.initial_cost +. 1e-6)

let test_with_reasoning () =
  let schema =
    Rdf.Schema.of_statements
      [ Rdf.Schema.Subproperty (uri "ex:q", uri "ex:r") ]
  in
  let reasoning = Core.Selector.Post_reformulation schema in
  let previous =
    Core.Selector.select ~store ~reasoning ~options [ qa ]
  in
  let result =
    Core.Dynamic.extend ~store ~reasoning ~options ~previous ~removed:[]
      ~added:[ qb ]
  in
  let saturated = Rdf.Entailment.saturated_copy store schema in
  let env =
    Engine.Materialize.materialize_views store result.Core.Selector.recommended
  in
  List.iter
    (fun q ->
      check_bool
        (q.Query.Cq.name ^ " complete w.r.t. schema")
        true
        (same_answers
           (Query.Evaluation.eval_cq saturated q)
           (Engine.Executor.execute_query store env
              (List.assoc q.Query.Cq.name result.Core.Selector.rewritings))))
    [ qa; qb ]

let prop_dynamic_answers_preserved =
  QCheck.Test.make
    ~name:"dynamic extension answers old and new queries" ~count:30
    QCheck.(triple arb_store arb_cq arb_cq)
    (fun (store, q1, q2) ->
      let q1 = Query.Cq.rename q1 "q1" in
      let q2 = Query.Cq.rename q2 "q2" in
      let opts = { options with max_states = Some 300 } in
      let previous =
        Core.Selector.select ~store ~reasoning:Core.Selector.No_reasoning
          ~options:opts [ q1 ]
      in
      let result =
        Core.Dynamic.extend ~store ~reasoning:Core.Selector.No_reasoning
          ~options:opts ~previous ~removed:[] ~added:[ q2 ]
      in
      let env =
        Engine.Materialize.materialize_views store result.Core.Selector.recommended
      in
      List.for_all
        (fun q ->
          same_answers
            (Query.Evaluation.eval_cq store q)
            (Engine.Executor.execute_query store env
               (List.assoc q.Query.Cq.name result.Core.Selector.rewritings)))
        [ q1; q2 ])

let () =
  Alcotest.run "dynamic"
    [
      ( "extend",
        [
          Alcotest.test_case "add query" `Quick test_add_query;
          Alcotest.test_case "remove query" `Quick test_remove_query;
          Alcotest.test_case "swap queries" `Quick test_swap_queries;
          Alcotest.test_case "unknown removed rejected" `Quick
            test_unknown_removed_rejected;
          Alcotest.test_case "duplicate added rejected" `Quick
            test_duplicate_added_rejected;
          Alcotest.test_case "empty workload rejected" `Quick
            test_empty_workload_rejected;
          Alcotest.test_case "warm start not worse" `Quick
            test_warm_start_not_worse_than_previous;
          Alcotest.test_case "with reasoning" `Quick test_with_reasoning;
          to_alcotest prop_dynamic_answers_preserved;
        ] );
    ]
