(* Figure 5: impact of the AVF and STV heuristics on the search space,
   on a tiny workload (2 star queries of 4 atoms, low commonality,
   satisfiable on the Barton-like dataset).

   Expected shape (paper): duplicates are a large share of created
   states; AVF reduces created states; STV discards many states and trims
   every count; AVF-STV is marginally better than STV; all variants reach
   the same best state. *)

let variants =
  [
    ("NONE", false, false);
    ("AVF", true, false);
    ("STV", false, true);
    ("AVF-STV", true, true);
  ]

let run () =
  Harness.section "Figure 5: impact of heuristics on the search";
  let store = Lazy.force Harness.barton_store in
  let atoms = match Harness.scale with Harness.Quick -> 3 | Full -> 4 in
  let queries =
    Workload.Generator.generate_satisfiable store
      (Harness.spec Workload.Generator.Star 2 atoms Workload.Generator.Low 51)
  in
  let stats = Harness.stats_for store in
  let results =
    List.map
      (fun (label, avf, stop_var) ->
        (* run to completion, as in the paper; stoptt is folded into STV
           so that "discarded" counts are attributable to the heuristic *)
        let opts =
          {
            (Harness.options ~avf ~stop_var ~budget:(10. *. Harness.long_budget) ()) with
            Core.Search.stop_tt = stop_var;
          }
        in
        let report = Core.Search.run stats opts queries in
        (label, report))
      variants
  in
  Harness.print_table
    ~header:
      [ "variant"; "created"; "duplicates"; "discarded"; "explored"; "best cost";
        "done" ]
    (List.map
       (fun (label, (r : Core.Search.report)) ->
         [
           label;
           string_of_int r.created;
           string_of_int r.duplicates;
           string_of_int r.discarded;
           string_of_int r.explored;
           Harness.fmt_float r.best_cost;
           (if r.completed then "yes" else "cut");
         ])
       results);
  (* all complete variants must agree on the best state cost *)
  let completed =
    List.filter (fun (_, (r : Core.Search.report)) -> r.completed) results
  in
  match completed with
  | (_, first) :: rest ->
    let agree =
      List.for_all
        (fun (_, (r : Core.Search.report)) ->
          Float.abs (r.best_cost -. first.Core.Search.best_cost) < 1e-6
          || r.best_cost >= first.Core.Search.best_cost)
        rest
    in
    Printf.printf "\n  STV variants never find better states than NONE: %b\n" agree
  | [] -> print_endline "\n  (no variant completed within the budget)"
