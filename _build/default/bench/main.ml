(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation section (§6), plus ablations.

     dune exec bench/main.exe            # everything, quick scale
     dune exec bench/main.exe fig4       # one experiment
     BENCH_SCALE=full dune exec bench/main.exe   # paper-scale sizes

   Experiments: table2, table3, fig4, fig5, fig6, fig7, fig8, ablation. *)

let experiments =
  [
    ("table2", fun () -> Tables.run_table2 ());
    ("table3", fun () -> Tables.run_table3 ());
    ("fig4", Fig4.run);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("fig8", Fig8.run);
    ("ablation", Ablation.run);
  ]

let usage () =
  print_endline "usage: main.exe [experiment...]";
  print_endline "experiments:";
  List.iter (fun (name, _) -> print_endline ("  " ^ name)) experiments

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: args -> args
    | [] -> []
  in
  Printf.printf
    "RDFViewS reproduction benchmarks (scale: %s; set BENCH_SCALE=full for paper-scale runs)\n"
    (match Harness.scale with Harness.Quick -> "quick" | Harness.Full -> "full");
  match requested with
  | [] -> List.iter (fun (_, run) -> run ()) experiments
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some run -> run ()
        | None ->
          Printf.printf "unknown experiment: %s\n" name;
          usage ();
          exit 1)
      names
