(* Figure 8: execution times for the Q1 queries under RDFS reasoning,
   over five evaluation methods:

   - materialized views recommended by post-reformulation;
   - materialized views recommended by pre-reformulation;
   - the saturated triple table (the heavily-indexed store — the
     PostgreSQL analog of §6);
   - a restricted saturated triple table holding only the triples
     matching some query atom;
   - the materialized initial state (the queries themselves), which only
     needs view scans;

   plus the §6.5/§6.6 prose numbers: view materialization time and total
   view size as a fraction of the database.

   The "dedicated RDF engine" comparator (RDF-3X) is substituted by the
   indexed store itself (see DESIGN.md); the claim preserved is
   views ≫ triple table and views ≈ indexed evaluation.

   Timing uses one Bechamel Test.make per (query, method) pair. *)

let restricted_store saturated queries =
  let restricted = Rdf.Store.create () in
  List.iter
    (fun (q : Query.Cq.t) ->
      List.iter
        (fun (a : Query.Atom.t) ->
          let bound term =
            match term with
            | Query.Qterm.Cst cst -> Rdf.Store.find_term saturated cst
            | Query.Qterm.Var _ -> None
          in
          let pat =
            { Rdf.Store.ps = bound a.s; pp = bound a.p; po = bound a.o }
          in
          Rdf.Store.iter_matching saturated pat (fun (s, p, o) ->
              let decode = Rdf.Store.decode_term saturated in
              let reencode t = Rdf.Store.encode_term restricted (decode t) in
              ignore (Rdf.Store.add_encoded restricted (reencode s, reencode p, reencode o))))
        q.Query.Cq.body)
    queries;
  restricted

let run () =
  Harness.section "Figure 8: execution times for queries with RDFS";
  let store = Lazy.force Harness.barton_store in
  let schema = Lazy.force Harness.barton_schema in
  let _, _, q1, _ = Tables.reformulation_workloads () in
  let opts = Harness.options ~budget:Harness.search_budget () in

  (* the five competitors *)
  let saturated, saturation_time =
    Harness.time_once (fun () -> Rdf.Entailment.saturated_copy store schema)
  in
  let post =
    Core.Selector.select ~store
      ~reasoning:(Core.Selector.Post_reformulation schema) ~options:opts q1
  in
  let pre =
    Core.Selector.select ~store
      ~reasoning:(Core.Selector.Pre_reformulation schema) ~options:opts q1
  in
  let post_env, post_mat_time =
    Harness.time_once (fun () ->
        Engine.Materialize.materialize_views store post.Core.Selector.recommended)
  in
  let pre_env, pre_mat_time =
    Harness.time_once (fun () ->
        Engine.Materialize.materialize_views store pre.Core.Selector.recommended)
  in
  let initial_env, initial_mat_time =
    Harness.time_once (fun () ->
        let env = Hashtbl.create 8 in
        List.iter
          (fun (q : Query.Cq.t) ->
            (* the initial state materializes the reformulated queries *)
            let u = Query.Reformulation.reformulate q schema in
            let rel =
              Engine.Materialize.materialize_ucq store
                (Query.Ucq.make ~name:q.Query.Cq.name (Query.Ucq.disjuncts u))
            in
            Hashtbl.replace env q.Query.Cq.name rel)
          q1;
        env)
  in
  let restricted = restricted_store saturated q1 in

  let db_bytes =
    Rdf.Store.fold_all saturated
      (fun (s, p, o) acc ->
        acc
        + Rdf.Term.size (Rdf.Store.decode_term saturated s)
        + Rdf.Term.size (Rdf.Store.decode_term saturated p)
        + Rdf.Term.size (Rdf.Store.decode_term saturated o))
      0
  in
  let report_views label env mat_time =
    let bytes = Engine.Materialize.total_size_bytes store env in
    Printf.printf
      "  %-22s materialized in %.3fs; size %d bytes (%.1f%% of saturated db)\n"
      label mat_time bytes
      (100. *. float_of_int bytes /. float_of_int (max db_bytes 1))
  in
  Printf.printf "  database: %d explicit + %d implicit triples (saturation: %.3fs)\n"
    (Rdf.Store.size store)
    (Rdf.Store.size saturated - Rdf.Store.size store)
    saturation_time;
  report_views "post-reformulation" post_env post_mat_time;
  report_views "pre-reformulation" pre_env pre_mat_time;
  report_views "initial state" initial_env initial_mat_time;

  (* per-query timing: one Bechamel test per (query, method) *)
  Harness.subsection "per-query execution time (ms, OLS estimate)";
  let methods (q : Query.Cq.t) =
    [
      ( "views-post",
        fun () ->
          ignore
            (Engine.Executor.execute store post_env
               (List.assoc q.Query.Cq.name post.Core.Selector.rewritings)) );
      ( "views-pre",
        fun () ->
          ignore
            (Engine.Executor.execute store pre_env
               (List.assoc q.Query.Cq.name pre.Core.Selector.rewritings)) );
      ( "saturated-tt",
        fun () -> ignore (Query.Evaluation.eval_cq saturated q) );
      ( "restricted-tt",
        fun () -> ignore (Query.Evaluation.eval_cq restricted q) );
      ( "initial-state",
        fun () ->
          ignore
            (Engine.Executor.execute store initial_env
               (Core.Rewriting.Scan q.Query.Cq.name)) );
    ]
  in
  let rows =
    List.map
      (fun (q : Query.Cq.t) ->
        let tests =
          List.map
            (fun (label, fn) ->
              Bechamel.Test.make ~name:label (Bechamel.Staged.stage fn))
            (methods q)
        in
        let grouped =
          Bechamel.Test.make_grouped ~name:q.Query.Cq.name ~fmt:"%s/%s" tests
        in
        let measured = Harness.measure_tests ~quota:0.3 grouped in
        q.Query.Cq.name
        :: List.map
             (fun (label, _) ->
               match
                 List.assoc_opt (q.Query.Cq.name ^ "/" ^ label) measured
               with
               | Some ns -> Harness.fmt_ms ns
               | None -> "?")
             (methods q))
      q1
  in
  Harness.print_table
    ~header:
      [ "query"; "views-post"; "views-pre"; "saturated-tt"; "restricted-tt";
        "initial-state" ]
    rows;

  (* completeness cross-check: both view sets answer like the saturated db *)
  let complete =
    List.for_all
      (fun (q : Query.Cq.t) ->
        let expected = Query.Evaluation.eval_cq saturated q in
        let via_post =
          Engine.Executor.execute_query store post_env
            (List.assoc q.Query.Cq.name post.Core.Selector.rewritings)
        in
        let via_pre =
          Engine.Executor.execute_query store pre_env
            (List.assoc q.Query.Cq.name pre.Core.Selector.rewritings)
        in
        Query.Evaluation.same_answers expected via_post
        && Query.Evaluation.same_answers expected via_pre)
      q1
  in
  Printf.printf "\n  all methods return complete answers: %b\n" complete
