(* Table 2: term reformulation for post-reasoning (the §4.3 example), and
   Table 3: characteristics of the reformulation workloads Q1 ⊂ Q2. *)

let picture = Rdf.Term.Uri "ex:picture"
let painting = Rdf.Term.Uri "ex:painting"
let is_locat_in = Rdf.Term.Uri "ex:isLocatIn"
let is_exp_in = Rdf.Term.Uri "ex:isExpIn"

let s43 =
  Rdf.Schema.of_statements
    [
      Rdf.Schema.Subclass (painting, picture);
      Rdf.Schema.Subproperty (is_exp_in, is_locat_in);
    ]

let run_table2 () =
  Harness.section "Table 2: term reformulation for post-reasoning";
  let q1 =
    Query.Cq.make ~name:"q1"
      ~head:[ Query.Qterm.Var "X1" ]
      ~body:
        [
          Query.Atom.make (Query.Qterm.Var "X1")
            (Query.Qterm.Cst Rdf.Vocabulary.rdf_type)
            (Query.Qterm.Cst picture);
        ]
  in
  let q4 =
    Query.Cq.make ~name:"q4"
      ~head:[ Query.Qterm.Var "X1"; Query.Qterm.Var "X2" ]
      ~body:
        [
          Query.Atom.make (Query.Qterm.Var "X1") (Query.Qterm.Var "X2")
            (Query.Qterm.Cst picture);
        ]
  in
  List.iter
    (fun q ->
      let reformulated = Query.Reformulation.reformulate q s43 in
      Harness.subsection
        (Printf.sprintf "%s,S (%d union terms)" q.Query.Cq.name
           (Query.Ucq.cardinal reformulated));
      List.iteri
        (fun i d -> Printf.printf "  (%d) %s\n" (i + 1) (Query.Cq.to_string d))
        (Query.Ucq.disjuncts reformulated))
    [ q1; q4 ]

(* ---------- Table 3 ------------------------------------------------------- *)

(* Q2: 10 satisfiable queries on the Barton-like dataset, generalized so
   that reasoning matters; Q1 is its 5-query prefix (the paper: Q1 ⊂
   Q2). *)
let reformulation_workloads () =
  let store = Lazy.force Harness.barton_store in
  let schema = Lazy.force Harness.barton_schema in
  let q2 =
    Workload.Generator.generate_satisfiable store
      (Harness.spec Workload.Generator.Mixed 10 4 Workload.Generator.High 77)
    |> Workload.Generator.generalize schema 0.9 7
  in
  let q1 = List.filteri (fun i _ -> i < 5) q2 in
  (store, schema, q1, q2)

let characterize schema queries =
  let n = List.length queries in
  let atoms =
    List.fold_left (fun acc q -> acc + Query.Cq.atom_count q) 0 queries
  in
  let consts =
    List.fold_left (fun acc q -> acc + Query.Cq.constant_count q) 0 queries
  in
  let reformulated =
    List.map (fun q -> Query.Reformulation.reformulate q schema) queries
  in
  let rn =
    List.fold_left (fun acc u -> acc + Query.Ucq.cardinal u) 0 reformulated
  in
  let ra =
    List.fold_left (fun acc u -> acc + Query.Ucq.atom_count u) 0 reformulated
  in
  let rc =
    List.fold_left (fun acc u -> acc + Query.Ucq.constant_count u) 0 reformulated
  in
  (n, atoms, consts, rn, ra, rc)

let run_table3 () =
  Harness.section "Table 3: workloads used for reformulation experiments";
  let _, schema, q1, q2 = reformulation_workloads () in
  Printf.printf
    "  schema: %d classes, %d properties, %d RDFS statements\n"
    (List.length (Workload.Barton.classes ()))
    (List.length (Workload.Barton.properties ()))
    (Rdf.Schema.size schema);
  let row label queries =
    let n, a, cc, rn, ra, rc = characterize schema queries in
    [
      label; string_of_int n; string_of_int a; string_of_int cc;
      string_of_int rn; string_of_int ra; string_of_int rc;
    ]
  in
  Harness.print_table
    ~header:[ "workload"; "|Q|"; "#a(Q)"; "#c(Q)"; "|Qr|"; "#a(Qr)"; "#c(Qr)" ]
    [ row "Q1" q1; row "Q2" q2 ]

let run () =
  run_table2 ();
  run_table3 ()
