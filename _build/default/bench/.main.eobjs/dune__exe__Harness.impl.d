bench/harness.ml: Analyze Bechamel Benchmark Core Float Hashtbl List Measure Printf Stats String Sys Time Toolkit Unix Workload
