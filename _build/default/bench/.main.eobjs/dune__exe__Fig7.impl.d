bench/fig7.ml: Core Float Harness Lazy List Printf Rdf Tables
