bench/fig5.ml: Core Float Harness Lazy List Printf Workload
