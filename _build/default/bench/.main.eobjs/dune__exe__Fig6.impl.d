bench/fig6.ml: Core Harness Lazy List Printf Workload
