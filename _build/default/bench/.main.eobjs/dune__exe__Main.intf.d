bench/main.mli:
