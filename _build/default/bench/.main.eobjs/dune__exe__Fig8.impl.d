bench/fig8.ml: Bechamel Core Engine Harness Hashtbl Lazy List Printf Query Rdf Tables
