bench/tables.ml: Harness Lazy List Printf Query Rdf Workload
