bench/fig4.ml: Core Harness Lazy List Printf Workload
