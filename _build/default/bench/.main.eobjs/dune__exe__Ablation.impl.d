bench/ablation.ml: Core Harness Lazy List Printf Query Rdf Workload
