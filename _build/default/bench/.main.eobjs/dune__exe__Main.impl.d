bench/main.ml: Ablation Array Fig4 Fig5 Fig6 Fig7 Fig8 Harness List Printf Sys Tables
