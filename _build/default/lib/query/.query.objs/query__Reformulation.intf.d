lib/query/reformulation.mli: Atom Cq Rdf Ucq
