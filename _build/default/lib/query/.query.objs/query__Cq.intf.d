lib/query/cq.mli: Atom Format Qterm Rdf
