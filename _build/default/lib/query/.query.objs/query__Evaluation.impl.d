lib/query/evaluation.ml: Array Atom Cq Hashtbl List Map Qterm Rdf String Ucq
