lib/query/ucq.ml: Cq Format Hashtbl List String
