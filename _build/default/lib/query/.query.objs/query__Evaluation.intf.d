lib/query/evaluation.mli: Cq Rdf Ucq
