lib/query/atom.mli: Format Qterm Rdf
