lib/query/parser.ml: Atom Cq List Printf Qterm Rdf String
