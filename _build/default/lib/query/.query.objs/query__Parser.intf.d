lib/query/parser.mli: Cq Rdf
