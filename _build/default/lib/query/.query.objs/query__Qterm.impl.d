lib/query/qterm.ml: Format Printf Rdf String
