lib/query/qterm.mli: Format Rdf
