lib/query/cq.ml: Array Atom Format Int List Map Option Printf Qterm Rdf Set String
