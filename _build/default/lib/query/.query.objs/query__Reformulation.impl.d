lib/query/reformulation.ml: Atom Cq Float Hashtbl List Printf Qterm Queue Rdf Ucq
