lib/query/ucq.mli: Cq Format
