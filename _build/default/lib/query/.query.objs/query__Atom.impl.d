lib/query/atom.ml: Format Int List Option Printf Qterm String
