(** Evaluation of conjunctive queries and UCQs over a triple store.

    This is [evaluate] in the sense of Theorem 4.2: standard evaluation of
    plain RDF basic graph patterns, with set semantics.  Joins are executed
    by index nested loops with a most-bound-atom-first dynamic ordering,
    exploiting the store's column-combination indexes. *)

val eval_cq : Rdf.Store.t -> Cq.t -> Rdf.Term.t array list
(** All distinct answer tuples of the query on the store.  Head constants
    (arising from reformulation rules 5 and 6) are returned verbatim. *)

val eval_ucq : Rdf.Store.t -> Ucq.t -> Rdf.Term.t array list
(** Set-semantics union of the disjuncts' answers. *)

val eval_cq_codes : Rdf.Store.t -> Cq.t -> int array list
(** Like {!eval_cq} but dictionary-encoded; head constants are encoded
    into the store's dictionary on the fly. *)

val eval_ucq_codes : Rdf.Store.t -> Ucq.t -> int array list

val count_cq : Rdf.Store.t -> Cq.t -> int
val count_ucq : Rdf.Store.t -> Ucq.t -> int

val same_answers : Rdf.Term.t array list -> Rdf.Term.t array list -> bool
(** Order-insensitive comparison of two answer sets. *)
