(** Text syntax for queries, schemas and data.

    {2 Queries (Datalog-style)}

    {v
    q1(X, Z) :- t(X, <ex:hasPainted>, <ex:starryNight>),
                t(X, <ex:isParentOf>, Y),
                t(Y, <ex:hasPainted>, Z).
    v}

    Identifiers starting with an uppercase letter (or prefixed with [?])
    are variables; [<...>] delimits URIs; ["..."] delimits literals;
    bare lowercase words are URIs; the keyword [type] abbreviates
    [rdf:type].  A workload is a sequence of such rules; the final [.]
    of each rule is mandatory.

    {2 Schemas}

    {v
    <ex:painting> subClassOf <ex:picture> .
    <ex:isExpIn> subPropertyOf <ex:isLocatIn> .
    <ex:hasPainted> domain <ex:painter> .
    <ex:hasPainted> range <ex:painting> .
    v}

    {2 Data (N-Triples-style)}

    {v
    <ex:vanGogh> <ex:hasPainted> <ex:starryNight> .
    <ex:mona> type <ex:painting> .
    v}

    Lines starting with [#] are comments everywhere. *)

exception Parse_error of string
(** Raised with a message including the offending position. *)

val parse_query : string -> Cq.t
(** Parse exactly one query. *)

val parse_workload : string -> Cq.t list
(** Parse a sequence of queries. *)

val parse_schema : string -> Rdf.Schema.t

val parse_triples : string -> Rdf.Triple.t list

val query_to_text : Cq.t -> string
(** Render a query back into parsable syntax
    ([parse_query (query_to_text q)] is syntactically [q]). *)

val schema_to_text : Rdf.Schema.t -> string

val triples_to_text : Rdf.Triple.t list -> string
