(** RDF query reformulation w.r.t. an RDFS (Algorithm 1, §4.2).

    [reformulate q s] computes a union of conjunctive queries [ucq] such
    that for any database [D] associated to schema [s]:
    [evaluate(q, saturate(D, s)) = evaluate(ucq, D)] (Theorem 4.2).

    The algorithm applies the six backward rules of Fig. 2 to a fixpoint:
    + class inclusion: [t(s, rdf:type, c2)] ⇐ [t(s, rdf:type, c1)]
      for [c1 ⊑ c2];
    + property inclusion: [t(s, p2, o)] ⇐ [t(s, p1, o)] for [p1 ⊑p p2];
    + domain typing: [t(s, rdf:type, c)] ⇐ [∃X t(s, p, X)] for
      [domain(p) = c];
    + range typing: [t(o, rdf:type, c)] ⇐ [∃X t(X, p, o)] for
      [range(p) = c];
    + class generalization: [t(s, rdf:type, X)] ⇐ [t(s, rdf:type, ci)]
      binding [X := ci] throughout the query, for every class [ci];
    + property generalization: [t(s, X, o)] ⇐ [t(s, pi, o)] binding
      [X := pi], for every property [pi] and for [rdf:type].

    Rules 5 and 6 extend the state of the art (DL-fragment reformulation)
    to atoms with variables in class or property position. *)

val reformulate : Cq.t -> Rdf.Schema.t -> Ucq.t
(** The reformulation of [q]; the original query is always the first
    disjunct.  Duplicates (up to variable renaming) are removed. *)

val reformulate_atom : Atom.t -> Rdf.Schema.t -> Ucq.t
(** Reformulation of the 1-atom query whose head projects all the atom's
    variables — the per-atom reformulation used by post-reformulation
    statistics (§4.3, Table 2). *)

val bound : Cq.t -> Rdf.Schema.t -> float
(** The [(2|S|^2)^m] bound of Theorem 4.1 on the number of output
    queries.  The constant is too tight for very small schemas when
    rules 5/6 fire (they bind a variable over the whole vocabulary);
    see the adjusted-constant property in [test_reformulation.ml]. *)
