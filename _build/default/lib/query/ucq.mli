(** Unions of conjunctive queries, the output language of reformulation
    (§4.2) and the language of reformulated views (§4.3). *)

type t = private { name : string; disjuncts : Cq.t list }

val make : name:string -> Cq.t list -> t
(** Raises [Invalid_argument] on an empty list or mismatched arities. *)

val of_cq : Cq.t -> t

val name : t -> string
val disjuncts : t -> Cq.t list
val arity : t -> int

val cardinal : t -> int
(** Number of disjuncts ([|Qr|]-style counts of Table 3). *)

val atom_count : t -> int
(** Total number of atoms over all disjuncts (#a in Table 3). *)

val constant_count : t -> int
(** Total number of constants over all disjuncts (#c in Table 3). *)

val dedup : t -> t
(** Remove disjuncts that are duplicates up to variable renaming. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
