(** Query terms: variables and constants.

    Following §2, query atoms range over free (head) variables,
    existential variables and constants; blank nodes need no dedicated
    representation since they behave exactly like existential
    variables. *)

type t =
  | Var of string          (** a variable, identified by name *)
  | Cst of Rdf.Term.t      (** an RDF constant *)

val compare : t -> t -> int
val equal : t -> t -> bool

val var : string -> t
val cst : Rdf.Term.t -> t
val uri : string -> t
(** [uri u] is [Cst (Uri u)]. *)

val is_var : t -> bool
val is_cst : t -> bool

val var_name : t -> string option
val constant : t -> Rdf.Term.t option

val fresh_var : unit -> string
(** A globally fresh variable name (drawn from a process-wide counter). *)

val reset_fresh_counter : unit -> unit
(** Reset the fresh-name counter; only for reproducible tests. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
