type t = { name : string; disjuncts : Cq.t list }

let make ~name disjuncts =
  match disjuncts with
  | [] -> invalid_arg "Ucq.make: empty union"
  | first :: rest ->
    let a = Cq.arity first in
    if List.exists (fun q -> Cq.arity q <> a) rest then
      invalid_arg "Ucq.make: disjuncts with different arities";
    { name; disjuncts }

let of_cq q = { name = q.Cq.name; disjuncts = [ q ] }

let name t = t.name
let disjuncts t = t.disjuncts
let arity t = Cq.arity (List.hd t.disjuncts)

let cardinal t = List.length t.disjuncts

let atom_count t =
  List.fold_left (fun acc q -> acc + Cq.atom_count q) 0 t.disjuncts

let constant_count t =
  List.fold_left (fun acc q -> acc + Cq.constant_count q) 0 t.disjuncts

let dedup t =
  let seen = Hashtbl.create 16 in
  let keep q =
    let key = Cq.canonical_string q in
    if Hashtbl.mem seen key then false
    else begin
      Hashtbl.add seen key ();
      true
    end
  in
  { t with disjuncts = List.filter keep t.disjuncts }

let to_string t =
  String.concat "\n  UNION " (List.map Cq.to_string t.disjuncts)

let pp fmt t = Format.pp_print_string fmt (to_string t)
