let is_type t = Qterm.equal t (Qterm.cst Rdf.Vocabulary.rdf_type)

(* One backward application of each rule of Fig. 2 on each atom of [q]. *)
let step schema (q : Cq.t) =
  let replace_atom i g' =
    Cq.make ~name:q.name ~head:q.head
      ~body:(List.mapi (fun j a -> if j = i then g' else a) q.body)
  in
  let on_atom i (g : Atom.t) =
    let rule1 =
      match (g.p, g.o) with
      | p, Qterm.Cst c2 when is_type p ->
        List.map
          (fun c1 -> replace_atom i (Atom.make g.s g.p (Qterm.cst c1)))
          (Rdf.Schema.direct_subclasses schema c2)
      | _, (Qterm.Cst _ | Qterm.Var _) -> []
    in
    let rule2 =
      match g.p with
      | Qterm.Cst p2 ->
        List.map
          (fun p1 -> replace_atom i (Atom.make g.s (Qterm.cst p1) g.o))
          (Rdf.Schema.direct_subproperties schema p2)
      | Qterm.Var _ -> []
    in
    let rule3 =
      match (g.p, g.o) with
      | p, Qterm.Cst c when is_type p ->
        List.map
          (fun prop ->
            replace_atom i
              (Atom.make g.s (Qterm.cst prop) (Qterm.var (Qterm.fresh_var ()))))
          (Rdf.Schema.properties_with_domain schema c)
      | _, (Qterm.Cst _ | Qterm.Var _) -> []
    in
    let rule4 =
      match (g.p, g.o) with
      | p, Qterm.Cst c when is_type p ->
        List.map
          (fun prop ->
            replace_atom i
              (Atom.make (Qterm.var (Qterm.fresh_var ())) (Qterm.cst prop) g.s))
          (Rdf.Schema.properties_with_range schema c)
      | _, (Qterm.Cst _ | Qterm.Var _) -> []
    in
    let rule5 =
      match (g.p, g.o) with
      | p, Qterm.Var x when is_type p ->
        List.map
          (fun ci -> Cq.subst_var x (Qterm.cst ci) q)
          (Rdf.Schema.classes schema)
      | _, (Qterm.Cst _ | Qterm.Var _) -> []
    in
    let rule6 =
      match g.p with
      | Qterm.Var x ->
        List.map
          (fun pi -> Cq.subst_var x (Qterm.cst pi) q)
          (Rdf.Schema.properties schema @ [ Rdf.Vocabulary.rdf_type ])
      | Qterm.Cst _ -> []
    in
    List.concat [ rule1; rule2; rule3; rule4; rule5; rule6 ]
  in
  List.concat (List.mapi on_atom q.body)

let reformulate q schema =
  let seen = Hashtbl.create 64 in
  let output = ref [] in
  let queue = Queue.create () in
  let push q' =
    let key = Cq.canonical_string q' in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      output := q' :: !output;
      Queue.add q' queue
    end
  in
  push q;
  while not (Queue.is_empty queue) do
    let q' = Queue.pop queue in
    List.iter push (step schema q')
  done;
  let disjuncts = List.rev !output in
  let named =
    List.mapi
      (fun i d -> Cq.rename d (Printf.sprintf "%s#%d" q.Cq.name i))
      disjuncts
  in
  Ucq.make ~name:q.Cq.name named

let reformulate_atom atom schema =
  let head = List.map Qterm.var (Atom.var_set atom) in
  let head = if head = [] then [] else head in
  (* an all-constant atom would be a boolean query; keep at least the
     subject for a well-formed head *)
  let head =
    match head with
    | [] -> [ atom.Atom.s ]
    | _ :: _ -> head
  in
  reformulate (Cq.make ~name:"atom" ~head ~body:[ atom ]) schema

let bound q schema =
  let s = float_of_int (Rdf.Schema.size schema) in
  let m = float_of_int (Cq.atom_count q) in
  Float.pow (2. *. s *. s) m
