exception Parse_error of string

(* ---------- lexer -------------------------------------------------------- *)

type token =
  | Ident of string      (* bare word *)
  | Variable of string
  | Uri of string
  | Literal of string
  | Lparen
  | Rparen
  | Comma
  | Turnstile            (* :- *)
  | Dot

let token_to_string = function
  | Ident s -> s
  | Variable s -> "?" ^ s
  | Uri s -> "<" ^ s ^ ">"
  | Literal s -> "\"" ^ s ^ "\""
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Turnstile -> ":-"
  | Dot -> "."

let fail_at line message =
  raise (Parse_error (Printf.sprintf "line %d: %s" line message))

let is_word_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = ':' || ch = '-'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push tok = tokens := (tok, !line) :: !tokens in
  while !i < n do
    let ch = input.[!i] in
    if ch = '\n' then begin
      incr line;
      incr i
    end
    else if ch = ' ' || ch = '\t' || ch = '\r' then incr i
    else if ch = '#' then begin
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if ch = '(' then (push Lparen; incr i)
    else if ch = ')' then (push Rparen; incr i)
    else if ch = ',' then (push Comma; incr i)
    else if ch = ':' && !i + 1 < n && input.[!i + 1] = '-' then begin
      push Turnstile;
      i := !i + 2
    end
    else if ch = '.' then (push Dot; incr i)
    else if ch = '<' then begin
      let close = try String.index_from input !i '>' with Not_found ->
        fail_at !line "unterminated URI"
      in
      push (Uri (String.sub input (!i + 1) (close - !i - 1)));
      i := close + 1
    end
    else if ch = '"' then begin
      let close = try String.index_from input (!i + 1) '"' with Not_found ->
        fail_at !line "unterminated literal"
      in
      push (Literal (String.sub input (!i + 1) (close - !i - 1)));
      i := close + 1
    end
    else if ch = '?' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && is_word_char input.[!j] do
        incr j
      done;
      if !j = start then fail_at !line "empty variable name";
      push (Variable (String.sub input start (!j - start)));
      i := !j
    end
    else if is_word_char ch then begin
      let start = !i in
      let j = ref start in
      while !j < n && is_word_char input.[!j] do
        incr j
      done;
      let word = String.sub input start (!j - start) in
      (if word.[0] >= 'A' && word.[0] <= 'Z' then push (Variable word)
       else push (Ident word));
      i := !j
    end
    else fail_at !line (Printf.sprintf "unexpected character %c" ch)
  done;
  List.rev !tokens

(* ---------- token stream -------------------------------------------------- *)

type stream = { mutable tokens : (token * int) list }

let peek s = match s.tokens with [] -> None | (tok, _) :: _ -> Some tok

let line_of s = match s.tokens with [] -> 0 | (_, line) :: _ -> line

let advance s =
  match s.tokens with
  | [] -> raise (Parse_error "unexpected end of input")
  | (tok, _) :: rest ->
    s.tokens <- rest;
    tok

let expect s expected =
  let tok = advance s in
  if tok <> expected then
    fail_at (line_of s)
      (Printf.sprintf "expected %s, found %s" (token_to_string expected)
         (token_to_string tok))

(* ---------- term parsing -------------------------------------------------- *)

let rdf_type_keyword = "type"

let term_of_token line = function
  | Variable x -> Qterm.Var x
  | Uri u -> Qterm.Cst (Rdf.Term.Uri u)
  | Literal l -> Qterm.Cst (Rdf.Term.Literal l)
  | Ident w when String.equal w rdf_type_keyword ->
    Qterm.Cst Rdf.Vocabulary.rdf_type
  | Ident w -> Qterm.Cst (Rdf.Term.Uri w)
  | tok ->
    fail_at line (Printf.sprintf "expected a term, found %s" (token_to_string tok))

let parse_term s =
  let line = line_of s in
  term_of_token line (advance s)

(* ---------- query parsing ------------------------------------------------- *)

let parse_term_list s =
  expect s Lparen;
  let rec loop acc =
    let term = parse_term s in
    match advance s with
    | Comma -> loop (term :: acc)
    | Rparen -> List.rev (term :: acc)
    | tok ->
      fail_at (line_of s)
        (Printf.sprintf "expected , or ), found %s" (token_to_string tok))
  in
  loop []

let parse_atom s =
  (match advance s with
  | Ident "t" -> ()
  | tok ->
    fail_at (line_of s)
      (Printf.sprintf "expected atom t(...), found %s" (token_to_string tok)));
  match parse_term_list s with
  | [ subject; predicate; obj ] -> Atom.make subject predicate obj
  | terms ->
    fail_at (line_of s)
      (Printf.sprintf "atom must have 3 terms, found %d" (List.length terms))

let parse_rule s =
  let name =
    match advance s with
    | Ident n -> n
    | tok ->
      fail_at (line_of s)
        (Printf.sprintf "expected query name, found %s" (token_to_string tok))
  in
  let head = parse_term_list s in
  expect s Turnstile;
  let rec body acc =
    let atom = parse_atom s in
    match advance s with
    | Comma -> body (atom :: acc)
    | Dot -> List.rev (atom :: acc)
    | tok ->
      fail_at (line_of s)
        (Printf.sprintf "expected , or ., found %s" (token_to_string tok))
  in
  let body = body [] in
  try Cq.make ~name ~head ~body
  with Invalid_argument message -> raise (Parse_error message)

let parse_workload input =
  let s = { tokens = tokenize input } in
  let rec loop acc =
    match peek s with
    | None -> List.rev acc
    | Some _ -> loop (parse_rule s :: acc)
  in
  loop []

let parse_query input =
  match parse_workload input with
  | [ q ] -> q
  | queries ->
    raise
      (Parse_error
         (Printf.sprintf "expected exactly one query, found %d"
            (List.length queries)))

(* ---------- schema parsing ------------------------------------------------ *)

let constant_of_term line = function
  | Qterm.Cst (Rdf.Term.Uri _ as t) -> t
  | Qterm.Cst _ -> fail_at line "schema terms must be URIs"
  | Qterm.Var _ -> fail_at line "schema statements cannot contain variables"

let parse_schema input =
  let s = { tokens = tokenize input } in
  let rec loop acc =
    match peek s with
    | None -> Rdf.Schema.of_statements (List.rev acc)
    | Some _ ->
      let line = line_of s in
      let subject = constant_of_term line (parse_term s) in
      let relation =
        match advance s with
        | Ident r -> String.lowercase_ascii r
        | tok ->
          fail_at (line_of s)
            (Printf.sprintf "expected a schema relation, found %s"
               (token_to_string tok))
      in
      let obj = constant_of_term (line_of s) (parse_term s) in
      expect s Dot;
      let statement =
        match relation with
        | "subclassof" -> Rdf.Schema.Subclass (subject, obj)
        | "subpropertyof" -> Rdf.Schema.Subproperty (subject, obj)
        | "domain" -> Rdf.Schema.Domain (subject, obj)
        | "range" -> Rdf.Schema.Range (subject, obj)
        | other -> fail_at line ("unknown schema relation " ^ other)
      in
      loop (statement :: acc)
  in
  loop []

(* ---------- triple parsing ------------------------------------------------ *)

let parse_triples input =
  let s = { tokens = tokenize input } in
  let rdf_term line = function
    | Qterm.Cst t -> t
    | Qterm.Var _ -> fail_at line "triples cannot contain variables"
  in
  let rec loop acc =
    match peek s with
    | None -> List.rev acc
    | Some _ ->
      let line = line_of s in
      let subject = rdf_term line (parse_term s) in
      let predicate = rdf_term (line_of s) (parse_term s) in
      let obj = rdf_term (line_of s) (parse_term s) in
      expect s Dot;
      let triple =
        try Rdf.Triple.make subject predicate obj
        with Invalid_argument message -> raise (Parse_error message)
      in
      loop (triple :: acc)
  in
  loop []

(* ---------- printers ------------------------------------------------------ *)

let term_to_text = function
  | Qterm.Var x -> "?" ^ x
  | Qterm.Cst t when Rdf.Term.equal t Rdf.Vocabulary.rdf_type -> rdf_type_keyword
  | Qterm.Cst (Rdf.Term.Uri u) -> "<" ^ u ^ ">"
  | Qterm.Cst (Rdf.Term.Literal l) -> "\"" ^ l ^ "\""
  | Qterm.Cst (Rdf.Term.Blank b) -> "<_:" ^ b ^ ">"

let rdf_term_to_text t = term_to_text (Qterm.Cst t)

let query_to_text (q : Cq.t) =
  Printf.sprintf "%s(%s) :- %s." q.name
    (String.concat ", " (List.map term_to_text q.head))
    (String.concat ",\n    "
       (List.map
          (fun (a : Atom.t) ->
            Printf.sprintf "t(%s, %s, %s)" (term_to_text a.s) (term_to_text a.p)
              (term_to_text a.o))
          q.body))

let schema_to_text schema =
  let statement_to_text = function
    | Rdf.Schema.Subclass (a, b) ->
      Printf.sprintf "%s subClassOf %s ." (rdf_term_to_text a) (rdf_term_to_text b)
    | Rdf.Schema.Subproperty (a, b) ->
      Printf.sprintf "%s subPropertyOf %s ." (rdf_term_to_text a)
        (rdf_term_to_text b)
    | Rdf.Schema.Domain (p, cls) ->
      Printf.sprintf "%s domain %s ." (rdf_term_to_text p) (rdf_term_to_text cls)
    | Rdf.Schema.Range (p, cls) ->
      Printf.sprintf "%s range %s ." (rdf_term_to_text p) (rdf_term_to_text cls)
  in
  String.concat "\n" (List.map statement_to_text (Rdf.Schema.statements schema))

let triples_to_text triples =
  String.concat "\n"
    (List.map
       (fun (tr : Rdf.Triple.t) ->
         Printf.sprintf "%s %s %s ." (rdf_term_to_text tr.s) (rdf_term_to_text tr.p)
           (rdf_term_to_text tr.o))
       triples)
