type mode =
  | Plain
  | Reformulated of Rdf.Schema.t

type t = {
  store : Rdf.Store.t;
  mode : mode;
  atom_counts : (string, float) Hashtbl.t;
  column_distincts : (string, float) Hashtbl.t;
  property_distincts : (string, float) Hashtbl.t;
  mutable reasoning_store : Rdf.Store.t option;
      (* lazily-built saturated copy backing the [Reformulated] mode:
         Theorem 4.2 guarantees the counts equal the per-atom
         reformulation counts (property-tested), and pattern counting on
         the copy is O(1); the database itself is never written *)
}

let create ?(mode = Plain) store =
  {
    store;
    mode;
    atom_counts = Hashtbl.create 256;
    column_distincts = Hashtbl.create 8;
    property_distincts = Hashtbl.create 64;
    reasoning_store = None;
  }

let mode t = t.mode
let store t = t.store

(* the store counts are gathered on: the saturated copy under
   [Reformulated], the store itself under [Plain] *)
let counting_store t =
  match t.mode with
  | Plain -> t.store
  | Reformulated schema -> (
    match t.reasoning_store with
    | Some s -> s
    | None ->
      let s = Rdf.Entailment.saturated_copy t.store schema in
      t.reasoning_store <- Some s;
      s)

(* Atoms are keyed by their constant pattern only: variable names are
   irrelevant to the count (they are relaxations of one another). *)
let pattern_key (a : Query.Atom.t) =
  let part = function
    | Query.Qterm.Cst c -> Rdf.Term.to_string c
    | Query.Qterm.Var _ -> "?"
  in
  part a.s ^ "\x00" ^ part a.p ^ "\x00" ^ part a.o

(* Rebuild the atom with canonical variable names so that repeated
   variables (t(X,p,X)) do not skew eval-based counts differently from
   pattern counts. *)
let canonical_atom (a : Query.Atom.t) =
  let fresh prefix = Query.Qterm.Var prefix in
  let rebuild pos prefix =
    match Query.Atom.term_at a pos with
    | Query.Qterm.Cst _ as c -> c
    | Query.Qterm.Var _ -> fresh prefix
  in
  Query.Atom.make (rebuild Query.Atom.S "_s") (rebuild Query.Atom.P "_p") (rebuild Query.Atom.O "_o")

let pattern_count store (a : Query.Atom.t) =
  let bound = function
    | Query.Qterm.Cst c -> (
      match Rdf.Store.find_term store c with
      | Some code -> `Ok (Some code)
      | None -> `Absent)
    | Query.Qterm.Var _ -> `Ok None
  in
  match (bound a.s, bound a.p, bound a.o) with
  | `Ok s, `Ok p, `Ok o ->
    float_of_int (Rdf.Store.count_matching store { Rdf.Store.ps = s; pp = p; po = o })
  | _ -> 0.

let atom_count t a =
  let key = pattern_key a in
  match Hashtbl.find_opt t.atom_counts key with
  | Some n -> n
  | None ->
    let n = pattern_count (counting_store t) (canonical_atom a) in
    Hashtbl.add t.atom_counts key n;
    n

let all_var_atom = Query.Atom.make (Query.Qterm.Var "_s") (Query.Qterm.Var "_p") (Query.Qterm.Var "_o")

let total_triples t = atom_count t all_var_atom

let column_name = function `S -> "s" | `P -> "p" | `O -> "o"

let column_distinct t col =
  let key = column_name col in
  match Hashtbl.find_opt t.column_distincts key with
  | Some n -> n
  | None ->
    let n = float_of_int (Rdf.Store.distinct_in_column (counting_store t) col) in
    Hashtbl.add t.column_distincts key n;
    n

let property_distinct t prop col =
  let key = Rdf.Term.to_string prop ^ "\x00" ^ column_name (col :> [ `S | `P | `O ]) in
  match Hashtbl.find_opt t.property_distincts key with
  | Some n -> if n < 0. then None else Some n
  | None ->
    let var = match col with `S -> "_s" | `O -> "_o" in
    let body = [ Query.Atom.make (Query.Qterm.Var "_s") (Query.Qterm.Cst prop) (Query.Qterm.Var "_o") ] in
    let q = Query.Cq.make ~name:"distinct" ~head:[ Query.Qterm.Var var ] ~body in
    let n = float_of_int (Query.Evaluation.count_cq (counting_store t) q) in
    let stored = if n = 0. then -1. else n in
    Hashtbl.add t.property_distincts key stored;
    if stored < 0. then None else Some n

let avg_term_size t col = Rdf.Store.avg_term_size (counting_store t) col

let relaxations (a : Query.Atom.t) =
  let options pos =
    match Query.Atom.term_at a pos with
    | Query.Qterm.Cst _ as c ->
      [ c; Query.Qterm.Var ("_r" ^ Query.Atom.position_name pos) ]
    | Query.Qterm.Var _ as v -> [ v ]
  in
  List.concat_map
    (fun s ->
      List.concat_map
        (fun p -> List.map (fun o -> Query.Atom.make s p o) (options Query.Atom.O))
        (options Query.Atom.P))
    (options Query.Atom.S)

let prewarm t queries =
  List.iter
    (fun q ->
      List.iter
        (fun a -> List.iter (fun r -> ignore (atom_count t r)) (relaxations a))
        q.Query.Cq.body)
    queries

let cache_size t = Hashtbl.length t.atom_counts
