(** Workload-driven statistics over a triple store (§3.3, §4.3).

    The paper gathers, for each query atom and each relaxation of it
    obtained by removing constants, the exact number of matching triples;
    plus per-column distinct-value counts.  Statistics are exposed here as
    a memoized on-demand cache over the store, which yields exactly the
    numbers the offline gathering would (every atom reachable during the
    search is a relaxation of a workload atom).

    The [mode] controls how implicit triples are reflected (§4.3):
    {ul
    {- [Plain] — counts on the store as-is (use on a saturated store for
       the saturation scenario, or when reasoning is ignored);}
    {- [Reformulated schema] — the count of an atom [a] is
       [|Reformulate(a, schema)|] (§4.3): the post-reformulation
       statistics.  Theorem 4.2 makes these equal to pattern counts on
       the saturated database, so the implementation backs them with a
       lazily-built in-memory saturated copy (the database itself is
       never written, preserving the post-reformulation deployment
       story); the equality with explicit per-atom reformulation
       counting is property-tested.}} *)

type mode =
  | Plain
  | Reformulated of Rdf.Schema.t

type t

val create : ?mode:mode -> Rdf.Store.t -> t
(** [create ~mode store] builds a statistics cache over [store];
    [mode] defaults to [Plain]. *)

val mode : t -> mode

val store : t -> Rdf.Store.t

val prewarm : t -> Query.Cq.t list -> unit
(** Eagerly count every atom of every query and all its relaxations —
    the paper's offline gathering step.  Purely an optimization. *)

val atom_count : t -> Query.Atom.t -> float
(** Number of triples matching the atom's constant pattern (reflecting
    implicit triples under [Reformulated]).  Exact. *)

val total_triples : t -> float
(** Size of the dataset (reflecting implicit triples under
    [Reformulated]). *)

val column_distinct : t -> [ `S | `P | `O ] -> float
(** Distinct values in a triple-table column. *)

val property_distinct : t -> Rdf.Term.t -> [ `S | `O ] -> float option
(** [property_distinct t p col] is the number of distinct subjects
    (resp. objects) among triples with property [p]; [None] when [p] does
    not appear as a property. *)

val avg_term_size : t -> [ `S | `P | `O ] -> float
(** Average byte size of column values, for the space-occupancy model. *)

val cache_size : t -> int
(** Number of memoized atom counts (for instrumentation). *)
