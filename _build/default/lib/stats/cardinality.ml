let position_distinct stats (a : Query.Atom.t) pos =
  let count = Statistics.atom_count stats a in
  let raw =
    match Query.Atom.term_at a pos with
    | Query.Qterm.Cst _ -> 1.
    | Query.Qterm.Var _ -> (
      let column = match pos with Query.Atom.S -> `S | Query.Atom.P -> `P | Query.Atom.O -> `O in
      match (a.Query.Atom.p, pos) with
      | Query.Qterm.Cst prop, Query.Atom.S -> (
        match Statistics.property_distinct stats prop `S with
        | Some d -> d
        | None -> 0.)
      | Query.Qterm.Cst prop, Query.Atom.O -> (
        match Statistics.property_distinct stats prop `O with
        | Some d -> d
        | None -> 0.)
      | _, _ -> Statistics.column_distinct stats column)
  in
  Float.max 1. (Float.min raw (Float.max count 1.))

(* occurrences of each variable across the body: (atom, position) list *)
let occurrences (q : Query.Cq.t) =
  let table = Hashtbl.create 16 in
  List.iter
    (fun a ->
      List.iter
        (fun pos ->
          match Query.Atom.term_at a pos with
          | Query.Qterm.Var x ->
            let prev = Option.value (Hashtbl.find_opt table x) ~default:[] in
            Hashtbl.replace table x ((a, pos) :: prev)
          | Query.Qterm.Cst _ -> ())
        Query.Atom.positions)
    q.Query.Cq.body;
  table

let estimate_cq stats (q : Query.Cq.t) =
  let counts = List.map (Statistics.atom_count stats) q.Query.Cq.body in
  if List.exists (fun c -> c = 0.) counts then 0.
  else
    let cross = List.fold_left ( *. ) 1. counts in
    let occs = occurrences q in
    let selectivity =
      Hashtbl.fold
        (fun _var places acc ->
          match places with
          | [] | [ _ ] -> acc
          | _ :: _ :: _ ->
            let distincts =
              List.map (fun (a, pos) -> position_distinct stats a pos) places
            in
            let product = List.fold_left ( *. ) 1. distincts in
            let smallest = List.fold_left Float.min Float.infinity distincts in
            acc *. (smallest /. product))
        occs 1.
    in
    Float.max (cross *. selectivity) 1e-9

let estimate_ucq stats u =
  List.fold_left (fun acc q -> acc +. estimate_cq stats q) 0. (Query.Ucq.disjuncts u)

let var_distinct stats q x =
  let occs = occurrences q in
  match Hashtbl.find_opt occs x with
  | None | Some [] -> 1.
  | Some places ->
    let per_place =
      List.fold_left
        (fun acc (a, pos) -> Float.min acc (position_distinct stats a pos))
        Float.infinity places
    in
    Float.max 1. (Float.min per_place (estimate_cq stats q))
