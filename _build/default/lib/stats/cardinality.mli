(** View cardinality estimation [|v|ε] (§3.3).

    One-atom views use the exact gathered counts.  Multi-atom views assume
    uniform value distribution within each column and independence across
    columns, and combine the exact per-atom counts with join selectivities
    using the textbook System-R formulas: a join variable shared by [k]
    atom positions with distinct-value estimates [d_1..d_k] contributes a
    selectivity of [min(d_i) / prod(d_i)] (which is [1/max(d_1,d_2)] for
    [k = 2]). *)

val position_distinct : Statistics.t -> Query.Atom.t -> Query.Atom.position -> float
(** Estimated number of distinct values at a position of an atom: exact
    per-property distincts when the atom's property is a constant, global
    column distincts otherwise, always capped by the atom's own count. *)

val estimate_cq : Statistics.t -> Query.Cq.t -> float
(** [|v|ε] for a conjunctive view. *)

val estimate_ucq : Statistics.t -> Query.Ucq.t -> float
(** Upper-bound estimate for a UCQ view: sum of disjunct estimates. *)

val var_distinct : Statistics.t -> Query.Cq.t -> string -> float
(** Estimated number of distinct bindings of a variable in the view's
    answers: the minimum distinct estimate over the variable's
    occurrences, capped by the view cardinality. *)
