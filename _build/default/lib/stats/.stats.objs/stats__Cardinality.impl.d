lib/stats/cardinality.ml: Float Hashtbl List Option Query Statistics
