lib/stats/statistics.ml: Hashtbl List Query Rdf
