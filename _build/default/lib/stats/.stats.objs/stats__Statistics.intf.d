lib/stats/statistics.mli: Query Rdf
