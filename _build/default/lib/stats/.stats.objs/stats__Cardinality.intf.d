lib/stats/cardinality.mli: Query Statistics
