lib/workload/barton.mli: Rdf
