lib/workload/generator.ml: Hashtbl List Option Printf Query Random Rdf String
