lib/workload/barton.ml: List Printf Random Rdf
