lib/workload/generator.mli: Query Rdf
