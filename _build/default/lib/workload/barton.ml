let ns = "barton:"

let class_term i = Rdf.Term.Uri (Printf.sprintf "%sClass%d" ns i)
let property_term i = Rdf.Term.Uri (Printf.sprintf "%sprop%d" ns i)
let entity_term i = Rdf.Term.Uri (Printf.sprintf "%sentity%d" ns i)

let n_classes = 39
let n_properties = 61

let classes () = List.init n_classes class_term
let properties () = List.init n_properties property_term

(* 38 subclass + 15 subproperty + 30 domain + 23 range = 106 statements,
   the exact counts reported in §6.5. *)
let schema () =
  let subclass =
    List.init (n_classes - 1) (fun i ->
        let child = i + 1 in
        Rdf.Schema.Subclass (class_term child, class_term ((child - 1) / 2)))
  in
  let subproperty =
    List.init 15 (fun i ->
        let child = 46 + i in
        Rdf.Schema.Subproperty (property_term child, property_term (child mod 5)))
  in
  (* Domains and ranges target a band of mid-tree classes (c5..c12):
     leaf-class membership atoms then reformulate compactly, while atoms
     mentioning a mid-tree class unfold through a small subtree plus its
     domain/range properties — the moderate growth shape of Table 3. *)
  let domain =
    List.init 30 (fun i ->
        Rdf.Schema.Domain (property_term i, class_term (5 + (i mod 8))))
  in
  let range =
    List.init 23 (fun i ->
        Rdf.Schema.Range (property_term i, class_term (5 + (i * 3 mod 8))))
  in
  Rdf.Schema.of_statements (subclass @ subproperty @ domain @ range)

let literal_pool = 40

let store ?(n_entities = 500) ~seed () =
  let rng = Random.State.make [| seed; 4242 |] in
  let store = Rdf.Store.create () in
  let add s p o = ignore (Rdf.Store.add store (Rdf.Triple.make s p o)) in
  for e = 0 to n_entities - 1 do
    let entity = entity_term e in
    (* leaf-heavy class assignment; one entity in five stays untyped *)
    let cls = class_term (19 + Random.State.int rng (n_classes - 19)) in
    if Random.State.float rng 1.0 > 0.2 then
      add entity Rdf.Vocabulary.rdf_type cls;
    (* a handful of property links; sub-properties (46..60) are common so
       that reasoning adds super-property triples *)
    let links = 2 + Random.State.int rng 6 in
    for _ = 1 to links do
      let p =
        if Random.State.float rng 1.0 < 0.5 then
          property_term (46 + Random.State.int rng 15)
        else property_term (Random.State.int rng n_properties)
      in
      let o =
        if Random.State.float rng 1.0 < 0.6 then
          entity_term (Random.State.int rng n_entities)
        else
          Rdf.Term.Literal (Printf.sprintf "value%d" (Random.State.int rng literal_pool))
      in
      add entity p o
    done
  done;
  store

let store_with_schema_triples ?n_entities ~seed () =
  let s = store ?n_entities ~seed () in
  List.iter
    (fun tr -> ignore (Rdf.Store.add s tr))
    (Rdf.Schema.to_triples (schema ()));
  s
