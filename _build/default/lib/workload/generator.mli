(** Workload generators (§6): queries of controllable size, shape and
    commonality.

    Shapes follow the paper's taxonomy: star queries (clique state
    graphs — the hard case), chains (the average case), cycles,
    random-graph queries (sparse and dense variants) and mixed workloads.
    Commonality controls how much structure (properties, constants and
    whole atom groups) queries share, which drives view-fusion
    opportunities.

    Two generators are provided, mirroring the paper's two: {!generate}
    outputs arbitrary workloads with maximum flexibility, and
    {!generate_satisfiable} samples constants from an actual dataset so
    that every query has a non-empty answer. *)

type shape = Star | Chain | Cycle | Random_sparse | Random_dense | Mixed

type commonality = High | Low

type spec = {
  shape : shape;
  n_queries : int;
  atoms_per_query : int;
  commonality : commonality;
  seed : int;
}

val default_spec : spec
(** 5 star queries of 5 atoms, high commonality, seed 0. *)

val shape_name : shape -> string
val shape_of_string : string -> shape option
val commonality_name : commonality -> string

val generate : spec -> Query.Cq.t list
(** Deterministic in [spec.seed].  Queries are named [q1..qn], are
    connected, contain at least one constant, and have no duplicate
    atoms. *)

val generate_satisfiable : Rdf.Store.t -> spec -> Query.Cq.t list
(** Like {!generate} but all properties and constants are sampled from
    the store by random walks, so each query is non-empty on it.  Cycle
    and random shapes degrade to data-backed stars and chains. *)

val generalize :
  Rdf.Schema.t -> float -> int -> Query.Cq.t list -> Query.Cq.t list
(** [generalize schema probability seed queries] lifts, with the given
    probability per query, the constant of one randomly chosen atom:
    property constants to a direct super-property, class constants (in
    [rdf:type] atoms) to a direct super-class.  Used to build workloads
    whose complete answers require reasoning, so that the reformulated
    workload Qr is substantially larger than Q (Table 3). *)
