type shape = Star | Chain | Cycle | Random_sparse | Random_dense | Mixed

type commonality = High | Low

type spec = {
  shape : shape;
  n_queries : int;
  atoms_per_query : int;
  commonality : commonality;
  seed : int;
}

let default_spec =
  { shape = Star; n_queries = 5; atoms_per_query = 5; commonality = High; seed = 0 }

let shape_name = function
  | Star -> "star"
  | Chain -> "chain"
  | Cycle -> "cycle"
  | Random_sparse -> "random-sparse"
  | Random_dense -> "random-dense"
  | Mixed -> "mixed"

let shape_of_string s =
  match String.lowercase_ascii s with
  | "star" -> Some Star
  | "chain" -> Some Chain
  | "cycle" -> Some Cycle
  | "random-sparse" | "sparse" -> Some Random_sparse
  | "random-dense" | "dense" -> Some Random_dense
  | "mixed" -> Some Mixed
  | _ -> None

let commonality_name = function High -> "high" | Low -> "low"

let var x = Query.Qterm.Var x
let cst_uri u = Query.Qterm.Cst (Rdf.Term.Uri u)

(* Pool sizes steer commonality: small pools make queries share
   properties and constants, creating fusion opportunities. *)
let pools spec =
  let total = spec.n_queries * spec.atoms_per_query in
  match spec.commonality with
  | High ->
    let n_props = max 3 (spec.atoms_per_query / 2) in
    let n_csts = max 2 (spec.atoms_per_query / 2) in
    (n_props, n_csts)
  | Low -> (max 8 (total / 2), max 8 (total / 2))

let pick rng pool_size prefix =
  cst_uri (Printf.sprintf "ex:%s%d" prefix (Random.State.int rng pool_size))

(* Star: all atoms share the subject variable; the state graph is a
   clique. *)
let make_star rng spec qi =
  let n_props, n_csts = pools spec in
  let subject = var (Printf.sprintf "X%d_0" qi) in
  let seen = Hashtbl.create 16 in
  let rec atom i attempts =
    let prop = pick rng n_props "p" in
    let obj =
      if Random.State.float rng 1.0 < 0.5 then pick rng n_csts "c"
      else var (Printf.sprintf "X%d_%d" qi (i + 1))
    in
    let a = Query.Atom.make subject prop obj in
    if Hashtbl.mem seen a && attempts < 20 then atom i (attempts + 1)
    else begin
      Hashtbl.replace seen a ();
      a
    end
  in
  let body = List.init spec.atoms_per_query (fun i -> atom i 0) in
  (subject, body)

(* Chain: object of atom i is the subject of atom i+1. *)
let make_chain rng spec qi ~close =
  let n_props, n_csts = pools spec in
  let v i = var (Printf.sprintf "X%d_%d" qi i) in
  let n = spec.atoms_per_query in
  let body =
    List.init n (fun i ->
        let subject = v i in
        let prop = pick rng n_props "p" in
        let obj =
          if close && i = n - 1 then v 0
          else if (not close) && i = n - 1 && Random.State.float rng 1.0 < 0.7
          then pick rng n_csts "c"
          else v (i + 1)
        in
        Query.Atom.make subject prop obj)
  in
  (v 0, body)

(* Random graph: distinct endpoint variables unified along the edges of a
   random connected graph over the atoms. *)
let make_random rng spec qi ~density =
  let n_props, n_csts = pools spec in
  let n = spec.atoms_per_query in
  (* union-find over slot names *)
  let parent = Hashtbl.create 32 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | Some p when p <> x ->
      let root = find p in
      Hashtbl.replace parent x root;
      root
    | _ -> x
  in
  let union a b = Hashtbl.replace parent (find a) (find b) in
  let slot i pos = Printf.sprintf "X%d_%d%s" qi i pos in
  let endpoints i = [ slot i "s"; slot i "o" ] in
  let connect i j =
    let si = List.nth (endpoints i) (Random.State.int rng 2) in
    let sj = List.nth (endpoints j) (Random.State.int rng 2) in
    union si sj
  in
  for i = 1 to n - 1 do
    connect i (Random.State.int rng i)
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Random.State.float rng 1.0 < density then connect i j
    done
  done;
  (* objects left in singleton classes may become constants *)
  let unified = Hashtbl.create 32 in
  for i = 0 to n - 1 do
    List.iter (fun s -> Hashtbl.replace unified (find s) (1 + Option.value (Hashtbl.find_opt unified (find s)) ~default:0)) (endpoints i)
  done;
  let body =
    List.init n (fun i ->
        let subject = var (find (slot i "s")) in
        let prop = pick rng n_props "p" in
        let oroot = find (slot i "o") in
        let obj =
          if
            Option.value (Hashtbl.find_opt unified oroot) ~default:1 <= 1
            && Random.State.float rng 1.0 < 0.5
          then pick rng n_csts "c"
          else var oroot
        in
        Query.Atom.make subject prop obj)
  in
  (var (find (slot 0 "s")), body)

let shape_for spec qi =
  match spec.shape with
  | Mixed -> (
    match qi mod 5 with
    | 0 -> Star
    | 1 -> Chain
    | 2 -> Cycle
    | 3 -> Random_sparse
    | _ -> Random_dense)
  | s -> s

let build_body rng spec qi =
  match shape_for spec qi with
  | Star -> make_star rng spec qi
  | Chain -> make_chain rng spec qi ~close:false
  | Cycle -> make_chain rng spec qi ~close:true
  | Random_sparse -> make_random rng spec qi ~density:0.15
  | Random_dense -> make_random rng spec qi ~density:0.5
  | Mixed -> assert false

let body_vars body =
  List.sort_uniq String.compare (List.concat_map Query.Atom.var_set body)

let ensure_constant rng spec body =
  if List.exists (fun a -> Query.Atom.constant_count a > 0) body then body
  else
    let _, n_csts = pools spec in
    match List.rev body with
    | [] -> body
    | last :: rest ->
      (* replace the object of the last atom, provided its variable
         occurs elsewhere too or the body stays connected *)
      let replaced = Query.Atom.set_at last Query.Atom.O (pick rng n_csts "c") in
      let candidate = List.rev (replaced :: rest) in
      let q = Query.Cq.make ~name:"tmp" ~head:[ List.hd (List.map var (body_vars candidate)) ] ~body:candidate in
      if Query.Cq.is_connected q then candidate else body

let head_of rng anchor body =
  let vars = body_vars body in
  let anchor_name = Option.get (Query.Qterm.var_name anchor) in
  let anchor_name =
    if List.mem anchor_name vars then anchor_name else List.hd vars
  in
  let others = List.filter (fun v -> v <> anchor_name) vars in
  let extra =
    match others with
    | [] -> []
    | _ -> [ List.nth others (Random.State.int rng (List.length others)) ]
  in
  List.map var (anchor_name :: extra)

(* High commonality: some queries re-use the leading atoms of a shared
   template (same constants and shape, query-local variables). *)
let rebase_vars qi atoms =
  let mapping = Hashtbl.create 16 in
  List.map
    (fun a ->
      Query.Atom.subst
        (fun x ->
          let name =
            match Hashtbl.find_opt mapping x with
            | Some n -> n
            | None ->
              let n = Printf.sprintf "X%d_t%d" qi (Hashtbl.length mapping) in
              Hashtbl.add mapping x n;
              n
          in
          Some (Query.Qterm.Var name))
        a)
    atoms

let generate spec =
  let rng = Random.State.make [| spec.seed; 77 |] in
  let template = ref None in
  List.init spec.n_queries (fun qi ->
      let anchor, body = build_body rng spec qi in
      let body =
        match (spec.commonality, !template) with
        | High, Some shared when Random.State.float rng 1.0 < 0.5 ->
          let k = max 1 (spec.atoms_per_query / 2) in
          let prefix = rebase_vars qi (List.filteri (fun i _ -> i < k) shared) in
          (* keep the query connected: bridge the template prefix to the
             rest through the anchor variable *)
          let bridge =
            match (prefix, body) with
            | p0 :: _, _ -> (
              match Query.Atom.var_set p0 with
              | pv :: _ ->
                List.map
                  (fun a ->
                    match Query.Qterm.var_name anchor with
                    | Some ax -> Query.Atom.rename_var ax pv a
                    | None -> a)
                  body
              | [] -> body)
            | [], _ -> body
          in
          let merged = prefix @ List.filteri (fun i _ -> i >= List.length prefix) bridge in
          let q = Query.Cq.make ~name:"tmp" ~head:[List.hd (List.map var (body_vars merged))] ~body:merged in
          if Query.Cq.is_connected q then merged else body
        | _ -> body
      in
      if !template = None then template := Some body;
      let body = ensure_constant rng spec body in
      let anchor =
        let vars = body_vars body in
        match Query.Qterm.var_name anchor with
        | Some a when List.mem a vars -> var a
        | _ -> var (List.hd vars)
      in
      let head = head_of rng anchor body in
      Query.Cq.make ~name:(Printf.sprintf "q%d" (qi + 1)) ~head ~body)

(* ---------- data-backed generation ------------------------------------- *)

let random_element rng = function
  | [] -> None
  | l -> Some (List.nth l (Random.State.int rng (List.length l)))

let star_from_data ?subject rng store spec qi =
  let subjects = Rdf.Store.column_codes store `S in
  let chosen_subject =
    match subject with Some s -> Some s | None -> random_element rng subjects
  in
  match chosen_subject with
  | None -> None
  | Some s ->
    let triples = Rdf.Store.matching store { Rdf.Store.ps = Some s; pp = None; po = None } in
    let n = min spec.atoms_per_query (List.length triples) in
    if n = 0 then None
    else begin
      let chosen = List.filteri (fun i _ -> i < n) triples in
      let subject = var (Printf.sprintf "X%d_0" qi) in
      let body =
        List.mapi
          (fun i (_, p, o) ->
            let prop_term = Rdf.Store.decode_term store p in
            let prop = Query.Qterm.Cst prop_term in
            (* class positions stay bound: a variable there triggers
               reformulation rule 5 over every schema class, which the
               paper's workloads avoid *)
            let keep_constant =
              Rdf.Term.equal prop_term Rdf.Vocabulary.rdf_type
              || Random.State.float rng 1.0 < 0.5
            in
            let obj =
              if keep_constant then Query.Qterm.Cst (Rdf.Store.decode_term store o)
              else var (Printf.sprintf "X%d_%d" qi (i + 1))
            in
            Query.Atom.make subject prop obj)
          chosen
      in
      let body = List.sort_uniq Query.Atom.compare body in
      Some (s, subject, body)
    end

let chain_from_data ?subject rng store spec qi =
  let subjects = Rdf.Store.column_codes store `S in
  let chosen =
    match subject with Some s -> Some s | None -> random_element rng subjects
  in
  match chosen with
  | None -> None
  | Some start ->
    let v i = var (Printf.sprintf "X%d_%d" qi i) in
    let rec walk node i acc =
      if i >= spec.atoms_per_query then List.rev acc
      else
        let triples =
          Rdf.Store.matching store { Rdf.Store.ps = Some node; pp = None; po = None }
        in
        match random_element rng triples with
        | None -> List.rev acc
        | Some (_, p, o) ->
          let prop_term = Rdf.Store.decode_term store p in
          let prop = Query.Qterm.Cst prop_term in
          let last = i = spec.atoms_per_query - 1 in
          if Rdf.Term.equal prop_term Rdf.Vocabulary.rdf_type then
            (* end the walk on a bound class: class variables trigger
               rule 5 over the whole schema *)
            List.rev
              (Query.Atom.make (v i) prop
                 (Query.Qterm.Cst (Rdf.Store.decode_term store o))
              :: acc)
          else
            let obj =
              if last && Random.State.float rng 1.0 < 0.5 then
                Query.Qterm.Cst (Rdf.Store.decode_term store o)
              else v (i + 1)
            in
            walk o (i + 1) (Query.Atom.make (v i) prop obj :: acc)
    in
    let body = walk start 0 [] in
    if body = [] then None else Some (start, v 0, body)

let generate_satisfiable store spec =
  let rng = Random.State.make [| spec.seed; 771 |] in
  (* commonality: under [High], queries preferentially re-sample around a
     subject already used by an earlier query, so that workloads share
     atom patterns and the search has factorization opportunities *)
  let anchors = ref [] in
  let rec attempt qi tries =
    let use_star =
      match shape_for spec qi with
      | Star | Random_dense -> true
      | Chain | Cycle | Random_sparse -> false
      | Mixed -> assert false
    in
    let subject =
      match spec.commonality with
      | High when !anchors <> [] && Random.State.float rng 1.0 < 0.6 ->
        random_element rng !anchors
      | High | Low -> None
    in
    let built =
      if use_star then star_from_data ?subject rng store spec qi
      else chain_from_data ?subject rng store spec qi
    in
    match built with
    | Some (anchor_code, anchor, body) when List.length body >= 1 ->
      anchors := anchor_code :: !anchors;
      let head = head_of rng anchor body in
      Query.Cq.make ~name:(Printf.sprintf "q%d" (qi + 1)) ~head ~body
    | _ when tries < 50 -> attempt qi (tries + 1)
    | _ -> failwith "generate_satisfiable: store too small"
  in
  List.init spec.n_queries (fun qi -> attempt qi 0)

(* Replace constants by direct super-properties / super-classes so that
   answering w.r.t. the schema requires reasoning (the reformulated
   workload Qr grows, Table 3-style).  At most one atom per query is
   lifted: reformulation sizes are multiplicative in the number of
   reformulable atoms, and a single lifted atom already yields the
   Table 3 growth shape.  Satisfiability is preserved modulo entailment:
   the generalized query's answers on the saturated store contain the
   original ones. *)
let generalize schema probability seed queries =
  let rng = Random.State.make [| seed; 90210 |] in
  let generalize_atom (a : Query.Atom.t) =
    let lift_property term =
      match term with
      | Query.Qterm.Cst p when not (Rdf.Term.equal p Rdf.Vocabulary.rdf_type) -> (
        match Rdf.Schema.direct_superproperties schema p with
        | [] -> term
        | supers ->
          Query.Qterm.Cst
            (List.nth supers (Random.State.int rng (List.length supers))))
      | Query.Qterm.Cst _ | Query.Qterm.Var _ -> term
    in
    let lift_class term =
      match term with
      | Query.Qterm.Cst cls -> (
        match Rdf.Schema.direct_superclasses schema cls with
        | [] -> term
        | supers ->
          Query.Qterm.Cst
            (List.nth supers (Random.State.int rng (List.length supers))))
      | Query.Qterm.Var _ -> term
    in
    if Query.Qterm.equal a.Query.Atom.p (Query.Qterm.Cst Rdf.Vocabulary.rdf_type)
    then { a with Query.Atom.o = lift_class a.Query.Atom.o }
    else { a with Query.Atom.p = lift_property a.Query.Atom.p }
  in
  List.map
    (fun (q : Query.Cq.t) ->
      if Random.State.float rng 1.0 >= probability then q
      else
        let target = Random.State.int rng (Query.Cq.atom_count q) in
        (* lift one or two levels: two-level lifts reach mid-tree classes
           whose unfoldings dominate the Qr growth *)
        let lift a =
          let once = generalize_atom a in
          if Random.State.float rng 1.0 < 0.5 then generalize_atom once else once
        in
        Query.Cq.make ~name:q.Query.Cq.name ~head:q.Query.Cq.head
          ~body:
            (List.mapi
               (fun i a -> if i = target then lift a else a)
               q.Query.Cq.body))
    queries
