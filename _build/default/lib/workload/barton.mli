(** A synthetic stand-in for the Barton library dataset and its RDFS
    (§6, [24]).

    The real Barton dump (≈35M distinct triples, MIT Simile) is not
    redistributable here; this module generates a dataset with the same
    schema shape — exactly 39 classes, 61 properties and 106 RDFS
    statements, the counts reported in §6.5 — and a scale-controllable
    instance whose entities are typed, linked and annotated through the
    schema's domains, ranges and sub-hierarchies, so that saturation and
    reformulation have real work to do. *)

val schema : unit -> Rdf.Schema.t
(** The fixed synthetic schema: 39 classes, 61 properties, 106
    statements (asserted in tests). *)

val classes : unit -> Rdf.Term.t list
val properties : unit -> Rdf.Term.t list

val store : ?n_entities:int -> seed:int -> unit -> Rdf.Store.t
(** Generate an instance; [n_entities] defaults to 500 (≈ 3500 triples).
    Deterministic in [seed].  Some entities are deliberately left
    untyped (their type is only implied by domain/range constraints) and
    many links use sub-properties, so the saturated store is strictly
    larger than the original. *)

val store_with_schema_triples : ?n_entities:int -> seed:int -> unit -> Rdf.Store.t
(** Like {!store} but with the 106 schema statements also stored as
    triples (the usual Barton layout). *)
