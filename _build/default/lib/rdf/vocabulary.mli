(** The RDF and RDFS vocabulary URIs given special meaning by the W3C
    recommendation, as used throughout the paper (Table 1, Fig. 2). *)

val rdf_type : Term.t
(** [rdf:type] — class membership of a resource. *)

val rdfs_subclassof : Term.t
(** [rdfs:subClassOf] — class inclusion. *)

val rdfs_subpropertyof : Term.t
(** [rdfs:subPropertyOf] — property inclusion. *)

val rdfs_domain : Term.t
(** [rdfs:domain] — domain typing of a property. *)

val rdfs_range : Term.t
(** [rdfs:range] — range typing of a property. *)

val rdfs_class : Term.t
(** [rdfs:Class] — the class of all classes. *)

val rdf_property : Term.t
(** [rdf:Property] — the class of all properties. *)

val is_schema_property : Term.t -> bool
(** True on the four RDFS schema properties of Table 1. *)
