lib/rdf/store.mli: Dictionary Term Triple
