lib/rdf/incremental.mli: Schema Store Triple
