lib/rdf/term.mli: Format
