lib/rdf/vocabulary.ml: Term
