lib/rdf/vocabulary.mli: Term
