lib/rdf/entailment.ml: List Queue Schema Store Vocabulary
