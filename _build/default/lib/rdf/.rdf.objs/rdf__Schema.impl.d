lib/rdf/schema.ml: Format List Map Option Set Term Triple Vocabulary
