lib/rdf/store.ml: Dictionary Hashtbl List Term Triple
