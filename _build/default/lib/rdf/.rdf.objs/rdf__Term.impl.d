lib/rdf/term.ml: Format Hashtbl Int String
