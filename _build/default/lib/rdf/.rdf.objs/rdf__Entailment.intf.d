lib/rdf/entailment.mli: Schema Store
