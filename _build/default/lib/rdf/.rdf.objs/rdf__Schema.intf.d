lib/rdf/schema.mli: Format Term Triple
