lib/rdf/dictionary.ml: Array Hashtbl Term
