lib/rdf/triple.ml: Format Hashtbl Printf Term
