lib/rdf/incremental.ml: Entailment Hashtbl List Queue Schema Store Triple Vocabulary
