(** Incremental maintenance of a saturated database (§4.2).

    The paper notes that maintaining a saturated database under updates
    "may be complex and costly" because saturation is an inflationary
    fixpoint: deleting an explicit triple must retract exactly those
    implicit triples whose every derivation used it.  This module
    implements the classical delete-and-rederive (DRed) scheme over the
    RDFS instance-level rules, so that the saturation scenario of the
    selector stays usable under updates:

    - insertion: semi-naive propagation from the new triple only;
    - deletion: over-delete everything reachable from the deleted triple
      through rule applications, then re-derive what is still supported.

    The structure distinguishes the explicit triples (the database) from
    the derived ones, which plain saturation does not track. *)

type t

val create : Schema.t -> Store.t -> t
(** [create schema store] wraps and saturates [store] in place.  The
    store must not be modified except through this module afterwards. *)

val store : t -> Store.t
(** The underlying saturated store (explicit + implicit triples). *)

val schema : t -> Schema.t

val explicit_count : t -> int
val implicit_count : t -> int

val is_explicit : t -> Triple.t -> bool

val insert : t -> Triple.t -> int
(** Insert an explicit triple and propagate; returns the number of
    triples (explicit + implicit) actually added. *)

val delete : t -> Triple.t -> int
(** Delete an explicit triple (a no-op when absent or merely implicit);
    retracts the implicit triples that lose all derivations.  Returns
    the number of triples removed. *)
