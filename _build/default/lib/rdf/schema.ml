type statement =
  | Subclass of Term.t * Term.t
  | Subproperty of Term.t * Term.t
  | Domain of Term.t * Term.t
  | Range of Term.t * Term.t

module TermMap = Map.Make (Term)
module TermSet = Set.Make (Term)

(* Each relation is kept in both directions for O(log n) lookups from
   either side (reformulation needs the "sub" side, saturation the
   "super" side). *)
type t = {
  stmts : statement list;
  sub_of : TermSet.t TermMap.t;        (* c2 -> {c1 | c1 subClassOf c2} *)
  super_of : TermSet.t TermMap.t;      (* c1 -> {c2 | c1 subClassOf c2} *)
  subp_of : TermSet.t TermMap.t;
  superp_of : TermSet.t TermMap.t;
  dom_of : TermSet.t TermMap.t;        (* p -> {c | p domain c} *)
  dom_props : TermSet.t TermMap.t;     (* c -> {p | p domain c} *)
  rng_of : TermSet.t TermMap.t;
  rng_props : TermSet.t TermMap.t;
}

let empty =
  {
    stmts = [];
    sub_of = TermMap.empty;
    super_of = TermMap.empty;
    subp_of = TermMap.empty;
    superp_of = TermMap.empty;
    dom_of = TermMap.empty;
    dom_props = TermMap.empty;
    rng_of = TermMap.empty;
    rng_props = TermMap.empty;
  }

let map_add key value map =
  let existing = Option.value (TermMap.find_opt key map) ~default:TermSet.empty in
  TermMap.add key (TermSet.add value existing) map

let mem_statement t stmt = List.mem stmt t.stmts

let add t stmt =
  if mem_statement t stmt then t
  else
    let t = { t with stmts = stmt :: t.stmts } in
    match stmt with
    | Subclass (c1, c2) ->
      { t with sub_of = map_add c2 c1 t.sub_of; super_of = map_add c1 c2 t.super_of }
    | Subproperty (p1, p2) ->
      { t with
        subp_of = map_add p2 p1 t.subp_of;
        superp_of = map_add p1 p2 t.superp_of }
    | Domain (p, c) ->
      { t with dom_of = map_add p c t.dom_of; dom_props = map_add c p t.dom_props }
    | Range (p, c) ->
      { t with rng_of = map_add p c t.rng_of; rng_props = map_add c p t.rng_props }

let of_statements stmts = List.fold_left add empty stmts

let statements t = List.rev t.stmts

let size t = List.length t.stmts

let classes t =
  let collect acc = function
    | Subclass (c1, c2) -> TermSet.add c1 (TermSet.add c2 acc)
    | Domain (_, c) | Range (_, c) -> TermSet.add c acc
    | Subproperty _ -> acc
  in
  TermSet.elements (List.fold_left collect TermSet.empty t.stmts)

let properties t =
  let collect acc = function
    | Subproperty (p1, p2) -> TermSet.add p1 (TermSet.add p2 acc)
    | Domain (p, _) | Range (p, _) -> TermSet.add p acc
    | Subclass _ -> acc
  in
  TermSet.elements (List.fold_left collect TermSet.empty t.stmts)

let lookup map key =
  match TermMap.find_opt key map with
  | Some set -> TermSet.elements set
  | None -> []

let direct_subclasses t c = lookup t.sub_of c
let direct_superclasses t c = lookup t.super_of c
let direct_subproperties t p = lookup t.subp_of p
let direct_superproperties t p = lookup t.superp_of p
let domains_of t p = lookup t.dom_of p
let ranges_of t p = lookup t.rng_of p
let properties_with_domain t c = lookup t.dom_props c
let properties_with_range t c = lookup t.rng_props c

(* Strict transitive closure by breadth-first traversal; cycles in the
   inclusion graph are tolerated (the start node may appear in its own
   closure if it lies on a cycle). *)
let closure step start =
  let rec loop seen = function
    | [] -> seen
    | x :: rest ->
      let next = List.filter (fun y -> not (TermSet.mem y seen)) (step x) in
      loop (List.fold_left (fun acc y -> TermSet.add y acc) seen next) (next @ rest)
  in
  TermSet.elements (loop TermSet.empty [ start ])

let superclasses_closure t c = closure (direct_superclasses t) c
let subclasses_closure t c = closure (direct_subclasses t) c
let superproperties_closure t p = closure (direct_superproperties t) p
let subproperties_closure t p = closure (direct_subproperties t) p

let to_triples t =
  let triple_of = function
    | Subclass (c1, c2) -> Triple.make c1 Vocabulary.rdfs_subclassof c2
    | Subproperty (p1, p2) -> Triple.make p1 Vocabulary.rdfs_subpropertyof p2
    | Domain (p, c) -> Triple.make p Vocabulary.rdfs_domain c
    | Range (p, c) -> Triple.make p Vocabulary.rdfs_range c
  in
  List.map triple_of (statements t)

let of_triples triples =
  let stmt_of (tr : Triple.t) =
    if Term.equal tr.p Vocabulary.rdfs_subclassof then Some (Subclass (tr.s, tr.o))
    else if Term.equal tr.p Vocabulary.rdfs_subpropertyof then
      Some (Subproperty (tr.s, tr.o))
    else if Term.equal tr.p Vocabulary.rdfs_domain then Some (Domain (tr.s, tr.o))
    else if Term.equal tr.p Vocabulary.rdfs_range then Some (Range (tr.s, tr.o))
    else None
  in
  of_statements (List.filter_map stmt_of triples)

let pp fmt t =
  let pp_stmt fmt = function
    | Subclass (a, b) -> Format.fprintf fmt "%a ⊑ %a" Term.pp a Term.pp b
    | Subproperty (a, b) -> Format.fprintf fmt "%a ⊑p %a" Term.pp a Term.pp b
    | Domain (p, c) -> Format.fprintf fmt "domain(%a) = %a" Term.pp p Term.pp c
    | Range (p, c) -> Format.fprintf fmt "range(%a) = %a" Term.pp p Term.pp c
  in
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list pp_stmt)
    (statements t)
