(** RDFS entailment: database saturation (§4.2).

    Saturation adds to a database all the implicit triples entailed by the
    RDFS rules of Table 1: propagation of class and property inclusions,
    and domain/range typing.  This is the inflationary fixpoint the paper
    contrasts with query reformulation; Theorem 4.2 relates the two and is
    exercised by the property tests. *)

val saturate : Store.t -> Schema.t -> int
(** Saturate the store in place w.r.t. the schema's instance-level rules:
    {ul
    {- [(x, rdf:type, c1)] and [c1 ⊑ c2] entail [(x, rdf:type, c2)];}
    {- [(x, p1, y)] and [p1 ⊑p p2] entail [(x, p2, y)];}
    {- [(x, p, y)] and [domain(p) = c] entail [(x, rdf:type, c)];}
    {- [(x, p, y)] and [range(p) = c] entail [(y, rdf:type, c)].}}
    Returns the number of implicit triples added.  The computation is
    semi-naive: each rule fires only on newly derived triples. *)

val saturated_copy : Store.t -> Schema.t -> Store.t
(** Like {!saturate} but on a copy, leaving the original untouched. *)

val entailed_bound : data_size:int -> schema_size:int -> int
(** The [O(|D| * |S|)] bound on the number of implicit triples stated in
    §6.5, used as a sanity check in tests. *)
