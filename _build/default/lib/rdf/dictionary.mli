(** Dictionary encoding of RDF terms.

    As in the paper's data layout (§6), every distinct URI, blank node or
    literal is assigned a distinct integer code; the triple table and all
    indexes operate on codes.  The dictionary is append-only: codes are
    never reused. *)

type t

val create : unit -> t

val encode : t -> Term.t -> int
(** [encode d term] returns the code of [term], assigning a fresh one on
    first encounter. *)

val find : t -> Term.t -> int option
(** Like {!encode} but without assigning: [None] when unseen. *)

val decode : t -> int -> Term.t
(** Inverse of {!encode}.  Raises [Not_found] on unknown codes. *)

val size : t -> int
(** Number of distinct encoded terms. *)

val fold : (Term.t -> int -> 'a -> 'a) -> t -> 'a -> 'a
