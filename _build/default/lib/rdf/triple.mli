(** RDF triples [(s, p, o)] over {!Term}. *)

type t = { s : Term.t; p : Term.t; o : Term.t }

val make : Term.t -> Term.t -> Term.t -> t
(** [make s p o] builds the triple; raises [Invalid_argument] when the
    triple is not well-formed (see {!well_formed}). *)

val well_formed : t -> bool
(** Per the RDF specification: the subject is a URI or blank node, the
    property is a URI, the object is any term. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit
