(** RDF Schemas: the four semantic relationships of Table 1.

    An RDFS specifies class inclusions, property inclusions and
    domain/range typing of properties.  Classes and properties are URIs. *)

type statement =
  | Subclass of Term.t * Term.t     (** [(c1, rdfs:subClassOf, c2)] *)
  | Subproperty of Term.t * Term.t  (** [(p1, rdfs:subPropertyOf, p2)] *)
  | Domain of Term.t * Term.t       (** [(p, rdfs:domain, c)] *)
  | Range of Term.t * Term.t        (** [(p, rdfs:range, c)] *)

type t

val empty : t

val add : t -> statement -> t
(** Functional update; duplicate statements are ignored. *)

val of_statements : statement list -> t

val statements : t -> statement list

val size : t -> int
(** Number of statements, the [|S|] of Theorem 4.1. *)

val classes : t -> Term.t list
(** All classes mentioned by the schema (in inclusions or typings). *)

val properties : t -> Term.t list
(** All properties mentioned by the schema. *)

val direct_subclasses : t -> Term.t -> Term.t list
(** [direct_subclasses s c2] returns all [c1] with [c1 rdfs:subClassOf c2]. *)

val direct_superclasses : t -> Term.t -> Term.t list

val direct_subproperties : t -> Term.t -> Term.t list
(** [direct_subproperties s p2] returns all [p1] with
    [p1 rdfs:subPropertyOf p2]. *)

val direct_superproperties : t -> Term.t -> Term.t list

val domains_of : t -> Term.t -> Term.t list
(** Classes [c] with [(p, rdfs:domain, c)]. *)

val ranges_of : t -> Term.t -> Term.t list

val properties_with_domain : t -> Term.t -> Term.t list
(** Properties [p] with [(p, rdfs:domain, c)] for the given class [c]. *)

val properties_with_range : t -> Term.t -> Term.t list

val superclasses_closure : t -> Term.t -> Term.t list
(** Strict transitive closure of class inclusion (the class itself is not
    included). *)

val subclasses_closure : t -> Term.t -> Term.t list

val superproperties_closure : t -> Term.t -> Term.t list

val subproperties_closure : t -> Term.t -> Term.t list

val to_triples : t -> Triple.t list
(** The schema rendered as RDF triples with the RDFS vocabulary. *)

val of_triples : Triple.t list -> t
(** Extract the schema statements found among the given triples; triples
    that are not RDFS statements are ignored. *)

val pp : Format.formatter -> t -> unit
