let rdf_ns = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
let rdfs_ns = "http://www.w3.org/2000/01/rdf-schema#"

let rdf_type = Term.Uri (rdf_ns ^ "type")
let rdfs_subclassof = Term.Uri (rdfs_ns ^ "subClassOf")
let rdfs_subpropertyof = Term.Uri (rdfs_ns ^ "subPropertyOf")
let rdfs_domain = Term.Uri (rdfs_ns ^ "domain")
let rdfs_range = Term.Uri (rdfs_ns ^ "range")
let rdfs_class = Term.Uri (rdfs_ns ^ "Class")
let rdf_property = Term.Uri (rdf_ns ^ "Property")

let is_schema_property t =
  Term.equal t rdfs_subclassof
  || Term.equal t rdfs_subpropertyof
  || Term.equal t rdfs_domain
  || Term.equal t rdfs_range
