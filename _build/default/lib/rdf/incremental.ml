type t = {
  schema : Schema.t;
  store : Store.t;
  explicit : (Store.encoded, unit) Hashtbl.t;
}

(* The four instance-level RDFS rules all have a single premise, which
   makes delete-and-rederive particularly simple: a triple is derivable
   iff some single premise currently in the store yields it. *)

let consequences t (s, p, o) =
  let rdf_type = Store.encode_term t.store Vocabulary.rdf_type in
  let decode = Store.decode_term t.store in
  let encode = Store.encode_term t.store in
  if p = rdf_type then
    List.map
      (fun c2 -> (s, rdf_type, encode c2))
      (Schema.direct_superclasses t.schema (decode o))
  else begin
    let prop = decode p in
    List.map (fun p2 -> (s, encode p2, o)) (Schema.direct_superproperties t.schema prop)
    @ List.map (fun c -> (s, rdf_type, encode c)) (Schema.domains_of t.schema prop)
    @ List.map (fun c -> (o, rdf_type, encode c)) (Schema.ranges_of t.schema prop)
  end

(* Is the triple derivable in one step from some premise in the store? *)
let derivable t (s, p, o) =
  let rdf_type = Store.encode_term t.store Vocabulary.rdf_type in
  let decode = Store.decode_term t.store in
  let find term = Store.find_term t.store term in
  let mem_encoded triple = Store.mem_encoded t.store triple in
  if p = rdf_type then begin
    let target_class = decode o in
    List.exists
      (fun c1 ->
        match find c1 with
        | Some code -> mem_encoded (s, rdf_type, code)
        | None -> false)
      (Schema.direct_subclasses t.schema target_class)
    || List.exists
         (fun prop ->
           match find prop with
           | Some code ->
             Store.count_matching t.store
               { Store.ps = Some s; pp = Some code; po = None }
             > 0
           | None -> false)
         (Schema.properties_with_domain t.schema target_class)
    || List.exists
         (fun prop ->
           match find prop with
           | Some code ->
             Store.count_matching t.store
               { Store.ps = None; pp = Some code; po = Some s }
             > 0
           | None -> false)
         (Schema.properties_with_range t.schema target_class)
  end
  else
    List.exists
      (fun p1 ->
        match find p1 with
        | Some code -> mem_encoded (s, code, o)
        | None -> false)
      (Schema.direct_subproperties t.schema (decode p))

let propagate t seeds =
  let added = ref 0 in
  let queue = Queue.create () in
  List.iter (fun triple -> Queue.add triple queue) seeds;
  while not (Queue.is_empty queue) do
    let triple = Queue.pop queue in
    List.iter
      (fun candidate ->
        if Store.add_encoded t.store candidate then begin
          incr added;
          Queue.add candidate queue
        end)
      (consequences t triple)
  done;
  !added

let create schema store =
  let t = { schema; store; explicit = Hashtbl.create (Store.size store) } in
  Store.fold_all store (fun triple () -> Hashtbl.replace t.explicit triple ()) ();
  let _ = Entailment.saturate store schema in
  t

let store t = t.store
let schema t = t.schema

let explicit_count t = Hashtbl.length t.explicit

let implicit_count t = Store.size t.store - explicit_count t

let encode_triple t (tr : Triple.t) =
  ( Store.encode_term t.store tr.Triple.s,
    Store.encode_term t.store tr.Triple.p,
    Store.encode_term t.store tr.Triple.o )

let is_explicit t tr = Hashtbl.mem t.explicit (encode_triple t tr)

let insert t tr =
  let triple = encode_triple t tr in
  if Hashtbl.mem t.explicit triple then 0
  else begin
    Hashtbl.replace t.explicit triple ();
    if Store.mem_encoded t.store triple then
      (* was implicit: now also explicit; nothing new derivable *)
      0
    else begin
      ignore (Store.add_encoded t.store triple);
      1 + propagate t [ triple ]
    end
  end

let delete t tr =
  let triple = encode_triple t tr in
  if not (Hashtbl.mem t.explicit triple) then 0
  else begin
    Hashtbl.remove t.explicit triple;
    (* Always over-delete then re-derive: a short-circuit "is it still
       derivable?" test would be unsound for self-supporting cycles
       (c1 ⊑ c2 ⊑ c1), where a triple derives itself transitively.
       Over-deletion followed by grounded re-derivation handles them. *)
    begin
      (* over-delete: remove the triple and everything transitively
         derived from it (unless explicit) *)
      let overdeleted = ref [] in
      let queue = Queue.create () in
      ignore (Store.remove_encoded t.store triple);
      Queue.add triple queue;
      let removed = ref 1 in
      while not (Queue.is_empty queue) do
        let current = Queue.pop queue in
        overdeleted := current :: !overdeleted;
        List.iter
          (fun candidate ->
            if
              Store.mem_encoded t.store candidate
              && not (Hashtbl.mem t.explicit candidate)
            then begin
              ignore (Store.remove_encoded t.store candidate);
              incr removed;
              Queue.add candidate queue
            end)
          (consequences t current)
      done;
      (* re-derive: over-deleted triples still supported by a surviving
         premise come back (and propagate) *)
      let rederived = ref true in
      while !rederived do
        rederived := false;
        List.iter
          (fun candidate ->
            if (not (Store.mem_encoded t.store candidate)) && derivable t candidate
            then begin
              ignore (Store.add_encoded t.store candidate);
              decr removed;
              rederived := true
            end)
          !overdeleted
      done;
      (* triples revived above may support further consequences *)
      let back =
        List.filter (fun c -> Store.mem_encoded t.store c) !overdeleted
      in
      let re_added = propagate t back in
      !removed - re_added
    end
  end
