let saturate store schema =
  let rdf_type = Store.encode_term store Vocabulary.rdf_type in
  let decode = Store.decode_term store in
  let encode = Store.encode_term store in
  let added = ref 0 in
  (* Consequences of a single (possibly new) triple under the four
     instance-level rules, using direct schema statements; the worklist
     fixpoint takes care of transitivity. *)
  let consequences (s, p, o) =
    if p = rdf_type then
      let c1 = decode o in
      List.map
        (fun c2 -> (s, rdf_type, encode c2))
        (Schema.direct_superclasses schema c1)
    else begin
      let prop = decode p in
      let by_subprop =
        List.map (fun p2 -> (s, encode p2, o)) (Schema.direct_superproperties schema prop)
      in
      let by_domain =
        List.map (fun c -> (s, rdf_type, encode c)) (Schema.domains_of schema prop)
      in
      let by_range =
        List.map (fun c -> (o, rdf_type, encode c)) (Schema.ranges_of schema prop)
      in
      by_subprop @ by_domain @ by_range
    end
  in
  let queue = Queue.create () in
  Store.fold_all store (fun triple () -> Queue.add triple queue) ();
  while not (Queue.is_empty queue) do
    let triple = Queue.pop queue in
    let push candidate =
      if Store.add_encoded store candidate then begin
        incr added;
        Queue.add candidate queue
      end
    in
    List.iter push (consequences triple)
  done;
  !added

let saturated_copy store schema =
  let fresh = Store.copy store in
  let _ = saturate fresh schema in
  fresh

let entailed_bound ~data_size ~schema_size = data_size * schema_size
