(** View materialization (§6.6): evaluate view definitions against the
    store and produce named relations ready for the executor. *)

type env = (string, Relation.t) Hashtbl.t

val materialize_cq : Rdf.Store.t -> Query.Cq.t -> Relation.t
(** Materialize a conjunctive view; columns are the head variable
    names. *)

val materialize_ucq : Rdf.Store.t -> Query.Ucq.t -> Relation.t
(** Materialize a UCQ view (a reformulated view, §4.3): the set union of
    its disjuncts, under the name and columns of the first disjunct. *)

val materialize_views : Rdf.Store.t -> Query.Ucq.t list -> env
(** Materialize a recommended view set (the [recommended] field of
    {!Core.Selector.result}). *)

val materialize_state : Rdf.Store.t -> Core.State.t -> env
(** Materialize every view of a state directly (no reformulation). *)

val total_size_bytes : Rdf.Store.t -> env -> int
val total_cardinality : env -> int
