lib/engine/maintenance.ml: Array Hashtbl List Map Query Rdf Relation String
