lib/engine/materialize.ml: Core Hashtbl List Printf Query Relation
