lib/engine/materialize.mli: Core Hashtbl Query Rdf Relation
