lib/engine/maintenance.mli: Query Rdf Relation
