lib/engine/executor.mli: Core Materialize Rdf Relation
