lib/engine/executor.ml: Array Core Hashtbl List Rdf Relation String
