lib/engine/relation.ml: Array Hashtbl List Rdf String
