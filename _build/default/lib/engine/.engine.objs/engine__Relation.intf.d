lib/engine/relation.mli: Hashtbl Rdf
