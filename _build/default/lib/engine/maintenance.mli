(** Incremental view maintenance under triple insertions and deletions —
    the operations whose cost the VMC component of §3.3 models.

    Insertion uses the standard delta rule: for each atom of the view
    unifiable with the new triple, the remainder of the body is evaluated
    against the updated store; the union of the deltas is added to the
    materialized relation.  Deletion computes the candidate tuples that
    used the removed triple and re-derives each against the shrunken
    store, removing those no longer derivable. *)

val insert_triple :
  Rdf.Store.t -> (Query.Cq.t * Relation.t) list -> Rdf.Triple.t -> int
(** Add the triple to the store and propagate to every view; returns the
    total number of tuples added across views.  A triple already present
    changes nothing. *)

val delete_triple :
  Rdf.Store.t -> (Query.Cq.t * Relation.t) list -> Rdf.Triple.t -> int
(** Remove the triple from the store and propagate; returns the total
    number of tuples removed. *)

val delta_insert : Rdf.Store.t -> Query.Cq.t -> Rdf.Store.encoded -> int array list
(** The tuples the view gains when the (already inserted) triple arrives;
    exposed for testing. *)
