(** Materialized relations: named, column-labeled sets of
    dictionary-encoded tuples — the physical representation of a
    materialized view. *)

type t = private {
  name : string;
  cols : string list;
  mutable rows : int array list;
  index : (int list, unit) Hashtbl.t;  (** membership index (set semantics) *)
}

val make : name:string -> cols:string list -> int array list -> t
(** Builds a relation, deduplicating rows (set semantics). *)

val arity : t -> int
val cardinality : t -> int

val mem : t -> int array -> bool

val add_row : t -> int array -> bool
(** Insert a tuple; [false] when already present. *)

val remove_row : t -> int array -> bool

val project_indices : t -> string list -> int list
(** Column indices of the given column names.  Raises [Failure] on an
    unknown column. *)

val size_bytes : Rdf.Store.t -> t -> int
(** Actual storage footprint: the summed byte sizes of the decoded terms
    of every tuple. *)

val to_term_rows : Rdf.Store.t -> t -> Rdf.Term.t array list
