(** Execution of view-based rewritings over materialized relations
    (§6.6): the runtime counterpart of {!Core.Rewriting}.

    Selections filter, projections deduplicate, joins are hash joins,
    unions deduplicate.  Constants in selection conditions are resolved
    through the store's dictionary. *)

val execute :
  Rdf.Store.t -> Materialize.env -> Core.Rewriting.t -> Relation.t
(** Evaluate the rewriting; raises [Failure] on an unknown view symbol or
    column. *)

val execute_query :
  Rdf.Store.t -> Materialize.env -> Core.Rewriting.t -> Rdf.Term.t array list
(** Like {!execute} but returning decoded tuples, for comparison against
    {!Query.Evaluation.eval_cq}. *)
