type t = {
  name : string;
  cols : string list;
  mutable rows : int array list;
  index : (int list, unit) Hashtbl.t;  (* set-semantics membership *)
}

let make ~name ~cols rows =
  let index = Hashtbl.create (max 64 (List.length rows)) in
  let deduped =
    List.filter
      (fun row ->
        let key = Array.to_list row in
        if Hashtbl.mem index key then false
        else begin
          Hashtbl.add index key ();
          true
        end)
      rows
  in
  { name; cols; rows = deduped; index }

let arity t = List.length t.cols
let cardinality t = List.length t.rows

let mem t row = Hashtbl.mem t.index (Array.to_list row)

let add_row t row =
  let key = Array.to_list row in
  if Hashtbl.mem t.index key then false
  else begin
    Hashtbl.add t.index key ();
    t.rows <- row :: t.rows;
    true
  end

let remove_row t row =
  let key = Array.to_list row in
  if not (Hashtbl.mem t.index key) then false
  else begin
    Hashtbl.remove t.index key;
    t.rows <- List.filter (fun r -> r <> row) t.rows;
    true
  end

let project_indices t cols =
  List.map
    (fun c ->
      let rec find i = function
        | [] -> failwith ("Relation.project_indices: unknown column " ^ c)
        | c' :: rest -> if String.equal c c' then i else find (i + 1) rest
      in
      find 0 t.cols)
    cols

let size_bytes store t =
  List.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc code -> acc + Rdf.Term.size (Rdf.Store.decode_term store code))
        acc row)
    0 t.rows

let to_term_rows store t =
  List.map (Array.map (Rdf.Store.decode_term store)) t.rows
