type config = {
  triple_table : string;
  materialized : bool;
}

let default_config = { triple_table = "triples"; materialized = true }

let quote_ident name = "\"" ^ name ^ "\""

let escape_string s =
  String.concat "''" (String.split_on_char '\'' s)

let constant_literal term = "'" ^ escape_string (Rdf.Term.to_string term) ^ "'"

let column_name = function
  | Query.Atom.S -> "s"
  | Query.Atom.P -> "p"
  | Query.Atom.O -> "o"

(* SELECT body of a conjunctive query over the triple table: one table
   alias per atom, constants as equality predicates, repeated variables
   as join predicates. *)
let cq_select ?(config = default_config) (q : Query.Cq.t) =
  let atoms = Array.of_list q.Query.Cq.body in
  let alias i = Printf.sprintf "t%d" i in
  let first_occurrence = Hashtbl.create 16 in
  let predicates = ref [] in
  Array.iteri
    (fun i a ->
      List.iter
        (fun pos ->
          let reference = alias i ^ "." ^ column_name pos in
          match Query.Atom.term_at a pos with
          | Query.Qterm.Cst constant ->
            predicates := (reference ^ " = " ^ constant_literal constant) :: !predicates
          | Query.Qterm.Var x -> (
            match Hashtbl.find_opt first_occurrence x with
            | Some original ->
              predicates := (reference ^ " = " ^ original) :: !predicates
            | None -> Hashtbl.add first_occurrence x reference))
        Query.Atom.positions)
    atoms;
  let select_items =
    List.mapi
      (fun i term ->
        match term with
        | Query.Qterm.Var x ->
          Hashtbl.find first_occurrence x ^ " AS " ^ quote_ident x
        | Query.Qterm.Cst constant ->
          constant_literal constant ^ " AS " ^ quote_ident (Printf.sprintf "c%d" i))
      q.Query.Cq.head
  in
  let from_items =
    List.init (Array.length atoms) (fun i -> config.triple_table ^ " " ^ alias i)
  in
  let where =
    match List.rev !predicates with
    | [] -> ""
    | preds -> "\nWHERE " ^ String.concat "\n  AND " preds
  in
  Printf.sprintf "SELECT DISTINCT %s\nFROM %s%s"
    (String.concat ", " select_items)
    (String.concat ", " from_items)
    where

let view_columns (u : Query.Ucq.t) =
  let first = List.hd (Query.Ucq.disjuncts u) in
  List.mapi
    (fun i term ->
      match term with
      | Query.Qterm.Var x -> x
      | Query.Qterm.Cst _ -> Printf.sprintf "c%d" i)
    first.Query.Cq.head

let view_ddl ?(config = default_config) u =
  let body =
    String.concat "\nUNION\n"
      (List.map (cq_select ~config) (Query.Ucq.disjuncts u))
  in
  Printf.sprintf "CREATE %sVIEW %s(%s) AS\n%s;"
    (if config.materialized then "MATERIALIZED " else "")
    (quote_ident (Query.Ucq.name u))
    (String.concat ", " (List.map quote_ident (view_columns u)))
    body

(* ---------- rewritings ----------------------------------------------------- *)

let cond_to_sql qualify = function
  | Rewriting.Eq_cst (col, term) ->
    qualify col ^ " = " ^ constant_literal term
  | Rewriting.Eq_col (a, b) -> qualify a ^ " = " ^ qualify b

let rewriting_query env qname expr =
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  (* returns (sql, columns) *)
  let rec render expr =
    match expr with
    | Rewriting.Scan name ->
      let cols = Rewriting.columns env expr in
      ( Printf.sprintf "SELECT %s FROM %s"
          (String.concat ", " (List.map quote_ident cols))
          (quote_ident name),
        cols )
    | Rewriting.Select (conds, inner) ->
      let sql, cols = render inner in
      let sub = fresh "f" in
      let qualify col = sub ^ "." ^ quote_ident col in
      ( Printf.sprintf "SELECT * FROM (\n%s\n) %s WHERE %s" sql sub
          (String.concat " AND " (List.map (cond_to_sql qualify) conds)),
        cols )
    | Rewriting.Project (cols, inner) ->
      let sql, _ = render inner in
      let sub = fresh "p" in
      ( Printf.sprintf "SELECT DISTINCT %s FROM (\n%s\n) %s"
          (String.concat ", "
             (List.map (fun c -> sub ^ "." ^ quote_ident c) cols))
          sql sub,
        cols )
    | Rewriting.Rename (mapping, inner) ->
      let sql, in_cols = render inner in
      let sub = fresh "r" in
      let out_cols =
        List.map
          (fun c ->
            match List.assoc_opt c mapping with Some c' -> c' | None -> c)
          in_cols
      in
      ( Printf.sprintf "SELECT %s FROM (\n%s\n) %s"
          (String.concat ", "
             (List.map2
                (fun original renamed ->
                  sub ^ "." ^ quote_ident original ^ " AS " ^ quote_ident renamed)
                in_cols out_cols))
          sql sub,
        out_cols )
    | Rewriting.Join (conds, l, r) ->
      let lsql, lcols = render l in
      let rsql, rcols = render r in
      let la = fresh "l" in
      let ra = fresh "r" in
      let pairs =
        match conds with
        | [] ->
          List.filter_map
            (fun c -> if List.mem c lcols then Some (c, c) else None)
            rcols
        | _ :: _ -> conds
      in
      let on_clause =
        match pairs with
        | [] -> "1 = 1"
        | _ ->
          String.concat " AND "
            (List.map
               (fun (a, b) ->
                 la ^ "." ^ quote_ident a ^ " = " ^ ra ^ "." ^ quote_ident b)
               pairs)
      in
      let right_extra = List.filter (fun c -> not (List.mem c lcols)) rcols in
      let select_items =
        List.map (fun c -> la ^ "." ^ quote_ident c) lcols
        @ List.map (fun c -> ra ^ "." ^ quote_ident c) right_extra
      in
      ( Printf.sprintf "SELECT %s FROM (\n%s\n) %s JOIN (\n%s\n) %s ON %s"
          (String.concat ", " select_items)
          lsql la rsql ra on_clause,
        lcols @ right_extra )
    | Rewriting.Union branches ->
      let rendered = List.map render branches in
      ( String.concat "\nUNION\n"
          (List.map (fun (sql, _) -> "(" ^ sql ^ ")") rendered),
        (match rendered with
        | (_, cols) :: _ -> cols
        | [] -> failwith "Sql.rewriting_query: empty union") )
  in
  let sql, _ = render expr in
  Printf.sprintf "-- rewriting of %s\n%s;" qname sql

let deployment_script ?(config = default_config) (result : Selector.result) =
  let views =
    List.map (fun u -> view_ddl ~config u) result.Selector.recommended
  in
  let env = Hashtbl.create 16 in
  List.iter
    (fun u -> Hashtbl.replace env (Query.Ucq.name u) (view_columns u))
    result.Selector.recommended;
  let queries =
    List.map
      (fun (qname, r) -> rewriting_query env qname r)
      result.Selector.rewritings
  in
  String.concat "\n\n" (views @ queries)
