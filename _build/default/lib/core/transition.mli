(** The four state transitions of §3.2.

    - View break (VB, Definition 3.2) splits a view with at least three
      atoms along a node partition (possibly overlapping on one node);
      the view is rewritten as the projection of the natural join of the
      two pieces.
    - Selection cut (SC, Definition 3.3) promotes a constant to a fresh
      head variable; the view is rewritten as a projection of a selection.
    - Join cut (JC, Definition 3.4) removes one join edge; when the view
      graph stays connected, the two sides of the join become head
      variables and the view is rewritten with a column-equality
      selection; when it splits, the view is replaced by its two
      components joined on the cut variable.
    - View fusion (VF, Definition 3.5) merges two views with isomorphic
      bodies into one view with the union of their heads.

    VB enumeration covers all disjoint connected two-way splits and all
    splits overlapping on exactly one node.  (Fully general overlapping
    splits grow as 3^n and add no reachable state of interest; the
    restriction is documented in DESIGN.md.) *)

type kind = VB | SC | JC | VF

val kind_rank : kind -> int
(** VB < SC < JC < VF, the stratification order of Definition 5.3. *)

val kind_name : kind -> string

val all_kinds : kind list
(** In stratification order. *)

val successors : State.t -> kind -> State.t list
(** All states reachable from the given state by one application of the
    given transition kind.  No deduplication is performed here; the
    search deduplicates by {!State.key}. *)

val fusion_closure : State.t -> State.t
(** Repeatedly apply view fusions until none is applicable — the
    aggressive-view-fusion (AVF) collapse of §5.2; the result is unique
    no matter the fusion order. *)
