(** Workload partitioning (§8, future work): "parallelizing our view
    search algorithms by identifying workload queries that do not have
    many commonalities and running the search in parallel for each
    group".

    Two queries can only profit from a shared view when their atoms can
    be made isomorphic — which requires sharing constants (properties or
    values).  Partitioning the workload into constant-disjoint groups
    therefore preserves the reachable cost exactly for the fusion-driven
    gains, while cutting the search space multiplicatively: the search
    over a group of size k explores its own candidate space instead of
    the product space.

    The search within each group is still sequential here (as in the
    paper, which leaves the actual parallel runtime to future work); the
    decomposition is the contribution. *)

val groups : Query.Cq.t list -> Query.Cq.t list list
(** Partition the workload into groups such that queries in different
    groups share no constant.  Order of queries is preserved within a
    group; groups are ordered by their first query. *)

val select :
  store:Rdf.Store.t ->
  reasoning:Selector.reasoning ->
  options:Search.options ->
  Query.Cq.t list ->
  Selector.result
(** Like {!Selector.select} but running one search per constant-disjoint
    group and merging the outcomes.  The merged report sums the state
    counters and costs (both are additive over disjoint view sets); the
    per-group time budget is the given budget divided by the number of
    groups, so the total matches a single monolithic run. *)
