lib/core/cost.mli: Rewriting State Stats View
