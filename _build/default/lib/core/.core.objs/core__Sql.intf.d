lib/core/sql.mli: Query Rewriting Selector
