lib/core/transition.mli: State
