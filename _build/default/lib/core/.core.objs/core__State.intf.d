lib/core/state.mli: Format Query Rewriting View
