lib/core/competitors.ml: Cost Hashtbl List Queue Search State String Transition Unix View
