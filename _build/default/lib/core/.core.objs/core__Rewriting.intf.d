lib/core/rewriting.mli: Format Hashtbl Rdf
