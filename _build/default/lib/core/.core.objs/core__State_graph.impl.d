lib/core/state_graph.ml: Hashtbl Int List Option Printf Query Rdf
