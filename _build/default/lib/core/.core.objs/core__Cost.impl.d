lib/core/cost.ml: Float Hashtbl List Query Rewriting State Stats String View
