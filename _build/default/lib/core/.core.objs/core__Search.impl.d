lib/core/search.ml: Cost Hashtbl List Query Queue State String Transition Unix View
