lib/core/partition.mli: Query Rdf Search Selector
