lib/core/state.ml: Format Hashtbl List Query Rewriting String View
