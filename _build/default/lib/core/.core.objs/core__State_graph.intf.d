lib/core/state_graph.mli: Query Rdf
