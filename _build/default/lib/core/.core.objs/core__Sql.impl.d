lib/core/sql.ml: Array Hashtbl List Printf Query Rdf Rewriting Selector String
