lib/core/search.mli: Cost Query State Stats
