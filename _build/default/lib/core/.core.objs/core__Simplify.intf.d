lib/core/simplify.mli: Rewriting
