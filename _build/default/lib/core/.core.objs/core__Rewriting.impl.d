lib/core/rewriting.ml: Format Hashtbl List Rdf String
