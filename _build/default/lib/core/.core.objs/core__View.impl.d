lib/core/view.ml: Format Lazy List Printf Query String
