lib/core/selector.mli: Query Rdf Rewriting Search State Stats
