lib/core/selector.ml: Cost List Query Rdf Rewriting Search Simplify State Stats View
