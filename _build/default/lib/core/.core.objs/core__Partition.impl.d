lib/core/partition.ml: Array Hashtbl List Option Query Rdf Search Selector Set State Unix
