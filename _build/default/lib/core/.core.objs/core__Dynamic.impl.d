lib/core/dynamic.ml: List Query Rewriting Search Selector Set State String View
