lib/core/transition.ml: Array Int List Query Rewriting State State_graph String View
