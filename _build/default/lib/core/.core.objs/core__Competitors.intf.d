lib/core/competitors.mli: Cost Query Search
