lib/core/view.mli: Format Lazy Query
