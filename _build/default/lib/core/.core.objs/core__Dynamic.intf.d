lib/core/dynamic.mli: Query Rdf Search Selector
