lib/core/simplify.ml: List Rewriting String
