(** Dynamic query workloads (§8, future work): "adapting our approach to
    dynamic query workloads".

    When the workload evolves — queries retired, queries added — a full
    re-selection discards everything the previous search learned.  This
    module warm-starts instead: the previous best state is trimmed to the
    surviving queries (dropping views no rewriting uses any more), the
    new queries join as fresh initial views, and the search resumes from
    that combined state.  Every state reachable from scratch is still
    reachable (the transitions are closed over any valid state), so
    quality is preserved while the surviving queries' structure is kept
    for free. *)

val extend :
  store:Rdf.Store.t ->
  reasoning:Selector.reasoning ->
  options:Search.options ->
  previous:Selector.result ->
  removed:string list ->
  added:Query.Cq.t list ->
  Selector.result
(** [extend ~previous ~removed ~added] re-selects for the workload
    obtained by dropping the queries named in [removed] and adding
    [added].  Raises [Invalid_argument] if a removed name is unknown, an
    added name collides with a surviving query, or no query survives. *)
