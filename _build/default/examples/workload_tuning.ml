(* Workload-shape exploration: how query shape, commonality and search
   strategy affect the recommended view sets — a miniature of §6.2/§6.4.

     dune exec examples/workload_tuning.exe *)

let () =
  let store = Workload.Barton.store ~n_entities:300 ~seed:12 () in
  let stats = Stats.Statistics.create store in
  Printf.printf "%-14s %-6s %-8s %-8s %-8s %-10s\n" "shape" "common" "strategy"
    "rcr" "views" "atoms/view";
  List.iter
    (fun shape ->
      List.iter
        (fun commonality ->
          List.iter
            (fun strategy ->
              let queries =
                Workload.Generator.generate
                  {
                    Workload.Generator.shape;
                    n_queries = 4;
                    atoms_per_query = 5;
                    commonality;
                    seed = 5;
                  }
              in
              let report =
                Core.Search.run stats
                  {
                    Core.Search.default_options with
                    strategy;
                    time_budget = Some 1.0;
                  }
                  queries
              in
              let best = report.Core.Search.best in
              let atoms =
                match best.Core.State.views with
                | [] -> 0.
                | views ->
                  float_of_int
                    (List.fold_left
                       (fun acc v -> acc + Core.View.atom_count v)
                       0 views)
                  /. float_of_int (List.length views)
              in
              Printf.printf "%-14s %-6s %-8s %-8.3f %-8d %-10.1f\n"
                (Workload.Generator.shape_name shape)
                (Workload.Generator.commonality_name commonality)
                (Core.Search.strategy_name strategy)
                (Core.Search.rcr report)
                (List.length best.Core.State.views)
                atoms)
            [ Core.Search.Dfs; Core.Search.Gstr ])
        [ Workload.Generator.High; Workload.Generator.Low ])
    [
      Workload.Generator.Star;
      Workload.Generator.Chain;
      Workload.Generator.Random_sparse;
    ];
  print_endline "\n(higher commonality -> more view fusion -> higher rcr)"
