(* RDFS reasoning scenario (§4 of the paper): implicit triples must be
   reflected in query answers, and the selected views must capture them.

   The schema is the §4.3 example: painting ⊑ picture and
   isExpIn ⊑p isLocatIn.  The query asks for pictures and their
   locations; some answers only exist because of the schema.

     dune exec examples/museum_reasoning.exe *)

let uri u = Rdf.Term.Uri u
let v x = Query.Qterm.Var x
let c u = Query.Qterm.Cst (uri u)

let schema =
  Rdf.Schema.of_statements
    [
      Rdf.Schema.Subclass (uri "ex:painting", uri "ex:picture");
      Rdf.Schema.Subproperty (uri "ex:isExpIn", uri "ex:isLocatIn");
    ]

let store () =
  Rdf.Store.of_triples
    [
      (* mona is only typed as a painting and only isExpIn the louvre:
         both facts about pictures/locations are implicit *)
      Rdf.Triple.make (uri "ex:mona") Rdf.Vocabulary.rdf_type (uri "ex:painting");
      Rdf.Triple.make (uri "ex:mona") (uri "ex:isExpIn") (uri "ex:louvre");
      Rdf.Triple.make (uri "ex:guernica") Rdf.Vocabulary.rdf_type (uri "ex:picture");
      Rdf.Triple.make (uri "ex:guernica") (uri "ex:isLocatIn") (uri "ex:reina");
    ]

let q =
  (* the §3.3 example query *)
  Query.Cq.make ~name:"q"
    ~head:[ v "X1"; v "X2" ]
    ~body:
      [
        Query.Atom.make (v "X1") (Query.Qterm.Cst Rdf.Vocabulary.rdf_type)
          (c "ex:picture");
        Query.Atom.make (v "X1") (c "ex:isLocatIn") (v "X2");
      ]

let print_answers label answers =
  Printf.printf "%s:\n" label;
  List.iter
    (fun tuple ->
      Printf.printf "  (%s)\n"
        (String.concat ", " (List.map Rdf.Term.to_string (Array.to_list tuple))))
    answers

let run_mode label reasoning =
  let store = store () in
  let result =
    Core.Selector.select ~store ~reasoning ~options:Core.Search.default_options
      [ q ]
  in
  Printf.printf "\n== %s ==\n" label;
  print_endline "materializable views:";
  List.iter
    (fun u ->
      Printf.printf "  %s  (%d union term(s))\n" (Query.Ucq.name u)
        (Query.Ucq.cardinal u);
      List.iter
        (fun d -> Printf.printf "      %s\n" (Query.Cq.to_string d))
        (Query.Ucq.disjuncts u))
    result.Core.Selector.recommended;
  let env =
    Engine.Materialize.materialize_views
      result.Core.Selector.store_for_materialization
      result.Core.Selector.recommended
  in
  let answers =
    Engine.Executor.execute_query result.Core.Selector.store_for_materialization
      env
      (List.assoc "q" result.Core.Selector.rewritings)
  in
  print_answers "answers" answers

let () =
  (* plain evaluation misses the implicit answers *)
  let plain = Query.Evaluation.eval_cq (store ()) q in
  print_answers "without reasoning (incomplete!)" plain;

  (* direct evaluation on the saturated database: the ground truth *)
  let saturated = Rdf.Entailment.saturated_copy (store ()) schema in
  print_answers "\nground truth (saturated database)"
    (Query.Evaluation.eval_cq saturated q);

  (* reformulation captures the same answers without touching the db *)
  let reformulated = Query.Reformulation.reformulate q schema in
  Printf.printf "\nreformulation: %d union terms\n" (Query.Ucq.cardinal reformulated);
  print_answers "answers via reformulation on the original db"
    (Query.Evaluation.eval_ucq (store ()) reformulated);

  (* view selection in the two reasoning deployments *)
  run_mode "view selection with database saturation"
    (Core.Selector.Saturation schema);
  run_mode "view selection with post-reformulation (db untouched)"
    (Core.Selector.Post_reformulation schema)
