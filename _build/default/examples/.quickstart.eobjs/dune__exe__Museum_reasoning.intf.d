examples/museum_reasoning.mli:
