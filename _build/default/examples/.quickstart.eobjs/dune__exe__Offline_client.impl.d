examples/offline_client.ml: Array Core Engine Hashtbl List Printf Query Rdf Workload
