examples/offline_client.mli:
