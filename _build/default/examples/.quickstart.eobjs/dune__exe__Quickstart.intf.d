examples/quickstart.mli:
