examples/museum_reasoning.ml: Array Core Engine List Printf Query Rdf String
