examples/workload_tuning.ml: Core List Printf Stats Workload
