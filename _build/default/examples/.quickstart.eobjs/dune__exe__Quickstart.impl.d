examples/quickstart.ml: Array Core Engine List Printf Query Rdf String
