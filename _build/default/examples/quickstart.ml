(* Quickstart: select materialized views for a tiny RDF workload and
   answer the queries from the views alone.

     dune exec examples/quickstart.exe *)

let uri u = Rdf.Term.Uri u
let v x = Query.Qterm.Var x
let c u = Query.Qterm.Cst (uri u)

let () =
  (* 1. build an RDF database: a single triple table *)
  let store =
    Rdf.Store.of_triples
      [
        Rdf.Triple.make (uri "ex:vanGogh") (uri "ex:hasPainted") (uri "ex:starryNight");
        Rdf.Triple.make (uri "ex:vanGogh") (uri "ex:isParentOf") (uri "ex:vincentJr");
        Rdf.Triple.make (uri "ex:vincentJr") (uri "ex:hasPainted") (uri "ex:sunflowers2");
        Rdf.Triple.make (uri "ex:monet") (uri "ex:hasPainted") (uri "ex:waterLilies");
        Rdf.Triple.make (uri "ex:monet") (uri "ex:isParentOf") (uri "ex:michel");
        Rdf.Triple.make (uri "ex:michel") (uri "ex:hasPainted") (uri "ex:nympheas");
      ]
  in

  (* 2. the application workload: two conjunctive queries over t(s,p,o);
     q1 is the paper's running example *)
  let q1 =
    Query.Cq.make ~name:"q1"
      ~head:[ v "X"; v "Z" ]
      ~body:
        [
          Query.Atom.make (v "X") (c "ex:hasPainted") (c "ex:starryNight");
          Query.Atom.make (v "X") (c "ex:isParentOf") (v "Y");
          Query.Atom.make (v "Y") (c "ex:hasPainted") (v "Z");
        ]
  in
  let q2 =
    Query.Cq.make ~name:"q2"
      ~head:[ v "P"; v "K" ]
      ~body:
        [
          Query.Atom.make (v "P") (c "ex:isParentOf") (v "K");
          Query.Atom.make (v "K") (c "ex:hasPainted") (v "W");
        ]
  in

  (* 3. run view selection *)
  let result =
    Core.Selector.select ~store ~reasoning:Core.Selector.No_reasoning
      ~options:Core.Search.default_options [ q1; q2 ]
  in
  let report = result.Core.Selector.report in
  Printf.printf "search: %d states explored, cost %.1f -> %.1f (rcr %.2f)\n\n"
    report.Core.Search.explored report.Core.Search.initial_cost
    report.Core.Search.best_cost (Core.Search.rcr report);

  print_endline "recommended views:";
  List.iter
    (fun u -> Printf.printf "  %s\n" (Query.Ucq.to_string u))
    result.Core.Selector.recommended;

  print_endline "\nrewritings:";
  List.iter
    (fun (q, r) -> Printf.printf "  %s = %s\n" q (Core.Rewriting.to_string r))
    result.Core.Selector.rewritings;

  (* 4. materialize the views and answer the workload from them *)
  let env = Engine.Materialize.materialize_views store result.Core.Selector.recommended in
  print_endline "\nanswers from the materialized views:";
  List.iter
    (fun (q : Query.Cq.t) ->
      let answers =
        Engine.Executor.execute_query store env
          (List.assoc q.Query.Cq.name result.Core.Selector.rewritings)
      in
      Printf.printf "  %s:\n" q.Query.Cq.name;
      List.iter
        (fun tuple ->
          Printf.printf "    (%s)\n"
            (String.concat ", "
               (List.map Rdf.Term.to_string (Array.to_list tuple))))
        answers)
    [ q1; q2 ]
