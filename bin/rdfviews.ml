(* rdfviews — command-line interface to the view-selection library.

   Subcommands:
     select       recommend materialized views for a workload
     check        certify saved states against a workload's semantics
     report       analyze a search trace (or metrics dump) offline
     top          render a --telemetry snapshot file, optionally live
     reformulate  reformulate queries w.r.t. an RDFS (Algorithm 1)
     saturate     saturate a dataset w.r.t. an RDFS
     eval         evaluate queries over a dataset
     generate     generate synthetic or data-backed workloads
     barton       emit the synthetic Barton-like dataset and schema *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  contents

let write_out path text =
  match path with
  | None -> print_endline text
  | Some file ->
    let oc = open_out file in
    output_string oc text;
    output_string oc "\n";
    close_out oc

let load_store path = Rdf.Store.of_triples (Query.Parser.parse_triples (read_file path))
let load_workload path = Query.Parser.parse_workload (read_file path)
let load_schema path = Query.Parser.parse_schema (read_file path)

(* Like [handle_errors] but for commands whose success path already
   returns an exit code (check: 0 certified / 1 violations found). *)
let handle_errors_code f =
  try f () with
  | Query.Parser.Parse_error message ->
    Printf.eprintf "parse error: %s\n" message;
    2
  | Core.State_io.Syntax_error message ->
    Printf.eprintf "state file error: %s\n" message;
    2
  | Obs.Export.Bad_exposition message ->
    Printf.eprintf "malformed telemetry exposition: %s\n" message;
    2
  | Invalid_argument message | Failure message ->
    Printf.eprintf "error: %s\n" message;
    2
  | Sys_error message ->
    Printf.eprintf "%s\n" message;
    2

let handle_errors f =
  try f (); 0 with
  | Query.Parser.Parse_error message ->
    Printf.eprintf "parse error: %s\n" message;
    1
  | Core.State_io.Syntax_error message ->
    Printf.eprintf "state file error: %s\n" message;
    1
  | Obs.Export.Bad_exposition message ->
    Printf.eprintf "malformed telemetry exposition: %s\n" message;
    1
  | Invalid_argument message | Failure message ->
    Printf.eprintf "error: %s\n" message;
    1
  | Sys_error message ->
    Printf.eprintf "%s\n" message;
    1

(* ---------- common arguments ---------------------------------------------- *)

let data_arg =
  Arg.(
    required
    & opt (some non_dir_file) None
    & info [ "d"; "data" ] ~docv:"FILE" ~doc:"Triples file (N-Triples-style).")

let schema_opt_arg =
  Arg.(
    value
    & opt (some non_dir_file) None
    & info [ "s"; "schema" ] ~docv:"FILE" ~doc:"RDFS schema file.")

let schema_req_arg =
  Arg.(
    required
    & opt (some non_dir_file) None
    & info [ "s"; "schema" ] ~docv:"FILE" ~doc:"RDFS schema file.")

let workload_arg =
  Arg.(
    required
    & opt (some non_dir_file) None
    & info [ "w"; "workload" ] ~docv:"FILE" ~doc:"Workload file (Datalog-style).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write output to $(docv).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write run telemetry (named counters, timers and trace spans — \
           per-transition counts, per-stratum search timings, cost-estimator \
           cache hits, store probe counts) as JSON to $(docv); use - for \
           stdout.  See EXPERIMENTS.md for the schema.")

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:
          "Periodically write live runtime telemetry — GC pause histograms, \
           collection counts, domain lifecycle, per-domain utilization and \
           the search counters — to $(docv) in Prometheus text exposition \
           format, atomically rewritten every $(b,--telemetry-interval) \
           seconds (watch it live with $(b,rdfviews top) $(docv)).  On an \
           OCaml 4.x build the GC and domain series are absent but the flag \
           still works.")

let telemetry_interval_arg =
  Arg.(
    value & opt float 1.0
    & info [ "telemetry-interval" ] ~docv:"SECONDS"
        ~doc:"Seconds between telemetry snapshots (default 1, minimum 0.001).")

let store_backend_arg =
  Arg.(
    value
    & opt
        (enum [ ("hash", Rdf.Backend.Hash); ("compact", Rdf.Backend.Compact) ])
        Rdf.Backend.Hash
    & info [ "store-backend" ] ~docv:"BACKEND"
        ~doc:
          "Triple-store backend: $(b,hash) (hexastore-style hash buckets; \
           the default, fastest point mutation) or $(b,compact) (sorted \
           delta-compressed segments with zone maps — several times \
           smaller, for Barton-scale datasets).")

(* Set before any store is built, so derived stores (copies, saturated
   stores, counting stores) follow the same backend. *)
let set_store_backend kind = Rdf.Backend.set_default kind

(* Telemetry is off (a no-op sink) unless --metrics selects a registry,
   once, before the run starts.  The dump happens only on success, and
   outside the protect so a write failure surfaces as a plain Sys_error
   (caught by handle_errors) rather than Fun.Finally_raised. *)
let with_metrics metrics f =
  match metrics with
  | None -> f ()
  | Some path ->
    let registry = Obs.create () in
    Obs.set_global registry;
    let result =
      Fun.protect ~finally:(fun () -> Obs.set_global Obs.disabled) f
    in
    (match path with
    | "-" -> print_endline (Obs.to_string registry)
    | file -> Obs.write_file registry file);
    result

(* --telemetry layers the live exporter over whatever registry is
   active: nested under with_metrics it scrapes that registry, and
   without --metrics it installs its own for the run's duration.  The
   exporter ticker (a systhread of this domain, so it shares the
   domain-local Obs.global) drains runtime events into the registry and
   atomically rewrites PATH in Prometheus text format every interval;
   [stop] in the finally writes one last snapshot, so the file always
   ends on the finished run — even a raising one.  On 4.x builds
   Runtime.start reports false and the exposition carries the search
   series only. *)
let with_telemetry telemetry interval f =
  match telemetry with
  | None -> f ()
  | Some path ->
    let installed =
      if Obs.is_enabled (Obs.global ()) then false
      else begin
        Obs.set_global (Obs.create ());
        true
      end
    in
    ignore (Obs.Runtime.start () : bool);
    let exporter =
      Obs.Export.start ~interval ~path (fun () -> Obs.global ())
    in
    Fun.protect
      ~finally:(fun () ->
        Obs.Export.stop exporter;
        if installed then Obs.set_global Obs.disabled)
      f

(* The event trace mirrors the metrics registry: off unless --trace
   installs a streaming writer for the run.  Closing in the [finally]
   flushes buffered events even when the search raises, so a failed run
   still leaves a well-formed JSONL prefix on disk. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    let t = Obs.Trace.create path in
    Obs.Trace.set_global t;
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.set_global Obs.Trace.disabled;
        Obs.Trace.close t)
      f

(* ---------- select --------------------------------------------------------- *)

let strategy_conv =
  let parse s =
    match Core.Search.strategy_of_string s with
    | Some strategy -> Ok strategy
    | None -> Error (`Msg ("unknown strategy " ^ s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Core.Search.strategy_name s))

let select_cmd =
  let reasoning_arg =
    Arg.(
      value
      & opt (enum [ ("none", `None); ("saturation", `Saturation);
                    ("pre", `Pre); ("post", `Post) ])
          `None
      & info [ "r"; "reasoning" ] ~docv:"MODE"
          ~doc:"Reasoning mode: none, saturation, pre (pre-reformulation) or \
                post (post-reformulation). All but none require --schema.")
  in
  let strategy_arg =
    Arg.(
      value
      & opt strategy_conv Core.Search.Dfs
      & info [ "strategy" ] ~docv:"NAME"
          ~doc:"Search strategy: dfs, gstr, exstr or exnaive.")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some float) (Some 30.)
      & info [ "budget" ] ~docv:"SECONDS" ~doc:"Search time budget (stoptime).")
  in
  let no_avf_arg =
    Arg.(value & flag & info [ "no-avf" ] ~doc:"Disable aggressive view fusion.")
  in
  let no_stv_arg =
    Arg.(value & flag & info [ "no-stv" ] ~doc:"Disable the stopvar condition.")
  in
  let materialize_arg =
    Arg.(
      value & flag
      & info [ "materialize" ]
          ~doc:"Also materialize the views and report their sizes and the \
                query answers.")
  in
  let sql_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "sql" ] ~docv:"FILE"
          ~doc:"Write a SQL deployment script (view DDL + rewriting queries) \
                to $(docv); use - for stdout.")
  in
  let state_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-out" ] ~docv:"FILE"
          ~doc:"Write the best state (views + rewritings) to $(docv), in the \
                format read back by $(b,rdfviews check --state).")
  in
  let trace_states_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-states" ] ~docv:"FILE"
          ~doc:"Write every state the search accepts (after stop conditions \
                and deduplication) to $(docv), for offline certification \
                with $(b,rdfviews check).")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Stream a per-event search trace (state accepted / discarded / \
             duplicate / reopened with cost and stratum, per-transition \
             applied/rejected counts with timings, cost-memo samples, \
             progress heartbeats) as JSONL to $(docv), for offline analysis \
             with $(b,rdfviews report).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Search with $(docv) parallel domains (requires an OCaml 5 \
             build; 0 means the runtime's recommended domain count). The \
             default 1 is the sequential engine. See CONCURRENCY.md.")
  in
  let par_mode_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("det", Core.Parallel_search.Deterministic);
               ("deterministic", Core.Parallel_search.Deterministic);
               ("free", Core.Parallel_search.Free);
             ])
          Core.Parallel_search.Deterministic
      & info [ "par-mode"; "parallel-mode" ] ~docv:"MODE"
          ~doc:
            "Parallel mode with --jobs > 1: $(b,det) reproduces the \
             sequential result exactly; $(b,free) is faster but \
             schedule-dependent in its counters.")
  in
  let run data workload schema reasoning strategy budget no_avf no_stv materialize sql
      state_out trace_states trace metrics telemetry telemetry_interval jobs
      par_mode store_backend =
    handle_errors @@ fun () ->
    with_metrics metrics @@ fun () ->
    with_telemetry telemetry telemetry_interval @@ fun () ->
    with_trace trace @@ fun () ->
    set_store_backend store_backend;
    let store = load_store data in
    let queries = load_workload workload in
    let schema = Option.map load_schema schema in
    let reasoning =
      match (reasoning, schema) with
      | `None, _ -> Core.Selector.No_reasoning
      | `Saturation, Some s -> Core.Selector.Saturation s
      | `Pre, Some s -> Core.Selector.Pre_reformulation s
      | `Post, Some s -> Core.Selector.Post_reformulation s
      | (`Saturation | `Pre | `Post), None ->
        failwith "this reasoning mode requires --schema"
    in
    let jobs = if jobs = 0 then Multicore.recommended_domain_count () else jobs in
    if jobs > 1 && not Multicore.available then
      failwith "--jobs > 1 requires an OCaml 5 build (this one is sequential)";
    let traced = ref [] in
    (* under --jobs with the free mode the hook runs on any domain *)
    let traced_lock = Multicore.Spinlock.create () in
    let options =
      {
        Core.Search.default_options with
        strategy;
        avf = not no_avf;
        stop_var = not no_stv;
        time_budget = budget;
        on_accept =
          (match trace_states with
          | None -> None
          | Some _ ->
            Some
              (fun s ->
                Multicore.Spinlock.with_lock traced_lock (fun () ->
                    traced := s :: !traced)));
      }
    in
    let result =
      Obs.span (Obs.global ()) "select" (fun () ->
          Core.Selector.select ~jobs ~parallel_mode:par_mode ~store ~reasoning
            ~options queries)
    in
    let report = result.Core.Selector.report in
    Printf.printf
      "search (%s, %s%s): explored %d states in %.2fs; cost %.4g -> %.4g (rcr %.3f)%s\n"
      (Core.Search.strategy_name strategy)
      (Core.Selector.reasoning_name reasoning)
      (match strategy with
      | Core.Search.Gstr when jobs > 1 ->
        (* greedy picks are inherently sequential; Parallel_search falls
           back, so do not claim a parallel run in the banner *)
        ", jobs ignored (gstr is sequential)"
      | _ when jobs > 1 ->
        Printf.sprintf ", %d jobs %s" jobs
          (Core.Parallel_search.mode_name par_mode)
      | _ -> "")
      report.Core.Search.explored report.Core.Search.elapsed
      report.Core.Search.initial_cost report.Core.Search.best_cost
      (Core.Search.rcr report)
      (if report.Core.Search.completed then " [complete]" else "");
    Printf.printf "interner: %d distinct canonical forms\n\n"
      (Core.Intern.size ());
    print_endline "recommended views:";
    List.iter
      (fun u ->
        List.iter
          (fun d -> Printf.printf "  %s\n" (Query.Parser.query_to_text d))
          (Query.Ucq.disjuncts u))
      result.Core.Selector.recommended;
    print_endline "\nrewritings:";
    List.iter
      (fun (q, r) -> Printf.printf "  %s = %s\n" q (Core.Rewriting.to_string r))
      result.Core.Selector.rewritings;
    (match sql with
    | Some "-" -> print_endline ("\n" ^ Core.Sql.deployment_script result)
    | Some file ->
      let oc = open_out file in
      output_string oc (Core.Sql.deployment_script result);
      output_string oc "\n";
      close_out oc;
      Printf.printf "\nSQL deployment script written to %s\n" file
    | None -> ());
    (match state_out with
    | Some file ->
      Core.State_io.write_file file [ report.Core.Search.best ];
      Printf.printf "\nbest state written to %s\n" file
    | None -> ());
    (match trace_states with
    | Some file ->
      let states = List.rev !traced in
      Core.State_io.write_file file states;
      Printf.printf "\n%d accepted state(s) written to %s\n"
        (List.length states) file
    | None -> ());
    if materialize then begin
      let mstore = result.Core.Selector.store_for_materialization in
      let env = Engine.Materialize.materialize_views mstore result.Core.Selector.recommended in
      Printf.printf "\nmaterialized: %d tuples, %d bytes\n"
        (Engine.Materialize.total_cardinality env)
        (Engine.Materialize.total_size_bytes mstore env);
      List.iter
        (fun (qname, rewriting) ->
          let answers = Engine.Executor.execute_query mstore env rewriting in
          Printf.printf "  %s: %d answers\n" qname (List.length answers))
        result.Core.Selector.rewritings
    end
  in
  let info =
    Cmd.info "select" ~doc:"Recommend materialized views for a workload."
  in
  Cmd.v info
    Term.(
      const run $ data_arg $ workload_arg $ schema_opt_arg $ reasoning_arg
      $ strategy_arg $ budget_arg $ no_avf_arg $ no_stv_arg $ materialize_arg
      $ sql_arg $ state_out_arg $ trace_states_arg $ trace_arg $ metrics_arg
      $ telemetry_arg $ telemetry_interval_arg $ jobs_arg $ par_mode_arg
      $ store_backend_arg)

(* ---------- check ----------------------------------------------------------- *)

let check_cmd =
  let state_arg =
    Arg.(
      required
      & opt (some non_dir_file) None
      & info [ "state" ] ~docv:"FILE"
          ~doc:"State file to certify (written by $(b,select --state-out) or \
                $(b,--trace-states)).")
  in
  let data_opt_arg =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "d"; "data" ] ~docv:"FILE"
          ~doc:"Triples file; when given, cost-model invariants are checked \
                against statistics of this dataset.")
  in
  let reasoning_arg =
    Arg.(
      value
      & opt (enum [ ("none", `None); ("pre", `Pre) ]) `None
      & info [ "r"; "reasoning" ] ~docv:"MODE"
          ~doc:"Reference semantics: none (each query itself) or pre (each \
                query's reformulation w.r.t. --schema, for states produced \
                under pre-reformulation).")
  in
  let run workload schema reasoning state data =
    handle_errors_code @@ fun () ->
    let queries = load_workload workload in
    let reference =
      match (reasoning, Option.map load_schema schema) with
      | `None, _ -> Core.Invariant.reference_of_workload queries
      | `Pre, Some s ->
        Core.Invariant.reference_of_groups
          (List.map
             (fun q ->
               ( q.Query.Cq.name,
                 Query.Ucq.disjuncts (Query.Reformulation.reformulate q s) ))
             queries)
      | `Pre, None -> failwith "--reasoning pre requires --schema"
    in
    let estimator =
      Option.map
        (fun path ->
          Core.Cost.create
            (Stats.Statistics.create ~mode:Stats.Statistics.Plain
               (load_store path))
            Core.Cost.default_weights)
        data
    in
    let states = Core.State_io.read_file state in
    if states = [] then failwith "state file contains no states";
    let total = ref 0 in
    List.iteri
      (fun i s ->
        let violations = Core.Invariant.check ?estimator reference s in
        total := !total + List.length violations;
        if violations = [] then
          Printf.printf "state %d: ok (%d view(s), %d rewriting(s) certified)\n"
            (i + 1)
            (List.length s.Core.State.views)
            (List.length s.Core.State.rewritings)
        else
          List.iter
            (fun viol ->
              Printf.printf "state %d: %s\n" (i + 1)
                (Core.Invariant.violation_to_string viol))
            violations)
      states;
    if !total = 0 then begin
      Printf.printf "%d state(s) certified\n" (List.length states);
      0
    end
    else begin
      Printf.printf "%d violation(s) found\n" !total;
      1
    end
  in
  let info =
    Cmd.info "check"
      ~doc:
        "Certify saved states: every workload query rewritten, each \
         rewriting equivalent to the query (containment mappings both \
         ways), structure and cost estimates sane.  Exits 0 when all \
         states certify, 1 on violations, 2 on usage or parse errors."
  in
  Cmd.v info
    Term.(
      const run $ workload_arg $ schema_opt_arg $ reasoning_arg $ state_arg
      $ data_opt_arg)

(* ---------- report ---------------------------------------------------------- *)

let report_cmd =
  let input_arg =
    Arg.(
      required
      & pos 0 (some non_dir_file) None
      & info [] ~docv:"FILE"
          ~doc:
            "A JSONL search trace (written by $(b,select --trace)) or a \
             metrics registry dump (written by $(b,--metrics)); the format \
             is autodetected.")
  in
  let run input =
    handle_errors @@ fun () ->
    let text = read_file input in
    (* A telemetry snapshot opens with # HELP/# TYPE comments; a metrics
       dump is one JSON object with a schema_version member; a trace is
       one JSON object per line.  Sniff the exposition first (it is not
       JSON at all), then try the whole file as JSON. *)
    if Obs.Export.looks_like_exposition text then
      print_string (Obs.Report.render_telemetry (Obs.Export.parse_exposition text))
    else
      let summary =
        try
          match Obs.Json.of_string (String.trim text) with
          | json when Obs.Json.member "schema_version" json <> None ->
            Obs.Report.of_metrics json
          | _ -> Obs.Report.of_trace (Obs.Trace.parse_lines text)
          | exception Obs.Json.Parse_error _ ->
            Obs.Report.of_trace (Obs.Trace.parse_lines text)
        with Obs.Trace.Malformed message ->
          failwith ("malformed trace: " ^ message)
      in
      print_string (Obs.Report.render summary)
  in
  let info =
    Cmd.info "report"
      ~doc:
        "Reconstruct a search's dynamics offline from its event trace: \
         convergence curve (best cost vs. wall time and vs. states \
         created), time-to-within-x%-of-final-cost, per-transition \
         acceptance breakdown and stratum population.  From a --metrics \
         dump only the aggregate sections are available; a --telemetry \
         snapshot file renders the $(b,rdfviews top) summary instead."
  in
  Cmd.v info Term.(const run $ input_arg)

(* ---------- top ------------------------------------------------------------- *)

let top_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some non_dir_file) None
      & info [] ~docv:"FILE"
          ~doc:
            "A Prometheus text exposition written by $(b,--telemetry) (or \
             any compatible scrape).")
  in
  let watch_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "watch" ] ~docv:"SECONDS"
          ~doc:
            "Re-read and re-render $(i,FILE) every $(docv) seconds (like \
             watch(1)); interrupt to stop.  Pair with a running \
             $(b,select --telemetry) $(i,FILE) for a live view.")
  in
  let run file watch =
    handle_errors @@ fun () ->
    let render () =
      Obs.Report.render_telemetry (Obs.Export.parse_exposition (read_file file))
    in
    match watch with
    | None -> print_string (render ())
    | Some period ->
      let period = if period < 0.1 then 0.1 else period in
      let rec loop () =
        (* clear + home, like watch(1), so the table repaints in place *)
        print_string "\027[2J\027[H";
        print_string (render ());
        flush stdout;
        Unix.sleepf period;
        loop ()
      in
      loop ()
  in
  let info =
    Cmd.info "top"
      ~doc:
        "Summarize a live-telemetry snapshot file: GC pauses and collection \
         counts, domain lifecycle, per-domain work/steal/idle utilization \
         and search progress.  With $(b,--watch), repaints periodically \
         like top(1) over a run in flight."
  in
  Cmd.v info Term.(const run $ file_arg $ watch_arg)

(* ---------- reformulate ---------------------------------------------------- *)

let reformulate_cmd =
  let run workload schema output =
    handle_errors @@ fun () ->
    let queries = load_workload workload in
    let schema = load_schema schema in
    let text =
      String.concat "\n\n"
        (List.map
           (fun q ->
             let u = Query.Reformulation.reformulate q schema in
             Printf.sprintf "# %s: %d union term(s)\n%s" q.Query.Cq.name
               (Query.Ucq.cardinal u)
               (String.concat "\n"
                  (List.map Query.Parser.query_to_text (Query.Ucq.disjuncts u))))
           queries)
    in
    write_out output text
  in
  let info =
    Cmd.info "reformulate"
      ~doc:"Reformulate queries w.r.t. an RDFS (Algorithm 1 of the paper)."
  in
  Cmd.v info Term.(const run $ workload_arg $ schema_req_arg $ output_arg)

(* ---------- saturate -------------------------------------------------------- *)

let saturate_cmd =
  let count_only =
    Arg.(value & flag & info [ "count" ] ~doc:"Only print triple counts.")
  in
  let run data schema output count_only store_backend =
    handle_errors @@ fun () ->
    set_store_backend store_backend;
    let store = load_store data in
    let schema = load_schema schema in
    let before = Rdf.Store.size store in
    let added = Rdf.Entailment.saturate store schema in
    if count_only then
      Printf.printf "%d explicit + %d implicit = %d triples\n" before added
        (Rdf.Store.size store)
    else
      write_out output (Query.Parser.triples_to_text (Rdf.Store.to_triples store))
  in
  let info = Cmd.info "saturate" ~doc:"Saturate a dataset w.r.t. an RDFS." in
  Cmd.v info
    Term.(
      const run $ data_arg $ schema_req_arg $ output_arg $ count_only
      $ store_backend_arg)

(* ---------- eval ------------------------------------------------------------ *)

let eval_cmd =
  let batch_size_conv =
    let parse s =
      if String.lowercase_ascii s = "auto" then Ok `Auto
      else
        match int_of_string_opt s with
        | Some n -> Ok (`Fixed n)
        | None -> Error (`Msg ("expected an integer or 'auto', got " ^ s))
    in
    let print fmt = function
      | `Auto -> Format.pp_print_string fmt "auto"
      | `Fixed n -> Format.pp_print_int fmt n
    in
    Arg.conv (parse, print)
  in
  let batch_size_arg =
    Arg.(
      value
      & opt batch_size_conv (`Fixed 1024)
      & info [ "batch-size" ] ~docv:"N|auto"
          ~doc:
            "Rows per batch of the columnar plan executor (clamped to \
             1..1048576), or $(b,auto) to size batches to the store: the \
             block geometry on the compact backend, the bucket-size \
             histogram on hash.")
  in
  let no_mqo_arg =
    Arg.(
      value & flag
      & info [ "no-mqo" ]
          ~doc:
            "Disable the multi-query optimizer: every query runs its full \
             plan, with no shared-prefix or result caching.")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print the workload's shared-subplan DAG (which plan prefixes \
             the queries share, and what the optimizer has captured) \
             instead of the answers.  Nothing is evaluated.")
  in
  let run data workload schema metrics telemetry telemetry_interval batch_size
      no_mqo explain store_backend =
    handle_errors @@ fun () ->
    with_metrics metrics @@ fun () ->
    with_telemetry telemetry telemetry_interval @@ fun () ->
    (match batch_size with
    | `Auto -> Query.Plan.set_batch_capacity_auto ()
    | `Fixed n -> Query.Plan.set_batch_capacity n);
    Query.Mqo.set_enabled (not no_mqo);
    set_store_backend store_backend;
    let store = load_store data in
    let queries = load_workload workload in
    let schema = Option.map load_schema schema in
    if explain then begin
      let cqs =
        match schema with
        | None -> queries
        | Some s ->
          List.concat_map
            (fun q ->
              Query.Ucq.disjuncts (Query.Reformulation.reformulate q s))
            queries
      in
      print_string (Query.Mqo.explain store cqs)
    end
    else
      List.iter
        (fun q ->
          let answers =
            match schema with
            | None -> Query.Evaluation.eval_cq store q
            | Some s ->
              Query.Evaluation.eval_ucq store
                (Query.Reformulation.reformulate q s)
          in
          Printf.printf "%s: %d answer(s)\n" q.Query.Cq.name
            (List.length answers);
          List.iter
            (fun tuple ->
              Printf.printf "  (%s)\n"
                (String.concat ", "
                   (List.map Rdf.Term.to_string (Array.to_list tuple))))
            answers)
        queries
  in
  let info =
    Cmd.info "eval"
      ~doc:"Evaluate queries; with --schema, answers reflect RDFS entailment \
            (via reformulation)."
  in
  Cmd.v info
    Term.(
      const run $ data_arg $ workload_arg $ schema_opt_arg $ metrics_arg
      $ telemetry_arg $ telemetry_interval_arg $ batch_size_arg $ no_mqo_arg
      $ explain_arg $ store_backend_arg)

(* ---------- generate --------------------------------------------------------- *)

let generate_cmd =
  let shape_conv =
    let parse s =
      match Workload.Generator.shape_of_string s with
      | Some shape -> Ok shape
      | None -> Error (`Msg ("unknown shape " ^ s))
    in
    Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Workload.Generator.shape_name s))
  in
  let shape_arg =
    Arg.(
      value
      & opt shape_conv Workload.Generator.Star
      & info [ "shape" ] ~docv:"SHAPE"
          ~doc:"star, chain, cycle, random-sparse, random-dense or mixed.")
  in
  let queries_arg =
    Arg.(value & opt int 5 & info [ "queries" ] ~docv:"N" ~doc:"Number of queries.")
  in
  let atoms_arg =
    Arg.(value & opt int 5 & info [ "atoms" ] ~docv:"N" ~doc:"Atoms per query.")
  in
  let commonality_arg =
    Arg.(
      value
      & opt (enum [ ("high", Workload.Generator.High); ("low", Workload.Generator.Low) ])
          Workload.Generator.High
      & info [ "commonality" ] ~docv:"LEVEL" ~doc:"high or low.")
  in
  let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.") in
  let satisfiable_arg =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "satisfiable-on" ] ~docv:"FILE"
          ~doc:"Sample constants from $(docv) so every query has answers.")
  in
  let run shape queries atoms commonality seed satisfiable output =
    handle_errors @@ fun () ->
    let spec =
      {
        Workload.Generator.shape;
        n_queries = queries;
        atoms_per_query = atoms;
        commonality;
        seed;
      }
    in
    let workload =
      match satisfiable with
      | None -> Workload.Generator.generate spec
      | Some data -> Workload.Generator.generate_satisfiable (load_store data) spec
    in
    write_out output
      (String.concat "\n" (List.map Query.Parser.query_to_text workload))
  in
  let info = Cmd.info "generate" ~doc:"Generate a synthetic query workload." in
  Cmd.v info
    Term.(
      const run $ shape_arg $ queries_arg $ atoms_arg $ commonality_arg
      $ seed_arg $ satisfiable_arg $ output_arg)

(* ---------- barton ----------------------------------------------------------- *)

let barton_cmd =
  let entities_arg =
    Arg.(value & opt int 500 & info [ "entities" ] ~docv:"N" ~doc:"Number of entities.")
  in
  let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.") in
  let schema_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "schema-out" ] ~docv:"FILE" ~doc:"Also write the schema to $(docv).")
  in
  let run entities seed schema_out output =
    handle_errors @@ fun () ->
    let store = Workload.Barton.store ~n_entities:entities ~seed () in
    write_out output (Query.Parser.triples_to_text (Rdf.Store.to_triples store));
    match schema_out with
    | Some file ->
      write_out (Some file) (Query.Parser.schema_to_text (Workload.Barton.schema ()))
    | None -> ()
  in
  let info =
    Cmd.info "barton"
      ~doc:"Emit the synthetic Barton-like dataset (and optionally its schema)."
  in
  Cmd.v info Term.(const run $ entities_arg $ seed_arg $ schema_out_arg $ output_arg)

(* ---------- main -------------------------------------------------------------- *)

let () =
  let info =
    Cmd.info "rdfviews" ~version:"1.0.0"
      ~doc:"Materialized view selection for Semantic Web databases."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ select_cmd; check_cmd; report_cmd; top_cmd; reformulate_cmd;
            saturate_cmd; eval_cmd; generate_cmd; barton_cmd ]))
