open Support

(* End-to-end: run the selector in every reasoning scenario, materialize
   the recommended views, execute the rewritings and compare against
   direct evaluation on the (saturated) database.  This is the paper's
   central promise: all workload queries are answered from the views
   alone, reflecting implicit triples (§1 contribution 1 + 2). *)

let schema =
  Rdf.Schema.of_statements
    [
      Rdf.Schema.Subclass (uri "ex:painting", uri "ex:picture");
      Rdf.Schema.Subproperty (uri "ex:isExpIn", uri "ex:isLocatIn");
      Rdf.Schema.Range (uri "ex:hasPainted", uri "ex:painting");
    ]

let data_store () =
  store_of
    [
      triple (uri "ex:mona") rdf_type (uri "ex:painting");
      triple (uri "ex:guernica") rdf_type (uri "ex:picture");
      triple (uri "ex:mona") (uri "ex:isExpIn") (uri "ex:louvre");
      triple (uri "ex:guernica") (uri "ex:isLocatIn") (uri "ex:reina");
      triple (uri "ex:daVinci") (uri "ex:hasPainted") (uri "ex:mona");
      triple (uri "ex:picasso") (uri "ex:hasPainted") (uri "ex:guernica");
      triple (uri "ex:sunflower") rdf_type (uri "ex:painting");
      triple (uri "ex:sunflower") (uri "ex:isExpIn") (uri "ex:orsay");
    ]

(* §3.3's example query: pictures and where they are located *)
let q_pictures =
  cq ~name:"qpic"
    [ v "X1"; v "X2" ]
    [
      atom (v "X1") (Query.Qterm.Cst rdf_type) (c "ex:picture");
      atom (v "X1") (c "ex:isLocatIn") (v "X2");
    ]

let q_painters =
  cq ~name:"qptr"
    [ v "P"; v "W" ]
    [ atom (v "P") (c "ex:hasPainted") (v "W") ]

let workload = [ q_pictures; q_painters ]

let options =
  { Core.Search.default_options with time_budget = Some 2.0 }

let expected_answers () =
  (* ground truth: evaluation on the saturated database *)
  let saturated = Rdf.Entailment.saturated_copy (data_store ()) schema in
  List.map (fun q -> (q.Query.Cq.name, Query.Evaluation.eval_cq saturated q)) workload

let run_scenario reasoning =
  let store = data_store () in
  Core.Selector.select ~store ~reasoning ~options workload

let check_scenario_complete reasoning =
  let result = run_scenario reasoning in
  let env =
    Engine.Materialize.materialize_views
      result.Core.Selector.store_for_materialization result.Core.Selector.recommended
  in
  List.iter
    (fun (qname, expected) ->
      let via =
        Engine.Executor.execute_query result.Core.Selector.store_for_materialization
          env
          (List.assoc qname result.Core.Selector.rewritings)
      in
      if not (same_answers expected via) then
        Alcotest.failf "%s: incomplete answers under %s" qname
          (Core.Selector.reasoning_name reasoning))
    (expected_answers ())

let test_saturation_complete () = check_scenario_complete (Core.Selector.Saturation schema)

let test_post_reformulation_complete () =
  check_scenario_complete (Core.Selector.Post_reformulation schema)

let test_pre_reformulation_complete () =
  check_scenario_complete (Core.Selector.Pre_reformulation schema)

let test_no_reasoning_misses_implicit () =
  (* sanity: without reasoning, implicit answers are (correctly) absent *)
  let result = run_scenario Core.Selector.No_reasoning in
  let store = result.Core.Selector.store_for_materialization in
  let env = Engine.Materialize.materialize_views store result.Core.Selector.recommended in
  let via =
    Engine.Executor.execute_query store env
      (List.assoc "qpic" result.Core.Selector.rewritings)
  in
  let direct = Query.Evaluation.eval_cq store q_pictures in
  check_bool "matches plain evaluation" true (same_answers via direct);
  let _, expected = List.hd (expected_answers ()) in
  check_bool "fewer answers than with reasoning" true
    (List.length via < List.length expected)

let test_saturation_and_post_agree () =
  (* §6.5: "The views recommended in a saturation and a
     post-reformulation context are the same." *)
  let sat = run_scenario (Core.Selector.Saturation schema) in
  let post = run_scenario (Core.Selector.Post_reformulation schema) in
  let key r =
    Core.State.key_string r.Core.Selector.report.Core.Search.best
  in
  check_string "same best view set" (key sat) (key post);
  check_bool "same best cost" true
    (abs_float
       (sat.Core.Selector.report.Core.Search.best_cost
       -. post.Core.Selector.report.Core.Search.best_cost)
    < 1e-6)

let test_post_reformulation_views_are_ucqs () =
  let post = run_scenario (Core.Selector.Post_reformulation schema) in
  (* at least one recommended view must have picked up implicit variants *)
  check_bool "some view reformulated" true
    (List.exists
       (fun u -> Query.Ucq.cardinal u > 1)
       post.Core.Selector.recommended)

let test_pre_reformulation_initial_state_is_union () =
  let store = data_store () in
  let groups =
    List.map
      (fun q ->
        (q.Query.Cq.name, Query.Ucq.disjuncts (Query.Reformulation.reformulate q schema)))
      workload
  in
  let state = Core.State.initial_union groups in
  check_bool "invariants" true (Core.State.invariants_hold state);
  check_bool "more views than queries" true
    (List.length state.Core.State.views > List.length workload);
  ignore store

(* ---------- offline client scenario --------------------------------------- *)

let test_views_answer_without_database () =
  (* the three-tier motivation of §1: after materialization, the original
     store is not consulted — we delete it and still answer *)
  let result = run_scenario (Core.Selector.Saturation schema) in
  let store = result.Core.Selector.store_for_materialization in
  let env = Engine.Materialize.materialize_views store result.Core.Selector.recommended in
  let expected = expected_answers () in
  (* simulate losing the database: empty every triple *)
  List.iter (fun tr -> ignore (Rdf.Store.remove store tr)) (Rdf.Store.to_triples store);
  check_int "database gone" 0 (Rdf.Store.size store);
  List.iter
    (fun (qname, expected) ->
      let via =
        Engine.Executor.execute_query store env
          (List.assoc qname result.Core.Selector.rewritings)
      in
      check_bool (qname ^ " still answered") true (same_answers expected via))
    expected

(* ---------- barton-scale end-to-end ---------------------------------------- *)

let test_barton_end_to_end () =
  let store = Workload.Barton.store ~n_entities:150 ~seed:5 () in
  let schema = Workload.Barton.schema () in
  let queries =
    Workload.Generator.generate_satisfiable store
      {
        Workload.Generator.default_spec with
        n_queries = 3;
        atoms_per_query = 3;
        seed = 31;
      }
  in
  let saturated = Rdf.Entailment.saturated_copy store schema in
  let result =
    Core.Selector.select ~store
      ~reasoning:(Core.Selector.Post_reformulation schema)
      ~options:{ options with time_budget = Some 3.0 }
      queries
  in
  let env = Engine.Materialize.materialize_views store result.Core.Selector.recommended in
  List.iter
    (fun q ->
      let expected = Query.Evaluation.eval_cq saturated q in
      let via =
        Engine.Executor.execute_query store env
          (List.assoc q.Query.Cq.name result.Core.Selector.rewritings)
      in
      check_bool (q.Query.Cq.name ^ " complete") true (same_answers expected via))
    queries

(* ---------- randomized cross-scenario agreement ---------------------------- *)

let prop_scenarios_agree =
  QCheck.Test.make
    ~name:"all reasoning scenarios produce complete answers" ~count:25
    QCheck.(triple arb_store arb_schema (pair arb_cq arb_cq))
    (fun (store, schema, (qa, qb)) ->
      let workload = [ Query.Cq.rename qa "qa"; Query.Cq.rename qb "qb" ] in
      let saturated = Rdf.Entailment.saturated_copy store schema in
      let expected =
        List.map
          (fun q -> (q.Query.Cq.name, Query.Evaluation.eval_cq saturated q))
          workload
      in
      let opts =
        { Core.Search.default_options with
          time_budget = Some 0.3;
          max_states = Some 500 }
      in
      List.for_all
        (fun reasoning ->
          let result =
            Core.Selector.select ~store:(Rdf.Store.copy store) ~reasoning
              ~options:opts workload
          in
          let mstore = result.Core.Selector.store_for_materialization in
          let env =
            Engine.Materialize.materialize_views mstore
              result.Core.Selector.recommended
          in
          List.for_all
            (fun (qname, expected) ->
              let via =
                Engine.Executor.execute_query mstore env
                  (List.assoc qname result.Core.Selector.rewritings)
              in
              same_answers expected via)
            expected)
        [
          Core.Selector.Saturation schema;
          Core.Selector.Post_reformulation schema;
          Core.Selector.Pre_reformulation schema;
        ])

let () =
  Alcotest.run "integration"
    [
      ( "scenarios",
        [
          Alcotest.test_case "saturation answers completely" `Quick
            test_saturation_complete;
          Alcotest.test_case "post-reformulation answers completely" `Quick
            test_post_reformulation_complete;
          Alcotest.test_case "pre-reformulation answers completely" `Quick
            test_pre_reformulation_complete;
          Alcotest.test_case "no-reasoning misses implicit" `Quick
            test_no_reasoning_misses_implicit;
          Alcotest.test_case "saturation ≡ post-reformulation views" `Quick
            test_saturation_and_post_agree;
          Alcotest.test_case "post views are UCQs" `Quick
            test_post_reformulation_views_are_ucqs;
          Alcotest.test_case "pre-reformulation initial union" `Quick
            test_pre_reformulation_initial_state_is_union;
        ] );
      ( "offline",
        [
          Alcotest.test_case "views answer without the database" `Quick
            test_views_answer_without_database;
        ] );
      ( "barton",
        [ Alcotest.test_case "end to end" `Slow test_barton_end_to_end ] );
      ("random", [ to_alcotest prop_scenarios_agree ]);
    ]
