open Support

(* The interner and the interned-id state identity: id stability under
   renaming, key invariance under view permutation, and agreement of the
   incremental cost path with the full recompute over a large sample of
   real search states. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let estimator_for store =
  Core.Cost.create
    (Stats.Statistics.create ~mode:Stats.Statistics.Plain store)
    Core.Cost.default_weights

let q1_paper =
  cq ~name:"q1"
    [ v "X"; v "Z" ]
    [
      atom (v "X") (c "ex:hasPainted") (c "ex:starryNight");
      atom (v "X") (c "ex:isParentOf") (v "Y");
      atom (v "Y") (c "ex:hasPainted") (v "Z");
    ]

let museum_store =
  store_of
    [
      triple (uri "ex:vanGogh") (uri "ex:hasPainted") (uri "ex:starryNight");
      triple (uri "ex:vanGogh") (uri "ex:isParentOf") (uri "ex:vincentJr");
      triple (uri "ex:vincentJr") (uri "ex:hasPainted") (uri "ex:sunflowers2");
      triple (uri "ex:monet") (uri "ex:hasPainted") (uri "ex:waterLilies");
      triple (uri "ex:monet") (uri "ex:isParentOf") (uri "ex:michel");
      triple (uri "ex:michel") (uri "ex:hasPainted") (uri "ex:starryNight");
    ]

(* ---------- the interner itself ------------------------------------------ *)

let test_intern_basics () =
  let a = Core.Intern.of_canonical "test_intern:a" in
  let b = Core.Intern.of_canonical "test_intern:b" in
  check_bool "distinct strings get distinct ids" true (a <> b);
  check_int "interning is idempotent" a
    (Core.Intern.of_canonical "test_intern:a");
  check_string "ids map back to their string" "test_intern:a"
    (Core.Intern.canonical_of a);
  check_bool "mem sees interned strings" true (Core.Intern.mem "test_intern:a");
  check_bool "mem rejects unknown strings" false
    (Core.Intern.mem "test_intern:never-interned");
  check_bool "size counts both" true (Core.Intern.size () >= 2)

let test_canonical_of_bounds () =
  Alcotest.check_raises "out-of-range id rejected"
    (Invalid_argument "Intern.canonical_of: unknown id 1073741823") (fun () ->
      ignore (Core.Intern.canonical_of 0x3FFFFFFF))

(* ---------- id stability under renaming ---------------------------------- *)

(* Interned ids hang off the canonical form, which is
   variable-rename-invariant: a view and its freshened copy (all
   variables renamed) must intern to the same id even though their
   variable names share nothing. *)
let test_ids_stable_under_freshen () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"intern_id stable under freshen"
       (QCheck.make gen_cq) (fun q ->
         let v1 = Core.View.make q in
         let v2 = Core.View.make (Query.Cq.freshen q) in
         Core.View.intern_id v1 = Core.View.intern_id v2
         && Core.View.body_intern_id v1 = Core.View.body_intern_id v2))

let test_ids_distinguish_heads () =
  (* same body, different head: distinct view ids, same body id *)
  let q = q1_paper in
  let narrowed =
    cq ~name:"narrow" [ v "X" ] q.Query.Cq.body
  in
  let v1 = Core.View.make q in
  let v2 = Core.View.make narrowed in
  check_bool "head changes the view id" true
    (Core.View.intern_id v1 <> Core.View.intern_id v2);
  check_int "body id ignores the head"
    (Core.View.body_intern_id v1)
    (Core.View.body_intern_id v2)

(* ---------- key invariance under permutation ------------------------------ *)

let test_key_ignores_view_order () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"State.key ignores view order"
       QCheck.(make Gen.(pair (list_size (int_range 2 5) gen_cq) int))
       (fun (cqs, salt) ->
         (* distinct names, same definitions; skip degenerate workloads *)
         let views =
           List.mapi
             (fun i q ->
               Core.View.of_cq
                 (Query.Cq.make ~name:(Printf.sprintf "perm%d" i)
                    ~head:q.Query.Cq.head ~body:q.Query.Cq.body))
             cqs
         in
         let rewritings =
           List.mapi
             (fun i view ->
               (Printf.sprintf "q%d" i, Core.Rewriting.Scan (Core.View.name view)))
             views
         in
         let shuffled =
           (* deterministic pseudo-shuffle driven by the generated salt *)
           List.map snd
             (List.sort compare
                (List.mapi
                   (fun i view -> ((Hashtbl.hash (salt, i), i), view))
                   views))
         in
         let s1 = Core.State.make ~views ~rewritings in
         let s2 = Core.State.make ~views:shuffled ~rewritings in
         Core.State.equal_key (Core.State.key s1) (Core.State.key s2)
         && Core.State.hash_key (Core.State.key s1)
            = Core.State.hash_key (Core.State.key s2)
         && String.equal (Core.State.key_string s1) (Core.State.key_string s2)))

(* ---------- incremental vs full costing ---------------------------------- *)

(* Run real searches (DFS and EXSTR over random workloads) and, on every
   accepted state, compare the engine-memoized cost — produced by the
   incremental delta path — against a fresh full recompute.  500+ states
   give the delta/compose/chain-cap machinery a thorough shake. *)
let test_incremental_matches_full () =
  let checked = ref 0 in
  let run strategy seed =
    let workload =
      Workload.Generator.generate
        {
          Workload.Generator.default_spec with
          Workload.Generator.n_queries = 2;
          atoms_per_query = 3;
          seed;
        }
    in
    let estimator = estimator_for museum_store in
    let options =
      {
        Core.Search.default_options with
        strategy;
        max_states = Some 120;
        on_accept =
          Some
            (fun state ->
              incr checked;
              let memoized = Core.Cost.state_cost estimator state in
              let full = (Core.Cost.breakdown estimator state).Core.Cost.total in
              let scale = Float.max 1. (Float.max (abs_float memoized) (abs_float full)) in
              if abs_float (memoized -. full) > 1e-6 *. scale then
                Alcotest.failf
                  "seed %d: incremental cost %.12g <> full recompute %.12g on %s"
                  seed memoized full (Core.State.key_string state));
      }
    in
    ignore (Core.Search.run_from estimator options (Core.State.initial workload))
  in
  List.iter
    (fun seed ->
      run Core.Search.Dfs seed;
      run Core.Search.Exstr seed)
    [ 0; 1; 2; 3; 4 ];
  check_bool
    (Printf.sprintf "at least 500 states cross-checked (got %d)" !checked)
    true (!checked >= 500)

(* The memo must also hold the incremental results: memo_consistent is
   the invariant strict mode asserts per accepted state. *)
let test_memo_consistent_after_search () =
  let estimator = estimator_for museum_store in
  let inconsistent = ref 0 in
  let options =
    {
      Core.Search.default_options with
      max_states = Some 150;
      on_accept =
        Some
          (fun state ->
            if not (Core.Cost.memo_consistent estimator state) then
              incr inconsistent);
    }
  in
  ignore
    (Core.Search.run_from estimator options (Core.State.initial [ q1_paper ]));
  check_int "no memo inconsistencies" 0 !inconsistent;
  let hits, misses = Core.Cost.memo_counts estimator in
  check_bool "estimator counted hits" true (hits > 0);
  check_bool "estimator counted misses" true (misses > 0)

let () =
  Alcotest.run "intern"
    [
      ( "interner",
        [
          Alcotest.test_case "basics" `Quick test_intern_basics;
          Alcotest.test_case "bounds" `Quick test_canonical_of_bounds;
        ] );
      ( "stability",
        [
          Alcotest.test_case "ids stable under freshen" `Quick
            test_ids_stable_under_freshen;
          Alcotest.test_case "ids distinguish heads" `Quick
            test_ids_distinguish_heads;
          Alcotest.test_case "key ignores view order" `Quick
            test_key_ignores_view_order;
        ] );
      ( "incremental cost",
        [
          Alcotest.test_case "matches full recompute on 500+ states" `Quick
            test_incremental_matches_full;
          Alcotest.test_case "memo consistent after search" `Quick
            test_memo_consistent_after_search;
        ] );
    ]
