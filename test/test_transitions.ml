open Support

let q1_paper =
  cq ~name:"q1"
    [ v "X"; v "Z" ]
    [
      atom (v "X") (c "ex:hasPainted") (c "ex:starryNight");
      atom (v "X") (c "ex:isParentOf") (v "Y");
      atom (v "Y") (c "ex:hasPainted") (v "Z");
    ]

let museum_store =
  store_of
    [
      triple (uri "ex:vanGogh") (uri "ex:hasPainted") (uri "ex:starryNight");
      triple (uri "ex:vanGogh") (uri "ex:isParentOf") (uri "ex:vincentJr");
      triple (uri "ex:vincentJr") (uri "ex:hasPainted") (uri "ex:sunflowers2");
      triple (uri "ex:monet") (uri "ex:hasPainted") (uri "ex:waterLilies");
      triple (uri "ex:monet") (uri "ex:isParentOf") (uri "ex:michel");
      triple (uri "ex:michel") (uri "ex:hasPainted") (uri "ex:starryNight");
    ]

(* ---------- state graph -------------------------------------------------- *)

let test_join_edges () =
  let edges = Core.State_graph.join_edges q1_paper in
  (* X joins atoms 0-1 on s; Y joins atoms 1-2 (o,s) *)
  check_int "two join edges" 2 (List.length edges);
  let vars = List.map (fun (e : Core.State_graph.join_edge) -> e.var) edges in
  check_bool "X edge" true (List.mem "X" vars);
  check_bool "Y edge" true (List.mem "Y" vars)

let test_selection_edges () =
  let edges = Core.State_graph.selection_edges q1_paper in
  (* hasPainted ×2, isParentOf, starryNight *)
  check_int "four selection edges" 4 (List.length edges)

let test_connected_subsets () =
  check_bool "0,1 connected" true
    (Core.State_graph.is_connected_subset q1_paper [ 0; 1 ]);
  check_bool "0,2 disconnected" false
    (Core.State_graph.is_connected_subset q1_paper [ 0; 2 ]);
  check_bool "all connected" true
    (Core.State_graph.is_connected_subset q1_paper [ 0; 1; 2 ])

let test_components_without_edge () =
  let edges = Core.State_graph.join_edges q1_paper in
  List.iter
    (fun e ->
      check_int
        ("cutting " ^ Core.State_graph.edge_to_string e)
        2
        (List.length (Core.State_graph.components_without_edge q1_paper e)))
    edges

let test_multi_edge_survives_cut () =
  (* two atoms sharing two variables: cutting one edge keeps them joined *)
  let q =
    cq [ v "X" ]
      [ atom (v "X") (c "ex:p") (v "Y"); atom (v "Y") (c "ex:q") (v "X") ]
  in
  let edges = Core.State_graph.join_edges q in
  check_int "two edges" 2 (List.length edges);
  List.iter
    (fun e ->
      check_int "still one component" 1
        (List.length (Core.State_graph.components_without_edge q e)))
    edges

(* ---------- states ------------------------------------------------------- *)

let test_initial_state () =
  let s = Core.State.initial [ q1_paper ] in
  check_int "one view" 1 (List.length s.Core.State.views);
  check_int "one rewriting" 1 (List.length s.Core.State.rewritings);
  check_bool "invariants" true (Core.State.invariants_hold s);
  match s.Core.State.rewritings with
  | [ (name, Core.Rewriting.Scan _) ] -> check_string "query name" "q1" name
  | _ -> Alcotest.fail "expected a single scan rewriting"

let test_state_key_stable () =
  let s1 = Core.State.initial [ q1_paper ] in
  let s2 = Core.State.initial [ q1_paper ] in
  check_string "same key despite fresh names" (Core.State.key_string s1)
    (Core.State.key_string s2)

let test_duplicate_query_names_rejected () =
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "State.initial: duplicate query names") (fun () ->
      ignore (Core.State.initial [ q1_paper; q1_paper ]))

(* ---------- executing rewritings after transitions ----------------------- *)

let answers_direct store q = Query.Evaluation.eval_cq store q

let answers_via_views store state qname =
  let env = Engine.Materialize.materialize_state store state in
  let rewriting = List.assoc qname state.Core.State.rewritings in
  Engine.Executor.execute_query store env rewriting

let check_state_equivalent store workload state =
  check_bool "invariants hold" true (Core.State.invariants_hold state);
  List.iter
    (fun q ->
      let direct = answers_direct store q in
      let via = answers_via_views store state q.Query.Cq.name in
      if not (same_answers direct via) then
        Alcotest.failf "rewriting of %s diverges:\nstate: %s" q.Query.Cq.name
          (Core.State.to_string state))
    workload

let test_sc_preserves_answers () =
  let s0 = Core.State.initial [ q1_paper ] in
  let cuts = Core.Transition.successors s0 SC in
  check_int "one SC per selection edge" 4 (List.length cuts);
  List.iter (check_state_equivalent museum_store [ q1_paper ]) cuts

let test_sc_grows_head () =
  let s0 = Core.State.initial [ q1_paper ] in
  List.iter
    (fun s ->
      match s.Core.State.views with
      | [ view ] ->
        check_int "arity + 1" 3 (List.length (Core.View.head view));
        check_int "constants - 1" 3 (Query.Cq.constant_count view.Core.View.cq)
      | _ -> Alcotest.fail "expected one view")
    (Core.Transition.successors s0 SC)

let test_jc_cases () =
  let s0 = Core.State.initial [ q1_paper ] in
  let cuts = Core.Transition.successors s0 JC in
  (* each of the two edges is a bridge: split case only, one state each *)
  check_int "two JC states" 2 (List.length cuts);
  List.iter
    (fun s -> check_int "two views after split" 2 (List.length s.Core.State.views))
    cuts;
  List.iter (check_state_equivalent museum_store [ q1_paper ]) cuts

let test_jc_connected_case () =
  (* triangle: every edge cut leaves the graph connected *)
  let tri =
    cq ~name:"tri" [ v "X" ]
      [
        atom (v "X") (c "ex:p") (v "Y");
        atom (v "Y") (c "ex:p") (v "Z");
        atom (v "Z") (c "ex:p") (v "X");
      ]
  in
  let store =
    store_of
      [
        triple (uri "a") (uri "ex:p") (uri "b");
        triple (uri "b") (uri "ex:p") (uri "c");
        triple (uri "c") (uri "ex:p") (uri "a");
        triple (uri "b") (uri "ex:p") (uri "a");
      ]
  in
  let s0 = Core.State.initial [ tri ] in
  let cuts = Core.Transition.successors s0 JC in
  (* 3 edges × 2 orientations *)
  check_int "six JC states" 6 (List.length cuts);
  List.iter
    (fun s -> check_int "one view" 1 (List.length s.Core.State.views))
    cuts;
  List.iter (check_state_equivalent store [ tri ]) cuts

let test_vb_counts_and_answers () =
  let s0 = Core.State.initial [ q1_paper ] in
  let breaks = Core.Transition.successors s0 VB in
  check_bool "some breaks exist" true (List.length breaks > 0);
  List.iter
    (fun s -> check_int "two views" 2 (List.length s.Core.State.views))
    breaks;
  List.iter (check_state_equivalent museum_store [ q1_paper ]) breaks

let test_vb_requires_three_atoms () =
  let two =
    cq ~name:"two" [ v "X" ]
      [ atom (v "X") (c "ex:p") (v "Y"); atom (v "Y") (c "ex:q") (c "ex:k") ]
  in
  let s0 = Core.State.initial [ two ] in
  check_int "no VB on 2 atoms" 0 (List.length (Core.Transition.successors s0 VB))

let test_vf_on_isomorphic_views () =
  (* two identical queries under renaming: initial views fuse *)
  let qa = cq ~name:"qa" [ v "X" ] [ atom (v "X") (c "ex:p") (c "ex:k") ] in
  let qb = cq ~name:"qb" [ v "A" ] [ atom (v "A") (c "ex:p") (c "ex:k") ] in
  let store =
    store_of
      [ triple (uri "s1") (uri "ex:p") (uri "ex:k");
        triple (uri "s2") (uri "ex:p") (uri "ex:m") ]
  in
  let s0 = Core.State.initial [ qa; qb ] in
  let fusions = Core.Transition.successors s0 VF in
  check_int "one fusion" 1 (List.length fusions);
  let fused = List.hd fusions in
  check_int "one view left" 1 (List.length fused.Core.State.views);
  check_state_equivalent store [ qa; qb ] fused;
  (* fusion_closure reaches the same state *)
  let closed = Core.Transition.fusion_closure s0 in
  check_string "closure = fusion" (Core.State.key_string fused)
    (Core.State.key_string closed)

let test_vf_head_union () =
  (* same body, different heads: fused view exports both *)
  let qa = cq ~name:"qa" [ v "X" ] [ atom (v "X") (c "ex:p") (v "Y") ] in
  let qb = cq ~name:"qb" [ v "B" ] [ atom (v "A") (c "ex:p") (v "B") ] in
  let store =
    store_of [ triple (uri "s1") (uri "ex:p") (uri "o1") ]
  in
  let s0 = Core.State.initial [ qa; qb ] in
  let fusions = Core.Transition.successors s0 VF in
  check_int "one fusion" 1 (List.length fusions);
  let fused = List.hd fusions in
  (match fused.Core.State.views with
  | [ view ] -> check_int "two head vars" 2 (List.length (Core.View.head view))
  | _ -> Alcotest.fail "expected one view");
  check_state_equivalent store [ qa; qb ] fused

(* ---------- figure 1 sequence ------------------------------------------- *)

let test_figure1_sequence () =
  (* S0 --VB--> S1 --SC--> S2 --JC--> ... --VF--> S4-like states, checking
     answer preservation at every step *)
  let workload = [ q1_paper ] in
  let state = ref (Core.State.initial workload) in
  let pick kind =
    match Core.Transition.successors !state kind with
    | s :: _ ->
      state := s;
      check_state_equivalent museum_store workload s
    | [] -> Alcotest.failf "no %s successor" (Core.Transition.kind_name kind)
  in
  pick VB;
  pick SC;
  pick JC;
  check_bool "invariants at the end" true (Core.State.invariants_hold !state)

(* ---------- random-walk equivalence (the big one) ------------------------ *)

let prop_random_walk_preserves_answers =
  QCheck.Test.make
    ~name:"random transition walks preserve query answers via materialization"
    ~count:60
    QCheck.(
      triple arb_store (pair arb_cq arb_cq) (list_of_size (Gen.return 5) small_nat))
    (fun (store, (qa, qb), choices) ->
      let qa = Query.Cq.rename qa "qa" in
      let qb = Query.Cq.rename qb "qb" in
      let workload = [ qa; qb ] in
      let state = ref (Core.State.initial workload) in
      let ok = ref true in
      List.iteri
        (fun i choice ->
          let kind =
            List.nth Core.Transition.all_kinds (i mod 4)
          in
          match Core.Transition.successors !state kind with
          | [] -> ()
          | succs -> state := List.nth succs (choice mod List.length succs))
        choices;
      let env = Engine.Materialize.materialize_state store !state in
      List.iter
        (fun q ->
          let direct = answers_direct store q in
          let via =
            Engine.Executor.execute_query store env
              (List.assoc q.Query.Cq.name !state.Core.State.rewritings)
          in
          if not (same_answers direct via) then ok := false)
        workload;
      !ok && Core.State.invariants_hold !state)

(* ---------- cost monotonicity -------------------------------------------- *)

let estimator_for store =
  let stats = Stats.Statistics.create store in
  Core.Cost.create stats Core.Cost.default_weights

let test_sc_increases_cost () =
  let est = estimator_for museum_store in
  let s0 = Core.State.initial [ q1_paper ] in
  let c0 = Core.Cost.state_cost est s0 in
  List.iter
    (fun s ->
      check_bool "SC does not decrease cost" true
        (Core.Cost.state_cost est s >= c0))
    (Core.Transition.successors s0 SC)

let test_vf_decreases_cost () =
  let qa = cq ~name:"qa" [ v "X" ] [ atom (v "X") (c "ex:hasPainted") (v "Y") ] in
  let qb = cq ~name:"qb" [ v "A" ] [ atom (v "A") (c "ex:hasPainted") (v "B") ] in
  let est = estimator_for museum_store in
  let s0 = Core.State.initial [ qa; qb ] in
  let c0 = Core.Cost.state_cost est s0 in
  List.iter
    (fun s ->
      check_bool "VF does not increase cost" true
        (Core.Cost.state_cost est s <= c0))
    (Core.Transition.successors s0 VF)

(* For single-atom views the claim of §3.3 ("SC always increases the
   state cost") is provable: the relaxed pattern count is exactly
   monotone, the head widens and a selection is added.  For multi-atom
   views the System-R independence estimator is only generically
   monotone: relaxing a property constant switches the per-position
   distinct estimates from per-property to global statistics, which can
   make join selectivities shrink faster than the atom count grows.  The
   exact claim is exercised on single-atom views here and on a concrete
   multi-atom example in [test_sc_increases_cost]. *)
let prop_sc_never_decreases =
  QCheck.Test.make ~name:"SC never decreases the cost of 1-atom views"
    ~count:80
    QCheck.(pair arb_store arb_cq)
    (fun (store, q) ->
      let single =
        Query.Cq.make ~name:"q"
          ~head:(List.map (fun x -> Query.Qterm.Var x)
                   (Query.Atom.var_set (List.hd q.Query.Cq.body)))
          ~body:[ List.hd q.Query.Cq.body ]
      in
      let est = estimator_for store in
      let s0 = Core.State.initial [ single ] in
      let c0 = Core.Cost.state_cost est s0 in
      List.for_all
        (fun s -> Core.Cost.state_cost est s >= c0 -. 1e-6)
        (Core.Transition.successors s0 SC))

let prop_vf_never_increases =
  QCheck.Test.make ~name:"VF never increases the state cost" ~count:50
    QCheck.(pair arb_store arb_cq)
    (fun (store, q) ->
      let est = estimator_for store in
      let qa = Query.Cq.rename q "qa" in
      let qb = Query.Cq.rename (Query.Cq.freshen q) "qb" in
      let s0 = Core.State.initial [ qa; qb ] in
      let c0 = Core.Cost.state_cost est s0 in
      List.for_all
        (fun s -> Core.Cost.state_cost est s <= c0 +. 1e-6)
        (Core.Transition.successors s0 VF))

let () =
  Alcotest.run "transitions"
    [
      ( "state-graph",
        [
          Alcotest.test_case "join edges" `Quick test_join_edges;
          Alcotest.test_case "selection edges" `Quick test_selection_edges;
          Alcotest.test_case "connected subsets" `Quick test_connected_subsets;
          Alcotest.test_case "bridge cuts split" `Quick
            test_components_without_edge;
          Alcotest.test_case "multi-edges survive" `Quick
            test_multi_edge_survives_cut;
        ] );
      ( "state",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "key stability" `Quick test_state_key_stable;
          Alcotest.test_case "duplicate names rejected" `Quick
            test_duplicate_query_names_rejected;
        ] );
      ( "transitions",
        [
          Alcotest.test_case "SC preserves answers" `Quick
            test_sc_preserves_answers;
          Alcotest.test_case "SC grows the head" `Quick test_sc_grows_head;
          Alcotest.test_case "JC split case" `Quick test_jc_cases;
          Alcotest.test_case "JC connected case" `Quick test_jc_connected_case;
          Alcotest.test_case "VB preserves answers" `Quick
            test_vb_counts_and_answers;
          Alcotest.test_case "VB needs ≥3 atoms" `Quick
            test_vb_requires_three_atoms;
          Alcotest.test_case "VF fuses isomorphic views" `Quick
            test_vf_on_isomorphic_views;
          Alcotest.test_case "VF head union" `Quick test_vf_head_union;
          Alcotest.test_case "figure 1 sequence" `Quick test_figure1_sequence;
          to_alcotest prop_random_walk_preserves_answers;
        ] );
      ( "cost",
        [
          Alcotest.test_case "SC increases cost" `Quick test_sc_increases_cost;
          Alcotest.test_case "VF decreases cost" `Quick test_vf_decreases_cost;
          to_alcotest prop_sc_never_decreases;
          to_alcotest prop_vf_never_increases;
        ] );
    ]
