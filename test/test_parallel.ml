open Support

(* Parallel search: deterministic-mode equivalence with the sequential
   engine, free-mode fixpoint agreement, the sharded interner under
   domain contention, and Obs registry merging.  Everything involving
   actual domains is gated on [Multicore.available] so the suite also
   passes on a sequential-only (OCaml 4.x) build. *)

let stats_for store = Stats.Statistics.create store

let det = Core.Parallel_search.Deterministic
let free = Core.Parallel_search.Free

let fig3_query =
  cq ~name:"q"
    [ v "Y"; v "Z" ]
    [ atom (v "X") (v "Y") (c "ex:c1"); atom (v "X") (v "Z") (c "ex:c2") ]

let fig3_store =
  store_of
    [
      triple (uri "s1") (uri "p1") (uri "ex:c1");
      triple (uri "s1") (uri "p2") (uri "ex:c2");
      triple (uri "s2") (uri "p1") (uri "ex:c1");
      triple (uri "s2") (uri "p1") (uri "ex:c2");
      triple (uri "s3") (uri "p3") (uri "other");
    ]

let two_queries =
  [
    Query.Cq.rename fig3_query "qa";
    cq ~name:"qb"
      [ v "Y" ]
      [ atom (v "X") (v "Y") (c "ex:c1") ];
  ]

(* Collect the key strings of accepted states; free mode calls the hook
   from any domain, so the collection is lock-protected. *)
let accept_collector () =
  let lock = Multicore.Spinlock.create () in
  let acc = ref [] in
  let hook state =
    Multicore.Spinlock.with_lock lock (fun () ->
        acc := Core.State.key_string state :: !acc)
  in
  (hook, fun () -> List.sort_uniq String.compare !acc)

let run_one ~jobs ~mode strategy workload =
  let hook, keys = accept_collector () in
  let options =
    {
      Core.Search.default_options with
      strategy;
      avf = true;
      max_states = Some 5000;
      on_accept = Some hook;
    }
  in
  let report =
    Core.Parallel_search.run ~jobs ~mode (stats_for fig3_store) options
      workload
  in
  (report, keys ())

(* ---------- deterministic mode: identical reports ------------------------- *)

let check_det_equivalent strategy workload =
  let seq, seq_keys = run_one ~jobs:1 ~mode:det strategy workload in
  let par, par_keys = run_one ~jobs:4 ~mode:det strategy workload in
  let name = Core.Search.strategy_name strategy in
  check_int (name ^ " created") seq.Core.Search.created par.Core.Search.created;
  check_int
    (name ^ " duplicates")
    seq.Core.Search.duplicates par.Core.Search.duplicates;
  check_int
    (name ^ " discarded")
    seq.Core.Search.discarded par.Core.Search.discarded;
  check_int
    (name ^ " explored")
    seq.Core.Search.explored par.Core.Search.explored;
  check_bool
    (name ^ " completed")
    seq.Core.Search.completed par.Core.Search.completed;
  Alcotest.(check (float 1e-9))
    (name ^ " best cost") seq.Core.Search.best_cost par.Core.Search.best_cost;
  Alcotest.(check (list string)) (name ^ " accepted set") seq_keys par_keys

let test_det_matches_sequential () =
  List.iter
    (fun strategy ->
      check_det_equivalent strategy [ fig3_query ];
      check_det_equivalent strategy two_queries)
    [ Core.Search.Exnaive; Core.Search.Exstr; Core.Search.Dfs ]

let test_gstr_falls_back () =
  (* GSTR routes to the sequential engine under any job count *)
  let seq, _ = run_one ~jobs:1 ~mode:det Core.Search.Gstr [ fig3_query ] in
  let par, _ = run_one ~jobs:4 ~mode:det Core.Search.Gstr [ fig3_query ] in
  check_int "gstr created" seq.Core.Search.created par.Core.Search.created;
  Alcotest.(check (float 1e-9))
    "gstr best cost" seq.Core.Search.best_cost par.Core.Search.best_cost

let prop_det_matches_sequential =
  QCheck.Test.make ~name:"deterministic parallel ≡ sequential (random workloads)"
    ~count:20
    QCheck.(pair arb_store (pair arb_cq arb_cq))
    (fun (store, (qa, qb)) ->
      let workload = [ Query.Cq.rename qa "qa"; Query.Cq.rename qb "qb" ] in
      let options =
        {
          Core.Search.default_options with
          strategy = Core.Search.Dfs;
          max_states = Some 400;
        }
      in
      let seq = Core.Search.run (stats_for store) options workload in
      let par =
        Core.Parallel_search.run ~jobs:3 ~mode:det (stats_for store)
          options workload
      in
      seq.Core.Search.created = par.Core.Search.created
      && seq.Core.Search.duplicates = par.Core.Search.duplicates
      && seq.Core.Search.discarded = par.Core.Search.discarded
      && seq.Core.Search.explored = par.Core.Search.explored
      && seq.Core.Search.completed = par.Core.Search.completed
      && Float.abs (seq.Core.Search.best_cost -. par.Core.Search.best_cost)
         <= 1e-9)

(* ---------- free mode: same fixpoint on completed runs -------------------- *)

let test_free_same_fixpoint () =
  List.iter
    (fun strategy ->
      let seq, seq_keys = run_one ~jobs:1 ~mode:free strategy two_queries in
      let par, par_keys = run_one ~jobs:4 ~mode:free strategy two_queries in
      let name = Core.Search.strategy_name strategy in
      check_bool (name ^ " seq completed") true seq.Core.Search.completed;
      check_bool (name ^ " par completed") true par.Core.Search.completed;
      Alcotest.(check (list string))
        (name ^ " accepted set") seq_keys par_keys;
      check_bool
        (name ^ " best cost agrees")
        true
        (Float.abs (seq.Core.Search.best_cost -. par.Core.Search.best_cost)
        <= 1e-6 *. Float.max 1. (Float.abs seq.Core.Search.best_cost)))
    [ Core.Search.Exnaive; Core.Search.Exstr; Core.Search.Dfs ]

(* ---------- the sharded interner under contention ------------------------- *)

let test_intern_stress () =
  if Multicore.available then begin
    Core.Intern.reset ();
    let domains = 4 and per_domain = 2000 in
    let work d () =
      (* overlapping key space across domains: ids must agree *)
      List.init per_domain (fun i ->
          let s = Printf.sprintf "view<%d>" ((i + (d * 7)) mod 500) in
          (s, Core.Intern.of_canonical s))
    in
    let handles =
      List.init (domains - 1) (fun d -> Multicore.spawn (work (d + 1)))
    in
    let mine = work 0 () in
    let all = mine @ List.concat_map Multicore.join handles in
    List.iter
      (fun (s, id) ->
        check_int ("stable id for " ^ s) (Core.Intern.of_canonical s) id;
        Alcotest.(check string) "round trip" s (Core.Intern.canonical_of id))
      all;
    check_int "distinct strings" 500 (Core.Intern.size ())
  end

(* ---------- Obs registry merging ------------------------------------------ *)

let test_obs_merge_counters () =
  let a = Obs.create () and b = Obs.create () in
  for _ = 1 to 3 do Obs.incr (Obs.counter a "n") done;
  for _ = 1 to 5 do Obs.incr (Obs.counter b "n") done;
  Obs.incr (Obs.counter b "only-b");
  Obs.observe (Obs.histogram a "h") 100;
  Obs.observe (Obs.histogram b "h") 200;
  Obs.time (Obs.timer b "t") (fun () -> ());
  Obs.merge_into ~into:a b;
  check_int "summed counter" 8 (Option.get (Obs.find_counter a "n"));
  check_int "adopted counter" 1 (Option.get (Obs.find_counter a "only-b"));
  check_int "histogram events" 2
    (Obs.histogram_count (Option.get (Obs.find_histogram a "h")));
  check_int "histogram sum" 300
    (Obs.histogram_sum (Option.get (Obs.find_histogram a "h")));
  let calls, _ns = Option.get (Obs.find_timer a "t") in
  check_int "timer calls" 1 calls

let test_obs_merge_gauges () =
  let a = Obs.create () and b = Obs.create () in
  Obs.set_gauge (Obs.gauge a "set-in-both" ) 1.;
  Obs.set_gauge (Obs.gauge b "set-in-both") 2.;
  Obs.set_gauge (Obs.gauge b "only-src") 3.;
  Obs.merge_into ~into:a b;
  check_bool "destination gauge wins" true
    (Option.get (Obs.find_gauge a "set-in-both") = 1.);
  check_bool "unset gauge adopted" true
    (Option.get (Obs.find_gauge a "only-src") = 3.)

let test_obs_merge_spans () =
  let a = Obs.create () and b = Obs.create () in
  Obs.span a "root" (fun () -> ());
  Obs.span b "worker" (fun () -> ());
  Obs.merge_into ~into:a b;
  let names = List.map (fun s -> s.Obs.span_name) (Obs.spans a) in
  check_int "both spans present" 2 (List.length names);
  check_bool "worker span merged" true (List.mem "worker" names)

let test_obs_merge_disabled () =
  let a = Obs.create () in
  Obs.incr (Obs.counter a "n");
  Obs.merge_into ~into:a Obs.disabled;
  Obs.merge_into ~into:Obs.disabled a;
  check_int "unchanged" 1 (Option.get (Obs.find_counter a "n"))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "parallel"
    [
      ( "deterministic mode",
        [
          Alcotest.test_case "fixed workloads, all strategies" `Quick
            test_det_matches_sequential;
          Alcotest.test_case "gstr falls back" `Quick test_gstr_falls_back;
          qt prop_det_matches_sequential;
        ] );
      ( "free mode",
        [ Alcotest.test_case "same fixpoint" `Quick test_free_same_fixpoint ] );
      ( "interning",
        [ Alcotest.test_case "4-domain stress" `Quick test_intern_stress ] );
      ( "obs merge",
        [
          Alcotest.test_case "counters/timers/histograms" `Quick
            test_obs_merge_counters;
          Alcotest.test_case "gauges" `Quick test_obs_merge_gauges;
          Alcotest.test_case "spans" `Quick test_obs_merge_spans;
          Alcotest.test_case "disabled" `Quick test_obs_merge_disabled;
        ] );
    ]
