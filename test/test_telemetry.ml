(* Live telemetry: the Prometheus exposition round-trip, the snapshot
   ring, registry merging under real concurrent domains, the
   runtime-events consumer and the periodic exporter.  Everything that
   needs actual domains or Runtime_events is gated on the respective
   [available] flag so the suite also passes on an OCaml 4.x build. *)

let approx = Alcotest.float 1e-9

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub haystack i nn) needle || go (i + 1)) in
  nn = 0 || go 0

(* A registry with one of everything, with known values. *)
let sample_registry () =
  let t = Obs.create () in
  Obs.add (Obs.counter t "search.created") 42;
  Obs.add (Obs.counter t "parallel.domain.0.work_ns") 1000;
  Obs.add (Obs.counter t "parallel.domain.1.work_ns") 2000;
  Obs.set_gauge (Obs.gauge t "search.best_cost") 559.25;
  let tm = Obs.timer t "search.run" in
  Obs.time tm (fun () -> ());
  let h = Obs.histogram t "search.expand.ns" in
  Obs.observe h 0;
  (* bucket 0 *)
  Obs.observe h 3;
  (* le 4 *)
  Obs.observe h 1000;
  (* le 1024 *)
  t

let families_of t = Obs.Export.parse_exposition (Obs.Export.exposition t)

let test_roundtrip_counter_gauge () =
  let fams = families_of (sample_registry ()) in
  Alcotest.(check (option approx))
    "counter value" (Some 42.)
    (Obs.Export.sample_value fams "rdfviews_search_created_total");
  Alcotest.(check (option approx))
    "gauge value" (Some 559.25)
    (Obs.Export.sample_value fams "rdfviews_search_best_cost");
  (* the timer splits into two counters *)
  Alcotest.(check (option approx))
    "timer calls" (Some 1.)
    (Obs.Export.sample_value fams "rdfviews_search_run_calls_total");
  match Obs.Export.find_family fams "rdfviews_search_run_ns_total" with
  | Some f -> Alcotest.(check string) "timer type" "counter" f.Obs.Export.f_type
  | None -> Alcotest.fail "timer family missing"

let test_roundtrip_histogram () =
  let fams = families_of (sample_registry ()) in
  match Obs.Export.find_family fams "rdfviews_search_expand_ns" with
  | None -> Alcotest.fail "histogram family missing"
  | Some f ->
    Alcotest.(check string) "type" "histogram" f.Obs.Export.f_type;
    Alcotest.(check (option approx))
      "count" (Some 3.)
      (Obs.Export.sample_value fams "rdfviews_search_expand_ns_count");
    Alcotest.(check (option approx))
      "sum" (Some 1003.)
      (Obs.Export.sample_value fams "rdfviews_search_expand_ns_sum");
    (* cumulative buckets: le="0" holds the <=0 sample, le="4" that plus
       the sample at 3, +Inf everything *)
    let at le =
      Obs.Export.sample_value ~labels:[ ("le", le) ] fams
        "rdfviews_search_expand_ns_bucket"
    in
    Alcotest.(check (option approx)) "le=0" (Some 1.) (at "0");
    Alcotest.(check (option approx)) "le=4" (Some 2.) (at "4");
    Alcotest.(check (option approx)) "le=1024" (Some 3.) (at "1024");
    Alcotest.(check (option approx)) "le=+Inf" (Some 3.) (at "+Inf");
    (* bucket monotonicity across the whole family *)
    let buckets =
      List.filter
        (fun s ->
          String.equal s.Obs.Export.s_name "rdfviews_search_expand_ns_bucket")
        f.Obs.Export.f_samples
    in
    ignore
      (List.fold_left
         (fun prev s ->
           if s.Obs.Export.s_value < prev then
             Alcotest.fail "histogram buckets not monotone";
           s.Obs.Export.s_value)
         0. buckets)

let test_domain_labels () =
  let fams = families_of (sample_registry ()) in
  (* parallel.domain.<i>.work_ns series collapse into one family with a
     domain label *)
  match Obs.Export.find_family fams "rdfviews_parallel_work_ns_total" with
  | None -> Alcotest.fail "domain-labelled family missing"
  | Some f ->
    Alcotest.(check int) "two series" 2 (List.length f.Obs.Export.f_samples);
    Alcotest.(check (option approx))
      "domain 0" (Some 1000.)
      (Obs.Export.sample_value
         ~labels:[ ("domain", "0") ]
         fams "rdfviews_parallel_work_ns_total");
    Alcotest.(check (option approx))
      "domain 1" (Some 2000.)
      (Obs.Export.sample_value
         ~labels:[ ("domain", "1") ]
         fams "rdfviews_parallel_work_ns_total")

let test_mangling () =
  let t = Obs.create () in
  Obs.incr (Obs.counter t "weird-name.with:chars");
  let fams = families_of t in
  Alcotest.(check (option approx))
    "mangled" (Some 1.)
    (Obs.Export.sample_value fams "rdfviews_weird_name_with_chars_total")

let test_sniff () =
  Alcotest.(check bool)
    "exposition" true
    (Obs.Export.looks_like_exposition
       (Obs.Export.exposition (sample_registry ())));
  Alcotest.(check bool)
    "json is not" false
    (Obs.Export.looks_like_exposition "{\"schema_version\": 2}");
  Alcotest.(check bool)
    "trace is not" false
    (Obs.Export.looks_like_exposition "{\"event\":\"run_start\"}\n");
  Alcotest.(check bool)
    "leading blanks ok" true
    (Obs.Export.looks_like_exposition "\n\n# HELP x y\n")

let test_parse_errors () =
  Alcotest.check_raises "bad line"
    (Obs.Export.Bad_exposition "line 1: expected a metric name")
    (fun () -> ignore (Obs.Export.parse_exposition "{not an exposition}"))

(* ---------- snapshot ring ------------------------------------------------- *)

let snap_with value =
  let t = Obs.create () in
  Obs.add (Obs.counter t "tick") value;
  Obs.Export.snapshot t

let test_ring_bounds () =
  let ring = Obs.Export.ring_create 3 in
  Alcotest.(check int) "capacity" 3 (Obs.Export.ring_capacity ring);
  Alcotest.(check int) "empty" 0 (Obs.Export.ring_length ring);
  for i = 1 to 2 do
    Obs.Export.ring_push ring (snap_with i)
  done;
  Alcotest.(check int) "partial" 2 (Obs.Export.ring_length ring);
  for i = 3 to 7 do
    Obs.Export.ring_push ring (snap_with i)
  done;
  Alcotest.(check int) "full stays bounded" 3 (Obs.Export.ring_length ring);
  (* oldest first, and the oldest four were overwritten *)
  let ticks =
    List.map
      (fun s -> List.assoc "tick" s.Obs.Export.snap_counters)
      (Obs.Export.ring_to_list ring)
  in
  Alcotest.(check (list int)) "rotation" [ 5; 6; 7 ] ticks

let test_ring_min_capacity () =
  let ring = Obs.Export.ring_create 0 in
  Alcotest.(check int) "clamped" 1 (Obs.Export.ring_capacity ring);
  Obs.Export.ring_push ring (snap_with 1);
  Obs.Export.ring_push ring (snap_with 2);
  Alcotest.(check int) "length" 1 (Obs.Export.ring_length ring)

(* ---------- merge under real domains -------------------------------------- *)

(* Each domain mutates its own registry (the documented discipline);
   after the join the merged registry must equal the per-domain sum,
   histograms bucket-wise. *)
let test_merge_across_domains () =
  if not Multicore.available then ()
  else begin
    let n_domains = 4 and per_domain = 1000 in
    let handles =
      List.init n_domains (fun d ->
          Multicore.spawn (fun () ->
              let r = Obs.create () in
              let c = Obs.counter r "m.count" in
              let h = Obs.histogram r "m.hist" in
              for i = 1 to per_domain do
                Obs.incr c;
                Obs.observe h ((i mod 7) + d)
              done;
              r))
    in
    let registries = List.map Multicore.join handles in
    let into = Obs.create () in
    List.iter (fun r -> Obs.merge_into ~into r) registries;
    Alcotest.(check (option int))
      "counter sum"
      (Some (n_domains * per_domain))
      (Obs.find_counter into "m.count");
    let merged_h =
      match Obs.find_histogram into "m.hist" with
      | Some h -> h
      | None -> Alcotest.fail "merged histogram missing"
    in
    Alcotest.(check int)
      "histogram count" (n_domains * per_domain)
      (Obs.histogram_count merged_h);
    let expected_sum =
      List.fold_left ( + ) 0
        (List.concat_map
           (fun d -> List.init per_domain (fun i -> ((i + 1) mod 7) + d))
           (List.init n_domains Fun.id))
    in
    Alcotest.(check int)
      "histogram sum" expected_sum
      (Obs.histogram_sum merged_h);
    (* bucket-wise: the merged raw buckets equal the per-domain sums *)
    let buckets_of t =
      let s = Obs.Export.snapshot t in
      (List.assoc "m.hist" s.Obs.Export.snap_histograms).Obs.Export.hsn_buckets
    in
    let merged_buckets = buckets_of into in
    let domain_buckets = List.map buckets_of registries in
    Array.iteri
      (fun i v ->
        let expected =
          List.fold_left (fun acc b -> acc + b.(i)) 0 domain_buckets
        in
        Alcotest.(check int) (Printf.sprintf "bucket %d" i) expected v)
      merged_buckets
  end

(* ---------- the runtime-events consumer ----------------------------------- *)

let test_runtime_poll () =
  if not Obs.Runtime.available then ()
  else begin
    Alcotest.(check bool) "start" true (Obs.Runtime.start ());
    Alcotest.(check bool) "active" true (Obs.Runtime.active ());
    Alcotest.(check bool) "idempotent" true (Obs.Runtime.start ());
    let t = Obs.create () in
    (* force minor collections so there is something to consume *)
    for _ = 1 to 5 do
      Gc.minor ()
    done;
    let drained = Obs.Runtime.poll t in
    Alcotest.(check bool) "events drained" true (drained > 0);
    let minors =
      Option.value ~default:0 (Obs.find_counter t "runtime.gc.minor.collections")
    in
    Alcotest.(check bool) "minor collections seen" true (minors > 0);
    (match Obs.find_histogram t "runtime.gc.minor.pause_ns" with
    | Some h ->
      Alcotest.(check int) "pause samples" minors (Obs.histogram_count h)
    | None -> Alcotest.fail "minor pause histogram missing");
    (* max-pause gauge mirrors the histogram's largest sample *)
    (match Obs.find_gauge t "runtime.gc.max_pause_ns" with
    | Some v -> Alcotest.(check bool) "max pause positive" true (v > 0.)
    | None -> Alcotest.fail "max pause gauge missing");
    Alcotest.(check int) "disabled sink" 0 (Obs.Runtime.poll Obs.disabled)
  end

let test_runtime_unavailable_noop () =
  if Obs.Runtime.available then ()
  else begin
    Alcotest.(check bool) "start fails" false (Obs.Runtime.start ());
    Alcotest.(check bool) "inactive" false (Obs.Runtime.active ());
    Alcotest.(check int) "poll no-op" 0 (Obs.Runtime.poll (Obs.create ()))
  end

(* ---------- the exporter --------------------------------------------------- *)

let test_exporter_lifecycle () =
  let path = Filename.temp_file "rdfviews_tele" ".prom" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let t = Obs.create () in
      Obs.add (Obs.counter t "search.created") 7;
      let e =
        Obs.Export.start ~ring_capacity:4 ~interval:3600.0 ~path (fun () -> t)
      in
      (* the first write is synchronous: the file parses before any tick *)
      let read_all () =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let fams = Obs.Export.parse_exposition (read_all ()) in
      Alcotest.(check (option approx))
        "first write" (Some 7.)
        (Obs.Export.sample_value fams "rdfviews_search_created_total");
      Obs.add (Obs.counter t "search.created") 3;
      Obs.Export.stop e;
      (* stop writes a final snapshot over the bumped counter *)
      let fams = Obs.Export.parse_exposition (read_all ()) in
      Alcotest.(check (option approx))
        "final write" (Some 10.)
        (Obs.Export.sample_value fams "rdfviews_search_created_total");
      Alcotest.(check int)
        "no write errors" 0
        (Obs.Export.exporter_write_errors e);
      Alcotest.(check bool)
        "ring holds snapshots" true
        (Obs.Export.ring_length (Obs.Export.exporter_ring e) >= 1);
      (* idempotent stop *)
      Obs.Export.stop e)

let test_exporter_ticks () =
  let path = Filename.temp_file "rdfviews_tele" ".prom" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let t = Obs.create () in
      let e = Obs.Export.start ~interval:0.02 ~path (fun () -> t) in
      Unix.sleepf 0.2;
      Obs.Export.stop e;
      Alcotest.(check bool)
        "ticked at least once" true
        (Obs.Export.exporter_ticks e >= 1);
      (* the ticks counter is exposed in the snapshot itself *)
      let fams = families_of t in
      match Obs.Export.sample_value fams "rdfviews_telemetry_ticks_total" with
      | Some v ->
        Alcotest.(check bool)
          "ticks counter tracks" true
          (int_of_float v >= 1)
      | None -> Alcotest.fail "telemetry.ticks counter missing")

(* ---------- the top renderer ----------------------------------------------- *)

let test_render_telemetry () =
  let t = sample_registry () in
  let rendered =
    Obs.Report.render_telemetry (Obs.Export.parse_exposition (Obs.Export.exposition t))
  in
  (* per-domain table present (domains 0 and 1 carry work_ns series) *)
  Alcotest.(check bool)
    "utilization table" true
    (contains rendered "per-domain utilization");
  Alcotest.(check bool)
    "search section" true
    (contains rendered "best cost")

let () =
  Alcotest.run "telemetry"
    [
      ( "exposition",
        [
          Alcotest.test_case "counter/gauge/timer round-trip" `Quick
            test_roundtrip_counter_gauge;
          Alcotest.test_case "histogram round-trip" `Quick
            test_roundtrip_histogram;
          Alcotest.test_case "domain labels" `Quick test_domain_labels;
          Alcotest.test_case "name mangling" `Quick test_mangling;
          Alcotest.test_case "format sniffing" `Quick test_sniff;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "snapshot ring",
        [
          Alcotest.test_case "bounds and rotation" `Quick test_ring_bounds;
          Alcotest.test_case "capacity clamp" `Quick test_ring_min_capacity;
        ] );
      ( "merge",
        [
          Alcotest.test_case "across real domains" `Quick
            test_merge_across_domains;
        ] );
      ( "runtime events",
        [
          Alcotest.test_case "start/poll on OCaml 5" `Quick test_runtime_poll;
          Alcotest.test_case "no-op on 4.x" `Quick
            test_runtime_unavailable_noop;
        ] );
      ( "exporter",
        [
          Alcotest.test_case "lifecycle" `Quick test_exporter_lifecycle;
          Alcotest.test_case "periodic ticks" `Quick test_exporter_ticks;
        ] );
      ( "renderer",
        [ Alcotest.test_case "top summary" `Quick test_render_telemetry ] );
    ]
