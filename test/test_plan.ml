(* Compiled query plans (Query.Plan): differential testing against the
   interpretive Reference evaluator on adversarial random queries —
   repeated variables, constants absent from the store, genuine
   cross-products — plus the plan cache's hit/staleness behaviour. *)

open Support

let sort_rows rows = List.sort compare (List.map Array.to_list rows)

let agree store q =
  sort_rows (Query.Evaluation.eval_cq_codes store q)
  = sort_rows (Query.Evaluation.Reference.eval_cq_codes store q)

(* ---------- adversarial CQ generator ------------------------------------- *)

(* Unlike Support.gen_cq (always connected, constants drawn from the
   store's vocabulary), positions here are independent: a tiny variable
   pool forces repeated variables, unconnected atoms force
   cross-products, and a reserved URI exercises the absent-constant
   (impossible-plan) path. *)
let gen_plan_cq =
  let open QCheck.Gen in
  let absent = Query.Qterm.Cst (uri "absent:z") in
  let gen_var = map (fun i -> v (Printf.sprintf "V%d" i)) (int_range 0 3) in
  let gen_subject =
    frequency
      [ (5, gen_var); (3, map (fun t -> Query.Qterm.Cst t) gen_entity); (1, return absent) ]
  in
  let gen_pred =
    frequency
      [
        (1, gen_var);
        (5, map (fun t -> Query.Qterm.Cst t) gen_prop);
        (1, return (Query.Qterm.Cst rdf_type));
        (1, return absent);
      ]
  in
  let gen_obj =
    frequency
      [ (5, gen_var); (3, map (fun t -> Query.Qterm.Cst t) gen_object); (1, return absent) ]
  in
  let gen_atom =
    map3 (fun s p o -> atom s p o) gen_subject gen_pred gen_obj
  in
  let* body = list_size (int_range 1 3) gen_atom in
  let vars =
    List.sort_uniq String.compare (List.concat_map Query.Atom.var_set body)
  in
  let* head =
    if vars = [] then return [ Query.Qterm.Cst (uri "u0") ]
    else
      let* k = int_range 1 (min 2 (List.length vars)) in
      let* shuffled = shuffle_l vars in
      let head = List.map v (List.filteri (fun i _ -> i < k) shuffled) in
      let* with_cst = bool in
      return (if with_cst then head @ [ Query.Qterm.Cst (uri "u1") ] else head)
  in
  return (cq head body)

let arb_plan_cq = QCheck.make ~print:Query.Cq.to_string gen_plan_cq

let gen_plan_ucq =
  let open QCheck.Gen in
  let unary q =
    Query.Cq.make ~name:q.Query.Cq.name
      ~head:[ List.hd q.Query.Cq.head ]
      ~body:q.Query.Cq.body
  in
  map
    (fun qs -> Query.Ucq.make ~name:"u" (List.map unary qs))
    (list_size (int_range 1 3) gen_plan_cq)

let arb_plan_ucq = QCheck.make ~print:Query.Ucq.to_string gen_plan_ucq

(* ---------- differential properties -------------------------------------- *)

let prop_cq_differential =
  QCheck.Test.make ~name:"compiled CQ evaluation = Reference" ~count:400
    (QCheck.pair arb_store arb_plan_cq)
    (fun (store, q) ->
      Query.Plan.reset_cache ();
      agree store q)

let prop_cq_cached_differential =
  QCheck.Test.make ~name:"cached plan stays correct across re-evaluation"
    ~count:200
    (QCheck.pair arb_store arb_plan_cq)
    (fun (store, q) ->
      Query.Plan.reset_cache ();
      (* first call compiles, second must reuse the cached plan *)
      agree store q && agree store q)

let prop_ucq_differential =
  QCheck.Test.make ~name:"compiled UCQ evaluation = Reference" ~count:200
    (QCheck.pair arb_store arb_plan_ucq)
    (fun (store, u) ->
      Query.Plan.reset_cache ();
      sort_rows (Query.Evaluation.eval_ucq_codes store u)
      = sort_rows (Query.Evaluation.Reference.eval_ucq_codes store u))

let prop_counts_agree =
  QCheck.Test.make ~name:"compiled counts = Reference counts" ~count:200
    (QCheck.pair arb_store arb_plan_cq)
    (fun (store, q) ->
      Query.Plan.reset_cache ();
      Query.Evaluation.count_cq store q
      = Query.Evaluation.Reference.count_cq store q)

let prop_mutation_differential =
  QCheck.Test.make
    ~name:"cached plan correct after store mutation (incl. new constants)"
    ~count:200
    (QCheck.triple arb_store arb_plan_cq (QCheck.make Support.gen_data_triple))
    (fun (store, q, extra) ->
      Query.Plan.reset_cache ();
      let before = agree store q in
      (* growing the store (and possibly its dictionary — [extra] or the
         reserved absent constant may introduce fresh terms) must not
         leave a stale plan behind *)
      ignore (Rdf.Store.add store extra);
      ignore
        (Rdf.Store.add store
           (triple (uri "absent:z") (uri "absent:z") (uri "absent:z")));
      before && agree store q)

(* ---------- batch pipeline and MQO differential -------------------------- *)

let with_mqo_disabled f =
  Query.Mqo.set_enabled false;
  Fun.protect ~finally:(fun () -> Query.Mqo.set_enabled true) f

(* Tuple walker, batch pipeline (MQO off) and the MQO path — evaluated
   twice so the second run may replay a cached result — must all
   produce the Reference answer set, and each must leave the same
   size_hint (the deduplicated cardinality) on the plan. *)
let prop_batch_mqo_tuple_agree =
  QCheck.Test.make
    ~name:"tuple, batch and MQO execution agree (rows and size_hint)"
    ~count:200
    (QCheck.pair arb_store arb_plan_cq)
    (fun (store, q) ->
      Query.Plan.reset_cache ();
      Query.Mqo.reset ();
      let reference =
        sort_rows (Query.Evaluation.Reference.eval_cq_codes store q)
      in
      let cardinality = List.length reference in
      let hint_ok () =
        Query.Plan.size_hint (Query.Plan.cached store q) = cardinality
      in
      let tuple_rows =
        let plan = Query.Plan.cached store q in
        let rs = Query.Rowset.create 16 in
        Query.Plan.exec_into_tuple plan store rs;
        sort_rows (Query.Rowset.elements rs)
      in
      let tuple_hint = hint_ok () in
      let batch_rows =
        with_mqo_disabled (fun () ->
            sort_rows (Query.Evaluation.eval_cq_codes store q))
      in
      let batch_hint = hint_ok () in
      let mqo1 = sort_rows (Query.Evaluation.eval_cq_codes store q) in
      let mqo2 = sort_rows (Query.Evaluation.eval_cq_codes store q) in
      let mqo_hint = hint_ok () in
      tuple_rows = reference && batch_rows = reference && mqo1 = reference
      && mqo2 = reference && tuple_hint && batch_hint && mqo_hint)

(* Capacity 1 flushes after every row, 3 exercises partially-filled
   final batches, 1024 is the default; all must agree with Reference. *)
let prop_batch_capacity_edges =
  QCheck.Test.make ~name:"batch pipeline correct at capacities 1, 3, 1024"
    ~count:100
    (QCheck.pair arb_store arb_plan_cq)
    (fun (store, q) ->
      let reference =
        sort_rows (Query.Evaluation.Reference.eval_cq_codes store q)
      in
      let ok =
        List.for_all
          (fun cap ->
            Query.Plan.set_batch_capacity cap;
            Query.Plan.reset_cache ();
            Query.Mqo.reset ();
            with_mqo_disabled (fun () ->
                sort_rows (Query.Evaluation.eval_cq_codes store q) = reference))
          [ 1; 3; 1024 ]
      in
      Query.Plan.set_batch_capacity 1024;
      ok)

(* Like prop_mutation_differential, but with the MQO caches warmed
   first (two evaluations: capture then replay): the version stamp must
   invalidate every cached prefix and result when the store grows —
   including dictionary growth that resurrects an impossible plan. *)
let prop_mqo_mutation_differential =
  QCheck.Test.make
    ~name:"warm MQO caches invalidated by store mutation (incl. dict growth)"
    ~count:150
    (QCheck.triple arb_store arb_plan_cq (QCheck.make Support.gen_data_triple))
    (fun (store, q, extra) ->
      Query.Plan.reset_cache ();
      Query.Mqo.reset ();
      let before = agree store q && agree store q in
      ignore (Rdf.Store.add store extra);
      ignore
        (Rdf.Store.add store
           (triple (uri "absent:z") (uri "absent:z") (uri "absent:z")));
      before && agree store q && agree store q)

(* ---------- directed plan tests ------------------------------------------ *)

let small_store () =
  store_of
    [
      triple (uri "e1") (uri "P0") (uri "e2");
      triple (uri "e2") (uri "P0") (uri "e3");
      triple (uri "e1") (uri "P1") (uri "e1");
      triple (uri "e3") rdf_type (uri "C0");
    ]

let test_impossible_constant () =
  Query.Plan.reset_cache ();
  let store = small_store () in
  let q =
    cq [ v "X" ] [ atom (v "X") (c "nope:p") (v "Y") ]
  in
  let plan = Query.Plan.cached store q in
  check_bool "impossible" true (Query.Plan.is_impossible plan);
  check_bool "no rows" true (Query.Evaluation.eval_cq_codes store q = [])

let test_impossible_plan_invalidated () =
  Query.Plan.reset_cache ();
  let store = small_store () in
  let q = cq [ v "X" ] [ atom (v "X") (c "late:p") (v "Y") ] in
  check_bool "empty before" true (Query.Evaluation.eval_cq_codes store q = []);
  ignore (Rdf.Store.add store (triple (uri "e1") (uri "late:p") (uri "e2")));
  check_int "one row after the constant appears" 1
    (List.length (Query.Evaluation.eval_cq_codes store q));
  check_bool "agrees with reference" true (agree store q)

let test_repeated_variable () =
  Query.Plan.reset_cache ();
  let store = small_store () in
  (* self-loop: X appears twice in one atom *)
  let q = cq [ v "X" ] [ atom (v "X") (c "P1") (v "X") ] in
  check_int "only the self-loop" 1
    (List.length (Query.Evaluation.eval_cq_codes store q));
  check_bool "agrees with reference" true (agree store q)

let test_cross_product () =
  Query.Plan.reset_cache ();
  let store = small_store () in
  let q =
    cq
      [ v "X"; v "Z" ]
      [
        atom (v "X") (c "P0") (v "Y");
        atom (v "Z") (Query.Qterm.Cst rdf_type) (c "C0");
      ]
  in
  check_int "2 x 1 product" 2
    (List.length (Query.Evaluation.eval_cq_codes store q));
  check_bool "agrees with reference" true (agree store q)

let test_batch_boundary_cardinalities () =
  Query.Mqo.reset ();
  let store = small_store () in
  (* P0 holds exactly 2 rows: capacity 2 makes the single batch exactly
     full, capacity 1 makes every batch full; the unmatched pattern
     drives the empty-batch flush path *)
  let q2 = cq [ v "X"; v "Y" ] [ atom (v "X") (c "P0") (v "Y") ] in
  let empty = cq [ v "X" ] [ atom (v "X") (c "P1") (c "C0") ] in
  List.iter
    (fun cap ->
      Query.Plan.set_batch_capacity cap;
      Query.Plan.reset_cache ();
      check_int (Printf.sprintf "2 rows at capacity %d" cap) 2
        (List.length (Query.Evaluation.eval_cq_codes store q2));
      check_int (Printf.sprintf "0 rows at capacity %d" cap) 0
        (List.length (Query.Evaluation.eval_cq_codes store empty)))
    [ 1; 2; 1024 ];
  Query.Plan.set_batch_capacity 1024

let test_exec_wrong_store_raises () =
  Query.Plan.reset_cache ();
  let store = small_store () in
  let other = small_store () in
  let q = cq [ v "X" ] [ atom (v "X") (c "P0") (v "Y") ] in
  let plan = Query.Plan.cached store q in
  check_bool "raises on foreign store" true
    (try
       Query.Plan.exec plan other (fun _ -> ());
       false
     with Invalid_argument _ -> true)

(* ---------- plan cache --------------------------------------------------- *)

let with_registry f =
  let reg = Obs.create () in
  Obs.set_global reg;
  Fun.protect ~finally:(fun () -> Obs.set_global Obs.disabled) (fun () -> f reg)

let counter_value reg name =
  match Obs.find_counter reg name with Some n -> n | None -> 0

let test_cache_hits_on_reuse () =
  with_registry (fun reg ->
      Query.Plan.reset_cache ();
      let store = small_store () in
      let q = cq [ v "X" ] [ atom (v "X") (c "P0") (v "Y") ] in
      ignore (Query.Evaluation.eval_cq_codes store q);
      let misses = counter_value reg "eval.plan.cache_misses" in
      check_bool "first evaluation compiles" true (misses >= 1);
      ignore (Query.Evaluation.eval_cq_codes store q);
      check_int "second evaluation does not recompile" misses
        (counter_value reg "eval.plan.cache_misses");
      check_bool "and hits the cache" true
        (counter_value reg "eval.plan.cache_hits" >= 1);
      check_int "one plan cached" 1 (Query.Plan.cached_plan_count store))

let test_isomorphic_queries_share_plan () =
  Query.Plan.reset_cache ();
  let store = small_store () in
  let q1 = cq ~name:"a" [ v "X" ] [ atom (v "X") (c "P0") (v "Y") ] in
  let q2 = cq ~name:"b" [ v "U" ] [ atom (v "U") (c "P0") (v "W") ] in
  ignore (Query.Evaluation.eval_cq_codes store q1);
  ignore (Query.Evaluation.eval_cq_codes store q2);
  check_int "isomorphic queries share one plan" 1
    (Query.Plan.cached_plan_count store)

let test_stats_gathering_hits_cache () =
  with_registry (fun reg ->
      Query.Plan.reset_cache ();
      let store = small_store () in
      let prop = uri "P0" in
      let st1 = Stats.Statistics.create store in
      ignore (Stats.Statistics.property_distinct st1 prop `S);
      ignore (Stats.Statistics.property_distinct st1 prop `O);
      let misses = counter_value reg "eval.plan.cache_misses" in
      (* a second Statistics instance re-evaluates the same distinct-count
         CQs; the plans must come from the cache *)
      let st2 = Stats.Statistics.create store in
      ignore (Stats.Statistics.property_distinct st2 prop `S);
      ignore (Stats.Statistics.property_distinct st2 prop `O);
      check_int "repeated stats gathering compiles nothing new" misses
        (counter_value reg "eval.plan.cache_misses");
      check_bool "and hits the plan cache" true
        (counter_value reg "eval.plan.cache_hits" >= 1))

let () =
  Alcotest.run "plan"
    [
      ( "differential",
        [
          to_alcotest prop_cq_differential;
          to_alcotest prop_cq_cached_differential;
          to_alcotest prop_ucq_differential;
          to_alcotest prop_counts_agree;
          to_alcotest prop_mutation_differential;
          to_alcotest prop_batch_mqo_tuple_agree;
          to_alcotest prop_batch_capacity_edges;
          to_alcotest prop_mqo_mutation_differential;
        ] );
      ( "plans",
        [
          Alcotest.test_case "impossible constant" `Quick
            test_impossible_constant;
          Alcotest.test_case "impossible plan invalidated by dict growth"
            `Quick test_impossible_plan_invalidated;
          Alcotest.test_case "repeated variable in one atom" `Quick
            test_repeated_variable;
          Alcotest.test_case "cross product" `Quick test_cross_product;
          Alcotest.test_case "empty and exactly-full batches" `Quick
            test_batch_boundary_cardinalities;
          Alcotest.test_case "exec on foreign store raises" `Quick
            test_exec_wrong_store_raises;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hits on reuse" `Quick test_cache_hits_on_reuse;
          Alcotest.test_case "isomorphic queries share a plan" `Quick
            test_isomorphic_queries_share_plan;
          Alcotest.test_case "stats gathering hits the cache" `Quick
            test_stats_gathering_hits_cache;
        ] );
    ]
