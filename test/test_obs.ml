(* The Obs observability library: deterministic counter/timer/span
   semantics, JSON round-trip, and the consistency of the telemetry a
   real search run emits against its own report. *)

open Support

(* ---------- counters ----------------------------------------------------- *)

let test_counter_semantics () =
  let reg = Obs.create () in
  let c = Obs.counter reg "a.b" in
  check_int "fresh counter is zero" 0 (Obs.value c);
  Obs.incr c;
  Obs.incr c;
  Obs.add c 40;
  check_int "incr/add accumulate" 42 (Obs.value c);
  let c' = Obs.counter reg "a.b" in
  Obs.incr c';
  check_int "same name, same counter" 43 (Obs.value c);
  check_int "registry sees the counter" 43
    (Option.get (Obs.find_counter reg "a.b"));
  Obs.reset reg;
  check_int "reset zeroes" 0 (Obs.value c)

let test_disabled_counter () =
  let c = Obs.counter Obs.disabled "x" in
  Obs.incr c;
  Obs.add c 10;
  check_int "no-op counter stays zero" 0 (Obs.value c);
  check_bool "disabled sink has no counters" true (Obs.counters Obs.disabled = []);
  check_bool "disabled is not enabled" false (Obs.is_enabled Obs.disabled)

(* ---------- timers ------------------------------------------------------- *)

let test_timer_semantics () =
  let reg = Obs.create () in
  let tm = Obs.timer reg "t" in
  check_int "fresh timer has no calls" 0 (Obs.timer_count tm);
  let result = Obs.time tm (fun () -> 1 + 1) in
  check_int "time returns the result" 2 result;
  let _ = Obs.time tm (fun () -> ()) in
  check_int "two calls recorded" 2 (Obs.timer_count tm);
  check_bool "elapsed is non-negative" true (Obs.timer_ns tm >= 0);
  (* the timer records also when the thunk raises *)
  (try Obs.time tm (fun () -> failwith "boom") with Failure _ -> ());
  check_int "raising call recorded" 3 (Obs.timer_count tm);
  let dtm = Obs.timer Obs.disabled "t" in
  check_int "no-op timer passes through" 7 (Obs.time dtm (fun () -> 7));
  check_int "no-op timer records nothing" 0 (Obs.timer_count dtm)

(* ---------- histograms ---------------------------------------------------- *)

let test_histogram_bucketing () =
  check_int "non-positive samples land in bucket 0" 0 (Obs.bucket_of_sample 0);
  check_int "negative samples land in bucket 0" 0 (Obs.bucket_of_sample (-5));
  check_int "1 lands in bucket 1" 1 (Obs.bucket_of_sample 1);
  check_int "2 lands in bucket 2" 2 (Obs.bucket_of_sample 2);
  check_int "3 lands in bucket 2" 2 (Obs.bucket_of_sample 3);
  check_int "4 lands in bucket 3" 3 (Obs.bucket_of_sample 4);
  check_int "1024 lands in bucket 11" 11 (Obs.bucket_of_sample 1024);
  check_int "max_int does not overflow" 62 (Obs.bucket_of_sample max_int);
  check_bool "bucket 0 represents 0" true (Obs.bucket_representative 0 = 0.);
  (* the representative of a sample's bucket stays within the bucket's
     factor-of-two bounds *)
  List.iter
    (fun sample ->
      let r = Obs.bucket_representative (Obs.bucket_of_sample sample) in
      check_bool
        (Printf.sprintf "representative of %d within 2x" sample)
        true
        (r >= float_of_int sample /. 2. && r <= float_of_int sample *. 2.))
    [ 1; 2; 3; 7; 100; 1024; 999_999 ]

let test_histogram_percentiles () =
  let reg = Obs.create () in
  let h = Obs.histogram reg "h" in
  check_bool "empty percentile is nan" true (Float.is_nan (Obs.percentile h 50.));
  check_bool "registered histogram is live" true (Obs.histogram_live h);
  for i = 1 to 100 do
    Obs.observe h i
  done;
  check_int "count" 100 (Obs.histogram_count h);
  check_int "sum" 5050 (Obs.histogram_sum h);
  (* bucket-resolution approximation: p50 of 1..100 is within a factor
     of 2 of the exact median *)
  let p50 = Obs.percentile h 50. in
  check_bool "p50 near exact median" true (p50 >= 25. && p50 <= 100.);
  let p99 = Obs.percentile h 99. in
  check_bool "p99 >= p50" true (p99 >= p50);
  Obs.reset reg;
  check_int "reset zeroes histogram" 0 (Obs.histogram_count h);
  (* disabled sink: shared no-op histogram *)
  let dh = Obs.histogram Obs.disabled "h" in
  check_bool "no-op histogram is not live" false (Obs.histogram_live dh);
  Obs.observe dh 42;
  check_int "no-op histogram records nothing" 0 (Obs.histogram_count dh)

let test_time_with () =
  let reg = Obs.create () in
  let tm = Obs.timer reg "tw" in
  let h = Obs.histogram reg "tw.hist" in
  let result = Obs.time_with tm h (fun () -> 5 * 5) in
  check_int "time_with returns the result" 25 result;
  check_int "timer saw one call" 1 (Obs.timer_count tm);
  check_int "histogram saw one sample" 1 (Obs.histogram_count h);
  (try Obs.time_with tm h (fun () -> failwith "boom") with Failure _ -> ());
  check_int "raising call recorded in timer" 2 (Obs.timer_count tm);
  check_int "raising call recorded in histogram" 2 (Obs.histogram_count h)

(* ---------- gauges -------------------------------------------------------- *)

let test_gauge_semantics () =
  let reg = Obs.create () in
  let g = Obs.gauge reg "g" in
  check_bool "fresh gauge is unset" true (Obs.gauge_value g = None);
  check_bool "unset gauge not listed" true (Obs.gauges reg = []);
  Obs.set_gauge g 3.5;
  Obs.set_gauge g 7.25;
  check_bool "gauge keeps the last value" true (Obs.gauge_value g = Some 7.25);
  check_bool "find_gauge sees it" true (Obs.find_gauge reg "g" = Some 7.25);
  Obs.reset reg;
  check_bool "reset unsets the gauge" true (Obs.gauge_value g = None);
  let dg = Obs.gauge Obs.disabled "g" in
  Obs.set_gauge dg 1.;
  check_bool "no-op gauge stays unset" true (Obs.gauge_value dg = None)

(* ---------- spans -------------------------------------------------------- *)

let test_span_nesting () =
  let reg = Obs.create () in
  let result =
    Obs.span reg "outer" (fun () ->
        Obs.span reg "inner1" (fun () -> ());
        Obs.span reg "inner2" (fun () -> ());
        17)
  in
  check_int "span returns the result" 17 result;
  let spans = Obs.spans reg in
  check_int "three spans recorded" 3 (List.length spans);
  let by_name name = List.find (fun s -> s.Obs.span_name = name) spans in
  check_int "outer at depth 0" 0 (by_name "outer").Obs.depth;
  check_int "inner at depth 1" 1 (by_name "inner1").Obs.depth;
  check_int "inner2 at depth 1" 1 (by_name "inner2").Obs.depth;
  (match spans with
  | first :: _ -> check_string "chronological: outer starts first" "outer" first.Obs.span_name
  | [] -> Alcotest.fail "no spans");
  check_bool "inner1 starts before inner2" true
    ((by_name "inner1").Obs.start_ns <= (by_name "inner2").Obs.start_ns);
  check_bool "outer encloses inner1" true
    ((by_name "outer").Obs.elapsed_ns >= (by_name "inner1").Obs.elapsed_ns)

(* ---------- JSON --------------------------------------------------------- *)

let sample_json =
  Obs.Json.(
    Obj
      [
        ("null", Null);
        ("flag", Bool true);
        ("off", Bool false);
        ("int", Int 42);
        ("neg", Int (-17));
        ("float", Float 3.25);
        ("whole", Float 2.0);
        ("text", String "line\n\"quoted\"\\slash\tand control \001");
        ("empty_list", List []);
        ("empty_obj", Obj []);
        ("nested", List [ Int 1; List [ String "x" ]; Obj [ ("k", Null) ] ]);
      ])

let test_json_roundtrip () =
  let compact = Obs.Json.to_string sample_json in
  let pretty = Obs.Json.to_string ~indent:true sample_json in
  check_bool "compact round-trips" true
    (Obs.Json.of_string compact = sample_json);
  check_bool "indented round-trips" true
    (Obs.Json.of_string pretty = sample_json)

(* Non-finite floats have no JSON literal; they must serialize as null
   so the output always re-parses (a p99 of an empty histogram is nan). *)
let test_json_nonfinite () =
  let doc =
    Obs.Json.(
      Obj
        [
          ("nan", Float Float.nan);
          ("pinf", Float Float.infinity);
          ("ninf", Float Float.neg_infinity);
          ("fine", Float 1.5);
        ])
  in
  let text = Obs.Json.to_string doc in
  let reparsed = Obs.Json.of_string text in
  check_bool "nan serializes as null" true
    (Obs.Json.member "nan" reparsed = Some Obs.Json.Null);
  check_bool "+inf serializes as null" true
    (Obs.Json.member "pinf" reparsed = Some Obs.Json.Null);
  check_bool "-inf serializes as null" true
    (Obs.Json.member "ninf" reparsed = Some Obs.Json.Null);
  check_bool "finite float survives" true
    (Obs.Json.member "fine" reparsed = Some (Obs.Json.Float 1.5));
  check_bool "indented form also reparses" true
    (Obs.Json.of_string (Obs.Json.to_string ~indent:true doc) = reparsed)

let test_json_parse_errors () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"open"; "1 2" ] in
  List.iter
    (fun text ->
      match Obs.Json.of_string text with
      | exception Obs.Json.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" text))
    bad

let test_registry_serialization () =
  let reg = Obs.create () in
  Obs.add (Obs.counter reg "c1") 5;
  let _ = Obs.time (Obs.timer reg "t1") (fun () -> ()) in
  Obs.observe (Obs.histogram reg "h1") 100;
  Obs.set_gauge (Obs.gauge reg "g1") 2.5;
  Obs.span reg "phase" (fun () -> ());
  let json = Obs.Json.of_string (Obs.to_string reg) in
  check_bool "schema version present" true
    (Obs.Json.member "schema_version" json = Some (Obs.Json.Int 2));
  (match Obs.Json.member "histograms" json with
  | Some hists -> (
    match Obs.Json.member "h1" hists with
    | Some h1 ->
      check_bool "histogram count serialized" true
        (Obs.Json.member "count" h1 = Some (Obs.Json.Int 1));
      check_bool "histogram total serialized" true
        (Obs.Json.member "total" h1 = Some (Obs.Json.Int 100));
      check_bool "histogram p50 present" true
        (Obs.Json.member "p50" h1 <> None)
    | None -> Alcotest.fail "no h1 histogram")
  | None -> Alcotest.fail "no histograms member");
  (match Obs.Json.member "gauges" json with
  | Some gauges ->
    check_bool "gauge serialized" true
      (Obs.Json.member "g1" gauges = Some (Obs.Json.Float 2.5))
  | None -> Alcotest.fail "no gauges member");
  (match Obs.Json.(member "counters" json) with
  | Some counters ->
    check_bool "counter value serialized" true
      (Obs.Json.member "c1" counters = Some (Obs.Json.Int 5))
  | None -> Alcotest.fail "no counters member");
  (match Obs.Json.(member "timers" json) with
  | Some timers -> (
    match Obs.Json.member "t1" timers with
    | Some t1 ->
      check_bool "timer count serialized" true
        (Obs.Json.member "count" t1 = Some (Obs.Json.Int 1))
    | None -> Alcotest.fail "no t1 timer")
  | None -> Alcotest.fail "no timers member");
  match Obs.Json.(member "spans" json) with
  | Some (Obs.Json.List [ span ]) ->
    check_bool "span name serialized" true
      (Obs.Json.member "name" span = Some (Obs.Json.String "phase"))
  | _ -> Alcotest.fail "expected exactly one span"

(* A reset in the middle of an open span must not poison later spans:
   the open span is dropped when it closes (its start offset predates
   the re-based clock) and the nesting depth returns to zero, so spans
   recorded after the reset sit at depth 0 with small offsets. *)
let test_reset_inside_span () =
  let reg = Obs.create () in
  (try
     Obs.span reg "stale" (fun () ->
         Obs.reset reg;
         (* nested span inside the stale one, after the reset *)
         Obs.span reg "nested" (fun () -> ());
         failwith "escape")
   with Failure _ -> ());
  Obs.span reg "fresh" (fun () -> ());
  let names = List.map (fun s -> s.Obs.span_name) (Obs.spans reg) in
  check_bool "stale span dropped" false (List.mem "stale" names);
  check_bool "fresh span recorded" true (List.mem "fresh" names);
  let fresh = List.find (fun s -> s.Obs.span_name = "fresh") (Obs.spans reg) in
  check_int "depth re-based to zero" 0 fresh.Obs.depth;
  check_bool "start offset re-based" true (fresh.Obs.start_ns >= 0);
  (* the nested span recorded after the reset is also at depth 0: the
     stale enclosing frame no longer counts *)
  match List.find_opt (fun s -> s.Obs.span_name = "nested") (Obs.spans reg) with
  | Some nested -> check_int "post-reset nested span at depth 0" 0 nested.Obs.depth
  | None -> Alcotest.fail "nested span missing"

(* ---------- cached handles and the global sink --------------------------- *)

let test_cached_handles_follow_global () =
  let handle = Obs.cached_counter "cached.c" in
  Obs.set_global Obs.disabled;
  Obs.incr (handle ());
  check_int "disabled: stays zero" 0 (Obs.value (handle ()));
  let reg = Obs.create () in
  Obs.set_global reg;
  Obs.incr (handle ());
  Obs.incr (handle ());
  check_int "enabled after set_global" 2
    (Option.get (Obs.find_counter reg "cached.c"));
  Obs.set_global Obs.disabled;
  Obs.incr (handle ());
  check_int "re-disabled: registry unchanged" 2
    (Option.get (Obs.find_counter reg "cached.c"))

(* ---------- integration: a real search run ------------------------------- *)

(* The Figure 3 workload drives Search.run end-to-end against an enabled
   global sink; the emitted counters must agree with the report and with
   each other. *)
let test_search_emits_consistent_counters () =
  let reg = Obs.create () in
  Obs.set_global reg;
  Fun.protect ~finally:(fun () -> Obs.set_global Obs.disabled) @@ fun () ->
  let query =
    cq ~name:"q"
      [ v "Y"; v "Z" ]
      [ atom (v "X") (v "Y") (c "ex:c1"); atom (v "X") (v "Z") (c "ex:c2") ]
  in
  let store =
    store_of
      [
        triple (uri "s1") (uri "p1") (uri "ex:c1");
        triple (uri "s1") (uri "p2") (uri "ex:c2");
        triple (uri "s2") (uri "p1") (uri "ex:c1");
        triple (uri "s2") (uri "p1") (uri "ex:c2");
      ]
  in
  let options =
    {
      Core.Search.default_options with
      strategy = Core.Search.Exnaive;
      avf = false;
      stop_tt = false;
      stop_var = false;
    }
  in
  let report =
    Core.Search.run (Stats.Statistics.create store) options [ query ]
  in
  let counter name =
    match Obs.find_counter reg name with Some n -> n | None -> 0
  in
  check_int "search.runs" 1 (counter "search.runs");
  check_int "obs created mirrors the report" report.Core.Search.created
    (counter "search.created");
  check_int "obs duplicates mirrors the report" report.Core.Search.duplicates
    (counter "search.duplicates");
  check_int "obs discarded mirrors the report" report.Core.Search.discarded
    (counter "search.discarded");
  check_int "obs explored mirrors the report" report.Core.Search.explored
    (counter "search.explored");
  (* every created state is a successor some transition produced *)
  let applied =
    List.fold_left
      (fun acc k ->
        acc + counter ("transition." ^ Core.Transition.kind_name k ^ ".applied"))
      0 Core.Transition.all_kinds
  in
  check_bool "transitions applied >= states created" true
    (applied >= report.Core.Search.created);
  check_bool "some states were created" true (report.Core.Search.created > 0);
  (* per-stratum created counts partition the global count *)
  let stratum_created =
    List.fold_left
      (fun acc k ->
        acc
        + counter ("search.stratum." ^ Core.Transition.kind_name k ^ ".created"))
      0 Core.Transition.all_kinds
  in
  check_int "stratum created partitions created" report.Core.Search.created
    stratum_created;
  (* duplicate-free creations are exactly the distinct non-S0 states *)
  check_int "created minus duplicates = distinct states"
    (report.Core.Search.explored - 1)
    (report.Core.Search.created - report.Core.Search.duplicates);
  (* the cost memo was exercised, and every miss went through exactly
     one of the two costing paths: the timed full recompute or the
     delta application *)
  check_bool "cost memo hit at least once" true (counter "cost.state.hits" > 0);
  check_bool "cost memo missed at least once" true
    (counter "cost.state.misses" > 0);
  (match Obs.find_timer reg "cost.state.eval" with
  | Some (calls, _) ->
    check_int "misses are timed or delta-applied"
      (counter "cost.state.misses")
      (calls + counter "cost.delta.incremental")
  | None -> Alcotest.fail "cost.state.eval timer missing");
  check_bool "incremental path was taken" true
    (counter "cost.delta.incremental" > 0);
  (* statistics probe the store through the indexed counters *)
  check_bool "store probes recorded" true (counter "store.count_probes" > 0);
  (* expansion timing covers every explored state *)
  (match Obs.find_timer reg "search.expand" with
  | Some (calls, _) ->
    check_int "one expand timing per explored state"
      report.Core.Search.explored calls
  | None -> Alcotest.fail "search.expand timer missing");
  (* the expand-latency histogram mirrors the expand timer call-count *)
  (match Obs.find_histogram reg "search.expand.ns" with
  | Some h ->
    check_int "one histogram sample per explored state"
      report.Core.Search.explored (Obs.histogram_count h)
  | None -> Alcotest.fail "search.expand.ns histogram missing");
  (* end-of-run gauges record the cost trajectory endpoints *)
  (match (Obs.find_gauge reg "search.initial_cost",
          Obs.find_gauge reg "search.best_cost") with
  | Some initial, Some best ->
    check_bool "best cost <= initial cost" true (best <= initial);
    check_bool "best cost mirrors the report" true
      (Float.abs (best -. report.Core.Search.best_cost) < 1e-9)
  | _ -> Alcotest.fail "search cost gauges missing")

let test_disabled_sink_changes_nothing () =
  Obs.set_global Obs.disabled;
  let query =
    cq ~name:"q" [ v "X" ] [ atom (v "X") (c "p") (c "o") ]
  in
  let store = store_of [ triple (uri "s") (uri "p") (uri "o") ] in
  let report =
    Core.Search.run (Stats.Statistics.create store)
      Core.Search.default_options [ query ]
  in
  check_bool "search still runs" true (report.Core.Search.explored >= 1)

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "semantics" `Quick test_counter_semantics;
          Alcotest.test_case "disabled" `Quick test_disabled_counter;
        ] );
      ("timers", [ Alcotest.test_case "semantics" `Quick test_timer_semantics ]);
      ( "histograms",
        [
          Alcotest.test_case "bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "time_with" `Quick test_time_with;
        ] );
      ("gauges", [ Alcotest.test_case "semantics" `Quick test_gauge_semantics ]);
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "reset inside span" `Quick test_reset_inside_span;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "registry serialization" `Quick
            test_registry_serialization;
        ] );
      ( "global sink",
        [
          Alcotest.test_case "cached handles" `Quick
            test_cached_handles_follow_global;
        ] );
      ( "integration",
        [
          Alcotest.test_case "search counters consistent" `Quick
            test_search_emits_consistent_counters;
          Alcotest.test_case "disabled sink is inert" `Quick
            test_disabled_sink_changes_nothing;
        ] );
    ]
