(* The Obs observability library: deterministic counter/timer/span
   semantics, JSON round-trip, and the consistency of the telemetry a
   real search run emits against its own report. *)

open Support

(* ---------- counters ----------------------------------------------------- *)

let test_counter_semantics () =
  let reg = Obs.create () in
  let c = Obs.counter reg "a.b" in
  check_int "fresh counter is zero" 0 (Obs.value c);
  Obs.incr c;
  Obs.incr c;
  Obs.add c 40;
  check_int "incr/add accumulate" 42 (Obs.value c);
  let c' = Obs.counter reg "a.b" in
  Obs.incr c';
  check_int "same name, same counter" 43 (Obs.value c);
  check_int "registry sees the counter" 43
    (Option.get (Obs.find_counter reg "a.b"));
  Obs.reset reg;
  check_int "reset zeroes" 0 (Obs.value c)

let test_disabled_counter () =
  let c = Obs.counter Obs.disabled "x" in
  Obs.incr c;
  Obs.add c 10;
  check_int "no-op counter stays zero" 0 (Obs.value c);
  check_bool "disabled sink has no counters" true (Obs.counters Obs.disabled = []);
  check_bool "disabled is not enabled" false (Obs.is_enabled Obs.disabled)

(* ---------- timers ------------------------------------------------------- *)

let test_timer_semantics () =
  let reg = Obs.create () in
  let tm = Obs.timer reg "t" in
  check_int "fresh timer has no calls" 0 (Obs.timer_count tm);
  let result = Obs.time tm (fun () -> 1 + 1) in
  check_int "time returns the result" 2 result;
  let _ = Obs.time tm (fun () -> ()) in
  check_int "two calls recorded" 2 (Obs.timer_count tm);
  check_bool "elapsed is non-negative" true (Obs.timer_ns tm >= 0);
  (* the timer records also when the thunk raises *)
  (try Obs.time tm (fun () -> failwith "boom") with Failure _ -> ());
  check_int "raising call recorded" 3 (Obs.timer_count tm);
  let dtm = Obs.timer Obs.disabled "t" in
  check_int "no-op timer passes through" 7 (Obs.time dtm (fun () -> 7));
  check_int "no-op timer records nothing" 0 (Obs.timer_count dtm)

(* ---------- spans -------------------------------------------------------- *)

let test_span_nesting () =
  let reg = Obs.create () in
  let result =
    Obs.span reg "outer" (fun () ->
        Obs.span reg "inner1" (fun () -> ());
        Obs.span reg "inner2" (fun () -> ());
        17)
  in
  check_int "span returns the result" 17 result;
  let spans = Obs.spans reg in
  check_int "three spans recorded" 3 (List.length spans);
  let by_name name = List.find (fun s -> s.Obs.span_name = name) spans in
  check_int "outer at depth 0" 0 (by_name "outer").Obs.depth;
  check_int "inner at depth 1" 1 (by_name "inner1").Obs.depth;
  check_int "inner2 at depth 1" 1 (by_name "inner2").Obs.depth;
  (match spans with
  | first :: _ -> check_string "chronological: outer starts first" "outer" first.Obs.span_name
  | [] -> Alcotest.fail "no spans");
  check_bool "inner1 starts before inner2" true
    ((by_name "inner1").Obs.start_ns <= (by_name "inner2").Obs.start_ns);
  check_bool "outer encloses inner1" true
    ((by_name "outer").Obs.elapsed_ns >= (by_name "inner1").Obs.elapsed_ns)

(* ---------- JSON --------------------------------------------------------- *)

let sample_json =
  Obs.Json.(
    Obj
      [
        ("null", Null);
        ("flag", Bool true);
        ("off", Bool false);
        ("int", Int 42);
        ("neg", Int (-17));
        ("float", Float 3.25);
        ("whole", Float 2.0);
        ("text", String "line\n\"quoted\"\\slash\tand control \001");
        ("empty_list", List []);
        ("empty_obj", Obj []);
        ("nested", List [ Int 1; List [ String "x" ]; Obj [ ("k", Null) ] ]);
      ])

let test_json_roundtrip () =
  let compact = Obs.Json.to_string sample_json in
  let pretty = Obs.Json.to_string ~indent:true sample_json in
  check_bool "compact round-trips" true
    (Obs.Json.of_string compact = sample_json);
  check_bool "indented round-trips" true
    (Obs.Json.of_string pretty = sample_json)

let test_json_parse_errors () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"open"; "1 2" ] in
  List.iter
    (fun text ->
      match Obs.Json.of_string text with
      | exception Obs.Json.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" text))
    bad

let test_registry_serialization () =
  let reg = Obs.create () in
  Obs.add (Obs.counter reg "c1") 5;
  let _ = Obs.time (Obs.timer reg "t1") (fun () -> ()) in
  Obs.span reg "phase" (fun () -> ());
  let json = Obs.Json.of_string (Obs.to_string reg) in
  check_bool "schema version present" true
    (Obs.Json.member "schema_version" json = Some (Obs.Json.Int 1));
  (match Obs.Json.(member "counters" json) with
  | Some counters ->
    check_bool "counter value serialized" true
      (Obs.Json.member "c1" counters = Some (Obs.Json.Int 5))
  | None -> Alcotest.fail "no counters member");
  (match Obs.Json.(member "timers" json) with
  | Some timers -> (
    match Obs.Json.member "t1" timers with
    | Some t1 ->
      check_bool "timer count serialized" true
        (Obs.Json.member "count" t1 = Some (Obs.Json.Int 1))
    | None -> Alcotest.fail "no t1 timer")
  | None -> Alcotest.fail "no timers member");
  match Obs.Json.(member "spans" json) with
  | Some (Obs.Json.List [ span ]) ->
    check_bool "span name serialized" true
      (Obs.Json.member "name" span = Some (Obs.Json.String "phase"))
  | _ -> Alcotest.fail "expected exactly one span"

(* ---------- cached handles and the global sink --------------------------- *)

let test_cached_handles_follow_global () =
  let handle = Obs.cached_counter "cached.c" in
  Obs.set_global Obs.disabled;
  Obs.incr (handle ());
  check_int "disabled: stays zero" 0 (Obs.value (handle ()));
  let reg = Obs.create () in
  Obs.set_global reg;
  Obs.incr (handle ());
  Obs.incr (handle ());
  check_int "enabled after set_global" 2
    (Option.get (Obs.find_counter reg "cached.c"));
  Obs.set_global Obs.disabled;
  Obs.incr (handle ());
  check_int "re-disabled: registry unchanged" 2
    (Option.get (Obs.find_counter reg "cached.c"))

(* ---------- integration: a real search run ------------------------------- *)

(* The Figure 3 workload drives Search.run end-to-end against an enabled
   global sink; the emitted counters must agree with the report and with
   each other. *)
let test_search_emits_consistent_counters () =
  let reg = Obs.create () in
  Obs.set_global reg;
  Fun.protect ~finally:(fun () -> Obs.set_global Obs.disabled) @@ fun () ->
  let query =
    cq ~name:"q"
      [ v "Y"; v "Z" ]
      [ atom (v "X") (v "Y") (c "ex:c1"); atom (v "X") (v "Z") (c "ex:c2") ]
  in
  let store =
    store_of
      [
        triple (uri "s1") (uri "p1") (uri "ex:c1");
        triple (uri "s1") (uri "p2") (uri "ex:c2");
        triple (uri "s2") (uri "p1") (uri "ex:c1");
        triple (uri "s2") (uri "p1") (uri "ex:c2");
      ]
  in
  let options =
    {
      Core.Search.default_options with
      strategy = Core.Search.Exnaive;
      avf = false;
      stop_tt = false;
      stop_var = false;
    }
  in
  let report =
    Core.Search.run (Stats.Statistics.create store) options [ query ]
  in
  let counter name =
    match Obs.find_counter reg name with Some n -> n | None -> 0
  in
  check_int "search.runs" 1 (counter "search.runs");
  check_int "obs created mirrors the report" report.Core.Search.created
    (counter "search.created");
  check_int "obs duplicates mirrors the report" report.Core.Search.duplicates
    (counter "search.duplicates");
  check_int "obs discarded mirrors the report" report.Core.Search.discarded
    (counter "search.discarded");
  check_int "obs explored mirrors the report" report.Core.Search.explored
    (counter "search.explored");
  (* every created state is a successor some transition produced *)
  let applied =
    List.fold_left
      (fun acc k ->
        acc + counter ("transition." ^ Core.Transition.kind_name k ^ ".applied"))
      0 Core.Transition.all_kinds
  in
  check_bool "transitions applied >= states created" true
    (applied >= report.Core.Search.created);
  check_bool "some states were created" true (report.Core.Search.created > 0);
  (* per-stratum created counts partition the global count *)
  let stratum_created =
    List.fold_left
      (fun acc k ->
        acc
        + counter ("search.stratum." ^ Core.Transition.kind_name k ^ ".created"))
      0 Core.Transition.all_kinds
  in
  check_int "stratum created partitions created" report.Core.Search.created
    stratum_created;
  (* duplicate-free creations are exactly the distinct non-S0 states *)
  check_int "created minus duplicates = distinct states"
    (report.Core.Search.explored - 1)
    (report.Core.Search.created - report.Core.Search.duplicates);
  (* the cost memo was exercised, and every miss was timed *)
  check_bool "cost memo hit at least once" true (counter "cost.state.hits" > 0);
  check_bool "cost memo missed at least once" true
    (counter "cost.state.misses" > 0);
  (match Obs.timers reg with
  | timers -> (
    match List.assoc_opt "cost.state.eval" timers with
    | Some (calls, _) -> check_int "misses are timed" (counter "cost.state.misses") calls
    | None -> Alcotest.fail "cost.state.eval timer missing"));
  (* statistics probe the store through the indexed counters *)
  check_bool "store probes recorded" true (counter "store.count_probes" > 0);
  (* expansion timing covers every explored state *)
  (match List.assoc_opt "search.expand" (Obs.timers reg) with
  | Some (calls, _) ->
    check_int "one expand timing per explored state"
      report.Core.Search.explored calls
  | None -> Alcotest.fail "search.expand timer missing")

let test_disabled_sink_changes_nothing () =
  Obs.set_global Obs.disabled;
  let query =
    cq ~name:"q" [ v "X" ] [ atom (v "X") (c "p") (c "o") ]
  in
  let store = store_of [ triple (uri "s") (uri "p") (uri "o") ] in
  let report =
    Core.Search.run (Stats.Statistics.create store)
      Core.Search.default_options [ query ]
  in
  check_bool "search still runs" true (report.Core.Search.explored >= 1)

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "semantics" `Quick test_counter_semantics;
          Alcotest.test_case "disabled" `Quick test_disabled_counter;
        ] );
      ("timers", [ Alcotest.test_case "semantics" `Quick test_timer_semantics ]);
      ("spans", [ Alcotest.test_case "nesting" `Quick test_span_nesting ]);
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "registry serialization" `Quick
            test_registry_serialization;
        ] );
      ( "global sink",
        [
          Alcotest.test_case "cached handles" `Quick
            test_cached_handles_follow_global;
        ] );
      ( "integration",
        [
          Alcotest.test_case "search counters consistent" `Quick
            test_search_emits_consistent_counters;
          Alcotest.test_case "disabled sink is inert" `Quick
            test_disabled_sink_changes_nothing;
        ] );
    ]
