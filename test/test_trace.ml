(* The streaming search-trace layer (Obs.Trace) and its offline
   analyzer (Obs.Report): writer/reader round-trip, crash tolerance,
   consistency of a real traced search against its own report, strict
   mode, and the allocation-free disabled path. *)

open Support

let tmp_trace name =
  Filename.temp_file ("rdfviews_" ^ name) ".trace.jsonl"

let with_tmp_trace name f =
  let path = tmp_trace name in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ---------- writer / reader round-trip ----------------------------------- *)

let test_roundtrip () =
  with_tmp_trace "roundtrip" @@ fun path ->
  let trace = Obs.Trace.create path in
  check_bool "open trace is enabled" true (Obs.Trace.is_enabled trace);
  Obs.Trace.run_start trace ~strategy:"DFS"
    ~strata:[| "VB"; "SC"; "JC"; "VF" |]
    ~initial_cost:100.5;
  Obs.Trace.state trace ~cls:Obs.Trace.Accepted ~id:0 ~stratum:0 ~cost:100.5;
  Obs.Trace.state trace ~cls:Obs.Trace.Accepted ~id:1 ~stratum:2 ~cost:90.25;
  Obs.Trace.state trace ~cls:Obs.Trace.Duplicate ~id:2 ~stratum:1
    ~cost:Float.nan;
  Obs.Trace.state trace ~cls:Obs.Trace.Discarded ~id:3 ~stratum:3
    ~cost:Float.nan;
  Obs.Trace.state trace ~cls:Obs.Trace.Reopened ~id:4 ~stratum:2
    ~cost:Float.nan;
  Obs.Trace.transition trace ~kind:"SC" ~applied:3 ~rejected:1 ~elapsed_ns:250;
  Obs.Trace.cost_memo trace ~hits:10 ~misses:5;
  Obs.Trace.heartbeat trace ~created:4 ~explored:2 ~best_cost:90.25
    ~elapsed_ns:1_000;
  Obs.Trace.run_end trace ~best_cost:90.25 ~created:4 ~explored:2 ~duplicates:1
    ~discarded:1 ~completed:true;
  check_int "event count tracks emissions" 11 (Obs.Trace.event_count trace);
  Obs.Trace.close trace;
  Obs.Trace.close trace (* idempotent *);
  (* an emitter on a closed trace is a no-op, not an error *)
  Obs.Trace.cost_memo trace ~hits:11 ~misses:5;
  let events = Obs.Trace.read_file path in
  check_int "all events read back" 11 (List.length events);
  (match events with
  | Obs.Trace.Meta { version } :: _ ->
    check_int "meta carries the schema version" Obs.Trace.schema_version version
  | _ -> Alcotest.fail "first event is not meta");
  (match List.nth events 1 with
  | Obs.Trace.Run_start { strategy; strata; initial_cost; _ } ->
    check_string "strategy survives" "DFS" strategy;
    check_int "strata arity survives" 4 (Array.length strata);
    check_string "stratum label survives" "JC" strata.(2);
    check_bool "initial cost survives" true (initial_cost = 100.5)
  | _ -> Alcotest.fail "second event is not run_start");
  (match List.nth events 3 with
  | Obs.Trace.State { cls; id; stratum; cost; _ } ->
    check_bool "class survives" true (cls = Obs.Trace.Accepted);
    check_int "id survives" 1 id;
    check_int "stratum survives" 2 stratum;
    check_bool "cost survives" true (cost = Some 90.25)
  | _ -> Alcotest.fail "fourth event is not the accepted state");
  (match List.nth events 4 with
  | Obs.Trace.State { cost; _ } ->
    check_bool "nan cost reads back as None" true (cost = None)
  | _ -> Alcotest.fail "fifth event is not the duplicate state");
  (match List.nth events 7 with
  | Obs.Trace.Transition { kind; applied; rejected; elapsed_ns; _ } ->
    check_string "kind survives" "SC" kind;
    check_int "applied survives" 3 applied;
    check_int "rejected survives" 1 rejected;
    check_int "elapsed survives" 250 elapsed_ns
  | _ -> Alcotest.fail "seventh event is not the transition");
  match List.rev events with
  | Obs.Trace.Run_end { best_cost; created; completed; _ } :: _ ->
    check_bool "best cost survives" true (best_cost = 90.25);
    check_int "created survives" 4 created;
    check_bool "completed survives" true completed
  | _ -> Alcotest.fail "last event is not run_end"

let test_state_class_names () =
  List.iter
    (fun cls ->
      match Obs.Trace.(class_of_name (class_name cls)) with
      | Some back -> check_bool "class name round-trips" true (back = cls)
      | None -> Alcotest.fail "class name does not round-trip")
    [
      Obs.Trace.Accepted;
      Obs.Trace.Discarded;
      Obs.Trace.Duplicate;
      Obs.Trace.Reopened;
    ];
  check_bool "unknown class name rejected" true
    (Obs.Trace.class_of_name "exploded" = None)

(* ---------- crash tolerance and malformed input --------------------------- *)

let test_truncated_last_line () =
  with_tmp_trace "truncated" @@ fun path ->
  let trace = Obs.Trace.create path in
  Obs.Trace.run_start trace ~strategy:"DFS" ~strata:[| "SC" |]
    ~initial_cost:10.;
  Obs.Trace.close trace;
  (* simulate a crash cutting the final write mid-line *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "{\"e\":\"state\",\"t\":12,\"k\":\"acc";
  close_out oc;
  let events = Obs.Trace.read_file path in
  check_int "intact prefix still parses" 2 (List.length events)

let test_malformed_middle_line_raises () =
  let text =
    String.concat "\n"
      [
        "{\"e\":\"meta\",\"v\":1}";
        "{\"e\":\"state\",\"t\":12,\"k\":\"acc";
        "{\"e\":\"cost_memo\",\"t\":20,\"hits\":1,\"misses\":2}";
        "";
      ]
  in
  match Obs.Trace.parse_lines text with
  | exception Obs.Trace.Malformed _ -> ()
  | _ -> Alcotest.fail "malformed middle line was accepted"

let test_unknown_event_kind_skipped () =
  let text =
    String.concat "\n"
      [
        "{\"e\":\"meta\",\"v\":1}";
        "{\"e\":\"wormhole\",\"t\":5,\"payload\":[1,2,3]}";
        "{\"e\":\"cost_memo\",\"t\":20,\"hits\":1,\"misses\":2}";
        "";
      ]
  in
  let events = Obs.Trace.parse_lines text in
  check_int "unknown kind skipped, rest kept" 2 (List.length events)

(* ---------- the disabled path must not allocate --------------------------- *)

let test_disabled_emitters_do_not_allocate () =
  let trace = Obs.Trace.disabled in
  check_bool "disabled trace is off" false (Obs.Trace.is_enabled trace);
  (* warm up so any one-time allocation is out of the measured window *)
  Obs.Trace.state trace ~cls:Obs.Trace.Accepted ~id:1 ~stratum:1 ~cost:1.;
  Obs.Trace.transition trace ~kind:"SC" ~applied:1 ~rejected:0 ~elapsed_ns:1;
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    Obs.Trace.state trace ~cls:Obs.Trace.Accepted ~id:i ~stratum:1 ~cost:1.5;
    Obs.Trace.transition trace ~kind:"SC" ~applied:1 ~rejected:0 ~elapsed_ns:i;
    Obs.Trace.cost_memo trace ~hits:i ~misses:i;
    Obs.Trace.heartbeat trace ~created:i ~explored:i ~best_cost:1.5
      ~elapsed_ns:i
  done;
  let allocated = Gc.minor_words () -. before in
  (* allow a few words of test-loop noise; 40k emitter calls that each
     allocated even one word would show up as >= 40_000 *)
  check_bool
    (Printf.sprintf "disabled emitters allocate nothing (saw %.0f words)"
       allocated)
    true (allocated < 256.)

(* ---------- a real traced search ------------------------------------------ *)

let museum_queries () =
  [
    cq ~name:"q1"
      [ v "P"; v "N" ]
      [
        atom (v "P") (c "rdf:type") (c "ex:Painter");
        atom (v "P") (c "ex:name") (v "N");
      ];
    cq ~name:"q2"
      [ v "P"; v "W" ]
      [
        atom (v "P") (c "rdf:type") (c "ex:Painter");
        atom (v "P") (c "ex:painted") (v "W");
      ];
  ]

let museum_store () =
  store_of
    [
      triple (uri "ex:picasso") (uri "rdf:type") (uri "ex:Painter");
      triple (uri "ex:picasso") (uri "ex:name") (lit "Picasso");
      triple (uri "ex:picasso") (uri "ex:painted") (uri "ex:guernica");
      triple (uri "ex:rodin") (uri "rdf:type") (uri "ex:Sculptor");
      triple (uri "ex:rodin") (uri "ex:name") (lit "Rodin");
    ]

let run_traced ?(options = Core.Search.default_options) path queries store =
  let trace = Obs.Trace.create path in
  Obs.Trace.set_global trace;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_global Obs.Trace.disabled;
      Obs.Trace.close trace)
    (fun () -> Core.Search.run (Stats.Statistics.create store) options queries)

let test_traced_search_consistent () =
  with_tmp_trace "search" @@ fun path ->
  let report = run_traced path (museum_queries ()) (museum_store ()) in
  let events = Obs.Trace.read_file path in
  (* the run_end totals must mirror the search report exactly *)
  (match
     List.find_opt
       (function Obs.Trace.Run_end _ -> true | _ -> false)
       events
   with
  | Some
      (Obs.Trace.Run_end
        { best_cost; created; explored; duplicates; discarded; completed; _ })
    ->
    check_int "created mirrors report" report.Core.Search.created created;
    check_int "explored mirrors report" report.Core.Search.explored explored;
    check_int "duplicates mirrors report" report.Core.Search.duplicates
      duplicates;
    check_int "discarded mirrors report" report.Core.Search.discarded discarded;
    check_bool "completed mirrors report" true
      (completed = report.Core.Search.completed);
    check_bool "best cost mirrors report" true
      (Float.abs (best_cost -. report.Core.Search.best_cost) < 1e-9)
  | _ -> Alcotest.fail "trace has no run_end");
  (* per-event records partition the run_end totals *)
  let count cls =
    List.length
      (List.filter
         (function
           | Obs.Trace.State { cls = c; id; _ } -> c = cls && id > 0
           | _ -> false)
         events)
  in
  let accepted = count Obs.Trace.Accepted in
  check_int "state events partition created" report.Core.Search.created
    (accepted + count Obs.Trace.Duplicate + count Obs.Trace.Discarded);
  (* the cheapest accepted cost equals the reported best *)
  let min_accepted =
    List.fold_left
      (fun acc -> function
        | Obs.Trace.State { cls = Obs.Trace.Accepted; cost = Some c; _ } ->
          Float.min acc c
        | _ -> acc)
      Float.infinity events
  in
  check_bool "cheapest accepted state is the best" true
    (Float.abs (min_accepted -. report.Core.Search.best_cost) < 1e-9);
  (* the offline report agrees with the live one *)
  let summary = Obs.Report.of_trace events in
  check_string "summary source" "trace" summary.Obs.Report.source;
  check_int "summary created" report.Core.Search.created
    summary.Obs.Report.created;
  check_int "summary explored" report.Core.Search.explored
    summary.Obs.Report.explored;
  (match summary.Obs.Report.final_cost with
  | Some cost ->
    check_bool "summary final cost" true
      (Float.abs (cost -. report.Core.Search.best_cost) < 1e-9)
  | None -> Alcotest.fail "summary has no final cost");
  (match summary.Obs.Report.initial_cost with
  | Some cost ->
    check_bool "summary initial cost" true
      (Float.abs (cost -. report.Core.Search.initial_cost) < 1e-9)
  | None -> Alcotest.fail "summary has no initial cost");
  (* convergence strictly improves and ends at the final cost *)
  let costs = List.map (fun (_, _, c) -> c) summary.Obs.Report.convergence in
  check_bool "convergence non-empty" true (costs <> []);
  let rec strictly_decreasing = function
    | a :: (b :: _ as rest) -> a > b && strictly_decreasing rest
    | _ -> true
  in
  check_bool "convergence strictly improves" true (strictly_decreasing costs);
  (match List.rev costs with
  | last :: _ ->
    check_bool "convergence ends at the best cost" true
      (Float.abs (last -. report.Core.Search.best_cost) < 1e-9)
  | [] -> ());
  (* time-to-within 0% exists and is the last convergence point *)
  (match Obs.Report.time_to_within summary 0. with
  | Some (_, states) ->
    check_bool "time-to-0%% has a state count" true
      (states <= report.Core.Search.created)
  | None -> Alcotest.fail "no time-to-within point");
  (* rendering mentions every section CI greps for *)
  let text = Obs.Report.render summary in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      check_bool ("render mentions " ^ needle) true (contains text needle))
    [ "convergence"; "acceptance"; "stratum"; "states" ]

(* Tracing must also work under the strict invariant checker, which
   re-validates every accepted state. *)
let test_traced_search_strict () =
  with_tmp_trace "strict" @@ fun path ->
  Unix.putenv "RDFVIEWS_STRICT" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "RDFVIEWS_STRICT" "")
    (fun () ->
      let report = run_traced path (museum_queries ()) (museum_store ()) in
      let summary = Obs.Report.of_trace (Obs.Trace.read_file path) in
      check_int "strict-mode trace created total" report.Core.Search.created
        summary.Obs.Report.created)

(* A search aborted mid-run (the accept hook raises) must still leave a
   readable JSONL prefix once the writer is closed, and the offline
   report must reconstruct totals without a run_end event. *)
let test_raise_mid_search_leaves_valid_prefix () =
  with_tmp_trace "crash" @@ fun path ->
  let accepts = ref 0 in
  let options =
    {
      Core.Search.default_options with
      on_accept =
        Some
          (fun _ ->
            accepts := !accepts + 1;
            if !accepts >= 3 then failwith "injected crash");
    }
  in
  (match
     run_traced ~options path (museum_queries ()) (museum_store ())
   with
  | _ -> Alcotest.fail "injected crash did not propagate"
  | exception Failure _ -> ());
  let events = Obs.Trace.read_file path in
  check_bool "crashed trace still parses" true (List.length events >= 2);
  check_bool "no run_end in a crashed trace" true
    (not
       (List.exists
          (function Obs.Trace.Run_end _ -> true | _ -> false)
          events));
  let summary = Obs.Report.of_trace events in
  check_bool "totals reconstructed from events" true
    (summary.Obs.Report.created >= 2);
  check_bool "crashed run not marked completed" true
    (summary.Obs.Report.completed <> Some true)

(* ---------- Obs.Report unit behavior -------------------------------------- *)

let test_report_of_metrics () =
  let reg = Obs.create () in
  Obs.set_global reg;
  Fun.protect ~finally:(fun () -> Obs.set_global Obs.disabled) @@ fun () ->
  let report =
    Core.Search.run
      (Stats.Statistics.create (museum_store ()))
      Core.Search.default_options (museum_queries ())
  in
  let summary = Obs.Report.of_metrics (Obs.to_json reg) in
  check_string "metrics summary source" "metrics" summary.Obs.Report.source;
  check_int "metrics created" report.Core.Search.created
    summary.Obs.Report.created;
  check_int "metrics explored" report.Core.Search.explored
    summary.Obs.Report.explored;
  check_int "metrics duplicates" report.Core.Search.duplicates
    summary.Obs.Report.duplicates;
  check_bool "metrics convergence empty" true
    (summary.Obs.Report.convergence = []);
  (match summary.Obs.Report.final_cost with
  | Some cost ->
    check_bool "metrics final cost from gauge" true
      (Float.abs (cost -. report.Core.Search.best_cost) < 1e-9)
  | None -> Alcotest.fail "metrics summary has no final cost");
  check_bool "metrics kind rows discovered" true
    (summary.Obs.Report.kinds <> []);
  (* the renderer must not claim per-class stratum data it cannot have *)
  ignore (Obs.Report.render summary)

let test_report_time_to_within () =
  let summary =
    {
      (Obs.Report.of_trace []) with
      Obs.Report.final_cost = Some 100.;
      convergence = [ (10, 1, 200.); (20, 5, 120.); (30, 9, 100.) ];
    }
  in
  (match Obs.Report.time_to_within summary 50. with
  | Some (at_ns, states) ->
    check_int "within 50%% reached at the 120-cost point" 20 at_ns;
    check_int "with 5 states created" 5 states
  | None -> Alcotest.fail "no 50%% point");
  (match Obs.Report.time_to_within summary 0. with
  | Some (at_ns, _) -> check_int "within 0%% is the final point" 30 at_ns
  | None -> Alcotest.fail "no 0%% point");
  match Obs.Report.rcr summary with
  | Some _ -> ()
  | None -> check_bool "rcr needs an initial cost" true true

let () =
  Alcotest.run "trace"
    [
      ( "writer",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "state class names" `Quick test_state_class_names;
        ] );
      ( "crash tolerance",
        [
          Alcotest.test_case "truncated last line" `Quick
            test_truncated_last_line;
          Alcotest.test_case "malformed middle line" `Quick
            test_malformed_middle_line_raises;
          Alcotest.test_case "unknown kind skipped" `Quick
            test_unknown_event_kind_skipped;
        ] );
      ( "disabled path",
        [
          Alcotest.test_case "no allocation" `Quick
            test_disabled_emitters_do_not_allocate;
        ] );
      ( "search integration",
        [
          Alcotest.test_case "trace consistent with report" `Quick
            test_traced_search_consistent;
          Alcotest.test_case "strict mode" `Quick test_traced_search_strict;
          Alcotest.test_case "raise mid-search" `Quick
            test_raise_mid_search_leaves_valid_prefix;
        ] );
      ( "report",
        [
          Alcotest.test_case "of_metrics" `Quick test_report_of_metrics;
          Alcotest.test_case "time_to_within" `Quick test_report_time_to_within;
        ] );
    ]
