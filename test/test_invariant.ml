open Support

(* The museum running example (Fig. 1). *)
let q1_paper =
  cq ~name:"q1"
    [ v "X"; v "Z" ]
    [
      atom (v "X") (c "ex:hasPainted") (c "ex:starryNight");
      atom (v "X") (c "ex:isParentOf") (v "Y");
      atom (v "Y") (c "ex:hasPainted") (v "Z");
    ]

let q2_paper =
  cq ~name:"q2"
    [ v "P" ]
    [ atom (v "P") (c "ex:hasPainted") (v "W") ]

let museum_store =
  store_of
    [
      triple (uri "ex:vanGogh") (uri "ex:hasPainted") (uri "ex:starryNight");
      triple (uri "ex:vanGogh") (uri "ex:isParentOf") (uri "ex:vincentJr");
      triple (uri "ex:vincentJr") (uri "ex:hasPainted") (uri "ex:sunflowers2");
      triple (uri "ex:monet") (uri "ex:hasPainted") (uri "ex:waterLilies");
      triple (uri "ex:monet") (uri "ex:isParentOf") (uri "ex:michel");
      triple (uri "ex:michel") (uri "ex:hasPainted") (uri "ex:starryNight");
    ]

let estimator_for store =
  Core.Cost.create
    (Stats.Statistics.create ~mode:Stats.Statistics.Plain store)
    Core.Cost.default_weights

let has_violation family violations =
  List.exists
    (fun (viol : Core.Invariant.violation) ->
      String.equal viol.Core.Invariant.invariant family)
    violations

let check_clean what violations =
  if violations <> [] then
    Alcotest.failf "%s: unexpected violations:\n%s" what
      (String.concat "\n"
         (List.map Core.Invariant.violation_to_string violations))

(* ---------- positive: the paper example ---------------------------------- *)

let test_initial_state_certified () =
  let workload = [ q1_paper; q2_paper ] in
  let reference = Core.Invariant.reference_of_workload workload in
  let state = Core.State.initial workload in
  check_clean "initial state"
    (Core.Invariant.check
       ~estimator:(estimator_for museum_store)
       reference state)

let test_reference_recovered_from_state () =
  let workload = [ q1_paper; q2_paper ] in
  let state = Core.State.initial workload in
  match Core.Invariant.reference_of_state state with
  | Error m -> Alcotest.failf "reference_of_state failed: %s" m
  | Ok recovered ->
    List.iter
      (fun q ->
        match List.assoc_opt q.Query.Cq.name recovered with
        | None -> Alcotest.failf "query %s missing" q.Query.Cq.name
        | Some disjuncts ->
          check_bool
            ("recovered reference equivalent for " ^ q.Query.Cq.name)
            true
            (Core.Invariant.ucq_equivalent disjuncts [ q ]))
      workload

let test_all_single_transitions_certified () =
  let workload = [ q1_paper ] in
  let reference = Core.Invariant.reference_of_workload workload in
  let state = Core.State.initial workload in
  let count = ref 0 in
  List.iter
    (fun kind ->
      List.iter
        (fun succ ->
          incr count;
          check_clean
            (Core.Transition.kind_name kind ^ " successor")
            (Core.Invariant.check reference succ);
          check_clean "edge replayable"
            (Core.Invariant.check_edge ~parent:state ~child:succ))
        (Core.Transition.successors state kind))
    Core.Transition.all_kinds;
  check_bool "some successors were checked" true (!count > 0)

let test_search_accepts_only_valid_states () =
  let workload = [ q1_paper; q2_paper ] in
  let reference = Core.Invariant.reference_of_workload workload in
  let estimator = estimator_for museum_store in
  let accepted = ref [] in
  let options =
    {
      Core.Search.default_options with
      max_states = Some 150;
      on_accept = Some (fun s -> accepted := s :: !accepted);
    }
  in
  let report =
    Core.Search.run_from estimator options (Core.State.initial workload)
  in
  check_bool "search accepted states" true (List.length !accepted > 1);
  List.iter
    (fun state ->
      check_clean "accepted state"
        (Core.Invariant.check ~estimator reference state))
    !accepted;
  check_bool "best state among accepted" true
    (List.exists
       (fun s ->
         Core.State.equal_key (Core.State.key s)
           (Core.State.key report.Core.Search.best))
       !accepted)

let test_edge_not_replayable () =
  let s1 = Core.State.initial [ q1_paper ] in
  let s2 = Core.State.initial [ q2_paper ] in
  check_bool "unrelated states are not an edge" true
    (has_violation "edge" (Core.Invariant.check_edge ~parent:s1 ~child:s2))

(* ---------- negative: corrupted states ----------------------------------- *)

let test_swapped_rewritings_rejected () =
  let state = Core.State.initial [ q1_paper; q2_paper ] in
  let swapped =
    match state.Core.State.rewritings with
    | [ (n1, r1); (n2, r2) ] ->
      Core.State.make ~views:state.Core.State.views
        ~rewritings:[ (n1, r2); (n2, r1) ]
    | _ -> Alcotest.fail "expected two rewritings"
  in
  let reference = Core.Invariant.reference_of_workload [ q1_paper; q2_paper ] in
  check_bool "swapped rewritings violate equivalence" true
    (has_violation "equivalence" (Core.Invariant.check reference swapped))

let test_view_with_extra_atom_incomplete () =
  (* The view is strictly narrower than the query (one atom too many):
     the rewriting is sound but incomplete, so exactly the completeness
     direction of the containment certificate must fail. *)
  let narrow =
    Core.View.of_cq
      (cq ~name:"v_narrow" [ v "P" ]
         [
           atom (v "P") (c "ex:hasPainted") (v "W");
           atom (v "P") (c "ex:isParentOf") (v "K");
         ])
  in
  let state =
    Core.State.make ~views:[ narrow ]
      ~rewritings:[ ("q2", Core.Rewriting.Scan "v_narrow") ]
  in
  let violations =
    Core.Invariant.check (Core.Invariant.reference_of_workload [ q2_paper ]) state
  in
  check_bool "incomplete rewriting detected" true
    (has_violation "equivalence" violations);
  check_bool "detail names the direction" true
    (List.exists
       (fun (viol : Core.Invariant.violation) ->
         String.length viol.Core.Invariant.detail >= 10
         && String.sub viol.Core.Invariant.detail
              (String.length "rewriting of q2 is ")
              10
            = "incomplete")
       violations)

let test_dropped_selection_unsound () =
  (* The view forgets the starryNight constant of q1's first atom and the
     rewriting never re-applies it: the unfolding is strictly wider than
     the query — sound fails, complete holds. *)
  let wide =
    Core.View.of_cq
      (cq ~name:"v_wide"
         [ v "X"; v "Z" ]
         [
           atom (v "X") (c "ex:hasPainted") (v "S");
           atom (v "X") (c "ex:isParentOf") (v "Y");
           atom (v "Y") (c "ex:hasPainted") (v "Z");
         ])
  in
  let state =
    Core.State.make ~views:[ wide ]
      ~rewritings:[ ("q1", Core.Rewriting.Scan "v_wide") ]
  in
  let violations =
    Core.Invariant.check (Core.Invariant.reference_of_workload [ q1_paper ]) state
  in
  check_bool "unsound rewriting detected" true
    (has_violation "equivalence" violations)

let test_dangling_scan_rejected () =
  let state = Core.State.initial [ q2_paper ] in
  let broken =
    Core.State.make ~views:state.Core.State.views
      ~rewritings:[ ("q2", Core.Rewriting.Scan "ghost") ]
  in
  let violations =
    Core.Invariant.check (Core.Invariant.reference_of_workload [ q2_paper ]) broken
  in
  check_bool "dangling scan is a structure violation" true
    (has_violation "structure" violations);
  check_bool "dangling scan breaks unfolding" true
    (has_violation "rewriting" violations)

let test_missing_rewriting_rejected () =
  let state = Core.State.initial [ q2_paper ] in
  let silenced = Core.State.make ~views:state.Core.State.views ~rewritings:[] in
  check_bool "missing rewriting is a coverage violation" true
    (has_violation "coverage"
       (Core.Invariant.check
          (Core.Invariant.reference_of_workload [ q2_paper ])
          silenced))

let test_negative_weights_flagged () =
  let estimator =
    Core.Cost.create
      (Stats.Statistics.create ~mode:Stats.Statistics.Plain museum_store)
      { Core.Cost.default_weights with c1 = -1.; c2 = -1. }
  in
  let state = Core.State.initial [ q1_paper ] in
  check_bool "negative REC estimate flagged" true
    (has_violation "cost" (Core.Invariant.check_costs estimator state))

let test_memo_consistency () =
  let estimator = estimator_for museum_store in
  let state = Core.State.initial [ q1_paper ] in
  ignore (Core.Cost.state_cost estimator state);
  check_bool "memo consistent after caching" true
    (Core.Cost.memo_consistent estimator state)

(* ---------- state files --------------------------------------------------- *)

let test_state_file_round_trip () =
  let workload = [ q1_paper; q2_paper ] in
  let reference = Core.Invariant.reference_of_workload workload in
  let state = Core.State.initial workload in
  (* take a non-trivial state: one VB successor *)
  let successor =
    match Core.Transition.successors state Core.Transition.VB with
    | s :: _ -> s
    | [] -> Alcotest.fail "expected a VB successor"
  in
  let text = Core.State_io.states_to_text [ state; successor ] in
  match Core.State_io.parse_states text with
  | [ state'; successor' ] ->
    check_string "first state round-trips" (Core.State.key_string state)
      (Core.State.key_string state');
    check_string "second state round-trips"
      (Core.State.key_string successor)
      (Core.State.key_string successor');
    check_clean "reloaded state valid" (Core.Invariant.check reference state');
    check_clean "reloaded successor valid"
      (Core.Invariant.check reference successor')
  | states -> Alcotest.failf "expected 2 states, parsed %d" (List.length states)

let test_expr_round_trip () =
  let exprs =
    [
      Core.Rewriting.Scan "v1";
      Core.Rewriting.Select
        ( [
            Core.Rewriting.Eq_cst ("x", uri "ex:starryNight");
            Core.Rewriting.Eq_cst ("y", lit "mona");
            Core.Rewriting.Eq_col ("x", "y");
          ],
          Core.Rewriting.Scan "v1" );
      Core.Rewriting.Project
        ( [ "a"; "b" ],
          Core.Rewriting.Join
            ( [ ("a", "c") ],
              Core.Rewriting.Scan "v1",
              Core.Rewriting.Rename ([ ("d", "c") ], Core.Rewriting.Scan "v2") ) );
      Core.Rewriting.Union
        [ Core.Rewriting.Scan "v1"; Core.Rewriting.Scan "v2" ];
      Core.Rewriting.Join
        ([], Core.Rewriting.Scan "v1", Core.Rewriting.Scan "v2");
    ]
  in
  List.iter
    (fun e ->
      let text = Core.State_io.expr_to_text e in
      check_bool
        ("round-trip " ^ text)
        true
        (Core.Rewriting.equal e (Core.State_io.parse_expr text)))
    exprs

let test_corrupted_state_file_rejected () =
  Alcotest.check_raises "garbage line"
    (Core.State_io.Syntax_error
       "line 2: expected 'state', 'view ...' or 'rewrite ...'") (fun () ->
      ignore (Core.State_io.parse_states "state\nnot a directive\n"));
  match
    Core.State_io.parse_states
      "state\nview v9(?x) :- t(?x, <ex:p>, ?y).\nrewrite q1 := scan ghost\n"
  with
  | [ state ] ->
    let violations =
      Core.Invariant.check
        (Core.Invariant.reference_of_workload
           [ cq ~name:"q1" [ v "A" ] [ atom (v "A") (c "ex:p") (v "B") ] ])
        state
    in
    check_bool "reloaded corrupt state names the violated invariant" true
      (has_violation "structure" violations)
  | states -> Alcotest.failf "expected 1 state, parsed %d" (List.length states)

(* ---------- strict mode --------------------------------------------------- *)

let test_strict_mode_search () =
  Unix.putenv "RDFVIEWS_STRICT" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "RDFVIEWS_STRICT" "0")
    (fun () ->
      check_bool "strict enabled" true (Core.Invariant.strict_enabled ());
      let estimator = estimator_for museum_store in
      let options =
        { Core.Search.default_options with max_states = Some 100 }
      in
      (* a valid search must pass all strict assertions *)
      let report =
        Core.Search.run_from estimator options
          (Core.State.initial [ q1_paper ])
      in
      check_bool "strict search explored states" true
        (report.Core.Search.explored > 0));
  check_bool "strict disabled again" false (Core.Invariant.strict_enabled ())

(* ---------- randomized ---------------------------------------------------- *)

let test_random_workloads_certified () =
  List.iter
    (fun seed ->
      let workload =
        Workload.Generator.generate
          {
            Workload.Generator.default_spec with
            Workload.Generator.n_queries = 2;
            atoms_per_query = 3;
            seed;
          }
      in
      let reference = Core.Invariant.reference_of_workload workload in
      let store = museum_store in
      let estimator = estimator_for store in
      let checked = ref 0 in
      let options =
        {
          Core.Search.default_options with
          max_states = Some 60;
          on_accept =
            Some
              (fun state ->
                incr checked;
                check_clean
                  (Printf.sprintf "seed %d accepted state" seed)
                  (Core.Invariant.check ~estimator reference state));
        }
      in
      ignore (Core.Search.run_from estimator options (Core.State.initial workload));
      check_bool "states were certified" true (!checked > 0))
    [ 0; 1; 2; 3 ]

let () =
  Alcotest.run "invariant"
    [
      ( "positive",
        [
          Alcotest.test_case "initial state certified" `Quick
            test_initial_state_certified;
          Alcotest.test_case "reference recovered from state" `Quick
            test_reference_recovered_from_state;
          Alcotest.test_case "single transitions certified" `Quick
            test_all_single_transitions_certified;
          Alcotest.test_case "search accepts only valid states" `Quick
            test_search_accepts_only_valid_states;
          Alcotest.test_case "memo consistency" `Quick test_memo_consistency;
        ] );
      ( "negative",
        [
          Alcotest.test_case "swapped rewritings rejected" `Quick
            test_swapped_rewritings_rejected;
          Alcotest.test_case "extra atom = incomplete" `Quick
            test_view_with_extra_atom_incomplete;
          Alcotest.test_case "dropped selection = unsound" `Quick
            test_dropped_selection_unsound;
          Alcotest.test_case "dangling scan rejected" `Quick
            test_dangling_scan_rejected;
          Alcotest.test_case "missing rewriting rejected" `Quick
            test_missing_rewriting_rejected;
          Alcotest.test_case "negative weights flagged" `Quick
            test_negative_weights_flagged;
          Alcotest.test_case "edge not replayable" `Quick
            test_edge_not_replayable;
        ] );
      ( "state-io",
        [
          Alcotest.test_case "state file round trip" `Quick
            test_state_file_round_trip;
          Alcotest.test_case "expression round trip" `Quick
            test_expr_round_trip;
          Alcotest.test_case "corrupted file rejected" `Quick
            test_corrupted_state_file_rejected;
        ] );
      ( "strict",
        [ Alcotest.test_case "strict search" `Quick test_strict_mode_search ] );
      ( "random",
        [
          Alcotest.test_case "random workloads certified" `Quick
            test_random_workloads_certified;
        ] );
    ]
