(* Differential suite for the storage backends: the compact
   sorted-segment backend must be observationally identical to the
   hash backend under any interleaving of add / remove / merge, and
   the segment layer must handle every block-boundary shape. *)

open Support

(* ---------- hash vs compact differential -------------------------------- *)

type op = Add of Rdf.Triple.t | Remove of Rdf.Triple.t | Merge

let gen_ops =
  let open QCheck.Gen in
  let gen_op =
    frequency
      [
        (6, map (fun t -> Add t) gen_data_triple);
        (3, map (fun t -> Remove t) gen_data_triple);
        (1, return Merge);
      ]
  in
  list_size (int_range 5 80) gen_op

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (function
             | Add t -> "add " ^ Rdf.Triple.to_string t
             | Remove t -> "del " ^ Rdf.Triple.to_string t
             | Merge -> "merge")
           ops))
    gen_ops

let sorted_triples st = List.sort compare (Rdf.Store.to_triples st)

(* Encode a term-level pattern against one store's own dictionary;
   [None] means some constant never entered the dictionary, i.e. the
   pattern cannot match. *)
let encode_pattern st (ts, tp, to_) =
  let enc = function
    | None -> Some None
    | Some term -> (
      match Rdf.Store.find_term st term with
      | Some code -> Some (Some code)
      | None -> None)
  in
  match (enc ts, enc tp, enc to_) with
  | Some ps, Some pp, Some po -> Some { Rdf.Store.ps; pp; po }
  | _ -> None

let count_pattern st tpat =
  match encode_pattern st tpat with
  | None -> 0
  | Some pat -> Rdf.Store.count_matching st pat

let matching_terms st tpat =
  match encode_pattern st tpat with
  | None -> []
  | Some pat ->
    Rdf.Store.fold_matching st pat
      (fun (s, p, o) acc ->
        ( Rdf.Store.decode_term st s,
          Rdf.Store.decode_term st p,
          Rdf.Store.decode_term st o )
        :: acc)
      []
    |> List.sort compare

(* Every pattern shape over the small term universe that the data
   generator draws from. *)
let probe_patterns ops =
  let terms =
    List.concat_map
      (function
        | Add t | Remove t -> [ t.Rdf.Triple.s; t.Rdf.Triple.p; t.Rdf.Triple.o ]
        | Merge -> [])
      ops
    |> List.sort_uniq compare
  in
  let some x = Some x in
  List.concat_map
    (fun t ->
      [
        (some t, None, None);
        (None, some t, None);
        (None, None, some t);
      ])
    terms
  @ List.concat_map
      (function
        | Add t | Remove t ->
          let s = some t.Rdf.Triple.s
          and p = some t.Rdf.Triple.p
          and o = some t.Rdf.Triple.o in
          [ (s, p, None); (s, None, o); (None, p, o); (s, p, o) ]
        | Merge -> [])
      ops
  @ [ (None, None, None) ]

let prop_differential =
  QCheck.Test.make ~name:"hash and compact agree under any interleaving"
    ~count:150 arb_ops (fun ops ->
      let hash = Rdf.Store.create ~backend:Rdf.Backend.Hash () in
      let compact = Rdf.Store.create ~backend:Rdf.Backend.Compact () in
      List.iter
        (fun op ->
          (match op with
          | Add t ->
            let rh = Rdf.Store.add hash t in
            let rc = Rdf.Store.add compact t in
            if rh <> rc then
              QCheck.Test.fail_reportf "add %s: hash=%b compact=%b"
                (Rdf.Triple.to_string t) rh rc
          | Remove t ->
            let rh = Rdf.Store.remove hash t in
            let rc = Rdf.Store.remove compact t in
            if rh <> rc then
              QCheck.Test.fail_reportf "remove %s: hash=%b compact=%b"
                (Rdf.Triple.to_string t) rh rc
          | Merge -> Rdf.Store.compact compact);
          if Rdf.Store.size hash <> Rdf.Store.size compact then
            QCheck.Test.fail_reportf "size diverged: hash=%d compact=%d"
              (Rdf.Store.size hash) (Rdf.Store.size compact);
          (* the version stamp contract: bumped on exactly the
             successful mutations, never by a merge *)
          if Rdf.Store.version hash <> Rdf.Store.version compact then
            QCheck.Test.fail_reportf "version diverged: hash=%d compact=%d"
              (Rdf.Store.version hash) (Rdf.Store.version compact))
        ops;
      if sorted_triples hash <> sorted_triples compact then
        QCheck.Test.fail_report "triple sets diverged";
      List.iter
        (fun tpat ->
          let ch = count_pattern hash tpat in
          let cc = count_pattern compact tpat in
          if ch <> cc then
            QCheck.Test.fail_reportf "count_matching diverged: %d vs %d" ch cc;
          if matching_terms hash tpat <> matching_terms compact tpat then
            QCheck.Test.fail_report "fold_matching results diverged")
        (probe_patterns ops);
      List.iter
        (fun col ->
          let dh = Rdf.Store.distinct_in_column hash col in
          let dc = Rdf.Store.distinct_in_column compact col in
          if dh <> dc then
            QCheck.Test.fail_reportf "distinct_in_column diverged: %d vs %d" dh
              dc;
          let ah = Rdf.Store.avg_term_size hash col in
          let ac = Rdf.Store.avg_term_size compact col in
          if Float.abs (ah -. ac) > 1e-9 then
            QCheck.Test.fail_reportf "avg_term_size diverged: %f vs %f" ah ac;
          let codes st =
            List.sort_uniq compare
              (List.map (Rdf.Store.decode_term st) (Rdf.Store.column_codes st col))
          in
          if codes hash <> codes compact then
            QCheck.Test.fail_report "column_codes diverged")
        [ `S; `P; `O ];
      true)

(* A merge must leave contents, counts and version untouched. *)
let prop_merge_is_invisible =
  QCheck.Test.make ~name:"compact () preserves observable state" ~count:100
    arb_ops (fun ops ->
      let st = Rdf.Store.create ~backend:Rdf.Backend.Compact () in
      List.iter
        (function
          | Add t -> ignore (Rdf.Store.add st t : bool)
          | Remove t -> ignore (Rdf.Store.remove st t : bool)
          | Merge -> ())
        ops;
      let before = sorted_triples st in
      let v = Rdf.Store.version st in
      let counts =
        List.map (fun tpat -> count_pattern st tpat) (probe_patterns ops)
      in
      Rdf.Store.compact st;
      Rdf.Store.compact st;
      before = sorted_triples st
      && v = Rdf.Store.version st
      && counts = List.map (fun tpat -> count_pattern st tpat) (probe_patterns ops))

(* ---------- segment block-boundary edges --------------------------------- *)

(* Brute-force oracle over a plain row list. *)
let check_segment ~block_rows rows () =
  let sorted = List.sort compare rows in
  let arr = Array.make (3 * List.length sorted) 0 in
  List.iteri
    (fun i (a, b, c) ->
      arr.(3 * i) <- a;
      arr.((3 * i) + 1) <- b;
      arr.((3 * i) + 2) <- c)
    sorted;
  let seg =
    Rdf.Segment.of_sorted_array ~block_rows arr ~rows:(List.length sorted)
  in
  check_int "segment rows" (List.length sorted) (Rdf.Segment.n seg);
  let leading = List.sort_uniq compare (List.map (fun (a, _, _) -> a) sorted) in
  check_int "distinct leading" (List.length leading)
    (Rdf.Segment.distinct_leading seg);
  let values =
    List.sort_uniq compare
      (List.concat_map (fun (a, b, c) -> [ a; b; c ]) sorted)
  in
  let candidates = -1 :: (values @ List.map (fun v -> v + 1) values) in
  List.iter
    (fun a ->
      let expect = List.length (List.filter (fun (x, _, _) -> x = a) sorted) in
      let lo, hi = Rdf.Segment.locate1 seg a in
      check_int (Printf.sprintf "locate1 %d" a) expect (hi - lo);
      List.iter
        (fun b ->
          let expect =
            List.length
              (List.filter (fun (x, y, _) -> x = a && y = b) sorted)
          in
          let lo, hi = Rdf.Segment.locate2 seg a b in
          check_int (Printf.sprintf "locate2 %d %d" a b) expect (hi - lo))
        candidates)
    candidates;
  List.iter
    (fun (a, b, c) ->
      check_bool "mem present" true (Rdf.Segment.mem seg a b c);
      check_bool "mem absent" false (Rdf.Segment.mem seg a b (c + 1000)))
    sorted;
  (* full enumeration round-trips *)
  let got = ref [] in
  Rdf.Segment.iter_all seg (fun a b c -> got := (a, b, c) :: !got);
  check_bool "iter_all round-trip" true (List.rev !got = sorted)

let rows_n n = List.init n (fun i -> (i / 4, i mod 4, (7 * i) mod 11))

let segment_edge_tests =
  [
    Alcotest.test_case "empty segment" `Quick (check_segment ~block_rows:4 []);
    Alcotest.test_case "single partial block" `Quick
      (check_segment ~block_rows:4 (rows_n 3));
    Alcotest.test_case "exactly one full block" `Quick
      (check_segment ~block_rows:4 (rows_n 4));
    Alcotest.test_case "exact multiple of block size" `Quick
      (check_segment ~block_rows:4 (rows_n 16));
    Alcotest.test_case "run spanning blocks" `Quick
      (check_segment ~block_rows:4
         (List.init 13 (fun i -> (5, i, i)) @ rows_n 7));
    Alcotest.test_case "uniform leading value" `Quick
      (check_segment ~block_rows:4 (List.init 10 (fun i -> (1, i / 3, i))));
  ]

(* A block whose every row is tombstoned: remove all merged triples,
   leaving only tombstones over the segments. *)
let test_tombstone_only_block () =
  let st = Rdf.Store.create ~backend:Rdf.Backend.Compact () in
  let trs =
    List.init 10 (fun i ->
        triple (uri (Printf.sprintf "s%d" i)) (uri "p") (lit "x"))
  in
  List.iter (fun t -> ignore (Rdf.Store.add st t : bool)) trs;
  Rdf.Store.compact st;
  List.iter (fun t -> check_bool "removed" true (Rdf.Store.remove st t)) trs;
  check_int "empty size" 0 (Rdf.Store.size st);
  (match Rdf.Store.find_term st (uri "p") with
  | Some p ->
    check_int "tombstoned count" 0
      (Rdf.Store.count_matching st
         { Rdf.Store.ps = None; pp = Some p; po = None });
    let _, n = Rdf.Store.scan1 st `P p in
    check_int "tombstoned scan" 0 n
  | None -> Alcotest.fail "p must be in the dictionary");
  check_int "distinct S" 0 (Rdf.Store.distinct_in_column st `S);
  (* merging away the tombstones must change nothing observable *)
  Rdf.Store.compact st;
  check_int "still empty" 0 (Rdf.Store.size st);
  check_bool "re-add after purge" true (Rdf.Store.add st (List.hd trs))

(* A larger deterministic workload crosses many block boundaries once
   merged (Barton at 300 entities is ~1800 triples = several blocks). *)
let test_barton_scale_parity () =
  let hash = Workload.Barton.store ~n_entities:300 ~seed:7 () in
  let compact = Rdf.Store.create ~backend:Rdf.Backend.Compact () in
  Rdf.Store.fold_all hash
    (fun (s, p, o) () ->
      let t =
        Rdf.Triple.make
          (Rdf.Store.decode_term hash s)
          (Rdf.Store.decode_term hash p)
          (Rdf.Store.decode_term hash o)
      in
      ignore (Rdf.Store.add compact t : bool))
    ();
  Rdf.Store.compact compact;
  check_int "sizes" (Rdf.Store.size hash) (Rdf.Store.size compact);
  List.iter
    (fun col ->
      check_int "distinct"
        (Rdf.Store.distinct_in_column hash col)
        (Rdf.Store.distinct_in_column compact col))
    [ `S; `P; `O ];
  (* every property bucket agrees in both count and content *)
  List.iter
    (fun code_h ->
      let term = Rdf.Store.decode_term hash code_h in
      let tpat = (None, Some term, None) in
      check_int "bucket count" (count_pattern hash tpat)
        (count_pattern compact tpat);
      check_bool "bucket content" true
        (matching_terms hash tpat = matching_terms compact tpat))
    (Rdf.Store.column_codes hash `P);
  check_bool "recommended batch rows positive" true
    (Rdf.Store.recommended_batch_rows compact > 0
    && Rdf.Store.recommended_batch_rows hash > 0);
  check_bool "compact resident bytes below hash" true
    (Rdf.Store.resident_bytes compact < Rdf.Store.resident_bytes hash)

let () =
  Alcotest.run "store_backends"
    [
      ( "differential",
        [
          to_alcotest prop_differential;
          to_alcotest prop_merge_is_invisible;
        ] );
      ("segment edges", segment_edge_tests);
      ( "compact store",
        [
          Alcotest.test_case "tombstone-only block" `Quick
            test_tombstone_only_block;
          Alcotest.test_case "Barton-scale parity" `Quick
            test_barton_scale_parity;
        ] );
    ]
