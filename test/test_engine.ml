open Support

let museum =
  [
    triple (uri "ex:vanGogh") (uri "ex:hasPainted") (uri "ex:starryNight");
    triple (uri "ex:vanGogh") (uri "ex:isParentOf") (uri "ex:vincentJr");
    triple (uri "ex:vincentJr") (uri "ex:hasPainted") (uri "ex:sunflowers2");
    triple (uri "ex:monet") (uri "ex:hasPainted") (uri "ex:waterLilies");
  ]

let museum_store = store_of museum

(* ---------- relations ----------------------------------------------------- *)

let test_relation_dedup () =
  let rel =
    Engine.Relation.make ~name:"r" ~cols:[ "a"; "b" ]
      [ [| 1; 2 |]; [| 1; 2 |]; [| 3; 4 |] ]
  in
  check_int "deduplicated" 2 (Engine.Relation.cardinality rel);
  check_bool "mem" true (Engine.Relation.mem rel [| 1; 2 |]);
  check_bool "not mem" false (Engine.Relation.mem rel [| 9; 9 |])

let test_relation_add_remove () =
  let rel = Engine.Relation.make ~name:"r" ~cols:[ "a" ] [ [| 1 |] ] in
  check_bool "add new" true (Engine.Relation.add_row rel [| 2 |]);
  check_bool "add dup" false (Engine.Relation.add_row rel [| 2 |]);
  check_int "two rows" 2 (Engine.Relation.cardinality rel);
  check_bool "remove" true (Engine.Relation.remove_row rel [| 1 |]);
  check_bool "remove absent" false (Engine.Relation.remove_row rel [| 1 |]);
  check_int "one row" 1 (Engine.Relation.cardinality rel)

let test_relation_projection_indices () =
  let rel = Engine.Relation.make ~name:"r" ~cols:[ "a"; "b"; "c" ] [] in
  check_bool "indices" true (Engine.Relation.project_indices rel [ "c"; "a" ] = [ 2; 0 ])

(* ---------- materialization ----------------------------------------------- *)

let test_materialize_single_atom () =
  let view =
    cq ~name:"v" [ v "X"; v "Y" ] [ atom (v "X") (c "ex:hasPainted") (v "Y") ]
  in
  let rel = Engine.Materialize.materialize_cq museum_store view in
  check_int "three painters" 3 (Engine.Relation.cardinality rel);
  check_bool "cols" true (Engine.Relation.cols rel = [ "X"; "Y" ])

let test_materialize_join_view () =
  let view =
    cq ~name:"v" [ v "X"; v "Z" ]
      [
        atom (v "X") (c "ex:isParentOf") (v "Y");
        atom (v "Y") (c "ex:hasPainted") (v "Z");
      ]
  in
  let rel = Engine.Materialize.materialize_cq museum_store view in
  check_int "one tuple" 1 (Engine.Relation.cardinality rel)

let test_materialize_ucq () =
  let a = cq ~name:"u" [ v "X" ] [ atom (v "X") (c "ex:hasPainted") (v "Y") ] in
  let b = cq ~name:"u2" [ v "X" ] [ atom (v "X") (c "ex:isParentOf") (v "Y") ] in
  let u = Query.Ucq.make ~name:"u" [ a; b ] in
  let rel = Engine.Materialize.materialize_ucq museum_store u in
  (* vanGogh, vincentJr, monet *)
  check_int "union dedup" 3 (Engine.Relation.cardinality rel)

let test_size_bytes_positive () =
  let view = cq ~name:"v" [ v "X" ] [ atom (v "X") (c "ex:hasPainted") (v "Y") ] in
  let rel = Engine.Materialize.materialize_cq museum_store view in
  check_bool "positive size" true
    (Engine.Relation.size_bytes museum_store rel > 0)

(* ---------- executor ------------------------------------------------------- *)

let env_of_rels rels =
  let env = Hashtbl.create 8 in
  List.iter (fun (r : Engine.Relation.t) -> Hashtbl.replace env (Engine.Relation.name r) r) rels;
  env

let test_executor_select () =
  let code t = Rdf.Store.encode_term museum_store t in
  let rel =
    Engine.Relation.make ~name:"v" ~cols:[ "X"; "Y" ]
      [
        [| code (uri "ex:vanGogh"); code (uri "ex:starryNight") |];
        [| code (uri "ex:monet"); code (uri "ex:waterLilies") |];
      ]
  in
  let env = env_of_rels [ rel ] in
  let result =
    Engine.Executor.execute museum_store env
      (Core.Rewriting.Select
         ([ Core.Rewriting.Eq_cst ("Y", uri "ex:starryNight") ], Core.Rewriting.Scan "v"))
  in
  check_int "one row" 1 (Engine.Relation.cardinality result)

let test_executor_select_unknown_constant () =
  let rel = Engine.Relation.make ~name:"v" ~cols:[ "X" ] [ [| 0 |] ] in
  let env = env_of_rels [ rel ] in
  let result =
    Engine.Executor.execute museum_store env
      (Core.Rewriting.Select
         ([ Core.Rewriting.Eq_cst ("X", uri "ex:notInDictionary") ],
          Core.Rewriting.Scan "v"))
  in
  check_int "empty" 0 (Engine.Relation.cardinality result)

let test_executor_join_natural () =
  let r1 =
    Engine.Relation.make ~name:"r1" ~cols:[ "X"; "Y" ]
      [ [| 1; 2 |]; [| 3; 4 |] ]
  in
  let r2 =
    Engine.Relation.make ~name:"r2" ~cols:[ "Y"; "Z" ]
      [ [| 2; 10 |]; [| 2; 11 |]; [| 5; 12 |] ]
  in
  let env = env_of_rels [ r1; r2 ] in
  let result =
    Engine.Executor.execute museum_store env
      (Core.Rewriting.Join ([], Core.Rewriting.Scan "r1", Core.Rewriting.Scan "r2"))
  in
  check_int "two joined rows" 2 (Engine.Relation.cardinality result);
  check_bool "columns" true (Engine.Relation.cols result = [ "X"; "Y"; "Z" ])

let test_executor_project_dedups () =
  let r =
    Engine.Relation.make ~name:"r" ~cols:[ "X"; "Y" ]
      [ [| 1; 2 |]; [| 1; 3 |] ]
  in
  let env = env_of_rels [ r ] in
  let result =
    Engine.Executor.execute museum_store env
      (Core.Rewriting.Project ([ "X" ], Core.Rewriting.Scan "r"))
  in
  check_int "set semantics" 1 (Engine.Relation.cardinality result)

let test_executor_rename_and_union () =
  let r1 = Engine.Relation.make ~name:"r1" ~cols:[ "A" ] [ [| 1 |]; [| 2 |] ] in
  let r2 = Engine.Relation.make ~name:"r2" ~cols:[ "B" ] [ [| 2 |]; [| 3 |] ] in
  let env = env_of_rels [ r1; r2 ] in
  let result =
    Engine.Executor.execute museum_store env
      (Core.Rewriting.Union
         [
           Core.Rewriting.Scan "r1";
           Core.Rewriting.Rename ([ ("B", "A") ], Core.Rewriting.Scan "r2");
         ])
  in
  check_int "union dedup" 3 (Engine.Relation.cardinality result)

let test_executor_unknown_view () =
  let env = env_of_rels [] in
  Alcotest.check_raises "unknown view" (Failure "Executor: unknown view nope")
    (fun () ->
      ignore (Engine.Executor.execute museum_store env (Core.Rewriting.Scan "nope")))

(* ---------- maintenance ---------------------------------------------------- *)

let parent_painting_view =
  cq ~name:"v" [ v "X"; v "Z" ]
    [
      atom (v "X") (c "ex:isParentOf") (v "Y");
      atom (v "Y") (c "ex:hasPainted") (v "Z");
    ]

let setup_maintenance () =
  let store = store_of museum in
  let rel = Engine.Materialize.materialize_cq store parent_painting_view in
  (store, [ (parent_painting_view, rel) ])

let test_insert_propagates () =
  let store, views = setup_maintenance () in
  let added =
    Engine.Maintenance.insert_triple store views
      (triple (uri "ex:monet") (uri "ex:isParentOf") (uri "ex:vincentJr"))
  in
  (* vincentJr painted sunflowers2, so monet gains a tuple *)
  check_int "one tuple added" 1 added;
  let _, rel = List.hd views in
  check_int "relation grew" 2 (Engine.Relation.cardinality rel)

let test_insert_duplicate_noop () =
  let store, views = setup_maintenance () in
  let added = Engine.Maintenance.insert_triple store views (List.hd museum) in
  check_int "nothing" 0 added

let test_delete_propagates () =
  let store, views = setup_maintenance () in
  let removed =
    Engine.Maintenance.delete_triple store views
      (triple (uri "ex:vincentJr") (uri "ex:hasPainted") (uri "ex:sunflowers2"))
  in
  check_int "one tuple removed" 1 removed;
  let _, rel = List.hd views in
  check_int "relation empty" 0 (Engine.Relation.cardinality rel)

let test_delete_keeps_alternative_derivations () =
  let store = store_of museum in
  ignore
    (Rdf.Store.add store
       (triple (uri "ex:vincentJr") (uri "ex:hasPainted") (uri "ex:sunflowers2")));
  (* second derivation path for the same tuple via another child *)
  ignore
    (Rdf.Store.add store
       (triple (uri "ex:vanGogh") (uri "ex:isParentOf") (uri "ex:paulJr")));
  ignore
    (Rdf.Store.add store
       (triple (uri "ex:paulJr") (uri "ex:hasPainted") (uri "ex:sunflowers2")));
  let rel = Engine.Materialize.materialize_cq store parent_painting_view in
  let views = [ (parent_painting_view, rel) ] in
  check_int "one tuple, two derivations" 1 (Engine.Relation.cardinality rel);
  let removed =
    Engine.Maintenance.delete_triple store views
      (triple (uri "ex:paulJr") (uri "ex:hasPainted") (uri "ex:sunflowers2"))
  in
  check_int "still derivable: no removal" 0 removed;
  check_int "tuple survives" 1 (Engine.Relation.cardinality rel)

let prop_maintenance_matches_recompute =
  QCheck.Test.make
    ~name:"incremental maintenance = recompute from scratch" ~count:80
    QCheck.(triple arb_store arb_cq (list_of_size (Gen.return 6) (make gen_data_triple)))
    (fun (store, view, updates) ->
      let rel = Engine.Materialize.materialize_cq store view in
      let views = [ (view, rel) ] in
      List.iteri
        (fun i tr ->
          if i mod 2 = 0 then ignore (Engine.Maintenance.insert_triple store views tr)
          else ignore (Engine.Maintenance.delete_triple store views tr))
        updates;
      let recomputed = Engine.Materialize.materialize_cq store view in
      let sort rel =
        List.sort compare
          (List.map Array.to_list
             (Engine.Relation.to_term_rows store rel))
      in
      sort rel = sort recomputed)

let () =
  Alcotest.run "engine"
    [
      ( "relation",
        [
          Alcotest.test_case "dedup" `Quick test_relation_dedup;
          Alcotest.test_case "add/remove" `Quick test_relation_add_remove;
          Alcotest.test_case "projection indices" `Quick
            test_relation_projection_indices;
        ] );
      ( "materialize",
        [
          Alcotest.test_case "single atom" `Quick test_materialize_single_atom;
          Alcotest.test_case "join view" `Quick test_materialize_join_view;
          Alcotest.test_case "ucq view" `Quick test_materialize_ucq;
          Alcotest.test_case "size in bytes" `Quick test_size_bytes_positive;
        ] );
      ( "executor",
        [
          Alcotest.test_case "selection" `Quick test_executor_select;
          Alcotest.test_case "selection on unknown constant" `Quick
            test_executor_select_unknown_constant;
          Alcotest.test_case "natural join" `Quick test_executor_join_natural;
          Alcotest.test_case "projection dedups" `Quick
            test_executor_project_dedups;
          Alcotest.test_case "rename and union" `Quick
            test_executor_rename_and_union;
          Alcotest.test_case "unknown view" `Quick test_executor_unknown_view;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "insert propagates" `Quick test_insert_propagates;
          Alcotest.test_case "duplicate insert" `Quick test_insert_duplicate_noop;
          Alcotest.test_case "delete propagates" `Quick test_delete_propagates;
          Alcotest.test_case "alternative derivations survive" `Quick
            test_delete_keeps_alternative_derivations;
          to_alcotest prop_maintenance_matches_recompute;
        ] );
    ]
