(* The multi-query optimizer (Query.Mqo): shared-prefix capture and
   replay across a workload, the result-level cache, version-stamped
   invalidation on store mutation, prepare's first-execution capture,
   the explain renderer, and the Rowset copy/absorb plumbing the
   result cache rides on. *)

open Support

let sort_rows rows = List.sort compare (List.map Array.to_list rows)

let with_registry f =
  let reg = Obs.create () in
  Obs.set_global reg;
  Fun.protect ~finally:(fun () -> Obs.set_global Obs.disabled) (fun () -> f reg)

let counter_value reg name =
  match Obs.find_counter reg name with Some n -> n | None -> 0

let fresh () =
  Query.Plan.reset_cache ();
  Query.Mqo.reset ()

(* A store where 2-atom chain prefixes have real fan-out. *)
let chain_store () =
  store_of
    (List.concat_map
       (fun i ->
         [
           triple (uri (Printf.sprintf "a%d" i)) (uri "P0")
             (uri (Printf.sprintf "b%d" (i mod 3)));
           triple (uri (Printf.sprintf "b%d" (i mod 3))) (uri "P1")
             (uri (Printf.sprintf "c%d" i));
           triple (uri (Printf.sprintf "c%d" i)) (uri "P2")
             (uri (Printf.sprintf "d%d" i));
         ])
       [ 0; 1; 2; 3; 4; 5 ])

(* Two queries sharing the P0-P1 backbone, different tails/heads. *)
let shared_workload () =
  let backbone = [ atom (v "X") (c "P0") (v "Y"); atom (v "Y") (c "P1") (v "Z") ] in
  let q1 = cq ~name:"pair" [ v "X"; v "Z" ] backbone in
  let q2 =
    cq ~name:"ext" [ v "X"; v "W" ]
      (backbone @ [ atom (v "Z") (c "P2") (v "W") ])
  in
  (q1, q2)

let eval store q = sort_rows (Query.Evaluation.eval_cq_codes store q)
let reference store q =
  sort_rows (Query.Evaluation.Reference.eval_cq_codes store q)

let test_prefix_sharing_across_queries () =
  with_registry (fun reg ->
      fresh ();
      let store = chain_store () in
      let q1, q2 = shared_workload () in
      Query.Mqo.prepare store [ q1; q2 ];
      (* prepare bumped the shared backbone prefix for both plans, so
         the first execution captures it and the second starts from
         the captured batch stream *)
      check_bool "q1 agrees" true (eval store q1 = reference store q1);
      check_bool "q2 agrees" true (eval store q2 = reference store q2);
      check_bool "a shared prefix was captured" true
        (counter_value reg "mqo.prefix.evals" >= 1);
      check_bool "the second query replayed it" true
        (counter_value reg "mqo.prefix.hits" >= 1))

let test_result_cache_replay () =
  with_registry (fun reg ->
      fresh ();
      let store = chain_store () in
      let q1, _ = shared_workload () in
      let first = eval store q1 in
      let captures = counter_value reg "mqo.result.evals" in
      let second = eval store q1 in
      check_bool "rows stable across replay" true (first = second);
      check_bool "second evaluation captured the result" true
        (counter_value reg "mqo.result.evals" > captures
        || counter_value reg "mqo.result.hits" >= 1);
      let third = eval store q1 in
      check_bool "third evaluation replays the cached result" true
        (counter_value reg "mqo.result.hits" >= 1);
      check_bool "replayed rows equal" true (first = third);
      let entries, words = Query.Mqo.stats () in
      check_bool "cache holds entries" true (entries >= 1);
      check_bool "cache accounts words" true (words >= 1))

let test_prepare_captures_on_first_execution () =
  with_registry (fun reg ->
      fresh ();
      let store = chain_store () in
      let q1, _ = shared_workload () in
      Query.Mqo.prepare store [ q1; q1 ];
      ignore (eval store q1);
      check_bool "first post-prepare execution captures the result" true
        (counter_value reg "mqo.result.evals" >= 1);
      ignore (eval store q1);
      check_bool "and the next one replays it" true
        (counter_value reg "mqo.result.hits" >= 1))

let test_mutation_invalidates () =
  fresh ();
  let store = chain_store () in
  let q1, q2 = shared_workload () in
  Query.Mqo.prepare store [ q1; q2 ];
  ignore (eval store q1);
  ignore (eval store q1);
  let before = eval store q1 in
  (* a new backbone edge changes the answer; stamped entries must die *)
  ignore (Rdf.Store.add store (triple (uri "a9") (uri "P0") (uri "b0")));
  let after = eval store q1 in
  check_bool "answers changed" true (before <> after);
  check_bool "agree with reference after mutation" true
    (after = reference store q1);
  check_bool "and stay stable on the rewarmed cache" true
    (eval store q1 = after)

let test_disabled_is_plain_execution () =
  with_registry (fun reg ->
      fresh ();
      let store = chain_store () in
      let q1, q2 = shared_workload () in
      Query.Mqo.set_enabled false;
      Fun.protect
        ~finally:(fun () -> Query.Mqo.set_enabled true)
        (fun () ->
          Query.Mqo.prepare store [ q1; q2 ];
          check_bool "q1 agrees" true (eval store q1 = reference store q1);
          check_bool "q2 agrees" true (eval store q2 = reference store q2);
          ignore (eval store q1);
          check_int "no prefix traffic" 0
            (counter_value reg "mqo.prefix.evals"
            + counter_value reg "mqo.prefix.hits");
          check_int "no result traffic" 0
            (counter_value reg "mqo.result.evals"
            + counter_value reg "mqo.result.hits");
          let entries, _ = Query.Mqo.stats () in
          check_int "nothing cached" 0 entries))

let test_explain_markers () =
  fresh ();
  let store = chain_store () in
  let q1, q2 = shared_workload () in
  let contains hay needle =
    let hn = String.length hay and nn = String.length needle in
    let rec scan i = i + nn <= hn && (String.sub hay i nn = needle || scan (i + 1)) in
    scan 0
  in
  let out = Query.Mqo.explain store [ q1; q2 ] in
  check_bool "names the DAG" true (contains out "shared-subplan DAG");
  check_bool "lists the shared prefix members" true
    (contains out "pair" && contains out "ext");
  check_bool "shows a shared prefix" true (contains out "shared by");
  (* a workload with nothing in common says so *)
  let lone = cq ~name:"lone" [ v "A" ] [ atom (v "A") (c "P2") (v "B") ] in
  let out2 = Query.Mqo.explain store [ lone ] in
  check_bool "no sharing is reported" true
    (contains out2 "no shared prefixes")

(* The result cache depends on Rowset.copy producing an independent,
   index-less snapshot and Rowset.absorb refusing non-empty targets. *)
let test_rowset_copy_absorb () =
  let rs = Query.Rowset.create 4 in
  ignore (Query.Rowset.add_copy rs [| 1; 2 |]);
  ignore (Query.Rowset.add_copy rs [| 3; 4 |]);
  let snap = Query.Rowset.copy rs in
  ignore (Query.Rowset.add_copy rs [| 5; 6 |]);
  check_int "snapshot unaffected by later adds" 2 (Query.Rowset.cardinal snap);
  (* membership on the copy forces the lazy index rebuild *)
  check_bool "copy answers membership" true (Query.Rowset.mem snap [| 1; 2 |]);
  check_bool "and rejects the post-copy row" false
    (Query.Rowset.mem snap [| 5; 6 |]);
  let dst = Query.Rowset.create 4 in
  Query.Rowset.absorb dst snap;
  check_int "absorb installs the rows" 2 (Query.Rowset.cardinal dst);
  check_bool "absorbed set answers membership" true
    (Query.Rowset.mem dst [| 3; 4 |]);
  (* adding after absorb must dedup against the absorbed rows *)
  check_bool "add post-absorb dedups" false
    (Query.Rowset.add dst [| 1; 2 |] |> fun added -> added);
  check_bool "absorb refuses a non-empty destination" true
    (try
       Query.Rowset.absorb dst snap;
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "mqo"
    [
      ( "sharing",
        [
          Alcotest.test_case "prefix shared across queries" `Quick
            test_prefix_sharing_across_queries;
          Alcotest.test_case "result cache replays" `Quick
            test_result_cache_replay;
          Alcotest.test_case "prepare captures on first execution" `Quick
            test_prepare_captures_on_first_execution;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "store mutation invalidates" `Quick
            test_mutation_invalidates;
          Alcotest.test_case "disabled mode is plain execution" `Quick
            test_disabled_is_plain_execution;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "explain markers" `Quick test_explain_markers;
          Alcotest.test_case "rowset copy/absorb edges" `Quick
            test_rowset_copy_absorb;
        ] );
    ]
