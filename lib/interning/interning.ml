(* Hash-consing of canonical strings.

   Canonical forms (View.canonical, View.canonical_body) are long
   strings; computing them once per view is unavoidable, but comparing,
   sorting and hashing them on every state key is not.  The interner
   assigns each distinct canonical string a dense non-negative id, so
   all downstream identity work (State.key, Search.seen dedup,
   Transition.fusion_pairs) becomes integer work.

   The table is process-global on purpose: view canonicalization is
   deterministic and rename-invariant, so two views with the same
   semantics always receive the same id no matter which search,
   estimator or State_io reload produced them.  Ids are never reused;
   [reset] exists only so reproducible tests can restart the numbering
   together with [View.reset_counter].

   Domain safety: the string -> id map is split across SHARD_COUNT
   sub-tables, each guarded by its own test-and-set spinlock, so
   concurrent interning from parallel search domains contends only when
   two strings hash to the same shard.  Id allocation and the reverse
   id -> string array are guarded by one further lock ([rev_lock]),
   taken only on first sight of a string — the hot path (an
   already-interned string) touches exactly one shard lock.  Lock order
   is always shard -> rev, so the two levels cannot deadlock.  The
   library stays dependency-free: the spinlocks are plain [Atomic]
   cells (stdlib since 4.12), making this module safe on OCaml 4.14 and
   parallel on 5.x alike. *)

type id = int

(* ---------- spinlocks ---------------------------------------------------- *)

let rec lock_acquire l =
  if not (Atomic.compare_and_set l false true) then lock_acquire l

let lock_release l = Atomic.set l false

let with_lock l f =
  lock_acquire l;
  Fun.protect ~finally:(fun () -> lock_release l) f

(* ---------- sharded string -> id map ------------------------------------- *)

let shard_count = 16 (* power of two; shard_of masks with count - 1 *)

type shard = {
  s_lock : bool Atomic.t;
  s_tbl : (string, id) Hashtbl.t [@guarded_by "s_lock"];
}

let shards =
  Array.init shard_count (fun _ ->
      { s_lock = Atomic.make false; s_tbl = Hashtbl.create 512 })

(* FNV-1a; a dedicated hash keeps the shard choice stable across OCaml
   versions (and clear of the repo's poly-hash lint rule). *)
let string_hash s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land max_int)
    s;
  !h

let shard_of s = shards.(string_hash s land (shard_count - 1))

(* ---------- id allocation and reverse lookup ----------------------------- *)

(* Reverse lookup, a growable array indexed by id.  Guarded by
   [rev_lock]: growth swaps the array ref, so lock-free readers could
   observe a stale (smaller) array for a fresh id. *)
let rev_lock = Atomic.make false
let names = ref (Array.make 1024 "") [@@guarded_by "rev_lock"]
let count = Atomic.make 0

let of_canonical s =
  let shard = shard_of s in
  with_lock shard.s_lock @@ fun () ->
  match Hashtbl.find_opt shard.s_tbl s with
  | Some i -> i
  | None ->
    let i =
      with_lock rev_lock @@ fun () ->
      let i = Atomic.get count in
      if i = Array.length !names then begin
        let bigger = Array.make (2 * i) "" in
        Array.blit !names 0 bigger 0 i;
        names := bigger
      end;
      !names.(i) <- s;
      Atomic.set count (i + 1);
      i
    in
    Hashtbl.add shard.s_tbl s i;
    i
[@@domain_safe]

let canonical_of i =
  if i < 0 || i >= Atomic.get count then
    invalid_arg (Printf.sprintf "Intern.canonical_of: unknown id %d" i);
  with_lock rev_lock (fun () -> !names.(i))
[@@domain_safe]

let mem s =
  let shard = shard_of s in
  with_lock shard.s_lock (fun () -> Hashtbl.mem shard.s_tbl s)
[@@domain_safe]

let size () = Atomic.get count [@@domain_safe]

(* coordinator_only: callers must know no other domain is interning. *)
let reset () =
  (* lock every shard, then rev — same shard -> rev order as
     [of_canonical], so a concurrent interning cannot deadlock us (it
     only ever holds one shard).  Only for single-domain test setup
     anyway. *)
  Array.iter (fun shard -> lock_acquire shard.s_lock) shards;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun shard -> lock_release shard.s_lock) shards)
    (fun () ->
      (* the shard locks ARE held here, via the manual acquire above —
         invisible to the analyzer's lexical with_lock matching *)
      (* analyze: allow unguarded-write *)
      Array.iter (fun shard -> Hashtbl.reset shard.s_tbl) shards;
      with_lock rev_lock (fun () -> Atomic.set count 0))
[@@coordinator_only]
