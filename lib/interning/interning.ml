(* Hash-consing of canonical strings.

   Canonical forms (View.canonical, View.canonical_body) are long
   strings; computing them once per view is unavoidable, but comparing,
   sorting and hashing them on every state key is not.  The interner
   assigns each distinct canonical string a dense non-negative id, so
   all downstream identity work (State.key, Search.seen dedup,
   Transition.fusion_pairs) becomes integer work.

   The table is process-global on purpose: view canonicalization is
   deterministic and rename-invariant, so two views with the same
   semantics always receive the same id no matter which search,
   estimator or State_io reload produced them.  Ids are never reused;
   [reset] exists only so reproducible tests can restart the numbering
   together with [View.reset_counter]. *)

type id = int

let table : (string, id) Hashtbl.t = Hashtbl.create 4096

(* Reverse lookup, a growable array indexed by id. *)
let names = ref (Array.make 1024 "")
let count = ref 0

let of_canonical s =
  match Hashtbl.find_opt table s with
  | Some i -> i
  | None ->
    let i = !count in
    if i = Array.length !names then begin
      let bigger = Array.make (2 * i) "" in
      Array.blit !names 0 bigger 0 i;
      names := bigger
    end;
    !names.(i) <- s;
    Hashtbl.add table s i;
    incr count;
    i

let canonical_of i =
  if i < 0 || i >= !count then
    invalid_arg (Printf.sprintf "Intern.canonical_of: unknown id %d" i);
  !names.(i)

let mem s = Hashtbl.mem table s

let size () = !count

let reset () =
  Hashtbl.reset table;
  count := 0
