(** Hash-consing interner for canonical strings.

    Maps each distinct canonical form to a dense non-negative integer
    id, assigned on first sight and stable for the life of the process.
    State identity ([Core.State.key]), fusion-candidate detection
    ([Core.Transition]) and the compiled-plan cache ([Query.Plan])
    compare these ids instead of the underlying strings.  The library
    is dependency-free on purpose: both [core] (as [Core.Intern]) and
    [query] sit on top of the same process-global table.

    All operations are domain-safe: the string → id map is sharded
    under per-shard spinlocks and id allocation is serialized, so
    parallel search domains ([Core.Parallel_search]) intern
    concurrently while ids stay dense, unique and stable.  Only
    {!reset} assumes a single domain. *)

type id = int

val of_canonical : string -> id
(** The id of a canonical string, allocating a fresh one on first
    sight.  Total and idempotent: equal strings always map to equal
    ids. *)

val canonical_of : id -> string
(** The canonical string behind an id.  Raises [Invalid_argument] on an
    id never returned by {!of_canonical}. *)

val mem : string -> bool
(** Whether the string has already been interned (no allocation). *)

val size : unit -> int
(** Number of distinct canonical forms interned so far — exported as
    the [intern.size] gauge at the end of every search run. *)

val reset : unit -> unit
(** Drop all ids and restart numbering from 0.  Only for reproducible
    tests (alongside {!View.reset_counter}); never call while states
    built against the old numbering are still alive. *)
