type kind = Hash | Compact

let kind_name = function Hash -> "hash" | Compact -> "compact"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "hash" -> Some Hash
  | "compact" -> Some Compact
  | _ -> None

(* Atomic: the CLI sets it once at startup, but stores are also
   created on worker domains (counting copies during cost
   estimation), which read it. *)
let default_kind = Atomic.make Hash

let set_default k = Atomic.set default_kind k
let default () = Atomic.get default_kind

module type S = sig
  type t

  val create : unit -> t
  val add : t -> int -> int -> int -> bool
  val remove : t -> int -> int -> int -> bool
  val mem : t -> int -> int -> int -> bool
  val size : t -> int
  val count1 : t -> [ `S | `P | `O ] -> int -> int
  val count2 : t -> [ `SP | `SO | `PO ] -> int -> int -> int
  val scan_all : t -> int array * int
  val scan1 : t -> [ `S | `P | `O ] -> int -> int array * int
  val scan2 : t -> [ `SP | `SO | `PO ] -> int -> int -> int array * int
  val fold_all : t -> (int * int * int -> 'a -> 'a) -> 'a -> 'a
  val distinct_in_column : t -> [ `S | `P | `O ] -> int
  val fold_column_codes : t -> [ `S | `P | `O ] -> (int -> 'a -> 'a) -> 'a -> 'a
  val resident_bytes : t -> int
  val compact : t -> unit
  val recommended_batch_rows : t -> int
end
