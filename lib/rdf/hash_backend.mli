(** Hexastore-style hash-bucket backend (the original {!Store}
    layout): growable packed-int buckets under six Hashtbl indexes,
    O(1) point mutation and counting, live-storage scans.  Also reused
    by the compact backend as its LSM memtable/tombstone index. *)

include Backend.S
