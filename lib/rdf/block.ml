(* Varint/delta block codec shared by every Segment order.  See the
   .mli for the layout; the two loops below must mirror each other
   exactly (the first row is always absolute, later rows delta the
   longest shared prefix). *)

let rec put_varint buf v =
  if v < 0x80 then Buffer.add_char buf (Char.unsafe_chr v)
  else begin
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (v land 0x7f)));
    put_varint buf (v lsr 7)
  end

let append buf (rows : int array) ~lo ~hi =
  let pa = ref 0 and pb = ref 0 and pc = ref 0 in
  for i = lo to hi - 1 do
    let a = Array.unsafe_get rows (3 * i) in
    let b = Array.unsafe_get rows ((3 * i) + 1) in
    let c = Array.unsafe_get rows ((3 * i) + 2) in
    if i = lo then begin
      put_varint buf a;
      put_varint buf b;
      put_varint buf c
    end
    else begin
      let da = a - !pa in
      put_varint buf da;
      if da = 0 then begin
        let db = b - !pb in
        put_varint buf db;
        if db = 0 then put_varint buf (c - !pc) else put_varint buf c
      end
      else begin
        put_varint buf b;
        put_varint buf c
      end
    end;
    pa := a;
    pb := b;
    pc := c
  done

(* Decoding is the hot path (every block access goes through it), so
   the varint reader is inlined by hand around an int cursor and all
   byte reads are unchecked: [pos] only ever comes from the segment's
   offset table, built by [append] above. *)
let decode data ~pos ~rows (dst : int array) =
  let p = ref pos in
  let read () =
    let byte = Char.code (Bytes.unsafe_get data !p) in
    incr p;
    if byte < 0x80 then byte
    else begin
      let acc = ref (byte land 0x7f) in
      let shift = ref 7 in
      let continue = ref true in
      while !continue do
        let byte = Char.code (Bytes.unsafe_get data !p) in
        incr p;
        acc := !acc lor ((byte land 0x7f) lsl !shift);
        shift := !shift + 7;
        if byte < 0x80 then continue := false
      done;
      !acc
    end
  in
  let pa = ref 0 and pb = ref 0 and pc = ref 0 in
  for i = 0 to rows - 1 do
    if i = 0 then begin
      pa := read ();
      pb := read ();
      pc := read ()
    end
    else begin
      let da = read () in
      if da = 0 then begin
        let db = read () in
        if db = 0 then pc := !pc + read ()
        else begin
          pb := !pb + db;
          pc := read ()
        end
      end
      else begin
        pa := !pa + da;
        pb := read ();
        pc := read ()
      end
    end;
    Array.unsafe_set dst (3 * i) !pa;
    Array.unsafe_set dst ((3 * i) + 1) !pb;
    Array.unsafe_set dst ((3 * i) + 2) !pc
  done;
  !p
