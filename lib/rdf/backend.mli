(** Storage backends under the {!Store} interface.

    A backend stores dictionary-encoded triples and answers the raw
    index operations; {!Store} owns the dictionary, the version stamp
    and the telemetry, and dispatches everything else here.  Two
    implementations exist: [Hash], the hexastore-style hash-bucket
    layout (fast point mutation, one boxed entry per triple per
    index), and [Compact], sorted delta-compressed segments with an
    LSM memtable (4-10x smaller, Barton-scale capable). *)

type kind = Hash | Compact

val kind_name : kind -> string

val kind_of_string : string -> kind option
(** Case-insensitive ["hash"] / ["compact"]. *)

val set_default : kind -> unit
(** Backend used by {!Store.create} when none is requested — the
    [--store-backend] CLI flag sets this before any store is built so
    copies, saturated stores and counting stores follow suit.
    Defaults to [Hash]. *)

val default : unit -> kind

(** Operations every backend implements over encoded triples.  Scan
    results follow the {!Store} contract: [(data, n)] with the first
    [3n] cells packed as [s; p; o]; each call's array must stay valid
    under {e later scans} (executors hold results while issuing nested
    scans), so backends return either live storage they never rewrite
    in place or a fresh array per call. *)
module type S = sig
  type t

  val create : unit -> t
  val add : t -> int -> int -> int -> bool
  val remove : t -> int -> int -> int -> bool
  val mem : t -> int -> int -> int -> bool
  val size : t -> int
  val count1 : t -> [ `S | `P | `O ] -> int -> int
  val count2 : t -> [ `SP | `SO | `PO ] -> int -> int -> int
  val scan_all : t -> int array * int
  val scan1 : t -> [ `S | `P | `O ] -> int -> int array * int
  val scan2 : t -> [ `SP | `SO | `PO ] -> int -> int -> int array * int
  val fold_all : t -> (int * int * int -> 'a -> 'a) -> 'a -> 'a
  val distinct_in_column : t -> [ `S | `P | `O ] -> int
  val fold_column_codes : t -> [ `S | `P | `O ] -> (int -> 'a -> 'a) -> 'a -> 'a
  val resident_bytes : t -> int
  val compact : t -> unit
  val recommended_batch_rows : t -> int
end
