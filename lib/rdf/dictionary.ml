type t = {
  by_term : int Term.Table.t;
  mutable by_code : Term.t array;
  mutable next : int;
}

let create () =
  { by_term = Term.Table.create 1024; by_code = Array.make 1024 (Term.Uri ""); next = 0 }

let grow d =
  if d.next >= Array.length d.by_code then begin
    let bigger = Array.make (2 * Array.length d.by_code) (Term.Uri "") in
    Array.blit d.by_code 0 bigger 0 d.next;
    d.by_code <- bigger
  end

let encode d term =
  match Term.Table.find_opt d.by_term term with
  | Some code -> code
  | None ->
    let code = d.next in
    grow d;
    d.by_code.(code) <- term;
    Term.Table.add d.by_term term code;
    d.next <- code + 1;
    code

let find d term = Term.Table.find_opt d.by_term term

let decode d code =
  if code < 0 || code >= d.next then raise Not_found else d.by_code.(code)

let size d = d.next

let fold f d init = Term.Table.fold f d.by_term init
