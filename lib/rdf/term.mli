(** RDF terms: URIs, blank nodes and literals.

    Terms are the values appearing in the subject, property and object
    positions of RDF triples.  Following the RDF recommendation, subjects
    are URIs or blank nodes, properties are URIs, and objects are URIs,
    blank nodes or literals.  Well-formedness of a whole triple is checked
    in {!Triple}. *)

type t =
  | Uri of string      (** a resource identifier *)
  | Blank of string    (** a blank node, standing for an unknown constant *)
  | Literal of string  (** a literal value *)

val compare : t -> t -> int
(** Total order on terms: URIs < blank nodes < literals, then by label. *)

val equal : t -> t -> bool

val hash : t -> int

val uri : string -> t
(** [uri u] is [Uri u]. *)

val blank : string -> t
(** [blank b] is [Blank b]. *)

val literal : string -> t
(** [literal l] is [Literal l]. *)

val is_uri : t -> bool
val is_blank : t -> bool
val is_literal : t -> bool

val label : t -> string
(** The raw label of the term, without any syntactic decoration. *)

val to_string : t -> string
(** Turtle-ish rendering: URIs as [<u>] when they contain a scheme,
    bare otherwise; blank nodes as [_:b]; literals as ["l"]. *)

val of_string : string -> t
(** Inverse of {!to_string} on its image; bare words parse as URIs. *)

val pp : Format.formatter -> t -> unit

val size : t -> int
(** Storage footprint of the term in bytes (its label length); used by the
    view-space-occupancy component of the cost model. *)

module Table : Hashtbl.S with type key = t
(** Hash tables keyed by terms, built on {!equal} and {!hash}.  Use this
    instead of the generic [Hashtbl] (whose default polymorphic hash is
    banned on domain types — see tool/lint). *)
