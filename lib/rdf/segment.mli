(** Immutable sorted segment: the unit of storage of the compact
    backend.

    A segment holds [n] distinct rows [(a, b, c)] in lexicographic
    order, split into fixed-size blocks (the last may be short), each
    delta/varint-encoded by {!Block}.  Alongside the encoded bytes the
    segment keeps per-block zone maps — first/last leading value,
    first/last second value, min/max third value — so lookups bracket
    the candidate block range by binary search over the zone arrays
    and skip every other block, then gallop within the bracketed rows.
    Row positions double as ranks: [count = hi - lo] is exact without
    decoding interior blocks.

    Segments are immutable, so the bounded decoded-block cache needs
    no invalidation and can be shared across domains (slots are
    {!Atomic.t}; a block is published only fully decoded). *)

type t

val default_block_rows : int
(** Rows per full block (128) unless {!Builder.create} overrides it. *)

val n : t -> int
(** Total rows. *)

val block_rows : t -> int

val distinct_leading : t -> int
(** Number of distinct leading-column values, counted at build time. *)

val empty : t

(** Streaming constructor: [push] rows in nondecreasing lexicographic
    order (duplicates are the caller's bug), then [finish].  Used by
    the LSM merge so a 10M-row store never materializes a decoded
    copy of itself. *)
module Builder : sig
  type b

  val create : ?block_rows:int -> unit -> b
  val push : b -> int -> int -> int -> unit
  val finish : b -> t
end

val of_sorted_array : ?block_rows:int -> int array -> rows:int -> t
(** Build from the first [rows] rows of a packed (stride 3) sorted
    array — the test/bootstrap path. *)

val locate1 : t -> int -> int * int
(** [locate1 t a] is the rank interval [\[lo, hi)] of rows whose
    leading column equals [a] (empty when [lo >= hi]). *)

val locate2 : t -> int -> int -> int * int
(** Rank interval of rows with leading column [a] and second column
    [b]. *)

val mem : t -> int -> int -> int -> bool

val iter_range : t -> int -> int -> (int -> int -> int -> unit) -> unit
(** [iter_range t lo hi f] applies [f a b c] to each row of the rank
    interval [\[lo, hi)], in order. *)

val blit_range : t -> int -> int -> int array -> da:int -> db:int -> dc:int -> unit
(** [blit_range t lo hi dst ~da ~db ~dc] writes the rows of
    [\[lo, hi)] into [dst] packed with stride 3 starting at cell 0,
    placing the leading column at offset [da] of each row, the second
    at [db], the third at [dc] — the inverse of the segment's column
    permutation, so every segment emits [s; p; o] order. *)

val iter_all : t -> (int -> int -> int -> unit) -> unit
(** Stream every row in order, decoding block by block (bypasses the
    cache: the merge path). *)

val iter_leading : t -> (int -> unit) -> unit
(** Apply to each distinct leading value, in increasing order. *)

val resident_bytes : t -> int
(** Encoded bytes + zone maps + offsets + currently cached decoded
    blocks. *)
