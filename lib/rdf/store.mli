(** In-memory dictionary-encoded triple store.

    Mirrors the paper's storage layout (§6): a single triple table
    [t(s, p, o)] over integer codes, answering every pattern lookup —
    any subset of positions bound to constants — from the best index.
    Two storage backends implement the layout (see {!Backend}): the
    hexastore-style hash-bucket layout ([Hash], the default) and the
    sorted compressed-segment layout ([Compact], 4-10x smaller,
    Barton-scale capable).  The store owns the dictionary, the version
    stamp, and the telemetry; everything else dispatches to the
    backend picked at creation. *)

type t

type encoded = int * int * int
(** A dictionary-encoded triple [(s, p, o)]. *)

type pattern = { ps : int option; pp : int option; po : int option }
(** A lookup pattern: [None] positions are wildcards. *)

val create : ?backend:Backend.kind -> unit -> t
(** A fresh empty store on the given backend
    (default {!Backend.default}, i.e. [Hash] unless the CLI's
    [--store-backend] said otherwise). *)

val backend : t -> Backend.kind

val id : t -> int
(** A process-unique stamp, assigned at creation.  Compiled query plans
    ({!Query.Plan}) are cached per store id: codes are only meaningful
    against the dictionary that produced them. *)

val version : t -> int
(** Mutation counter: bumped on every successful {!add}/{!remove}.
    Cached plans use it to cheaply detect that compile-time cardinality
    estimates may have drifted. *)

val dictionary : t -> Dictionary.t
(** The shared dictionary of the store. *)

val dict_size : t -> int
(** Number of distinct encoded terms ([Dictionary.size]).  A compiled
    plan that proved an atom unsatisfiable because a constant was
    absent from the dictionary is only valid while the dictionary has
    not grown. *)

val encode_term : t -> Term.t -> int
(** Encode a term, assigning a fresh code if needed. *)

val find_term : t -> Term.t -> int option
(** Encode without assigning. *)

val decode_term : t -> int -> Term.t

val add : t -> Triple.t -> bool
(** Insert a triple; returns [false] when it was already present. *)

val add_encoded : t -> encoded -> bool

val remove : t -> Triple.t -> bool
(** Delete a triple; returns [false] when absent. *)

val remove_encoded : t -> encoded -> bool

val mem : t -> Triple.t -> bool
val mem_encoded : t -> encoded -> bool

val size : t -> int
(** Number of distinct triples. *)

val pattern_all : pattern
(** The all-wildcard pattern. *)

val fold_matching : t -> pattern -> (encoded -> 'a -> 'a) -> 'a -> 'a
(** Fold over all triples matching the pattern, using the most selective
    available index. *)

val iter_matching : t -> pattern -> (encoded -> unit) -> unit

val count_matching : t -> pattern -> int
(** Exact number of triples matching the pattern; O(1) for patterns with
    at most two constants thanks to the indexes (§3.3's statistics). *)

val matching : t -> pattern -> encoded list

(** {2 Raw scan access}

    Scans for the compiled query executor ({!Query.Plan}): each call
    returns [(data, n)] where the first [3*n] cells of [data] hold the
    matching triples packed as [s; p; o].  On the hash backend the
    array is the {e live} bucket storage (zero-copy); on the compact
    backend it is a fresh exactly-sized copy of the bracketed block
    range.  Either way it stays valid across further scans — treat it
    as read-only, and do not mutate the store while iterating. *)

val scan_all : t -> int array * int
(** Every triple in the store. *)

val scan1 : t -> [ `S | `P | `O ] -> int -> int array * int
(** Triples with the given code in one column. *)

val scan2 : t -> [ `SP | `SO | `PO ] -> int -> int -> int array * int
(** Triples with the given codes in two columns (arguments in the
    order named by the variant). *)

val distinct_in_column : t -> [ `S | `P | `O ] -> int
(** Number of distinct codes in a column, as gathered for the cost model. *)

val column_codes : t -> [ `S | `P | `O ] -> int list
(** The distinct codes appearing in a column (allocates a list sized
    by the distinct count — prefer {!fold_column_codes} on hot
    paths). *)

val fold_column_codes : t -> [ `S | `P | `O ] -> (int -> 'a -> 'a) -> 'a -> 'a
(** Fold over the distinct codes of a column without materializing
    them. *)

val fold_all : t -> (encoded -> 'a -> 'a) -> 'a -> 'a

val copy : t -> t
(** Deep copy sharing no mutable state (the dictionary is copied too). *)

val of_triples : Triple.t list -> t

val to_triples : t -> Triple.t list

val avg_term_size : t -> [ `S | `P | `O ] -> float
(** Average byte size of the terms in a column (used by VSO, §3.3).
    Memoized per store version: repeated cost-model reads between
    mutations are O(1). *)

(** {2 Backend controls} *)

val compact : t -> unit
(** Force the compact backend to merge its memtable into the segments
    now (a no-op on the hash backend).  Contents and version are
    unchanged — only the internal layout moves. *)

val resident_bytes : t -> int
(** Estimated live bytes of the backend's index structures (the shared
    dictionary is excluded).  The [store] bench experiment reports
    this as bytes/triple per backend. *)

val recommended_batch_rows : t -> int
(** The backend's preferred {!Query.Plan} batch capacity: derived from
    the block geometry (compact) or the bucket-size histogram (hash).
    Consumed by [Plan.set_batch_capacity_auto]. *)
