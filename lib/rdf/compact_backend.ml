(* LSM-style compact backend.  Invariants (checked by the QCheck
   differential suite against Hash_backend):

     - [mem_add] and the segments are disjoint triple sets;
     - [mem_del] is a subset of the segments' set, disjoint from
       [mem_add];
     - the backend's contents = segments - mem_del + mem_add.

   Counts therefore come straight from rank arithmetic on the segments
   corrected by the memtable's own O(1) hash counts, and scans decode
   the bracketed block range once, filter tombstones, and append the
   memtable's bucket — every returned array is freshly allocated and
   exactly sized, never rewritten in place, so the executor's nested
   scans stay valid.

   Locking: mutation (add/remove/merge) is serialized by [lock], the
   discipline tool/analyze enforces via the [@guarded_by] field
   annotations.  Reads take no lock — stores are never mutated
   concurrently with reads anywhere in the system (CONCURRENCY.md),
   matching the hash backend's Hashtbl semantics. *)

let obs_merges = Obs.cached_counter "store.merges"
let obs_merge_rows = Obs.cached_counter "store.merge_rows"
let obs_flushes = Obs.cached_counter "store.memtable_flushes"

(* Memtable flush threshold: a quarter of the merged size (geometric,
   so ingest stays amortized O(1) merge passes per row) with a floor
   that keeps small stores from merging on every insert. *)
let flush_floor = 16384

(* scan_all results are memoized until the next mutation, but only up
   to this many rows: a Barton-scale all-triples scan is decoded
   fresh rather than pinned (it would double the resident set). *)
let all_cache_max_rows = 1 lsl 20

(* scan1/scan2 results are memoized the same way (cleared on any
   mutation).  Query execution re-scans the same (column, code) keys
   constantly — the inner side of every join step, and every
   repetition of a cached plan — and a memo hit costs one table
   lookup, like the hash backend's bucket fetch.  Entry count is
   bounded; overflowing resets the table wholesale. *)
let scan_cache_max_keys = 16384

type t = {
  lock : Multicore.Spinlock.t;
  mutable spo : Segment.t; [@guarded_by "lock"]
  mutable pos : Segment.t; [@guarded_by "lock"]
  mutable osp : Segment.t; [@guarded_by "lock"]
  mutable mem_add : Hash_backend.t; [@guarded_by "lock"]
      (* triples added since the last merge (not in the segments) *)
  mutable mem_del : Hash_backend.t; [@guarded_by "lock"]
      (* tombstones: segment triples deleted since the last merge *)
  mutable all_cache : (int array * int) option; [@guarded_by "lock"]
  scan_cache : (int * int * int, int array * int) Hashtbl.t; [@guarded_by "lock"]
      (* memoized scan1/scan2 results keyed by (tag, a, b); the arrays
         are never rewritten in place, so handing the same one to
         every caller honours the scan contract *)
}

let create () =
  {
    lock = Multicore.Spinlock.create ();
    spo = Segment.empty;
    pos = Segment.empty;
    osp = Segment.empty;
    mem_add = Hash_backend.create ();
    mem_del = Hash_backend.create ();
    all_cache = None;
    scan_cache = Hashtbl.create 256;
  }

(* Drop every memoized scan result.  Callers hold [t.lock]. *)
let invalidate t =
  (* analyze: allow unguarded-write -- callers hold lock *)
  t.all_cache <- None;
  (* analyze: allow unguarded-write -- callers hold lock *)
  Hashtbl.reset t.scan_cache

let seg_mem t s p o = Segment.mem t.spo s p o

let mem t s p o =
  Hash_backend.mem t.mem_add s p o
  || (seg_mem t s p o && not (Hash_backend.mem t.mem_del s p o))

let size t =
  Segment.n t.spo - Hash_backend.size t.mem_del + Hash_backend.size t.mem_add

(* ---------- merge --------------------------------------------------------- *)

(* Sort the [k]-row packed memtable dump for one segment order:
   comparator reads through an index permutation, then the rows are
   materialized permuted (leading column first) so the merge loop
   compares plain lexicographic cells. *)
let sorted_rotation rows k ~da ~db ~dc =
  let idx = Array.init k (fun i -> i) in
  let cmp i j =
    let x = Int.compare rows.((3 * i) + da) rows.((3 * j) + da) in
    if x <> 0 then x
    else
      let x = Int.compare rows.((3 * i) + db) rows.((3 * j) + db) in
      if x <> 0 then x
      else Int.compare rows.((3 * i) + dc) rows.((3 * j) + dc)
  in
  Array.sort cmp idx;
  let out = Array.make (3 * k) 0 in
  for i = 0 to k - 1 do
    let r = idx.(i) in
    out.(3 * i) <- rows.((3 * r) + da);
    out.((3 * i) + 1) <- rows.((3 * r) + db);
    out.((3 * i) + 2) <- rows.((3 * r) + dc)
  done;
  out

(* Rebuild one order: stream the old segment (already sorted, filtered
   by tombstones) merged with the sorted memtable rotation into a
   fresh builder.  [untombed a b c] maps the row back to (s, p, o) and
   consults [mem_del]; nothing is ever materialized beyond one block. *)
let rebuild_order old ~mem_rows ~k ~untombed =
  let b = Segment.Builder.create () in
  let cursor = ref 0 in
  let drain_until a bb c =
    (* push memtable rows strictly before the incoming segment row *)
    while
      !cursor < k
      &&
      let i = 3 * !cursor in
      let ma = mem_rows.(i) in
      ma < a
      || (ma = a
          &&
          let mb = mem_rows.(i + 1) in
          mb < bb || (mb = bb && mem_rows.(i + 2) < c))
    do
      let i = 3 * !cursor in
      Segment.Builder.push b mem_rows.(i) mem_rows.(i + 1) mem_rows.(i + 2);
      incr cursor
    done
  in
  Segment.iter_all old (fun a bb c ->
      if untombed a bb c then begin
        drain_until a bb c;
        Segment.Builder.push b a bb c
      end);
  while !cursor < k do
    let i = 3 * !cursor in
    Segment.Builder.push b mem_rows.(i) mem_rows.(i + 1) mem_rows.(i + 2);
    incr cursor
  done;
  Segment.Builder.finish b

(* Callers hold [t.lock]. *)
let merge t =
  let data, n = Hash_backend.scan_all t.mem_add in
  let adds = Array.sub data 0 (3 * n) in
  let del = t.mem_del in
  let no_del = Hash_backend.size del = 0 in
  Obs.incr (obs_merges ());
  let spo =
    rebuild_order t.spo
      ~mem_rows:(sorted_rotation adds n ~da:0 ~db:1 ~dc:2)
      ~k:n
      ~untombed:(fun s p o -> no_del || not (Hash_backend.mem del s p o))
  in
  let pos =
    rebuild_order t.pos
      ~mem_rows:(sorted_rotation adds n ~da:1 ~db:2 ~dc:0)
      ~k:n
      ~untombed:(fun p o s -> no_del || not (Hash_backend.mem del s p o))
  in
  let osp =
    rebuild_order t.osp
      ~mem_rows:(sorted_rotation adds n ~da:2 ~db:0 ~dc:1)
      ~k:n
      ~untombed:(fun o s p -> no_del || not (Hash_backend.mem del s p o))
  in
  Obs.add (obs_merge_rows ()) (Segment.n spo);
  (* analyze: allow unguarded-write -- callers hold lock *)
  t.spo <- spo;
  (* analyze: allow unguarded-write -- callers hold lock *)
  t.pos <- pos;
  (* analyze: allow unguarded-write -- callers hold lock *)
  t.osp <- osp;
  (* analyze: allow unguarded-write -- callers hold lock *)
  t.mem_add <- Hash_backend.create ();
  (* analyze: allow unguarded-write -- callers hold lock *)
  t.mem_del <- Hash_backend.create ();
  (* contents are unchanged by a merge, but the memtable arrays the
     memoized results referenced are gone with it *)
  invalidate t

(* Callers hold [t.lock]. *)
let maybe_flush t =
  let pending = Hash_backend.size t.mem_add + Hash_backend.size t.mem_del in
  if pending >= max flush_floor (Segment.n t.spo / 4) then begin
    Obs.incr (obs_flushes ());
    merge t
  end

let add t s p o =
  Multicore.Spinlock.with_lock t.lock @@ fun () ->
  if Hash_backend.mem t.mem_add s p o then false
  else if Hash_backend.mem t.mem_del s p o then begin
    (* resurrect a tombstoned segment row *)
    ignore (Hash_backend.remove t.mem_del s p o : bool);
    invalidate t;
    true
  end
  else if seg_mem t s p o then false
  else begin
    ignore (Hash_backend.add t.mem_add s p o : bool);
    invalidate t;
    maybe_flush t;
    true
  end

let remove t s p o =
  Multicore.Spinlock.with_lock t.lock @@ fun () ->
  if Hash_backend.mem t.mem_add s p o then begin
    ignore (Hash_backend.remove t.mem_add s p o : bool);
    invalidate t;
    true
  end
  else if seg_mem t s p o && not (Hash_backend.mem t.mem_del s p o) then begin
    ignore (Hash_backend.add t.mem_del s p o : bool);
    invalidate t;
    maybe_flush t;
    true
  end
  else false

let compact t =
  Multicore.Spinlock.with_lock t.lock @@ fun () ->
  if Hash_backend.size t.mem_add > 0 || Hash_backend.size t.mem_del > 0 then
    merge t

(* ---------- counts -------------------------------------------------------- *)

(* Each single-column / column-pair lookup maps onto the segment whose
   sort order leads with those columns; the rank interval is exact and
   the memtable corrections are O(1) hash counts. *)

let seg_count1 t col code =
  match col with
  | `S ->
    let lo, hi = Segment.locate1 t.spo code in
    hi - lo
  | `P ->
    let lo, hi = Segment.locate1 t.pos code in
    hi - lo
  | `O ->
    let lo, hi = Segment.locate1 t.osp code in
    hi - lo

let seg_count2 t cols a b =
  match cols with
  | `SP ->
    let lo, hi = Segment.locate2 t.spo a b in
    hi - lo
  | `PO ->
    let lo, hi = Segment.locate2 t.pos a b in
    hi - lo
  | `SO ->
    (* OSP order leads (o, s): arguments arrive as (s, o) *)
    let lo, hi = Segment.locate2 t.osp b a in
    hi - lo

let count1 t col code =
  seg_count1 t col code
  - Hash_backend.count1 t.mem_del col code
  + Hash_backend.count1 t.mem_add col code

let count2 t cols a b =
  seg_count2 t cols a b
  - Hash_backend.count2 t.mem_del cols a b
  + Hash_backend.count2 t.mem_add cols a b

(* ---------- scans --------------------------------------------------------- *)

let empty_scan = ([||] : int array)

(* Assemble one scan result: [seg] rows [lo, hi) written through the
   column permutation (leading column of the segment lands at [da] of
   each emitted [s; p; o] row), minus [ndel] tombstones, then the
   memtable bucket appended.  Exact-size allocation: the tombstone
   count is known before decoding. *)
let assemble t seg lo hi ~da ~db ~dc ~ndel (mdata, mn) =
  let nseg = hi - lo - ndel in
  let total = nseg + mn in
  if total = 0 then (empty_scan, 0)
  else begin
    let dst = Array.make (3 * total) 0 in
    if ndel = 0 then Segment.blit_range seg lo hi dst ~da ~db ~dc
    else begin
      let del = t.mem_del in
      let out = ref 0 in
      Segment.iter_range seg lo hi (fun a bb c ->
          let s = if da = 0 then a else if db = 0 then bb else c in
          let p = if da = 1 then a else if db = 1 then bb else c in
          let o = if da = 2 then a else if db = 2 then bb else c in
          if not (Hash_backend.mem del s p o) then begin
            let base = 3 * !out in
            dst.(base) <- s;
            dst.(base + 1) <- p;
            dst.(base + 2) <- o;
            incr out
          end)
    end;
    Array.blit mdata 0 dst (3 * nseg) (3 * mn);
    (dst, total)
  end

(* Look up / fill the scan memo.  The table is only touched under
   [t.lock]; a hit costs one lock + hash probe, a miss builds the
   result outside the lock (two builders racing on the same key is
   benign — last write wins, both arrays are correct and immutable). *)
let cached_scan t key build =
  let hit =
    Multicore.Spinlock.with_lock t.lock (fun () ->
        Hashtbl.find_opt t.scan_cache key)
  in
  match hit with
  | Some r -> r
  | None ->
    let r = build () in
    Multicore.Spinlock.with_lock t.lock (fun () ->
        if Hashtbl.length t.scan_cache >= scan_cache_max_keys then
          Hashtbl.reset t.scan_cache;
        Hashtbl.replace t.scan_cache key r);
    r

(* Memo key tags: 0..2 single-column scans (S, P, O), 3..5 pair scans
   (SP, PO, SO). *)

let scan1 t col code =
  match col with
  | `S ->
    cached_scan t (0, code, 0) @@ fun () ->
    let lo, hi = Segment.locate1 t.spo code in
    assemble t t.spo lo hi ~da:0 ~db:1 ~dc:2
      ~ndel:(Hash_backend.count1 t.mem_del `S code)
      (Hash_backend.scan1 t.mem_add `S code)
  | `P ->
    cached_scan t (1, code, 0) @@ fun () ->
    let lo, hi = Segment.locate1 t.pos code in
    assemble t t.pos lo hi ~da:1 ~db:2 ~dc:0
      ~ndel:(Hash_backend.count1 t.mem_del `P code)
      (Hash_backend.scan1 t.mem_add `P code)
  | `O ->
    cached_scan t (2, code, 0) @@ fun () ->
    let lo, hi = Segment.locate1 t.osp code in
    assemble t t.osp lo hi ~da:2 ~db:0 ~dc:1
      ~ndel:(Hash_backend.count1 t.mem_del `O code)
      (Hash_backend.scan1 t.mem_add `O code)

let scan2 t cols a b =
  match cols with
  | `SP ->
    cached_scan t (3, a, b) @@ fun () ->
    let lo, hi = Segment.locate2 t.spo a b in
    assemble t t.spo lo hi ~da:0 ~db:1 ~dc:2
      ~ndel:(Hash_backend.count2 t.mem_del `SP a b)
      (Hash_backend.scan2 t.mem_add `SP a b)
  | `PO ->
    cached_scan t (4, a, b) @@ fun () ->
    let lo, hi = Segment.locate2 t.pos a b in
    assemble t t.pos lo hi ~da:1 ~db:2 ~dc:0
      ~ndel:(Hash_backend.count2 t.mem_del `PO a b)
      (Hash_backend.scan2 t.mem_add `PO a b)
  | `SO ->
    cached_scan t (5, a, b) @@ fun () ->
    let lo, hi = Segment.locate2 t.osp b a in
    assemble t t.osp lo hi ~da:2 ~db:0 ~dc:1
      ~ndel:(Hash_backend.count2 t.mem_del `SO a b)
      (Hash_backend.scan2 t.mem_add `SO a b)

let build_all t =
  let n = size t in
  let dst = Array.make (max 1 (3 * n)) 0 in
  let del = t.mem_del in
  let no_del = Hash_backend.size del = 0 in
  let out = ref 0 in
  Segment.iter_all t.spo (fun s p o ->
      if no_del || not (Hash_backend.mem del s p o) then begin
        let base = 3 * !out in
        dst.(base) <- s;
        dst.(base + 1) <- p;
        dst.(base + 2) <- o;
        incr out
      end);
  let mdata, mn = Hash_backend.scan_all t.mem_add in
  Array.blit mdata 0 dst (3 * !out) (3 * mn);
  (dst, n)

let scan_all t =
  match t.all_cache with
  | Some r -> r
  | None ->
    let r = build_all t in
    if size t <= all_cache_max_rows then
      (* benign single-writer memo (same discipline as mutation);
         rebuilt arrays are never written in place afterwards *)
      Multicore.Spinlock.with_lock t.lock @@ fun () ->
      (* analyze: allow unguarded-write -- holding lock *)
      t.all_cache <- Some r;
      r
    else r

let fold_all t f init =
  let del = t.mem_del in
  let no_del = Hash_backend.size del = 0 in
  let acc = ref init in
  Segment.iter_all t.spo (fun s p o ->
      if no_del || not (Hash_backend.mem del s p o) then acc := f (s, p, o) !acc);
  Hash_backend.fold_all t.mem_add f !acc

(* ---------- column statistics --------------------------------------------- *)

let seg_of_col t = function `S -> t.spo | `P -> t.pos | `O -> t.osp

(* Is [code] live in the column's segment, i.e. does at least one of
   its rows survive the tombstones? *)
let live_in_seg t col code =
  seg_count1 t col code > Hash_backend.count1 t.mem_del col code

let distinct_in_column t col =
  let base = Segment.distinct_leading (seg_of_col t col) in
  (* fully tombstoned leading values vanish *)
  let dead =
    Hash_backend.fold_column_codes t.mem_del col
      (fun code acc -> if live_in_seg t col code then acc else acc + 1)
      0
  in
  (* memtable values not present in the (live) segment are new *)
  let fresh =
    Hash_backend.fold_column_codes t.mem_add col
      (fun code acc -> if live_in_seg t col code then acc else acc + 1)
      0
  in
  base - dead + fresh

let fold_column_codes t col f init =
  let seg = seg_of_col t col in
  let acc = ref init in
  Segment.iter_leading seg (fun code ->
      if live_in_seg t col code then acc := f code !acc);
  Hash_backend.fold_column_codes t.mem_add col
    (fun code acc -> if live_in_seg t col code then acc else f code acc)
    !acc

(* ---------- sizing -------------------------------------------------------- *)

let resident_bytes t =
  Segment.resident_bytes t.spo + Segment.resident_bytes t.pos
  + Segment.resident_bytes t.osp
  + Hash_backend.resident_bytes t.mem_add
  + Hash_backend.resident_bytes t.mem_del
  + (match t.all_cache with Some (a, _) -> 8 * Array.length a | None -> 0)
  + Hashtbl.fold (fun _ (a, _) acc -> acc + (8 * Array.length a)) t.scan_cache 0

(* Batches sized to the block geometry: two blocks in flight keeps the
   scan-fill loop inside the decoded block while amortizing per-batch
   overhead. *)
let recommended_batch_rows t = 2 * Segment.block_rows t.spo
