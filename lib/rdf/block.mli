(** Delta/varint codec for one block of sorted, dictionary-encoded
    triples.

    A block holds a bounded run of rows [(a, b, c)] in lexicographic
    order, where the column names are generic: the SPO segment stores
    [(s, p, o)], the POS segment [(p, o, s)], the OSP segment
    [(o, s, p)].  The leading column is encoded as a varint delta
    against the previous row; when the delta is zero the second column
    is delta-encoded too, and when both leading deltas are zero the
    third column's (strictly positive) delta is stored.  Columns that
    cannot be delta-encoded are stored as absolute varints.  Sorted
    dictionary codes cluster tightly, so most rows cost a handful of
    bytes (HDT/WaterFowl-style compactness). *)

val append : Buffer.t -> int array -> lo:int -> hi:int -> unit
(** [append buf rows ~lo ~hi] encodes rows [lo, hi) of [rows] (packed
    with stride 3: row [i] is cells [3i .. 3i+2], sorted, all cells
    non-negative) onto [buf]. *)

val decode : Bytes.t -> pos:int -> rows:int -> int array -> int
(** [decode data ~pos ~rows dst] decodes [rows] rows starting at byte
    [pos] into [dst] (stride 3, so [dst] needs at least [3*rows]
    cells) and returns the byte position just past the block. *)
