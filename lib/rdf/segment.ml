(* Immutable sorted segment of dictionary-encoded rows.  See the .mli
   for the model.  Everything here is bounds-safe by construction:
   block indices come from the offset table, row ranks are clamped by
   [n], and the decoded-block cache is an array of Atomics so
   concurrent readers on other domains either see a fully decoded
   block or decode their own copy. *)

(* Small blocks keep the boundary searches cheap: a rank lookup
   decodes at most two blocks, and 128 rows * 3 varints is a few
   hundred nanoseconds.  The per-block framing overhead (one absolute
   row) is under 0.1 byte/row against 512-row blocks. *)
let default_block_rows = 128

(* Decoded blocks cached per segment (bounded so a Barton-scale
   segment never holds its whole decoded self).  128 rows * 3 cells *
   8 bytes * 1024 blocks = 3 MiB ceiling per segment. *)
let cache_budget_blocks = 1024

let obs_decodes = Obs.cached_counter "store.block_decodes"
let obs_cache_hits = Obs.cached_counter "store.block_cache_hits"
let obs_skips = Obs.cached_counter "store.block_skips"

type t = {
  n : int;
  block_rows : int;
  nblocks : int;
  data : Bytes.t;
  offsets : int array;  (* nblocks + 1 byte offsets into [data] *)
  (* zone maps, one cell per block; [first_]/[last_] are the values at
     the block's first/last row (columns a and b are sorted within a
     block only piecewise, but first/last still bound them), min/max
     bound the unsorted third column *)
  first_a : int array;
  last_a : int array;
  first_b : int array;
  last_b : int array;
  min_c : int array;
  max_c : int array;
  distinct_a : int;
  cache : int array option Atomic.t array;
  cached : int Atomic.t;  (* blocks currently cached, for the budget *)
}

let n t = t.n
let block_rows t = t.block_rows
let distinct_leading t = t.distinct_a

let rows_in_block t i =
  if i = t.nblocks - 1 then t.n - (i * t.block_rows) else t.block_rows

(* A getter closes over one lazily allocated scratch buffer: cache
   hits (the common case — covered segments of bench stores fit the
   budget entirely) allocate nothing, and one operation touching
   several uncached blocks reuses the same scratch. *)
let make_getter t =
  let scratch = ref [||] in
  fun i ->
    let slot = Array.unsafe_get t.cache i in
    match Atomic.get slot with
    | Some arr ->
      Obs.incr (obs_cache_hits ());
      arr
    | None ->
      Obs.incr (obs_decodes ());
      let rows = rows_in_block t i in
      if Atomic.get t.cached < cache_budget_blocks then begin
        let arr = Array.make (3 * rows) 0 in
        ignore (Block.decode t.data ~pos:t.offsets.(i) ~rows arr : int);
        Atomic.incr t.cached;
        Atomic.set slot (Some arr);
        arr
      end
      else begin
        if Array.length !scratch = 0 then
          scratch := Array.make (3 * t.block_rows) 0;
        let buf = !scratch in
        ignore (Block.decode t.data ~pos:t.offsets.(i) ~rows buf : int);
        buf
      end

(* ---------- construction ------------------------------------------------- *)

type grow = { mutable cells : int array; mutable len : int }

let gmake () = { cells = Array.make 16 0; len = 0 }

let gpush g v =
  if g.len = Array.length g.cells then begin
    let bigger = Array.make (2 * g.len) 0 in
    Array.blit g.cells 0 bigger 0 g.len;
    g.cells <- bigger
  end;
  g.cells.(g.len) <- v;
  g.len <- g.len + 1

let gtrim g = Array.sub g.cells 0 g.len

module Builder = struct
  type b = {
    block_rows : int;
    buf : Buffer.t;
    cur : int array;  (* pending rows of the open block, stride 3 *)
    mutable cur_n : int;
    mutable total : int;
    mutable prev_a : int;
    mutable distinct_a : int;
    offs : grow;
    b_first_a : grow;
    b_last_a : grow;
    b_first_b : grow;
    b_last_b : grow;
    b_min_c : grow;
    b_max_c : grow;
  }

  let create ?(block_rows = default_block_rows) () =
    if block_rows < 1 then invalid_arg "Segment.Builder.create";
    {
      block_rows;
      buf = Buffer.create 4096;
      cur = Array.make (3 * block_rows) 0;
      cur_n = 0;
      total = 0;
      prev_a = -1;
      distinct_a = 0;
      offs = gmake ();
      b_first_a = gmake ();
      b_last_a = gmake ();
      b_first_b = gmake ();
      b_last_b = gmake ();
      b_min_c = gmake ();
      b_max_c = gmake ();
    }

  let flush b =
    if b.cur_n > 0 then begin
      let k = b.cur_n in
      gpush b.offs (Buffer.length b.buf);
      Block.append b.buf b.cur ~lo:0 ~hi:k;
      gpush b.b_first_a b.cur.(0);
      gpush b.b_last_a b.cur.(3 * (k - 1));
      gpush b.b_first_b b.cur.(1);
      gpush b.b_last_b b.cur.((3 * (k - 1)) + 1);
      let mn = ref b.cur.(2) and mx = ref b.cur.(2) in
      for i = 1 to k - 1 do
        let c = b.cur.((3 * i) + 2) in
        if c < !mn then mn := c;
        if c > !mx then mx := c
      done;
      gpush b.b_min_c !mn;
      gpush b.b_max_c !mx;
      b.cur_n <- 0
    end

  let push b a bb c =
    let i = b.cur_n in
    b.cur.(3 * i) <- a;
    b.cur.((3 * i) + 1) <- bb;
    b.cur.((3 * i) + 2) <- c;
    b.cur_n <- i + 1;
    b.total <- b.total + 1;
    if a <> b.prev_a then begin
      b.prev_a <- a;
      b.distinct_a <- b.distinct_a + 1
    end;
    if b.cur_n = b.block_rows then flush b

  let finish b =
    flush b;
    gpush b.offs (Buffer.length b.buf);
    let nblocks = b.offs.len - 1 in
    {
      n = b.total;
      block_rows = b.block_rows;
      nblocks;
      data = Buffer.to_bytes b.buf;
      offsets = gtrim b.offs;
      first_a = gtrim b.b_first_a;
      last_a = gtrim b.b_last_a;
      first_b = gtrim b.b_first_b;
      last_b = gtrim b.b_last_b;
      min_c = gtrim b.b_min_c;
      max_c = gtrim b.b_max_c;
      distinct_a = b.distinct_a;
      cache = Array.init nblocks (fun _ -> Atomic.make None);
      cached = Atomic.make 0;
    }
end

let empty = Builder.finish (Builder.create ())

let of_sorted_array ?block_rows rows ~rows:k =
  let b = Builder.create ?block_rows () in
  for i = 0 to k - 1 do
    Builder.push b rows.(3 * i) rows.((3 * i) + 1) rows.((3 * i) + 2)
  done;
  Builder.finish b

(* ---------- lookups ------------------------------------------------------ *)

(* First index in [lo, hi) satisfying the monotone predicate, else [hi]. *)
let lower_bound lo hi pred =
  let l = ref lo and h = ref hi in
  while !l < !h do
    let mid = (!l + !h) / 2 in
    if pred mid then h := mid else l := mid + 1
  done;
  !l

(* Galloping search for the first row of [rlo, rhi) whose key is
   [above]: exponential probes from [rlo] bracket the boundary, then a
   binary search pins it.  Short runs (the common case for scan2)
   touch O(log run) rows, all inside already-bracketed blocks. *)
let gallop_row key above rlo rhi =
  if rlo >= rhi then rlo
  else if above (key rlo) then rlo
  else begin
    let step = ref 1 in
    while rlo + !step < rhi && not (above (key (rlo + !step))) do
      step := !step * 2
    done;
    let l = rlo + (!step / 2) + 1 in
    let h = min (rlo + !step) rhi in
    lower_bound l h (fun r -> above (key r))
  end

(* Bracket the candidate blocks for leading value [a]: the zone maps
   exclude every block whose [first_a .. last_a] interval misses [a],
   which is all but the run's boundary blocks. *)
let locate1_g t get a =
  if t.n = 0 then (0, 0)
  else begin
    let nb = t.nblocks in
    let blo = lower_bound 0 nb (fun i -> Array.unsafe_get t.last_a i >= a) in
    let bhi = lower_bound blo nb (fun i -> Array.unsafe_get t.first_a i > a) in
    Obs.add (obs_skips ()) (nb - (bhi - blo));
    if blo >= bhi then (0, 0)
    else begin
      let br = t.block_rows in
      let inblock i above =
        let arr = get i in
        let k = rows_in_block t i in
        lower_bound 0 k (fun j -> above (Array.unsafe_get arr (3 * j)))
      in
      let lo = (blo * br) + inblock blo (fun v -> v >= a) in
      let hi = ((bhi - 1) * br) + inblock (bhi - 1) (fun v -> v > a) in
      if lo >= hi then (0, 0) else (lo, hi)
    end
  end

(* First row of [lo, hi) (a run with fixed leading column, so the
   second column is sorted) whose second column is [above].  Blocks
   fully covered by the run have zone maps that describe run keys
   exactly, so a binary search over [first_b]/[last_b] narrows the
   row search to at most one block on each side. *)
let bound_second t get lo hi b ~strict =
  let br = t.block_rows in
  let key r = Array.unsafe_get (get (r / br)) ((3 * (r mod br)) + 1) in
  let above k = if strict then k > b else k >= b in
  let cl = (lo + br - 1) / br and ch = hi / br in
  if cl >= ch then gallop_row key above lo hi
  else if above (Array.unsafe_get t.first_b cl) then
    (* boundary prefix [lo, cl*br) plus the first covered row *)
    gallop_row key above lo (cl * br)
  else begin
    let j =
      lower_bound cl ch (fun i -> above (Array.unsafe_get t.last_b i))
    in
    Obs.add (obs_skips ()) (j - cl);
    if j < ch then gallop_row key above (j * br) (min ((j + 1) * br) hi)
    else gallop_row key above (ch * br) hi
  end

let locate2_g t get a b =
  let lo, hi = locate1_g t get a in
  if lo >= hi then (lo, lo)
  else begin
    let l2 = bound_second t get lo hi b ~strict:false in
    let h2 = bound_second t get l2 hi b ~strict:true in
    (l2, h2)
  end

let locate1 t a = locate1_g t (make_getter t) a
let locate2 t a b = locate2_g t (make_getter t) a b

let mem t a b c =
  let get = make_getter t in
  let lo, hi = locate2_g t get a b in
  lo < hi
  &&
  let br = t.block_rows in
  let key r = Array.unsafe_get (get (r / br)) ((3 * (r mod br)) + 2) in
  let pos = gallop_row key (fun v -> v >= c) lo hi in
  pos < hi && key pos = c

(* ---------- enumeration -------------------------------------------------- *)

let iter_range t lo hi f =
  if lo < hi then begin
    let get = make_getter t in
    let br = t.block_rows in
    let b0 = lo / br and b1 = (hi - 1) / br in
    for i = b0 to b1 do
      let arr = get i in
      let jlo = if i = b0 then lo - (i * br) else 0 in
      let jhi = if i = b1 then hi - (i * br) else rows_in_block t i in
      for j = jlo to jhi - 1 do
        f
          (Array.unsafe_get arr (3 * j))
          (Array.unsafe_get arr ((3 * j) + 1))
          (Array.unsafe_get arr ((3 * j) + 2))
      done
    done
  end

let blit_range t lo hi dst ~da ~db ~dc =
  if lo < hi then begin
    let get = make_getter t in
    let br = t.block_rows in
    let b0 = lo / br and b1 = (hi - 1) / br in
    let out = ref 0 in
    for i = b0 to b1 do
      let arr = get i in
      let jlo = if i = b0 then lo - (i * br) else 0 in
      let jhi = if i = b1 then hi - (i * br) else rows_in_block t i in
      for j = jlo to jhi - 1 do
        let base = 3 * !out in
        Array.unsafe_set dst (base + da) (Array.unsafe_get arr (3 * j));
        Array.unsafe_set dst (base + db) (Array.unsafe_get arr ((3 * j) + 1));
        Array.unsafe_set dst (base + dc) (Array.unsafe_get arr ((3 * j) + 2));
        incr out
      done
    done
  end

(* The merge path streams with its own scratch and never populates the
   cache: after a merge the old segment is garbage anyway. *)
let iter_all t f =
  if t.n > 0 then begin
    let scratch = Array.make (3 * t.block_rows) 0 in
    for i = 0 to t.nblocks - 1 do
      let k = rows_in_block t i in
      ignore (Block.decode t.data ~pos:t.offsets.(i) ~rows:k scratch : int);
      for j = 0 to k - 1 do
        f
          (Array.unsafe_get scratch (3 * j))
          (Array.unsafe_get scratch ((3 * j) + 1))
          (Array.unsafe_get scratch ((3 * j) + 2))
      done
    done
  end

(* Distinct leading values: a block whose zone map pins a single
   leading value is never decoded. *)
let iter_leading t f =
  if t.n > 0 then begin
    let scratch = Array.make (3 * t.block_rows) 0 in
    let prev = ref min_int in
    for i = 0 to t.nblocks - 1 do
      if t.first_a.(i) = t.last_a.(i) then begin
        if t.first_a.(i) <> !prev then begin
          prev := t.first_a.(i);
          f !prev
        end
      end
      else begin
        let k = rows_in_block t i in
        ignore (Block.decode t.data ~pos:t.offsets.(i) ~rows:k scratch : int);
        for j = 0 to k - 1 do
          let a = Array.unsafe_get scratch (3 * j) in
          if a <> !prev then begin
            prev := a;
            f a
          end
        done
      end
    done
  end

let resident_bytes t =
  let word_arrays =
    Array.length t.offsets + Array.length t.first_a + Array.length t.last_a
    + Array.length t.first_b + Array.length t.last_b + Array.length t.min_c
    + Array.length t.max_c
  in
  Bytes.length t.data
  + (8 * word_arrays)
  + (Array.length t.cache * 8 * 3)  (* slot array + atomics *)
  + (Atomic.get t.cached * 3 * t.block_rows * 8)
