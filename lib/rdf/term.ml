type t =
  | Uri of string
  | Blank of string
  | Literal of string

let rank = function Uri _ -> 0 | Blank _ -> 1 | Literal _ -> 2

let label = function Uri s | Blank s | Literal s -> s

let compare a b =
  let c = Int.compare (rank a) (rank b) in
  if c <> 0 then c else String.compare (label a) (label b)

let equal a b = compare a b = 0

(* FNV-1a over the label, seeded by the constructor rank: no dependence
   on the polymorphic Hashtbl.hash. *)
let hash t =
  let h = ref (0x811c9dc5 lxor rank t) in
  String.iter
    (fun ch -> h := (!h lxor Char.code ch) * 0x01000193 land max_int)
    (label t);
  !h

let uri u = Uri u
let blank b = Blank b
let literal l = Literal l

let is_uri = function Uri _ -> true | Blank _ | Literal _ -> false
let is_blank = function Blank _ -> true | Uri _ | Literal _ -> false
let is_literal = function Literal _ -> true | Uri _ | Blank _ -> false

let to_string = function
  | Uri u -> if String.contains u ':' then "<" ^ u ^ ">" else u
  | Blank b -> "_:" ^ b
  | Literal l -> "\"" ^ l ^ "\""

let of_string s =
  let n = String.length s in
  if n >= 2 && s.[0] = '<' && s.[n - 1] = '>' then Uri (String.sub s 1 (n - 2))
  else if n >= 2 && s.[0] = '_' && s.[1] = ':' then Blank (String.sub s 2 (n - 2))
  else if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then
    Literal (String.sub s 1 (n - 2))
  else Uri s

let pp fmt t = Format.pp_print_string fmt (to_string t)

let size t = String.length (label t)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
