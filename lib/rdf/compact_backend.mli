(** Compact sorted-segment backend: triples live in three immutable
    delta-compressed {!Segment}s (SPO / POS / OSP orders) answering
    lookups by zone-map bracketing plus galloping binary search, while
    point mutations go to a small LSM-style memtable (adds) and
    tombstone set (deletes over the segments), both indexed by a
    {!Hash_backend} so every count stays exact and O(1)-adjustable.
    When the memtable outgrows a fraction of the segment, the three
    orders are merge-rebuilt in one streaming pass.  4-10x fewer
    resident bytes per triple than the hash layout at Barton scale. *)

include Backend.S
