type encoded = int * int * int

type pattern = { ps : int option; pp : int option; po : int option }

(* Index telemetry (hooked to the ambient Obs sink; free when disabled).
   A "probe" is an exact count lookup, a "scan" enumerates matches. *)
let obs_inserts = Obs.cached_counter "store.inserts"
let obs_count_probes = Obs.cached_counter "store.count_probes"
let obs_scans = Obs.cached_counter "store.scans"
let obs_scanned = Obs.cached_counter "store.scanned_triples"

(* Both backends must satisfy the common signature — the dispatch
   below is a variant match (no functor at every call site), but the
   contract is machine-checked here. *)
module _ : Backend.S = Hash_backend
module _ : Backend.S = Compact_backend

type repr = Hash of Hash_backend.t | Compact of Compact_backend.t

type t = {
  id : int;
  dict : Dictionary.t;
  repr : repr;
  mutable version : int;
      (* bumped on every successful add/remove; lets cached query plans
         detect store mutation cheaply *)
  ats_version : int array;
      (* per-column stamp of the avg_term_size memo (-1 = unset) *)
  ats : float array;
}

(* Atomic: stores are created on worker domains too (statistics build
   counting copies during cost estimation), and ids must stay unique. *)
let next_id = Atomic.make 0

let create ?backend () =
  let id = Atomic.fetch_and_add next_id 1 in
  let kind = match backend with Some k -> k | None -> Backend.default () in
  let repr =
    match kind with
    | Backend.Hash -> Hash (Hash_backend.create ())
    | Backend.Compact -> Compact (Compact_backend.create ())
  in
  {
    id;
    dict = Dictionary.create ();
    repr;
    version = 0;
    ats_version = [| -1; -1; -1 |];
    ats = [| 0.; 0.; 0. |];
  }

let id t = t.id
let version t = t.version
let backend t = match t.repr with Hash _ -> Backend.Hash | Compact _ -> Backend.Compact
let dictionary t = t.dict
let dict_size t = Dictionary.size t.dict
let encode_term t term = Dictionary.encode t.dict term
let find_term t term = Dictionary.find t.dict term
let decode_term t code = Dictionary.decode t.dict code

let add_encoded t (s, p, o) =
  let added =
    match t.repr with
    | Hash h -> Hash_backend.add h s p o
    | Compact c -> Compact_backend.add c s p o
  in
  if added then begin
    Obs.incr (obs_inserts ());
    t.version <- t.version + 1
  end;
  added

let encode_triple t (tr : Triple.t) =
  (encode_term t tr.Triple.s, encode_term t tr.Triple.p, encode_term t tr.Triple.o)

let add t tr = add_encoded t (encode_triple t tr)

let remove_encoded t (s, p, o) =
  let removed =
    match t.repr with
    | Hash h -> Hash_backend.remove h s p o
    | Compact c -> Compact_backend.remove c s p o
  in
  if removed then t.version <- t.version + 1;
  removed

let remove t (tr : Triple.t) =
  match (find_term t tr.Triple.s, find_term t tr.Triple.p, find_term t tr.Triple.o) with
  | Some s, Some p, Some o -> remove_encoded t (s, p, o)
  | _ -> false

let mem_encoded t (s, p, o) =
  match t.repr with
  | Hash h -> Hash_backend.mem h s p o
  | Compact c -> Compact_backend.mem c s p o

let mem t (tr : Triple.t) =
  match (find_term t tr.Triple.s, find_term t tr.Triple.p, find_term t tr.Triple.o) with
  | Some s, Some p, Some o -> mem_encoded t (s, p, o)
  | _ -> false

let size t =
  match t.repr with
  | Hash h -> Hash_backend.size h
  | Compact c -> Compact_backend.size c

let pattern_all = { ps = None; pp = None; po = None }

let fold_all t f init =
  match t.repr with
  | Hash h -> Hash_backend.fold_all h f init
  | Compact c -> Compact_backend.fold_all c f init

(* ---------- raw scans for the compiled executor -------------------------- *)

(* The executor (Query.Plan) walks scan results by direct [int array]
   reads: no tuple per triple, no closure per step.  The hash backend
   returns its live bucket storage, the compact backend a fresh
   exactly-sized array; both stay valid across nested scans.  Treat
   them as read-only, and do not mutate the store while iterating. *)

let scan_all t =
  let ((_, n) as r) =
    match t.repr with
    | Hash h -> Hash_backend.scan_all h
    | Compact c -> Compact_backend.scan_all c
  in
  Obs.incr (obs_scans ());
  Obs.add (obs_scanned ()) n;
  r

let scan1 t col code =
  let ((_, n) as r) =
    match t.repr with
    | Hash h -> Hash_backend.scan1 h col code
    | Compact c -> Compact_backend.scan1 c col code
  in
  Obs.incr (obs_scans ());
  Obs.add (obs_scanned ()) n;
  r

let scan2 t cols a b =
  let ((_, n) as r) =
    match t.repr with
    | Hash h -> Hash_backend.scan2 h cols a b
    | Compact c -> Compact_backend.scan2 c cols a b
  in
  Obs.incr (obs_scans ());
  Obs.add (obs_scanned ()) n;
  r

(* ---------- pattern interface --------------------------------------------- *)

(* Newest-first enumeration over scan results preserves the order of
   the former cons-list buckets on the hash backend, which downstream
   consumers (workload generation in particular) rely on for
   reproducibility. *)
let fold_scan (data, n) f init =
  let acc = ref init in
  for i = n - 1 downto 0 do
    acc := f (data.(3 * i), data.((3 * i) + 1), data.((3 * i) + 2)) !acc
  done;
  !acc

let fold_matching t pat f init =
  match pat with
  | { ps = None; pp = None; po = None } ->
    Obs.incr (obs_scans ());
    Obs.add (obs_scanned ()) (size t);
    fold_all t f init
  | { ps = Some s; pp = Some p; po = Some o } ->
    Obs.incr (obs_scans ());
    Obs.incr (obs_scanned ());
    if mem_encoded t (s, p, o) then f (s, p, o) init else init
  | { ps = Some s; pp = Some p; po = None } -> fold_scan (scan2 t `SP s p) f init
  | { ps = Some s; pp = None; po = Some o } -> fold_scan (scan2 t `SO s o) f init
  | { ps = None; pp = Some p; po = Some o } -> fold_scan (scan2 t `PO p o) f init
  | { ps = Some s; pp = None; po = None } -> fold_scan (scan1 t `S s) f init
  | { ps = None; pp = Some p; po = None } -> fold_scan (scan1 t `P p) f init
  | { ps = None; pp = None; po = Some o } -> fold_scan (scan1 t `O o) f init

let iter_matching t pat f = fold_matching t pat (fun tr () -> f tr) ()

let count_of_pattern t pat =
  match pat with
  | { ps = None; pp = None; po = None } -> size t
  | { ps = Some s; pp = Some p; po = Some o } ->
    if mem_encoded t (s, p, o) then 1 else 0
  | { ps = Some s; pp = Some p; po = None } -> (
    match t.repr with
    | Hash h -> Hash_backend.count2 h `SP s p
    | Compact c -> Compact_backend.count2 c `SP s p)
  | { ps = Some s; pp = None; po = Some o } -> (
    match t.repr with
    | Hash h -> Hash_backend.count2 h `SO s o
    | Compact c -> Compact_backend.count2 c `SO s o)
  | { ps = None; pp = Some p; po = Some o } -> (
    match t.repr with
    | Hash h -> Hash_backend.count2 h `PO p o
    | Compact c -> Compact_backend.count2 c `PO p o)
  | { ps = Some s; pp = None; po = None } -> (
    match t.repr with
    | Hash h -> Hash_backend.count1 h `S s
    | Compact c -> Compact_backend.count1 c `S s)
  | { ps = None; pp = Some p; po = None } -> (
    match t.repr with
    | Hash h -> Hash_backend.count1 h `P p
    | Compact c -> Compact_backend.count1 c `P p)
  | { ps = None; pp = None; po = Some o } -> (
    match t.repr with
    | Hash h -> Hash_backend.count1 h `O o
    | Compact c -> Compact_backend.count1 c `O o)

let obs_probe_hist = Obs.cached_histogram "store.probe.ns"

let count_matching t pat =
  Obs.incr (obs_count_probes ());
  (* per-probe latency distribution; the clock is only read when a live
     histogram will see the sample, and no closure is allocated *)
  let h = obs_probe_hist () in
  if Obs.histogram_live h then begin
    let t0 = Obs.now_ns () in
    let n = count_of_pattern t pat in
    Obs.observe h (Obs.now_ns () - t0);
    n
  end
  else count_of_pattern t pat

let matching t pat = fold_matching t pat (fun tr acc -> tr :: acc) []

(* ---------- column statistics --------------------------------------------- *)

let distinct_in_column t col =
  match t.repr with
  | Hash h -> Hash_backend.distinct_in_column h col
  | Compact c -> Compact_backend.distinct_in_column c col

let fold_column_codes t col f init =
  match t.repr with
  | Hash h -> Hash_backend.fold_column_codes h col f init
  | Compact c -> Compact_backend.fold_column_codes c col f init

let column_codes t col = fold_column_codes t col (fun code acc -> code :: acc) []

let col_slot = function `S -> 0 | `P -> 1 | `O -> 2

(* Memoized per (store version, column): this sits on the cost model's
   hot path (Core.Cost reads it per candidate view) and used to decode
   every distinct term of the column on every call. *)
let avg_term_size t col =
  let i = col_slot col in
  if t.ats_version.(i) = t.version then t.ats.(i)
  else begin
    let total, count =
      fold_column_codes t col
        (fun code (total, count) ->
          (total + Term.size (decode_term t code), count + 1))
        (0, 0)
    in
    let v = if count = 0 then 0. else float_of_int total /. float_of_int count in
    t.ats.(i) <- v;
    t.ats_version.(i) <- t.version;
    v
  end

(* ---------- lifecycle ------------------------------------------------------ *)

let copy t =
  let fresh = create ~backend:(backend t) () in
  fold_all t
    (fun (s, p, o) () ->
      let reencode c = Dictionary.encode fresh.dict (decode_term t c) in
      ignore (add_encoded fresh (reencode s, reencode p, reencode o)))
    ();
  fresh

let of_triples triples =
  let t = create () in
  List.iter (fun tr -> ignore (add t tr)) triples;
  t

let to_triples t =
  fold_all t
    (fun (s, p, o) acc ->
      { Triple.s = decode_term t s; p = decode_term t p; o = decode_term t o }
      :: acc)
    []

(* ---------- backend controls ----------------------------------------------- *)

let compact t =
  match t.repr with
  | Hash h -> Hash_backend.compact h
  | Compact c -> Compact_backend.compact c

let resident_bytes t =
  match t.repr with
  | Hash h -> Hash_backend.resident_bytes h
  | Compact c -> Compact_backend.resident_bytes c

let recommended_batch_rows t =
  match t.repr with
  | Hash h -> Hash_backend.recommended_batch_rows h
  | Compact c -> Compact_backend.recommended_batch_rows c
