type encoded = int * int * int

type pattern = { ps : int option; pp : int option; po : int option }

(* Index telemetry (hooked to the ambient Obs sink; free when disabled).
   A "probe" is an O(1) count lookup, a "scan" enumerates a bucket. *)
let obs_inserts = Obs.cached_counter "store.inserts"
let obs_count_probes = Obs.cached_counter "store.count_probes"
let obs_scans = Obs.cached_counter "store.scans"
let obs_scanned = Obs.cached_counter "store.scanned_triples"

(* Index buckets keep an explicit length so that [count_matching] is O(1),
   matching the paper's assumption that counts for 1- and 2-constant
   patterns are available exactly (§3.3). *)
type bucket = { mutable items : encoded list; mutable n : int }

type index = (int, bucket) Hashtbl.t

type t = {
  dict : Dictionary.t;
  all : (encoded, unit) Hashtbl.t;
  idx_s : index;
  idx_p : index;
  idx_o : index;
  idx_sp : index;
  idx_so : index;
  idx_po : index;
}

let create () =
  {
    dict = Dictionary.create ();
    all = Hashtbl.create 4096;
    idx_s = Hashtbl.create 1024;
    idx_p = Hashtbl.create 64;
    idx_o = Hashtbl.create 1024;
    idx_sp = Hashtbl.create 1024;
    idx_so = Hashtbl.create 1024;
    idx_po = Hashtbl.create 1024;
  }

let dictionary t = t.dict
let encode_term t term = Dictionary.encode t.dict term
let find_term t term = Dictionary.find t.dict term
let decode_term t code = Dictionary.decode t.dict code

(* Codes fit comfortably in 31 bits at any scale we run; pack pairs into a
   single int key. *)
let pair_key a b = (a lsl 31) lor b

let bucket_add idx key triple =
  match Hashtbl.find_opt idx key with
  | Some b ->
    b.items <- triple :: b.items;
    b.n <- b.n + 1
  | None -> Hashtbl.add idx key { items = [ triple ]; n = 1 }

let bucket_remove idx key triple =
  match Hashtbl.find_opt idx key with
  | None -> ()
  | Some b ->
    b.items <- List.filter (fun x -> x <> triple) b.items;
    b.n <- List.length b.items;
    if b.n = 0 then Hashtbl.remove idx key

let add_encoded t ((s, p, o) as triple) =
  if Hashtbl.mem t.all triple then false
  else begin
    Obs.incr (obs_inserts ());
    Hashtbl.add t.all triple ();
    bucket_add t.idx_s s triple;
    bucket_add t.idx_p p triple;
    bucket_add t.idx_o o triple;
    bucket_add t.idx_sp (pair_key s p) triple;
    bucket_add t.idx_so (pair_key s o) triple;
    bucket_add t.idx_po (pair_key p o) triple;
    true
  end

let encode_triple t (tr : Triple.t) =
  (encode_term t tr.Triple.s, encode_term t tr.Triple.p, encode_term t tr.Triple.o)

let add t tr = add_encoded t (encode_triple t tr)

let remove_encoded t ((s, p, o) as triple) =
  if not (Hashtbl.mem t.all triple) then false
  else begin
    Hashtbl.remove t.all triple;
    bucket_remove t.idx_s s triple;
    bucket_remove t.idx_p p triple;
    bucket_remove t.idx_o o triple;
    bucket_remove t.idx_sp (pair_key s p) triple;
    bucket_remove t.idx_so (pair_key s o) triple;
    bucket_remove t.idx_po (pair_key p o) triple;
    true
  end

let remove t (tr : Triple.t) =
  match (find_term t tr.Triple.s, find_term t tr.Triple.p, find_term t tr.Triple.o) with
  | Some s, Some p, Some o -> remove_encoded t (s, p, o)
  | _ -> false

let mem_encoded t triple = Hashtbl.mem t.all triple

let mem t (tr : Triple.t) =
  match (find_term t tr.Triple.s, find_term t tr.Triple.p, find_term t tr.Triple.o) with
  | Some s, Some p, Some o -> mem_encoded t (s, p, o)
  | _ -> false

let size t = Hashtbl.length t.all

let pattern_all = { ps = None; pp = None; po = None }

let bucket_of t pat =
  match pat with
  | { ps = Some s; pp = Some p; po = None } ->
    Some (Hashtbl.find_opt t.idx_sp (pair_key s p))
  | { ps = Some s; pp = None; po = Some o } ->
    Some (Hashtbl.find_opt t.idx_so (pair_key s o))
  | { ps = None; pp = Some p; po = Some o } ->
    Some (Hashtbl.find_opt t.idx_po (pair_key p o))
  | { ps = Some s; pp = None; po = None } -> Some (Hashtbl.find_opt t.idx_s s)
  | { ps = None; pp = Some p; po = None } -> Some (Hashtbl.find_opt t.idx_p p)
  | { ps = None; pp = None; po = Some o } -> Some (Hashtbl.find_opt t.idx_o o)
  | { ps = None; pp = None; po = None } | { ps = Some _; pp = Some _; po = Some _ }
    -> None

let fold_all t f init = Hashtbl.fold (fun triple () acc -> f triple acc) t.all init

let fold_matching t pat f init =
  Obs.incr (obs_scans ());
  match pat with
  | { ps = None; pp = None; po = None } ->
    Obs.add (obs_scanned ()) (size t);
    fold_all t f init
  | { ps = Some s; pp = Some p; po = Some o } ->
    Obs.incr (obs_scanned ());
    if mem_encoded t (s, p, o) then f (s, p, o) init else init
  | _ -> (
    match bucket_of t pat with
    | Some (Some b) ->
      Obs.add (obs_scanned ()) b.n;
      List.fold_left (fun acc tr -> f tr acc) init b.items
    | Some None -> init
    | None -> assert false)

let iter_matching t pat f = fold_matching t pat (fun tr () -> f tr) ()

let count_of_pattern t pat =
  match pat with
  | { ps = None; pp = None; po = None } -> size t
  | { ps = Some s; pp = Some p; po = Some o } ->
    if mem_encoded t (s, p, o) then 1 else 0
  | _ -> (
    match bucket_of t pat with
    | Some (Some b) -> b.n
    | Some None -> 0
    | None -> assert false)

let obs_probe_hist = Obs.cached_histogram "store.probe.ns"

let count_matching t pat =
  Obs.incr (obs_count_probes ());
  (* per-probe latency distribution; the clock is only read when a live
     histogram will see the sample, and no closure is allocated *)
  let h = obs_probe_hist () in
  if Obs.histogram_live h then begin
    let t0 = Obs.now_ns () in
    let n = count_of_pattern t pat in
    Obs.observe h (Obs.now_ns () - t0);
    n
  end
  else count_of_pattern t pat

let matching t pat = fold_matching t pat (fun tr acc -> tr :: acc) []

let index_of_column t = function
  | `S -> t.idx_s
  | `P -> t.idx_p
  | `O -> t.idx_o

let distinct_in_column t col = Hashtbl.length (index_of_column t col)

let column_codes t col =
  Hashtbl.fold (fun code _ acc -> code :: acc) (index_of_column t col) []

let copy t =
  let fresh = create () in
  fold_all t
    (fun (s, p, o) () ->
      let reencode c = Dictionary.encode fresh.dict (decode_term t c) in
      ignore (add_encoded fresh (reencode s, reencode p, reencode o)))
    ();
  fresh

let of_triples triples =
  let t = create () in
  List.iter (fun tr -> ignore (add t tr)) triples;
  t

let to_triples t =
  fold_all t
    (fun (s, p, o) acc ->
      { Triple.s = decode_term t s; p = decode_term t p; o = decode_term t o }
      :: acc)
    []

let avg_term_size t col =
  let codes = column_codes t col in
  match codes with
  | [] -> 0.
  | _ ->
    let total =
      List.fold_left (fun acc c -> acc + Term.size (decode_term t c)) 0 codes
    in
    float_of_int total /. float_of_int (List.length codes)
