type encoded = int * int * int

type pattern = { ps : int option; pp : int option; po : int option }

(* Index telemetry (hooked to the ambient Obs sink; free when disabled).
   A "probe" is an O(1) count lookup, a "scan" enumerates a bucket. *)
let obs_inserts = Obs.cached_counter "store.inserts"
let obs_count_probes = Obs.cached_counter "store.count_probes"
let obs_scans = Obs.cached_counter "store.scans"
let obs_scanned = Obs.cached_counter "store.scanned_triples"

(* Index buckets are growable arrays of packed [s; p; o] triples: cell
   [3i .. 3i+2] holds the i-th triple, [n] triples are live.  Compared
   to the previous [encoded list] buckets this keeps [count_matching]
   O(1) (the paper's §3.3 exact-count assumption) while letting the
   compiled query executor (Query.Plan) walk a bucket by direct int
   reads with no per-triple allocation, and makes deletion a single
   swap-remove pass instead of a structural [List.filter] followed by a
   [List.length] recount. *)
type bucket = { mutable data : int array; mutable n : int }

let empty_scan = ([||] : int array)

let bucket_create s p o =
  let data = Array.make 12 0 in
  data.(0) <- s;
  data.(1) <- p;
  data.(2) <- o;
  { data; n = 1 }

let bucket_push b s p o =
  let base = 3 * b.n in
  if base = Array.length b.data then begin
    let bigger = Array.make (2 * base) 0 in
    Array.blit b.data 0 bigger 0 base;
    b.data <- bigger
  end;
  b.data.(base) <- s;
  b.data.(base + 1) <- p;
  b.data.(base + 2) <- o;
  b.n <- b.n + 1

(* Swap-remove: overwrite the victim with the last triple.  One scan,
   no allocation, no recount. *)
let bucket_delete b s p o =
  let n = b.n in
  let data = b.data in
  let rec find i =
    if i >= n then ()
    else if data.(3 * i) = s && data.((3 * i) + 1) = p && data.((3 * i) + 2) = o
    then begin
      let last = 3 * (n - 1) in
      data.(3 * i) <- data.(last);
      data.((3 * i) + 1) <- data.(last + 1);
      data.((3 * i) + 2) <- data.(last + 2);
      b.n <- n - 1
    end
    else find (i + 1)
  in
  find 0

type index = (int, bucket) Hashtbl.t

type t = {
  id : int;
  dict : Dictionary.t;
  all : (encoded, unit) Hashtbl.t;
  mutable version : int;
      (* bumped on every successful add/remove; lets cached query plans
         detect store mutation cheaply *)
  triples : bucket;  (* every triple, for all-wildcard scans *)
  idx_s : index;
  idx_p : index;
  idx_o : index;
  idx_sp : index;
  idx_so : index;
  idx_po : index;
}

(* Atomic: stores are created on worker domains too (statistics build
   counting copies during cost estimation), and ids must stay unique. *)
let next_id = Atomic.make 0

let create () =
  let id = Atomic.fetch_and_add next_id 1 in
  {
    id;
    dict = Dictionary.create ();
    all = Hashtbl.create 4096;
    version = 0;
    triples = { data = Array.make 12 0; n = 0 };
    idx_s = Hashtbl.create 1024;
    idx_p = Hashtbl.create 64;
    idx_o = Hashtbl.create 1024;
    idx_sp = Hashtbl.create 1024;
    idx_so = Hashtbl.create 1024;
    idx_po = Hashtbl.create 1024;
  }

let id t = t.id
let version t = t.version
let dictionary t = t.dict
let dict_size t = Dictionary.size t.dict
let encode_term t term = Dictionary.encode t.dict term
let find_term t term = Dictionary.find t.dict term
let decode_term t code = Dictionary.decode t.dict code

(* Codes fit comfortably in 31 bits at any scale we run; pack pairs into a
   single int key. *)
let pair_key a b = (a lsl 31) lor b

let bucket_add idx key s p o =
  match Hashtbl.find_opt idx key with
  | Some b -> bucket_push b s p o
  | None -> Hashtbl.add idx key (bucket_create s p o)

let bucket_remove idx key s p o =
  match Hashtbl.find_opt idx key with
  | None -> ()
  | Some b ->
    bucket_delete b s p o;
    if b.n = 0 then Hashtbl.remove idx key

let add_encoded t ((s, p, o) as triple) =
  if Hashtbl.mem t.all triple then false
  else begin
    Obs.incr (obs_inserts ());
    Hashtbl.add t.all triple ();
    t.version <- t.version + 1;
    bucket_push t.triples s p o;
    bucket_add t.idx_s s s p o;
    bucket_add t.idx_p p s p o;
    bucket_add t.idx_o o s p o;
    bucket_add t.idx_sp (pair_key s p) s p o;
    bucket_add t.idx_so (pair_key s o) s p o;
    bucket_add t.idx_po (pair_key p o) s p o;
    true
  end

let encode_triple t (tr : Triple.t) =
  (encode_term t tr.Triple.s, encode_term t tr.Triple.p, encode_term t tr.Triple.o)

let add t tr = add_encoded t (encode_triple t tr)

let remove_encoded t ((s, p, o) as triple) =
  if not (Hashtbl.mem t.all triple) then false
  else begin
    Hashtbl.remove t.all triple;
    t.version <- t.version + 1;
    bucket_delete t.triples s p o;
    bucket_remove t.idx_s s s p o;
    bucket_remove t.idx_p p s p o;
    bucket_remove t.idx_o o s p o;
    bucket_remove t.idx_sp (pair_key s p) s p o;
    bucket_remove t.idx_so (pair_key s o) s p o;
    bucket_remove t.idx_po (pair_key p o) s p o;
    true
  end

let remove t (tr : Triple.t) =
  match (find_term t tr.Triple.s, find_term t tr.Triple.p, find_term t tr.Triple.o) with
  | Some s, Some p, Some o -> remove_encoded t (s, p, o)
  | _ -> false

let mem_encoded t triple = Hashtbl.mem t.all triple

let mem t (tr : Triple.t) =
  match (find_term t tr.Triple.s, find_term t tr.Triple.p, find_term t tr.Triple.o) with
  | Some s, Some p, Some o -> mem_encoded t (s, p, o)
  | _ -> false

let size t = t.triples.n

let pattern_all = { ps = None; pp = None; po = None }

let bucket_of t pat =
  match pat with
  | { ps = Some s; pp = Some p; po = None } ->
    Some (Hashtbl.find_opt t.idx_sp (pair_key s p))
  | { ps = Some s; pp = None; po = Some o } ->
    Some (Hashtbl.find_opt t.idx_so (pair_key s o))
  | { ps = None; pp = Some p; po = Some o } ->
    Some (Hashtbl.find_opt t.idx_po (pair_key p o))
  | { ps = Some s; pp = None; po = None } -> Some (Hashtbl.find_opt t.idx_s s)
  | { ps = None; pp = Some p; po = None } -> Some (Hashtbl.find_opt t.idx_p p)
  | { ps = None; pp = None; po = Some o } -> Some (Hashtbl.find_opt t.idx_o o)
  | { ps = None; pp = None; po = None } | { ps = Some _; pp = Some _; po = Some _ }
    -> None

(* Newest-first enumeration preserves the order of the former cons-list
   buckets, which downstream consumers (workload generation in
   particular) rely on for reproducibility. *)
let fold_bucket b f init =
  let data = b.data in
  let acc = ref init in
  for i = b.n - 1 downto 0 do
    acc := f (data.(3 * i), data.((3 * i) + 1), data.((3 * i) + 2)) !acc
  done;
  !acc

let fold_all t f init = Hashtbl.fold (fun triple () acc -> f triple acc) t.all init

let fold_matching t pat f init =
  Obs.incr (obs_scans ());
  match pat with
  | { ps = None; pp = None; po = None } ->
    Obs.add (obs_scanned ()) (size t);
    fold_all t f init
  | { ps = Some s; pp = Some p; po = Some o } ->
    Obs.incr (obs_scanned ());
    if mem_encoded t (s, p, o) then f (s, p, o) init else init
  | _ -> (
    match bucket_of t pat with
    | Some (Some b) ->
      Obs.add (obs_scanned ()) b.n;
      fold_bucket b f init
    | Some None -> init
    | None -> assert false)

let iter_matching t pat f = fold_matching t pat (fun tr () -> f tr) ()

let count_of_pattern t pat =
  match pat with
  | { ps = None; pp = None; po = None } -> size t
  | { ps = Some s; pp = Some p; po = Some o } ->
    if mem_encoded t (s, p, o) then 1 else 0
  | _ -> (
    match bucket_of t pat with
    | Some (Some b) -> b.n
    | Some None -> 0
    | None -> assert false)

let obs_probe_hist = Obs.cached_histogram "store.probe.ns"

let count_matching t pat =
  Obs.incr (obs_count_probes ());
  (* per-probe latency distribution; the clock is only read when a live
     histogram will see the sample, and no closure is allocated *)
  let h = obs_probe_hist () in
  if Obs.histogram_live h then begin
    let t0 = Obs.now_ns () in
    let n = count_of_pattern t pat in
    Obs.observe h (Obs.now_ns () - t0);
    n
  end
  else count_of_pattern t pat

let matching t pat = fold_matching t pat (fun tr acc -> tr :: acc) []

(* ---------- raw bucket access for the compiled executor ------------------ *)

(* The executor (Query.Plan) walks buckets by direct [int array] reads:
   no tuple per triple, no closure per step.  The returned array is the
   live bucket storage — callers must treat it as read-only and must
   not mutate the store while holding it. *)

let scan_all t =
  Obs.incr (obs_scans ());
  Obs.add (obs_scanned ()) t.triples.n;
  (t.triples.data, t.triples.n)

let scan_bucket = function
  | Some b ->
    Obs.incr (obs_scans ());
    Obs.add (obs_scanned ()) b.n;
    (b.data, b.n)
  | None ->
    Obs.incr (obs_scans ());
    (empty_scan, 0)

let scan1 t col code =
  scan_bucket
    (Hashtbl.find_opt
       (match col with `S -> t.idx_s | `P -> t.idx_p | `O -> t.idx_o)
       code)

let scan2 t cols a b =
  scan_bucket
    (Hashtbl.find_opt
       (match cols with `SP -> t.idx_sp | `SO -> t.idx_so | `PO -> t.idx_po)
       (pair_key a b))

let index_of_column t = function
  | `S -> t.idx_s
  | `P -> t.idx_p
  | `O -> t.idx_o

let distinct_in_column t col = Hashtbl.length (index_of_column t col)

let column_codes t col =
  Hashtbl.fold (fun code _ acc -> code :: acc) (index_of_column t col) []

let copy t =
  let fresh = create () in
  fold_all t
    (fun (s, p, o) () ->
      let reencode c = Dictionary.encode fresh.dict (decode_term t c) in
      ignore (add_encoded fresh (reencode s, reencode p, reencode o)))
    ();
  fresh

let of_triples triples =
  let t = create () in
  List.iter (fun tr -> ignore (add t tr)) triples;
  t

let to_triples t =
  fold_all t
    (fun (s, p, o) acc ->
      { Triple.s = decode_term t s; p = decode_term t p; o = decode_term t o }
      :: acc)
    []

let avg_term_size t col =
  let codes = column_codes t col in
  match codes with
  | [] -> 0.
  | _ ->
    let total =
      List.fold_left (fun acc c -> acc + Term.size (decode_term t c)) 0 codes
    in
    float_of_int total /. float_of_int (List.length codes)
