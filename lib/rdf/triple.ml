type t = { s : Term.t; p : Term.t; o : Term.t }

let well_formed { s; p; o = _ } =
  (Term.is_uri s || Term.is_blank s) && Term.is_uri p

let make s p o =
  let t = { s; p; o } in
  if not (well_formed t) then
    invalid_arg ("Triple.make: ill-formed triple " ^ Term.to_string s ^ " "
                 ^ Term.to_string p ^ " " ^ Term.to_string o);
  t

let compare a b =
  let c = Term.compare a.s b.s in
  if c <> 0 then c
  else
    let c = Term.compare a.p b.p in
    if c <> 0 then c else Term.compare a.o b.o

let equal a b = compare a b = 0

let hash t =
  ((((Term.hash t.s * 31) + Term.hash t.p) * 31) + Term.hash t.o) land max_int

let to_string t =
  Printf.sprintf "(%s, %s, %s)" (Term.to_string t.s) (Term.to_string t.p)
    (Term.to_string t.o)

let pp fmt t = Format.pp_print_string fmt (to_string t)
