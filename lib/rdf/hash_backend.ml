(* The hexastore-style layout Store used to implement inline: index
   buckets are growable arrays of packed [s; p; o] triples, kept under
   Hashtbls for every column and column pair, so [count1]/[count2] are
   O(1) (the paper's §3.3 exact-count assumption) and the compiled
   executor (Query.Plan) walks a bucket by direct int reads with no
   per-triple allocation.  Deletion is a single swap-remove pass. *)

type bucket = { mutable data : int array; mutable n : int }

let empty_scan = ([||] : int array)

let bucket_create s p o =
  let data = Array.make 12 0 in
  data.(0) <- s;
  data.(1) <- p;
  data.(2) <- o;
  { data; n = 1 }

let bucket_push b s p o =
  let base = 3 * b.n in
  if base = Array.length b.data then begin
    let bigger = Array.make (2 * base) 0 in
    Array.blit b.data 0 bigger 0 base;
    b.data <- bigger
  end;
  b.data.(base) <- s;
  b.data.(base + 1) <- p;
  b.data.(base + 2) <- o;
  b.n <- b.n + 1

(* Swap-remove: overwrite the victim with the last triple.  One scan,
   no allocation, no recount. *)
let bucket_delete b s p o =
  let n = b.n in
  let data = b.data in
  let rec find i =
    if i >= n then ()
    else if data.(3 * i) = s && data.((3 * i) + 1) = p && data.((3 * i) + 2) = o
    then begin
      let last = 3 * (n - 1) in
      data.(3 * i) <- data.(last);
      data.((3 * i) + 1) <- data.(last + 1);
      data.((3 * i) + 2) <- data.(last + 2);
      b.n <- n - 1
    end
    else find (i + 1)
  in
  find 0

type index = (int, bucket) Hashtbl.t

type t = {
  all : (int * int * int, unit) Hashtbl.t;
  triples : bucket;  (* every triple, for all-wildcard scans *)
  idx_s : index;
  idx_p : index;
  idx_o : index;
  idx_sp : index;
  idx_so : index;
  idx_po : index;
}

let create () =
  {
    all = Hashtbl.create 4096;
    triples = { data = Array.make 12 0; n = 0 };
    idx_s = Hashtbl.create 1024;
    idx_p = Hashtbl.create 64;
    idx_o = Hashtbl.create 1024;
    idx_sp = Hashtbl.create 1024;
    idx_so = Hashtbl.create 1024;
    idx_po = Hashtbl.create 1024;
  }

(* Codes fit comfortably in 31 bits at any scale we run; pack pairs into a
   single int key. *)
let pair_key a b = (a lsl 31) lor b

let bucket_add idx key s p o =
  match Hashtbl.find_opt idx key with
  | Some b -> bucket_push b s p o
  | None -> Hashtbl.add idx key (bucket_create s p o)

let bucket_remove idx key s p o =
  match Hashtbl.find_opt idx key with
  | None -> ()
  | Some b ->
    bucket_delete b s p o;
    if b.n = 0 then Hashtbl.remove idx key

let add t s p o =
  let triple = (s, p, o) in
  if Hashtbl.mem t.all triple then false
  else begin
    Hashtbl.add t.all triple ();
    bucket_push t.triples s p o;
    bucket_add t.idx_s s s p o;
    bucket_add t.idx_p p s p o;
    bucket_add t.idx_o o s p o;
    bucket_add t.idx_sp (pair_key s p) s p o;
    bucket_add t.idx_so (pair_key s o) s p o;
    bucket_add t.idx_po (pair_key p o) s p o;
    true
  end

let remove t s p o =
  let triple = (s, p, o) in
  if not (Hashtbl.mem t.all triple) then false
  else begin
    Hashtbl.remove t.all triple;
    bucket_delete t.triples s p o;
    bucket_remove t.idx_s s s p o;
    bucket_remove t.idx_p p s p o;
    bucket_remove t.idx_o o s p o;
    bucket_remove t.idx_sp (pair_key s p) s p o;
    bucket_remove t.idx_so (pair_key s o) s p o;
    bucket_remove t.idx_po (pair_key p o) s p o;
    true
  end

let mem t s p o = Hashtbl.mem t.all (s, p, o)
let size t = t.triples.n

let index_of_column t = function
  | `S -> t.idx_s
  | `P -> t.idx_p
  | `O -> t.idx_o

let index_of_pair t = function
  | `SP -> t.idx_sp
  | `SO -> t.idx_so
  | `PO -> t.idx_po

let count_bucket = function Some b -> b.n | None -> 0
let count1 t col code = count_bucket (Hashtbl.find_opt (index_of_column t col) code)

let count2 t cols a b =
  count_bucket (Hashtbl.find_opt (index_of_pair t cols) (pair_key a b))

(* Scans return the live bucket storage: zero-copy, and stable under
   further scans (only mutation rewrites a bucket). *)
let scan_all t = (t.triples.data, t.triples.n)

let scan_bucket = function
  | Some b -> (b.data, b.n)
  | None -> (empty_scan, 0)

let scan1 t col code = scan_bucket (Hashtbl.find_opt (index_of_column t col) code)

let scan2 t cols a b =
  scan_bucket (Hashtbl.find_opt (index_of_pair t cols) (pair_key a b))

let fold_all t f init = Hashtbl.fold (fun triple () acc -> f triple acc) t.all init
let distinct_in_column t col = Hashtbl.length (index_of_column t col)

let fold_column_codes t col f init =
  Hashtbl.fold (fun code _ acc -> f code acc) (index_of_column t col) init

(* Estimated live bytes of the index structures (dictionary excluded:
   it is shared Store state).  Hashtbl internals are modelled as one
   word per slot plus a 4-word Cons per binding; [all]'s tuple keys
   are 4 boxed words each. *)
let resident_bytes t =
  let bucket_words b = 4 + Array.length b.data in
  let index_words idx =
    let st = Hashtbl.stats idx in
    Hashtbl.fold (fun _ b acc -> acc + bucket_words b) idx
      (st.Hashtbl.num_buckets + (4 * st.Hashtbl.num_bindings))
  in
  let all_st = Hashtbl.stats t.all in
  let words =
    all_st.Hashtbl.num_buckets
    + (8 * all_st.Hashtbl.num_bindings)
    + bucket_words t.triples
    + index_words t.idx_s + index_words t.idx_p + index_words t.idx_o
    + index_words t.idx_sp + index_words t.idx_so + index_words t.idx_po
  in
  8 * words

let compact _ = ()

(* Cache-aware batch sizing hint: a batch should comfortably hold the
   typical scan fan-out, i.e. a few times the mean single-column
   bucket, rounded to a power of two and clamped so tiny stores don't
   collapse the pipeline and huge ones don't blow the cache. *)
let recommended_batch_rows t =
  let d =
    Hashtbl.length t.idx_s + Hashtbl.length t.idx_p + Hashtbl.length t.idx_o
  in
  if d = 0 then 1024
  else begin
    let avg = 3 * size t / d in
    let target = 8 * max 1 avg in
    let rec pow2 c = if c >= target || c >= 4096 then c else pow2 (2 * c) in
    pow2 128
  end
