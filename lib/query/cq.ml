type t = {
  name : string;
  head : Qterm.t list;
  body : Atom.t list;
  mutable canon_id : int;
      (* memoized interned canonical form, -1 = not yet computed.
         Canonical labeling is the expensive part of a plan-cache
         lookup, and head/body are immutable after construction, so it
         is computed at most once per query value.  Every derived query
         below that changes head or body resets it. *)
}

module SMap = Map.Make (String)
module SSet = Set.Make (String)

let body_var_set body =
  List.fold_left
    (fun acc a -> List.fold_left (fun acc v -> SSet.add v acc) acc (Atom.vars a))
    SSet.empty body

let make ~name ~head ~body =
  if body = [] then invalid_arg "Cq.make: empty body";
  let bvars = body_var_set body in
  List.iter
    (fun term ->
      match term with
      | Qterm.Var x when not (SSet.mem x bvars) ->
        invalid_arg ("Cq.make: unsafe head variable " ^ x)
      | Qterm.Var _ | Qterm.Cst _ -> ())
    head;
  { name; head; body; canon_id = -1 }

(* the name does not enter the canonical form: keep the memo *)
let rename q name = { q with name }

let arity q = List.length q.head

let head_vars q =
  let rec collect seen = function
    | [] -> []
    | Qterm.Var x :: rest when not (SSet.mem x seen) ->
      x :: collect (SSet.add x seen) rest
    | _ :: rest -> collect seen rest
  in
  collect SSet.empty q.head

let body_vars q = SSet.elements (body_var_set q.body)

let existential_vars q =
  let heads = SSet.of_list (head_vars q) in
  List.filter (fun v -> not (SSet.mem v heads)) (body_vars q)

let atom_count q = List.length q.body

let constants q =
  List.sort_uniq Rdf.Term.compare
    (List.concat_map (fun a -> List.map snd (Atom.constants a)) q.body)

let constant_count q =
  List.fold_left (fun acc a -> acc + Atom.constant_count a) 0 q.body

let equal_syntactic a b =
  List.length a.head = List.length b.head
  && List.for_all2 Qterm.equal a.head b.head
  && List.length a.body = List.length b.body
  && List.for_all2 Atom.equal a.body b.body

let subst f q =
  let apply_term = function
    | Qterm.Var x as v -> Option.value (f x) ~default:v
    | Qterm.Cst _ as c -> c
  in
  {
    q with
    head = List.map apply_term q.head;
    body = List.map (Atom.subst f) q.body;
    canon_id = -1;
  }

let subst_var x v q = subst (fun y -> if String.equal x y then Some v else None) q

let rename_var x y q = subst_var x (Qterm.Var y) q

let freshen q =
  let mapping =
    List.fold_left
      (fun acc v -> SMap.add v (Qterm.Var (Qterm.fresh_var ())) acc)
      SMap.empty (body_vars q)
  in
  subst (fun v -> SMap.find_opt v mapping) q

(* -- Containment mappings (Chandra-Merlin) ------------------------------ *)

let unify_term subst from_term into_term =
  match from_term with
  | Qterm.Cst c -> (
    match into_term with
    | Qterm.Cst c' when Rdf.Term.equal c c' -> Some subst
    | Qterm.Cst _ | Qterm.Var _ -> None)
  | Qterm.Var x -> (
    match SMap.find_opt x subst with
    | Some bound -> if Qterm.equal bound into_term then Some subst else None
    | None -> Some (SMap.add x into_term subst))

let unify_atom subst (a : Atom.t) (b : Atom.t) =
  Option.bind (unify_term subst a.s b.s) (fun subst ->
      Option.bind (unify_term subst a.p b.p) (fun subst ->
          unify_term subst a.o b.o))

let homomorphism ?(check_head = true) ~from ~into () =
  let seed =
    if not check_head then Some SMap.empty
    else if List.length from.head <> List.length into.head then None
    else
      List.fold_left2
        (fun acc hf hi -> Option.bind acc (fun subst -> unify_term subst hf hi))
        (Some SMap.empty) from.head into.head
  in
  match seed with
  | None -> None
  | Some seed ->
    let rec search subst = function
      | [] -> Some subst
      | atom :: rest ->
        let try_target target =
          match unify_atom subst atom target with
          | Some subst' -> search subst' rest
          | None -> None
        in
        List.find_map try_target into.body
    in
    Option.map
      (fun subst -> SMap.bindings subst)
      (search seed from.body)

let contained_in q1 q2 =
  Option.is_some (homomorphism ~from:q2 ~into:q1 ())

let equivalent a b = contained_in a b && contained_in b a

(* A query is minimized by repeatedly folding it into itself minus one
   atom; the head must be preserved, so atoms whose removal makes a head
   variable unsafe are kept. *)
let minimize q =
  let try_drop q i =
    let body' = List.filteri (fun j _ -> j <> i) q.body in
    if body' = [] then None
    else
      let bvars = body_var_set body' in
      let head_safe =
        List.for_all
          (function Qterm.Var x -> SSet.mem x bvars | Qterm.Cst _ -> true)
          q.head
      in
      if not head_safe then None
      else
        let candidate = { q with body = body'; canon_id = -1 } in
        match homomorphism ~from:q ~into:candidate () with
        | Some _ -> Some candidate
        | None -> None
    in
  let rec loop q =
    let n = List.length q.body in
    let rec attempt i = if i >= n then q else
      match try_drop q i with
      | Some smaller -> loop smaller
      | None -> attempt (i + 1)
    in
    attempt 0
  in
  loop q

let is_minimal q = atom_count (minimize q) = atom_count q

(* -- Connectivity -------------------------------------------------------- *)

let components q =
  let atoms = Array.of_list q.body in
  let n = Array.length atoms in
  let visited = Array.make n false in
  let adjacent i j = Atom.shares_var atoms.(i) atoms.(j) in
  let rec bfs frontier acc =
    match frontier with
    | [] -> acc
    | i :: rest ->
      let fresh = ref [] in
      for j = 0 to n - 1 do
        if (not visited.(j)) && adjacent i j then begin
          visited.(j) <- true;
          fresh := j :: !fresh
        end
      done;
      bfs (!fresh @ rest) (i :: acc)
  in
  let comps = ref [] in
  for i = 0 to n - 1 do
    if not visited.(i) then begin
      visited.(i) <- true;
      let comp = bfs [ i ] [] in
      comps := List.map (fun j -> atoms.(j)) (List.sort Int.compare comp) :: !comps
    end
  done;
  List.rev !comps

let is_connected q = List.length (components q) <= 1

(* -- Body isomorphism (for view fusion) ---------------------------------- *)

let body_isomorphism v1 v2 =
  if List.length v1.body <> List.length v2.body then None
  else
    let targets = Array.of_list v1.body in
    let n = Array.length targets in
    (* forward: v2 var -> v1 var; backward ensures injectivity *)
    let match_term fwd bwd t2 t1 =
      match (t2, t1) with
      | Qterm.Cst c2, Qterm.Cst c1 when Rdf.Term.equal c2 c1 -> Some (fwd, bwd)
      | Qterm.Var x2, Qterm.Var x1 -> (
        match (SMap.find_opt x2 fwd, SMap.find_opt x1 bwd) with
        | Some y1, Some y2 ->
          if String.equal y1 x1 && String.equal y2 x2 then Some (fwd, bwd) else None
        | None, None -> Some (SMap.add x2 x1 fwd, SMap.add x1 x2 bwd)
        | Some _, None | None, Some _ -> None)
      | Qterm.Cst _, _ | Qterm.Var _, _ -> None
    in
    let match_atom fwd bwd (a2 : Atom.t) (a1 : Atom.t) =
      Option.bind (match_term fwd bwd a2.s a1.s) (fun (fwd, bwd) ->
          Option.bind (match_term fwd bwd a2.p a1.p) (fun (fwd, bwd) ->
              match_term fwd bwd a2.o a1.o))
    in
    let rec search fwd bwd used = function
      | [] -> Some fwd
      | a2 :: rest ->
        let rec try_target i =
          if i >= n then None
          else if List.mem i used then try_target (i + 1)
          else
            match match_atom fwd bwd a2 targets.(i) with
            | Some (fwd', bwd') -> (
              match search fwd' bwd' (i :: used) rest with
              | Some _ as found -> found
              | None -> try_target (i + 1))
            | None -> try_target (i + 1)
        in
        try_target 0
    in
    Option.map SMap.bindings (search SMap.empty SMap.empty [] v2.body)

(* -- Canonical labeling --------------------------------------------------- *)

let slot_color colors = function
  | Qterm.Cst c -> "C:" ^ Rdf.Term.to_string c
  | Qterm.Var x -> SMap.find x colors

let atom_signature colors (a : Atom.t) =
  "(" ^ slot_color colors a.s ^ "," ^ slot_color colors a.p ^ ","
  ^ slot_color colors a.o ^ ")"

let refine_colors body vars colors =
  let signature v =
    let occurrences =
      List.concat_map
        (fun a ->
          List.filter_map
            (fun pos ->
              match Atom.term_at a pos with
              | Qterm.Var x when String.equal x v ->
                Some (Atom.position_name pos ^ atom_signature colors a)
              | Qterm.Var _ | Qterm.Cst _ -> None)
            Atom.positions)
        body
    in
    SMap.find v colors ^ "|" ^ String.concat ";" (List.sort String.compare occurrences)
  in
  let sigs = List.map (fun v -> (v, signature v)) vars in
  let distinct = List.sort_uniq String.compare (List.map snd sigs) in
  let rank s =
    let rec index i = function
      | [] -> assert false
      | x :: rest -> if String.equal x s then i else index (i + 1) rest
    in
    index 0 distinct
  in
  List.fold_left
    (fun acc (v, s) -> SMap.add v (Printf.sprintf "c%03d" (rank s)) acc)
    SMap.empty sigs

let rec refine_to_fixpoint body vars colors =
  let next = refine_colors body vars colors in
  if SMap.equal String.equal colors next then colors
  else refine_to_fixpoint body vars next

type head_mode = Ordered | Set | NoHead

let render ~head_mode q colors =
  let var_rank =
    let sorted =
      List.sort
        (fun (_, c1) (_, c2) -> String.compare c1 c2)
        (SMap.bindings colors)
    in
    List.mapi (fun i (v, _) -> (v, Printf.sprintf "V%d" i)) sorted
  in
  let label = function
    | Qterm.Cst c -> Rdf.Term.to_string c
    | Qterm.Var x -> List.assoc x var_rank
  in
  let atom_str (a : Atom.t) =
    "t(" ^ label a.s ^ "," ^ label a.p ^ "," ^ label a.o ^ ")"
  in
  let body_str = String.concat "&" (List.sort String.compare (List.map atom_str q.body)) in
  match head_mode with
  | Ordered -> "[" ^ String.concat "," (List.map label q.head) ^ "]<=" ^ body_str
  | Set ->
    "{" ^ String.concat ","
      (List.sort String.compare (List.map label q.head)) ^ "}<=" ^ body_str
  | NoHead -> body_str

let canonical_generic ~head_mode q =
  let vars = body_vars q in
  let initial =
    let head_tags =
      match head_mode with
      | NoHead -> SMap.empty
      | Set ->
        (* heads compared as sets: every head variable gets the same tag *)
        List.fold_left
          (fun acc term ->
            match term with
            | Qterm.Var x -> SMap.add x "H" acc
            | Qterm.Cst _ -> acc)
          SMap.empty q.head
      | Ordered ->
        List.fold_left
          (fun (acc, i) term ->
            match term with
            | Qterm.Var x ->
              let prev = Option.value (SMap.find_opt x acc) ~default:"" in
              (SMap.add x (prev ^ "H" ^ string_of_int i) acc, i + 1)
            | Qterm.Cst _ -> (acc, i + 1))
          (SMap.empty, 0) q.head
        |> fst
    in
    List.fold_left
      (fun acc v ->
        SMap.add v ("0" ^ Option.value (SMap.find_opt v head_tags) ~default:"E") acc)
      SMap.empty vars
  in
  let discrete colors =
    let values = List.map snd (SMap.bindings colors) in
    List.length (List.sort_uniq String.compare values) = List.length values
  in
  let rec solve colors =
    let colors = refine_to_fixpoint q.body vars colors in
    if discrete colors then render ~head_mode q colors
    else begin
      (* individualize each member of the first ambiguous class, keep the
         lexicographically least outcome: canonical and order-independent *)
      let by_color =
        List.fold_left
          (fun acc (v, c) ->
            SMap.update c
              (function None -> Some [ v ] | Some vs -> Some (v :: vs))
              acc)
          SMap.empty (SMap.bindings colors)
      in
      let _, clash =
        List.find (fun (_, vs) -> List.length vs > 1) (SMap.bindings by_color)
      in
      let candidates =
        List.map
          (fun v -> solve (SMap.add v (SMap.find v colors ^ "!") colors))
          clash
      in
      List.fold_left min (List.hd candidates) (List.tl candidates)
    end
  in
  if vars = [] then render ~head_mode q SMap.empty else solve initial

let canonical_string q = canonical_generic ~head_mode:Ordered q

let interned_canonical q =
  if q.canon_id >= 0 then q.canon_id
  else begin
    let id = Interning.of_canonical (canonical_string q) in
    q.canon_id <- id;
    id
  end

let canonical_body_string q = canonical_generic ~head_mode:NoHead q

let canonical_head_set_string q = canonical_generic ~head_mode:Set q

let to_string q =
  Printf.sprintf "%s(%s) :- %s" q.name
    (String.concat ", " (List.map Qterm.to_string q.head))
    (String.concat ", " (List.map Atom.to_string q.body))

let pp fmt q = Format.pp_print_string fmt (to_string q)
