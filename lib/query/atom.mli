(** Triple-pattern atoms [t(s, p, o)] over the single triple table. *)

type position = S | P | O

type t = { s : Qterm.t; p : Qterm.t; o : Qterm.t }

val make : Qterm.t -> Qterm.t -> Qterm.t -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val term_at : t -> position -> Qterm.t
val set_at : t -> position -> Qterm.t -> t

val positions : position list
(** [[S; P; O]]. *)

val position_name : position -> string
(** ["s"], ["p"] or ["o"]. *)

val compare_position : position -> position -> int

val equal_position : position -> position -> bool

val vars : t -> string list
(** Variable names in s, p, o order, with duplicates. *)

val var_set : t -> string list
(** Distinct variable names, sorted. *)

val constants : t -> (position * Rdf.Term.t) list

val constant_count : t -> int

val subst : (string -> Qterm.t option) -> t -> t
(** Apply a variable substitution to every position. *)

val subst_var : string -> Qterm.t -> t -> t
(** Substitute a single variable. *)

val rename_var : string -> string -> t -> t

val shares_var : t -> t -> bool
(** True when the two atoms have a variable in common (a join). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
