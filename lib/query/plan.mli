(** Compiled query plans: int-slot binding frames over array buckets,
    with a per-store plan cache.

    A plan fixes, at compile time, the join order (greedy
    most-selective-first from the store's O(1) pattern counts), the
    dense slot number of every variable, and — per body atom — which
    positions are constants (resolved to dictionary codes), which bind
    a slot first seen there, and which test a slot bound earlier.
    Execution walks the store's packed [int array] buckets against one
    mutable frame: no maps, no closures and no per-triple allocation.

    Plans are cached per store id, keyed by the interned canonical form
    of the query ({!Cq.canonical_string} through the process-global
    [Interning] table shared with [Core.Intern]); isomorphic queries
    share one plan.  A cached plan is transparently recompiled when a
    constant it proved absent may have appeared (dictionary growth), or
    when observed bucket sizes are off the compile-time estimates by a
    large factor (the guarded re-order; capped per plan).

    Instruments: [eval.plan.cache_hits] / [eval.plan.cache_misses] /
    [eval.plan.reorders] counters, [eval.plan.compile.ns] histogram,
    [eval.frame.extensions] counter (successful per-step frame
    extensions), and the pre-existing [eval.bindings] (complete
    assignments). *)

type t

val compile :
  ?overrides:float array -> ?generation:int -> Rdf.Store.t -> Cq.t -> t
(** Compile a plan against the store's current dictionary, counts and
    indexes, bypassing the cache.  [overrides.(i) >= 0.] replaces the
    cardinality estimate of body atom [i] (used by the guarded
    re-order). *)

val cached : Rdf.Store.t -> Cq.t -> t
(** The cached plan for the query's canonical form on this store,
    compiling (or transparently recompiling, see above) on miss. *)

val exec : t -> Rdf.Store.t -> (int array -> unit) -> unit
(** Stream every complete binding's projected row (duplicates
    included; set semantics is the caller's).  The store must be the
    one the plan was compiled against ([Invalid_argument] otherwise)
    and must not be mutated during execution.  The emitted array is ONE
    scratch buffer reused across emissions — copy it (or use
    {!Rowset.add_copy}) to retain a row past the callback. *)

val exec_into : t -> Rdf.Store.t -> Rowset.t -> unit
(** {!exec} with set-semantics accumulation into a row table.  Records
    the table's final cardinality on the plan as its {!size_hint}. *)

val size_hint : t -> int
(** Cardinality of the result set last produced via {!exec_into} (0
    before the first execution; carried across guarded re-orders).
    Callers use it to pre-size the next execution's row table, so
    steady-state re-evaluation of a cached plan never pays hash-table
    growth. *)

val is_impossible : t -> bool
(** The plan proved the query empty at compile time: some body
    constant was absent from the store's dictionary. *)

val generation : t -> int
(** Guarded re-orders applied so far (0 for a fresh plan). *)

val step_count : t -> int

val atom_order : t -> int array
(** The chosen execution order as indices into the source body; empty
    for impossible plans. *)

val reset_cache : unit -> unit
(** Drop every cached plan (all stores).  For tests and benchmarks. *)

val cached_plan_count : Rdf.Store.t -> int
(** Number of plans currently cached for this store. *)
