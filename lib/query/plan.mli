(** Compiled query plans: int-slot binding frames over array buckets,
    with a per-store plan cache.

    A plan fixes, at compile time, the join order (greedy
    most-selective-first from the store's O(1) pattern counts), the
    dense slot number of every variable, and — per body atom — which
    positions are constants (resolved to dictionary codes), which bind
    a slot first seen there, and which test a slot bound earlier.
    Execution walks the store's packed [int array] buckets against one
    mutable frame: no maps, no closures and no per-triple allocation.

    Plans are cached per store id, keyed by the interned canonical form
    of the query ({!Cq.canonical_string} through the process-global
    [Interning] table shared with [Core.Intern]); isomorphic queries
    share one plan.  A cached plan is transparently recompiled when a
    constant it proved absent may have appeared (dictionary growth), or
    when observed bucket sizes are off the compile-time estimates by a
    large factor (the guarded re-order; capped per plan).

    Instruments: [eval.plan.cache_hits] / [eval.plan.cache_misses] /
    [eval.plan.reorders] counters, [eval.plan.compile.ns] histogram,
    [eval.frame.extensions] counter (successful per-step frame
    extensions), and the pre-existing [eval.bindings] (complete
    assignments). *)

type t

val compile :
  ?overrides:float array -> ?generation:int -> Rdf.Store.t -> Cq.t -> t
(** Compile a plan against the store's current dictionary, counts and
    indexes, bypassing the cache.  [overrides.(i) >= 0.] replaces the
    cardinality estimate of body atom [i] (used by the guarded
    re-order). *)

val cached : Rdf.Store.t -> Cq.t -> t
(** The cached plan for the query's canonical form on this store,
    compiling (or transparently recompiling, see above) on miss. *)

val exec : t -> Rdf.Store.t -> (int array -> unit) -> unit
(** Stream every complete binding's projected row (duplicates
    included; set semantics is the caller's).  The store must be the
    one the plan was compiled against ([Invalid_argument] otherwise)
    and must not be mutated during execution.  The emitted array is ONE
    scratch buffer reused across emissions — copy it (or use
    {!Rowset.add_copy}) to retain a row past the callback.  Since the
    columnar rework this drives the batch pipeline internally; the
    signature and contract are unchanged. *)

val exec_into : t -> Rdf.Store.t -> Rowset.t -> unit
(** {!exec} with set-semantics accumulation into a row table — final
    batches are projected columnar and bulk-inserted via
    {!Rowset.add_batch}.  Records the plan's cardinality delta as its
    {!size_hint}. *)

val exec_tuple : t -> Rdf.Store.t -> (int array -> unit) -> unit
(** The original tuple-at-a-time depth-first walker over a single
    mutable frame.  Same contract as {!exec}; kept for the
    differential suite and one-shot streaming consumers. *)

val exec_into_tuple : t -> Rdf.Store.t -> Rowset.t -> unit
(** {!exec_tuple} with set-semantics accumulation (per-row
    {!Rowset.add_copy}); updates {!size_hint} like {!exec_into}. *)

val exec_batched_into :
  ?start:int ->
  ?input:Batch.buf ->
  ?capture:int * Batch.buf ->
  t ->
  Rdf.Store.t ->
  Rowset.t ->
  unit
(** The multi-query optimizer's entry: run the batch pipeline from
    step [start] (default 0), seeded from [input] — a captured column
    buffer of width {!bound_after}[ t start] — instead of the empty
    binding, and append every batch crossing depth [fst capture] to
    [snd capture] (a buffer of at least that depth's bound width).
    With [start] = {!step_count} the pipeline degenerates to a replay:
    the input rows flow straight to projection and bulk insert. *)

val set_batch_capacity : int -> unit
(** Rows per pipeline batch (clamped to [1 .. 2^20]; default 1024).
    Each execution snapshots the value once; safe to retune between
    runs.  Turns auto mode off. *)

val set_batch_capacity_auto : unit -> unit
(** Derive the capacity per execution from the store instead:
    {!Rdf.Store.recommended_batch_rows}, i.e. the block geometry on
    the compact backend and the bucket-size histogram on the hash
    backend.  The CLI's [--batch-size auto] selects this. *)

val batch_capacity : unit -> int
(** The fixed global capacity (what auto mode falls back from). *)

val nslots : t -> int
(** Number of variable slots (the column width of the plan's
    batches). *)

val bound_after : t -> int -> int
(** [bound_after t d] — slots bound after the first [d] steps
    ([0 <= d <= step_count t]).  Slots are assigned in step order, so
    these are always the dense prefix [0 .. bound_after t d - 1]. *)

val prefix_id : t -> int -> int
(** [prefix_id t d] — the interned canonical form of the plan's first
    [d] steps ([1 <= d <= step_count t]).  Plans with equal ids
    produce identical partial-binding streams over identical dense
    slot prefixes (access paths, resolved codes, slot numbers and
    post actions all coincide), so a batch stream captured at depth
    [d] under one plan can seed any other plan with the same id. *)

val result_id : t -> int
(** The interned canonical form of the {e whole} plan — full step
    sequence plus head projection ([-1] on impossible plans).  Plans
    with equal result ids produce identical result sets, which keys
    [Mqo]'s result-level cache. *)

val last_bindings : t -> int
(** Complete assignments (duplicates included) counted by this plan's
    most recent execution; [Mqo] stamps cached results with it so
    replays report engine-equivalent bindings telemetry. *)

val note_result : t -> bindings:int -> cardinality:int -> unit
(** Telemetry hook for [Mqo]'s result-level replay (which produces the
    plan's result without running the pipeline): credits [bindings]
    complete assignments to the bindings counter and records
    [cardinality] as the plan's next {!size_hint}. *)

val size_hint : t -> int
(** Cardinality of the result set last produced via {!exec_into} (0
    before the first execution; carried across guarded re-orders).
    Callers use it to pre-size the next execution's row table, so
    steady-state re-evaluation of a cached plan never pays hash-table
    growth. *)

val is_impossible : t -> bool
(** The plan proved the query empty at compile time: some body
    constant was absent from the store's dictionary. *)

val generation : t -> int
(** Guarded re-orders applied so far (0 for a fresh plan). *)

val step_count : t -> int

val atom_order : t -> int array
(** The chosen execution order as indices into the source body; empty
    for impossible plans. *)

val reset_cache : unit -> unit
(** Drop every cached plan (all stores).  For tests and benchmarks. *)

val cached_plan_count : Rdf.Store.t -> int
(** Number of plans currently cached for this store. *)
