(* Compiled query plans.

   The reference evaluator ([Evaluation.Reference]) re-plans at every
   binding step: it re-costs every remaining atom (O(n²) probes per
   complete binding), threads per-extension string-keyed maps, and
   allocates a tuple per scanned triple.  This module compiles a CQ
   once per (store, canonical form):

   - variables are numbered into dense {e int slots}; execution runs
     against one mutable [int array] frame, with no map and no closure
     allocation on the per-triple path;
   - the body becomes an ordered array of {e steps}; each step records,
     per position, whether it is a constant (resolved to its code at
     compile time), binds a slot first seen here, or tests a slot bound
     by an earlier step — so the executor never checks boundness at
     runtime;
   - the join order is fixed at compile time, greedily most-selective
     first from the store's O(1) pattern counts; a cheap guarded
     re-order recompiles the plan only when a step's observed bucket
     sizes are off its estimate by a large factor;
   - plans are cached per store id, keyed by the interned canonical
     form of the query (the same process-global [Interning] table
     behind [Core.Intern]), so repeated evaluation — statistics
     gathering, view materialization across search states, incremental
     maintenance — compiles once. *)

module SMap = Map.Make (String)

let obs_cache_hits = Obs.cached_counter "eval.plan.cache_hits"
let obs_cache_misses = Obs.cached_counter "eval.plan.cache_misses"
let obs_reorders = Obs.cached_counter "eval.plan.reorders"
let obs_compile_hist = Obs.cached_histogram "eval.plan.compile.ns"
let obs_extensions = Obs.cached_counter "eval.frame.extensions"
let obs_bindings = Obs.cached_counter "eval.bindings"

(* A value known before the step's bucket is scanned: a code resolved at
   compile time, or a slot bound by an earlier step. *)
type src = Kconst of int | Kslot of int

(* What to do with a scanned position that the access path did not
   already constrain. *)
type post = Skip | Bind of int | Test of int

type access =
  | All                                     (* full scan *)
  | One of [ `S | `P | `O ] * src           (* one-column index *)
  | Two of [ `SP | `SO | `PO ] * src * src  (* two-column index *)
  | Mem of src * src * src                  (* membership test *)

type step = {
  access : access;
  post_s : post;
  post_p : post;
  post_o : post;
  est : float;  (* compile-time cardinality estimate *)
  atom : int;   (* index into the source body, for feedback *)
}

type head_src = Hconst of int | Hslot of int

type t = {
  query : Cq.t;        (* retained for guarded recompilation *)
  store_id : int;
  steps : step array;
  nslots : int;
  head : head_src array;
  impossible : bool;   (* a body constant is absent from the dictionary *)
  dict_size : int;     (* dictionary size at compile time *)
  generation : int;    (* guarded re-orders applied so far *)
  obs_sum : float array;  (* per-step: summed observed bucket sizes *)
  obs_cnt : int array;    (* per-step: number of observations *)
  bound : int array;
      (* [bound.(d)] = slots bound after the first [d] steps; slots are
         assigned in step order, so those are always the dense prefix
         [0 .. bound.(d) - 1] — the invariant the batch pipeline and
         the MQO prefix cache rely on *)
  prefix_ids : int array;
      (* [prefix_ids.(d)] = interned canonical form of steps
         [0 .. d] — two plans with equal ids produce identical partial
         binding streams over identical dense slot prefixes, which is
         what lets [Mqo] share materialized prefixes across plans *)
  result_id : int;
      (* interned canonical form of the whole plan INCLUDING the head
         projection: plans with equal result ids produce identical
         result sets, the key of [Mqo]'s result-level cache *)
  mutable last_bindings : int;
      (* complete assignments (duplicates included) counted by the
         last execution; [Mqo] stamps it on cached results so replays
         keep the bindings telemetry engine-equivalent *)
  mutable result_hint : int;
      (* cardinality of the last result set produced from this plan;
         pre-sizes the next execution's row table so steady-state
         re-evaluation never pays hash-table growth *)
}

let is_impossible t = t.impossible
let generation t = t.generation
let step_count t = Array.length t.steps
let atom_order t = Array.map (fun st -> st.atom) t.steps
let nslots t = t.nslots
let bound_after t d = t.bound.(d)
let prefix_id t d = t.prefix_ids.(d - 1)
let result_id t = t.result_id
let last_bindings t = t.last_bindings

(* ---------- compilation -------------------------------------------------- *)

(* A body atom with its constants resolved against the dictionary. *)
type rterm = Rconst of int | Rvar of string | Rabsent

let resolve store = function
  | Qterm.Cst c -> (
    match Rdf.Store.find_term store c with
    | Some code -> Rconst code
    | None -> Rabsent)
  | Qterm.Var x -> Rvar x

(* Cardinality estimate of an atom given the compile-time constants and
   the set of variables bound by the steps already ordered.  The store
   can count any constant pattern in O(1); bound variables have unknown
   values at compile time, so each bound-variable position divides the
   count by the column's distinct-code population (uniformity
   assumption). *)
let estimate store slots (s, p, o) =
  let const = function Rconst c -> Some c | Rvar _ | Rabsent -> None in
  let base =
    Rdf.Store.count_matching store
      { Rdf.Store.ps = const s; pp = const p; po = const o }
  in
  let shrink est col term =
    match term with
    | Rvar x when SMap.mem x slots ->
      let d = Rdf.Store.distinct_in_column store col in
      if d > 1 then est /. float_of_int d else est
    | Rvar _ | Rconst _ | Rabsent -> est
  in
  shrink (shrink (shrink (float_of_int base) `S s) `P p) `O o

(* Canonical serialization of a step sequence, interned per prefix
   length.  The encoding covers exactly what determines the binding
   stream — access path, resolved codes, slot numbers, post actions —
   and excludes estimates and source-atom indices, so syntactically
   different queries whose compiled prefixes coincide share ids. *)
let serialize_src b = function
  | Kconst c ->
    Buffer.add_char b 'c';
    Buffer.add_string b (string_of_int c)
  | Kslot s ->
    Buffer.add_char b 's';
    Buffer.add_string b (string_of_int s)

let serialize_post b = function
  | Skip -> Buffer.add_char b 'k'
  | Bind s ->
    Buffer.add_char b 'b';
    Buffer.add_string b (string_of_int s)
  | Test s ->
    Buffer.add_char b 't';
    Buffer.add_string b (string_of_int s)

let serialize_step b st =
  Buffer.add_char b '|';
  (match st.access with
  | All -> Buffer.add_char b 'A'
  | One (col, a) ->
    Buffer.add_string b
      (match col with `S -> "1S" | `P -> "1P" | `O -> "1O");
    serialize_src b a
  | Two (cols, x, y) ->
    Buffer.add_string b
      (match cols with `SP -> "2SP" | `SO -> "2SO" | `PO -> "2PO");
    serialize_src b x;
    serialize_src b y
  | Mem (x, y, z) ->
    Buffer.add_char b 'M';
    serialize_src b x;
    serialize_src b y;
    serialize_src b z);
  serialize_post b st.post_s;
  serialize_post b st.post_p;
  serialize_post b st.post_o

let prefix_ids_of store_id steps =
  let b = Buffer.create 64 in
  Buffer.add_string b "mqo:";
  Buffer.add_string b (string_of_int store_id);
  let ids =
    Array.map
      (fun st ->
        serialize_step b st;
        Interning.of_canonical (Buffer.contents b))
      steps
  in
  (ids, b)

(* The result id extends the full-depth prefix serialization with the
   head projection: equal ids mean equal result sets, not just equal
   binding streams. *)
let result_id_of b head =
  Buffer.add_string b "|H";
  Array.iter
    (function
      | Hconst c ->
        Buffer.add_char b 'c';
        Buffer.add_string b (string_of_int c)
      | Hslot s ->
        Buffer.add_char b 's';
        Buffer.add_string b (string_of_int s))
    head;
  Interning.of_canonical (Buffer.contents b)

let compile_internal ?overrides ~generation store (q : Cq.t) =
  let atoms =
    Array.of_list
      (List.map
         (fun (a : Atom.t) ->
           (resolve store a.s, resolve store a.p, resolve store a.o))
         q.body)
  in
  let n = Array.length atoms in
  let impossible =
    Array.exists
      (fun (s, p, o) -> s = Rabsent || p = Rabsent || o = Rabsent)
      atoms
  in
  if impossible then
    {
      query = q;
      store_id = Rdf.Store.id store;
      steps = [||];
      nslots = 0;
      head = [||];
      impossible = true;
      dict_size = Rdf.Store.dict_size store;
      generation;
      obs_sum = [||];
      obs_cnt = [||];
      bound = [| 0 |];
      prefix_ids = [||];
      result_id = -1;
      last_bindings = 0;
      result_hint = 0;
    }
  else begin
    let chosen = Array.make n (-1) in
    let used = Array.make n false in
    let slots = ref SMap.empty in
    let nslots = ref 0 in
    let slot_of x =
      match SMap.find_opt x !slots with
      | Some s -> s
      | None ->
        let s = !nslots in
        slots := SMap.add x s !slots;
        incr nslots;
        s
    in
    let known_count (s, p, o) =
      let k t =
        match t with
        | Rconst _ -> 1
        | Rvar x -> if SMap.mem x !slots then 1 else 0
        | Rabsent -> assert false
      in
      k s + k p + k o
    in
    let override i =
      match overrides with
      | Some arr when i < Array.length arr && arr.(i) >= 0. -> Some arr.(i)
      | Some _ | None -> None
    in
    (* Greedy order: cheapest estimated atom next; ties prefer the atom
       with more known positions, then source order (determinism). *)
    let steps = ref [] in
    let bound = Array.make (n + 1) 0 in
    for d = 0 to n - 1 do
      let best = ref (-1) in
      let best_est = ref infinity in
      let best_known = ref (-1) in
      for i = 0 to n - 1 do
        if not used.(i) then begin
          let est =
            match override i with
            | Some fb -> fb
            | None -> estimate store !slots atoms.(i)
          in
          let known = known_count atoms.(i) in
          if
            est < !best_est
            || (est = !best_est && known > !best_known)
          then begin
            best := i;
            best_est := est;
            best_known := known
          end
        end
      done;
      let i = !best in
      used.(i) <- true;
      chosen.(d) <- i;
      let (s, p, o) = atoms.(i) in
      (* Known positions feed the access path; the rest become binds
         (first occurrence) or tests (repeats), assigned in s, p, o
         order so a test always follows its bind. *)
      let src_opt t =
        match t with
        | Rconst c -> Some (Kconst c)
        | Rvar x -> (
          match SMap.find_opt x !slots with
          | Some sl -> Some (Kslot sl)
          | None -> None)
        | Rabsent -> assert false
      in
      let ks = src_opt s and kp = src_opt p and ko = src_opt o in
      let access =
        match (ks, kp, ko) with
        | Some a, Some b, Some c -> Mem (a, b, c)
        | Some a, Some b, None -> Two (`SP, a, b)
        | Some a, None, Some c -> Two (`SO, a, c)
        | None, Some b, Some c -> Two (`PO, b, c)
        | Some a, None, None -> One (`S, a)
        | None, Some b, None -> One (`P, b)
        | None, None, Some c -> One (`O, c)
        | None, None, None -> All
      in
      (* Residual roles, allocated after the access decision so a slot
         first seen here binds on its first unconstrained position. *)
      let post known t =
        match (known, t) with
        | Some _, _ -> Skip
        | None, Rvar x -> (
          match SMap.find_opt x !slots with
          | Some sl -> Test sl
          | None -> Bind (slot_of x))
        | None, (Rconst _ | Rabsent) -> assert false
      in
      let post_s = post ks s in
      let post_p = post kp p in
      let post_o = post ko o in
      steps :=
        { access; post_s; post_p; post_o; est = !best_est; atom = i } :: !steps;
      bound.(d + 1) <- !nslots
    done;
    let head =
      Array.of_list
        (List.map
           (function
             | Qterm.Cst c -> Hconst (Rdf.Store.encode_term store c)
             | Qterm.Var x -> (
               match SMap.find_opt x !slots with
               | Some sl -> Hslot sl
               | None -> invalid_arg "Plan.compile: unsafe head variable"))
           q.head)
    in
    let steps = Array.of_list (List.rev !steps) in
    let store_id = Rdf.Store.id store in
    let prefix_ids, pbuf = prefix_ids_of store_id steps in
    {
      query = q;
      store_id;
      steps;
      nslots = !nslots;
      head;
      impossible = false;
      dict_size = Rdf.Store.dict_size store;
      generation;
      obs_sum = Array.make n 0.;
      obs_cnt = Array.make n 0;
      bound;
      prefix_ids;
      result_id = result_id_of pbuf head;
      last_bindings = 0;
      result_hint = 0;
    }
  end

let compile ?overrides ?(generation = 0) store q =
  let h = obs_compile_hist () in
  if Obs.histogram_live h then begin
    let t0 = Obs.now_ns () in
    let plan = compile_internal ?overrides ~generation store q in
    Obs.observe h (Obs.now_ns () - t0);
    plan
  end
  else compile_internal ?overrides ~generation store q

(* ---------- execution: tuple-at-a-time path ------------------------------ *)

(* The original depth-first walker over a single mutable frame.  Kept
   as [exec_tuple] — the differential suite runs it against the batch
   pipeline, and it remains the cheapest path for one-shot queries
   whose results are consumed row by row. *)
let exec_tuple plan store emit =
  if plan.store_id <> Rdf.Store.id store then
    invalid_arg "Plan.exec: plan compiled against a different store";
  if not plan.impossible then begin
    let frame = Array.make (max plan.nslots 1) (-1) in
    let steps = plan.steps in
    let nsteps = Array.length steps in
    let head = plan.head in
    let arity = Array.length head in
    (* extension / binding counts are accumulated locally and flushed
       with two [Obs.add]s on completion: the per-triple path must not
       pay a cross-module call per event *)
    let n_ext = ref 0 in
    let n_bind = ref 0 in
    (* one scratch row reused for every emission; exec_into snapshots it
       only when the row enters the result set *)
    let row = Array.make arity 0 in
    let value = function Kconst c -> c | Kslot s -> frame.(s) in
    (* the inner loop reads buckets and the frame unchecked: [base + 2]
       is within the scan's [3 * n] cells and slots are dense by
       construction, so the bounds checks would be pure overhead *)
    let rec run d =
      if d = nsteps then begin
        incr n_bind;
        for i = 0 to arity - 1 do
          Array.unsafe_set row i
            (match Array.unsafe_get head i with
            | Hconst c -> c
            | Hslot s -> Array.unsafe_get frame s)
        done;
        emit row
      end
      else begin
        let st = Array.unsafe_get steps d in
        match st.access with
        | Mem (a, b, c) ->
          if Rdf.Store.mem_encoded store (value a, value b, value c) then begin
            incr n_ext;
            run (d + 1)
          end
        | _ ->
          let data, n =
            match st.access with
            | All -> Rdf.Store.scan_all store
            | One (col, a) -> Rdf.Store.scan1 store col (value a)
            | Two (cols, a, b) -> Rdf.Store.scan2 store cols (value a) (value b)
            | Mem _ -> assert false
          in
          (* feedback for the guarded re-order *)
          plan.obs_sum.(d) <- plan.obs_sum.(d) +. float_of_int n;
          plan.obs_cnt.(d) <- plan.obs_cnt.(d) + 1;
          let post_s = st.post_s and post_p = st.post_p and post_o = st.post_o in
          for i = 0 to n - 1 do
            let base = 3 * i in
            if
              (match post_s with
              | Skip -> true
              | Bind s ->
                Array.unsafe_set frame s (Array.unsafe_get data base);
                true
              | Test s ->
                Array.unsafe_get frame s = Array.unsafe_get data base)
              && (match post_p with
                 | Skip -> true
                 | Bind s ->
                   Array.unsafe_set frame s (Array.unsafe_get data (base + 1));
                   true
                 | Test s ->
                   Array.unsafe_get frame s = Array.unsafe_get data (base + 1))
              && (match post_o with
                 | Skip -> true
                 | Bind s ->
                   Array.unsafe_set frame s (Array.unsafe_get data (base + 2));
                   true
                 | Test s ->
                   Array.unsafe_get frame s = Array.unsafe_get data (base + 2))
            then begin
              incr n_ext;
              run (d + 1)
            end
          done
      end
    in
    run 0;
    Obs.add (obs_extensions ()) !n_ext;
    Obs.add (obs_bindings ()) !n_bind;
    plan.last_bindings <- !n_bind
  end

let exec_into_tuple plan store rows =
  let before = Rowset.cardinal rows in
  exec_tuple plan store (fun row -> ignore (Rowset.add_copy rows row));
  plan.result_hint <- Rowset.cardinal rows - before

(* ---------- execution: batched columnar pipeline ------------------------- *)

(* Default batch capacity.  An [Atomic] so the CLI / benchmarks can
   retune it while worker domains read it; each execution snapshots the
   value once. *)
let batch_capacity_ref = Atomic.make 1024
let batch_auto_ref = Atomic.make false

let set_batch_capacity n =
  Atomic.set batch_auto_ref false;
  Atomic.set batch_capacity_ref (max 1 (min n (1 lsl 20)))

let set_batch_capacity_auto () = Atomic.set batch_auto_ref true
let batch_capacity () = Atomic.get batch_capacity_ref

(* Capacity for one execution against [store]: the fixed global, or —
   in auto mode — the store backend's preferred row count (block
   geometry on the compact backend, bucket-size histogram on hash). *)
let batch_capacity_for store =
  if Atomic.get batch_auto_ref then
    max 1 (min (Rdf.Store.recommended_batch_rows store) (1 lsl 20))
  else Atomic.get batch_capacity_ref

let obs_batch_flushes = Obs.cached_counter "eval.batch.flushes"
let obs_batch_fill = Obs.cached_histogram "eval.batch.fill"

(* The vectorized executor.  One scratch batch per scan step holds the
   partial bindings that step has produced but not yet pushed onward;
   a step processes a whole upstream batch before control moves on:

   - scan steps (All / One / Two) run the slot-test kernel per
     candidate triple and the slot-copy + slot-bind kernels per
     survivor, appending to their scratch batch and flushing it
     downstream whenever it fills;
   - membership steps (Mem) never move data: they narrow the incoming
     batch in place through its selection vector;
   - batches reaching [nsteps] are complete bindings and go to
     [on_final] (still columnar — the callers project and bulk-insert
     from there).

   [start], [input] and [capture] are the multi-query optimizer's
   hooks: execution may begin at step [start] fed from a captured
   column buffer instead of step 0, and the batch stream crossing
   depth [capture] may be appended to a buffer for later replay.
   Depth-[d] batches hold exactly the dense slot prefix
   [0 .. bound.(d) - 1], which is what makes captured buffers
   interchangeable across plans sharing the prefix id. *)
let exec_batched_gen ~cap ~start ~input ~capture plan store ~on_final =
  if plan.store_id <> Rdf.Store.id store then
    invalid_arg "Plan.exec: plan compiled against a different store";
  if not plan.impossible then begin
    let steps = plan.steps in
    let nsteps = Array.length steps in
    let width = plan.nslots in
    let scratch =
      Array.init (nsteps - start) (fun _ -> Batch.create ~width cap)
    in
    let cap_depth, cap_buf =
      match capture with Some (d, b) -> (d, b) | None -> (-1, Batch.buf_create ~width:0)
    in
    let n_ext = ref 0 in
    let n_bind = ref 0 in
    let n_flush = ref 0 in
    let fill_hist = obs_batch_fill () in
    let fill_live = Obs.histogram_live fill_hist in
    let rec push d (b : Batch.t) =
      if Batch.live b > 0 then begin
        if d = cap_depth then Batch.buf_append cap_buf b;
        if d = nsteps then begin
          incr n_flush;
          n_bind := !n_bind + Batch.live b;
          if fill_live then Obs.observe fill_hist (Batch.live b);
          on_final b
        end
        else begin
          let st = Array.unsafe_get steps d in
          let cols = b.Batch.cols in
          match st.access with
          | Mem (x, y, z) ->
            (* constant/slot-test kernel against the membership index:
               narrow [b] in place; writes into [sel] trail the reads,
               so compaction is safe even when a selection is already
               active *)
            let m = Batch.live b in
            let sel = b.Batch.sel in
            let sval r = function
              | Kconst k -> k
              | Kslot s -> Array.unsafe_get (Array.unsafe_get cols s) r
            in
            let k = ref 0 in
            for i = 0 to m - 1 do
              let r = Batch.row_at b i in
              if
                Rdf.Store.mem_encoded store (sval r x, sval r y, sval r z)
              then begin
                Array.unsafe_set sel !k r;
                incr k
              end
            done;
            n_ext := !n_ext + !k;
            b.Batch.sel_n <- !k;
            push (d + 1) b
          | _ ->
            let out = Array.unsafe_get scratch (d - start) in
            let ocols = out.Batch.cols in
            let bound_d = Array.unsafe_get plan.bound d in
            let m = Batch.live b in
            let post_s = st.post_s
            and post_p = st.post_p
            and post_o = st.post_o in
            (* A Test may target a slot bound by THIS step's earlier
               position (repeated variable in one atom): slots below
               [bound_d] live in the parent columns, anything else was
               just bound from the candidate triple itself.  Resolve
               the in-step data-word offset once per step. *)
            let p_test_off =
              match post_p with
              | Test s when s >= bound_d -> (
                match post_s with Bind s' when s' = s -> 0 | _ -> assert false)
              | Skip | Bind _ | Test _ -> -1
            in
            let o_test_off =
              match post_o with
              | Test s when s >= bound_d -> (
                match (post_s, post_p) with
                | Bind s', _ when s' = s -> 0
                | _, Bind s' when s' = s -> 1
                | _ -> assert false)
              | Skip | Bind _ | Test _ -> -1
            in
            for i = 0 to m - 1 do
              let r = Batch.row_at b i in
              let sval = function
                | Kconst k -> k
                | Kslot s -> Array.unsafe_get (Array.unsafe_get cols s) r
              in
              let data, n =
                match st.access with
                | All -> Rdf.Store.scan_all store
                | One (col, a) -> Rdf.Store.scan1 store col (sval a)
                | Two (cs, a, b') -> Rdf.Store.scan2 store cs (sval a) (sval b')
                | Mem _ -> assert false
              in
              (* feedback for the guarded re-order *)
              plan.obs_sum.(d) <- plan.obs_sum.(d) +. float_of_int n;
              plan.obs_cnt.(d) <- plan.obs_cnt.(d) + 1;
              for c = 0 to n - 1 do
                let base = 3 * c in
                (* slot-test kernels: nothing is written until all
                   three positions pass *)
                if
                  (match post_s with
                  | Skip | Bind _ -> true
                  | Test s ->
                    Array.unsafe_get (Array.unsafe_get cols s) r
                    = Array.unsafe_get data base)
                  && (match post_p with
                     | Skip | Bind _ -> true
                     | Test s ->
                       (if p_test_off >= 0 then
                          Array.unsafe_get data (base + p_test_off)
                        else Array.unsafe_get (Array.unsafe_get cols s) r)
                       = Array.unsafe_get data (base + 1))
                  && (match post_o with
                     | Skip | Bind _ -> true
                     | Test s ->
                       (if o_test_off >= 0 then
                          Array.unsafe_get data (base + o_test_off)
                        else Array.unsafe_get (Array.unsafe_get cols s) r)
                       = Array.unsafe_get data (base + 2))
                then begin
                  incr n_ext;
                  if out.Batch.n = out.Batch.cap then begin
                    push (d + 1) out;
                    Batch.clear out
                  end;
                  let j = out.Batch.n in
                  (* slot-copy kernel: the parent's dense bound prefix *)
                  for s = 0 to bound_d - 1 do
                    Array.unsafe_set (Array.unsafe_get ocols s) j
                      (Array.unsafe_get (Array.unsafe_get cols s) r)
                  done;
                  (* slot-bind kernels *)
                  (match post_s with
                  | Bind s ->
                    Array.unsafe_set (Array.unsafe_get ocols s) j
                      (Array.unsafe_get data base)
                  | Skip | Test _ -> ());
                  (match post_p with
                  | Bind s ->
                    Array.unsafe_set (Array.unsafe_get ocols s) j
                      (Array.unsafe_get data (base + 1))
                  | Skip | Test _ -> ());
                  (match post_o with
                  | Bind s ->
                    Array.unsafe_set (Array.unsafe_get ocols s) j
                      (Array.unsafe_get data (base + 2))
                  | Skip | Test _ -> ());
                  out.Batch.n <- j + 1
                end
              done
            done
        end
      end
    in
    (* end-of-stream: flush the partial scratch batches top-down (a
       flush at depth [d] may add rows to every deeper scratch) *)
    let rec finish d =
      if d < nsteps then begin
        (match steps.(d).access with
        | Mem _ -> ()
        | _ ->
          let out = scratch.(d - start) in
          if out.Batch.n > 0 then begin
            push (d + 1) out;
            Batch.clear out
          end);
        finish (d + 1)
      end
    in
    (match input with
    | None ->
      (* the seed: one empty binding entering step [start] *)
      let b0 = Batch.create ~width 1 in
      b0.Batch.n <- 1;
      push start b0
    | Some buf ->
      let b0 = Batch.create ~width cap in
      let total = Batch.buf_rows buf in
      let off = ref 0 in
      while !off < total do
        let len = min cap (total - !off) in
        Batch.buf_blit buf ~off:!off ~len b0;
        push start b0;
        off := !off + len
      done);
    finish start;
    Obs.add (obs_extensions ()) !n_ext;
    Obs.add (obs_bindings ()) !n_bind;
    Obs.add (obs_batch_flushes ()) !n_flush;
    plan.last_bindings <- !n_bind
  end

(* Full-depth replay: the captured buffer already holds complete
   bindings, so the pipeline degenerates to projecting head columns
   straight out of the buffer and bulk-inserting — no feed batch, no
   step scratch, one copy total. *)
let replay_into ~cap plan buf store rows =
  ignore store;
  let head = plan.head in
  let arity = Array.length head in
  let total = Batch.buf_rows buf in
  (* a small result replays through one right-sized (minor-heap) batch *)
  let cap = min cap (max total 1) in
  let p = Batch.create ~width:arity cap in
  let pcols = p.Batch.cols in
  let bcols = Batch.buf_cols buf in
  let n_flush = ref 0 in
  let off = ref 0 in
  while !off < total do
    let len = min cap (total - !off) in
    for i = 0 to arity - 1 do
      let dst = Array.unsafe_get pcols i in
      match Array.unsafe_get head i with
      | Hconst c ->
        for j = 0 to len - 1 do
          Array.unsafe_set dst j c
        done
      | Hslot s -> Array.blit (Array.unsafe_get bcols s) !off dst 0 len
    done;
    p.Batch.n <- len;
    p.Batch.sel_n <- -1;
    ignore (Rowset.add_batch rows p);
    incr n_flush;
    off := !off + len
  done;
  Obs.add (obs_bindings ()) total;
  Obs.add (obs_batch_flushes ()) !n_flush;
  plan.last_bindings <- total

(* Telemetry hook for [Mqo]'s result-level replay, which produces the
   plan's result without running any pipeline: credit the bindings the
   original execution counted and record the cardinality as the next
   size hint — exactly what an actual execution would have reported. *)
let note_result plan ~bindings ~cardinality =
  Obs.add (obs_bindings ()) bindings;
  plan.last_bindings <- bindings;
  plan.result_hint <- cardinality

(* Project a final batch (full slot width) onto the head columns of
   [p], compacting through any selection vector; [p] has the same
   capacity, so a batch always fits. *)
let project_into plan (b : Batch.t) (p : Batch.t) =
  let head = plan.head in
  let arity = Array.length head in
  let cols = b.Batch.cols and pcols = p.Batch.cols in
  let m = Batch.live b in
  Batch.clear p;
  for i = 0 to arity - 1 do
    let dst = Array.unsafe_get pcols i in
    match Array.unsafe_get head i with
    | Hconst c ->
      for j = 0 to m - 1 do
        Array.unsafe_set dst j c
      done
    | Hslot s ->
      let src = Array.unsafe_get cols s in
      if b.Batch.sel_n < 0 then Array.blit src 0 dst 0 m
      else
        for j = 0 to m - 1 do
          Array.unsafe_set dst j
            (Array.unsafe_get src (Array.unsafe_get b.Batch.sel j))
        done
  done;
  p.Batch.n <- m

(* [exec plan store emit] keeps its historical contract — it streams
   every complete binding's projected row (duplicates included) into
   [emit], reusing ONE scratch array — but drives the batch pipeline
   internally. *)
let exec plan store emit =
  let cap = batch_capacity_for store in
  let head = plan.head in
  let arity = Array.length head in
  let row = Array.make (max arity 1) 0 in
  exec_batched_gen ~cap ~start:0 ~input:None ~capture:None plan store
    ~on_final:(fun b ->
      let cols = b.Batch.cols in
      Batch.iter_live
        (fun r ->
          for i = 0 to arity - 1 do
            Array.unsafe_set row i
              (match Array.unsafe_get head i with
              | Hconst c -> c
              | Hslot s -> Array.unsafe_get (Array.unsafe_get cols s) r)
          done;
          emit row)
        b)

(* Batched set-semantics accumulation: every final batch is projected
   columnar and handed to {!Rowset.add_batch} for one bulk dedup pass.
   The hint is the plan's own contribution (cardinality delta), so
   disjuncts accumulating into a shared table don't inflate each
   other's estimates. *)
let exec_batched_into ?(start = 0) ?input ?capture plan store rows =
  let before = Rowset.cardinal rows in
  let cap = batch_capacity_for store in
  (match (input, capture) with
  | Some buf, None
    when start = Array.length plan.steps && not plan.impossible ->
    if plan.store_id <> Rdf.Store.id store then
      invalid_arg "Plan.exec: plan compiled against a different store";
    replay_into ~cap plan buf store rows
  | _ ->
    let p = Batch.create ~width:(Array.length plan.head) cap in
    exec_batched_gen ~cap ~start ~input ~capture plan store
      ~on_final:(fun b ->
        project_into plan b p;
        ignore (Rowset.add_batch rows p)));
  plan.result_hint <- Rowset.cardinal rows - before

let exec_into plan store rows = exec_batched_into plan store rows

let size_hint plan = plan.result_hint

(* ---------- guarded re-order --------------------------------------------- *)

(* A plan's order is only as good as its estimates.  When a step's
   observed bucket sizes average a large factor above what compilation
   predicted (the uniformity assumption failed, or the store has
   drifted since), the next cache fetch recompiles with the observed
   averages overriding the estimates for the misjudged atoms.  The
   generation cap keeps a pathological workload from recompiling
   forever. *)

let reorder_factor = 32.
let reorder_floor = 64.
let max_generation = 3

let needs_reorder plan =
  (not plan.impossible)
  && plan.generation < max_generation
  &&
  let n = Array.length plan.steps in
  let rec check d =
    d < n
    &&
    let st = plan.steps.(d) in
    let cnt = plan.obs_cnt.(d) in
    (cnt > 0
     &&
     let avg = plan.obs_sum.(d) /. float_of_int cnt in
     avg > reorder_floor && avg > reorder_factor *. Float.max st.est 1.)
    || check (d + 1)
  in
  check 0

let reordered plan store =
  let overrides = Array.make (List.length plan.query.Cq.body) (-1.) in
  Array.iteri
    (fun d st ->
      if plan.obs_cnt.(d) > 0 then
        overrides.(st.atom) <- plan.obs_sum.(d) /. float_of_int plan.obs_cnt.(d))
    plan.steps;
  Obs.incr (obs_reorders ());
  let fresh =
    compile ~overrides ~generation:(plan.generation + 1) store plan.query
  in
  (* the result cardinality is order-independent: keep the hint *)
  fresh.result_hint <- plan.result_hint;
  fresh

(* ---------- the plan cache ----------------------------------------------- *)

(* Two-level: store id → (interned canonical form → plan).  Keying by
   the canonical form lets every isomorphic spelling of a query — the
   same view freshened across search states, the same relaxation
   re-derived during statistics gathering — share one compiled plan.
   The interner is the process-global [Interning] table also backing
   [Core.Intern], so ids stay dense and comparisons stay int-sized. *)

module ITbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash i = i land max_int
end)

(* Worker domains compile plans concurrently during cost estimation
   (free-mode parallel search), so the cache — the outer per-store map
   and the per-store tables reached through it — is guarded by one
   spinlock.  Compilation itself runs outside the critical section: two
   domains racing on the same uncached query may both compile, and the
   second insert wins, which is harmless because compiled plans for the
   same key are equivalent.  Same discipline as the action cache in
   [Core.Transition]. *)
let cache_lock = Multicore.Spinlock.create ()
let caches : t ITbl.t ITbl.t = ITbl.create 8 [@@guarded_by "cache_lock"]

(* Tests churn through many short-lived stores; cap the number of
   per-store tables so abandoned stores do not accumulate plans. *)
let max_store_tables = 64

(* must hold [cache_lock] — both callers below do *)
let store_table sid =
  match ITbl.find_opt caches sid with
  | Some tbl -> tbl
  | None ->
    if ITbl.length caches >= max_store_tables then
      (* analyze: allow unguarded-write -- callers hold cache_lock *)
      ITbl.reset caches;
    let tbl = ITbl.create 64 in
    (* analyze: allow unguarded-write -- callers hold cache_lock *)
    ITbl.add caches sid tbl;
    tbl

let cache_key q = Cq.interned_canonical q

let cached store q =
  let key = cache_key q in
  let found =
    Multicore.Spinlock.with_lock cache_lock (fun () ->
        ITbl.find_opt (store_table (Rdf.Store.id store)) key)
  in
  match found with
  | Some plan
    when (not (plan.impossible && Rdf.Store.dict_size store <> plan.dict_size))
         && not (needs_reorder plan) ->
    Obs.incr (obs_cache_hits ());
    plan
  | Some plan ->
    (* stale: an absent constant may now exist, or the observed
       selectivities disagree with the estimates *)
    Obs.incr (obs_cache_misses ());
    let fresh =
      if plan.impossible then compile store q else reordered plan store
    in
    Multicore.Spinlock.with_lock cache_lock (fun () ->
        ITbl.replace (store_table (Rdf.Store.id store)) key fresh);
    fresh
  | None ->
    Obs.incr (obs_cache_misses ());
    let plan = compile store q in
    Multicore.Spinlock.with_lock cache_lock (fun () ->
        ITbl.add (store_table (Rdf.Store.id store)) key plan);
    plan

let reset_cache () =
  Multicore.Spinlock.with_lock cache_lock (fun () -> ITbl.reset caches)

let cached_plan_count store =
  Multicore.Spinlock.with_lock cache_lock (fun () ->
      match ITbl.find_opt caches (Rdf.Store.id store) with
      | Some tbl -> ITbl.length tbl
      | None -> 0)
