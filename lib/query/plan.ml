(* Compiled query plans.

   The reference evaluator ([Evaluation.Reference]) re-plans at every
   binding step: it re-costs every remaining atom (O(n²) probes per
   complete binding), threads per-extension string-keyed maps, and
   allocates a tuple per scanned triple.  This module compiles a CQ
   once per (store, canonical form):

   - variables are numbered into dense {e int slots}; execution runs
     against one mutable [int array] frame, with no map and no closure
     allocation on the per-triple path;
   - the body becomes an ordered array of {e steps}; each step records,
     per position, whether it is a constant (resolved to its code at
     compile time), binds a slot first seen here, or tests a slot bound
     by an earlier step — so the executor never checks boundness at
     runtime;
   - the join order is fixed at compile time, greedily most-selective
     first from the store's O(1) pattern counts; a cheap guarded
     re-order recompiles the plan only when a step's observed bucket
     sizes are off its estimate by a large factor;
   - plans are cached per store id, keyed by the interned canonical
     form of the query (the same process-global [Interning] table
     behind [Core.Intern]), so repeated evaluation — statistics
     gathering, view materialization across search states, incremental
     maintenance — compiles once. *)

module SMap = Map.Make (String)

let obs_cache_hits = Obs.cached_counter "eval.plan.cache_hits"
let obs_cache_misses = Obs.cached_counter "eval.plan.cache_misses"
let obs_reorders = Obs.cached_counter "eval.plan.reorders"
let obs_compile_hist = Obs.cached_histogram "eval.plan.compile.ns"
let obs_extensions = Obs.cached_counter "eval.frame.extensions"
let obs_bindings = Obs.cached_counter "eval.bindings"

(* A value known before the step's bucket is scanned: a code resolved at
   compile time, or a slot bound by an earlier step. *)
type src = Kconst of int | Kslot of int

(* What to do with a scanned position that the access path did not
   already constrain. *)
type post = Skip | Bind of int | Test of int

type access =
  | All                                     (* full scan *)
  | One of [ `S | `P | `O ] * src           (* one-column index *)
  | Two of [ `SP | `SO | `PO ] * src * src  (* two-column index *)
  | Mem of src * src * src                  (* membership test *)

type step = {
  access : access;
  post_s : post;
  post_p : post;
  post_o : post;
  est : float;  (* compile-time cardinality estimate *)
  atom : int;   (* index into the source body, for feedback *)
}

type head_src = Hconst of int | Hslot of int

type t = {
  query : Cq.t;        (* retained for guarded recompilation *)
  store_id : int;
  steps : step array;
  nslots : int;
  head : head_src array;
  impossible : bool;   (* a body constant is absent from the dictionary *)
  dict_size : int;     (* dictionary size at compile time *)
  generation : int;    (* guarded re-orders applied so far *)
  obs_sum : float array;  (* per-step: summed observed bucket sizes *)
  obs_cnt : int array;    (* per-step: number of observations *)
  mutable result_hint : int;
      (* cardinality of the last result set produced from this plan;
         pre-sizes the next execution's row table so steady-state
         re-evaluation never pays hash-table growth *)
}

let is_impossible t = t.impossible
let generation t = t.generation
let step_count t = Array.length t.steps
let atom_order t = Array.map (fun st -> st.atom) t.steps

(* ---------- compilation -------------------------------------------------- *)

(* A body atom with its constants resolved against the dictionary. *)
type rterm = Rconst of int | Rvar of string | Rabsent

let resolve store = function
  | Qterm.Cst c -> (
    match Rdf.Store.find_term store c with
    | Some code -> Rconst code
    | None -> Rabsent)
  | Qterm.Var x -> Rvar x

(* Cardinality estimate of an atom given the compile-time constants and
   the set of variables bound by the steps already ordered.  The store
   can count any constant pattern in O(1); bound variables have unknown
   values at compile time, so each bound-variable position divides the
   count by the column's distinct-code population (uniformity
   assumption). *)
let estimate store slots (s, p, o) =
  let const = function Rconst c -> Some c | Rvar _ | Rabsent -> None in
  let base =
    Rdf.Store.count_matching store
      { Rdf.Store.ps = const s; pp = const p; po = const o }
  in
  let shrink est col term =
    match term with
    | Rvar x when SMap.mem x slots ->
      let d = Rdf.Store.distinct_in_column store col in
      if d > 1 then est /. float_of_int d else est
    | Rvar _ | Rconst _ | Rabsent -> est
  in
  shrink (shrink (shrink (float_of_int base) `S s) `P p) `O o

let compile_internal ?overrides ~generation store (q : Cq.t) =
  let atoms =
    Array.of_list
      (List.map
         (fun (a : Atom.t) ->
           (resolve store a.s, resolve store a.p, resolve store a.o))
         q.body)
  in
  let n = Array.length atoms in
  let impossible =
    Array.exists
      (fun (s, p, o) -> s = Rabsent || p = Rabsent || o = Rabsent)
      atoms
  in
  if impossible then
    {
      query = q;
      store_id = Rdf.Store.id store;
      steps = [||];
      nslots = 0;
      head = [||];
      impossible = true;
      dict_size = Rdf.Store.dict_size store;
      generation;
      obs_sum = [||];
      obs_cnt = [||];
      result_hint = 0;
    }
  else begin
    let chosen = Array.make n (-1) in
    let used = Array.make n false in
    let slots = ref SMap.empty in
    let nslots = ref 0 in
    let slot_of x =
      match SMap.find_opt x !slots with
      | Some s -> s
      | None ->
        let s = !nslots in
        slots := SMap.add x s !slots;
        incr nslots;
        s
    in
    let known_count (s, p, o) =
      let k t =
        match t with
        | Rconst _ -> 1
        | Rvar x -> if SMap.mem x !slots then 1 else 0
        | Rabsent -> assert false
      in
      k s + k p + k o
    in
    let override i =
      match overrides with
      | Some arr when i < Array.length arr && arr.(i) >= 0. -> Some arr.(i)
      | Some _ | None -> None
    in
    (* Greedy order: cheapest estimated atom next; ties prefer the atom
       with more known positions, then source order (determinism). *)
    let steps = ref [] in
    for d = 0 to n - 1 do
      let best = ref (-1) in
      let best_est = ref infinity in
      let best_known = ref (-1) in
      for i = 0 to n - 1 do
        if not used.(i) then begin
          let est =
            match override i with
            | Some fb -> fb
            | None -> estimate store !slots atoms.(i)
          in
          let known = known_count atoms.(i) in
          if
            est < !best_est
            || (est = !best_est && known > !best_known)
          then begin
            best := i;
            best_est := est;
            best_known := known
          end
        end
      done;
      let i = !best in
      used.(i) <- true;
      chosen.(d) <- i;
      let (s, p, o) = atoms.(i) in
      (* Known positions feed the access path; the rest become binds
         (first occurrence) or tests (repeats), assigned in s, p, o
         order so a test always follows its bind. *)
      let src_opt t =
        match t with
        | Rconst c -> Some (Kconst c)
        | Rvar x -> (
          match SMap.find_opt x !slots with
          | Some sl -> Some (Kslot sl)
          | None -> None)
        | Rabsent -> assert false
      in
      let ks = src_opt s and kp = src_opt p and ko = src_opt o in
      let access =
        match (ks, kp, ko) with
        | Some a, Some b, Some c -> Mem (a, b, c)
        | Some a, Some b, None -> Two (`SP, a, b)
        | Some a, None, Some c -> Two (`SO, a, c)
        | None, Some b, Some c -> Two (`PO, b, c)
        | Some a, None, None -> One (`S, a)
        | None, Some b, None -> One (`P, b)
        | None, None, Some c -> One (`O, c)
        | None, None, None -> All
      in
      (* Residual roles, allocated after the access decision so a slot
         first seen here binds on its first unconstrained position. *)
      let post known t =
        match (known, t) with
        | Some _, _ -> Skip
        | None, Rvar x -> (
          match SMap.find_opt x !slots with
          | Some sl -> Test sl
          | None -> Bind (slot_of x))
        | None, (Rconst _ | Rabsent) -> assert false
      in
      let post_s = post ks s in
      let post_p = post kp p in
      let post_o = post ko o in
      steps :=
        { access; post_s; post_p; post_o; est = !best_est; atom = i } :: !steps
    done;
    let head =
      Array.of_list
        (List.map
           (function
             | Qterm.Cst c -> Hconst (Rdf.Store.encode_term store c)
             | Qterm.Var x -> (
               match SMap.find_opt x !slots with
               | Some sl -> Hslot sl
               | None -> invalid_arg "Plan.compile: unsafe head variable"))
           q.head)
    in
    {
      query = q;
      store_id = Rdf.Store.id store;
      steps = Array.of_list (List.rev !steps);
      nslots = !nslots;
      head;
      impossible = false;
      dict_size = Rdf.Store.dict_size store;
      generation;
      obs_sum = Array.make n 0.;
      obs_cnt = Array.make n 0;
      result_hint = 0;
    }
  end

let compile ?overrides ?(generation = 0) store q =
  let h = obs_compile_hist () in
  if Obs.histogram_live h then begin
    let t0 = Obs.now_ns () in
    let plan = compile_internal ?overrides ~generation store q in
    Obs.observe h (Obs.now_ns () - t0);
    plan
  end
  else compile_internal ?overrides ~generation store q

(* ---------- execution ---------------------------------------------------- *)

(* [exec plan store emit] streams every complete binding's projected
   row to [emit] (duplicates included — set semantics is the caller's,
   via {!Rowset}).  The frame is one [int array]; the per-triple path
   reads packed bucket cells and mutates the frame, allocating
   nothing.  The store must not be mutated during execution: buckets
   are walked in place. *)
let exec plan store emit =
  if plan.store_id <> Rdf.Store.id store then
    invalid_arg "Plan.exec: plan compiled against a different store";
  if not plan.impossible then begin
    let frame = Array.make (max plan.nslots 1) (-1) in
    let steps = plan.steps in
    let nsteps = Array.length steps in
    let head = plan.head in
    let arity = Array.length head in
    (* extension / binding counts are accumulated locally and flushed
       with two [Obs.add]s on completion: the per-triple path must not
       pay a cross-module call per event *)
    let n_ext = ref 0 in
    let n_bind = ref 0 in
    (* one scratch row reused for every emission; exec_into snapshots it
       only when the row enters the result set *)
    let row = Array.make arity 0 in
    let value = function Kconst c -> c | Kslot s -> frame.(s) in
    (* the inner loop reads buckets and the frame unchecked: [base + 2]
       is within the scan's [3 * n] cells and slots are dense by
       construction, so the bounds checks would be pure overhead *)
    let rec run d =
      if d = nsteps then begin
        incr n_bind;
        for i = 0 to arity - 1 do
          Array.unsafe_set row i
            (match Array.unsafe_get head i with
            | Hconst c -> c
            | Hslot s -> Array.unsafe_get frame s)
        done;
        emit row
      end
      else begin
        let st = Array.unsafe_get steps d in
        match st.access with
        | Mem (a, b, c) ->
          if Rdf.Store.mem_encoded store (value a, value b, value c) then begin
            incr n_ext;
            run (d + 1)
          end
        | _ ->
          let data, n =
            match st.access with
            | All -> Rdf.Store.scan_all store
            | One (col, a) -> Rdf.Store.scan1 store col (value a)
            | Two (cols, a, b) -> Rdf.Store.scan2 store cols (value a) (value b)
            | Mem _ -> assert false
          in
          (* feedback for the guarded re-order *)
          plan.obs_sum.(d) <- plan.obs_sum.(d) +. float_of_int n;
          plan.obs_cnt.(d) <- plan.obs_cnt.(d) + 1;
          let post_s = st.post_s and post_p = st.post_p and post_o = st.post_o in
          for i = 0 to n - 1 do
            let base = 3 * i in
            if
              (match post_s with
              | Skip -> true
              | Bind s ->
                Array.unsafe_set frame s (Array.unsafe_get data base);
                true
              | Test s ->
                Array.unsafe_get frame s = Array.unsafe_get data base)
              && (match post_p with
                 | Skip -> true
                 | Bind s ->
                   Array.unsafe_set frame s (Array.unsafe_get data (base + 1));
                   true
                 | Test s ->
                   Array.unsafe_get frame s = Array.unsafe_get data (base + 1))
              && (match post_o with
                 | Skip -> true
                 | Bind s ->
                   Array.unsafe_set frame s (Array.unsafe_get data (base + 2));
                   true
                 | Test s ->
                   Array.unsafe_get frame s = Array.unsafe_get data (base + 2))
            then begin
              incr n_ext;
              run (d + 1)
            end
          done
      end
    in
    run 0;
    Obs.add (obs_extensions ()) !n_ext;
    Obs.add (obs_bindings ()) !n_bind
  end

(* The hint is the plan's own contribution (cardinality delta), so
   disjuncts accumulating into a shared table don't inflate each
   other's estimates. *)
let exec_into plan store rows =
  let before = Rowset.cardinal rows in
  exec plan store (fun row -> ignore (Rowset.add_copy rows row));
  plan.result_hint <- Rowset.cardinal rows - before

let size_hint plan = plan.result_hint

(* ---------- guarded re-order --------------------------------------------- *)

(* A plan's order is only as good as its estimates.  When a step's
   observed bucket sizes average a large factor above what compilation
   predicted (the uniformity assumption failed, or the store has
   drifted since), the next cache fetch recompiles with the observed
   averages overriding the estimates for the misjudged atoms.  The
   generation cap keeps a pathological workload from recompiling
   forever. *)

let reorder_factor = 32.
let reorder_floor = 64.
let max_generation = 3

let needs_reorder plan =
  (not plan.impossible)
  && plan.generation < max_generation
  &&
  let n = Array.length plan.steps in
  let rec check d =
    d < n
    &&
    let st = plan.steps.(d) in
    let cnt = plan.obs_cnt.(d) in
    (cnt > 0
     &&
     let avg = plan.obs_sum.(d) /. float_of_int cnt in
     avg > reorder_floor && avg > reorder_factor *. Float.max st.est 1.)
    || check (d + 1)
  in
  check 0

let reordered plan store =
  let overrides = Array.make (List.length plan.query.Cq.body) (-1.) in
  Array.iteri
    (fun d st ->
      if plan.obs_cnt.(d) > 0 then
        overrides.(st.atom) <- plan.obs_sum.(d) /. float_of_int plan.obs_cnt.(d))
    plan.steps;
  Obs.incr (obs_reorders ());
  let fresh =
    compile ~overrides ~generation:(plan.generation + 1) store plan.query
  in
  (* the result cardinality is order-independent: keep the hint *)
  fresh.result_hint <- plan.result_hint;
  fresh

(* ---------- the plan cache ----------------------------------------------- *)

(* Two-level: store id → (interned canonical form → plan).  Keying by
   the canonical form lets every isomorphic spelling of a query — the
   same view freshened across search states, the same relaxation
   re-derived during statistics gathering — share one compiled plan.
   The interner is the process-global [Interning] table also backing
   [Core.Intern], so ids stay dense and comparisons stay int-sized. *)

module ITbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash i = i land max_int
end)

(* Worker domains compile plans concurrently during cost estimation
   (free-mode parallel search), so the cache — the outer per-store map
   and the per-store tables reached through it — is guarded by one
   spinlock.  Compilation itself runs outside the critical section: two
   domains racing on the same uncached query may both compile, and the
   second insert wins, which is harmless because compiled plans for the
   same key are equivalent.  Same discipline as the action cache in
   [Core.Transition]. *)
let cache_lock = Multicore.Spinlock.create ()
let caches : t ITbl.t ITbl.t = ITbl.create 8 [@@guarded_by "cache_lock"]

(* Tests churn through many short-lived stores; cap the number of
   per-store tables so abandoned stores do not accumulate plans. *)
let max_store_tables = 64

(* must hold [cache_lock] — both callers below do *)
let store_table sid =
  match ITbl.find_opt caches sid with
  | Some tbl -> tbl
  | None ->
    if ITbl.length caches >= max_store_tables then
      (* analyze: allow unguarded-write -- callers hold cache_lock *)
      ITbl.reset caches;
    let tbl = ITbl.create 64 in
    (* analyze: allow unguarded-write -- callers hold cache_lock *)
    ITbl.add caches sid tbl;
    tbl

let cache_key q = Cq.interned_canonical q

let cached store q =
  let key = cache_key q in
  let found =
    Multicore.Spinlock.with_lock cache_lock (fun () ->
        ITbl.find_opt (store_table (Rdf.Store.id store)) key)
  in
  match found with
  | Some plan
    when (not (plan.impossible && Rdf.Store.dict_size store <> plan.dict_size))
         && not (needs_reorder plan) ->
    Obs.incr (obs_cache_hits ());
    plan
  | Some plan ->
    (* stale: an absent constant may now exist, or the observed
       selectivities disagree with the estimates *)
    Obs.incr (obs_cache_misses ());
    let fresh =
      if plan.impossible then compile store q else reordered plan store
    in
    Multicore.Spinlock.with_lock cache_lock (fun () ->
        ITbl.replace (store_table (Rdf.Store.id store)) key fresh);
    fresh
  | None ->
    Obs.incr (obs_cache_misses ());
    let plan = compile store q in
    Multicore.Spinlock.with_lock cache_lock (fun () ->
        ITbl.add (store_table (Rdf.Store.id store)) key plan);
    plan

let reset_cache () =
  Multicore.Spinlock.with_lock cache_lock (fun () -> ITbl.reset caches)

let cached_plan_count store =
  Multicore.Spinlock.with_lock cache_lock (fun () ->
      match ITbl.find_opt caches (Rdf.Store.id store) with
      | Some tbl -> ITbl.length tbl
      | None -> 0)
