(* Columnar batches for the vectorized plan executor.

   A batch is a fixed-capacity block of partial bindings stored
   column-major: [cols.(s).(r)] is slot [s] of row [r].  The executor
   ([Plan]) fills batches a step at a time — each scan step appends
   extended rows to a downstream batch, each membership step narrows
   the current batch through a {e selection vector} instead of moving
   any data.  Keeping the layout flat [int array]s means the per-row
   kernels are plain integer loads and stores with no boxing and no
   per-row allocation, and a whole batch can be handed to
   [Rowset.add_batch] for one bulk dedup pass.

   The companion {!buf} type is a growable column store with the same
   layout: the multi-query optimizer ([Mqo]) captures the stream of
   batches crossing a shared plan prefix into a [buf] once, then
   replays it into every dependent plan.

   All fields are exposed: the batch kernels in [Plan] run per row and
   cross-module accessors would be pure overhead on that path.  Code
   outside [lib/query] should treat the representation as read-only. *)

type t = {
  width : int;  (* number of slot columns *)
  cap : int;    (* rows per batch *)
  cols : int array array;  (* [width] arrays of length [cap] *)
  mutable n : int;  (* rows filled *)
  sel : int array;  (* selection vector, length [cap] *)
  mutable sel_n : int;  (* live prefix of [sel]; -1 = dense (all [n] rows) *)
}

let create ~width cap =
  let cap = max cap 1 in
  {
    width;
    cap;
    cols = Array.init width (fun _ -> Array.make cap 0);
    n = 0;
    sel = Array.make cap 0;
    sel_n = -1;
  }
[@@domain_safe]

let clear b =
  b.n <- 0;
  b.sel_n <- -1
[@@domain_safe]

let live b = if b.sel_n < 0 then b.n else b.sel_n [@@domain_safe]
let is_empty b = live b = 0 [@@domain_safe]

(* Row index of the [i]th live row, reading through the selection
   vector when one is active. *)
let row_at b i = if b.sel_n < 0 then i else Array.unsafe_get b.sel i
[@@domain_safe]

let iter_live f b =
  let m = live b in
  for i = 0 to m - 1 do
    f (row_at b i)
  done
[@@domain_safe]

(* Decode the [i]th live row's first [m] columns into a fresh array —
   test/debug convenience, not an executor path. *)
let read_row b ~width:m i =
  let r = row_at b i in
  Array.init m (fun c -> b.cols.(c).(r))
[@@domain_safe]

(* ---------- growable column buffers -------------------------------------- *)

type buf = {
  bwidth : int;
  mutable bcols : int array array;  (* [bwidth] arrays of length [bcap] *)
  mutable bcap : int;
  mutable bn : int;
}

let buf_create ~width =
  { bwidth = width; bcols = Array.init width (fun _ -> Array.make 64 0); bcap = 64; bn = 0 }
[@@domain_safe]

let buf_rows buf = buf.bn [@@domain_safe]
let buf_width buf = buf.bwidth [@@domain_safe]
let buf_cols buf = buf.bcols [@@domain_safe]

(* Total int cells held (the [Mqo] cache budgets by this). *)
let buf_words buf = (buf.bwidth * buf.bcap) + 4 [@@domain_safe]

let buf_reserve buf extra =
  let need = buf.bn + extra in
  if need > buf.bcap then begin
    let cap = max need (2 * buf.bcap) in
    buf.bcols <-
      Array.map
        (fun col ->
          let fresh = Array.make cap 0 in
          Array.blit col 0 fresh 0 buf.bn;
          fresh)
        buf.bcols;
    buf.bcap <- cap
  end
[@@domain_safe]

(* Append the live rows of a batch, compacting through its selection
   vector; only the first [bwidth] columns are kept (a prefix capture
   stores just the slots bound by the shared steps). *)
let buf_append buf b =
  let m = live b in
  if m > 0 then begin
    buf_reserve buf m;
    let base = buf.bn in
    for c = 0 to buf.bwidth - 1 do
      let src = Array.unsafe_get b.cols c in
      let dst = Array.unsafe_get buf.bcols c in
      if b.sel_n < 0 then Array.blit src 0 dst base m
      else
        for i = 0 to m - 1 do
          Array.unsafe_set dst (base + i)
            (Array.unsafe_get src (Array.unsafe_get b.sel i))
        done
    done;
    buf.bn <- base + m
  end
[@@domain_safe]

(* Refill [b] (cleared first) with rows [off, off + k) of the buffer;
   [k] must not exceed the batch capacity and the buffer's width must
   not exceed the batch's. *)
let buf_blit buf ~off ~len b =
  clear b;
  for c = 0 to buf.bwidth - 1 do
    Array.blit (Array.unsafe_get buf.bcols c) off (Array.unsafe_get b.cols c) 0 len
  done;
  b.n <- len
[@@domain_safe]
