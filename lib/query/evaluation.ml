module SMap = Map.Make (String)

(* Answer tuples are rows of domain terms; deduplication goes through a
   dedicated table built on Rdf.Term's own equal/hash rather than the
   polymorphic ones. *)
module Row_table = Hashtbl.Make (struct
  type t = Rdf.Term.t list

  let equal = List.equal Rdf.Term.equal

  let hash l =
    List.fold_left (fun h t -> ((h * 31) + Rdf.Term.hash t) land max_int) 17 l
end)

(* Join telemetry: probes pick the next atom (one count_matching each),
   scans enumerate a chosen atom's bucket, bindings are complete
   assignments reaching the head projection. *)
let obs_evals = Obs.cached_counter "eval.queries"
let obs_atom_probes = Obs.cached_counter "eval.atom_probes"
let obs_atom_scans = Obs.cached_counter "eval.atom_scans"
let obs_bindings = Obs.cached_counter "eval.bindings"

type slot =
  | Bound of int
  | Unbound of string
  | Impossible  (* the atom mentions a constant absent from the store *)

let slot_of store bindings = function
  | Qterm.Cst c -> (
    match Rdf.Store.find_term store c with
    | Some code -> Bound code
    | None -> Impossible)
  | Qterm.Var x -> (
    match SMap.find_opt x bindings with
    | Some code -> Bound code
    | None -> Unbound x)

let slots_of store bindings (a : Atom.t) =
  (slot_of store bindings a.s, slot_of store bindings a.p, slot_of store bindings a.o)

let pattern_of (s, p, o) =
  let bound = function Bound c -> Some c | Unbound _ | Impossible -> None in
  { Rdf.Store.ps = bound s; pp = bound p; po = bound o }

let has_impossible (s, p, o) =
  s = Impossible || p = Impossible || o = Impossible

(* Estimated result count of an atom under the current bindings: used to
   pick the cheapest next atom (most selective first). *)
let obs_probe_hist = Obs.cached_histogram "eval.probe.ns"

let atom_cost store slots =
  if has_impossible slots then 0
  else begin
    Obs.incr (obs_atom_probes ());
    (* join-ordering probe latency; clock read only under a live
       histogram, no closure on the common path *)
    let h = obs_probe_hist () in
    if Obs.histogram_live h then begin
      let t0 = Obs.now_ns () in
      let n = Rdf.Store.count_matching store (pattern_of slots) in
      Obs.observe h (Obs.now_ns () - t0);
      n
    end
    else Rdf.Store.count_matching store (pattern_of slots)
  end

let extend_bindings bindings slots (ts, tp, to_) =
  let extend acc slot code =
    match acc with
    | None -> None
    | Some bindings -> (
      match slot with
      | Impossible -> None
      | Bound c -> if c = code then Some bindings else None
      | Unbound x -> (
        match SMap.find_opt x bindings with
        | Some c -> if c = code then Some bindings else None
        | None -> Some (SMap.add x code bindings)))
  in
  let (s, p, o) = slots in
  extend (extend (extend (Some bindings) s ts) p tp) o to_

let eval_bindings store (q : Cq.t) emit =
  Obs.incr (obs_evals ());
  let rec go bindings remaining =
    match remaining with
    | [] ->
      Obs.incr (obs_bindings ());
      emit bindings
    | _ ->
      (* dynamic ordering: cheapest atom first *)
      let with_cost =
        List.map
          (fun a ->
            let slots = slots_of store bindings a in
            (a, slots, atom_cost store slots))
          remaining
      in
      let best =
        List.fold_left
          (fun acc item ->
            let _, _, c = item in
            match acc with
            | Some (_, _, cbest) when cbest <= c -> acc
            | Some _ | None -> Some item)
          None with_cost
      in
      (match best with
      | None -> ()
      | Some (atom, slots, _) ->
        if not (has_impossible slots) then begin
          Obs.incr (obs_atom_scans ());
          (* lint: allow phys-equal — removes this one occurrence, not its structural duplicates *)
          let rest = List.filter (fun a -> not (a == atom)) remaining in
          Rdf.Store.iter_matching store (pattern_of slots) (fun triple ->
              match extend_bindings bindings slots triple with
              | Some bindings' -> go bindings' rest
              | None -> ())
        end)
  in
  go SMap.empty q.body

let eval_into store (q : Cq.t) results =
  let project bindings =
    let term_of = function
      | Qterm.Cst c -> c
      | Qterm.Var x -> Rdf.Store.decode_term store (SMap.find x bindings)
    in
    Array.of_list (List.map term_of q.head)
  in
  eval_bindings store q (fun bindings ->
      let tuple = project bindings in
      let key = Array.to_list tuple in
      if not (Row_table.mem results key) then Row_table.add results key tuple)

let eval_codes_into store (q : Cq.t) results =
  let project bindings =
    let code_of = function
      | Qterm.Cst c -> Rdf.Store.encode_term store c
      | Qterm.Var x -> SMap.find x bindings
    in
    Array.of_list (List.map code_of q.head)
  in
  eval_bindings store q (fun bindings ->
      let tuple = project bindings in
      let key = Array.to_list tuple in
      if not (Hashtbl.mem results key) then Hashtbl.add results key tuple)

let eval_cq_codes store q =
  let results = Hashtbl.create 64 in
  eval_codes_into store q results;
  Hashtbl.fold (fun _ tuple acc -> tuple :: acc) results []

let eval_ucq_codes store u =
  let results = Hashtbl.create 64 in
  List.iter (fun q -> eval_codes_into store q results) (Ucq.disjuncts u);
  Hashtbl.fold (fun _ tuple acc -> tuple :: acc) results []

let eval_cq store q =
  let results = Row_table.create 64 in
  eval_into store q results;
  Row_table.fold (fun _ tuple acc -> tuple :: acc) results []

let eval_ucq store u =
  let results = Row_table.create 64 in
  List.iter (fun q -> eval_into store q results) (Ucq.disjuncts u);
  Row_table.fold (fun _ tuple acc -> tuple :: acc) results []

let count_cq store q = List.length (eval_cq store q)
let count_ucq store u = List.length (eval_ucq store u)

let same_answers a b =
  let norm l =
    List.sort (List.compare Rdf.Term.compare) (List.map Array.to_list l)
  in
  List.equal (List.equal Rdf.Term.equal) (norm a) (norm b)
