(* Public query evaluation, routed through compiled plans.

   Every entry point fetches a cached plan ({!Plan.cached}) and
   executes it against an int-array frame; the former interpretive
   backtracking joiner survives unchanged as {!Reference} for
   differential testing.  Under RDFVIEWS_STRICT=1 every evaluated
   query is run through both engines and the answer sets are compared
   — a mismatch raises, naming the query. *)

(* Answer tuples are rows of domain terms; deduplication goes through a
   dedicated table built on Rdf.Term's own equal/hash rather than the
   polymorphic ones. *)
module Row_table = Hashtbl.Make (struct
  type t = Rdf.Term.t list

  let equal = List.equal Rdf.Term.equal

  let hash l =
    List.fold_left (fun h t -> ((h * 31) + Rdf.Term.hash t) land max_int) 17 l
end)

let obs_evals = Obs.cached_counter "eval.queries"

let same_answers a b =
  let norm l =
    List.sort (List.compare Rdf.Term.compare) (List.map Array.to_list l)
  in
  List.equal (List.equal Rdf.Term.equal) (norm a) (norm b)

(* ---------- the reference evaluator -------------------------------------- *)

module Reference = struct
  (* The pre-plan interpretive joiner: per-extension string-keyed maps,
     dynamic cheapest-atom-next ordering re-probed at every binding
     step.  Kept verbatim (modulo the row tables) as the semantic
     oracle: Plan must agree with it on every query. *)

  module SMap = Map.Make (String)

  (* Join telemetry: probes pick the next atom (one count_matching each),
     scans enumerate a chosen atom's bucket, bindings are complete
     assignments reaching the head projection. *)
  let obs_atom_probes = Obs.cached_counter "eval.atom_probes"
  let obs_atom_scans = Obs.cached_counter "eval.atom_scans"
  let obs_bindings = Obs.cached_counter "eval.bindings"

  type slot =
    | Bound of int
    | Unbound of string
    | Impossible  (* the atom mentions a constant absent from the store *)

  let slot_of store bindings = function
    | Qterm.Cst c -> (
      match Rdf.Store.find_term store c with
      | Some code -> Bound code
      | None -> Impossible)
    | Qterm.Var x -> (
      match SMap.find_opt x bindings with
      | Some code -> Bound code
      | None -> Unbound x)

  let slots_of store bindings (a : Atom.t) =
    (slot_of store bindings a.s, slot_of store bindings a.p, slot_of store bindings a.o)

  let pattern_of (s, p, o) =
    let bound = function Bound c -> Some c | Unbound _ | Impossible -> None in
    { Rdf.Store.ps = bound s; pp = bound p; po = bound o }

  let has_impossible (s, p, o) =
    s = Impossible || p = Impossible || o = Impossible

  (* Estimated result count of an atom under the current bindings: used to
     pick the cheapest next atom (most selective first). *)
  let obs_probe_hist = Obs.cached_histogram "eval.probe.ns"

  let atom_cost store slots =
    if has_impossible slots then 0
    else begin
      Obs.incr (obs_atom_probes ());
      (* join-ordering probe latency; clock read only under a live
         histogram, no closure on the common path *)
      let h = obs_probe_hist () in
      if Obs.histogram_live h then begin
        let t0 = Obs.now_ns () in
        let n = Rdf.Store.count_matching store (pattern_of slots) in
        Obs.observe h (Obs.now_ns () - t0);
        n
      end
      else Rdf.Store.count_matching store (pattern_of slots)
    end

  let extend_bindings bindings slots (ts, tp, to_) =
    let extend acc slot code =
      match acc with
      | None -> None
      | Some bindings -> (
        match slot with
        | Impossible -> None
        | Bound c -> if c = code then Some bindings else None
        | Unbound x -> (
          match SMap.find_opt x bindings with
          | Some c -> if c = code then Some bindings else None
          | None -> Some (SMap.add x code bindings)))
    in
    let (s, p, o) = slots in
    extend (extend (extend (Some bindings) s ts) p tp) o to_

  let eval_bindings store (q : Cq.t) emit =
    Obs.incr (obs_evals ());
    let rec go bindings remaining =
      match remaining with
      | [] ->
        Obs.incr (obs_bindings ());
        emit bindings
      | _ ->
        (* dynamic ordering: cheapest atom first *)
        let with_cost =
          List.map
            (fun a ->
              let slots = slots_of store bindings a in
              (a, slots, atom_cost store slots))
            remaining
        in
        let best =
          List.fold_left
            (fun acc item ->
              let _, _, c = item in
              match acc with
              | Some (_, _, cbest) when cbest <= c -> acc
              | Some _ | None -> Some item)
            None with_cost
        in
        (match best with
        | None -> ()
        | Some (atom, slots, _) ->
          if not (has_impossible slots) then begin
            Obs.incr (obs_atom_scans ());
            (* lint: allow phys-equal — removes this one occurrence, not its structural duplicates *)
            let rest = List.filter (fun a -> not (a == atom)) remaining in
            Rdf.Store.iter_matching store (pattern_of slots) (fun triple ->
                match extend_bindings bindings slots triple with
                | Some bindings' -> go bindings' rest
                | None -> ())
          end)
    in
    go SMap.empty q.body

  let eval_into store (q : Cq.t) results =
    let project bindings =
      let term_of = function
        | Qterm.Cst c -> c
        | Qterm.Var x -> Rdf.Store.decode_term store (SMap.find x bindings)
      in
      Array.of_list (List.map term_of q.head)
    in
    eval_bindings store q (fun bindings ->
        let tuple = project bindings in
        let key = Array.to_list tuple in
        if not (Row_table.mem results key) then Row_table.add results key tuple)

  let eval_codes_into store (q : Cq.t) results =
    let project bindings =
      let code_of = function
        | Qterm.Cst c -> Rdf.Store.encode_term store c
        | Qterm.Var x -> SMap.find x bindings
      in
      Array.of_list (List.map code_of q.head)
    in
    eval_bindings store q (fun bindings ->
        ignore (Rowset.add results (project bindings)))

  let eval_cq_codes store q =
    let results = Rowset.create 64 in
    eval_codes_into store q results;
    Rowset.elements results

  let eval_ucq_codes store u =
    let results = Rowset.create 64 in
    List.iter (fun q -> eval_codes_into store q results) (Ucq.disjuncts u);
    Rowset.elements results

  let eval_cq store q =
    let results = Row_table.create 64 in
    eval_into store q results;
    Row_table.fold (fun _ tuple acc -> tuple :: acc) results []

  let eval_ucq store u =
    let results = Row_table.create 64 in
    List.iter (fun q -> eval_into store q results) (Ucq.disjuncts u);
    Row_table.fold (fun _ tuple acc -> tuple :: acc) results []

  let count_cq store q = List.length (eval_cq store q)
  let count_ucq store u = List.length (eval_ucq store u)
end

(* ---------- strict-mode differential check ------------------------------- *)

(* Read per call (tests toggle the variable mid-process); one getenv
   per evaluated query is noise next to the join itself. *)
let strict_enabled () =
  match Sys.getenv_opt "RDFVIEWS_STRICT" with
  | None | Some "" | Some "0" | Some "false" -> false
  | Some _ -> true

exception Differential_mismatch of string

let compare_rows (a : int array) (b : int array) =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length a then 0
      else
        let c = Int.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let sorted_rows rows = List.sort compare_rows rows

let check_codes name compiled reference =
  let c = sorted_rows compiled and r = sorted_rows reference in
  if not (List.equal Rowset.Key.equal c r) then
    raise
      (Differential_mismatch
         (Printf.sprintf
            "Evaluation: compiled plan disagrees with Reference on %s (%d vs %d rows)"
            name (List.length compiled) (List.length reference)))

(* ---------- compiled entry points ---------------------------------------- *)

let eval_cq_rowset store (q : Cq.t) =
  Obs.incr (obs_evals ());
  let plan = Plan.cached store q in
  Mqo.eval_rowset plan store

let eval_cq_codes store q =
  let rows = Rowset.elements (eval_cq_rowset store q) in
  if strict_enabled () then
    check_codes q.Cq.name rows (Reference.eval_cq_codes store q);
  rows

(* One-shot evaluation that bypasses the multi-query optimizer: for
   callers interleaving evaluation with store mutation (incremental
   maintenance delta queries), where prefix registration could never
   promote anything — every mutation moves the version — and would
   only churn the seen table. *)
let eval_cq_codes_transient store (q : Cq.t) =
  Obs.incr (obs_evals ());
  let plan = Plan.cached store q in
  let rows = Rowset.create (max 64 (Plan.size_hint plan)) in
  Plan.exec_into plan store rows;
  let rows = Rowset.elements rows in
  if strict_enabled () then
    check_codes q.Cq.name rows (Reference.eval_cq_codes store q);
  rows

(* Disjuncts accumulate into one shared row table sized from the sum
   of the disjunct plans' last cardinalities (an upper bound when the
   disjuncts overlap, which only lowers the load factor). *)
let ucq_rowset store u =
  let plans =
    List.map
      (fun q ->
        Obs.incr (obs_evals ());
        Plan.cached store q)
      (Ucq.disjuncts u)
  in
  let hint = List.fold_left (fun n p -> n + Plan.size_hint p) 0 plans in
  let rows = Rowset.create (max 64 hint) in
  List.iter (fun p -> Mqo.exec_into p store rows) plans;
  rows

let eval_ucq_codes store u =
  let rows = Rowset.elements (ucq_rowset store u) in
  if strict_enabled () then
    check_codes (Ucq.name u) rows (Reference.eval_ucq_codes store u);
  rows

let decode_rows store rows =
  List.map (Array.map (Rdf.Store.decode_term store)) rows

(* Distinct code rows decode to distinct term rows (the dictionary is a
   bijection), so term-level results reuse the code-level dedup. *)
let eval_cq store q =
  let answers = decode_rows store (Rowset.elements (eval_cq_rowset store q)) in
  if strict_enabled () && not (same_answers answers (Reference.eval_cq store q))
  then
    raise
      (Differential_mismatch
         ("Evaluation: compiled plan disagrees with Reference on " ^ q.Cq.name));
  answers

let eval_ucq store u =
  let answers = decode_rows store (Rowset.elements (ucq_rowset store u)) in
  if strict_enabled () && not (same_answers answers (Reference.eval_ucq store u))
  then
    raise
      (Differential_mismatch
         ("Evaluation: compiled plan disagrees with Reference on " ^ Ucq.name u));
  answers

let count_cq store q =
  let n = Rowset.cardinal (eval_cq_rowset store q) in
  if strict_enabled () then begin
    let r = Reference.count_cq store q in
    if n <> r then
      raise
        (Differential_mismatch
           (Printf.sprintf
              "Evaluation: compiled count %d <> reference count %d on %s" n r
              q.Cq.name))
  end;
  n

let count_ucq store u = List.length (eval_ucq_codes store u)
