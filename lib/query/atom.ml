type position = S | P | O

type t = { s : Qterm.t; p : Qterm.t; o : Qterm.t }

let make s p o = { s; p; o }

let compare a b =
  let c = Qterm.compare a.s b.s in
  if c <> 0 then c
  else
    let c = Qterm.compare a.p b.p in
    if c <> 0 then c else Qterm.compare a.o b.o

let equal a b = compare a b = 0

let term_at t = function S -> t.s | P -> t.p | O -> t.o

let set_at t pos v =
  match pos with S -> { t with s = v } | P -> { t with p = v } | O -> { t with o = v }

let positions = [ S; P; O ]

let position_name = function S -> "s" | P -> "p" | O -> "o"

let position_rank = function S -> 0 | P -> 1 | O -> 2

let compare_position a b = Int.compare (position_rank a) (position_rank b)

let equal_position a b = compare_position a b = 0

let vars t =
  List.filter_map (fun pos -> Qterm.var_name (term_at t pos)) positions

let var_set t = List.sort_uniq String.compare (vars t)

let constants t =
  List.filter_map
    (fun pos ->
      match Qterm.constant (term_at t pos) with
      | Some c -> Some (pos, c)
      | None -> None)
    positions

let constant_count t = List.length (constants t)

let subst f t =
  let apply = function
    | Qterm.Var x as v -> Option.value (f x) ~default:v
    | Qterm.Cst _ as c -> c
  in
  { s = apply t.s; p = apply t.p; o = apply t.o }

let subst_var x v t = subst (fun y -> if String.equal x y then Some v else None) t

let rename_var x y t = subst_var x (Qterm.Var y) t

let shares_var a b =
  List.exists (fun x -> List.mem x (var_set b)) (var_set a)

let to_string t =
  Printf.sprintf "t(%s, %s, %s)" (Qterm.to_string t.s) (Qterm.to_string t.p)
    (Qterm.to_string t.o)

let pp fmt t = Format.pp_print_string fmt (to_string t)
