(** Conjunctive queries over the triple table [t(s, p, o)] (Definition 2.1).

    A query has a name, a head (an ordered list of query terms — usually
    variables, but reformulation rules 5 and 6 may bind a head variable to
    a constant, cf. Table 2) and a body (a list of triple atoms).

    The module provides the classical Chandra–Merlin machinery —
    containment mappings, equivalence, minimization — as well as canonical
    labeling up to variable renaming, used to identify duplicate states
    during the view-selection search. *)

type t = private {
  name : string;
  head : Qterm.t list;
  body : Atom.t list;
  mutable canon_id : int;  (** internal memo for {!interned_canonical} *)
}

val make : name:string -> head:Qterm.t list -> body:Atom.t list -> t
(** Builds a query.  Raises [Invalid_argument] if a head variable does not
    appear in the body (unsafe query) or the body is empty. *)

val rename : t -> string -> t
(** Change the query name, keeping head and body. *)

val arity : t -> int

val head_vars : t -> string list
(** Distinct head variable names, in order of first occurrence. *)

val body_vars : t -> string list
(** Distinct body variable names, sorted. *)

val existential_vars : t -> string list

val atom_count : t -> int
(** [len(v)] in the paper's cost model. *)

val constant_count : t -> int

val constants : t -> Rdf.Term.t list

val equal_syntactic : t -> t -> bool
(** Name-insensitive syntactic equality of head and body. *)

val subst : (string -> Qterm.t option) -> t -> t
(** Apply a substitution to body and head. *)

val subst_var : string -> Qterm.t -> t -> t

val rename_var : string -> string -> t -> t

val freshen : t -> t
(** Rename every variable to a globally fresh name (head positions
    preserved). *)

val homomorphism :
  ?check_head:bool -> from:t -> into:t -> unit -> (string * Qterm.t) list option
(** A containment mapping from [from] into [into]: a variable mapping
    sending every atom of [from] onto some atom of [into] and (when
    [check_head], the default) the head of [from] onto the head of
    [into] position-wise. *)

val contained_in : t -> t -> bool
(** [contained_in q1 q2] holds iff q1 ⊆ q2, i.e. there is a containment
    mapping from [q2] into [q1]. *)

val equivalent : t -> t -> bool
(** Semantic equivalence: containment both ways. *)

val minimize : t -> t
(** The core of the query: a minimal equivalent subquery (Definition 2.1
    requires queries and views to be minimal). *)

val is_minimal : t -> bool

val is_connected : t -> bool
(** True when every atom joins (shares a variable) transitively with every
    other — i.e. the query has no Cartesian product. *)

val components : t -> Atom.t list list
(** The connected components of the body's join graph. *)

val body_isomorphism : t -> t -> (string * string) list option
(** [body_isomorphism v1 v2] returns a renaming of [v2]'s variables into
    [v1]'s making the bodies equal as atom sets ("their bodies are
    equivalent up to variable renaming", Definition 3.5), or [None]. *)

val canonical_string : t -> string
(** A string invariant under variable renaming and atom reordering:
    two queries have the same canonical string iff one can be renamed
    into the other.  Computed by color refinement with individualization
    backtracking. *)

val interned_canonical : t -> int
(** {!canonical_string} pushed through the process-global [Interning]
    table, memoized on the query value (head and body are immutable, so
    the labeling runs at most once per value).  Two queries get the
    same id iff they are isomorphic; the plan cache keys on it. *)

val canonical_body_string : t -> string
(** Like {!canonical_string} but ignoring the head entirely; equal on two
    views exactly when {!body_isomorphism} succeeds. *)

val canonical_head_set_string : t -> string
(** Like {!canonical_string} but comparing heads as {e sets}: two views
    differing only in head column order get the same string.  This is
    the identity used for states (§3.1 compares view sets; Fig. 3's S4
    is reached through both SC orders, which permute the head). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
