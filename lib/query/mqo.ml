(* Multi-query optimization over compiled plans.

   The workload of this system is a query SET: the view-selection
   search costs every query of the application together, view
   materialization evaluates every recommended view, and the eval
   benchmark replays a fixed workload.  Those queries share structure
   by construction — relaxations of one another, views covering
   several queries — and after compilation the sharing is syntactic:
   plans whose first [d] steps serialize identically ([Plan.prefix_id])
   produce identical partial-binding streams over identical dense slot
   prefixes.

   This module exploits that above the plan cache.  Every execution
   registers its plan's prefix ids; once a prefix has been seen twice
   at the same store version — two plans of one workload sharing it,
   or the same plan re-evaluated — the next execution captures the
   batch stream crossing that depth into a column buffer
   ([Batch.buf]).  Later executions of any plan with that prefix skip
   the shared steps entirely: the pipeline starts at the prefix depth,
   seeded from the captured buffer.  A full-depth hit degenerates to a
   replay — projection and dedup only.

   Correctness hinges on two stamps: entries record the store version
   at capture (any store mutation invalidates them — lookups compare
   against [Rdf.Store.version]), and prefix serialization embeds the
   store id and resolved constant codes (so dictionary growth or a
   guarded re-order simply produces different ids, orphaning stale
   entries rather than ever matching them).  Orphans are reclaimed by
   the words budget: the cache is dropped wholesale when captured
   buffers exceed it.

   Concurrency: worker domains evaluate concurrently during cost
   estimation, so the seen table, the entry table and the words
   counter are guarded by one spinlock, same discipline as the plan
   cache.  Captured buffers are filled outside the lock and published
   under it, write-once; readers replay them without locking. *)

module ITbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash i = i land max_int
end)

let obs_hits = Obs.cached_counter "mqo.prefix.hits"
let obs_evals = Obs.cached_counter "mqo.prefix.evals"
let obs_result_hits = Obs.cached_counter "mqo.result.hits"
let obs_result_evals = Obs.cached_counter "mqo.result.evals"
let obs_capture_rows = Obs.cached_counter "mqo.capture.rows"
let obs_evictions = Obs.cached_counter "mqo.cache.evictions"

(* How often a prefix id has been seen at a store version; the count
   restarts when the version moves, so a mutating store (incremental
   maintenance) never promotes anything to capture. *)
type seen = { mutable sv : int; mutable scount : int }

type entry = {
  e_version : int;  (* store version at capture *)
  e_depth : int;    (* prefix length the buffer materializes *)
  e_rows : Batch.buf;  (* width = bound slots at that depth; write-once *)
}

(* A cached result set: the deduplicated, head-projected rows of a
   whole plan ([Plan.result_id]).  Sits above the prefix cache — a
   result hit skips not just the join but projection and dedup too,
   degenerating a re-evaluation to two array copies
   ([Rowset.absorb]).  [r_bindings] preserves the duplicate-included
   binding count of the real execution for the telemetry. *)
type result_entry = {
  r_version : int;
  r_rows : Rowset.t;  (* trimmed copy; write-once, never handed out *)
  r_bindings : int;
}

let lock = Multicore.Spinlock.create ()
let seen_tbl : seen ITbl.t = ITbl.create 256 [@@guarded_by "lock"]
let cache : entry ITbl.t = ITbl.create 64 [@@guarded_by "lock"]
let results : result_entry ITbl.t = ITbl.create 64 [@@guarded_by "lock"]
let cached_words = ref 0 [@@guarded_by "lock"]

(* Promote a prefix to capture once two executions at one version
   wanted it. *)
let capture_threshold = 2

(* Total int cells of captured buffers kept live; beyond this the
   cache is dropped wholesale (simple, and eviction is expected to be
   rare — one buffer outliving its version is reclaimed here too). *)
let budget_words = ref (4 * 1024 * 1024)
let set_budget_words n = budget_words := max 1024 n

let enabled_flag = Atomic.make true
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let reset () =
  Multicore.Spinlock.with_lock lock (fun () ->
      (* analyze: allow unguarded-write -- holding lock *)
      ITbl.reset seen_tbl;
      ITbl.reset cache;
      ITbl.reset results;
      cached_words := 0)

(* must hold [lock]: drop every captured buffer and result wholesale
   when the words budget is exceeded (eviction is expected to be rare;
   entries outliving their version are reclaimed here too). *)
let check_budget () =
  if !cached_words > !budget_words then begin
    (* analyze: allow unguarded-write -- callers hold lock *)
    ITbl.reset cache;
    (* analyze: allow unguarded-write -- callers hold lock *)
    ITbl.reset results;
    (* analyze: allow unguarded-write -- callers hold lock *)
    cached_words := 0;
    Obs.incr (obs_evictions ())
  end

(* must hold [lock] *)
let bump_seen id v =
  let s =
    match ITbl.find_opt seen_tbl id with
    | Some s -> s
    | None ->
      let s = { sv = v; scount = 0 } in
      (* analyze: allow unguarded-write -- callers hold lock *)
      ITbl.add seen_tbl id s;
      s
  in
  if s.sv <> v then begin
    s.sv <- v;
    s.scount <- 0
  end;
  s.scount <- s.scount + 1;
  s.scount

(* One locked pass per execution: register every prefix of the plan
   plus its result id, find the deepest cached prefix valid at this
   version (the replay seed), the deepest capture-worthy one beyond
   it, and whether the full result set is worth caching. *)
let decide plan v =
  let n = Plan.step_count plan in
  Multicore.Spinlock.with_lock lock (fun () ->
      let start = ref 0 in
      let input = ref None in
      let d = ref n in
      while !input = None && !d >= 1 do
        (match ITbl.find_opt cache (Plan.prefix_id plan !d) with
        | Some e when e.e_version = v ->
          start := !d;
          input := Some e.e_rows
        | Some _ | None -> ());
        decr d
      done;
      let capture = ref 0 in
      for d = 1 to n do
        let id = Plan.prefix_id plan d in
        let count = bump_seen id v in
        if d > !start && count >= capture_threshold then begin
          let cached_here =
            match ITbl.find_opt cache id with
            | Some e -> e.e_version = v
            | None -> false
          in
          if not cached_here then capture := d
        end
      done;
      let rcount = bump_seen (Plan.result_id plan) v in
      (!start, !input, !capture, rcount >= capture_threshold))

let publish id v depth buf =
  Multicore.Spinlock.with_lock lock (fun () ->
      (match ITbl.find_opt cache id with
      | Some old when old.e_version = v ->
        (* a racing domain captured the same prefix first; keep its
           buffer (identical contents) *)
        ()
      | Some old ->
        cached_words := !cached_words - Batch.buf_words old.e_rows;
        cached_words := !cached_words + Batch.buf_words buf;
        (* analyze: allow unguarded-write -- holding lock *)
        ITbl.replace cache id { e_version = v; e_depth = depth; e_rows = buf }
      | None ->
        cached_words := !cached_words + Batch.buf_words buf;
        (* analyze: allow unguarded-write -- holding lock *)
        ITbl.add cache id { e_version = v; e_depth = depth; e_rows = buf });
      check_budget ())

(* Publish a result-set copy; the copy was built outside the lock, a
   racing first capture at the same version keeps its (identical)
   rows. *)
let publish_result id v rcopy bindings =
  Multicore.Spinlock.with_lock lock (fun () ->
      (match ITbl.find_opt results id with
      | Some old when old.r_version = v -> ()
      | Some old ->
        cached_words :=
          !cached_words - Rowset.words old.r_rows + Rowset.words rcopy;
        (* analyze: allow unguarded-write -- holding lock *)
        ITbl.replace results id
          { r_version = v; r_rows = rcopy; r_bindings = bindings }
      | None ->
        cached_words := !cached_words + Rowset.words rcopy;
        (* analyze: allow unguarded-write -- holding lock *)
        ITbl.add results id
          { r_version = v; r_rows = rcopy; r_bindings = bindings });
      check_budget ())

let find_result plan v =
  Multicore.Spinlock.with_lock lock (fun () ->
      match ITbl.find_opt results (Plan.result_id plan) with
      | Some e when e.r_version = v -> Some e
      | Some _ | None -> None)

let exec_into plan store rows =
  if
    (not (Atomic.get enabled_flag))
    || Plan.is_impossible plan
    || Plan.step_count plan = 0
  then Plan.exec_into plan store rows
  else begin
    let v = Rdf.Store.version store in
    match find_result plan v with
    | Some e ->
      (* result-level replay: no pipeline at all.  An empty
         destination adopts a copy of the cached storage wholesale;
         a pre-filled one (UCQ disjuncts accumulating) falls back to
         per-row insertion. *)
      Obs.incr (obs_result_hits ());
      let before = Rowset.cardinal rows in
      if before = 0 then Rowset.absorb rows e.r_rows
      else Rowset.iter (fun row -> ignore (Rowset.add rows row)) e.r_rows;
      Plan.note_result plan ~bindings:e.r_bindings
        ~cardinality:(Rowset.cardinal rows - before)
    | None ->
      let before = Rowset.cardinal rows in
      let start, input, capture_depth, capture_result = decide plan v in
      if start > 0 then Obs.incr (obs_hits ());
      let capture =
        if capture_depth > start then
          Some
            ( capture_depth,
              Batch.buf_create ~width:(Plan.bound_after plan capture_depth) )
        else None
      in
      Plan.exec_batched_into ~start ?input ?capture plan store rows;
      (match capture with
      | Some (d, buf) ->
        Obs.incr (obs_evals ());
        Obs.add (obs_capture_rows ()) (Batch.buf_rows buf);
        publish (Plan.prefix_id plan d) v d buf
      | None -> ());
      (* Cache the result only when the destination started empty —
         otherwise it holds other disjuncts' rows too. *)
      if capture_result && before = 0 then begin
        Obs.incr (obs_result_evals ());
        publish_result (Plan.result_id plan) v (Rowset.copy rows)
          (Plan.last_bindings plan)
      end
  end

(* Evaluate into a fresh set, sized to skip table growth on a real
   execution but kept minimal when a cached result will replace the
   storage anyway. *)
let eval_rowset plan store =
  let hint =
    if
      Atomic.get enabled_flag
      && (not (Plan.is_impossible plan))
      && Plan.step_count plan > 0
      && find_result plan (Rdf.Store.version store) <> None
    then 16
    else max 64 (Plan.size_hint plan)
  in
  let rows = Rowset.create hint in
  exec_into plan store rows;
  rows

let prepare store qs =
  if Atomic.get enabled_flag then begin
    let v = Rdf.Store.version store in
    let plans =
      List.filter
        (fun p -> not (Plan.is_impossible p))
        (List.map (Plan.cached store) qs)
    in
    Multicore.Spinlock.with_lock lock (fun () ->
        List.iter
          (fun p ->
            for d = 1 to Plan.step_count p do
              ignore (bump_seen (Plan.prefix_id p d) v)
            done;
            ignore (bump_seen (Plan.result_id p) v))
          plans)
  end

(* ---------- explain ------------------------------------------------------ *)

let stats () =
  Multicore.Spinlock.with_lock lock (fun () ->
      (ITbl.length cache + ITbl.length results, !cached_words))

(* The shared-subplan DAG of a workload, as text: every prefix shared
   by at least two plans (or by every evaluation of a repeated plan —
   isomorphic queries share one plan and so count once here), deepest
   first, with its member queries and the atoms the shared steps
   cover; then one line per query summarizing its plan and the deepest
   prefix it shares. *)
let explain store qs =
  let buf = Buffer.create 512 in
  let plans = List.map (fun (q : Cq.t) -> (q, Plan.cached store q)) qs in
  let add = Buffer.add_string buf in
  add
    (Printf.sprintf "shared-subplan DAG (store %d, version %d, %d queries)\n"
       (Rdf.Store.id store) (Rdf.Store.version store) (List.length plans));
  (* prefix id -> (depth, representative (q, plan), member names) *)
  let groups : (int * (Cq.t * Plan.t) * string list ref) ITbl.t =
    ITbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun ((q : Cq.t), p) ->
      if not (Plan.is_impossible p) then
        for d = 1 to Plan.step_count p do
          let id = Plan.prefix_id p d in
          match ITbl.find_opt groups id with
          | Some (_, _, members) ->
            if not (List.mem q.Cq.name !members) then
              members := q.Cq.name :: !members
          | None ->
            ITbl.add groups id (d, (q, p), ref [ q.Cq.name ]);
            order := id :: !order
        done)
    plans;
  let cached_now =
    Multicore.Spinlock.with_lock lock (fun () ->
        let v = Rdf.Store.version store in
        List.filter_map
          (fun id ->
            match ITbl.find_opt cache id with
            | Some e when e.e_version = v -> Some (id, Batch.buf_rows e.e_rows)
            | Some _ | None -> None)
          (List.rev !order))
  in
  let shared =
    List.filter
      (fun id ->
        let _, _, members = ITbl.find groups id in
        List.length !members >= 2)
      (List.rev !order)
  in
  let shared =
    List.sort
      (fun a b ->
        let da, _, _ = ITbl.find groups a and db, _, _ = ITbl.find groups b in
        let c = Int.compare db da in
        if c <> 0 then c else Int.compare a b)
      shared
  in
  if shared = [] then add "  (no shared prefixes across this workload)\n";
  List.iter
    (fun id ->
      let d, ((q : Cq.t), p), members = ITbl.find groups id in
      let atoms = Array.of_list q.Cq.body in
      let ord = Plan.atom_order p in
      let steps =
        String.concat " ⋈ "
          (List.init d (fun i -> Atom.to_string atoms.(ord.(i))))
      in
      let status =
        match List.assoc_opt id cached_now with
        | Some rows -> Printf.sprintf " [cached: %d rows]" rows
        | None -> ""
      in
      add
        (Printf.sprintf "  prefix p#%d depth %d shared by {%s}%s\n    %s\n" id
           d
           (String.concat ", " (List.sort String.compare !members))
           status steps))
    shared;
  List.iter
    (fun ((q : Cq.t), p) ->
      if Plan.is_impossible p then
        add (Printf.sprintf "  %s: impossible (empty at compile time)\n" q.Cq.name)
      else begin
        let deepest = ref 0 in
        let deepest_id = ref 0 in
        for d = 1 to Plan.step_count p do
          let id = Plan.prefix_id p d in
          let _, _, members = ITbl.find groups id in
          if List.length !members >= 2 then begin
            deepest := d;
            deepest_id := id
          end
        done;
        add
          (Printf.sprintf "  %s: %d steps%s\n" q.Cq.name (Plan.step_count p)
             (if !deepest > 0 then
                Printf.sprintf ", shares p#%d through step %d" !deepest_id
                  !deepest
              else ", no shared prefix"))
      end)
    plans;
  Buffer.contents buf
