(** Columnar batches for the vectorized plan executor.

    A batch holds up to [cap] partial bindings column-major:
    [cols.(s).(r)] is slot [s] of row [r].  Scan steps append extended
    rows into a downstream batch; membership steps narrow the current
    batch through the selection vector [sel] (no data movement).  The
    growable {!buf} stores a captured batch stream — the multi-query
    optimizer materializes a shared plan prefix into one and replays
    it into every dependent plan.

    The representation is deliberately transparent: [Plan]'s per-row
    kernels read and write the fields directly.  Code outside
    [lib/query] must treat batches as read-only. *)

type t = {
  width : int;  (** number of slot columns *)
  cap : int;  (** row capacity *)
  cols : int array array;  (** [width] arrays of length [cap] *)
  mutable n : int;  (** rows filled *)
  sel : int array;  (** selection vector, length [cap] *)
  mutable sel_n : int;  (** live prefix of [sel]; [-1] = dense *)
}

val create : width:int -> int -> t
(** [create ~width cap] — a fresh empty batch ([cap] is clamped to at
    least 1). *)

val clear : t -> unit
(** Empty the batch and drop any selection vector. *)

val live : t -> int
(** Number of live rows: [n] when dense, [sel_n] under a selection. *)

val is_empty : t -> bool

val row_at : t -> int -> int
(** Physical row index of the [i]th live row (reads through [sel]). *)

val iter_live : (int -> unit) -> t -> unit
(** Apply to each live physical row index, in order. *)

val read_row : t -> width:int -> int -> int array
(** Decode the [i]th live row's first [width] columns into a fresh
    array.  Test/debug convenience, not an executor path. *)

(** {1 Growable column buffers} *)

type buf

val buf_create : width:int -> buf
val buf_rows : buf -> int
val buf_width : buf -> int

val buf_words : buf -> int
(** Allocated int cells — what the MQO cache budgets by. *)

val buf_append : buf -> t -> unit
(** Append a batch's live rows (compacting through its selection
    vector), keeping the buffer's first [width] columns. *)

val buf_blit : buf -> off:int -> len:int -> t -> unit
(** Refill the batch (cleared first) with buffer rows
    [off, off + len).  [len] must fit the batch capacity and the
    buffer width must not exceed the batch width. *)

(**/**)

val buf_reserve : buf -> int -> unit

val buf_cols : buf -> int array array
(** The raw column arrays (valid rows are [0 .. buf_rows - 1]); the
    replay fast path reads them in place.  Treat as read-only. *)
