(** Multi-query optimization: shared-subplan caching above the plan
    cache.

    Plans whose first [d] steps serialize to the same
    {!Plan.prefix_id} produce identical partial-binding streams over
    identical dense slot prefixes.  This module registers every
    executed plan's prefixes; once a prefix has been wanted twice at
    one store version (two workload queries sharing it, or one plan
    re-evaluated), the next execution captures the columnar batch
    stream crossing that depth, and later executions of {e any} plan
    with the prefix start there, seeded from the captured buffer — a
    full-depth hit degenerates to projection + dedup replay.

    Above the prefix cache sits a {e result} cache keyed by
    {!Plan.result_id} (full step sequence plus head projection): once
    a plan's complete, deduplicated result set has been wanted twice
    at one version it is kept as a trimmed {!Rowset} copy, and later
    evaluations adopt it at memcpy speed ({!Rowset.absorb}) — no
    join, no projection, no re-dedup.

    Entries are stamped with {!Rdf.Store.version}: any store mutation
    silently invalidates them, and a words budget drops the cache
    wholesale when captured buffers outgrow it.  All tables are
    guarded by one spinlock (worker domains evaluate concurrently);
    captured buffers are write-once and replayed without locking.

    Instruments: [mqo.prefix.hits] (executions seeded from a cached
    prefix), [mqo.prefix.evals] (prefix captures),
    [mqo.result.hits] / [mqo.result.evals] (result-level replays and
    captures), [mqo.capture.rows], [mqo.cache.evictions]. *)

val exec_into : Plan.t -> Rdf.Store.t -> Rowset.t -> unit
(** MQO-aware {!Plan.exec_into}: registers the plan's prefixes,
    replays the deepest valid cached prefix (or the whole cached
    result), captures a newly promoted one.  Falls back to the plain
    batched execution when disabled (or for impossible plans).  Same
    result set and {!Plan.size_hint} contract as
    {!Plan.exec_into}. *)

val eval_rowset : Plan.t -> Rdf.Store.t -> Rowset.t
(** Evaluate into a fresh set: {!exec_into} plus sizing — the set is
    pre-sized from {!Plan.size_hint} for a real execution but kept
    minimal when a cached result will replace its storage anyway. *)

val prepare : Rdf.Store.t -> Cq.t list -> unit
(** Pre-register a workload: compiles (via the plan cache) and bumps
    every plan's prefixes at the current store version, so prefixes
    shared across the workload are captured on the {e first}
    execution instead of the second.  Call before materializing a
    view set or evaluating a query batch. *)

val explain : Rdf.Store.t -> Cq.t list -> string
(** Render the workload's shared-subplan DAG: every prefix shared by
    at least two plans (deepest first, with member queries, covered
    atoms and capture status), then a per-query summary.  Compiles
    through the plan cache; does not execute anything. *)

val set_enabled : bool -> unit
(** Toggle the MQO path process-wide (default enabled).  When off,
    {!exec_into} is exactly {!Plan.exec_into} and {!prepare} is a
    no-op. *)

val enabled : unit -> bool

val set_budget_words : int -> unit
(** Cap (in int cells) on live captured buffers; the cache is dropped
    wholesale beyond it.  Default 4M words. *)

val reset : unit -> unit
(** Drop all seen counts and captured buffers (all stores).  For tests
    and benchmarks. *)

val stats : unit -> int * int
(** [(entries, words)] currently cached. *)
