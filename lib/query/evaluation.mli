(** Evaluation of conjunctive queries and UCQs over a triple store.

    This is [evaluate] in the sense of Theorem 4.2: standard evaluation
    of plain RDF basic graph patterns, with set semantics.  Since the
    compiled-plan rework, every entry point routes through
    {!Plan.cached}: the join order is fixed at compile time, bindings
    live in an int-slot frame, and isomorphic queries share one cached
    plan per store.  The former interpretive joiner survives as
    {!Reference}; with [RDFVIEWS_STRICT=1] in the environment, every
    evaluated query is run through both engines and any answer-set
    disagreement raises {!Differential_mismatch}. *)

val eval_cq : Rdf.Store.t -> Cq.t -> Rdf.Term.t array list
(** All distinct answer tuples of the query on the store.  Head constants
    (arising from reformulation rules 5 and 6) are returned verbatim. *)

val eval_ucq : Rdf.Store.t -> Ucq.t -> Rdf.Term.t array list
(** Set-semantics union of the disjuncts' answers. *)

val eval_cq_codes : Rdf.Store.t -> Cq.t -> int array list
(** Like {!eval_cq} but dictionary-encoded; head constants are encoded
    into the store's dictionary on the fly. *)

val eval_cq_codes_transient : Rdf.Store.t -> Cq.t -> int array list
(** {!eval_cq_codes} bypassing the multi-query optimizer ({!Mqo}):
    for one-shot queries interleaved with store mutation (incremental
    maintenance deltas), where every mutation invalidates the prefix
    cache anyway and registration would only churn it. *)

val eval_ucq_codes : Rdf.Store.t -> Ucq.t -> int array list

val count_cq : Rdf.Store.t -> Cq.t -> int
val count_ucq : Rdf.Store.t -> Ucq.t -> int

val same_answers : Rdf.Term.t array list -> Rdf.Term.t array list -> bool
(** Order-insensitive comparison of two answer sets. *)

exception Differential_mismatch of string
(** Raised under [RDFVIEWS_STRICT=1] when the compiled plan and
    {!Reference} disagree on a query's answers. *)

(** The pre-plan interpretive evaluator: index nested loops with a
    most-bound-atom-first {e dynamic} ordering re-probed at every
    binding step.  Kept as the semantic oracle for the differential
    suite and the eval benchmark's before/after comparison. *)
module Reference : sig
  val eval_cq : Rdf.Store.t -> Cq.t -> Rdf.Term.t array list
  val eval_ucq : Rdf.Store.t -> Ucq.t -> Rdf.Term.t array list
  val eval_cq_codes : Rdf.Store.t -> Cq.t -> int array list
  val eval_ucq_codes : Rdf.Store.t -> Ucq.t -> int array list
  val count_cq : Rdf.Store.t -> Cq.t -> int
  val count_ucq : Rdf.Store.t -> Ucq.t -> int
end
