(** Hash sets and tables of dictionary-encoded rows ([int array]).

    Replaces the former pattern of keying a generic [Hashtbl] by
    [Array.to_list row]: rows are hashed directly (FNV-1a over the
    elements) and compared element-wise, so a membership probe
    allocates nothing.  Keys are stored by reference — never mutate a
    row after handing it to a table. *)

module Key : sig
  type t = int array

  val equal : t -> t -> bool
  val hash : t -> int
end

module Tbl : Hashtbl.S with type key = int array
(** Row-keyed table with arbitrary values (used e.g. by
    [Engine.Relation] for its row → position index). *)

type t
(** A set of rows (set semantics; the common case).  Open-addressed
    over a packed int arena: one probe sequence per membership test or
    insert, no per-row allocation, and iteration in insertion order. *)

val create : int -> t
(** [create n] sizes the table for about [n] rows (it grows as
    needed). *)

val mem : t -> int array -> bool

val add : t -> int array -> bool
(** [add t row] records [row] and returns [true] when unseen, [false]
    otherwise.  The row's elements are copied into the set, so the
    caller may reuse (or mutate) the array afterwards. *)

val add_copy : t -> int array -> bool
(** Alias of {!add}; kept for emitters that want the copy-on-insert
    contract spelled out at the call site. *)

val cardinal : t -> int

val fold : (int array -> 'a -> 'a) -> t -> 'a -> 'a

val iter : (int array -> unit) -> t -> unit

val elements : t -> int array list
