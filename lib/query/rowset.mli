(** Hash sets and tables of dictionary-encoded rows ([int array]).

    Replaces the former pattern of keying a generic [Hashtbl] by
    [Array.to_list row]: rows are hashed directly (FNV-1a over the
    elements) and compared element-wise, so a membership probe
    allocates nothing.  Keys are stored by reference — never mutate a
    row after handing it to a table. *)

module Key : sig
  type t = int array

  val equal : t -> t -> bool
  val hash : t -> int
end

module Tbl : Hashtbl.S with type key = int array
(** Row-keyed table with arbitrary values (used e.g. by
    [Engine.Relation] for its row → position index). *)

type t
(** A set of rows (set semantics; the common case).  Open-addressed
    over a packed int arena: one probe sequence per membership test or
    insert, no per-row allocation, and iteration in insertion order.

    When a set's rows are narrow (width <= 7 and every code below
    [2^(62/width)] — the usual case for dictionary-encoded results),
    the whole row is packed into one 62-bit word and hashed with a
    single multiply-xor mix instead of a per-column FNV loop.  The
    mode is picked per set on the first insert and demoted to FNV
    (one index rebuild) if a later row does not fit; semantics are
    identical either way. *)

val set_key_packing : bool -> unit
(** Globally enable/disable packed hashing for sets created {e and
    first inserted into} afterwards (default on).  The [eval] bench's
    [nopack] variant uses this to measure the packing win. *)

val key_packing : unit -> bool

val create : int -> t
(** [create n] sizes the table for about [n] rows (it grows as
    needed). *)

val mem : t -> int array -> bool

val add : t -> int array -> bool
(** [add t row] records [row] and returns [true] when unseen, [false]
    otherwise.  The row's elements are copied into the set, so the
    caller may reuse (or mutate) the array afterwards. *)

val add_copy : t -> int array -> bool
(** Alias of {!add}; kept for emitters that want the copy-on-insert
    contract spelled out at the call site. *)

val add_batch : t -> Batch.t -> int
(** Bulk {!add} of a whole columnar batch (its live rows, through the
    selection vector): slot-array and arena growth are checked once up
    front, then each row is one probe sequence hashing and comparing
    directly against the column vectors — no scratch row.  Returns how
    many rows were new. *)

val cardinal : t -> int

val copy : t -> t
(** Deep copy: one memcpy of the packed rows (trimmed to the used
    prefix), no per-row hashing.  The hash index is rebuilt lazily if
    the copy is ever probed or extended; enumerate-only consumers
    never pay for it.  What the MQO result cache stores. *)

val absorb : t -> t -> unit
(** [absorb dst src] replaces the {e empty} set [dst]'s storage with a
    copy of [src]'s rows — the result-replay fast path, one memcpy
    instead of per-row re-insertion (index rebuilt lazily, as with
    {!copy}).  [src] stays independent of later mutation of [dst].
    @raise Invalid_argument when [dst] is not empty. *)

val words : t -> int
(** Allocated int cells — what the MQO cache budgets by. *)

val fold : (int array -> 'a -> 'a) -> t -> 'a -> 'a

val iter : (int array -> unit) -> t -> unit

val elements : t -> int array list
