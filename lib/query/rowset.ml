(* Dedicated hash structures for dictionary-encoded result rows.

   Result deduplication used to key generic Hashtbls by
   [Array.to_list row]: one list allocation per probe plus the
   polymorphic hash walking boxed cons cells.  [Tbl] hashes the int
   array directly (FNV-1a over the elements, the same scheme as
   Rdf.Term.hash) and compares element-wise, so membership probes
   allocate nothing.

   The set type [t] goes further: rows live packed in one int arena
   ([len; elems...] records), and the open-addressed slot arrays (linear
   probing, power-of-two capacity, load factor 1/2) hold only the
   arena offset and the cached hash.  An insert is a single probe
   sequence plus a sequential arena append — no per-row allocation, no
   pointer chasing, nothing new for the GC to scan — where the
   mem-then-add double hashing of the Hashtbl route cost about as much
   as the whole join underneath it in the evaluator's emit path.
   Iteration follows arena (insertion) order, so result enumeration is
   deterministic. *)

module Key = struct
  type t = int array

  (* Hot path of every result-set insert: indices below are bounded by
     [Array.length] reads just above, so the checked accesses would be
     pure overhead. *)
  let equal (a : int array) (b : int array) =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i =
      i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
    in
    go 0

  let hash (a : int array) =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length a - 1 do
      h := (!h lxor Array.unsafe_get a i) * 0x01000193 land max_int
    done;
    !h
end

module Tbl = Hashtbl.Make (Key)

type t = {
  mutable slots : int array;
      (* interleaved pairs: slot j is [slots.(2j)] = arena offset + 1
         (0 = free) and [slots.(2j + 1)] = the cached row hash, so one
         probe touches one cache line *)
  mutable mask : int;  (* slot capacity - 1; capacity is 2^k *)
  mutable count : int;
  mutable arena : int array;  (* rows, packed as consecutive [len; elems...] records *)
  mutable arena_n : int;  (* used prefix of [arena] *)
}

let create n =
  let rec pow2 c = if c >= n * 2 || c >= Sys.max_array_length / 4 then c else pow2 (c * 2) in
  let cap = pow2 16 in
  {
    slots = Array.make (2 * cap) 0;
    mask = cap - 1;
    count = 0;
    arena = Array.make (max 64 (4 * n)) 0;
    arena_n = 0;
  }

(* Row at arena offset [o] (its length word) equals [row]?  Arena
   offsets only ever come from [slots], so they are in bounds by
   construction; unchecked reads keep the probe loop tight. *)
let arena_equal (arena : int array) o (row : int array) =
  let n = Array.length row in
  Array.unsafe_get arena o = n
  &&
  let rec go i =
    i >= n
    || Array.unsafe_get arena (o + 1 + i) = Array.unsafe_get row i
       && go (i + 1)
  in
  go 0

(* Index of the slot holding a row equal to [row] (hash [h]), or of the
   free slot where it would go.  Load factor < 1/2, so this terminates;
   the index is masked, so it is always valid. *)
let find_slot t h row =
  let slots = t.slots and arena = t.arena in
  let mask = t.mask in
  let rec go i =
    let j = (h + i) land mask in
    let off = Array.unsafe_get slots (2 * j) in
    if
      off = 0
      || Array.unsafe_get slots ((2 * j) + 1) = h
         && arena_equal arena (off - 1) row
    then j
    else go (i + 1)
  in
  go 0

(* Growing the slot array replays (offset, hash) pairs against the
   new mask — the arena itself is never touched or rewritten.  Growth
   is 4x so a set that starts small reaches its working size in few
   replays (the replay writes are random-access, the expensive part of
   an insert). *)
let grow_slots t =
  let old = t.slots in
  let cap = 4 * (t.mask + 1) in
  let slots = Array.make (2 * cap) 0 in
  let mask = cap - 1 in
  t.slots <- slots;
  t.mask <- mask;
  let n = Array.length old / 2 in
  for j = 0 to n - 1 do
    let off = old.(2 * j) in
    if off > 0 then begin
      let h = old.((2 * j) + 1) in
      let rec free i =
        let k = (h + i) land mask in
        if slots.(2 * k) = 0 then k else free (i + 1)
      in
      let k = free 0 in
      slots.(2 * k) <- off;
      slots.((2 * k) + 1) <- h
    end
  done

let ensure_arena t extra =
  let need = t.arena_n + extra in
  if need > Array.length t.arena then begin
    let arena = Array.make (max need (2 * Array.length t.arena)) 0 in
    Array.blit t.arena 0 arena 0 t.arena_n;
    t.arena <- arena
  end

let mem t row = t.slots.(2 * find_slot t (Key.hash row) row) > 0

(* The row's elements are copied into the arena, so the caller keeps
   ownership of the array — one scratch buffer may be reused across
   calls. *)
let add t row =
  if 2 * (t.count + 1) > t.mask + 1 then grow_slots t;
  let h = Key.hash row in
  let j = find_slot t h row in
  if Array.unsafe_get t.slots (2 * j) > 0 then false
  else begin
    let n = Array.length row in
    ensure_arena t (n + 1);
    let arena = t.arena in
    let o = t.arena_n in
    (* manual copy: rows are a handful of ints, below Array.blit's
       call overhead; bounds are guaranteed by [ensure_arena] *)
    Array.unsafe_set arena o n;
    for i = 0 to n - 1 do
      Array.unsafe_set arena (o + 1 + i) (Array.unsafe_get row i)
    done;
    t.arena_n <- o + 1 + n;
    Array.unsafe_set t.slots (2 * j) (o + 1);
    Array.unsafe_set t.slots ((2 * j) + 1) h;
    t.count <- t.count + 1;
    true
  end

let add_copy = add

let cardinal t = t.count

let fold f t init =
  let arena = t.arena in
  let acc = ref init in
  let o = ref 0 in
  while !o < t.arena_n do
    let n = arena.(!o) in
    let row = Array.make n 0 in
    for i = 0 to n - 1 do
      Array.unsafe_set row i (Array.unsafe_get arena (!o + 1 + i))
    done;
    acc := f row !acc;
    o := !o + 1 + n
  done;
  !acc

let iter f t = fold (fun row () -> f row) t ()

let elements t = List.rev (fold (fun row acc -> row :: acc) t [])
