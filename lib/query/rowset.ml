(* Dedicated hash structures for dictionary-encoded result rows.

   Result deduplication used to key generic Hashtbls by
   [Array.to_list row]: one list allocation per probe plus the
   polymorphic hash walking boxed cons cells.  [Tbl] hashes the int
   array directly (FNV-1a over the elements, the same scheme as
   Rdf.Term.hash) and compares element-wise, so membership probes
   allocate nothing.

   The set type [t] goes further: rows live packed in one int arena
   ([len; elems...] records), and the open-addressed slot arrays (linear
   probing, power-of-two capacity, load factor 1/2) hold only the
   arena offset and the cached hash.  An insert is a single probe
   sequence plus a sequential arena append — no per-row allocation, no
   pointer chasing, nothing new for the GC to scan — where the
   mem-then-add double hashing of the Hashtbl route cost about as much
   as the whole join underneath it in the evaluator's emit path.
   Iteration follows arena (insertion) order, so result enumeration is
   deterministic. *)

module Key = struct
  type t = int array

  (* Hot path of every result-set insert: indices below are bounded by
     [Array.length] reads just above, so the checked accesses would be
     pure overhead. *)
  let equal (a : int array) (b : int array) =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i =
      i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
    in
    go 0

  let hash (a : int array) =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length a - 1 do
      h := (!h lxor Array.unsafe_get a i) * 0x01000193 land max_int
    done;
    !h
end

module Tbl = Hashtbl.Make (Key)

(* ---------- 64-bit key packing ------------------------------------------

   Dictionary codes are small: a row of w narrow columns usually fits
   in one 62-bit word at [62 / w] bits per column.  When it does, the
   whole row is hashed with a single multiply-xor mix of the packed
   word instead of a w-step FNV loop — one multiplication per dedup
   probe, and the packed compare in the fit check doubles as a cheap
   prefilter.  The mode is chosen per set on first insert and sticks,
   because the open-addressed slots cache row hashes: if a row ever
   fails the fit check (a code too wide, or a different width), the
   set demotes to FNV by rebuilding its index once.  Sets adopted via
   {!copy}/{!absorb} rebuild as FNV too. *)

let packing_enabled = Atomic.make true
let set_key_packing b = Atomic.set packing_enabled b
let key_packing () = Atomic.get packing_enabled

(* Bits per column for width [w]; 0 = don't pack (too many columns for
   a useful per-column range). *)
let choose_bits w = if w >= 1 && w <= 7 then 62 / w else 0

(* Finalizing mix of the packed word (splitmix-style): multiplication
   spreads the low-entropy column bits across the word, the xor-shift
   folds the high half back down for the low slot-index bits. *)
let mix k =
  let h = k * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 31)) land max_int

(* Packed word of [row] at [bits] per column, or [-1] when some
   element does not fit (negative or >= 2^bits). *)
let packed_key_row (row : int array) bits =
  let w = Array.length row in
  let lim = 1 lsl bits in
  let rec go c k =
    if c >= w then k
    else
      let v = Array.unsafe_get row c in
      if v < 0 || v >= lim then -1 else go (c + 1) ((k lsl bits) lor v)
  in
  go 0 0

type t = {
  mutable slots : int array;
      (* interleaved pairs: slot j is [slots.(2j)] = arena offset + 1
         (0 = free) and [slots.(2j + 1)] = the cached row hash, so one
         probe touches one cache line *)
  mutable mask : int;
      (* slot capacity - 1; capacity is 2^k.  [-1] = index absent (a
         set adopted by {!absorb} copies only the arena; the index is
         rebuilt lazily on the first probe, so read-only consumers —
         [elements], [cardinal], [fold] — never pay for it) *)
  mutable count : int;
  mutable arena : int array;  (* rows, packed as consecutive [len; elems...] records *)
  mutable arena_n : int;  (* used prefix of [arena] *)
  mutable pack_bits : int;
      (* hashing mode, fixed while the slot index lives (slots cache
         hashes): [0] = undecided (nothing inserted yet), [-1] = FNV-1a
         over the elements, [b > 0] = rows of width [pack_width] packed
         into one word at [b] bits per column and mixed *)
  mutable pack_width : int;
}

let create n =
  let rec pow2 c = if c >= n * 2 || c >= Sys.max_array_length / 4 then c else pow2 (c * 2) in
  let cap = pow2 16 in
  {
    slots = Array.make (2 * cap) 0;
    mask = cap - 1;
    count = 0;
    arena = Array.make (max 64 (4 * n)) 0;
    arena_n = 0;
    pack_bits = 0;
    pack_width = 0;
  }

(* Row at arena offset [o] (its length word) equals [row]?  Arena
   offsets only ever come from [slots], so they are in bounds by
   construction; unchecked reads keep the probe loop tight. *)
let arena_equal (arena : int array) o (row : int array) =
  let n = Array.length row in
  Array.unsafe_get arena o = n
  &&
  let rec go i =
    i >= n
    || Array.unsafe_get arena (o + 1 + i) = Array.unsafe_get row i
       && go (i + 1)
  in
  go 0

(* Index of the slot holding a row equal to [row] (hash [h]), or of the
   free slot where it would go.  Load factor < 1/2, so this terminates;
   the index is masked, so it is always valid. *)
let find_slot t h row =
  let slots = t.slots and arena = t.arena in
  let mask = t.mask in
  let rec go i =
    let j = (h + i) land mask in
    let off = Array.unsafe_get slots (2 * j) in
    if
      off = 0
      || Array.unsafe_get slots ((2 * j) + 1) = h
         && arena_equal arena (off - 1) row
    then j
    else go (i + 1)
  in
  go 0

(* Growing the slot array replays (offset, hash) pairs against the
   new mask — the arena itself is never touched or rewritten.  Growth
   is 4x so a set that starts small reaches its working size in few
   replays (the replay writes are random-access, the expensive part of
   an insert). *)
let grow_slots t =
  let old = t.slots in
  let cap = 4 * (t.mask + 1) in
  let slots = Array.make (2 * cap) 0 in
  let mask = cap - 1 in
  t.slots <- slots;
  t.mask <- mask;
  let n = Array.length old / 2 in
  for j = 0 to n - 1 do
    let off = old.(2 * j) in
    if off > 0 then begin
      let h = old.((2 * j) + 1) in
      let rec free i =
        let k = (h + i) land mask in
        if slots.(2 * k) = 0 then k else free (i + 1)
      in
      let k = free 0 in
      slots.(2 * k) <- off;
      slots.((2 * k) + 1) <- h
    end
  done

(* Rebuild the slot index from the arena: hash each packed row and
   place it in the first free slot — arena rows are distinct by
   construction, so no equality checks are needed.  Only sets adopted
   via {!absorb} arrive here, and only when they are subsequently
   probed or extended. *)
let rebuild_index t =
  let rec pow2 c =
    if c >= t.count * 2 || c >= Sys.max_array_length / 4 then c else pow2 (c * 2)
  in
  let cap = pow2 16 in
  let slots = Array.make (2 * cap) 0 in
  let mask = cap - 1 in
  let arena = t.arena in
  let o = ref 0 in
  while !o < t.arena_n do
    let n = Array.unsafe_get arena !o in
    let h = ref 0x811c9dc5 in
    for i = 0 to n - 1 do
      h := (!h lxor Array.unsafe_get arena (!o + 1 + i)) * 0x01000193 land max_int
    done;
    let h = !h in
    let rec free i =
      let k = (h + i) land mask in
      if Array.unsafe_get slots (2 * k) = 0 then k else free (i + 1)
    in
    let k = free 0 in
    Array.unsafe_set slots (2 * k) (!o + 1);
    Array.unsafe_set slots ((2 * k) + 1) h;
    o := !o + 1 + n
  done;
  t.slots <- slots;
  t.mask <- mask;
  (* the rebuilt slots cache FNV hashes *)
  t.pack_bits <- -1

let ensure_index t = if t.mask < 0 then rebuild_index t

(* Abandon packed hashing: every cached slot hash is stale, so the
   index is rebuilt (FNV) from the arena.  At most once per set. *)
let demote t = rebuild_index t

let ensure_arena t extra =
  let need = t.arena_n + extra in
  if need > Array.length t.arena then begin
    let arena = Array.make (max need (2 * Array.length t.arena)) 0 in
    Array.blit t.arena 0 arena 0 t.arena_n;
    t.arena <- arena
  end

let mem t row =
  ensure_index t;
  if t.pack_bits > 0 then
    if Array.length row <> t.pack_width then false
    else begin
      let k = packed_key_row row t.pack_bits in
      (* a row that does not fit the packing cannot be in the set:
         every stored row passed this check on insert *)
      k >= 0 && t.slots.(2 * find_slot t (mix k) row) > 0
    end
  else t.slots.(2 * find_slot t (Key.hash row) row) > 0

(* Hash of [row] under the set's current mode, deciding the mode on
   the first insert and demoting to FNV when a row does not pack. *)
let insert_hash t row =
  if t.pack_bits = 0 then begin
    t.pack_width <- Array.length row;
    t.pack_bits <-
      (if key_packing () then
         match choose_bits (Array.length row) with 0 -> -1 | b -> b
       else -1)
  end;
  if t.pack_bits > 0 then
    if Array.length row <> t.pack_width then begin
      demote t;
      Key.hash row
    end
    else
      match packed_key_row row t.pack_bits with
      | -1 ->
        demote t;
        Key.hash row
      | k -> mix k
  else Key.hash row

(* The row's elements are copied into the arena, so the caller keeps
   ownership of the array — one scratch buffer may be reused across
   calls. *)
let add t row =
  ensure_index t;
  if 2 * (t.count + 1) > t.mask + 1 then grow_slots t;
  let h = insert_hash t row in
  let j = find_slot t h row in
  if Array.unsafe_get t.slots (2 * j) > 0 then false
  else begin
    let n = Array.length row in
    ensure_arena t (n + 1);
    let arena = t.arena in
    let o = t.arena_n in
    (* manual copy: rows are a handful of ints, below Array.blit's
       call overhead; bounds are guaranteed by [ensure_arena] *)
    Array.unsafe_set arena o n;
    for i = 0 to n - 1 do
      Array.unsafe_set arena (o + 1 + i) (Array.unsafe_get row i)
    done;
    t.arena_n <- o + 1 + n;
    Array.unsafe_set t.slots (2 * j) (o + 1);
    Array.unsafe_set t.slots ((2 * j) + 1) h;
    t.count <- t.count + 1;
    true
  end

let add_copy = add

(* Columnar row at live index [r] of [cols] equals the arena row at
   offset [o]?  Same contract as [arena_equal], reading the candidate
   out of column vectors instead of a scratch row. *)
let arena_equal_cols (arena : int array) o (cols : int array array) r w =
  Array.unsafe_get arena o = w
  &&
  let rec go c =
    c >= w
    || Array.unsafe_get arena (o + 1 + c)
       = Array.unsafe_get (Array.unsafe_get cols c) r
       && go (c + 1)
  in
  go 0

(* Bulk insert of a whole batch: capacity and arena growth are checked
   once for the batch's worst case, then every row goes through a
   single probe sequence hashing and comparing straight out of the
   column vectors — no scratch row is ever materialized.  Returns the
   number of rows that were new. *)
let add_batch t (b : Batch.t) =
  let w = b.Batch.width in
  let m = Batch.live b in
  if m = 0 then 0
  else begin
    ensure_index t;
    while 2 * (t.count + m) > t.mask + 1 do
      grow_slots t
    done;
    ensure_arena t (m * (w + 1));
    let cols = b.Batch.cols in
    let added = ref 0 in
    (* insert row [r] of the batch under hash [h]; shared by both loops *)
    let insert_row slots arena mask r h =
      let rec probe k =
        let j = (h + k) land mask in
        let off = Array.unsafe_get slots (2 * j) in
        if
          off = 0
          || Array.unsafe_get slots ((2 * j) + 1) = h
             && arena_equal_cols arena (off - 1) cols r w
        then j
        else probe (k + 1)
      in
      let j = probe 0 in
      if Array.unsafe_get slots (2 * j) = 0 then begin
        let o = t.arena_n in
        Array.unsafe_set arena o w;
        for c = 0 to w - 1 do
          Array.unsafe_set arena (o + 1 + c)
            (Array.unsafe_get (Array.unsafe_get cols c) r)
        done;
        t.arena_n <- o + 1 + w;
        Array.unsafe_set slots (2 * j) (o + 1);
        Array.unsafe_set slots ((2 * j) + 1) h;
        t.count <- t.count + 1;
        incr added
      end
    in
    if t.pack_bits = 0 then begin
      t.pack_width <- w;
      t.pack_bits <-
        (if key_packing () then match choose_bits w with 0 -> -1 | bb -> bb
         else -1)
    end
    else if t.pack_bits > 0 && w <> t.pack_width then demote t;
    let i = ref 0 in
    if t.pack_bits > 0 then begin
      (* packed fast loop: one multiply-mix per row, straight out of
         the column vectors; the first non-fitting row demotes the set
         and hands the tail to the FNV loop below *)
      let bits = t.pack_bits in
      let lim = 1 lsl bits in
      let slots = t.slots and arena = t.arena and mask = t.mask in
      (try
         while !i < m do
           let r = Batch.row_at b !i in
           let k = ref 0 in
           let c = ref 0 in
           while
             !c < w
             &&
             let v = Array.unsafe_get (Array.unsafe_get cols !c) r in
             v >= 0 && v < lim
             && begin
                  k := (!k lsl bits) lor v;
                  true
                end
           do
             incr c
           done;
           if !c < w then raise_notrace Exit;
           insert_row slots arena mask r (mix !k);
           incr i
         done
       with Exit -> demote t)
    end;
    if !i < m then begin
      (* a demotion rebuilds the index sized to the current count only:
         re-provision for the remaining rows *)
      while 2 * (t.count + (m - !i)) > t.mask + 1 do
        grow_slots t
      done;
      let slots = t.slots and arena = t.arena and mask = t.mask in
      while !i < m do
        let r = Batch.row_at b !i in
        let h = ref 0x811c9dc5 in
        for c = 0 to w - 1 do
          h :=
            (!h lxor Array.unsafe_get (Array.unsafe_get cols c) r)
            * 0x01000193 land max_int
        done;
        insert_row slots arena mask r !h;
        incr i
      done
    end;
    !added
  end

let cardinal t = t.count

(* Deep copy: one memcpy of the arena trimmed to its used prefix —
   what the MQO result cache stores.  The slot index is not copied
   (rebuilt lazily if the copy is ever probed or extended), so a copy
   holds exactly its rows and costs exactly one array copy. *)
let copy t =
  {
    slots = [||];
    mask = -1;
    count = t.count;
    arena = Array.sub t.arena 0 t.arena_n;
    arena_n = t.arena_n;
    (* the lazily rebuilt index hashes with FNV *)
    pack_bits = -1;
    pack_width = 0;
  }

(* Replace an EMPTY set's storage with a copy of [src]'s — the
   result-replay fast path.  Only the packed arena is copied (one
   memcpy); the slot index is marked absent and rebuilt lazily if the
   destination is ever probed or extended, so the dominant consumers
   — enumerate-only callers — pay a single arena copy total.  The
   copy keeps [src] immutable under later mutation of the
   destination. *)
let absorb dst src =
  if dst.count <> 0 then invalid_arg "Rowset.absorb: destination not empty";
  dst.slots <- [||];
  dst.mask <- -1;
  dst.count <- src.count;
  dst.arena <- Array.copy src.arena;
  dst.arena_n <- src.arena_n;
  dst.pack_bits <- -1;
  dst.pack_width <- 0

(* Allocated int cells — what the MQO cache budgets by. *)
let words t = Array.length t.slots + Array.length t.arena

let fold f t init =
  let arena = t.arena in
  let acc = ref init in
  let o = ref 0 in
  while !o < t.arena_n do
    let n = arena.(!o) in
    let row = Array.make n 0 in
    for i = 0 to n - 1 do
      Array.unsafe_set row i (Array.unsafe_get arena (!o + 1 + i))
    done;
    acc := f row !acc;
    o := !o + 1 + n
  done;
  !acc

let iter f t = fold (fun row () -> f row) t ()

(* Insertion-order row list.  Collect the arena offsets first, then
   build the list back to front: one cons per row, against the cons +
   full [List.rev] re-cons of the naive fold — this conversion sits on
   the result path of every evaluation. *)
let elements t =
  let offs = Array.make (max t.count 1) 0 in
  let arena = t.arena in
  let o = ref 0 and i = ref 0 in
  while !o < t.arena_n do
    Array.unsafe_set offs !i !o;
    incr i;
    o := !o + 1 + Array.unsafe_get arena !o
  done;
  let acc = ref [] in
  for j = t.count - 1 downto 0 do
    let o = Array.unsafe_get offs j in
    let n = Array.unsafe_get arena o in
    let row = Array.make n 0 in
    for k = 0 to n - 1 do
      Array.unsafe_set row k (Array.unsafe_get arena (o + 1 + k))
    done;
    acc := row :: !acc
  done;
  !acc
