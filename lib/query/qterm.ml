type t =
  | Var of string
  | Cst of Rdf.Term.t

let compare a b =
  match (a, b) with
  | Var x, Var y -> String.compare x y
  | Cst x, Cst y -> Rdf.Term.compare x y
  | Var _, Cst _ -> -1
  | Cst _, Var _ -> 1

let equal a b = compare a b = 0

let var x = Var x
let cst c = Cst c
let uri u = Cst (Rdf.Term.Uri u)

let is_var = function Var _ -> true | Cst _ -> false
let is_cst = function Cst _ -> true | Var _ -> false

let var_name = function Var x -> Some x | Cst _ -> None
let constant = function Cst c -> Some c | Var _ -> None

(* Atomic so parallel search domains can derive transition actions
   concurrently; fresh names stay process-unique (their numbering is
   irrelevant — canonical forms are rename-invariant). *)
let counter = Atomic.make 0

let fresh_var () = Printf.sprintf "_v%d" (Atomic.fetch_and_add counter 1 + 1)

let reset_fresh_counter () = Atomic.set counter 0

let to_string = function
  | Var x -> "?" ^ x
  | Cst c -> Rdf.Term.to_string c

let pp fmt t = Format.pp_print_string fmt (to_string t)
