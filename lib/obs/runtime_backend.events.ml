(* lint: allow missing-mli — select-rule source; copied to runtime_backend.ml
   when the [runtime_events] library is present (OCaml 5.x builds).

   Self-monitoring [Runtime_events] consumer: [start] turns event
   collection on and opens a cursor over this process's own ring
   buffers; each [poll] drains pending events and folds them into the
   caller's [callbacks].  GC pauses are reconstructed by pairing each
   phase's begin/end timestamps per ring buffer (one ring per domain),
   so concurrent domains' collections never splice into each other.

   This module deliberately knows nothing of Obs — the dependency runs
   the other way (Obs.Runtime drives it), which is what lets dune's
   (select) swap in the no-op twin without a cycle. *)

type pause_kind = Minor | Major | Compact

type lifecycle_kind = Spawn | Terminate

type callbacks = {
  on_pause : pause_kind -> int -> unit;
  on_counter : string -> int -> unit;
  on_lifecycle : lifecycle_kind -> unit;
  on_lost : int -> unit;
}

let available = true

(* Consumer state, shared between whoever calls [start]/[poll] (the
   telemetry exporter's ticker thread and the main thread both do). *)
let lock = Multicore.Spinlock.create ()

let cursor : Runtime_events.cursor option ref = ref None [@@guarded_by "lock"]

(* In-flight phase begin-timestamps, keyed by (ring id, phase tag): a
   phase's end event on ring r closes the begin event on the same ring. *)
let starts : (int, int64) Hashtbl.t = Hashtbl.create 16 [@@guarded_by "lock"]

(* Only the coarse phases become pause samples: the nested sub-phases
   (mark, sweep, roots, ...) are contained in them and would double
   count. *)
let phase_tag = function
  | Runtime_events.EV_MINOR -> Some (0, Minor)
  | Runtime_events.EV_MAJOR -> Some (1, Major)
  | Runtime_events.EV_EXPLICIT_GC_COMPACT -> Some (2, Compact)
  | _ -> None

let counter_key = function
  | Runtime_events.EV_C_MINOR_PROMOTED -> Some "minor_promoted_words"
  | Runtime_events.EV_C_MINOR_ALLOCATED -> Some "minor_allocated_words"
  | _ -> None

let start () =
  Multicore.Spinlock.with_lock lock (fun () ->
      match !cursor with
      | Some _ -> true
      | None -> (
        (* [Runtime_events.start] creates a <pid>.events ring file in
           the current directory (or $OCAML_RUNTIME_EVENTS_DIR); the
           runtime unlinks it again on normal exit. *)
        match
          Runtime_events.start ();
          Runtime_events.create_cursor None
        with
        | c ->
          cursor := Some c;
          true
        | exception (Failure _ | Sys_error _) -> false))

let poll cb =
  Multicore.Spinlock.with_lock lock (fun () ->
      match !cursor with
      | None -> 0
      | Some c ->
        let runtime_begin ring ts phase =
          match phase_tag phase with
          | Some (tag, _) ->
            Hashtbl.replace starts
              ((ring lsl 2) lor tag)
              (Runtime_events.Timestamp.to_int64 ts)
          | None -> ()
        in
        let runtime_end ring ts phase =
          match phase_tag phase with
          | Some (tag, kind) -> (
            let key = (ring lsl 2) lor tag in
            match Hashtbl.find_opt starts key with
            | Some t0 ->
              Hashtbl.remove starts key;
              let dt =
                Int64.to_int
                  (Int64.sub (Runtime_events.Timestamp.to_int64 ts) t0)
              in
              cb.on_pause kind (if dt < 0 then 0 else dt)
            | None -> () (* end without begin: cursor opened mid-phase *))
          | None -> ()
        in
        let runtime_counter _ring _ts kind v =
          match counter_key kind with
          | Some key -> cb.on_counter key v
          | None -> ()
        in
        let lifecycle _ring _ts kind _data =
          match kind with
          | Runtime_events.EV_DOMAIN_SPAWN -> cb.on_lifecycle Spawn
          | Runtime_events.EV_DOMAIN_TERMINATE -> cb.on_lifecycle Terminate
          | _ -> ()
        in
        let lost_events _ring n = cb.on_lost n in
        Runtime_events.read_poll c
          (Runtime_events.Callbacks.create ~runtime_begin ~runtime_end
             ~runtime_counter ~lifecycle ~lost_events ())
          None)
