(** Run-level observability: named counters, monotonic timers and nested
    trace spans, gathered in a registry that serializes to JSON.

    The library is the substrate for the paper-style search telemetry
    (states created / duplicates / time-to-best-cost, §6) and for
    profiling the hot layers ([Transition], [Search], [Cost],
    [Rdf.Store], [Query.Evaluation]).  Design constraints:

    {ul
    {- {b near-zero cost when disabled} — a sink is either [disabled] (a
       no-op: incrementing a counter is one predictable branch, timing a
       function is a single [if]) or an enabled registry.  The sink in
       effect is selected once at startup via {!set_global};}
    {- {b cheap when enabled} — hot paths hold direct handles to mutable
       counter/timer records instead of hashing names per event; use
       {!cached_counter}/{!cached_timer} for module-level handles that
       re-resolve only when the global sink changes;}
    {- {b deterministic accounting} — counters and span nesting are
       exact; only timer values depend on the clock.}} *)

(** {1 Sinks} *)

type t
(** A metrics sink: either disabled or an enabled registry. *)

val disabled : t
(** The no-op sink: every operation on handles derived from it does
    (almost) nothing and allocates nothing. *)

val create : unit -> t
(** A fresh enabled registry.  Span timestamps are relative to the
    moment of creation. *)

val is_enabled : t -> bool

val reset : t -> unit
(** Zero all counters and timers and drop recorded spans.  No-op on
    [disabled]. *)

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** The counter registered under the given name, created at zero on
    first use.  On a disabled sink, returns the shared no-op counter. *)

val incr : counter -> unit

val add : counter -> int -> unit

val value : counter -> int
(** Current count; [0] for the no-op counter. *)

(** {1 Timers}

    A timer accumulates total elapsed monotonic nanoseconds and the
    number of timed calls. *)

type timer

val timer : t -> string -> timer

val time : timer -> (unit -> 'a) -> 'a
(** [time tm f] runs [f], adding its elapsed time to [tm] (also when
    [f] raises).  On the no-op timer this is just [f ()]. *)

val timer_ns : timer -> int
(** Accumulated nanoseconds; [0] for the no-op timer. *)

val timer_count : timer -> int
(** Number of completed [time] calls. *)

(** {1 Spans}

    Spans are begin/end trace events with nesting, for coarse phases
    (one per benchmark experiment, one per search run): each completed
    span records its name, depth, start offset and duration. *)

type span_event = {
  span_name : string;
  depth : int;           (** 0 = top level *)
  start_ns : int;        (** offset from registry creation *)
  elapsed_ns : int;
}

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a span (recorded also when [f]
    raises).  On a disabled sink this is just [f ()]. *)

val spans : t -> span_event list
(** Completed spans in chronological order of their start. *)

(** {1 Reading a registry} *)

val counters : t -> (string * int) list
(** All registered counters, sorted by name. *)

val timers : t -> (string * (int * int)) list
(** All registered timers as [(name, (count, total_ns))], sorted by
    name. *)

val find_counter : t -> string -> int option
(** The value of a counter, [None] if never registered. *)

(** {1 The global sink}

    Instrumented modules report to an ambient sink, [disabled] unless
    the entry point (CLI, bench harness, test) installs a registry. *)

val set_global : t -> unit
val global : unit -> t

val generation : unit -> int
(** Bumped on every {!set_global}; lets cached handles detect sink
    changes. *)

val cached_counter : string -> unit -> counter
(** [cached_counter name] returns a thunk resolving the counter [name]
    against the {e current} global sink, memoized until the sink
    changes.  Bind it at module level; call the thunk at the use
    site. *)

val cached_timer : string -> unit -> timer
(** Same memoization for timers. *)

(** {1 JSON} *)

(** A minimal JSON tree — enough to serialize a registry and to parse
    it back (round-trip tested); no external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : ?indent:bool -> t -> string

  exception Parse_error of string

  val of_string : string -> t
  (** Inverse of {!to_string}.  @raise Parse_error on malformed input. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] otherwise. *)
end

val to_json : t -> Json.t
(** Serialize a registry:
    {[ { "schema_version": 1,
         "counters": { name: int, ... },
         "timers":   { name: { "count": int, "total_ns": int }, ... },
         "spans":    [ { "name": string, "depth": int,
                         "start_ns": int, "elapsed_ns": int }, ... ] } ]}
    A disabled sink serializes to the same shape with empty members. *)

val to_string : t -> string
(** [Json.to_string ~indent:true (to_json t)]. *)

val write_file : t -> string -> unit
(** Serialize the registry to a file (trailing newline included). *)
