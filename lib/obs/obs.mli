(** Run-level observability: named counters, monotonic timers, log-bucketed
    histograms, gauges and nested trace spans, gathered in a registry that
    serializes to JSON — plus a streaming per-event search trace
    ({!Trace}) and its offline analyzer ({!Report}).

    The library is the substrate for the paper-style search telemetry
    (states created / duplicates / time-to-best-cost, §6) and for
    profiling the hot layers ([Transition], [Search], [Cost],
    [Rdf.Store], [Query.Evaluation]).  Design constraints:

    {ul
    {- {b near-zero cost when disabled} — a sink is either [disabled] (a
       no-op: incrementing a counter is one predictable branch, timing a
       function is a single [if]) or an enabled registry.  The sink in
       effect is selected once at startup via {!set_global};}
    {- {b cheap when enabled} — hot paths hold direct handles to mutable
       counter/timer records instead of hashing names per event; use
       {!cached_counter}/{!cached_timer} for module-level handles that
       re-resolve only when the global sink changes;}
    {- {b deterministic accounting} — counters and span nesting are
       exact; only timer values depend on the clock.}} *)

val now_ns : unit -> int
(** The monotonic clock, in nanoseconds from an arbitrary origin — the
    clock every timer, histogram and trace timestamp is read from.
    Exposed for call sites that must time a section without allocating
    a closure. *)

(** {1 Sinks} *)

type t
(** A metrics sink: either disabled or an enabled registry. *)

val disabled : t
(** The no-op sink: every operation on handles derived from it does
    (almost) nothing and allocates nothing. *)

val create : unit -> t
(** A fresh enabled registry.  Span timestamps are relative to the
    moment of creation. *)

val is_enabled : t -> bool

val reset : t -> unit
(** Zero all counters, timers and histograms, unset gauges, drop
    recorded spans, re-base the span clock, and zero the span nesting
    depth.  A span still open across the reset is dropped (not
    recorded) when it closes, so reusing one registry across benchmark
    experiments starts each experiment clean.  No-op on [disabled]. *)

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** The counter registered under the given name, created at zero on
    first use.  On a disabled sink, returns the shared no-op counter. *)

val incr : counter -> unit
(** Add one. *)

val add : counter -> int -> unit
(** Add an arbitrary (possibly negative) amount. *)

val value : counter -> int
(** Current count; [0] for the no-op counter. *)

(** {1 Timers}

    A timer accumulates total elapsed monotonic nanoseconds and the
    number of timed calls. *)

type timer

val timer : t -> string -> timer
(** The timer registered under the given name, created at zero on
    first use.  On a disabled sink, returns the shared no-op timer. *)

val time : timer -> (unit -> 'a) -> 'a
(** [time tm f] runs [f], adding its elapsed time to [tm] (also when
    [f] raises).  On the no-op timer this is just [f ()]. *)

val timer_ns : timer -> int
(** Accumulated nanoseconds; [0] for the no-op timer. *)

val timer_count : timer -> int
(** Number of completed [time] calls. *)

(** {1 Histograms}

    Log-bucketed distribution of integer samples (latencies in ns,
    sizes): bucket 0 holds non-positive samples, bucket [i >= 1] holds
    samples in [[2^(i-1), 2^i)].  64 buckets cover the whole [int]
    range, so recording never branches on overflow.  Percentiles are
    bucket-resolution approximations (within a factor of ~1.5). *)

type histogram

val histogram : t -> string -> histogram
(** The histogram registered under the given name; the shared no-op
    histogram on a disabled sink. *)

val histogram_live : histogram -> bool
(** [false] exactly for the no-op histogram — lets a hot path skip
    reading the clock when nobody will see the sample. *)

val observe : histogram -> int -> unit
(** Record one sample.  No-op (and allocation-free) on the no-op
    histogram. *)

val histogram_count : histogram -> int
(** Number of recorded samples. *)

val histogram_sum : histogram -> int
(** Sum of all recorded samples. *)

val percentile : histogram -> float -> float
(** [percentile h q] for [q] in [0..100]: the representative value of
    the bucket holding the ⌈q/100·count⌉-th smallest sample; [nan]
    when empty. *)

val bucket_of_sample : int -> int
(** The bucket index a sample lands in (exposed for tests). *)

val bucket_representative : int -> float
(** The representative sample of a bucket: 0 for bucket 0, the
    geometric middle of [[2^(i-1), 2^i)] otherwise. *)

val time_with : timer -> histogram -> (unit -> 'a) -> 'a
(** [time_with tm h f] runs [f], feeding its elapsed nanoseconds to
    both the timer (mean) and the histogram (distribution) from a
    single clock-pair.  Just [f ()] when both handles are no-ops. *)

(** {1 Gauges}

    A gauge holds the last value set — for end-of-run point facts
    (best cost, peak heap words) that are not sums. *)

type gauge

val gauge : t -> string -> gauge
(** The gauge registered under the given name, created unset on first
    use.  On a disabled sink, returns the shared no-op gauge. *)

val set_gauge : gauge -> float -> unit
(** Overwrite the gauge's value (last write wins). *)

val gauge_value : gauge -> float option
(** [None] until the first {!set_gauge} (and always for the no-op
    gauge). *)

(** {1 Spans}

    Spans are begin/end trace events with nesting, for coarse phases
    (one per benchmark experiment, one per search run): each completed
    span records its name, depth, start offset and duration. *)

type span_event = {
  span_name : string;
  depth : int;           (** 0 = top level *)
  start_ns : int;        (** offset from registry creation *)
  elapsed_ns : int;
}

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a span (recorded also when [f]
    raises).  On a disabled sink this is just [f ()].  A span crossing
    a {!reset} is dropped. *)

val spans : t -> span_event list
(** Completed spans in chronological order of their start. *)

(** {1 Reading a registry} *)

val counters : t -> (string * int) list
(** All registered counters, sorted by name. *)

val timers : t -> (string * (int * int)) list
(** All registered timers as [(name, (count, total_ns))], sorted by
    name. *)

val histograms : t -> (string * histogram) list
(** All registered histograms, sorted by name. *)

val gauges : t -> (string * float) list
(** All {e set} gauges, sorted by name. *)

val find_counter : t -> string -> int option
(** The value of a counter, [None] if never registered. *)

val find_timer : t -> string -> (int * int) option
(** A timer as [(count, total_ns)], [None] if never registered. *)

val find_histogram : t -> string -> histogram option

val find_gauge : t -> string -> float option
(** The value of a gauge, [None] if never registered or never set. *)

(** {1 Merging registries} *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] folds [src]'s contents into [into]: counters,
    timer totals/call counts and histogram buckets are summed; a gauge
    set in [src] is copied only where [into] has not set it (the
    destination — typically the coordinating domain of a parallel
    search — stays authoritative); spans are appended with start
    offsets rebased onto [into]'s clock origin.  Both registries must
    be quiescent: call this after joining the domain that owned [src].
    A [Disabled] sink on either side makes this a no-op. *)

(** {1 The global sink}

    Instrumented modules report to an ambient sink, [disabled] unless
    the entry point (CLI, bench harness, test) installs a registry.

    The ambient sink is {e domain-local}: a freshly spawned domain
    starts disabled and may install its own registry without racing
    the spawner's.  Per-domain registries are combined afterwards with
    {!merge_into}. *)

val set_global : t -> unit
(** Install the registry as the calling domain's ambient sink and bump
    that domain's {!generation}. *)

val global : unit -> t
(** The calling domain's ambient sink; {!disabled} until the first
    {!set_global} in this domain. *)

val generation : unit -> int
(** Bumped on every {!set_global} in the calling domain; lets cached
    handles detect sink changes. *)

val cached_counter : string -> unit -> counter
(** [cached_counter name] returns a thunk resolving the counter [name]
    against the {e current} global sink, memoized until the sink
    changes.  Bind it at module level; call the thunk at the use
    site. *)

val cached_timer : string -> unit -> timer
(** Same memoization for timers. *)

val cached_histogram : string -> unit -> histogram
(** Same memoization for histograms. *)

val cached_gauge : string -> unit -> gauge
(** Same memoization for gauges. *)

(** {1 JSON} *)

(** A minimal JSON tree — enough to serialize a registry and to parse
    it back (round-trip tested); no external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : ?indent:bool -> t -> string
  (** Non-finite floats (NaN, ±∞) serialize as [null] — JSON has no
      literal for them and the output must always re-parse. *)

  exception Parse_error of string

  val of_string : string -> t
  (** Inverse of {!to_string}.  @raise Parse_error on malformed input. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] otherwise. *)
end

val to_json : t -> Json.t
(** Serialize a registry:
    {[ { "schema_version": 2,
         "counters":   { name: int, ... },
         "timers":     { name: { "count": int, "total_ns": int }, ... },
         "histograms": { name: { "count": int, "total": int,
                                 "p50": num, "p90": num, "p99": num }, ... },
         "gauges":     { name: float, ... },
         "spans":      [ { "name": string, "depth": int,
                           "start_ns": int, "elapsed_ns": int }, ... ] } ]}
    A disabled sink serializes to the same shape with empty members.
    Version history: 1 = counters/timers/spans only; 2 adds
    "histograms" and "gauges". *)

val to_string : t -> string
(** [Json.to_string ~indent:true (to_json t)]. *)

val write_file : t -> string -> unit
(** Serialize the registry to a file (trailing newline included). *)

(** {1 Live runtime telemetry}

    Folds the OCaml runtime's own event stream — GC pause begin/end
    pairs, allocation counters, domain lifecycle — into a registry, via
    a self-monitoring [Runtime_events] cursor.  Version-gated like
    [Multicore]: on OCaml 4.x (no [runtime_events] library) dune
    selects a no-op backend, {!Runtime.available} is [false] and every
    call degrades gracefully.

    Metric names fed into the registry:
    {ul
    {- histograms [runtime.gc.minor.pause_ns], [runtime.gc.major.pause_ns],
       [runtime.gc.compact.pause_ns];}
    {- counters [runtime.gc.minor.collections], [runtime.gc.major.collections],
       [runtime.gc.compactions], [runtime.gc.minor_promoted_words],
       [runtime.gc.minor_allocated_words], [runtime.domain.spawns],
       [runtime.domain.terminations], [runtime.events.lost];}
    {- gauge [runtime.gc.max_pause_ns].}} *)
module Runtime : sig
  val available : bool
  (** [true] exactly when this build links the real [Runtime_events]
      consumer (OCaml 5.x). *)

  val start : unit -> bool
  (** Turn runtime-event collection on and open a cursor over this
      process's own ring buffers.  Idempotent.  Returns [false] (and
      stays inert) when {!available} is [false] or the cursor cannot be
      created.  Creates a [<pid>.events] ring file in the working
      directory (or [$OCAML_RUNTIME_EVENTS_DIR]); the runtime removes
      it on normal exit. *)

  val active : unit -> bool
  (** [true] after a successful {!start}. *)

  val poll : t -> int
  (** Drain pending runtime events into the given registry and return
      how many events were consumed.  [0] on a disabled sink or before
      {!start}.  Thread-safe: concurrent polls serialize on an internal
      lock, so the exporter's ticker and the main thread may both
      call it. *)
end

(** {1 Snapshots and Prometheus exposition}

    The scrapeable surface: point-in-time registry snapshots, a bounded
    ring of them, a Prometheus text-format renderer/parser, and a
    periodic file exporter (the [--telemetry FILE] flag).  The renderer
    is pure and reusable — a future [rdfviews serve] daemon can feed
    its [/metrics] endpoint from {!Export.exposition} directly. *)
module Export : sig
  (** A histogram's frozen contents: raw log-buckets (see
      {!bucket_of_sample}), sample count and sum. *)
  type hist_snap = { hsn_buckets : int array; hsn_count : int; hsn_sum : int }

  (** A deep copy of a registry's contents at one instant. *)
  type snapshot = {
    snap_unix_s : float;  (** [Unix.gettimeofday] at capture *)
    snap_counters : (string * int) list;
    snap_timers : (string * (int * int)) list;  (** (calls, total_ns) *)
    snap_gauges : (string * float) list;
    snap_histograms : (string * hist_snap) list;
  }

  val snapshot : t -> snapshot
  (** Capture the registry.  Safe against same-domain concurrent
      mutation (the exporter ticker is a systhread of the installing
      domain); consistency across series is advisory, not
      transactional. *)

  (** {2 Bounded snapshot ring} *)

  type ring
  (** A fixed-capacity ring of the most recent snapshots; pushing into
      a full ring overwrites the oldest.  All operations are
      thread-safe. *)

  val ring_create : int -> ring
  (** [ring_create capacity] (clamped to at least 1). *)

  val ring_capacity : ring -> int

  val ring_length : ring -> int
  (** Snapshots currently held, [<= capacity]. *)

  val ring_push : ring -> snapshot -> unit

  val ring_to_list : ring -> snapshot list
  (** Held snapshots, oldest first. *)

  (** {2 Prometheus text exposition} *)

  val exposition_of_snapshot : snapshot -> string
  (** Render a snapshot in Prometheus text format.  Name mangling:
      [search.expand.ns] becomes [rdfviews_search_expand_ns]; counters
      get a [_total] suffix; a timer becomes two counters
      ([_ns_total], [_calls_total]); histograms render cumulative
      [_bucket{le="..."}] series (le boundaries are the log-bucket
      powers of two) plus [_sum]/[_count].  A
      [parallel.domain.<i>.<rest>] series becomes
      [rdfviews_parallel_<rest>] with a [domain="<i>"] label, so all
      domains of one quantity form one family. *)

  val exposition : t -> string
  (** [exposition_of_snapshot (snapshot t)]. *)

  (** {2 Parsing an exposition} *)

  type sample = {
    s_name : string;  (** full series name, suffixes included *)
    s_labels : (string * string) list;
    s_value : float;
  }

  type family = {
    f_name : string;  (** family base name from the HELP/TYPE comments *)
    f_type : string;  (** ["counter"], ["gauge"], ["histogram"] or ["untyped"] *)
    f_help : string;
    f_samples : sample list;  (** in file order *)
  }

  exception Bad_exposition of string

  val parse_exposition : string -> family list
  (** Parse Prometheus text format (enough of it to read
      {!exposition_of_snapshot}'s output and ordinary hand-written
      files).  Samples whose name extends a declared family's name
      attach to that family; stray samples form their own [untyped]
      family.  @raise Bad_exposition on a malformed sample line. *)

  val looks_like_exposition : string -> bool
  (** Cheap sniff: does the first non-blank line open with
      [# HELP]/[# TYPE]?  Used by [rdfviews report] to autodetect
      telemetry snapshot files. *)

  val find_family : family list -> string -> family option

  val sample_value :
    ?labels:(string * string) list -> family list -> string -> float option
  (** First sample with the given full series name whose labels include
      all of [labels]. *)

  (** {2 The periodic exporter} *)

  type exporter
  (** A ticker thread snapshotting a registry every interval: drains
      {!Runtime} events into it, pushes the snapshot onto a ring and
      atomically rewrites the exposition file (tmp + rename). *)

  val default_ring_capacity : int

  val start :
    ?ring_capacity:int ->
    interval:float ->
    path:string ->
    (unit -> t) ->
    exporter
  (** [start ~interval ~path source] writes once synchronously (so the
      file exists, or the path error raises here) and then ticks every
      [interval] seconds (clamped to at least 1ms) until {!stop}.
      [source] is re-read on every tick, so it follows registry swaps
      ([Obs.set_global]) within the installing domain.  Write failures
      after the first are counted, not raised. *)

  val stop : exporter -> unit
  (** Stop the ticker, join it, and write one final snapshot so the
      file reflects the end-of-run registry.  Idempotent. *)

  val exporter_ring : exporter -> ring

  val exporter_ticks : exporter -> int
  (** Completed periodic ticks (the synchronous first write and the
      final {!stop} write are not counted). *)

  val exporter_write_errors : exporter -> int

  val exporter_path : exporter -> string

  val exporter_interval : exporter -> float
end

(** {1 Streaming search traces}

    An event-sourced record of one search: every state decision,
    per-expand transition batch, cost-memo sample and progress
    heartbeat is appended as one JSON line to a trace file.  The
    writer buffers whole lines and flushes line-aligned, so a crashed
    run leaves a file that is valid JSONL up to the last flush
    ([run_end] and [heartbeat] force a flush).  [rdfviews report]
    replays a trace offline into the paper's §6 quantities. *)
module Trace : sig
  val schema_version : int
  (** Version written in the leading [meta] event (currently 1). *)

  (** How the search classified a candidate state. *)
  type state_class = Accepted | Discarded | Duplicate | Reopened

  val class_name : state_class -> string
  val class_of_name : string -> state_class option

  type t
  (** A trace sink: either off or an open streaming writer. *)

  val disabled : t
  (** The off sink; every emitter returns immediately without
      allocating. *)

  val is_enabled : t -> bool

  val create : ?buffer_bytes:int -> string -> t
  (** [create path] opens a streaming writer (truncating [path]) and
      emits the [meta] schema event.  [buffer_bytes] (default 64 KiB)
      is the flush threshold. *)

  val flush : t -> unit
  (** Force buffered events to the file (line-aligned). *)

  val close : t -> unit
  (** Flush and close.  Idempotent; emitters on a closed trace are
      no-ops. *)

  val event_count : t -> int
  (** Events emitted so far (including [meta]); [0] when off. *)

  (** {2 Emitters}

      Plain calls that return immediately on the off sink — they sit
      on the search's hot path and must not allocate when tracing is
      disabled. *)

  val run_start :
    t -> strategy:string -> strata:string array -> initial_cost:float -> unit
  (** [strata] names stratum indices (e.g. [|"VB";"SC";"JC";"VF"|]) so
      later [state] events' integer [stratum] fields can be labeled by
      an analyzer that knows nothing of [Core.Transition]. *)

  val run_end :
    t ->
    best_cost:float ->
    created:int ->
    explored:int ->
    duplicates:int ->
    discarded:int ->
    completed:bool ->
    unit
  (** Authoritative end-of-run totals; forces a flush. *)

  val state : t -> cls:state_class -> id:int -> stratum:int -> cost:float -> unit
  (** One candidate-state decision.  [id] is the running created-states
      count (0 = the initial state); pass [Float.nan] as [cost] for
      classes where no cost was computed — it serializes as [null]. *)

  val transition : t -> kind:string -> applied:int -> rejected:int -> elapsed_ns:int -> unit
  (** One per transition kind per expand: how many successors the kind
      produced / rejected and how long generation took. *)

  val cost_memo : t -> hits:int -> misses:int -> unit
  (** Sampled cumulative cost-memo totals. *)

  val heartbeat :
    t -> created:int -> explored:int -> best_cost:float -> elapsed_ns:int -> unit
  (** Periodic progress marker; forces a flush, bounding how much a
      crash can lose. *)

  (** {2 The global trace sink} *)

  val set_global : t -> unit
  val global : unit -> t

  (** {2 Reading} *)

  type event =
    | Meta of { version : int }
    | Run_start of {
        at_ns : int;
        strategy : string;
        strata : string array;
        initial_cost : float;
      }
    | Run_end of {
        at_ns : int;
        best_cost : float;
        created : int;
        explored : int;
        duplicates : int;
        discarded : int;
        completed : bool;
      }
    | State of {
        at_ns : int;
        cls : state_class;
        id : int;
        stratum : int;
        cost : float option;
      }
    | Transition of {
        at_ns : int;
        kind : string;
        applied : int;
        rejected : int;
        elapsed_ns : int;
      }
    | Cost_memo of { at_ns : int; hits : int; misses : int }
    | Heartbeat of {
        at_ns : int;
        created : int;
        explored : int;
        best_cost : float;
        elapsed_ns : int;
      }

  exception Malformed of string

  val parse_lines : string -> event list
  (** Parse JSONL trace text.  Unknown event kinds are skipped (forward
      compatibility); a malformed {e last} line is tolerated (a crash
      can truncate the final write mid-line); a malformed line anywhere
      else raises {!Malformed}. *)

  val read_file : string -> event list
end

(** {1 Offline trace analysis}

    Turns a {!Trace} event stream (or, degraded, a [--metrics]
    registry dump) into the run summary behind [rdfviews report]:
    convergence curve, per-transition acceptance, stratum population,
    time-to-within-x%.  Pure — rendering returns a string; printing is
    the caller's business. *)
module Report : sig
  type kind_row = {
    kind : string;         (** transition kind / stratum label *)
    applied : int;
    rejected : int;
    created_k : int;       (** states created in this stratum *)
    accepted_k : int;
    reopened_k : int;
    duplicates_k : int;
    discarded_k : int;
    time_ns : int;         (** total successor-generation time *)
  }

  type summary = {
    source : string;  (** ["trace"] or ["metrics"] *)
    strategy : string option;
    initial_cost : float option;
    final_cost : float option;
    created : int;
    explored : int;
    duplicates : int;
    discarded : int;
    accepted : int;
    reopened : int;
    completed : bool option;
    wall_ns : int option;
    convergence : (int * int * float) list;
        (** (at_ns, states created so far, new best cost), oldest
            first; empty for metrics-dump input *)
    kinds : kind_row list;
    memo_hits : int;
    memo_misses : int;
  }

  val of_trace : Trace.event list -> summary
  (** Replay a trace.  When the trace has a [run_end] event its totals
      are authoritative; otherwise (crashed run) totals are
      reconstructed from the per-event records. *)

  val of_metrics : Json.t -> summary
  (** Degraded summary from a [--metrics] registry dump: totals and
      per-kind counters only, no convergence curve. *)

  val rcr : summary -> float option
  (** Relative cost reduction (initial − final) / initial. *)

  val time_to_within : summary -> float -> (int * int) option
  (** [time_to_within s pct]: the earliest convergence point whose cost
      is ≤ final·(1 + pct/100), as [(at_ns, states created)]. *)

  val render : summary -> string
  (** Human-readable multi-section report (header, convergence table,
      time-to-within table, transition acceptance, stratum
      population). *)

  val render_telemetry : Export.family list -> string
  (** Human-readable live-telemetry summary (the [rdfviews top] view)
      from a parsed Prometheus exposition: GC pause table, domain
      lifecycle, per-domain utilization, and search progress.  Renders
      a placeholder section for whatever families are absent, so it
      works on 4.x expositions with no [runtime_*] series. *)
end
