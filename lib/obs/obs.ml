(* Counters and timers are plain mutable records handed out to call
   sites, so an event on the hot path is a field update — no hashing.
   The [live] flag makes the shared no-op handles safe to use from a
   disabled sink without a branchy API. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

type counter = { mutable n : int; c_live : bool }

type timer = { mutable total_ns : int; mutable calls : int; t_live : bool }

type span_event = {
  span_name : string;
  depth : int;
  start_ns : int;
  elapsed_ns : int;
}

(* Histograms are log-bucketed: bucket 0 holds non-positive samples,
   bucket i >= 1 holds samples in [2^(i-1), 2^i).  64 buckets cover the
   whole int range, so [observe] never branches on overflow. *)
type histogram = {
  buckets : int array;
  mutable events : int;
  mutable sum : int;
  h_live : bool;
}

type gauge = {
  mutable g_value : float;
  mutable g_set : bool;
  g_live : bool;
}

type registry = {
  cs : (string, counter) Hashtbl.t;
  ts : (string, timer) Hashtbl.t;
  hs : (string, histogram) Hashtbl.t;
  gs : (string, gauge) Hashtbl.t;
  mutable trace : span_event list;  (* most recently completed first *)
  mutable span_depth : int;
  mutable born_ns : int;
  mutable epoch : int;  (* bumped by [reset]; open spans check it *)
}

type t = Disabled | Enabled of registry

let disabled = Disabled

let create () =
  Enabled
    {
      cs = Hashtbl.create 64;
      ts = Hashtbl.create 64;
      hs = Hashtbl.create 16;
      gs = Hashtbl.create 16;
      trace = [];
      span_depth = 0;
      born_ns = now_ns ();
      epoch = 0;
    }

let is_enabled = function Disabled -> false | Enabled _ -> true

let reset = function
  | Disabled -> ()
  | Enabled r ->
    Hashtbl.iter (fun _ c -> c.n <- 0) r.cs;
    Hashtbl.iter
      (fun _ tm ->
        tm.total_ns <- 0;
        tm.calls <- 0)
      r.ts;
    Hashtbl.iter
      (fun _ h ->
        Array.fill h.buckets 0 (Array.length h.buckets) 0;
        h.events <- 0;
        h.sum <- 0)
      r.hs;
    Hashtbl.iter (fun _ g -> g.g_set <- false) r.gs;
    r.trace <- [];
    r.span_depth <- 0;
    (* Re-base the span clock and invalidate any span still open across
       the reset: its [Fun.protect] finalizer would otherwise restore a
       stale nesting depth and record a span predating the reset. *)
    r.born_ns <- now_ns ();
    r.epoch <- r.epoch + 1

(* ---------- counters ----------------------------------------------------- *)

let noop_counter = { n = 0; c_live = false }

let counter t name =
  match t with
  | Disabled -> noop_counter
  | Enabled r -> (
    match Hashtbl.find_opt r.cs name with
    | Some c -> c
    | None ->
      let c = { n = 0; c_live = true } in
      Hashtbl.add r.cs name c;
      c)

let incr c = if c.c_live then c.n <- c.n + 1

let add c k = if c.c_live then c.n <- c.n + k

let value c = c.n

(* ---------- timers ------------------------------------------------------- *)

let noop_timer = { total_ns = 0; calls = 0; t_live = false }

let timer t name =
  match t with
  | Disabled -> noop_timer
  | Enabled r -> (
    match Hashtbl.find_opt r.ts name with
    | Some tm -> tm
    | None ->
      let tm = { total_ns = 0; calls = 0; t_live = true } in
      Hashtbl.add r.ts name tm;
      tm)

let time tm f =
  if not tm.t_live then f ()
  else begin
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        tm.total_ns <- tm.total_ns + (now_ns () - t0);
        tm.calls <- tm.calls + 1)
      f
  end

let timer_ns tm = tm.total_ns

let timer_count tm = tm.calls

(* ---------- histograms --------------------------------------------------- *)

let noop_histogram = { buckets = [||]; events = 0; sum = 0; h_live = false }

let histogram t name =
  match t with
  | Disabled -> noop_histogram
  | Enabled r -> (
    match Hashtbl.find_opt r.hs name with
    | Some h -> h
    | None ->
      let h = { buckets = Array.make 64 0; events = 0; sum = 0; h_live = true } in
      Hashtbl.add r.hs name h;
      h)

let histogram_live h = h.h_live

let bucket_of_sample v =
  if v <= 0 then 0
  else begin
    let i = ref 0 in
    let v = ref v in
    while !v > 0 do
      i := !i + 1;
      v := !v lsr 1
    done;
    !i  (* v in [2^(i-1), 2^i), i <= 63 *)
  end

(* The representative sample of a bucket: 0 for the non-positive bucket,
   the geometric middle of [2^(i-1), 2^i) otherwise. *)
let bucket_representative i =
  if i = 0 then 0. else if i = 1 then 1. else Float.ldexp 1.5 (i - 1)

let observe h v =
  if h.h_live then begin
    let b = bucket_of_sample v in
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.events <- h.events + 1;
    h.sum <- h.sum + v
  end

let histogram_count h = h.events

let histogram_sum h = h.sum

(* The q-th percentile (q in [0,100]) as the representative value of the
   bucket holding the ceil(q/100 * events)-th smallest sample; [nan]
   when the histogram is empty. *)
let percentile h q =
  if h.events = 0 then Float.nan
  else begin
    let target =
      Stdlib.max 1 (int_of_float (Float.ceil (q /. 100. *. float_of_int h.events)))
    in
    let rec walk i seen =
      if i >= Array.length h.buckets then bucket_representative (Array.length h.buckets - 1)
      else begin
        let seen = seen + h.buckets.(i) in
        if seen >= target then bucket_representative i else walk (i + 1) seen
      end
    in
    walk 0 0
  end

(* ---------- gauges ------------------------------------------------------- *)

let noop_gauge = { g_value = 0.; g_set = false; g_live = false }

let gauge t name =
  match t with
  | Disabled -> noop_gauge
  | Enabled r -> (
    match Hashtbl.find_opt r.gs name with
    | Some g -> g
    | None ->
      let g = { g_value = 0.; g_set = false; g_live = true } in
      Hashtbl.add r.gs name g;
      g)

let set_gauge g v =
  if g.g_live then begin
    g.g_value <- v;
    g.g_set <- true
  end

let gauge_value g = if g.g_set then Some g.g_value else None

(* ---------- spans -------------------------------------------------------- *)

(* [time] for sections feeding both a mean (timer) and a distribution
   (histogram); the clock is read once per side. *)
let time_with tm h f =
  if not (tm.t_live || h.h_live) then f ()
  else begin
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dt = now_ns () - t0 in
        if tm.t_live then begin
          tm.total_ns <- tm.total_ns + dt;
          tm.calls <- tm.calls + 1
        end;
        observe h dt)
      f
  end

let span t name f =
  match t with
  | Disabled -> f ()
  | Enabled r ->
    let start = now_ns () in
    let depth = r.span_depth in
    let epoch = r.epoch in
    r.span_depth <- depth + 1;
    Fun.protect
      ~finally:(fun () ->
        (* A [reset] issued while this span was open re-based the clock
           and zeroed the depth; restoring ours would leave the depth
           stale for every later span, so the span is simply dropped. *)
        if r.epoch = epoch then begin
          r.span_depth <- depth;
          r.trace <-
            {
              span_name = name;
              depth;
              start_ns = start - r.born_ns;
              elapsed_ns = now_ns () - start;
            }
            :: r.trace
        end)
      f

let spans = function
  | Disabled -> []
  | Enabled r ->
    List.stable_sort
      (fun a b -> Int.compare a.start_ns b.start_ns)
      (List.rev r.trace)

(* ---------- reading ------------------------------------------------------ *)

let sorted_bindings table extract =
  Hashtbl.fold (fun name x acc -> (name, extract x) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters = function
  | Disabled -> []
  | Enabled r -> sorted_bindings r.cs (fun c -> c.n)

let timers = function
  | Disabled -> []
  | Enabled r -> sorted_bindings r.ts (fun tm -> (tm.calls, tm.total_ns))

let histograms = function
  | Disabled -> []
  | Enabled r -> sorted_bindings r.hs (fun h -> h)

let gauges = function
  | Disabled -> []
  | Enabled r ->
    Hashtbl.fold
      (fun name g acc -> if g.g_set then (name, g.g_value) :: acc else acc)
      r.gs []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find_counter t name =
  match t with
  | Disabled -> None
  | Enabled r -> Option.map (fun c -> c.n) (Hashtbl.find_opt r.cs name)

let find_timer t name =
  match t with
  | Disabled -> None
  | Enabled r ->
    Option.map (fun tm -> (tm.calls, tm.total_ns)) (Hashtbl.find_opt r.ts name)

let find_histogram t name =
  match t with Disabled -> None | Enabled r -> Hashtbl.find_opt r.hs name

let find_gauge t name =
  match t with
  | Disabled -> None
  | Enabled r -> Option.bind (Hashtbl.find_opt r.gs name) gauge_value

(* ---------- merging ------------------------------------------------------ *)

(* Fold one registry into another — how per-domain registries from a
   parallel search are combined after the workers have been joined.
   Sums are summed (counters, timer totals and call counts, histogram
   buckets); a gauge travels only into a destination that has not set
   it (the coordinating domain's value is authoritative); spans are
   appended with their start offsets rebased onto the destination's
   clock origin.  Both registries must be quiescent: this runs on the
   joining domain, after the source's owner has terminated. *)
let merge_into ~into src =
  match (into, src) with
  | Disabled, _ | _, Disabled -> ()
  | (Enabled dst_r as dst), Enabled src_r ->
    Hashtbl.iter
      (fun name (c : counter) ->
        let d = counter dst name in
        d.n <- d.n + c.n)
      src_r.cs;
    Hashtbl.iter
      (fun name (tm : timer) ->
        let d = timer dst name in
        d.total_ns <- d.total_ns + tm.total_ns;
        d.calls <- d.calls + tm.calls)
      src_r.ts;
    Hashtbl.iter
      (fun name (h : histogram) ->
        let d = histogram dst name in
        Array.iteri (fun i n -> d.buckets.(i) <- d.buckets.(i) + n) h.buckets;
        d.events <- d.events + h.events;
        d.sum <- d.sum + h.sum)
      src_r.hs;
    Hashtbl.iter
      (fun name (g : gauge) ->
        if g.g_set then begin
          let d = gauge dst name in
          if not d.g_set then set_gauge d g.g_value
        end)
      src_r.gs;
    let shift = src_r.born_ns - dst_r.born_ns in
    dst_r.trace <-
      List.map
        (fun s -> { s with start_ns = s.start_ns + shift })
        src_r.trace
      @ dst_r.trace
[@@coordinator_only]

(* ---------- the global sink ---------------------------------------------- *)

(* The ambient sink and the caches of the [cached_*] handles are
   domain-local: each parallel search domain installs (and later hands
   back) its own registry, so hot-path field updates never race across
   domains.  A freshly spawned domain starts [Disabled] at generation
   0 — with a single domain the behaviour is exactly the old global
   ref's. *)
let global_sink = Multicore.Dls.new_key (fun () -> Disabled)

let global_gen = Multicore.Dls.new_key (fun () -> 0)

let set_global t =
  Multicore.Dls.set global_sink t;
  Multicore.Dls.set global_gen (Multicore.Dls.get global_gen + 1)

let global () = Multicore.Dls.get global_sink

let generation () = Multicore.Dls.get global_gen

(* Each cached handle owns a domain-local (generation, handle) pair: the
   memo cell itself must be per-domain, or one domain would resolve
   against another domain's sink. *)
let cached_counter name =
  let cache = Multicore.Dls.new_key (fun () -> (-1, noop_counter)) in
  fun () ->
    let gen = Multicore.Dls.get global_gen in
    let seen, c = Multicore.Dls.get cache in
    if seen = gen then c
    else begin
      let c = counter (Multicore.Dls.get global_sink) name in
      Multicore.Dls.set cache (gen, c);
      c
    end

let cached_timer name =
  let cache = Multicore.Dls.new_key (fun () -> (-1, noop_timer)) in
  fun () ->
    let gen = Multicore.Dls.get global_gen in
    let seen, tm = Multicore.Dls.get cache in
    if seen = gen then tm
    else begin
      let tm = timer (Multicore.Dls.get global_sink) name in
      Multicore.Dls.set cache (gen, tm);
      tm
    end

let cached_histogram name =
  let cache = Multicore.Dls.new_key (fun () -> (-1, noop_histogram)) in
  fun () ->
    let gen = Multicore.Dls.get global_gen in
    let seen, h = Multicore.Dls.get cache in
    if seen = gen then h
    else begin
      let h = histogram (Multicore.Dls.get global_sink) name in
      Multicore.Dls.set cache (gen, h);
      h
    end

let cached_gauge name =
  let cache = Multicore.Dls.new_key (fun () -> (-1, noop_gauge)) in
  fun () ->
    let gen = Multicore.Dls.get global_gen in
    let seen, g = Multicore.Dls.get cache in
    if seen = gen then g
    else begin
      let g = gauge (Multicore.Dls.get global_sink) name in
      Multicore.Dls.set cache (gen, g);
      g
    end

(* ---------- JSON --------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let to_string ?(indent = false) t =
    let b = Buffer.create 256 in
    let pad level = if indent then Buffer.add_string b (String.make (2 * level) ' ') in
    let newline () = if indent then Buffer.add_char b '\n' in
    let rec go level = function
      | Null -> Buffer.add_string b "null"
      | Bool x -> Buffer.add_string b (if x then "true" else "false")
      | Int i -> Buffer.add_string b (string_of_int i)
      | Float f ->
        (* JSON has no NaN/Infinity literal; serialize non-finite floats
           as null so the output always parses. *)
        if not (Float.is_finite f) then Buffer.add_string b "null"
        else if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string b (Printf.sprintf "%.1f" f)
        else Buffer.add_string b (Printf.sprintf "%.17g" f)
      | String s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
      | List [] -> Buffer.add_string b "[]"
      | List items ->
        Buffer.add_char b '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char b ',';
              newline ()
            end;
            pad (level + 1);
            go (level + 1) item)
          items;
        newline ();
        pad level;
        Buffer.add_char b ']'
      | Obj [] -> Buffer.add_string b "{}"
      | Obj fields ->
        Buffer.add_char b '{';
        newline ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char b ',';
              newline ()
            end;
            pad (level + 1);
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b (if indent then "\": " else "\":");
            go (level + 1) v)
          fields;
        newline ();
        pad level;
        Buffer.add_char b '}'
    in
    go 0 t;
    Buffer.contents b

  exception Parse_error of string

  (* Recursive-descent parser over a cursor; just enough JSON to read
     back what [to_string] emits (and ordinary hand-written files). *)
  let of_string text =
    let n = String.length text in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some text.[!pos] else None in
    let advance () = Stdlib.incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect ch =
      match peek () with
      | Some c when c = ch -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" ch)
    in
    let literal word value =
      if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        value
      end
      else fail ("expected " ^ word)
    in
    let utf8_of_code b code =
      if code < 0x80 then Buffer.add_char b (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance ()
          | Some '\\' -> Buffer.add_char b '\\'; advance ()
          | Some '/' -> Buffer.add_char b '/'; advance ()
          | Some 'n' -> Buffer.add_char b '\n'; advance ()
          | Some 'r' -> Buffer.add_char b '\r'; advance ()
          | Some 't' -> Buffer.add_char b '\t'; advance ()
          | Some 'b' -> Buffer.add_char b '\b'; advance ()
          | Some 'f' -> Buffer.add_char b '\012'; advance ()
          | Some 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub text !pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail "bad \\u escape"
            in
            pos := !pos + 4;
            utf8_of_code b code
          | _ -> fail "bad escape");
          go ()
        | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      let s = String.sub text start (!pos - start) in
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail ("bad number " ^ s))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> String (parse_string ())
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
      | Some ('0' .. '9' | '-') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

let to_json t =
  let counters_json =
    Json.Obj (List.map (fun (name, n) -> (name, Json.Int n)) (counters t))
  in
  let timers_json =
    Json.Obj
      (List.map
         (fun (name, (calls, total_ns)) ->
           ( name,
             Json.Obj
               [ ("count", Json.Int calls); ("total_ns", Json.Int total_ns) ] ))
         (timers t))
  in
  let histograms_json =
    Json.Obj
      (List.map
         (fun (name, h) ->
           ( name,
             Json.Obj
               [
                 ("count", Json.Int (histogram_count h));
                 ("total", Json.Int (histogram_sum h));
                 ("p50", Json.Float (percentile h 50.));
                 ("p90", Json.Float (percentile h 90.));
                 ("p99", Json.Float (percentile h 99.));
               ] ))
         (histograms t))
  in
  let gauges_json =
    Json.Obj (List.map (fun (name, v) -> (name, Json.Float v)) (gauges t))
  in
  let spans_json =
    Json.List
      (List.map
         (fun s ->
           Json.Obj
             [
               ("name", Json.String s.span_name);
               ("depth", Json.Int s.depth);
               ("start_ns", Json.Int s.start_ns);
               ("elapsed_ns", Json.Int s.elapsed_ns);
             ])
         (spans t))
  in
  Json.Obj
    [
      ("schema_version", Json.Int 2);
      ("counters", counters_json);
      ("timers", timers_json);
      ("histograms", histograms_json);
      ("gauges", gauges_json);
      ("spans", spans_json);
    ]

let to_string t = Json.to_string ~indent:true (to_json t)

let write_file t path =
  let oc = open_out path in
  output_string oc (to_string t);
  output_char oc '\n';
  close_out oc

(* ---------- live runtime telemetry --------------------------------------- *)

(* Fold the OCaml runtime's own event stream (GC pauses, collection and
   lifecycle counters) into a registry.  The heavy lifting — and the
   version gating — lives in Runtime_backend: dune selects a real
   [Runtime_events] consumer when the library exists (OCaml 5) and a
   no-op twin otherwise, so this module compiles and degrades
   gracefully on 4.14. *)
module Runtime = struct
  let available = Runtime_backend.available

  (* One cursor per process; [start] is idempotent and [poll] may be
     called from the main thread and the telemetry exporter's ticker
     concurrently (the backend serializes the drain under its own
     lock). *)
  let started = Atomic.make false

  let start () =
    if Runtime_backend.available then begin
      if Runtime_backend.start () then Atomic.set started true;
      Atomic.get started
    end
    else false

  let active () = Atomic.get started

  let poll t =
    match t with
    | Disabled -> 0
    | Enabled _ when not (Atomic.get started) -> 0
    | Enabled _ ->
      (* Resolve every handle up front so the metric families exist (at
         zero) from the first poll onward, before any GC event fires —
         exposition consumers see a stable set of series. *)
      let minor_pause = histogram t "runtime.gc.minor.pause_ns" in
      let major_pause = histogram t "runtime.gc.major.pause_ns" in
      let compact_pause = histogram t "runtime.gc.compact.pause_ns" in
      let minor_n = counter t "runtime.gc.minor.collections" in
      let major_n = counter t "runtime.gc.major.collections" in
      let compact_n = counter t "runtime.gc.compactions" in
      let spawns = counter t "runtime.domain.spawns" in
      let terminations = counter t "runtime.domain.terminations" in
      let lost = counter t "runtime.events.lost" in
      let max_pause = gauge t "runtime.gc.max_pause_ns" in
      let on_pause kind ns =
        (match kind with
        | Runtime_backend.Minor ->
          incr minor_n;
          observe minor_pause ns
        | Runtime_backend.Major ->
          incr major_n;
          observe major_pause ns
        | Runtime_backend.Compact ->
          incr compact_n;
          observe compact_pause ns);
        match gauge_value max_pause with
        | Some m when m >= float_of_int ns -> ()
        | Some _ | None -> set_gauge max_pause (float_of_int ns)
      in
      Runtime_backend.poll
        {
          Runtime_backend.on_pause;
          on_counter = (fun key v -> add (counter t ("runtime.gc." ^ key)) v);
          on_lifecycle =
            (fun kind ->
              match kind with
              | Runtime_backend.Spawn -> incr spawns
              | Runtime_backend.Terminate -> incr terminations);
          on_lost = (fun n -> add lost n);
        }
end

(* ---------- snapshots and Prometheus exposition --------------------------- *)

module Export = struct
  (* ---------- registry snapshots ---------- *)

  type hist_snap = { hsn_buckets : int array; hsn_count : int; hsn_sum : int }

  type snapshot = {
    snap_unix_s : float;  (* Unix.gettimeofday at capture *)
    snap_counters : (string * int) list;
    snap_timers : (string * (int * int)) list;  (* (calls, total_ns) *)
    snap_gauges : (string * float) list;
    snap_histograms : (string * hist_snap) list;
  }

  (* Deep copy of a registry's current contents.  Reading a registry
     while its owning domain mutates it is memory-safe (same-domain
     systhread or quiescent registry) but advisory in consistency: a
     snapshot taken mid-update may be one event ahead on one series —
     acceptable for telemetry, never for accounting. *)
  let snapshot t =
    {
      snap_unix_s = Unix.gettimeofday ();
      snap_counters = counters t;
      snap_timers = timers t;
      snap_gauges = gauges t;
      snap_histograms =
        List.map
          (fun (name, h) ->
            ( name,
              {
                hsn_buckets = Array.copy h.buckets;
                hsn_count = h.events;
                hsn_sum = h.sum;
              } ))
          (histograms t);
    }

  (* ---------- bounded snapshot ring ---------- *)

  (* Fixed-capacity ring of the most recent snapshots, oldest
     overwritten first.  Pushed from the exporter's ticker thread and
     read from whoever renders, so every mutable field sits behind the
     ring's spinlock. *)
  type ring = {
    r_lock : Multicore.Spinlock.t;
    r_slots : snapshot option array; [@guarded_by "r_lock"]
    mutable r_next : int; [@guarded_by "r_lock"]  (* next write slot *)
    mutable r_count : int; [@guarded_by "r_lock"]
  }

  let ring_create capacity =
    let capacity = if capacity < 1 then 1 else capacity in
    {
      r_lock = Multicore.Spinlock.create ();
      r_slots = Array.make capacity None;
      r_next = 0;
      r_count = 0;
    }

  let ring_capacity r = Array.length r.r_slots

  let ring_push r snap =
    Multicore.Spinlock.with_lock r.r_lock (fun () ->
        let cap = Array.length r.r_slots in
        r.r_slots.(r.r_next) <- Some snap;
        r.r_next <- (r.r_next + 1) mod cap;
        if r.r_count < cap then r.r_count <- r.r_count + 1)

  let ring_length r = Multicore.Spinlock.with_lock r.r_lock (fun () -> r.r_count)

  (* Oldest first. *)
  let ring_to_list r =
    Multicore.Spinlock.with_lock r.r_lock (fun () ->
        let cap = Array.length r.r_slots in
        let first = (r.r_next - r.r_count + cap) mod cap in
        List.init r.r_count (fun i ->
            match r.r_slots.((first + i) mod cap) with
            | Some s -> s
            | None -> assert false (* count covers only filled slots *)))

  (* ---------- Prometheus text exposition ---------- *)

  (* Metric names: "search.expand.ns" -> "rdfviews_search_expand_ns".
     A "parallel.domain.<i>.<rest>" series instead becomes
     "rdfviews_parallel_<rest>" with a {domain="<i>"} label, so all
     domains of one quantity form one family. *)
  let mangle name =
    "rdfviews_"
    ^ String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
          | _ -> '_')
        name

  let split_domain_label name =
    match String.split_on_char '.' name with
    | "parallel" :: "domain" :: idx :: (_ :: _ as rest) -> (
      match int_of_string_opt idx with
      | Some i -> (String.concat "." ("parallel" :: rest), [ ("domain", string_of_int i) ])
      | None -> (name, []))
    | _ -> (name, [])

  let label_string labels =
    match labels with
    | [] -> ""
    | _ ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k v) labels)
      ^ "}"

  let add_value b v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.bprintf b "%.0f" v
    else Printf.bprintf b "%.17g" v

  (* Group a (name, payload) list into (family base name, labels,
     payload) runs, one HELP/TYPE header per family, preserving the
     input's sorted order. *)
  let group_families series =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun (name, payload) ->
        let base, labels = split_domain_label name in
        match Hashtbl.find_opt tbl base with
        | Some items -> items := (labels, payload) :: !items
        | None ->
          Hashtbl.add tbl base (ref [ (labels, payload) ]);
          order := base :: !order)
      series;
    List.rev_map
      (fun base ->
        match Hashtbl.find_opt tbl base with
        | Some items -> (base, List.rev !items)
        | None -> (base, []))
      !order

  let exposition_of_snapshot snap =
    let b = Buffer.create 4096 in
    let header name typ help =
      Printf.bprintf b "# HELP %s %s\n# TYPE %s %s\n" name help name typ
    in
    header "rdfviews_snapshot_timestamp_seconds" "gauge"
      "Unix time at which this snapshot was captured.";
    Printf.bprintf b "rdfviews_snapshot_timestamp_seconds %.6f\n"
      snap.snap_unix_s;
    List.iter
      (fun (base, items) ->
        let fam = mangle base ^ "_total" in
        header fam "counter" (Printf.sprintf "Obs counter %s." base);
        List.iter
          (fun (labels, v) ->
            Printf.bprintf b "%s%s %d\n" fam (label_string labels) v)
          items)
      (group_families snap.snap_counters);
    List.iter
      (fun (base, items) ->
        let ns = mangle base ^ "_ns_total" in
        let calls = mangle base ^ "_calls_total" in
        header ns "counter"
          (Printf.sprintf "Obs timer %s: accumulated nanoseconds." base);
        List.iter
          (fun (labels, (_, total_ns)) ->
            Printf.bprintf b "%s%s %d\n" ns (label_string labels) total_ns)
          items;
        header calls "counter"
          (Printf.sprintf "Obs timer %s: timed calls." base);
        List.iter
          (fun (labels, (c, _)) ->
            Printf.bprintf b "%s%s %d\n" calls (label_string labels) c)
          items)
      (group_families snap.snap_timers);
    List.iter
      (fun (base, items) ->
        let fam = mangle base in
        header fam "gauge" (Printf.sprintf "Obs gauge %s." base);
        List.iter
          (fun (labels, v) ->
            Printf.bprintf b "%s%s " fam (label_string labels);
            add_value b v;
            Buffer.add_char b '\n')
          items)
      (group_families snap.snap_gauges);
    List.iter
      (fun (base, items) ->
        let fam = mangle base in
        header fam "histogram"
          (Printf.sprintf
             "Obs histogram %s (log-bucketed; le boundaries are powers of 2)."
             base);
        List.iter
          (fun (labels, h) ->
            (* cumulative buckets up to the highest non-empty one *)
            let last = ref (-1) in
            Array.iteri
              (fun i n -> if n > 0 then last := i)
              h.hsn_buckets;
            let cum = ref 0 in
            for i = 0 to !last do
              cum := !cum + h.hsn_buckets.(i);
              let le =
                if i = 0 then "0" else Printf.sprintf "%g" (Float.ldexp 1. i)
              in
              Printf.bprintf b "%s_bucket%s %d\n" fam
                (label_string (labels @ [ ("le", le) ]))
                !cum
            done;
            Printf.bprintf b "%s_bucket%s %d\n" fam
              (label_string (labels @ [ ("le", "+Inf") ]))
              h.hsn_count;
            Printf.bprintf b "%s_sum%s %d\n" fam (label_string labels)
              h.hsn_sum;
            Printf.bprintf b "%s_count%s %d\n" fam (label_string labels)
              h.hsn_count)
          items)
      (group_families snap.snap_histograms);
    Buffer.contents b

  let exposition t = exposition_of_snapshot (snapshot t)

  (* ---------- parsing the exposition back ---------- *)

  (* Just enough of the Prometheus text format to read what
     [exposition_of_snapshot] writes (and ordinary hand-written files):
     HELP/TYPE comments open a family; sample lines carry optional
     {k="v",...} labels and a float value.  Unknown comment lines are
     skipped. *)

  type sample = {
    s_name : string;  (* full series name, suffixes included *)
    s_labels : (string * string) list;
    s_value : float;
  }

  type family = {
    f_name : string;  (* family base name from HELP/TYPE *)
    f_type : string;  (* "counter" | "gauge" | "histogram" | "untyped" *)
    f_help : string;
    f_samples : sample list;  (* in file order *)
  }

  exception Bad_exposition of string

  let is_name_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false

  let parse_sample_line lineno line =
    let n = String.length line in
    let pos = ref 0 in
    let fail msg =
      raise (Bad_exposition (Printf.sprintf "line %d: %s" lineno msg))
    in
    while !pos < n && is_name_char line.[!pos] do
      Stdlib.incr pos
    done;
    if !pos = 0 then fail "expected a metric name";
    let name = String.sub line 0 !pos in
    let labels = ref [] in
    if !pos < n && Char.equal line.[!pos] '{' then begin
      Stdlib.incr pos;
      let rec labels_loop () =
        while !pos < n && Char.equal line.[!pos] ' ' do
          Stdlib.incr pos
        done;
        if !pos < n && Char.equal line.[!pos] '}' then Stdlib.incr pos
        else begin
          let k0 = !pos in
          while !pos < n && is_name_char line.[!pos] do
            Stdlib.incr pos
          done;
          if !pos = k0 then fail "expected a label name";
          let key = String.sub line k0 (!pos - k0) in
          if not (!pos + 1 < n && Char.equal line.[!pos] '='
                  && Char.equal line.[!pos + 1] '"')
          then fail "expected =\" after label name";
          pos := !pos + 2;
          let buf = Buffer.create 8 in
          let rec value_loop () =
            if !pos >= n then fail "unterminated label value"
            else
              match line.[!pos] with
              | '"' -> Stdlib.incr pos
              | '\\' when !pos + 1 < n ->
                (match line.[!pos + 1] with
                | 'n' -> Buffer.add_char buf '\n'
                | c -> Buffer.add_char buf c);
                pos := !pos + 2;
                value_loop ()
              | c ->
                Buffer.add_char buf c;
                Stdlib.incr pos;
                value_loop ()
          in
          value_loop ();
          labels := (key, Buffer.contents buf) :: !labels;
          if !pos < n && Char.equal line.[!pos] ',' then begin
            Stdlib.incr pos;
            labels_loop ()
          end
          else if !pos < n && Char.equal line.[!pos] '}' then Stdlib.incr pos
          else fail "expected , or } in labels"
        end
      in
      labels_loop ()
    end;
    let rest = String.trim (String.sub line !pos (n - !pos)) in
    (* a trailing timestamp (exposition allows one) would be a second
       token; take the first *)
    let value_text =
      match String.index_opt rest ' ' with
      | Some i -> String.sub rest 0 i
      | None -> rest
    in
    let value =
      match value_text with
      | "+Inf" -> Float.infinity
      | "-Inf" -> Float.neg_infinity
      | "NaN" -> Float.nan
      | s -> (
        match float_of_string_opt s with
        | Some f -> f
        | None -> fail (Printf.sprintf "bad sample value %S" s))
    in
    { s_name = name; s_labels = List.rev !labels; s_value = value }

  let parse_exposition text =
    let families = ref [] in  (* newest first; samples newest first *)
    let find_family name =
      List.find_opt
        (fun f ->
          String.length name >= String.length f.f_name
          && String.equal (String.sub name 0 (String.length f.f_name)) f.f_name)
        !families
    in
    let open_family name typ help =
      match List.find_opt (fun f -> String.equal f.f_name name) !families with
      | Some f ->
        let f' =
          {
            f with
            f_type = (if String.equal typ "" then f.f_type else typ);
            f_help = (if String.equal help "" then f.f_help else help);
          }
        in
        families :=
          f' :: List.filter (fun g -> not (String.equal g.f_name name)) !families
      | None ->
        families :=
          { f_name = name; f_type = typ; f_help = help; f_samples = [] }
          :: !families
    in
    let comment_fields line =
      (* "# HELP name text..." / "# TYPE name type" *)
      match String.split_on_char ' ' line with
      | "#" :: kw :: name :: rest -> Some (kw, name, String.concat " " rest)
      | _ -> None
    in
    List.iteri
      (fun i line ->
        let line = String.trim line in
        if String.equal line "" then ()
        else if Char.equal line.[0] '#' then begin
          match comment_fields line with
          | Some ("HELP", name, help) -> open_family name "" help
          | Some ("TYPE", name, typ) -> open_family name typ ""
          | Some _ | None -> () (* other comments are legal and skipped *)
        end
        else begin
          let s = parse_sample_line (i + 1) line in
          match find_family s.s_name with
          | Some f ->
            let f' = { f with f_samples = s :: f.f_samples } in
            families :=
              f'
              :: List.filter
                   (fun g -> not (String.equal g.f_name f.f_name))
                   !families
          | None ->
            families :=
              {
                f_name = s.s_name;
                f_type = "untyped";
                f_help = "";
                f_samples = [ s ];
              }
              :: !families
        end)
      (String.split_on_char '\n' text);
    List.rev_map (fun f -> { f with f_samples = List.rev f.f_samples }) !families

  (* Cheap sniff used by `rdfviews report` to route its input: our own
     files always open with a HELP comment, and any plausible exposition
     starts with a HELP/TYPE line or a bare sample. *)
  let looks_like_exposition text =
    let rec first_line = function
      | [] -> None
      | l :: rest ->
        let l = String.trim l in
        if String.equal l "" then first_line rest else Some l
    in
    match first_line (String.split_on_char '\n' text) with
    | None -> false
    | Some l ->
      let has_prefix p =
        String.length l >= String.length p
        && String.equal (String.sub l 0 (String.length p)) p
      in
      has_prefix "# HELP " || has_prefix "# TYPE "

  (* ---------- family lookups (for renderers and tests) ---------- *)

  let find_family families name =
    List.find_opt (fun f -> String.equal f.f_name name) families

  let sample_value ?(labels = []) families name =
    List.find_map
      (fun f ->
        List.find_map
          (fun s ->
            if
              String.equal s.s_name name
              && List.for_all
                   (fun (k, v) ->
                     match List.assoc_opt k s.s_labels with
                     | Some v' -> String.equal v v'
                     | None -> false)
                   labels
            then Some s.s_value
            else None)
          f.f_samples)
      families

  (* ---------- the periodic exporter ---------- *)

  (* A ticker systhread that, every [interval] seconds: drains runtime
     events into the current registry, pushes a snapshot onto the ring,
     and atomically rewrites [path] with the exposition (tmp + rename,
     so a scraper never reads a torn file).  The thread shares the
     installing domain, hence its DLS-resolved [source] sees the same
     ambient registry the instrumented code writes to. *)
  type exporter = {
    e_ring : ring;
    e_path : string;
    e_interval : float;
    e_stop : bool Atomic.t;
    e_ticks : int Atomic.t;
    e_write_errors : int Atomic.t;
    e_tick : unit -> unit;
    e_thread : Thread.t option;
  }

  let write_atomic path text =
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc text;
    close_out oc;
    Sys.rename tmp path

  let default_ring_capacity = 64

  let start ?(ring_capacity = default_ring_capacity) ~interval ~path source =
    let interval = Float.max 0.001 interval in
    let ring = ring_create ring_capacity in
    let stop = Atomic.make false in
    let ticks = Atomic.make 0 in
    let write_errors = Atomic.make 0 in
    let tick () =
      let sink = source () in
      ignore (Runtime.poll sink : int);
      Atomic.incr ticks;
      (* ticks-so-far ride along in the registry so successive scrapes
         of the file expose a monotonic liveness counter *)
      let tc = counter sink "telemetry.ticks" in
      (match sink with Disabled -> () | Enabled _ -> tc.n <- Atomic.get ticks);
      let snap = snapshot sink in
      ring_push ring snap;
      match write_atomic path (exposition_of_snapshot snap) with
      | () -> ()
      | exception Sys_error _ -> Atomic.incr write_errors
    in
    (* First write happens on the caller: the file exists (or the path
       error surfaces synchronously) before [start] returns. *)
    let sink = source () in
    ignore (Runtime.poll sink : int);
    write_atomic path (exposition_of_snapshot (snapshot sink));
    let thread =
      Thread.create
        (fun () ->
          (* sleep in short slices so [stop] never waits a full interval *)
          let rec pause remaining =
            if (not (Atomic.get stop)) && remaining > 0. then begin
              let d = Float.min remaining 0.05 in
              Thread.delay d;
              pause (remaining -. d)
            end
          in
          while not (Atomic.get stop) do
            pause interval;
            if not (Atomic.get stop) then tick ()
          done)
        ()
    in
    {
      e_ring = ring;
      e_path = path;
      e_interval = interval;
      e_stop = stop;
      e_ticks = ticks;
      e_write_errors = write_errors;
      e_tick = tick;
      e_thread = Some thread;
    }

  let stop e =
    if not (Atomic.get e.e_stop) then begin
      Atomic.set e.e_stop true;
      (match e.e_thread with Some th -> Thread.join th | None -> ());
      (* final tick: the file reflects the end-of-run registry *)
      e.e_tick ()
    end

  let exporter_ring e = e.e_ring

  let exporter_ticks e = Atomic.get e.e_ticks

  let exporter_write_errors e = Atomic.get e.e_write_errors

  let exporter_path e = e.e_path

  let exporter_interval e = e.e_interval
end

(* ---------- streaming search traces -------------------------------------- *)

module Trace = struct
  let schema_version = 1

  type state_class = Accepted | Discarded | Duplicate | Reopened

  let class_name = function
    | Accepted -> "accepted"
    | Discarded -> "discarded"
    | Duplicate -> "duplicate"
    | Reopened -> "reopened"

  let class_of_name = function
    | "accepted" -> Some Accepted
    | "discarded" -> Some Discarded
    | "duplicate" -> Some Duplicate
    | "reopened" -> Some Reopened
    | _ -> None

  type writer = {
    oc : out_channel;
    buf : Buffer.t;
    cap : int;          (* flush threshold, bytes *)
    w_born : int;       (* ns; event timestamps are offsets from this *)
    mutable events : int;
    mutable closed : bool;
  }

  type t = Off | On of writer

  let disabled = Off

  let is_enabled = function Off -> false | On _ -> true

  (* Events are buffered whole lines; a flush therefore always leaves
     the file line-aligned, so a crashed run's partial trace is valid
     JSONL up to the last flush. *)
  let flush_writer w =
    if not w.closed then begin
      output_string w.oc (Buffer.contents w.buf);
      Buffer.clear w.buf;
      Stdlib.flush w.oc
    end

  let finish_line w =
    Buffer.add_char w.buf '\n';
    w.events <- w.events + 1;
    if Buffer.length w.buf >= w.cap then flush_writer w

  let add_float b f =
    if Float.is_finite f then Printf.bprintf b "%.17g" f
    else Buffer.add_string b "null"

  let stamp w = Printf.bprintf w.buf {|"t":%d|} (now_ns () - w.w_born)

  let create ?(buffer_bytes = 1 lsl 16) path =
    let oc = open_out path in
    let w =
      {
        oc;
        buf = Buffer.create (buffer_bytes + 512);
        cap = buffer_bytes;
        w_born = now_ns ();
        events = 0;
        closed = false;
      }
    in
    Printf.bprintf w.buf {|{"e":"meta","v":%d}|} schema_version;
    finish_line w;
    On w

  let flush = function Off -> () | On w -> flush_writer w

  let close = function
    | Off -> ()
    | On w ->
      if not w.closed then begin
        flush_writer w;
        w.closed <- true;
        close_out w.oc
      end

  let event_count = function Off -> 0 | On w -> w.events

  (* Emitters: each is a plain call that returns immediately on [Off]
     without allocating — they sit on the search's hot path. *)

  let run_start t ~strategy ~strata ~initial_cost =
    match t with
    | Off -> ()
    | On w ->
      Printf.bprintf w.buf {|{"e":"run_start",|};
      stamp w;
      Printf.bprintf w.buf {|,"strategy":"%s","strata":[|} strategy;
      Array.iteri
        (fun i name ->
          if i > 0 then Buffer.add_char w.buf ',';
          Printf.bprintf w.buf {|"%s"|} name)
        strata;
      Buffer.add_string w.buf {|],"initial_cost":|};
      add_float w.buf initial_cost;
      Buffer.add_char w.buf '}';
      finish_line w

  let run_end t ~best_cost ~created ~explored ~duplicates ~discarded ~completed =
    match t with
    | Off -> ()
    | On w ->
      Printf.bprintf w.buf {|{"e":"run_end",|};
      stamp w;
      Buffer.add_string w.buf {|,"best_cost":|};
      add_float w.buf best_cost;
      Printf.bprintf w.buf
        {|,"created":%d,"explored":%d,"duplicates":%d,"discarded":%d,"completed":%b}|}
        created explored duplicates discarded completed;
      finish_line w;
      (* a run boundary is always durable *)
      flush_writer w

  let state t ~cls ~id ~stratum ~cost =
    match t with
    | Off -> ()
    | On w ->
      Printf.bprintf w.buf {|{"e":"state",|};
      stamp w;
      Printf.bprintf w.buf {|,"k":"%s","id":%d,"stratum":%d,"cost":|}
        (class_name cls) id stratum;
      add_float w.buf cost;
      Buffer.add_char w.buf '}';
      finish_line w

  let transition t ~kind ~applied ~rejected ~elapsed_ns =
    match t with
    | Off -> ()
    | On w ->
      Printf.bprintf w.buf {|{"e":"transition",|};
      stamp w;
      Printf.bprintf w.buf {|,"k":"%s","applied":%d,"rejected":%d,"ns":%d}|}
        kind applied rejected elapsed_ns;
      finish_line w

  let cost_memo t ~hits ~misses =
    match t with
    | Off -> ()
    | On w ->
      Printf.bprintf w.buf {|{"e":"cost_memo",|};
      stamp w;
      Printf.bprintf w.buf {|,"hits":%d,"misses":%d}|} hits misses;
      finish_line w

  let heartbeat t ~created ~explored ~best_cost ~elapsed_ns =
    match t with
    | Off -> ()
    | On w ->
      Printf.bprintf w.buf {|{"e":"heartbeat",|};
      stamp w;
      Printf.bprintf w.buf {|,"created":%d,"explored":%d,"best_cost":|} created
        explored;
      add_float w.buf best_cost;
      Printf.bprintf w.buf {|,"elapsed_ns":%d}|} elapsed_ns;
      finish_line w;
      (* heartbeats bound how much a crash can lose *)
      flush_writer w

  (* ---------- the global trace sink ---------- *)

  (* Domain-local like the metrics sink: a trace writer buffers into a
     single Buffer, so sharing one across domains would interleave
     bytes.  Worker domains default to [Off]; under a parallel search
     the trace therefore records the coordinating domain only. *)
  let global_trace = Multicore.Dls.new_key (fun () -> Off)

  let set_global t = Multicore.Dls.set global_trace t

  let global () = Multicore.Dls.get global_trace

  (* ---------- reading ---------- *)

  type event =
    | Meta of { version : int }
    | Run_start of {
        at_ns : int;
        strategy : string;
        strata : string array;
        initial_cost : float;
      }
    | Run_end of {
        at_ns : int;
        best_cost : float;
        created : int;
        explored : int;
        duplicates : int;
        discarded : int;
        completed : bool;
      }
    | State of {
        at_ns : int;
        cls : state_class;
        id : int;
        stratum : int;
        cost : float option;
      }
    | Transition of {
        at_ns : int;
        kind : string;
        applied : int;
        rejected : int;
        elapsed_ns : int;
      }
    | Cost_memo of { at_ns : int; hits : int; misses : int }
    | Heartbeat of {
        at_ns : int;
        created : int;
        explored : int;
        best_cost : float;
        elapsed_ns : int;
      }

  exception Malformed of string

  let ifield ?(default = 0) j k =
    match Json.member k j with Some (Json.Int i) -> i | _ -> default

  let ffield j k =
    match Json.member k j with
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> Float.nan

  let ffield_opt j k =
    match Json.member k j with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | Some Json.Null | None | Some _ -> None

  let sfield j k =
    match Json.member k j with Some (Json.String s) -> s | _ -> ""

  let event_of_json j =
    let at_ns = ifield j "t" in
    match Json.member "e" j with
    | Some (Json.String "meta") -> Some (Meta { version = ifield j "v" })
    | Some (Json.String "run_start") ->
      let strata =
        match Json.member "strata" j with
        | Some (Json.List items) ->
          Array.of_list
            (List.filter_map
               (function Json.String s -> Some s | _ -> None)
               items)
        | _ -> [||]
      in
      Some
        (Run_start
           {
             at_ns;
             strategy = sfield j "strategy";
             strata;
             initial_cost = ffield j "initial_cost";
           })
    | Some (Json.String "run_end") ->
      Some
        (Run_end
           {
             at_ns;
             best_cost = ffield j "best_cost";
             created = ifield j "created";
             explored = ifield j "explored";
             duplicates = ifield j "duplicates";
             discarded = ifield j "discarded";
             completed =
               (match Json.member "completed" j with
               | Some (Json.Bool b) -> b
               | _ -> false);
           })
    | Some (Json.String "state") ->
      Option.map
        (fun cls ->
          State
            {
              at_ns;
              cls;
              id = ifield j "id";
              stratum = ifield j "stratum";
              cost = ffield_opt j "cost";
            })
        (class_of_name (sfield j "k"))
    | Some (Json.String "transition") ->
      Some
        (Transition
           {
             at_ns;
             kind = sfield j "k";
             applied = ifield j "applied";
             rejected = ifield j "rejected";
             elapsed_ns = ifield j "ns";
           })
    | Some (Json.String "cost_memo") ->
      Some (Cost_memo { at_ns; hits = ifield j "hits"; misses = ifield j "misses" })
    | Some (Json.String "heartbeat") ->
      Some
        (Heartbeat
           {
             at_ns;
             created = ifield j "created";
             explored = ifield j "explored";
             best_cost = ffield j "best_cost";
             elapsed_ns = ifield j "elapsed_ns";
           })
    | Some _ | None -> None (* unknown event kinds are skipped, not fatal *)

  (* Parse a trace.  A malformed *last* line is tolerated (a crash can
     truncate the final OS-level write mid-line); a malformed line in
     the middle raises [Malformed]. *)
  let parse_lines text =
    let lines = String.split_on_char '\n' text in
    let n = List.length lines in
    let events = ref [] in
    List.iteri
      (fun i line ->
        if not (String.equal (String.trim line) "") then begin
          match Json.of_string line with
          | j -> (
            match event_of_json j with
            | Some e -> events := e :: !events
            | None -> ())
          | exception Json.Parse_error msg ->
            if i < n - 1 then
              raise
                (Malformed (Printf.sprintf "line %d: %s" (i + 1) msg))
        end)
      lines;
    List.rev !events

  let read_file path =
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    parse_lines text
end

(* ---------- offline trace analysis --------------------------------------- *)

module Report = struct
  type kind_row = {
    kind : string;
    applied : int;
    rejected : int;
    created_k : int;
    accepted_k : int;
    reopened_k : int;
    duplicates_k : int;
    discarded_k : int;
    time_ns : int;
  }

  type summary = {
    source : string;  (* "trace" or "metrics" *)
    strategy : string option;
    initial_cost : float option;
    final_cost : float option;
    created : int;
    explored : int;
    duplicates : int;
    discarded : int;
    accepted : int;
    reopened : int;
    completed : bool option;
    wall_ns : int option;
    convergence : (int * int * float) list;
        (* (at_ns, states created so far, new best cost), oldest first *)
    kinds : kind_row list;
    memo_hits : int;
    memo_misses : int;
  }

  let rcr s =
    match (s.initial_cost, s.final_cost) with
    | Some i, Some f when i > 0. -> Some ((i -. f) /. i)
    | _ -> None

  (* Earliest convergence point within [pct]% of the final best cost
     (threshold final * (1 + pct/100)), as (at_ns, states created). *)
  let time_to_within s pct =
    match s.final_cost with
    | None -> None
    | Some final ->
      let threshold = final *. (1. +. (pct /. 100.)) in
      List.find_map
        (fun (at_ns, created, cost) ->
          if cost <= threshold then Some (at_ns, created) else None)
        s.convergence

  let empty source =
    {
      source;
      strategy = None;
      initial_cost = None;
      final_cost = None;
      created = 0;
      explored = 0;
      duplicates = 0;
      discarded = 0;
      accepted = 0;
      reopened = 0;
      completed = None;
      wall_ns = None;
      convergence = [];
      kinds = [];
      memo_hits = 0;
      memo_misses = 0;
    }

  type _kind_acc = {
    mutable a_applied : int;
    mutable a_rejected : int;
    mutable a_time : int;
    mutable a_accepted : int;
    mutable a_reopened : int;
    mutable a_duplicates : int;
    mutable a_discarded : int;
  }

  let _fresh_acc () =
    {
      a_applied = 0;
      a_rejected = 0;
      a_time = 0;
      a_accepted = 0;
      a_reopened = 0;
      a_duplicates = 0;
      a_discarded = 0;
    }

  let of_trace events =
    let s = ref (empty "trace") in
    let strata = ref [||] in
    let by_kind : (string, _kind_acc) Hashtbl.t = Hashtbl.create 8 in
    let kind_order = ref [] in
    let acc_for kind =
      match Hashtbl.find_opt by_kind kind with
      | Some a -> a
      | None ->
        let a = _fresh_acc () in
        Hashtbl.add by_kind kind a;
        kind_order := kind :: !kind_order;
        a
    in
    let kind_of_stratum i =
      if i >= 0 && i < Array.length !strata then !strata.(i)
      else Printf.sprintf "#%d" i
    in
    let best = ref Float.infinity in
    let created = ref 0 in
    let explored = ref 0 in
    let initial_accepted = ref 0 in
    let last_ns = ref 0 in
    let from_run_end = ref false in
    List.iter
      (fun e ->
        (match e with
        | Trace.Meta _ -> ()
        | Trace.Run_start r ->
          last_ns := Stdlib.max !last_ns r.at_ns;
          strata := r.strata;
          Array.iter (fun k -> ignore (acc_for k)) r.strata;
          s :=
            {
              !s with
              strategy = Some r.strategy;
              initial_cost =
                (if Float.is_finite r.initial_cost then Some r.initial_cost
                 else None);
            }
        | Trace.Run_end r ->
          last_ns := Stdlib.max !last_ns r.at_ns;
          from_run_end := true;
          s :=
            {
              !s with
              final_cost =
                (if Float.is_finite r.best_cost then Some r.best_cost
                 else !s.final_cost);
              created = r.created;
              explored = r.explored;
              duplicates = r.duplicates;
              discarded = r.discarded;
              completed = Some r.completed;
              wall_ns = Some r.at_ns;
            }
        | Trace.State st ->
          last_ns := Stdlib.max !last_ns st.at_ns;
          (* id 0 is the initial state: accepted, but neither "created"
             nor attributable to any transition's stratum *)
          if st.id > 0 then created := !created + 1;
          (match (st.cls, st.cost) with
          | Trace.Accepted, Some c when c < !best ->
            best := c;
            s := { !s with convergence = (st.at_ns, !created, c) :: !s.convergence }
          | _ -> ());
          if st.id = 0 then initial_accepted := !initial_accepted + 1
          else begin
            let a = acc_for (kind_of_stratum st.stratum) in
            match st.cls with
            | Trace.Accepted -> a.a_accepted <- a.a_accepted + 1
            | Trace.Reopened -> a.a_reopened <- a.a_reopened + 1
            | Trace.Duplicate -> a.a_duplicates <- a.a_duplicates + 1
            | Trace.Discarded -> a.a_discarded <- a.a_discarded + 1
          end
        | Trace.Transition tr ->
          last_ns := Stdlib.max !last_ns tr.at_ns;
          let a = acc_for tr.kind in
          a.a_applied <- a.a_applied + tr.applied;
          a.a_rejected <- a.a_rejected + tr.rejected;
          a.a_time <- a.a_time + tr.elapsed_ns
        | Trace.Cost_memo m ->
          last_ns := Stdlib.max !last_ns m.at_ns;
          s := { !s with memo_hits = m.hits; memo_misses = m.misses }
        | Trace.Heartbeat h ->
          last_ns := Stdlib.max !last_ns h.at_ns;
          explored := h.explored))
      events;
    let kinds =
      List.rev_map
        (fun kind ->
          let a = acc_for kind in
          {
            kind;
            applied = a.a_applied;
            rejected = a.a_rejected;
            created_k = a.a_accepted + a.a_reopened + a.a_duplicates + a.a_discarded;
            accepted_k = a.a_accepted;
            reopened_k = a.a_reopened;
            duplicates_k = a.a_duplicates;
            discarded_k = a.a_discarded;
            time_ns = a.a_time;
          })
        !kind_order
    in
    let accepted, reopened, duplicates, discarded =
      List.fold_left
        (fun (a, r, du, di) row ->
          ( a + row.accepted_k,
            r + row.reopened_k,
            du + row.duplicates_k,
            di + row.discarded_k ))
        (0, 0, 0, 0) kinds
    in
    let s = !s in
    let s =
      if !from_run_end then s
      else
        (* crashed / truncated trace: reconstruct totals from the events *)
        {
          s with
          created = !created;
          explored = !explored;
          duplicates = duplicates + reopened;
          discarded;
          wall_ns = (if !last_ns > 0 then Some !last_ns else None);
          final_cost =
            (if Float.is_finite !best then Some !best else s.final_cost);
        }
    in
    {
      s with
      accepted = accepted + !initial_accepted;
      reopened;
      kinds;
      convergence = List.rev s.convergence;
      final_cost =
        (match s.final_cost with
        | Some f -> Some f
        | None -> if Float.is_finite !best then Some !best else None);
    }

  (* Degraded analysis of a `--metrics` registry dump: totals and
     per-kind counters are available, but there are no per-event
     records, so the convergence curve is empty. *)
  let of_metrics json =
    let counter name =
      match Option.bind (Json.member "counters" json) (Json.member name) with
      | Some (Json.Int i) -> i
      | _ -> 0
    in
    let gauge name =
      match Option.bind (Json.member "gauges" json) (Json.member name) with
      | Some (Json.Float f) -> Some f
      | Some (Json.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    let timer_total name =
      match Option.bind (Json.member "timers" json) (Json.member name) with
      | Some t -> (
        match Json.member "total_ns" t with Some (Json.Int i) -> Some i | _ -> None)
      | _ -> None
    in
    let kind_names =
      match Json.member "counters" json with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (name, _) ->
            match String.split_on_char '.' name with
            | [ "transition"; kind; "applied" ] -> Some kind
            | _ -> None)
          fields
      | _ -> []
    in
    let kinds =
      List.map
        (fun kind ->
          {
            kind;
            applied = counter (Printf.sprintf "transition.%s.applied" kind);
            rejected = counter (Printf.sprintf "transition.%s.rejected" kind);
            created_k = counter (Printf.sprintf "search.stratum.%s.created" kind);
            accepted_k = 0;
            reopened_k = 0;
            duplicates_k = 0;
            discarded_k = 0;
            time_ns =
              Option.value ~default:0
                (timer_total (Printf.sprintf "transition.%s.time" kind));
          })
        kind_names
    in
    {
      (empty "metrics") with
      initial_cost = gauge "search.initial_cost";
      final_cost = gauge "search.best_cost";
      created = counter "search.created";
      explored = counter "search.explored";
      duplicates = counter "search.duplicates";
      discarded = counter "search.discarded";
      reopened = counter "search.reopened";
      accepted =
        counter "search.created" - counter "search.duplicates"
        - counter "search.discarded";
      wall_ns = timer_total "search.run";
      kinds;
      memo_hits = counter "cost.state.hits";
      memo_misses = counter "cost.state.misses";
    }

  (* ---------- text rendering ---------- *)

  let _btable b rows =
    match rows with
    | [] -> ()
    | header :: _ ->
      let widths = Array.make (List.length header) 0 in
      List.iter
        (List.iteri (fun i cell ->
             widths.(i) <- Stdlib.max widths.(i) (String.length cell)))
        rows;
      List.iteri
        (fun r row ->
          Buffer.add_string b "  ";
          List.iteri
            (fun i cell ->
              if i > 0 then Buffer.add_string b "  ";
              Printf.bprintf b "%-*s" widths.(i) cell)
            row;
          Buffer.add_char b '\n';
          if r = 0 then begin
            Buffer.add_string b "  ";
            Array.iteri
              (fun i w ->
                if i > 0 then Buffer.add_string b "--";
                Buffer.add_string b (String.make w '-'))
              widths;
            Buffer.add_char b '\n'
          end)
        rows

  let _fcost f = Printf.sprintf "%.6g" f

  let _fsec ns = Printf.sprintf "%.3f" (float_of_int ns /. 1e9)

  let render s =
    let b = Buffer.create 4096 in
    Printf.bprintf b "search %s report\n" s.source;
    Buffer.add_string b "===================\n";
    (match s.strategy with
    | Some st -> Printf.bprintf b "strategy:   %s\n" st
    | None -> ());
    Printf.bprintf b
      "states:     created %d (accepted %d, duplicates %d, discarded %d, \
       reopened %d), explored %d\n"
      s.created s.accepted s.duplicates s.discarded s.reopened s.explored;
    (match (s.initial_cost, s.final_cost) with
    | Some i, Some f ->
      Printf.bprintf b "cost:       initial %s -> final best %s" (_fcost i)
        (_fcost f);
      (match rcr s with
      | Some r -> Printf.bprintf b " (rcr %.3f)\n" r
      | None -> Buffer.add_char b '\n')
    | None, Some f -> Printf.bprintf b "cost:       final best %s\n" (_fcost f)
    | _, None -> Buffer.add_string b "cost:       (no cost events)\n");
    (match s.wall_ns with
    | Some ns -> Printf.bprintf b "wall time:  %s s\n" (_fsec ns)
    | None -> ());
    (match s.completed with
    | Some true -> Buffer.add_string b "outcome:    completed (space exhausted)\n"
    | Some false -> Buffer.add_string b "outcome:    cut (budget or memory)\n"
    | None -> ());
    if s.memo_hits + s.memo_misses > 0 then
      Printf.bprintf b "cost memo:  %d hits / %d misses (%.1f%% hit rate)\n"
        s.memo_hits s.memo_misses
        (100.
        *. float_of_int s.memo_hits
        /. float_of_int (s.memo_hits + s.memo_misses));
    Buffer.add_string b "\nconvergence (best cost vs wall time and states created)\n";
    if s.convergence = [] then
      Buffer.add_string b
        "  (no per-event data; run `rdfviews select --trace FILE` and point \
         `rdfviews report` at the trace)\n"
    else
      _btable b
        ([ "time_s"; "created"; "best_cost" ]
        :: List.map
             (fun (at_ns, created, cost) ->
               [ _fsec at_ns; string_of_int created; _fcost cost ])
             s.convergence);
    if s.convergence <> [] then begin
      Buffer.add_string b "\ntime to within x% of final best cost\n";
      _btable b
        ([ "within"; "time_s"; "created" ]
        :: List.filter_map
             (fun pct ->
               Option.map
                 (fun (at_ns, created) ->
                   [
                     Printf.sprintf "%g%%" pct;
                     _fsec at_ns;
                     string_of_int created;
                   ])
                 (time_to_within s pct))
             [ 50.; 20.; 10.; 5.; 1.; 0. ])
    end;
    (* a metrics dump has no per-state class records, so the per-class
       columns only appear for trace input *)
    let per_class = String.equal s.source "trace" in
    if s.kinds <> [] then begin
      Buffer.add_string b "\ntransition acceptance breakdown\n";
      _btable b
        (([ "kind"; "applied"; "rejected" ]
         @ (if per_class then [ "accepted"; "acceptance" ] else [])
         @ [ "time_ms" ])
        :: List.map
             (fun k ->
               [ k.kind; string_of_int k.applied; string_of_int k.rejected ]
               @ (if per_class then
                    [
                      string_of_int k.accepted_k;
                      (if k.applied = 0 then "-"
                       else
                         Printf.sprintf "%.1f%%"
                           (100. *. float_of_int k.accepted_k
                           /. float_of_int k.applied));
                    ]
                  else [])
               @ [ Printf.sprintf "%.3f" (float_of_int k.time_ns /. 1e6) ])
             s.kinds);
      Buffer.add_string b "\nstratum population\n";
      _btable b
        (([ "stratum"; "created" ]
         @
         if per_class then [ "accepted"; "reopened"; "duplicates"; "discarded" ]
         else [])
        :: List.map
             (fun k ->
               [ k.kind; string_of_int k.created_k ]
               @
               if per_class then
                 [
                   string_of_int k.accepted_k;
                   string_of_int k.reopened_k;
                   string_of_int k.duplicates_k;
                   string_of_int k.discarded_k;
                 ]
               else [])
             s.kinds)
    end;
    Buffer.contents b

  (* ---------- telemetry snapshot rendering (`rdfviews top`) ---------- *)

  let _fmt_count f =
    if Float.abs f >= 1e9 then Printf.sprintf "%.2fG" (f /. 1e9)
    else if Float.abs f >= 1e6 then Printf.sprintf "%.2fM" (f /. 1e6)
    else if Float.abs f >= 1e4 then Printf.sprintf "%.1fk" (f /. 1e3)
    else Printf.sprintf "%.0f" f

  let _fmt_ms_f ns = Printf.sprintf "%.3f" (ns /. 1e6)

  (* Render one parsed Prometheus exposition (a telemetry snapshot file
     written under `--telemetry`) as a `top`-style summary: GC activity,
     domain lifecycle and per-domain utilization, search progress. *)
  let render_telemetry families =
    let b = Buffer.create 2048 in
    let v ?labels name = Export.sample_value ?labels families name in
    let vd name = Option.value ~default:0. (v name) in
    Buffer.add_string b "runtime telemetry snapshot\n";
    Buffer.add_string b "==========================\n";
    (match v "rdfviews_snapshot_timestamp_seconds" with
    | Some ts ->
      let tm = Unix.localtime ts in
      Printf.bprintf b "captured:   %04d-%02d-%02d %02d:%02d:%02d (tick %.0f)\n"
        (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
        tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
        (vd "rdfviews_telemetry_ticks_total")
    | None -> ());
    let gc_rows =
      List.filter_map
        (fun (label, count_name, hist_base) ->
          match v count_name with
          | None -> None
          | Some n ->
            let sum = v (hist_base ^ "_sum") in
            let cnt = v (hist_base ^ "_count") in
            let mean =
              match (sum, cnt) with
              | Some s, Some c when c > 0. -> _fmt_ms_f (s /. c)
              | _ -> "-"
            in
            let total =
              match sum with Some s -> _fmt_ms_f s | None -> "-"
            in
            Some [ label; Printf.sprintf "%.0f" n; mean; total ])
        [
          ( "minor", "rdfviews_runtime_gc_minor_collections_total",
            "rdfviews_runtime_gc_minor_pause_ns" );
          ( "major", "rdfviews_runtime_gc_major_collections_total",
            "rdfviews_runtime_gc_major_pause_ns" );
          ( "compact", "rdfviews_runtime_gc_compactions_total",
            "rdfviews_runtime_gc_compact_pause_ns" );
        ]
    in
    if gc_rows <> [] then begin
      Buffer.add_string b "\ngarbage collector\n";
      _btable b ([ "phase"; "collections"; "mean_ms"; "total_ms" ] :: gc_rows);
      (match v "rdfviews_runtime_gc_max_pause_ns" with
      | Some m -> Printf.bprintf b "  max pause: %s ms\n" (_fmt_ms_f m)
      | None -> ());
      (match v "rdfviews_runtime_gc_minor_allocated_words_total" with
      | Some w -> Printf.bprintf b "  minor allocated: %s words\n" (_fmt_count w)
      | None -> ());
      (match v "rdfviews_runtime_events_lost_total" with
      | Some l when l > 0. -> Printf.bprintf b "  LOST EVENTS: %.0f\n" l
      | _ -> ())
    end
    else
      Buffer.add_string b
        "\ngarbage collector: no runtime events (OCaml 4.x build, or \
         telemetry started without Runtime_events)\n";
    let domain_indices =
      match Export.find_family families "rdfviews_parallel_work_ns_total" with
      | None -> []
      | Some f ->
        List.sort_uniq Int.compare
          (List.filter_map
             (fun s ->
               Option.bind
                 (List.assoc_opt "domain" s.Export.s_labels)
                 int_of_string_opt)
             f.Export.f_samples)
    in
    Printf.bprintf b "\ndomains: %.0f spawned, %.0f terminated\n"
      (vd "rdfviews_runtime_domain_spawns_total")
      (vd "rdfviews_runtime_domain_terminations_total");
    if domain_indices <> [] then begin
      Buffer.add_string b "\nper-domain utilization (last parallel search)\n";
      _btable b
        ([ "domain"; "work_ms"; "steal_ms"; "idle_ms"; "busy" ]
        :: List.map
             (fun i ->
               let labels = [ ("domain", string_of_int i) ] in
               let g name = Option.value ~default:0. (v ~labels name) in
               let work = g "rdfviews_parallel_work_ns_total" in
               let steal = g "rdfviews_parallel_steal_ns_total" in
               let idle = g "rdfviews_parallel_idle_ns_total" in
               let total = work +. steal +. idle in
               [
                 string_of_int i;
                 _fmt_ms_f work;
                 _fmt_ms_f steal;
                 _fmt_ms_f idle;
                 (if total > 0. then
                    Printf.sprintf "%.1f%%" (100. *. (work +. steal) /. total)
                  else "-");
               ])
             domain_indices)
    end;
    (match v "rdfviews_search_created_total" with
    | Some created ->
      Buffer.add_string b "\nsearch\n";
      Printf.bprintf b
        "  states: created %.0f, explored %.0f, duplicates %.0f, discarded \
         %.0f\n"
        created
        (vd "rdfviews_search_explored_total")
        (vd "rdfviews_search_duplicates_total")
        (vd "rdfviews_search_discarded_total");
      (match v "rdfviews_search_best_cost" with
      | Some c -> Printf.bprintf b "  best cost: %s" (_fcost c);
        (match v "rdfviews_search_initial_cost" with
        | Some i when i > 0. ->
          Printf.bprintf b " (rcr %.3f)\n" ((i -. c) /. i)
        | _ -> Buffer.add_char b '\n')
      | None -> ())
    | None -> Buffer.add_string b "\nsearch: no search counters in snapshot\n");
    let n_series =
      List.fold_left (fun acc f -> acc + List.length f.Export.f_samples) 0
        families
    in
    Printf.bprintf b "\n%d series in %d families\n" n_series
      (List.length families);
    Buffer.contents b
end
