(* Counters and timers are plain mutable records handed out to call
   sites, so an event on the hot path is a field update — no hashing.
   The [live] flag makes the shared no-op handles safe to use from a
   disabled sink without a branchy API. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

type counter = { mutable n : int; c_live : bool }

type timer = { mutable total_ns : int; mutable calls : int; t_live : bool }

type span_event = {
  span_name : string;
  depth : int;
  start_ns : int;
  elapsed_ns : int;
}

type registry = {
  cs : (string, counter) Hashtbl.t;
  ts : (string, timer) Hashtbl.t;
  mutable trace : span_event list;  (* most recently completed first *)
  mutable span_depth : int;
  born_ns : int;
}

type t = Disabled | Enabled of registry

let disabled = Disabled

let create () =
  Enabled
    {
      cs = Hashtbl.create 64;
      ts = Hashtbl.create 64;
      trace = [];
      span_depth = 0;
      born_ns = now_ns ();
    }

let is_enabled = function Disabled -> false | Enabled _ -> true

let reset = function
  | Disabled -> ()
  | Enabled r ->
    Hashtbl.iter (fun _ c -> c.n <- 0) r.cs;
    Hashtbl.iter
      (fun _ tm ->
        tm.total_ns <- 0;
        tm.calls <- 0)
      r.ts;
    r.trace <- [];
    r.span_depth <- 0

(* ---------- counters ----------------------------------------------------- *)

let noop_counter = { n = 0; c_live = false }

let counter t name =
  match t with
  | Disabled -> noop_counter
  | Enabled r -> (
    match Hashtbl.find_opt r.cs name with
    | Some c -> c
    | None ->
      let c = { n = 0; c_live = true } in
      Hashtbl.add r.cs name c;
      c)

let incr c = if c.c_live then c.n <- c.n + 1

let add c k = if c.c_live then c.n <- c.n + k

let value c = c.n

(* ---------- timers ------------------------------------------------------- *)

let noop_timer = { total_ns = 0; calls = 0; t_live = false }

let timer t name =
  match t with
  | Disabled -> noop_timer
  | Enabled r -> (
    match Hashtbl.find_opt r.ts name with
    | Some tm -> tm
    | None ->
      let tm = { total_ns = 0; calls = 0; t_live = true } in
      Hashtbl.add r.ts name tm;
      tm)

let time tm f =
  if not tm.t_live then f ()
  else begin
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        tm.total_ns <- tm.total_ns + (now_ns () - t0);
        tm.calls <- tm.calls + 1)
      f
  end

let timer_ns tm = tm.total_ns

let timer_count tm = tm.calls

(* ---------- spans -------------------------------------------------------- *)

let span t name f =
  match t with
  | Disabled -> f ()
  | Enabled r ->
    let start = now_ns () in
    let depth = r.span_depth in
    r.span_depth <- depth + 1;
    Fun.protect
      ~finally:(fun () ->
        r.span_depth <- depth;
        r.trace <-
          {
            span_name = name;
            depth;
            start_ns = start - r.born_ns;
            elapsed_ns = now_ns () - start;
          }
          :: r.trace)
      f

let spans = function
  | Disabled -> []
  | Enabled r ->
    List.stable_sort
      (fun a b -> Int.compare a.start_ns b.start_ns)
      (List.rev r.trace)

(* ---------- reading ------------------------------------------------------ *)

let sorted_bindings table extract =
  Hashtbl.fold (fun name x acc -> (name, extract x) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters = function
  | Disabled -> []
  | Enabled r -> sorted_bindings r.cs (fun c -> c.n)

let timers = function
  | Disabled -> []
  | Enabled r -> sorted_bindings r.ts (fun tm -> (tm.calls, tm.total_ns))

let find_counter t name =
  match t with
  | Disabled -> None
  | Enabled r -> Option.map (fun c -> c.n) (Hashtbl.find_opt r.cs name)

(* ---------- the global sink ---------------------------------------------- *)

let global_sink = ref Disabled

let global_gen = ref 0

let set_global t =
  global_sink := t;
  Stdlib.incr global_gen

let global () = !global_sink

let generation () = !global_gen

let cached_counter name =
  let cache = ref noop_counter in
  let seen_gen = ref (-1) in
  fun () ->
    if !seen_gen <> !global_gen then begin
      seen_gen := !global_gen;
      cache := counter !global_sink name
    end;
    !cache

let cached_timer name =
  let cache = ref noop_timer in
  let seen_gen = ref (-1) in
  fun () ->
    if !seen_gen <> !global_gen then begin
      seen_gen := !global_gen;
      cache := timer !global_sink name
    end;
    !cache

(* ---------- JSON --------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let to_string ?(indent = false) t =
    let b = Buffer.create 256 in
    let pad level = if indent then Buffer.add_string b (String.make (2 * level) ' ') in
    let newline () = if indent then Buffer.add_char b '\n' in
    let rec go level = function
      | Null -> Buffer.add_string b "null"
      | Bool x -> Buffer.add_string b (if x then "true" else "false")
      | Int i -> Buffer.add_string b (string_of_int i)
      | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string b (Printf.sprintf "%.1f" f)
        else Buffer.add_string b (Printf.sprintf "%.17g" f)
      | String s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
      | List [] -> Buffer.add_string b "[]"
      | List items ->
        Buffer.add_char b '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char b ',';
              newline ()
            end;
            pad (level + 1);
            go (level + 1) item)
          items;
        newline ();
        pad level;
        Buffer.add_char b ']'
      | Obj [] -> Buffer.add_string b "{}"
      | Obj fields ->
        Buffer.add_char b '{';
        newline ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char b ',';
              newline ()
            end;
            pad (level + 1);
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b (if indent then "\": " else "\":");
            go (level + 1) v)
          fields;
        newline ();
        pad level;
        Buffer.add_char b '}'
    in
    go 0 t;
    Buffer.contents b

  exception Parse_error of string

  (* Recursive-descent parser over a cursor; just enough JSON to read
     back what [to_string] emits (and ordinary hand-written files). *)
  let of_string text =
    let n = String.length text in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some text.[!pos] else None in
    let advance () = Stdlib.incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect ch =
      match peek () with
      | Some c when c = ch -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" ch)
    in
    let literal word value =
      if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        value
      end
      else fail ("expected " ^ word)
    in
    let utf8_of_code b code =
      if code < 0x80 then Buffer.add_char b (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance ()
          | Some '\\' -> Buffer.add_char b '\\'; advance ()
          | Some '/' -> Buffer.add_char b '/'; advance ()
          | Some 'n' -> Buffer.add_char b '\n'; advance ()
          | Some 'r' -> Buffer.add_char b '\r'; advance ()
          | Some 't' -> Buffer.add_char b '\t'; advance ()
          | Some 'b' -> Buffer.add_char b '\b'; advance ()
          | Some 'f' -> Buffer.add_char b '\012'; advance ()
          | Some 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub text !pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail "bad \\u escape"
            in
            pos := !pos + 4;
            utf8_of_code b code
          | _ -> fail "bad escape");
          go ()
        | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      let s = String.sub text start (!pos - start) in
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail ("bad number " ^ s))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> String (parse_string ())
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
      | Some ('0' .. '9' | '-') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

let to_json t =
  let counters_json =
    Json.Obj (List.map (fun (name, n) -> (name, Json.Int n)) (counters t))
  in
  let timers_json =
    Json.Obj
      (List.map
         (fun (name, (calls, total_ns)) ->
           ( name,
             Json.Obj
               [ ("count", Json.Int calls); ("total_ns", Json.Int total_ns) ] ))
         (timers t))
  in
  let spans_json =
    Json.List
      (List.map
         (fun s ->
           Json.Obj
             [
               ("name", Json.String s.span_name);
               ("depth", Json.Int s.depth);
               ("start_ns", Json.Int s.start_ns);
               ("elapsed_ns", Json.Int s.elapsed_ns);
             ])
         (spans t))
  in
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ("counters", counters_json);
      ("timers", timers_json);
      ("spans", spans_json);
    ]

let to_string t = Json.to_string ~indent:true (to_json t)

let write_file t path =
  let oc = open_out path in
  output_string oc (to_string t);
  output_char oc '\n';
  close_out oc
