(* lint: allow missing-mli — select-rule source; copied to runtime_backend.ml
   when the [runtime_events] library is absent (OCaml 4.x builds).

   No-op runtime-events backend: the API compiles everywhere, but
   [start] reports failure and [poll] never delivers an event, so
   [Obs.Runtime] degrades to inert counters on runtimes without
   [Runtime_events].  See runtime_backend.events.ml for the real
   consumer and Obs.Runtime (obs.mli) for the contract. *)

type pause_kind = Minor | Major | Compact

type lifecycle_kind = Spawn | Terminate

(* What the consumer folds each drained event into.  [on_pause] gets a
   completed GC phase's duration in nanoseconds; [on_counter] a stable
   short key (e.g. "minor_promoted_words") and the emitted amount;
   [on_lost] the number of ring-buffer events overwritten before the
   consumer got to them. *)
type callbacks = {
  on_pause : pause_kind -> int -> unit;
  on_counter : string -> int -> unit;
  on_lifecycle : lifecycle_kind -> unit;
  on_lost : int -> unit;
}

let available = false

let start () = false

let poll (_ : callbacks) = 0
