(** Version-gated shim over OCaml 5 shared-memory parallelism.

    The repository supports OCaml 4.14 (sequential only) and OCaml 5.x
    (parallel search).  This module is the single point where the two
    diverge: dune selects [multicore.ocaml5.ml] or [multicore.ocaml4.ml]
    at build time, so everything above compiles unchanged on both
    compilers and branches on {!available} at run time.

    The 4.x backend never spawns: {!spawn} raises, {!Dls} keys are plain
    per-process cells, and {!Spinlock} degenerates to an uncontended
    CAS.  Callers must therefore check {!available} before taking a
    parallel code path (see [Core.Parallel_search]). *)

val available : bool
(** [true] exactly when the runtime can spawn domains (OCaml >= 5.0). *)

val recommended_domain_count : unit -> int
(** [Domain.recommended_domain_count ()] on OCaml 5; [1] on 4.x. *)

val cpu_relax : unit -> unit
(** Hint to the processor inside a spin-wait loop ([Domain.cpu_relax]);
    a no-op on 4.x. *)

val self_index : unit -> int
(** A small integer identifying the running domain ([Domain.self] as an
    int); [0] on 4.x.  For diagnostics only — indices are not dense. *)

(** {1 Domains} *)

type 'a handle
(** A running domain that will produce an ['a] (wraps [Domain.t]). *)

val spawn : (unit -> 'a) -> 'a handle
(** Start a domain running the thunk.  @raise Failure on OCaml 4.x —
    guard call sites with {!available}. *)

val join : 'a handle -> 'a
(** Wait for the domain's result, re-raising its uncaught exception. *)

(** {1 Domain-local storage}

    Wraps [Domain.DLS].  On 4.x there is exactly one domain, so a key
    is a single lazily initialized cell with identical semantics. *)
module Dls : sig
  type 'a key

  val new_key : (unit -> 'a) -> 'a key
  (** A fresh key; the thunk computes the initial value the first time
      each domain reads the key. *)

  val get : 'a key -> 'a
  (** The current domain's value for the key (initializing it on first
      read). *)

  val set : 'a key -> 'a -> unit
  (** Set the current domain's value for the key. *)
end

(** {1 Spinlocks}

    A test-and-set spinlock over [Atomic].  Meant for critical sections
    of a few dozen instructions (hash-table probes) where a futex-based
    mutex would dominate the protected work; not fair, not reentrant. *)
module Spinlock : sig
  type t

  val create : unit -> t

  val with_lock : t -> (unit -> 'a) -> 'a
  (** Run the thunk holding the lock; always releases, also on raise. *)
end
