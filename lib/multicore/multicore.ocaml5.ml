(* lint: allow missing-mli — copy-rule source; the interface is multicore.mli
   OCaml 5 backend: real domains.  Selected by a dune rule when
   %{ocaml_version} >= 5.0; see multicore.ocaml4.ml for the sequential
   fallback and multicore.mli for the contract.
   lint: allow missing-mli -- template copied to multicore.ml by dune *)

let available = true

let recommended_domain_count () = Domain.recommended_domain_count ()

let cpu_relax () = Domain.cpu_relax ()

let self_index () = (Domain.self () :> int)

type 'a handle = 'a Domain.t

let spawn f = Domain.spawn f

let join h = Domain.join h

module Dls = struct
  type 'a key = 'a Domain.DLS.key

  let new_key f = Domain.DLS.new_key f

  let get k = Domain.DLS.get k

  let set k v = Domain.DLS.set k v
end

module Spinlock = struct
  type t = bool Atomic.t

  let create () = Atomic.make false

  let rec acquire t =
    if not (Atomic.compare_and_set t false true) then begin
      Domain.cpu_relax ();
      acquire t
    end

  let release t = Atomic.set t false

  let with_lock t f =
    acquire t;
    Fun.protect ~finally:(fun () -> release t) f
end
