(* lint: allow missing-mli — copy-rule source; the interface is multicore.mli
   OCaml 4.x backend: no domains.  Selected by a dune rule when
   %{ocaml_version} < 5.0; the API compiles but [spawn] raises, so
   callers must branch on [available] (Parallel_search falls back to
   the sequential engine).  [Atomic] has been in the stdlib since 4.12,
   so the spinlock compiles — uncontended, it is a single CAS.
   lint: allow missing-mli -- template copied to multicore.ml by dune *)

let available = false

let recommended_domain_count () = 1

let cpu_relax () = ()

let self_index () = 0

type 'a handle = 'a

let spawn _f =
  failwith "Multicore.spawn: parallel domains require OCaml >= 5.0"

let join h = h

module Dls = struct
  type 'a key = { mutable value : 'a option; init : unit -> 'a }

  let new_key init = { value = None; init }

  let get k =
    match k.value with
    | Some v -> v
    | None ->
      let v = k.init () in
      k.value <- Some v;
      v

  let set k v = k.value <- Some v
end

module Spinlock = struct
  type t = bool Atomic.t

  let create () = Atomic.make false

  let rec acquire t =
    if not (Atomic.compare_and_set t false true) then acquire t

  let release t = Atomic.set t false

  let with_lock t f =
    acquire t;
    Fun.protect ~finally:(fun () -> release t) f
end
