let column_index cols c =
  let rec find i = function
    | [] -> failwith ("Executor: unknown column " ^ c)
    | c' :: rest -> if String.equal c c' then i else find (i + 1) rest
  in
  find 0 cols

let rec eval store env expr : string list * int array list =
  match expr with
  | Core.Rewriting.Scan name -> (
    match Hashtbl.find_opt env name with
    | Some rel -> (Relation.cols rel, Relation.rows rel)
    | None -> failwith ("Executor: unknown view " ^ name))
  | Core.Rewriting.Select (conds, inner) ->
    let cols, rows = eval store env inner in
    let tests =
      List.map
        (fun cond ->
          match cond with
          | Core.Rewriting.Eq_cst (c, term) -> (
            let i = column_index cols c in
            match Rdf.Store.find_term store term with
            | Some code -> fun row -> row.(i) = code
            | None -> fun _ -> false)
          | Core.Rewriting.Eq_col (c1, c2) ->
            let i = column_index cols c1 in
            let j = column_index cols c2 in
            fun row -> row.(i) = row.(j))
        conds
    in
    (cols, List.filter (fun row -> List.for_all (fun test -> test row) tests) rows)
  | Core.Rewriting.Project (out_cols, inner) ->
    let cols, rows = eval store env inner in
    let idx = Array.of_list (List.map (column_index cols) out_cols) in
    let seen = Query.Rowset.create 64 in
    let projected =
      List.filter_map
        (fun row ->
          let tuple = Array.map (fun i -> row.(i)) idx in
          if Query.Rowset.add seen tuple then Some tuple else None)
        rows
    in
    (out_cols, projected)
  | Core.Rewriting.Rename (mapping, inner) ->
    let cols, rows = eval store env inner in
    let renamed =
      List.map
        (fun c ->
          match List.assoc_opt c mapping with Some c' -> c' | None -> c)
        cols
    in
    (renamed, rows)
  | Core.Rewriting.Join (conds, l, r) ->
    let lcols, lrows = eval store env l in
    let rcols, rrows = eval store env r in
    let pairs =
      match conds with
      | [] -> List.filter_map
                (fun c -> if List.mem c lcols then Some (c, c) else None)
                rcols
      | _ :: _ -> conds
    in
    let lkey = Array.of_list (List.map (fun (a, _) -> column_index lcols a) pairs) in
    let rkey = Array.of_list (List.map (fun (_, b) -> column_index rcols b) pairs) in
    (* output columns mirror Rewriting.columns: left columns, then the
       right columns whose names are not already present on the left *)
    let kept_right =
      List.filter
        (fun (_, c) -> not (List.mem c lcols))
        (List.mapi (fun i c -> (i, c)) rcols)
    in
    let out_cols = lcols @ List.map snd kept_right in
    (* hash join: bucket the left rows by their join-key projection,
       keyed directly by the int array (no per-probe list allocation) *)
    let table = Query.Rowset.Tbl.create (List.length lrows) in
    List.iter
      (fun row ->
        let key = Array.map (fun i -> row.(i)) lkey in
        let prev =
          match Query.Rowset.Tbl.find_opt table key with
          | Some rows -> rows
          | None -> []
        in
        Query.Rowset.Tbl.replace table key (row :: prev))
      lrows;
    let joined =
      List.concat_map
        (fun rrow ->
          let key = Array.map (fun i -> rrow.(i)) rkey in
          match Query.Rowset.Tbl.find_opt table key with
          | None -> []
          | Some lmatches ->
            List.map
              (fun lrow ->
                Array.append lrow
                  (Array.of_list (List.map (fun (i, _) -> rrow.(i)) kept_right)))
              lmatches)
        rrows
    in
    (out_cols, joined)
  | Core.Rewriting.Union branches ->
    let results = List.map (eval store env) branches in
    (match results with
    | [] -> failwith "Executor: empty union"
    | (cols, _) :: _ ->
      let seen = Query.Rowset.create 64 in
      let rows =
        List.concat_map
          (fun (_, rows) ->
            List.filter (fun row -> Query.Rowset.add seen row) rows)
          results
      in
      (cols, rows))

let execute store env expr =
  let cols, rows = eval store env expr in
  Relation.make ~name:"result" ~cols rows

let execute_query store env expr =
  let rel = execute store env expr in
  Relation.to_term_rows store rel
