(* Columnar execution of rewriting plans over materialized views.

   Intermediate results are chunks: one flat [int array] per column
   plus a row count, mirroring the batch layout of the query layer's
   plan executor.  Selections filter through a selection vector and
   gather survivors once; projections reorder column references
   without touching data; deduplication views the chunk's columns in
   place as a [Query.Batch] (its representation is transparent for
   exactly this) and runs one bulk [Rowset.add_batch] pass.  Rows are
   only materialized at the boundaries: scanning a [Relation] in and
   building the result [Relation] out. *)

type chunk = {
  cols : string list;  (* column names, in order *)
  data : int array array;  (* per-column values, each of length >= n *)
  n : int;  (* row count *)
}

let column_index cols c =
  let rec find i = function
    | [] -> failwith ("Executor: unknown column " ^ c)
    | c' :: rest -> if String.equal c c' then i else find (i + 1) rest
  in
  find 0 cols

let chunk_of_rows cols rows =
  let k = List.length cols in
  let n = List.length rows in
  let data = Array.init k (fun _ -> Array.make (max n 1) 0) in
  List.iteri
    (fun r row ->
      for c = 0 to k - 1 do
        data.(c).(r) <- row.(c)
      done)
    rows;
  { cols; data; n }

let rows_of_chunk ch =
  let k = List.length ch.cols in
  List.init ch.n (fun r -> Array.init k (fun c -> ch.data.(c).(r)))

(* View a chunk's columns in place as a dense batch — no copy; bulk
   dedup reads straight out of the chunk.  The empty selection vector
   is never consulted while [sel_n] is -1. *)
let batch_of_chunk ch =
  {
    Query.Batch.width = Array.length ch.data;
    cap = max ch.n 1;
    cols = ch.data;
    n = ch.n;
    sel = [||];
    sel_n = -1;
  }

let chunk_of_rowset cols rs =
  let k = List.length cols in
  let n = Query.Rowset.cardinal rs in
  let data = Array.init k (fun _ -> Array.make (max n 1) 0) in
  let r = ref 0 in
  Query.Rowset.iter
    (fun row ->
      for c = 0 to k - 1 do
        data.(c).(!r) <- row.(c)
      done;
      incr r)
    rs;
  { cols; data; n }

(* Set-semantics dedup of a whole chunk: one bulk pass.  When nothing
   collapses the original chunk is kept (its arrays are read-only). *)
let dedup ch =
  let rs = Query.Rowset.create (max ch.n 16) in
  ignore (Query.Rowset.add_batch rs (batch_of_chunk ch));
  if Query.Rowset.cardinal rs = ch.n then ch else chunk_of_rowset ch.cols rs

let rec eval store env expr : chunk =
  match expr with
  | Core.Rewriting.Scan name -> (
    match Hashtbl.find_opt env name with
    | Some rel -> chunk_of_rows (Relation.cols rel) (Relation.rows rel)
    | None -> failwith ("Executor: unknown view " ^ name))
  | Core.Rewriting.Select (conds, inner) ->
    let ch = eval store env inner in
    (* compile each condition to a per-row-index predicate over the
       chunk's columns *)
    let tests =
      List.map
        (fun cond ->
          match cond with
          | Core.Rewriting.Eq_cst (c, term) -> (
            let col = ch.data.(column_index ch.cols c) in
            match Rdf.Store.find_term store term with
            | Some code -> fun r -> col.(r) = code
            | None -> fun _ -> false)
          | Core.Rewriting.Eq_col (c1, c2) ->
            let a = ch.data.(column_index ch.cols c1) in
            let b = ch.data.(column_index ch.cols c2) in
            fun r -> a.(r) = b.(r))
        conds
    in
    (* selection vector of survivors, then one gather per column *)
    let sel = Array.make (max ch.n 1) 0 in
    let k = ref 0 in
    for r = 0 to ch.n - 1 do
      if List.for_all (fun test -> test r) tests then begin
        sel.(!k) <- r;
        incr k
      end
    done;
    let m = !k in
    if m = ch.n then ch
    else
      {
        ch with
        data =
          Array.map
            (fun col -> Array.init (max m 1) (fun i -> col.(sel.(i))))
            ch.data;
        n = m;
      }
  | Core.Rewriting.Project (out_cols, inner) ->
    let ch = eval store env inner in
    (* a projection only reorders column references; the dedup pass
       owns any data movement *)
    let data =
      Array.of_list
        (List.map (fun c -> ch.data.(column_index ch.cols c)) out_cols)
    in
    dedup { cols = out_cols; data; n = ch.n }
  | Core.Rewriting.Rename (mapping, inner) ->
    let ch = eval store env inner in
    let renamed =
      List.map
        (fun c ->
          match List.assoc_opt c mapping with Some c' -> c' | None -> c)
        ch.cols
    in
    { ch with cols = renamed }
  | Core.Rewriting.Join (conds, l, r) ->
    let lch = eval store env l in
    let rch = eval store env r in
    let pairs =
      match conds with
      | [] ->
        List.filter_map
          (fun c -> if List.mem c lch.cols then Some (c, c) else None)
          rch.cols
      | _ :: _ -> conds
    in
    let lkey =
      Array.of_list (List.map (fun (a, _) -> column_index lch.cols a) pairs)
    in
    let rkey =
      Array.of_list (List.map (fun (_, b) -> column_index rch.cols b) pairs)
    in
    (* output columns mirror Rewriting.columns: left columns, then the
       right columns whose names are not already present on the left *)
    let kept_right =
      List.filter
        (fun (_, c) -> not (List.mem c lch.cols))
        (List.mapi (fun i c -> (i, c)) rch.cols)
    in
    let out_cols = lch.cols @ List.map snd kept_right in
    let lw = List.length lch.cols in
    let kept = Array.of_list (List.map fst kept_right) in
    (* hash join: bucket left row INDICES by their join-key projection,
       keyed directly by the int array (no per-probe list allocation) *)
    let table = Query.Rowset.Tbl.create (max lch.n 16) in
    for r = 0 to lch.n - 1 do
      let key = Array.map (fun i -> lch.data.(i).(r)) lkey in
      let prev =
        match Query.Rowset.Tbl.find_opt table key with
        | Some rs -> rs
        | None -> []
      in
      Query.Rowset.Tbl.replace table key (r :: prev)
    done;
    (* probe with the right rows, appending matches column-wise into
       growable output vectors *)
    let width = lw + Array.length kept in
    let cap = ref 64 in
    let out = Array.init (max width 1) (fun _ -> Array.make !cap 0) in
    let n = ref 0 in
    let grow need =
      if need > !cap then begin
        let cap' = max need (2 * !cap) in
        for c = 0 to width - 1 do
          let fresh = Array.make cap' 0 in
          Array.blit out.(c) 0 fresh 0 !n;
          out.(c) <- fresh
        done;
        cap := cap'
      end
    in
    for r = 0 to rch.n - 1 do
      let key = Array.map (fun i -> rch.data.(i).(r)) rkey in
      match Query.Rowset.Tbl.find_opt table key with
      | None -> ()
      | Some lmatches ->
        List.iter
          (fun lr ->
            grow (!n + 1);
            let j = !n in
            for c = 0 to lw - 1 do
              out.(c).(j) <- lch.data.(c).(lr)
            done;
            Array.iteri
              (fun c i -> out.(lw + c).(j) <- rch.data.(i).(r))
              kept;
            n := j + 1)
          lmatches
    done;
    { cols = out_cols; data = out; n = !n }
  | Core.Rewriting.Union branches -> (
    let results = List.map (eval store env) branches in
    match results with
    | [] -> failwith "Executor: empty union"
    | [ only ] -> dedup only
    | (first : chunk) :: _ ->
      let hint = List.fold_left (fun acc ch -> acc + ch.n) 0 results in
      let rs = Query.Rowset.create (max hint 16) in
      List.iter
        (fun ch -> ignore (Query.Rowset.add_batch rs (batch_of_chunk ch)))
        results;
      chunk_of_rowset first.cols rs)

let execute store env expr =
  let ch = eval store env expr in
  Relation.make ~name:"result" ~cols:ch.cols (rows_of_chunk ch)

let execute_query store env expr =
  let rel = execute store env expr in
  Relation.to_term_rows store rel
