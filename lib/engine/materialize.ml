type env = (string, Relation.t) Hashtbl.t

let materialize_cq store (q : Query.Cq.t) =
  let rows = Query.Evaluation.eval_cq_codes store q in
  let cols = List.filter_map Query.Qterm.var_name q.head in
  if List.length cols <> List.length q.head then
    (* views with constant head positions keep positional columns *)
    let cols = List.mapi (fun i _ -> Printf.sprintf "c%d" i) q.head in
    Relation.make ~name:q.name ~cols rows
  else Relation.make ~name:q.name ~cols rows

let materialize_ucq store (u : Query.Ucq.t) =
  let rows = Query.Evaluation.eval_ucq_codes store u in
  let first = List.hd (Query.Ucq.disjuncts u) in
  let cols = List.filter_map Query.Qterm.var_name first.Query.Cq.head in
  let cols =
    if List.length cols = List.length first.Query.Cq.head then cols
    else List.mapi (fun i _ -> Printf.sprintf "c%d" i) first.Query.Cq.head
  in
  Relation.make ~name:(Query.Ucq.name u) ~cols rows

(* Materializing a view set is the multi-query optimizer's home
   ground: recommended views share plan prefixes by construction
   (relaxations of one another, common subject-property backbones), so
   pre-registering the whole workload lets shared prefixes be captured
   on the first evaluation instead of the second. *)
let materialize_views store views =
  Query.Mqo.prepare store (List.concat_map Query.Ucq.disjuncts views);
  let env = Hashtbl.create (List.length views) in
  List.iter
    (fun u ->
      let rel = materialize_ucq store u in
      Hashtbl.replace env (Relation.name rel) rel)
    views;
  env

let materialize_state store (s : Core.State.t) =
  Query.Mqo.prepare store
    (List.map (fun v -> v.Core.View.cq) s.Core.State.views);
  let env = Hashtbl.create (List.length s.Core.State.views) in
  List.iter
    (fun v ->
      let rel = materialize_cq store v.Core.View.cq in
      Hashtbl.replace env (Relation.name rel) rel)
    s.Core.State.views;
  env

let total_size_bytes store env =
  Hashtbl.fold (fun _ rel acc -> acc + Relation.size_bytes store rel) env 0

let total_cardinality env =
  Hashtbl.fold (fun _ rel acc -> acc + Relation.cardinality rel) env 0
