(* Array-backed row storage with a row -> slot index.

   Rows live in a dense prefix [0, n) of a growable array; the index
   (a Query.Rowset.Tbl, so rows hash directly, no Array.to_list keys) maps
   each stored row to its slot.  Deletion swap-removes: the last row
   moves into the vacated slot and the index is patched — O(1), where
   the former cons-list representation paid a full List.filter with a
   polymorphic [<>] per removal. *)

type t = {
  name : string;
  cols : string list;
  mutable data : int array array;  (* dense prefix [0, n) *)
  mutable n : int;
  index : int Query.Rowset.Tbl.t;  (* stored row -> its slot in [data] *)
}

let name t = t.name
let cols t = t.cols
let arity t = List.length t.cols
let cardinality t = t.n

let ensure_capacity t =
  let cap = Array.length t.data in
  if t.n >= cap then begin
    let data = Array.make (max 16 (2 * cap)) [||] in
    Array.blit t.data 0 data 0 t.n;
    t.data <- data
  end

let mem t row = Query.Rowset.Tbl.mem t.index row

let add_row t row =
  if Query.Rowset.Tbl.mem t.index row then false
  else begin
    ensure_capacity t;
    t.data.(t.n) <- row;
    Query.Rowset.Tbl.replace t.index row t.n;
    t.n <- t.n + 1;
    true
  end

let remove_row t row =
  match Query.Rowset.Tbl.find_opt t.index row with
  | None -> false
  | Some slot ->
    Query.Rowset.Tbl.remove t.index row;
    let last = t.n - 1 in
    if slot < last then begin
      let moved = t.data.(last) in
      t.data.(slot) <- moved;
      Query.Rowset.Tbl.replace t.index moved slot
    end;
    t.data.(last) <- [||];
    t.n <- last;
    true

let make ~name ~cols rows =
  let t =
    {
      name;
      cols;
      data = Array.make (max 16 (List.length rows)) [||];
      n = 0;
      index = Query.Rowset.Tbl.create (max 64 (List.length rows));
    }
  in
  List.iter (fun row -> ignore (add_row t row)) rows;
  t

let iter_rows f t =
  for i = 0 to t.n - 1 do
    f t.data.(i)
  done

let fold_rows f t init =
  let acc = ref init in
  for i = 0 to t.n - 1 do
    acc := f t.data.(i) !acc
  done;
  !acc

let rows t = List.rev (fold_rows (fun row acc -> row :: acc) t [])

let project_indices t cols =
  List.map
    (fun c ->
      let rec find i = function
        | [] -> failwith ("Relation.project_indices: unknown column " ^ c)
        | c' :: rest -> if String.equal c c' then i else find (i + 1) rest
      in
      find 0 t.cols)
    cols

let size_bytes store t =
  fold_rows
    (fun row acc ->
      Array.fold_left
        (fun acc code -> acc + Rdf.Term.size (Rdf.Store.decode_term store code))
        acc row)
    t 0

let to_term_rows store t =
  List.map (Array.map (Rdf.Store.decode_term store)) (rows t)
