(** Materialized relations: named, column-labeled sets of
    dictionary-encoded tuples — the physical representation of a
    materialized view.

    Rows live in a growable array with a row → slot hash index
    ([Query.Rowset.Tbl], so membership never allocates a list key);
    insertion is amortized O(1) and removal is an O(1) swap-remove.
    Row enumeration order is unspecified (set semantics). *)

type t

val make : name:string -> cols:string list -> int array list -> t
(** Builds a relation, deduplicating rows (set semantics). *)

val name : t -> string
val cols : t -> string list

val arity : t -> int
val cardinality : t -> int

val mem : t -> int array -> bool

val add_row : t -> int array -> bool
(** Insert a tuple; [false] when already present.  The array is
    retained — do not mutate it afterwards. *)

val remove_row : t -> int array -> bool
(** Swap-remove a tuple; [false] when absent. *)

val rows : t -> int array list
(** The stored rows (shared, not copied — treat as read-only). *)

val iter_rows : (int array -> unit) -> t -> unit
val fold_rows : (int array -> 'a -> 'a) -> t -> 'a -> 'a

val project_indices : t -> string list -> int list
(** Column indices of the given column names.  Raises [Failure] on an
    unknown column. *)

val size_bytes : Rdf.Store.t -> t -> int
(** Actual storage footprint: the summed byte sizes of the decoded terms
    of every tuple. *)

val to_term_rows : Rdf.Store.t -> t -> Rdf.Term.t array list
