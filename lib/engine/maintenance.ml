module SMap = Map.Make (String)

(* Unify one atom with a concrete encoded triple, starting from an
   existing binding environment. *)
let unify_atom store bindings (atom : Query.Atom.t) (s, p, o) =
  let unify_pos acc term code =
    match acc with
    | None -> None
    | Some env -> (
      match term with
      | Query.Qterm.Cst c -> (
        match Rdf.Store.find_term store c with
        | Some code' when code' = code -> Some env
        | Some _ | None -> None)
      | Query.Qterm.Var x -> (
        match SMap.find_opt x env with
        | Some bound -> if bound = code then Some env else None
        | None -> Some (SMap.add x code env)))
  in
  unify_pos
    (unify_pos (unify_pos (Some bindings) atom.Query.Atom.s s) atom.Query.Atom.p p)
    atom.Query.Atom.o o

(* Evaluate the query with some variables pre-bound, by substituting the
   bindings into the body and evaluating the remaining pattern. *)
let eval_with_bindings store (q : Query.Cq.t) bindings skip_index =
  let substituted =
    Query.Cq.subst
      (fun x ->
        match SMap.find_opt x bindings with
        | Some code ->
          Some (Query.Qterm.Cst (Rdf.Store.decode_term store code))
        | None -> None)
      q
  in
  let remaining =
    List.filteri (fun i _ -> i <> skip_index) substituted.Query.Cq.body
  in
  (* transient evaluation: delta queries run interleaved with store
     mutation, so every one sees a fresh store version — registering
     them with the multi-query optimizer could never promote a capture
     and would only churn its seen table *)
  match remaining with
  | [] ->
    (* single-atom view: the delta tuple is fully determined *)
    Query.Evaluation.eval_cq_codes_transient store
      (Query.Cq.make ~name:q.Query.Cq.name ~head:substituted.Query.Cq.head
         ~body:substituted.Query.Cq.body)
  | _ ->
    Query.Evaluation.eval_cq_codes_transient store
      (Query.Cq.make ~name:q.Query.Cq.name ~head:substituted.Query.Cq.head
         ~body:remaining)

let delta_insert store (q : Query.Cq.t) triple =
  let seen = Query.Rowset.create 16 in
  let deltas = ref [] in
  List.iteri
    (fun i atom ->
      match unify_atom store SMap.empty atom triple with
      | None -> ()
      | Some bindings ->
        List.iter
          (fun tuple ->
            if Query.Rowset.add seen tuple then deltas := tuple :: !deltas)
          (eval_with_bindings store q bindings i))
    q.Query.Cq.body;
  !deltas

let insert_triple store views triple =
  if not (Rdf.Store.add store triple) then 0
  else
    let encoded =
      match
        ( Rdf.Store.find_term store triple.Rdf.Triple.s,
          Rdf.Store.find_term store triple.Rdf.Triple.p,
          Rdf.Store.find_term store triple.Rdf.Triple.o )
      with
      | Some s, Some p, Some o -> (s, p, o)
      | _ -> assert false
    in
    List.fold_left
      (fun acc (cq, rel) ->
        List.fold_left
          (fun acc tuple -> if Relation.add_row rel tuple then acc + 1 else acc)
          acc (delta_insert store cq encoded))
      0 views

let delete_triple store views triple =
  match
    ( Rdf.Store.find_term store triple.Rdf.Triple.s,
      Rdf.Store.find_term store triple.Rdf.Triple.p,
      Rdf.Store.find_term store triple.Rdf.Triple.o )
  with
  | Some s, Some p, Some o when Rdf.Store.mem_encoded store (s, p, o) ->
    (* candidates computed while the triple is still present *)
    let candidates =
      List.map (fun (cq, rel) -> (cq, rel, delta_insert store cq (s, p, o))) views
    in
    let removed = Rdf.Store.remove_encoded store (s, p, o) in
    assert removed;
    List.fold_left
      (fun acc (cq, rel, tuples) ->
        List.fold_left
          (fun acc tuple ->
            (* still derivable without the deleted triple? *)
            let bound =
              List.fold_left2
                (fun env term code ->
                  match term with
                  | Query.Qterm.Var x -> SMap.add x code env
                  | Query.Qterm.Cst _ -> env)
                SMap.empty cq.Query.Cq.head (Array.to_list tuple)
            in
            let still =
              eval_with_bindings store cq bound (-1) <> []
            in
            if (not still) && Relation.remove_row rel tuple then acc + 1
            else acc)
          acc tuples)
      0 candidates
  | _ -> 0
