type which = Pruning | Greedy | Heuristic

let name = function
  | Pruning -> "Pruning"
  | Greedy -> "Greedy"
  | Heuristic -> "Heuristic"

exception Resources_exhausted of [ `Time | `Memory ]

type run_state = {
  estimator : Cost.t;
  options : Search.options;
  started : float;
  mutable created : int;
  mutable duplicates : int;
  mutable discarded : int;
  mutable explored : int;
  mutable live_states : int;
}

let now () = Unix.gettimeofday ()

let check_resources rs =
  (match rs.options.Search.time_budget with
  | Some budget ->
    if now () -. rs.started > budget then raise (Resources_exhausted `Time)
  | None -> ());
  match rs.options.Search.max_states with
  | Some cap -> if rs.live_states > cap then raise (Resources_exhausted `Memory)
  | None -> ()

(* Full closure of a one-query state under VB, SC and JC (stratified
   development, as in [21]: view breaks and edge removals on the isolated
   query). *)
let develop_query rs state =
  let seen = State.Tbl.create 256 in
  let results = ref [] in
  let pending = Queue.create () in
  let push rank s =
    rs.created <- rs.created + 1;
    if Search.violates_stop rs.options s then
      rs.discarded <- rs.discarded + 1
    else
    let key = State.key s in
    if State.Tbl.mem seen key then rs.duplicates <- rs.duplicates + 1
    else begin
      State.Tbl.replace seen key ();
      rs.live_states <- rs.live_states + 1;
      check_resources rs;
      results := s :: !results;
      Queue.add (s, rank) pending
    end
  in
  push 0 state;
  while not (Queue.is_empty pending) do
    let s, rank = Queue.pop pending in
    rs.explored <- rs.explored + 1;
    check_resources rs;
    List.iter
      (fun kind ->
        let krank = Transition.kind_rank kind in
        if krank >= rank then
          List.iter (fun succ -> push krank succ) (Transition.successors s kind))
      [ Transition.VB; Transition.SC; Transition.JC ]
  done;
  !results

let merge_states a b =
  let merged =
    State.make
      ~views:(a.State.views @ b.State.views)
      ~rewritings:(a.State.rewritings @ b.State.rewritings)
  in
  Transition.fusion_closure merged

let cost rs s = Cost.state_cost rs.estimator s

let best_of rs states =
  match states with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun acc s -> if cost rs s < cost rs acc then s else acc)
         first rest)

(* Pairwise-dominance pruning as in [21]: a combined partial state is
   dropped when another covers the same queries at lower cost AND offers
   a superset of fusable view shapes; we approximate by cost plus view
   count (cheaper with no more views dominates). *)
let prune_dominated rs states =
  let info =
    List.map (fun s -> (s, cost rs s, List.length s.State.views)) states
  in
  let dominated (s, c, n) =
    List.exists
      (fun (s', c', n') ->
        (* lint: allow phys-equal — self-exclusion among list elements *)
        (not (s == s')) && c' <= c && n' <= n && (c' < c || n' < n))
      info
  in
  let kept = List.filter (fun entry -> not (dominated entry)) info in
  rs.discarded <- rs.discarded + (List.length states - List.length kept);
  List.map (fun (s, _, _) -> s) kept

(* Heuristic selection of the per-query states to retain: the best one,
   plus any state sharing a fusable view body with some other query's
   developed states. *)
let heuristic_filter rs per_query =
  let body_keys states =
    List.concat_map
      (fun s -> List.map View.canonical_body s.State.views)
      states
    |> List.sort_uniq String.compare
  in
  List.mapi
    (fun i states ->
      let others =
        List.concat
          (List.filteri (fun j _ -> j <> i) per_query)
      in
      let other_keys = body_keys others in
      let best = best_of rs states in
      let fusable s =
        List.exists
          (fun v -> List.mem (View.canonical_body v) other_keys)
          s.State.views
      in
      let is_best s =
        (* lint: allow phys-equal — identity of the already-chosen best *)
        match best with Some b -> s == b | None -> false
      in
      let kept = List.filter (fun s -> is_best s || fusable s) states in
      rs.discarded <- rs.discarded + (List.length states - List.length kept);
      (* fusable states are still pruned by dominance before combining *)
      prune_dominated rs kept)
    per_query

let combine rs which per_query =
  match per_query with
  | [] -> []
  | first :: rest ->
    List.fold_left
      (fun combos states ->
        let merged =
          List.concat_map
            (fun c ->
              List.map
                (fun s ->
                  rs.created <- rs.created + 1;
                  check_resources rs;
                  merge_states c s)
                states)
            combos
        in
        (* only the kept combined states occupy memory; the transient
           merges above are accounted as created *)
        let kept =
          match which with
          | Greedy -> (
            match best_of rs merged with Some b -> [ b ] | None -> [])
          | Pruning | Heuristic -> prune_dominated rs merged
        in
        rs.live_states <- rs.live_states + List.length kept;
        check_resources rs;
        kept)
      first rest

let run estimator options which workload =
  let reference = State.initial workload in
  let initial_cost = Cost.state_cost estimator reference in
  let rs =
    {
      estimator;
      options;
      started = now ();
      created = 0;
      duplicates = 0;
      discarded = 0;
      explored = 0;
      live_states = 0;
    }
  in
  let outcome =
    try
      let per_query =
        List.map
          (fun q -> develop_query rs (State.initial [ q ]))
          workload
      in
      let per_query =
        match which with
        | Heuristic -> heuristic_filter rs per_query
        | Pruning ->
          (* [21]: dominated partial (one-query) states are discarded
             before any combination *)
          List.map (prune_dominated rs) per_query
        | Greedy -> per_query
      in
      let combos = combine rs which per_query in
      `Finished (best_of rs combos)
    with Resources_exhausted reason -> `Exhausted reason
  in
  let best, completed, oom =
    match outcome with
    | `Finished (Some b) when cost rs b <= initial_cost -> (b, true, false)
    | `Finished _ -> (reference, true, false)
    | `Exhausted `Memory -> (reference, false, true)
    | `Exhausted `Time -> (reference, false, false)
  in
  {
    Search.best;
    best_cost = Cost.state_cost estimator best;
    initial_cost;
    created = rs.created;
    duplicates = rs.duplicates;
    discarded = rs.discarded;
    explored = rs.explored;
    elapsed = now () -. rs.started;
    trajectory = [];
    completed;
    out_of_memory = oom;
  }
