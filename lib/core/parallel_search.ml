(* Parallel view-selection search over OCaml 5 domains.

   Two modes, both built from Search.Internal's building blocks so that
   the sequential engine remains the single source of truth for what a
   search step means:

   - Deterministic: the coordinating domain replays the exact
     sequential worklist (FIFO for EXNAIVE/EXSTR, LIFO for DFS) and is
     the only domain that touches the engine; worker domains
     speculatively precompute the pure half of each expansion
     (successor generation + AVF collapse + key forcing) for frontier
     states published on a fixed-size board.  Every accounting decision
     is replayed in sequential order, so the report is identical to the
     sequential run's.

   - Free: the frontier is sharded across per-domain work-stealing
     deques; dedup goes through the shared Shard_tbl; each domain keeps
     its own cost estimator, counters, incumbent and Obs registry, all
     merged after the join.  Counters and exploration order are
     schedule-dependent; on completed runs the explored distinct-state
     set — and hence the best cost — matches the sequential fixpoint.

   GSTR is inherently sequential (each stage is a closure from the
   single best state of the previous one) and falls back, as does
   anything on OCaml 4.x or with jobs <= 1. *)

module I = Search.Internal

type mode = Deterministic | Free

let mode_name = function Deterministic -> "deterministic" | Free -> "free"

let mode_of_string s =
  match String.lowercase_ascii s with
  | "det" | "deterministic" -> Some Deterministic
  | "free" -> Some Free
  | _ -> None

(* Obs handles mirroring Search's: same metric names, so per-domain
   registries line up with the sequential engine's and merge cleanly. *)
let obs_created = Obs.cached_counter "search.created"
let obs_duplicates = Obs.cached_counter "search.duplicates"
let obs_discarded = Obs.cached_counter "search.discarded"
let obs_explored = Obs.cached_counter "search.explored"
let obs_reopened = Obs.cached_counter "search.reopened"
let obs_expand_time = Obs.cached_timer "search.expand"
let obs_expand_hist = Obs.cached_histogram "search.expand.ns"

let obs_stratum_created =
  let arr =
    Array.make (List.length Transition.all_kinds)
      (Obs.cached_counter "search.stratum.VB.created")
  in
  List.iter
    (fun k ->
      arr.(Transition.kind_rank k) <-
        Obs.cached_counter
          ("search.stratum." ^ Transition.kind_name k ^ ".created"))
    Transition.all_kinds;
  arr

(* Per-domain utilization, folded into the coordinator's ambient sink
   after the join — same post-join discipline as the per-domain Obs
   registries, so workers never touch the shared sink.  Each entry is
   [(slot, work_ns, steal_ns, total_ns)]: [work] is time inside
   expansions (deterministic mode: speculations), [steal] time probing
   other domains' deques, [idle] the rest of the domain's wall clock
   (backoff, board scans, lock waits).  Slots are this run's worker
   indices — slot 0 is the coordinating domain — not runtime domain
   ids.  The exporter renders these as one Prometheus family per
   quantity with a [domain] label. *)
let note_utilization entries =
  let sink = Obs.global () in
  if Obs.is_enabled sink then begin
    let agg_work = ref 0 and agg_steal = ref 0 and agg_idle = ref 0 in
    List.iter
      (fun (slot, work, steal, total) ->
        let idle =
          let i = total - work - steal in
          if i < 0 then 0 else i
        in
        agg_work := !agg_work + work;
        agg_steal := !agg_steal + steal;
        agg_idle := !agg_idle + idle;
        let dom name v =
          Obs.add
            (Obs.counter sink (Printf.sprintf "parallel.domain.%d.%s" slot name))
            v
        in
        dom "work_ns" work;
        dom "steal_ns" steal;
        dom "idle_ns" idle)
      entries;
    Obs.add (Obs.counter sink "parallel.work_ns") !agg_work;
    Obs.add (Obs.counter sink "parallel.steal_ns") !agg_steal;
    Obs.add (Obs.counter sink "parallel.idle_ns") !agg_idle
  end
[@@coordinator_only]

(* ---------- deterministic mode ------------------------------------------- *)

(* The pure half of one expansion, in the exact order the sequential
   engine would admit the successors: kinds in [allowed_kinds] order,
   successors in generation order, each AVF-collapsed and its identity
   key forced (the expensive parts).  Runs on any domain. *)
let speculate options state rank =
  List.concat_map
    (fun kind ->
      let rk = I.rank_of options kind in
      List.map
        (fun (succ, delta) ->
          let succ, delta = I.collapse options ~delta succ in
          ignore (State.key succ);
          (succ, delta, rk))
        (Transition.successors_with_delta state kind))
    (I.allowed_kinds options rank)
[@@domain_safe]

type det_task = {
  dt_state : State.t;
  dt_rank : int;
  dt_status : int Atomic.t;  (* 0 free, 1 claimed, 2 done *)
  mutable dt_result : (State.t * Delta.t * int) list;  (* valid once done *)
  mutable dt_exn : exn option;  (* speculation raised; re-raised on consume *)
  mutable dt_slot : int;  (* board slot, -1 if never published *)
}

(* How many frontier tasks are visible to workers at once.  The
   coordinator publishes tasks as worklist items are created and
   retires them as it consumes results, so the board is a sliding
   window over the frontier, not the whole frontier. *)
let board_size = 128

(* Speculation never mutates shared state, so a worker may compute a
   task the coordinator ends up not needing (a stale board entry): the
   wasted work is bounded by the board size.  An exception raised by a
   speculation is stored on the task and re-raised by the coordinator
   when it consumes it — the computation is deterministic, so the
   sequential run would have raised the same exception at the same
   expansion. *)
(* Returns the worker's (work_ns, total_ns): time inside speculations
   vs. the domain's whole wall clock, for utilization accounting. *)
let det_worker board stop options =
  let t_begin = Obs.now_ns () in
  let work_ns = ref 0 in
  let n = Array.length board in
  let rec go i claimed =
    if Atomic.get stop then ()
    else if i >= n then begin
      (* an idle pass: back off instead of hammering the board *)
      if not claimed then Multicore.cpu_relax ();
      go 0 false
    end
    else begin
      let claimed =
        match Atomic.get board.(i) with
        | Some t
          when Atomic.get t.dt_status = 0
               && Atomic.compare_and_set t.dt_status 0 1 ->
          let s0 = Obs.now_ns () in
          (match
             (* lint: allow catch-all — stored, re-raised by the coordinator *)
             try Ok (speculate options t.dt_state t.dt_rank) with e -> Error e
           with
          | Ok r -> t.dt_result <- r
          | Error e -> t.dt_exn <- Some e);
          work_ns := !work_ns + (Obs.now_ns () - s0);
          Atomic.set t.dt_status 2;
          true
        | _ -> claimed
      in
      go (i + 1) claimed
    end
  in
  go 0 false;
  (!work_ns, Obs.now_ns () - t_begin)
[@@domain_safe]

let det_run ~jobs p =
  let engine = p.I.p_engine in
  let options = I.engine_options engine in
  let board = Array.init board_size (fun _ -> Atomic.make None) in
  let stop = Atomic.make false in
  let free_slots = ref (List.init board_size Fun.id) in
  let make_task state rank =
    let t =
      {
        dt_state = state;
        dt_rank = rank;
        dt_status = Atomic.make 0;
        dt_result = [];
        dt_exn = None;
        dt_slot = -1;
      }
    in
    (match !free_slots with
    | s :: rest ->
      free_slots := rest;
      t.dt_slot <- s;
      Atomic.set board.(s) (Some t)
    | [] -> ());
    t
  in
  let retire t =
    if t.dt_slot >= 0 then begin
      Atomic.set board.(t.dt_slot) None;
      free_slots := t.dt_slot :: !free_slots
    end
  in
  (* The coordinator claims unstarted tasks itself (no waiting on a
     worker that might not get there); for claimed ones it spins until
     publication — the worker is mid-speculation, which is finite. *)
  let consume t =
    if Atomic.compare_and_set t.dt_status 0 1 then begin
      t.dt_result <- speculate options t.dt_state t.dt_rank;
      Atomic.set t.dt_status 2
    end
    else
      while Atomic.get t.dt_status <> 2 do
        Multicore.cpu_relax ()
      done;
    retire t;
    match t.dt_exn with Some e -> raise e | None -> t.dt_result
  in
  let expand_task t =
    let results = consume t in
    I.note_explored engine;
    I.with_expand_metrics t.dt_rank @@ fun () ->
    List.filter_map
      (fun (succ, delta, rk) ->
        match I.register engine ~rank:rk ~parent:t.dt_state ~delta succ with
        | Some (s, r) -> Some (make_task s r)
        | None -> None)
      results
  in
  let workers =
    List.init (jobs - 1) (fun _ ->
        Multicore.spawn (fun () -> det_worker board stop options))
  in
  let completed = ref true in
  (* Joined in [finally] so the handles are reaped even when the replay
     raises; utilization is only recorded on the normal path.  The
     coordinator (slot 0) gets no entry here — it replays the
     sequential worklist, so its wall clock is the run itself. *)
  let util = ref [] in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      util :=
        List.mapi
          (fun i h ->
            let work, total = Multicore.join h in
            (i + 1, work, 0, total))
          workers)
    (fun () ->
      let t0 = make_task p.I.p_initial 0 in
      match options.Search.strategy with
      | Search.Dfs ->
        let pending = ref [ t0 ] in
        let rec loop () =
          match !pending with
          | [] -> ()
          | t :: rest ->
            if I.should_stop engine then completed := false
            else begin
              pending := expand_task t @ rest;
              loop ()
            end
        in
        loop ()
      | Search.Exnaive | Search.Exstr ->
        let pending = Queue.create () in
        Queue.add t0 pending;
        let rec loop () =
          if not (Queue.is_empty pending) then
            if I.should_stop engine then completed := false
            else begin
              let t = Queue.pop pending in
              List.iter (fun t' -> Queue.add t' pending) (expand_task t);
              loop ()
            end
        in
        loop ()
      | Search.Gstr -> assert false (* routed to the sequential engine *));
  note_utilization !util;
  I.epilogue p ~completed:!completed
[@@coordinator_only]

(* ---------- free mode ----------------------------------------------------- *)

(* A two-stack deque under a spinlock: [dq_old] oldest-first, [dq_young]
   newest-first; reversals move elements between them amortized O(1).
   The owner pushes at the young end and pops young (DFS) or old (BFS);
   thieves take the opposite end. *)
type dq = {
  dq_lock : Multicore.Spinlock.t;
  mutable dq_old : (State.t * int) list [@guarded_by "dq_lock"];
  mutable dq_young : (State.t * int) list [@guarded_by "dq_lock"];
}

let dq_create () =
  { dq_lock = Multicore.Spinlock.create (); dq_old = []; dq_young = [] }

let dq_push dq item =
  Multicore.Spinlock.with_lock dq.dq_lock (fun () ->
      dq.dq_young <- item :: dq.dq_young)

let dq_take_newest dq =
  Multicore.Spinlock.with_lock dq.dq_lock (fun () ->
      match dq.dq_young with
      | x :: r ->
        dq.dq_young <- r;
        Some x
      | [] -> (
        match List.rev dq.dq_old with
        | x :: r ->
          dq.dq_old <- [];
          dq.dq_young <- r;
          Some x
        | [] -> None))

let dq_take_oldest dq =
  Multicore.Spinlock.with_lock dq.dq_lock (fun () ->
      match dq.dq_old with
      | x :: r ->
        dq.dq_old <- r;
        Some x
      | [] -> (
        match List.rev dq.dq_young with
        | x :: r ->
          dq.dq_young <- [];
          dq.dq_old <- r;
          Some x
        | [] -> None))

(* Everything the worker domains share.  [sh_stop]: 0 running, 1 time
   budget exceeded, 2 state cap exceeded, 3 a worker raised. *)
type shared = {
  sh_options : Search.options;
  sh_lifo : bool;
  sh_stats : Stats.Statistics.t;
  sh_weights : Cost.weights;
  sh_strict : Invariant.reference option;
  sh_seen : Shard_tbl.t;
  sh_deques : dq array;
  sh_outstanding : int Atomic.t;
  sh_stop : int Atomic.t;
  sh_started : float;
  sh_initial : State.t;
  sh_initial_cost : float;
  sh_obs_enabled : bool;
}

type worker_out = {
  o_index : int;  (* this run's worker slot, 0 = coordinator *)
  o_created : int;
  o_duplicates : int;
  o_discarded : int;
  o_explored : int;
  o_best : State.t;
  o_best_cost : float;
  o_trajectory : (float * float) list;  (* newest first *)
  o_registry : Obs.t option;  (* the worker's own sink, to merge *)
  o_work_ns : int;  (* time inside expansions *)
  o_steal_ns : int;  (* time probing other deques *)
  o_total_ns : int;  (* the domain's whole wall clock *)
}

let free_worker sh ~index ~estimator ~registry =
  let t_begin = Obs.now_ns () in
  let work_ns = ref 0
  and steal_ns = ref 0 in
  let created = ref 0
  and duplicates = ref 0
  and discarded = ref 0
  and explored = ref 0 in
  let best = ref sh.sh_initial
  and best_cost = ref sh.sh_initial_cost
  and traj = ref [] in
  let own = sh.sh_deques.(index) in
  let jobs = Array.length sh.sh_deques in
  let take_own () =
    if sh.sh_lifo then dq_take_newest own else dq_take_oldest own
  in
  (* deterministic victim order: (index+1), (index+2), ... *)
  let steal () =
    let rec try_victim k =
      if k >= jobs then None
      else
        let v = sh.sh_deques.((index + k) mod jobs) in
        match
          if sh.sh_lifo then dq_take_oldest v else dq_take_newest v
        with
        | Some _ as it -> it
        | None -> try_victim (k + 1)
    in
    try_victim 1
  in
  let push item =
    Atomic.incr sh.sh_outstanding;
    dq_push own item
  in
  let elapsed () = Unix.gettimeofday () -. sh.sh_started in
  let check_budget () =
    (match sh.sh_options.Search.time_budget with
    | Some b when elapsed () > b ->
      ignore (Atomic.compare_and_set sh.sh_stop 0 1)
    | _ -> ());
    match sh.sh_options.Search.max_states with
    | Some cap when Shard_tbl.population sh.sh_seen > cap ->
      ignore (Atomic.compare_and_set sh.sh_stop 0 2)
    | _ -> ()
  in
  let admit ~parent ~rk ~delta succ =
    let succ, delta = I.collapse sh.sh_options ~delta succ in
    incr created;
    Obs.incr (obs_created ());
    Obs.incr (obs_stratum_created.(rk) ());
    if Search.violates_stop sh.sh_options succ then begin
      incr discarded;
      Obs.incr (obs_discarded ())
    end
    else
      match Shard_tbl.visit sh.sh_seen (State.key succ) rk with
      | Shard_tbl.Duplicate ->
        incr duplicates;
        Obs.incr (obs_duplicates ())
      | Shard_tbl.Reopened ->
        incr duplicates;
        Obs.incr (obs_duplicates ());
        Obs.incr (obs_reopened ());
        push (succ, rk)
      | Shard_tbl.New ->
        let cost = Cost.state_cost_delta estimator ~parent ~delta succ in
        (match sh.sh_strict with
        | Some reference -> Invariant.assert_valid ~estimator reference succ
        | None -> ());
        if cost < !best_cost then begin
          best := succ;
          best_cost := cost;
          traj := (elapsed (), cost) :: !traj
        end;
        (match sh.sh_options.Search.on_accept with
        | Some hook -> hook succ
        | None -> ());
        push (succ, rk)
  in
  let expand (state, rank) =
    incr explored;
    Obs.incr (obs_explored ());
    (Obs.time_with (obs_expand_time ()) (obs_expand_hist ()) @@ fun () ->
     List.iter
       (fun kind ->
         let rk = I.rank_of sh.sh_options kind in
         List.iter
           (fun (succ, delta) -> admit ~parent:state ~rk ~delta succ)
           (Transition.successors_with_delta state kind))
       (I.allowed_kinds sh.sh_options rank));
    Atomic.decr sh.sh_outstanding
  in
  let expand it =
    let s0 = Obs.now_ns () in
    expand it;
    work_ns := !work_ns + (Obs.now_ns () - s0)
  in
  let rec loop () =
    if Atomic.get sh.sh_stop <> 0 then ()
    else begin
      check_budget ();
      match take_own () with
      | Some it ->
        expand it;
        loop ()
      | None -> (
        let s0 = Obs.now_ns () in
        let stolen = steal () in
        steal_ns := !steal_ns + (Obs.now_ns () - s0);
        match stolen with
        | Some it ->
          expand it;
          loop ()
        | None ->
          if Atomic.get sh.sh_outstanding = 0 then ()
          else begin
            Multicore.cpu_relax ();
            loop ()
          end)
    end
  in
  (* A raising worker first flips the stop flag so its siblings drain
     and exit (its in-flight item never returns to the outstanding
     count); the exception is re-raised after the join. *)
  match
    (* lint: allow catch-all — re-raised on the coordinating domain *)
    try Ok (loop ()) with e ->
      Atomic.set sh.sh_stop 3;
      Error e
  with
  | Ok () ->
    Ok
      {
        o_index = index;
        o_created = !created;
        o_duplicates = !duplicates;
        o_discarded = !discarded;
        o_explored = !explored;
        o_best = !best;
        o_best_cost = !best_cost;
        o_trajectory = !traj;
        o_registry = registry;
        o_work_ns = !work_ns;
        o_steal_ns = !steal_ns;
        o_total_ns = Obs.now_ns () - t_begin;
      }
  | Error e -> Error e
[@@domain_safe]

(* coordinator_only: spawns the workers and replays their results into
   the engine through Search.Internal. *)
let free_run ~jobs p =
  let engine = p.I.p_engine in
  let options = I.engine_options engine in
  let estimator = I.engine_estimator engine in
  let _, initial_cost = I.engine_best engine in
  let seen = Shard_tbl.create () in
  ignore (Shard_tbl.visit seen (State.key p.I.p_initial) 0);
  let sh =
    {
      sh_options = options;
      sh_lifo =
        (match options.Search.strategy with
        | Search.Dfs -> true
        | Search.Exnaive | Search.Exstr | Search.Gstr -> false);
      sh_stats = Cost.stats estimator;
      sh_weights = Cost.weights estimator;
      sh_strict = I.engine_strict_reference engine;
      sh_seen = seen;
      sh_deques = Array.init jobs (fun _ -> dq_create ());
      sh_outstanding = Atomic.make 1;
      sh_stop = Atomic.make 0;
      sh_started = Unix.gettimeofday ();
      sh_initial = p.I.p_initial;
      sh_initial_cost = initial_cost;
      sh_obs_enabled = Obs.is_enabled (Obs.global ());
    }
  in
  dq_push sh.sh_deques.(0) (p.I.p_initial, 0);
  let handles =
    List.init (jobs - 1) (fun i ->
        Multicore.spawn (fun () ->
            let registry =
              if sh.sh_obs_enabled then begin
                let r = Obs.create () in
                Obs.set_global r;
                Some r
              end
              else None
            in
            let estimator = Cost.create sh.sh_stats sh.sh_weights in
            free_worker sh ~index:(i + 1) ~estimator ~registry))
  in
  (* the coordinator is worker 0, on the engine's own estimator and the
     ambient registry *)
  let out0 = free_worker sh ~index:0 ~estimator ~registry:None in
  let outs = out0 :: List.map Multicore.join handles in
  (* merge the per-domain registries even when a worker failed: partial
     metrics beat silently dropped ones *)
  let main_sink = Obs.global () in
  List.iter
    (fun out ->
      match out with
      | Ok { o_registry = Some reg; _ } -> Obs.merge_into ~into:main_sink reg
      | Ok _ | Error _ -> ())
    outs;
  (match
     List.filter_map (function Error e -> Some e | Ok _ -> None) outs
   with
  | e :: _ -> raise e
  | [] -> ());
  let outs = List.filter_map (function Ok o -> Some o | Error _ -> None) outs in
  List.iter
    (fun o ->
      I.absorb_totals engine ~created:o.o_created ~duplicates:o.o_duplicates
        ~discarded:o.o_discarded ~explored:o.o_explored)
    outs;
  note_utilization
    (List.map
       (fun o -> (o.o_index, o.o_work_ns, o.o_steal_ns, o.o_total_ns))
       outs);
  (* merged incumbent: lowest cost; exact ties broken on the state key
     so the pick does not depend on the schedule *)
  let base_trajectory = I.engine_trajectory engine in
  let best, best_cost =
    List.fold_left
      (fun (bs, bc) o ->
        if
          o.o_best_cost < bc
          || o.o_best_cost = bc
             && String.compare (State.key_string o.o_best) (State.key_string bs)
                < 0
        then (o.o_best, o.o_best_cost)
        else (bs, bc))
      (I.engine_best engine) outs
  in
  I.offer_best engine best best_cost;
  (* merged trajectory: all domains' samples in time order, filtered to
     the running minimum over the engine's initial samples *)
  let samples =
    List.sort
      (fun (a, _) (b, _) -> Float.compare a b)
      (List.concat_map (fun o -> o.o_trajectory) outs)
  in
  let merged =
    List.fold_left
      (fun acc (t, c) ->
        match acc with
        | (_, c0) :: _ when c < c0 -> (t, c) :: acc
        | _ -> acc)
      base_trajectory samples
  in
  I.set_trajectory engine merged;
  (match Atomic.get sh.sh_stop with 2 -> I.mark_oom engine | _ -> ());
  let completed = Atomic.get sh.sh_stop = 0 in
  I.epilogue p ~completed
[@@coordinator_only]

(* ---------- entry points -------------------------------------------------- *)

let sequential_only options =
  match options.Search.strategy with
  | Search.Gstr -> true
  | Search.Exnaive | Search.Exstr | Search.Dfs -> false

let run_from ?(jobs = 1) ?(mode = Deterministic) estimator options initial =
  let jobs = max 1 jobs in
  if jobs = 1 || (not Multicore.available) || sequential_only options then
    Search.run_from estimator options initial
  else
    I.with_run_metrics @@ fun () ->
    let p = I.prologue estimator options initial in
    match mode with
    | Deterministic -> det_run ~jobs p
    | Free -> free_run ~jobs p
[@@coordinator_only]

let run ?jobs ?mode stats options workload =
  let estimator = Cost.create stats options.Search.weights in
  run_from ?jobs ?mode estimator options (State.initial workload)
[@@coordinator_only]
