(** The estimated state cost cε (§3.3):

    [cε(S) = cs·VSOε(S) + cr·RECε(S) + cm·VMCε(S)] with
    [RECε(S) = Σ_r (c1·ioε(r) + c2·cpuε(r))] and
    [VMCε(S) = Σ_v f^len(v)].

    CPU costs follow the textbook formulas: a selection costs its input
    cardinality, a hash join costs [|L| + |R| + |out|], projections and
    renamings are free (column pruning during the producing scan — this
    makes view fusion never increase the cost, as claimed at the end of
    §3.3), and a union costs the sum of its branch cardinalities
    (duplicate elimination). *)

type weights = {
  cs : float;  (** weight of view space occupancy *)
  cr : float;  (** weight of rewriting evaluation cost *)
  cm : float;  (** weight of view maintenance cost *)
  c1 : float;  (** weight of I/O inside REC *)
  c2 : float;  (** weight of CPU inside REC *)
  f : float;   (** per-join fan-out factor of VMC *)
}

val default_weights : weights
(** The paper's §6 settings: cs = cr = c1 = c2 = 1, cm = 0.5, f = 2. *)

type t
(** A cost estimator: statistics plus weights plus memo tables. *)

val create : Stats.Statistics.t -> weights -> t
(** A fresh estimator with empty memo tables.  Memoization keys on
    interned view identity, so one estimator must only be used with one
    interner epoch (see {!Intern.reset}). *)

val weights : t -> weights
(** The weights the estimator was created with. *)

val stats : t -> Stats.Statistics.t
(** The statistics the estimator was created with — exposed so a
    per-domain clone can be built ({!Parallel_search}). *)

val view_cardinality : t -> View.t -> float
(** [|v|ε] (memoized). *)

val view_size : t -> View.t -> float
(** Estimated space occupancy of the view in bytes: cardinality times the
    summed average size of its head columns. *)

val vso : t -> State.t -> float
(** [VSOε(S)]: summed space occupancy of the state's views. *)

val vmc : t -> State.t -> float
(** [VMCε(S)]: summed maintenance cost, [f^len(v)] per view. *)

val rec_cost : t -> State.t -> float
(** [RECε(S)]: summed evaluation cost of the state's rewritings. *)

val rewriting_cost : t -> State.t -> Rewriting.t -> float * float
(** [(io, cpu)] estimation for one rewriting in the given state. *)

val rewriting_cardinality : t -> State.t -> Rewriting.t -> float
(** Estimated output cardinality of a rewriting. *)

val state_cost : t -> State.t -> float
(** cε(S), memoized on {!State.key} (compact interned-id keys, hashed
    once per state). *)

val state_cost_delta : t -> parent:State.t -> delta:Delta.t -> State.t -> float
(** cε(child), computed incrementally from the parent's memoized cost:
    VSO and VMC are updated by the delta's removed/added views, and only
    the touched rewritings are re-estimated — every untouched rewriting
    keeps its cached REC contribution bit-for-bit.  Falls back to the
    full recompute when the parent was never costed, when the delta does
    not line up with the child, or after {e max_chain} consecutive
    incremental steps (bounding float drift in VSO/VMC).  Under
    [RDFVIEWS_STRICT] every incremental result is cross-checked against
    the full recompute within a relative tolerance of 1e-6; divergence
    raises [Failure].  The result is memoized exactly like
    {!state_cost}. *)

val memo_counts : t -> int * int
(** Cumulative state-cost memo [(hits, misses)] of this estimator —
    per-estimator so concurrent estimators (bench warm-up vs. measured
    run) cannot cross-contaminate the sampled trace events. *)

type breakdown = { vso_part : float; rec_part : float; vmc_part : float; total : float }

val breakdown : t -> State.t -> breakdown
(** Unweighted components and the weighted total, for reporting. *)

val memo_consistent : t -> State.t -> bool
(** True when the memoized cost for the state (if any) agrees with a
    fresh full recomputation within a relative tolerance of 1e-6 (the
    memoized value may have been produced by the incremental path, whose
    VSO/VMC components drift by float re-association).  States never
    memoized are vacuously consistent.  This is the
    incremental-vs-reference cross-check {!Invariant.check_costs} runs
    on every accepted state in strict mode. *)
