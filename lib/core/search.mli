(** Search strategies over the space of candidate view sets (§5).

    - [Exnaive] — Algorithm 2: unrestricted exhaustive search, any
      transition anywhere (BFS order).
    - [Exstr] — exhaustive stratified search: every path respects the
      regular language VB* SC* JC* VF* (Definition 5.3); states reached at
      a lower stratum are re-opened so the strategy stays exhaustive
      (Theorem 5.3).
    - [Dfs] — the depth-first stratified strategy of §5.2: same reachable
      set as [Exstr] but explores deeper strata first, keeping the
      candidate set small.
    - [Gstr] — greedy stratified: develops the full VB closure of S0,
      keeps only the best state, then its SC closure, and so on (§5.2).

    Options toggle aggressive view fusion (AVF) and the stop conditions
    stoptt, stopvar and stoptime; [max_states] caps the number of
    distinct states held, standing in for the memory limit that makes the
    competitor strategies of [21] fail on large workloads (§6.2). *)

type strategy = Exnaive | Exstr | Dfs | Gstr

type options = {
  strategy : strategy;
  avf : bool;           (** aggressive view fusion *)
  stop_tt : bool;       (** discard states containing the full triple table *)
  stop_var : bool;      (** discard states containing an all-variable view *)
  time_budget : float option;  (** stoptime, in seconds *)
  max_states : int option;     (** memory stand-in; exceeded → out_of_memory *)
  weights : Cost.weights;
  on_accept : (State.t -> unit) option;
      (** called once per distinct accepted state (the initial state
          included), after stop conditions and deduplication; used to
          trace every state the search retains *)
}

val default_options : options
(** DFS-AVF-STV with no time budget, the paper's default weights and no
    accept hook. *)

type report = {
  best : State.t;
  best_cost : float;
  initial_cost : float;
  created : int;     (** states produced by transitions *)
  duplicates : int;  (** states reached again through another path *)
  discarded : int;   (** states rejected by a stop condition *)
  explored : int;    (** states fully expanded *)
  elapsed : float;   (** seconds *)
  trajectory : (float * float) list;
      (** (elapsed, best-cost) samples, oldest first — Fig. 7's curves *)
  completed : bool;      (** the reachable space was exhausted *)
  out_of_memory : bool;  (** stopped by [max_states] *)
}

val violates_stop : options -> State.t -> bool
(** Whether a state is rejected by the active stop conditions (stoptt /
    stopvar).  Exposed for the competitor strategies, which honour the
    same conditions during their per-query development. *)

val rcr : report -> float
(** Relative cost reduction [(cε(S0) − cε(Sb)) / cε(S0)] (§6.1). *)

val run_from : Cost.t -> options -> State.t -> report
(** Search from a given initial state (used for pre-reformulation and by
    the competitor harness).  When [RDFVIEWS_STRICT] is set
    ({!Invariant.strict_enabled}), the reference semantics is recovered
    from the initial state and {!Invariant.assert_valid} runs on every
    accepted state; the first violation aborts the search with
    {!Invariant.Violation}. *)

val run : Stats.Statistics.t -> options -> Query.Cq.t list -> report
(** Search from the standard initial state S0 of the workload. *)

val strategy_name : strategy -> string
val strategy_of_string : string -> strategy option
