(** Search strategies over the space of candidate view sets (§5).

    - [Exnaive] — Algorithm 2: unrestricted exhaustive search, any
      transition anywhere (BFS order).
    - [Exstr] — exhaustive stratified search: every path respects the
      regular language VB* SC* JC* VF* (Definition 5.3); states reached at
      a lower stratum are re-opened so the strategy stays exhaustive
      (Theorem 5.3).
    - [Dfs] — the depth-first stratified strategy of §5.2: same reachable
      set as [Exstr] but explores deeper strata first, keeping the
      candidate set small.
    - [Gstr] — greedy stratified: develops the full VB closure of S0,
      keeps only the best state, then its SC closure, and so on (§5.2).

    Options toggle aggressive view fusion (AVF) and the stop conditions
    stoptt, stopvar and stoptime; [max_states] caps the number of
    distinct states held, standing in for the memory limit that makes the
    competitor strategies of [21] fail on large workloads (§6.2). *)

type strategy = Exnaive | Exstr | Dfs | Gstr

type options = {
  strategy : strategy;
  avf : bool;           (** aggressive view fusion *)
  stop_tt : bool;       (** discard states containing the full triple table *)
  stop_var : bool;      (** discard states containing an all-variable view *)
  time_budget : float option;  (** stoptime, in seconds *)
  max_states : int option;     (** memory stand-in; exceeded → out_of_memory *)
  weights : Cost.weights;
  on_accept : (State.t -> unit) option;
      (** called once per distinct accepted state (the initial state
          included), after stop conditions and deduplication; used to
          trace every state the search retains *)
}

val default_options : options
(** DFS-AVF-STV with no time budget, the paper's default weights and no
    accept hook. *)

type report = {
  best : State.t;
  best_cost : float;
  initial_cost : float;
  created : int;     (** states produced by transitions *)
  duplicates : int;  (** states reached again through another path *)
  discarded : int;   (** states rejected by a stop condition *)
  explored : int;    (** states fully expanded *)
  elapsed : float;   (** seconds *)
  trajectory : (float * float) list;
      (** (elapsed, best-cost) samples, oldest first — Fig. 7's curves *)
  completed : bool;      (** the reachable space was exhausted *)
  out_of_memory : bool;  (** stopped by [max_states] *)
}

val violates_stop : options -> State.t -> bool
(** Whether a state is rejected by the active stop conditions (stoptt /
    stopvar).  Exposed for the competitor strategies, which honour the
    same conditions during their per-query development. *)

val rcr : report -> float
(** Relative cost reduction [(cε(S0) − cε(Sb)) / cε(S0)] (§6.1). *)

val run_from : Cost.t -> options -> State.t -> report
(** Search from a given initial state (used for pre-reformulation and by
    the competitor harness).  When [RDFVIEWS_STRICT] is set
    ({!Invariant.strict_enabled}), the reference semantics is recovered
    from the initial state and {!Invariant.assert_valid} runs on every
    accepted state; the first violation aborts the search with
    {!Invariant.Violation}. *)

val run : Stats.Statistics.t -> options -> Query.Cq.t list -> report
(** Search from the standard initial state S0 of the workload. *)

val strategy_name : strategy -> string
val strategy_of_string : string -> strategy option

(** Building blocks of the sequential engine, exposed for
    {!Parallel_search} only — no stability guarantees.  The functions
    here are exactly the ones the sequential strategies are built from,
    so a parallel run that drives them in the sequential order produces
    the identical report. *)
module Internal : sig
  type engine
  (** The mutable per-run accounting record: estimator, options, trace,
      seen-table, counters, incumbent best.  Created by {!prologue};
      mutated only through {!register}, {!note_explored} and the
      merge helpers below. *)

  type prologue = {
    p_engine : engine;
    p_initial : State.t;  (** the initial state after the AVF closure *)
    p_initial_cost : float;
  }

  val prologue : Cost.t -> options -> State.t -> prologue
  (** Everything a run does before the strategy loop: initial cost,
      strict reference recovery, AVF closure of the initial state,
      trace [run_start], engine construction, seen-table seeding. *)

  val epilogue : prologue -> completed:bool -> report
  (** Trace [run_end], final gauges, and the report. *)

  val with_run_metrics : (unit -> 'a) -> 'a
  (** Bumps the run counter and times the whole run, exactly as
      {!Search.run_from} does around its body. *)

  val collapse : options -> delta:Delta.t -> State.t -> State.t * Delta.t
  (** The pure half of successor admission: the AVF collapse, with the
      fusion deltas composed onto the transition's own delta.  Safe to
      run speculatively on any domain. *)

  val register :
    engine ->
    rank:int ->
    parent:State.t ->
    delta:Delta.t ->
    State.t ->
    (State.t * int) option
  (** The mutating half: account, dedup, cost, strict-check, trace.
      Expects an already-{!collapse}d state; must only run on the
      domain that owns the engine. *)

  val note_explored : engine -> unit
  val with_expand_metrics : int -> (unit -> 'a) -> 'a

  val allowed_kinds : options -> int -> Transition.kind list
  (** Transition kinds permitted when expanding a state reached at the
      given stratum rank. *)

  val rank_of : options -> Transition.kind -> int
  (** The stratum rank a successor inherits from the kind that produced
      it (always 0 under [Exnaive]). *)

  val should_stop : engine -> bool
  (** Time budget exceeded or seen-table over [max_states] (the latter
      also latches the engine's out-of-memory flag). *)

  val engine_options : engine -> options
  val engine_estimator : engine -> Cost.t
  val engine_strict_reference : engine -> Invariant.reference option
  val engine_elapsed : engine -> float
  val engine_best : engine -> State.t * float

  val absorb_totals :
    engine ->
    created:int ->
    duplicates:int ->
    discarded:int ->
    explored:int ->
    unit
  (** Add a worker domain's counters into the engine (merge step of a
      free-mode parallel run). *)

  val offer_best : engine -> State.t -> float -> unit
  (** Install a candidate incumbent if it improves on the engine's
      (also appends a trajectory sample). *)

  val set_trajectory : engine -> (float * float) list -> unit
  (** Replace the trajectory (reverse-chronological, as kept
      internally) with one merged across domains. *)

  val engine_trajectory : engine -> (float * float) list

  val mark_oom : engine -> unit
end
