(** Materialized-view candidates: named conjunctive queries over the
    triple table (Definition 2.1).

    Views carry a process-unique id; the view name ["v<id>"] is the symbol
    used in rewritings. *)

type t = private {
  id : int;
  cq : Query.Cq.t;
  mutable canon : string option;      (** memoized {!canonical} *)
  mutable canon_body : string option; (** memoized {!canonical_body} *)
  mutable iid : Intern.id option;     (** memoized interned id of [canon] *)
  mutable body_iid : Intern.id option;
      (** memoized interned id of [canon_body].  The memo fields are
          plain options, not lazies: view objects are shared across the
          states of a parallel search, and the accessors tolerate a racy
          duplicate computation (deterministic result) where concurrent
          [Lazy.force] would raise. *)
}

val make : Query.Cq.t -> t
(** Wrap a query as a view under a fresh name.  Raises
    [Invalid_argument] if the query's body is disconnected (views with
    Cartesian products are disallowed, §3.1) or if two head variables
    share a name (view columns must be unambiguous). *)

val of_cq : Query.Cq.t -> t
(** Wrap a query as a view {e keeping its name} (used when reloading
    states from disk, where view names are already fixed by the
    rewritings that reference them).  Same validation as {!make}. *)

val name : t -> string
(** The view's name — unique per canonical body within one interner
    epoch. *)

val head : t -> Query.Qterm.t list
(** The head terms (all variables) in declaration order. *)

val columns : t -> string list
(** The head variable names, in head order — the schema of the
    materialized relation. *)

val atom_count : t -> int

val canonical : t -> string
(** Canonical string of the underlying query with the head compared as a
    set (column order is storage-irrelevant), used for state identity. *)

val canonical_body : t -> string
(** Canonical string of the body only, used to detect fusion
    candidates. *)

val intern_id : t -> Intern.id
(** The interned id of {!canonical} — equal exactly for views with equal
    canonical forms, computed once per view.  {!State.key} is built from
    these. *)

val body_intern_id : t -> Intern.id
(** The interned id of {!canonical_body}; fusion candidates are pairs of
    views with equal body ids. *)

val reset_counter : unit -> unit
(** Reset the id counter; only for reproducible tests. *)

val to_string : t -> string
(** Datalog-style rendering, ["v3(?x) :- t(?x, <p>, ?y)."]. *)

val pp : Format.formatter -> t -> unit
(** Formatter version of {!to_string}. *)
